
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/backend/backend.cpp" "src/CMakeFiles/btbsim.dir/backend/backend.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/backend/backend.cpp.o.d"
  "/root/repo/src/bpred/history.cpp" "src/CMakeFiles/btbsim.dir/bpred/history.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/bpred/history.cpp.o.d"
  "/root/repo/src/bpred/indirect.cpp" "src/CMakeFiles/btbsim.dir/bpred/indirect.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/bpred/indirect.cpp.o.d"
  "/root/repo/src/bpred/perceptron.cpp" "src/CMakeFiles/btbsim.dir/bpred/perceptron.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/bpred/perceptron.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/btbsim.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/btbsim.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/common/stats.cpp.o.d"
  "/root/repo/src/core/bbtb.cpp" "src/CMakeFiles/btbsim.dir/core/bbtb.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/bbtb.cpp.o.d"
  "/root/repo/src/core/btb_factory.cpp" "src/CMakeFiles/btbsim.dir/core/btb_factory.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/btb_factory.cpp.o.d"
  "/root/repo/src/core/hetero.cpp" "src/CMakeFiles/btbsim.dir/core/hetero.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/hetero.cpp.o.d"
  "/root/repo/src/core/ibtb.cpp" "src/CMakeFiles/btbsim.dir/core/ibtb.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/ibtb.cpp.o.d"
  "/root/repo/src/core/mbbtb.cpp" "src/CMakeFiles/btbsim.dir/core/mbbtb.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/mbbtb.cpp.o.d"
  "/root/repo/src/core/rbtb.cpp" "src/CMakeFiles/btbsim.dir/core/rbtb.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/core/rbtb.cpp.o.d"
  "/root/repo/src/frontend/pcgen.cpp" "src/CMakeFiles/btbsim.dir/frontend/pcgen.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/frontend/pcgen.cpp.o.d"
  "/root/repo/src/memory/cache.cpp" "src/CMakeFiles/btbsim.dir/memory/cache.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/memory/cache.cpp.o.d"
  "/root/repo/src/memory/prefetcher.cpp" "src/CMakeFiles/btbsim.dir/memory/prefetcher.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/memory/prefetcher.cpp.o.d"
  "/root/repo/src/sim/cpu.cpp" "src/CMakeFiles/btbsim.dir/sim/cpu.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/sim/cpu.cpp.o.d"
  "/root/repo/src/sim/report.cpp" "src/CMakeFiles/btbsim.dir/sim/report.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/sim/report.cpp.o.d"
  "/root/repo/src/sim/runner.cpp" "src/CMakeFiles/btbsim.dir/sim/runner.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/sim/runner.cpp.o.d"
  "/root/repo/src/trace/analyzer.cpp" "src/CMakeFiles/btbsim.dir/trace/analyzer.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/trace/analyzer.cpp.o.d"
  "/root/repo/src/trace/generator.cpp" "src/CMakeFiles/btbsim.dir/trace/generator.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/trace/generator.cpp.o.d"
  "/root/repo/src/trace/program.cpp" "src/CMakeFiles/btbsim.dir/trace/program.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/trace/program.cpp.o.d"
  "/root/repo/src/trace/suite.cpp" "src/CMakeFiles/btbsim.dir/trace/suite.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/trace/suite.cpp.o.d"
  "/root/repo/src/trace/synthetic_trace.cpp" "src/CMakeFiles/btbsim.dir/trace/synthetic_trace.cpp.o" "gcc" "src/CMakeFiles/btbsim.dir/trace/synthetic_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
