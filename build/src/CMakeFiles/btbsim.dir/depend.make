# Empty dependencies file for btbsim.
# This may be replaced when dependencies are built.
