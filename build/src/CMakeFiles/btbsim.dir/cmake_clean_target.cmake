file(REMOVE_RECURSE
  "libbtbsim.a"
)
