# Empty dependencies file for custom_btb.
# This may be replaced when dependencies are built.
