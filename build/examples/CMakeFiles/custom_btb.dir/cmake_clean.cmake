file(REMOVE_RECURSE
  "CMakeFiles/custom_btb.dir/custom_btb.cpp.o"
  "CMakeFiles/custom_btb.dir/custom_btb.cpp.o.d"
  "custom_btb"
  "custom_btb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/custom_btb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
