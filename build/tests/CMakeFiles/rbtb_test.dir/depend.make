# Empty dependencies file for rbtb_test.
# This may be replaced when dependencies are built.
