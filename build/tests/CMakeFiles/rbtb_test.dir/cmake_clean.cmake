file(REMOVE_RECURSE
  "CMakeFiles/rbtb_test.dir/rbtb_test.cpp.o"
  "CMakeFiles/rbtb_test.dir/rbtb_test.cpp.o.d"
  "rbtb_test"
  "rbtb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbtb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
