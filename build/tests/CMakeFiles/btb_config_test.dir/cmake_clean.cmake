file(REMOVE_RECURSE
  "CMakeFiles/btb_config_test.dir/btb_config_test.cpp.o"
  "CMakeFiles/btb_config_test.dir/btb_config_test.cpp.o.d"
  "btb_config_test"
  "btb_config_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/btb_config_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
