# Empty dependencies file for btb_config_test.
# This may be replaced when dependencies are built.
