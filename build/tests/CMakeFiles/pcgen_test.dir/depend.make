# Empty dependencies file for pcgen_test.
# This may be replaced when dependencies are built.
