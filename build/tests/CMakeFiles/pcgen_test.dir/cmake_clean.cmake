file(REMOVE_RECURSE
  "CMakeFiles/pcgen_test.dir/pcgen_test.cpp.o"
  "CMakeFiles/pcgen_test.dir/pcgen_test.cpp.o.d"
  "pcgen_test"
  "pcgen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pcgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
