file(REMOVE_RECURSE
  "CMakeFiles/perceptron_test.dir/perceptron_test.cpp.o"
  "CMakeFiles/perceptron_test.dir/perceptron_test.cpp.o.d"
  "perceptron_test"
  "perceptron_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perceptron_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
