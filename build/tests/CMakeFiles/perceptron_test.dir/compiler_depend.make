# Empty compiler generated dependencies file for perceptron_test.
# This may be replaced when dependencies are built.
