# Empty dependencies file for mbbtb_test.
# This may be replaced when dependencies are built.
