file(REMOVE_RECURSE
  "CMakeFiles/mbbtb_test.dir/mbbtb_test.cpp.o"
  "CMakeFiles/mbbtb_test.dir/mbbtb_test.cpp.o.d"
  "mbbtb_test"
  "mbbtb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbbtb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
