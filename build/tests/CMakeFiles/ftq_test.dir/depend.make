# Empty dependencies file for ftq_test.
# This may be replaced when dependencies are built.
