file(REMOVE_RECURSE
  "CMakeFiles/ftq_test.dir/ftq_test.cpp.o"
  "CMakeFiles/ftq_test.dir/ftq_test.cpp.o.d"
  "ftq_test"
  "ftq_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftq_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
