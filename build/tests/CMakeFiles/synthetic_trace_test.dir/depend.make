# Empty dependencies file for synthetic_trace_test.
# This may be replaced when dependencies are built.
