file(REMOVE_RECURSE
  "CMakeFiles/synthetic_trace_test.dir/synthetic_trace_test.cpp.o"
  "CMakeFiles/synthetic_trace_test.dir/synthetic_trace_test.cpp.o.d"
  "synthetic_trace_test"
  "synthetic_trace_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthetic_trace_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
