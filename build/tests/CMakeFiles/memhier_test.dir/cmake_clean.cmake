file(REMOVE_RECURSE
  "CMakeFiles/memhier_test.dir/memhier_test.cpp.o"
  "CMakeFiles/memhier_test.dir/memhier_test.cpp.o.d"
  "memhier_test"
  "memhier_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memhier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
