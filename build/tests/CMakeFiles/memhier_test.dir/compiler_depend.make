# Empty compiler generated dependencies file for memhier_test.
# This may be replaced when dependencies are built.
