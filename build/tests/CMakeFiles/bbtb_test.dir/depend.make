# Empty dependencies file for bbtb_test.
# This may be replaced when dependencies are built.
