file(REMOVE_RECURSE
  "CMakeFiles/bbtb_test.dir/bbtb_test.cpp.o"
  "CMakeFiles/bbtb_test.dir/bbtb_test.cpp.o.d"
  "bbtb_test"
  "bbtb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bbtb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
