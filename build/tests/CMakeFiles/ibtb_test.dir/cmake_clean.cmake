file(REMOVE_RECURSE
  "CMakeFiles/ibtb_test.dir/ibtb_test.cpp.o"
  "CMakeFiles/ibtb_test.dir/ibtb_test.cpp.o.d"
  "ibtb_test"
  "ibtb_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ibtb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
