# Empty compiler generated dependencies file for ibtb_test.
# This may be replaced when dependencies are built.
