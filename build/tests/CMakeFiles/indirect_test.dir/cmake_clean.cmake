file(REMOVE_RECURSE
  "CMakeFiles/indirect_test.dir/indirect_test.cpp.o"
  "CMakeFiles/indirect_test.dir/indirect_test.cpp.o.d"
  "indirect_test"
  "indirect_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/indirect_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
