file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_blocksize.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig9_blocksize.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig9_blocksize.dir/bench_fig9_blocksize.cpp.o"
  "CMakeFiles/bench_fig9_blocksize.dir/bench_fig9_blocksize.cpp.o.d"
  "bench_fig9_blocksize"
  "bench_fig9_blocksize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_blocksize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
