# Empty compiler generated dependencies file for bench_fig9_blocksize.
# This may be replaced when dependencies are built.
