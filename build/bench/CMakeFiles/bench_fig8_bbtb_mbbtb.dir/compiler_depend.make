# Empty compiler generated dependencies file for bench_fig8_bbtb_mbbtb.
# This may be replaced when dependencies are built.
