file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_bbtb_mbbtb.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig8_bbtb_mbbtb.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig8_bbtb_mbbtb.dir/bench_fig8_bbtb_mbbtb.cpp.o"
  "CMakeFiles/bench_fig8_bbtb_mbbtb.dir/bench_fig8_bbtb_mbbtb.cpp.o.d"
  "bench_fig8_bbtb_mbbtb"
  "bench_fig8_bbtb_mbbtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_bbtb_mbbtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
