file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11b_bp_sweep.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig11b_bp_sweep.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig11b_bp_sweep.dir/bench_fig11b_bp_sweep.cpp.o"
  "CMakeFiles/bench_fig11b_bp_sweep.dir/bench_fig11b_bp_sweep.cpp.o.d"
  "bench_fig11b_bp_sweep"
  "bench_fig11b_bp_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11b_bp_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
