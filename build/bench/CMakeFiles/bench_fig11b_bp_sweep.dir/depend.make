# Empty dependencies file for bench_fig11b_bp_sweep.
# This may be replaced when dependencies are built.
