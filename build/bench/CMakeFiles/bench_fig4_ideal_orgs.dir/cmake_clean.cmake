file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_ideal_orgs.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig4_ideal_orgs.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig4_ideal_orgs.dir/bench_fig4_ideal_orgs.cpp.o"
  "CMakeFiles/bench_fig4_ideal_orgs.dir/bench_fig4_ideal_orgs.cpp.o.d"
  "bench_fig4_ideal_orgs"
  "bench_fig4_ideal_orgs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_ideal_orgs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
