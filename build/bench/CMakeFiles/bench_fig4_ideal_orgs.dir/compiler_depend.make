# Empty compiler generated dependencies file for bench_fig4_ideal_orgs.
# This may be replaced when dependencies are built.
