# Empty dependencies file for bench_taken_penalty.
# This may be replaced when dependencies are built.
