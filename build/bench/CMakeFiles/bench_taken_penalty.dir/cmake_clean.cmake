file(REMOVE_RECURSE
  "CMakeFiles/bench_taken_penalty.dir/bench_common.cpp.o"
  "CMakeFiles/bench_taken_penalty.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_taken_penalty.dir/bench_taken_penalty.cpp.o"
  "CMakeFiles/bench_taken_penalty.dir/bench_taken_penalty.cpp.o.d"
  "bench_taken_penalty"
  "bench_taken_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_taken_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
