file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_mbbtb.dir/bench_ablation_mbbtb.cpp.o"
  "CMakeFiles/bench_ablation_mbbtb.dir/bench_ablation_mbbtb.cpp.o.d"
  "CMakeFiles/bench_ablation_mbbtb.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_mbbtb.dir/bench_common.cpp.o.d"
  "bench_ablation_mbbtb"
  "bench_ablation_mbbtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_mbbtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
