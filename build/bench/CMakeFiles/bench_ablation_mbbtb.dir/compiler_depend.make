# Empty compiler generated dependencies file for bench_ablation_mbbtb.
# This may be replaced when dependencies are built.
