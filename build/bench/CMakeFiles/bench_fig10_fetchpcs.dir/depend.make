# Empty dependencies file for bench_fig10_fetchpcs.
# This may be replaced when dependencies are built.
