file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_fetchpcs.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig10_fetchpcs.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig10_fetchpcs.dir/bench_fig10_fetchpcs.cpp.o"
  "CMakeFiles/bench_fig10_fetchpcs.dir/bench_fig10_fetchpcs.cpp.o.d"
  "bench_fig10_fetchpcs"
  "bench_fig10_fetchpcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_fetchpcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
