# Empty compiler generated dependencies file for bench_ablation_blockend.
# This may be replaced when dependencies are built.
