file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_blockend.dir/bench_ablation_blockend.cpp.o"
  "CMakeFiles/bench_ablation_blockend.dir/bench_ablation_blockend.cpp.o.d"
  "CMakeFiles/bench_ablation_blockend.dir/bench_common.cpp.o"
  "CMakeFiles/bench_ablation_blockend.dir/bench_common.cpp.o.d"
  "bench_ablation_blockend"
  "bench_ablation_blockend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_blockend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
