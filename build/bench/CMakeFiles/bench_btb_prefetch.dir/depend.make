# Empty dependencies file for bench_btb_prefetch.
# This may be replaced when dependencies are built.
