file(REMOVE_RECURSE
  "CMakeFiles/bench_btb_prefetch.dir/bench_btb_prefetch.cpp.o"
  "CMakeFiles/bench_btb_prefetch.dir/bench_btb_prefetch.cpp.o.d"
  "CMakeFiles/bench_btb_prefetch.dir/bench_common.cpp.o"
  "CMakeFiles/bench_btb_prefetch.dir/bench_common.cpp.o.d"
  "bench_btb_prefetch"
  "bench_btb_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_btb_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
