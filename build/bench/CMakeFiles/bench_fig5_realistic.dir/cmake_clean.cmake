file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_realistic.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig5_realistic.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig5_realistic.dir/bench_fig5_realistic.cpp.o"
  "CMakeFiles/bench_fig5_realistic.dir/bench_fig5_realistic.cpp.o.d"
  "bench_fig5_realistic"
  "bench_fig5_realistic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_realistic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
