# Empty compiler generated dependencies file for bench_fig5_realistic.
# This may be replaced when dependencies are built.
