file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_rbtb.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig7_rbtb.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig7_rbtb.dir/bench_fig7_rbtb.cpp.o"
  "CMakeFiles/bench_fig7_rbtb.dir/bench_fig7_rbtb.cpp.o.d"
  "bench_fig7_rbtb"
  "bench_fig7_rbtb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_rbtb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
