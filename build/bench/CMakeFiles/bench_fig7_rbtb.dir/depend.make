# Empty dependencies file for bench_fig7_rbtb.
# This may be replaced when dependencies are built.
