file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11a_ideal_backend.dir/bench_common.cpp.o"
  "CMakeFiles/bench_fig11a_ideal_backend.dir/bench_common.cpp.o.d"
  "CMakeFiles/bench_fig11a_ideal_backend.dir/bench_fig11a_ideal_backend.cpp.o"
  "CMakeFiles/bench_fig11a_ideal_backend.dir/bench_fig11a_ideal_backend.cpp.o.d"
  "bench_fig11a_ideal_backend"
  "bench_fig11a_ideal_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11a_ideal_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
