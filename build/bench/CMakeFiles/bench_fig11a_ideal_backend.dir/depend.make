# Empty dependencies file for bench_fig11a_ideal_backend.
# This may be replaced when dependencies are built.
