/**
 * @file
 * Quickstart: generate a server-like synthetic workload, simulate it on
 * the Table 1 processor with a realistic two-level I-BTB, and print the
 * headline statistics.
 *
 * Build and run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <cstdio>

#include "sim/cpu.h"
#include "trace/analyzer.h"
#include "trace/suite.h"

int
main()
{
    using namespace btbsim;

    // 1. Pick a workload from the calibrated server suite.
    const std::vector<WorkloadSpec> suite = serverSuite(1);
    auto workload = makeWorkload(suite.front());
    std::printf("workload: %s (%.0f KB code)\n", workload->name().c_str(),
                workload->program().footprintBytes() / 1024.0);

    // 2. Inspect its properties (the paper's Section 2/4 statistics).
    TraceProperties props = analyzeTrace(*workload, 2'000'000);
    std::printf("  avg dynamic basic block: %.1f instructions\n",
                props.avg_bb_size);
    std::printf("  never-taken conditionals: %.1f%% of dynamic branches\n",
                100.0 * props.frac_never_taken_cond);

    // 3. Configure the processor: Table 1 defaults with an I-BTB.
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);

    // 4. Simulate: 1M instructions of warmup, 2M measured.
    Cpu cpu(cfg, *workload);
    cpu.run(1'000'000, 2'000'000);

    const SimStats &s = cpu.stats();
    std::printf("\nconfig: %s\n", s.config.c_str());
    std::printf("  IPC:               %.3f\n", s.ipc);
    std::printf("  branch MPKI:       %.2f\n", s.branch_mpki);
    std::printf("  misfetch PKI:      %.2f\n", s.misfetch_pki);
    std::printf("  L1 BTB hit rate:   %.1f%%\n", 100.0 * s.l1_btb_hitrate);
    std::printf("  BTB hit rate:      %.1f%%\n", 100.0 * s.btb_hitrate);
    std::printf("  fetch PCs/access:  %.2f\n", s.fetch_pcs_per_access);
    std::printf("  I-cache MPKI:      %.2f\n", s.icache_mpki);
    const PcGenStats &pg = cpu.pcgenStats();
    std::printf("  mispredict split:  cond %llu, indirect %llu, return %llu, "
                "taken-cond-miss %llu\n",
                (unsigned long long)pg.misp_cond,
                (unsigned long long)pg.misp_indirect,
                (unsigned long long)pg.misp_return,
                (unsigned long long)pg.misp_btbmiss);
    std::printf("  cond mispredict rate: %.2f%%\n",
                100.0 * s.cond_mispredict_rate);
    return 0;
}
