/**
 * @file
 * Characterize every workload in the server suite, printing the
 * distributional properties the paper reports (Sections 1, 2 and 4):
 * dynamic basic-block size, branch-class mix, code footprint, and the
 * 90%/100% dynamic line coverage.
 */

#include <cstdio>

#include "trace/analyzer.h"
#include "trace/suite.h"

int
main()
{
    using namespace btbsim;

    const auto suite = serverSuite(12);
    std::printf("%-10s %8s %7s %7s %7s %7s %7s %7s %7s %9s %9s %8s\n",
                "workload", "codeKB", "BBsize", "tkdist", "nvrT%", "alwT%",
                "mixC%", "1tgtI%", "ret%", "sites", "tknSites", "90%KB");
    for (const WorkloadSpec &spec : suite) {
        auto w = makeWorkload(spec);
        const TraceProperties p = analyzeTrace(*w, 4'000'000);
        std::printf(
            "%-10s %8.0f %7.2f %7.2f %7.1f %7.1f %7.1f %7.1f %7.1f %9llu %9llu %8.0f\n",
            spec.name.c_str(), w->program().footprintBytes() / 1024.0,
            p.avg_bb_size, p.avg_taken_distance,
            100.0 * p.frac_never_taken_cond, 100.0 * p.frac_always_taken_cond,
            100.0 * p.frac_mixed_cond, 100.0 * p.frac_single_target_indirect,
            100.0 * p.frac_returns,
            static_cast<unsigned long long>(p.static_branch_sites),
            static_cast<unsigned long long>(p.static_taken_sites),
            p.bytes_for_90pct / 1024.0);
    }
    return 0;
}
