/**
 * @file
 * Hierarchy explorer: sweep L1/L2 BTB sizes for a chosen organization and
 * print how hit rates and IPC respond — the kind of design-space probe a
 * microarchitect would run before committing to a geometry.
 *
 * Usage: hierarchy_explorer [org]
 *   org: ibtb (default), rbtb, bbtb, mbbtb
 */

#include <cstdio>
#include <cmath>
#include <cstring>

#include "sim/runner.h"
#include "trace/suite.h"

int
main(int argc, char **argv)
{
    using namespace btbsim;

    const char *org = argc > 1 ? argv[1] : "ibtb";

    auto base = [&]() -> BtbConfig {
        if (!std::strcmp(org, "rbtb"))
            return BtbConfig::rbtb(3);
        if (!std::strcmp(org, "bbtb"))
            return BtbConfig::bbtb(1, true);
        if (!std::strcmp(org, "mbbtb"))
            return BtbConfig::mbbtb(3, PullPolicy::kAllBr);
        return BtbConfig::ibtb(16);
    }();

    RunOptions opt = RunOptions::fromEnv();
    opt.traces = std::min<std::size_t>(opt.traces, 3);
    const auto suite = serverSuite(opt.traces);

    struct Geometry
    {
        const char *name;
        BtbLevelGeom l1, l2;
    };
    const Geometry sweeps[] = {
        {"tiny   (0.5K/2K)", {128, 4}, {256, 8}},
        {"small  (1.5K/6.5K)", {256, 6}, {512, 13}},
        {"table1 (3K/13K)", {512, 6}, {1024, 13}},
        {"double (6K/26K)", {1024, 6}, {2048, 13}},
        {"huge   (24K/52K)", {4096, 6}, {4096, 13}},
    };

    std::printf("Organization: %s\n\n", base.name().c_str());
    std::printf("%-20s %8s %8s %8s %8s %8s\n", "geometry", "IPC", "L1hit%",
                "hit%", "MPKI", "MFPKI");
    std::printf("%s\n", std::string(64, '-').c_str());

    for (const Geometry &g : sweeps) {
        CpuConfig cfg;
        cfg.btb = base;
        cfg.btb.l1 = g.l1;
        cfg.btb.l2 = g.l2;
        double ipc = 1.0, l1 = 0, hit = 0, mpki = 0, mfpki = 0;
        for (const WorkloadSpec &spec : suite) {
            const SimStats s = runOne(cfg, spec, opt);
            ipc *= s.ipc;
            l1 += s.l1_btb_hitrate;
            hit += s.btb_hitrate;
            mpki += s.branch_mpki;
            mfpki += s.misfetch_pki;
        }
        const double n = static_cast<double>(suite.size());
        std::printf("%-20s %8.3f %8.1f %8.1f %8.2f %8.2f\n", g.name,
                    std::pow(ipc, 1.0 / n), 100.0 * l1 / n, 100.0 * hit / n,
                    mpki / n, mfpki / n);
    }
    return 0;
}
