/**
 * @file
 * Extending btbsim with a custom BTB organization.
 *
 * Implements a "HybridBtb": a Region BTB augmented with a small
 * fully-associative victim store for displaced branch slots — a
 * simplified take on the decoupled shared "overflow" slot storage used by
 * IBM z16, AMD Bobcat and Samsung Exynos (Section 3.5 of the paper).
 * It plugs into the full Cpu through the same BtbOrg interface the
 * built-in organizations use, and this example races it against the
 * stock R-BTB 2BS at identical region geometry.
 */

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "core/btb_org.h"
#include "core/btb_registry.h"
#include "core/rbtb.h"
#include "sim/cpu.h"
#include "sim/runner.h"
#include "trace/suite.h"

using namespace btbsim;

namespace {

/**
 * Region BTB with an overflow victim store. Slots displaced by intra-entry
 * contention stay visible to the bundle walk at no modelled latency cost,
 * so the frontend behaves as if entries could grow beyond their slot
 * budget. Demonstrates composing with an inner organization under the
 * bundle protocol: let the inner org fill the bundle, then post-process
 * it (extra slots must keep the (seg, pc) sort — call sortSlots()).
 */
class HybridBtb : public BtbOrg
{
  public:
    explicit HybridBtb(const BtbConfig &cfg, unsigned overflow_entries = 512)
        : inner_(cfg), cfg_(cfg), overflow_(1, overflow_entries, 2)
    {
        cfg_.region_bytes = cfg.region_bytes;
    }

    int
    beginAccess(Addr pc, PredictionBundle &b) override
    {
        const int level = inner_.beginAccess(pc, b);
        // Any window PC the region entry does not track may still hit
        // the victim store.
        const auto window = b.segments[0];
        for (Addr cur = window.start; cur < window.end; cur += kInstBytes) {
            bool tracked = false;
            for (unsigned i = 0; i < b.n_slots; ++i)
                tracked |= b.slots[i].pc == cur;
            if (tracked)
                continue;
            if (Victim *o = touchingFind(overflow_, cur))
                b.addSlot(0, cur, o->type, o->target, 1);
        }
        b.sortSlots();
        return level;
    }

    void
    update(const Instruction &br, bool resteer) override
    {
        const auto displaced_before = inner_.stats.get("slot_displacements");
        inner_.update(br, resteer);
        if (br.taken &&
            inner_.stats.get("slot_displacements") != displaced_before) {
            Victim &o = fillEntry(overflow_, br.pc);
            o.type = br.branch;
            o.target = br.takenTarget();
        }
    }

    OccupancySample
    sampleOccupancy() const override
    {
        return inner_.sampleOccupancy();
    }

    const BtbConfig &config() const override { return cfg_; }

  private:
    struct Victim
    {
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
    };

    RegionBtb inner_;
    BtbConfig cfg_;
    SoaSetTable<Victim> overflow_;
};

// Out-of-tree registration: the organization becomes constructible (and
// its token parseable) everywhere the registry is consulted — no core
// edits, no subclass-and-switch in a factory.
const BtbRegistrar reg_hybrid{
    "hybrid-rbtb",
    "Region BTB with an overflow victim store (token hybrid-rbtb<S>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<HybridBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        if (tok.rfind("hybrid-rbtb", 0) != 0 || tok.size() <= 11)
            return false;
        const int n = std::atoi(tok.c_str() + 11);
        if (n <= 0)
            return false;
        out = BtbConfig::rbtb(static_cast<unsigned>(n));
        return true;
    }};

} // namespace

int
main()
{
    RunOptions opt = RunOptions::fromEnv();
    opt.traces = std::min<std::size_t>(opt.traces, 3);
    const auto suite = serverSuite(opt.traces);

    std::printf("%-12s %12s %12s %10s\n", "workload", "R-BTB 2BS",
                "Hybrid", "speedup");
    std::printf("%s\n", std::string(50, '-').c_str());

    double gm = 1.0;
    for (const WorkloadSpec &spec : suite) {
        const BtbConfig cfg = BtbConfig::rbtb(2);

        CpuConfig stock_cfg;
        stock_cfg.btb = cfg;
        const SimStats stock = runOne(stock_cfg, spec, opt);

        // Same pipeline, custom organization resolved by name.
        auto workload = makeWorkload(spec);
        Cpu cpu(stock_cfg, *workload,
                BtbRegistry::instance().make("hybrid-rbtb", cfg));
        cpu.run(opt.warmup, opt.measure);
        const SimStats hybrid = cpu.stats();

        const double speedup = hybrid.ipc / stock.ipc;
        gm *= speedup;
        std::printf("%-12s %12.3f %12.3f %9.2f%%\n", spec.name.c_str(),
                    stock.ipc, hybrid.ipc, 100.0 * (speedup - 1.0));
    }
    std::printf("%-12s %25s %9.2f%%\n", "geomean", "",
                100.0 * (std::pow(gm, 1.0 / suite.size()) - 1.0));
    std::printf("\nOverflow slots recover most of the IPC lost to branch-slot\n"
                "contention (compare with the R-BTB nGeo 16BS bound in Fig. 7).\n");
    return 0;
}
