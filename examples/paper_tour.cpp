/**
 * @file
 * A condensed, narrated tour of the paper's main findings: one workload,
 * the key configurations, and the story the full benches tell in detail.
 * Runs in about a minute at default scale.
 */

#include <cstdio>

#include "sim/runner.h"
#include "trace/suite.h"

using namespace btbsim;

namespace {

SimStats
simulate(const BtbConfig &btb, const WorkloadSpec &spec,
         const RunOptions &opt)
{
    CpuConfig cfg;
    cfg.btb = btb;
    return runOne(cfg, spec, opt);
}

void
row(const SimStats &s, double baseline_ipc)
{
    std::printf("  %-26s IPC %6.3f (%.3fx)  PCs/acc %5.2f  "
                "MPKI %5.2f  L1hit %5.1f%%\n",
                s.config.c_str(), s.ipc, s.ipc / baseline_ipc,
                s.fetch_pcs_per_access, s.combined_mpki,
                100.0 * s.l1_btb_hitrate);
}

} // namespace

int
main()
{
    RunOptions opt = RunOptions::fromEnv();
    const WorkloadSpec spec = serverSuite(1).front();

    std::printf("Perais & Sheikh, \"Branch Target Buffer Organizations\" "
                "(MICRO 2023)\nA guided tour on workload '%s'.\n\n",
                spec.name.c_str());

    std::printf("1. The idealistic baseline: a 512K-entry I-BTB with "
                "0-cycle turnaround.\n");
    BtbConfig ideal = BtbConfig::ibtb(16);
    ideal.makeIdeal();
    const SimStats base = simulate(ideal, spec, opt);
    row(base, base.ipc);

    std::printf("\n2. Realistic two-level hierarchies (3K-entry L1, "
                "13K-entry L2, resized per slot count):\n");
    row(simulate(BtbConfig::ibtb(16), spec, opt), base.ipc);
    row(simulate(BtbConfig::rbtb(1), spec, opt), base.ipc);
    row(simulate(BtbConfig::rbtb(3), spec, opt), base.ipc);
    row(simulate(BtbConfig::bbtb(1), spec, opt), base.ipc);
    std::printf("   -> R-BTB 1BS collapses (cache lines hold more than one "
                "taken branch);\n      3 slots fix it; B-BTB tracks I-BTB "
                "closely.\n");

    std::printf("\n3. The paper's improvements:\n");
    row(simulate(BtbConfig::rbtb(3, 64, true), spec, opt), base.ipc);
    row(simulate(BtbConfig::bbtb(1, true), spec, opt), base.ipc);
    row(simulate(BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64), spec, opt),
        base.ipc);
    std::printf("   -> B-BTB 1BS with entry splitting is the best practical "
                "configuration\n      (the paper's conclusion); MB-BTB "
                "multiplies fetch PCs per access but\n      cannot convert "
                "them in a contended hierarchy.\n");

    std::printf("\nFull reproductions: ./run_benches.sh (see "
                "EXPERIMENTS.md).\n");
    return 0;
}
