#!/bin/bash
# Regenerate every paper figure/table. Scale via BTBSIM_WARMUP /
# BTBSIM_MEASURE / BTBSIM_TRACES.
#
# Each sim bench also writes machine-readable results to
# results/<bench>.json (schema documented in src/obs/export.h); inspect or
# regression-compare them with build/src/tools/btbsim-stats.
#
#   --record   Capture the server suite as .btbt traces under results/btbt
#              first (sized to the current env knobs; see btbsim-trace).
#   --replay   Run the benches from those recordings instead of live
#              stream generation, and report the wall clock saved against
#              the most recent live run.
set -euo pipefail
cd "$(dirname "$0")"

record=0
replay=0
for arg in "$@"; do
    case "$arg" in
        --record) record=1 ;;
        --replay) replay=1 ;;
        *)
            echo "usage: $0 [--record] [--replay]" >&2
            exit 2
            ;;
    esac
done

mkdir -p results
trace_dir=results/btbt

if [[ $record -eq 1 ]]; then
    echo "=== recording suite traces -> $trace_dir ==="
    ./build/src/tools/btbsim-trace record --out "$trace_dir"
    ./build/src/tools/btbsim-trace verify "$trace_dir"/*.btbt
fi

if [[ $replay -eq 1 ]]; then
    if ! ls "$trace_dir"/*.btbt >/dev/null 2>&1; then
        echo "no traces in $trace_dir; run '$0 --record' first" >&2
        exit 2
    fi
    export BTBSIM_TRACE_DIR="$trace_dir"
    echo "=== replaying traces from $trace_dir ==="
fi

SECONDS=0
for b in build/bench/bench_*; do
    name=$(basename "$b")
    echo "=== $name ==="
    # bench_simspeed (google-benchmark) and bench_characterization
    # (analyzer-only) produce no result JSON; the env knob is a no-op there.
    BTBSIM_JSON_OUT="results/${name}.json" "$b" 2>&1 | tee "results/$name.txt"
done
elapsed=$SECONDS

if [[ $replay -eq 1 ]]; then
    if [[ -f results/.wall_live ]]; then
        live=$(cat results/.wall_live)
        echo "=== replay wall clock: ${elapsed}s (last live run: ${live}s," \
             "saved $((live - elapsed))s) ==="
    else
        echo "=== replay wall clock: ${elapsed}s (no live baseline yet) ==="
    fi
else
    echo "$elapsed" >results/.wall_live
    echo "=== live wall clock: ${elapsed}s ==="
fi
