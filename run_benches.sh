#!/bin/bash
# Regenerate every paper figure/table. Scale via BTBSIM_WARMUP /
# BTBSIM_MEASURE / BTBSIM_TRACES.
#
# Each sim bench also writes machine-readable results to
# results/<bench>.json (schema documented in src/obs/export.h); inspect or
# regression-compare them with build/src/tools/btbsim-stats.
#
#   --record   Capture the server suite as .btbt traces under results/btbt
#              first (sized to the current env knobs; see btbsim-trace).
#   --replay   Run the benches from those recordings instead of live
#              stream generation, and report the wall clock saved against
#              the most recent live run.
#   --resume   Resume an interrupted sweep: completed points come back from
#              the run cache (BTBSIM_RUN_CACHE, default results/cache) and
#              only the remaining ones are simulated.
#   --fresh    Drop the run cache first so every point simulates cold.
#   --shards N Run every sweep on an in-process pool of N worker shards
#              sharing one replay-chunk cache (exports BTBSIM_SHARDS=N);
#              per-shard utilization is reported from the result JSON.
set -euo pipefail
cd "$(dirname "$0")"

record=0
replay=0
resume=0
fresh=0
shards=${BTBSIM_SHARDS:-0}
expect_shards=0
for arg in "$@"; do
    if [[ $expect_shards -eq 1 ]]; then
        shards=$arg
        expect_shards=0
        continue
    fi
    case "$arg" in
        --record) record=1 ;;
        --replay) replay=1 ;;
        --resume) resume=1 ;;
        --fresh) fresh=1 ;;
        --shards) expect_shards=1 ;;
        --shards=*) shards=${arg#--shards=} ;;
        *)
            echo "usage: $0 [--record] [--replay] [--resume] [--fresh]" \
                 "[--shards N]" >&2
            exit 2
            ;;
    esac
done
if [[ $expect_shards -eq 1 ]]; then
    echo "error: --shards needs a value" >&2
    exit 2
fi
if [[ "$shards" != 0 ]]; then
    export BTBSIM_SHARDS="$shards"
    echo "=== shard pool: BTBSIM_SHARDS=$shards ==="
fi

mkdir -p results
trace_dir=results/btbt
cache_dir=${BTBSIM_RUN_CACHE:-results/cache}

# Per-bench result JSON. An externally-set BTBSIM_JSON_OUT names the
# output *directory* (default results/); every bench writes its own
# <dir>/<bench>.json. BTBSIM_JSON_OUT=0 disables JSON output.
json_dir=results
json_enabled=1
case "${BTBSIM_JSON_OUT:-}" in
    "" | 1 | true) ;;
    0) json_enabled=0 ;;
    *) json_dir=$BTBSIM_JSON_OUT ;;
esac
[[ $json_enabled -eq 1 ]] && mkdir -p "$json_dir"

if [[ $fresh -eq 1 && "$cache_dir" != 0 ]]; then
    echo "=== dropping run cache $cache_dir ==="
    rm -rf "$cache_dir"
fi
if [[ $resume -eq 1 ]]; then
    export BTBSIM_RESUME=1
    echo "=== resuming from run cache $cache_dir ==="
fi

if [[ $record -eq 1 ]]; then
    echo "=== recording suite traces -> $trace_dir ==="
    ./build/src/tools/btbsim-trace record --out "$trace_dir"
    ./build/src/tools/btbsim-trace verify "$trace_dir"/*.btbt
fi

if [[ $replay -eq 1 ]]; then
    if ! ls "$trace_dir"/*.btbt >/dev/null 2>&1; then
        echo "no traces in $trace_dir; run '$0 --record' first" >&2
        exit 2
    fi
    export BTBSIM_TRACE_DIR="$trace_dir"
    echo "=== replaying traces from $trace_dir ==="
fi

SECONDS=0
declare -A json_path_for
for b in build/bench/bench_*; do
    [[ -f "$b" && -x "$b" ]] || continue
    name=$(basename "$b")
    # Basename-uniqueness guard: two benches mapping onto the same
    # <json_dir>/<name>.json would have the later one silently
    # overwrite the earlier one's results.
    if [[ -n "${json_path_for[$name]:-}" ]]; then
        echo "error: bench basename collision: '$b' and" \
             "'${json_path_for[$name]}' would both write" \
             "$json_dir/${name}.json" >&2
        exit 2
    fi
    json_path_for[$name]=$b
    echo "=== $name ==="
    # bench_simspeed writes its own host-throughput JSON schema
    # (btbsim-simspeed-v1); bench_characterization (analyzer-only)
    # produces no result JSON, so the env knob is a no-op there.
    if [[ $json_enabled -eq 1 ]]; then
        BTBSIM_JSON_OUT="$json_dir/${name}.json" "$b" 2>&1 |
            tee "results/$name.txt"
    else
        BTBSIM_JSON_OUT=0 "$b" 2>&1 | tee "results/$name.txt"
    fi
done
elapsed=$SECONDS

# Per-shard utilization, read back from the "experiment" block of each
# result JSON (exp.shard<i>.util = shard busy time / sweep wall time).
if [[ "$shards" != 0 && $json_enabled -eq 1 ]]; then
    echo "=== per-shard utilization (from result JSON) ==="
    for f in "$json_dir"/*.json; do
        [[ -f "$f" ]] || continue
        util=$(grep -o '"exp\.shard[0-9]*\.util": *[0-9.eE+-]*' "$f" |
               sed 's/"exp\.\(shard[0-9]*\)\.util": */\1=/' |
               tr '\n' ' ' || true)
        [[ -n "$util" ]] && echo "  $(basename "$f"): $util"
    done
fi

if [[ $replay -eq 1 ]]; then
    if [[ -f results/.wall_live ]]; then
        live=$(cat results/.wall_live)
        echo "=== replay wall clock: ${elapsed}s (last live run: ${live}s," \
             "saved $((live - elapsed))s) ==="
    else
        echo "=== replay wall clock: ${elapsed}s (no live baseline yet) ==="
    fi
else
    echo "$elapsed" >results/.wall_live
    echo "=== live wall clock: ${elapsed}s ==="
fi
