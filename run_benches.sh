#!/bin/bash
# Regenerate every paper figure/table. Scale via BTBSIM_WARMUP /
# BTBSIM_MEASURE / BTBSIM_TRACES.
#
# Each sim bench also writes machine-readable results to
# results/<bench>.json (schema documented in src/obs/export.h); inspect or
# regression-compare them with build/src/tools/btbsim-stats.
set -euo pipefail
cd "$(dirname "$0")"
mkdir -p results
for b in build/bench/bench_*; do
    name=$(basename "$b")
    echo "=== $name ==="
    # bench_simspeed (google-benchmark) and bench_characterization
    # (analyzer-only) produce no result JSON; the env knob is a no-op there.
    BTBSIM_JSON_OUT="results/${name}.json" "$b" 2>&1 | tee "results/$name.txt"
done
