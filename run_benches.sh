#!/bin/bash
# Regenerate every paper figure/table. Scale via BTBSIM_WARMUP /
# BTBSIM_MEASURE / BTBSIM_TRACES.
set -u
cd "$(dirname "$0")"
mkdir -p results
for b in build/bench/bench_*; do
    name=$(basename "$b")
    echo "=== $name ==="
    "$b" 2>&1 | tee "results/$name.txt"
done
