/**
 * @file
 * Figure 11a: limit study — MB-BTB 64 AllBr vs I-BTB 16 with idealistic
 * 512K-entry BTBs and an ideal backend constrained only by data
 * dependencies in an 8K-instruction window. Speedup is reported per
 * workload against its average dynamic basic-block size.
 */

#include <algorithm>
#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 11a — MB-BTB limit study (ideal backend)",
                        "Figure 11a (Section 6.5.2)");

    CpuConfig ibtb = idealIbtb16().withIdealBackend();
    CpuConfig mb;
    mb.btb = BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64).makeIdeal();
    mb = mb.withIdealBackend();

    ResultSet rs = runAll(ctx, {ibtb, mb});

    struct Row
    {
        std::string workload;
        double bb;
        double speedup;
    };
    std::vector<Row> rows;
    for (const std::string &wl : rs.workloads()) {
        const SimStats *a = rs.find("I-BTB 16 (ideal)", wl);
        const SimStats *b = rs.find(mb.btb.name(), wl);
        if (a && b)
            rows.push_back({wl, a->avg_dyn_bb_size, b->ipc / a->ipc});
    }
    std::sort(rows.begin(), rows.end(),
              [](const Row &x, const Row &y) { return x.bb < y.bb; });

    std::printf("%-12s %10s %14s\n", "workload", "dynBBsize",
                "MB/I speedup");
    std::printf("%s\n", std::string(38, '-').c_str());
    std::vector<double> speedups;
    for (const Row &r : rows) {
        std::printf("%-12s %10.2f %14.3f\n", r.workload.c_str(), r.bb,
                    r.speedup);
        speedups.push_back(r.speedup);
    }
    std::printf("%-12s %10s %14.3f  (min %.3f, max %.3f)\n\n", "geomean", "",
                geomean(speedups), vecMin(speedups), vecMax(speedups));

    exportResults(rs, "I-BTB 16 (ideal)");

    expectation(
        "With a dataflow-limited backend, MB-BTB 64 AllBr beats I-BTB 16 "
        "significantly (paper: 13.4%% geomean, 6.0%%-15.6%%), and the "
        "speedup falls as the average dynamic basic-block size grows "
        "(large blocks already saturate a one-block-per-cycle frontend).");
    return bench::finish();
}
