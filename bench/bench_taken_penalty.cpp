/**
 * @file
 * Introduction / Section 3.6.1 limit study: cost of a 1-cycle taken-branch
 * penalty with a very large (512K-entry) I-BTB. The paper reports 0.8%
 * geomean IPC loss (up to 2.2%).
 */

#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Limit study — 1-cycle taken-branch penalty",
                        "Section 1 / Section 3.6.1");

    CpuConfig zero = idealIbtb16();

    // Same huge BTB, but every taken branch costs one bubble: model by
    // giving the single (L1) level a miss-free backing with penalty via
    // the L2 path: route all hits through a 1-cycle-penalty level.
    CpuConfig one = idealIbtb16();
    one.btb.ideal = false;
    one.btb.l1 = {1, 1};          // effectively always miss L1
    one.btb.l2 = {16384, 32};     // huge second level
    one.btb.l2_penalty = 1;       // 1-cycle taken-branch bubble

    std::vector<double> ratios;
    ResultSet rs;
    std::printf("%-12s %10s %10s %10s\n", "workload", "IPC 0c", "IPC 1c",
                "loss%%");
    std::printf("%s\n", std::string(46, '-').c_str());
    for (const WorkloadSpec &spec : ctx.suite) {
        SimStats a = runOne(zero, spec, ctx.opt);
        SimStats b = runOne(one, spec, ctx.opt);
        ratios.push_back(b.ipc / a.ipc);
        std::printf("%-12s %10.3f %10.3f %9.2f%%\n", spec.name.c_str(),
                    a.ipc, b.ipc, 100.0 * (1.0 - b.ipc / a.ipc));
        b.config += " 1c-taken"; // Same BTB name; tag the penalized runs.
        rs.add(a);
        rs.add(b);
    }
    std::printf("%-12s %21s %9.2f%%  (max %.2f%%)\n\n", "geomean", "",
                100.0 * (1.0 - geomean(ratios)),
                100.0 * (1.0 - vecMin(ratios)));

    exportResults(rs, zero.btb.name());

    expectation(
        "A 1-cycle taken-branch penalty costs around 1%% geomean IPC (paper: "
        "0.8%%, up to 2.2%%) even though decoupling hides most bubbles — "
        "pipeline refills and high-IPC phases still feel them.");
    return 0;
}
