/**
 * @file
 * Host-throughput microbench: simulation speed (Mi/s of simulated
 * instructions per host second) for each of the five BTB organizations
 * over the synthetic server suite. This tracks the speed of the
 * *simulator*, not of the simulated frontend — run it on a Release build
 * and compare geomeans across commits to catch host-side regressions in
 * the PcGen/BtbOrg hot path.
 *
 * Scale with BTBSIM_WARMUP / BTBSIM_MEASURE / BTBSIM_TRACES like the
 * figure benches. Each (organization, workload) point is timed over
 * kReps runs and the fastest rep is kept (best-of-N rejects scheduler
 * noise on loaded hosts). BTBSIM_JSON_OUT writes the host JSON block
 * (schema "btbsim-simspeed-v1") to the given path, or to
 * results/bench_simspeed.json when set to 1.
 */

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "sim/cpu.h"
#include "sim/runner.h"
#include "trace/suite.h"

using namespace btbsim;

namespace {

constexpr int kReps = 2;

/** One canonical configuration per organization (Table 1 geometry). */
std::vector<CpuConfig>
speedConfigs()
{
    std::vector<BtbConfig> btbs = {
        BtbConfig::ibtb(16),
        BtbConfig::rbtb(3),
        BtbConfig::bbtb(2),
        BtbConfig::mbbtb(3, PullPolicy::kAllBr),
        BtbConfig::hetero(2),
    };
    std::vector<CpuConfig> cfgs;
    for (const BtbConfig &b : btbs) {
        CpuConfig c;
        c.btb = b;
        cfgs.push_back(c);
    }
    return cfgs;
}

/** Best-of-kReps simulation throughput in Mi/s for one point. */
double
timePoint(const CpuConfig &cfg, Workload &wl, const RunOptions &opt)
{
    double best = 0.0;
    for (int rep = 0; rep < kReps; ++rep) {
        wl.reset();
        Cpu cpu(cfg, wl);
        const auto t0 = std::chrono::steady_clock::now();
        cpu.run(opt.warmup, opt.measure);
        const auto t1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(t1 - t0).count();
        const double insts = static_cast<double>(opt.warmup) +
                             static_cast<double>(cpu.stats().instructions);
        const double mips = secs > 0 ? insts / 1e6 / secs : 0.0;
        if (mips > best)
            best = mips;
    }
    return best;
}

double
geomeanOf(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double acc = 0.0;
    for (double x : v)
        acc += std::log(x);
    return std::exp(acc / static_cast<double>(v.size()));
}

struct OrgResult
{
    std::string config;
    std::vector<double> mips; ///< One per workload, suite order.
    double geo = 0.0;
};

void
writeJson(const std::vector<OrgResult> &orgs,
          const std::vector<WorkloadSpec> &suite, const RunOptions &opt,
          double overall, const std::string &path)
{
    std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    std::ofstream os(p);
    if (!os) {
        std::fprintf(stderr, "simspeed: cannot write %s\n", path.c_str());
        return;
    }
    os << "{\n  \"schema\": \"btbsim-simspeed-v1\",\n"
       << "  \"bench\": \"simspeed\",\n"
#ifdef NDEBUG
       << "  \"build\": \"optimized\",\n"
#else
       << "  \"build\": \"debug\",\n"
#endif
       << "  \"warmup\": " << opt.warmup << ",\n"
       << "  \"measure\": " << opt.measure << ",\n"
       << "  \"reps\": " << kReps << ",\n"
       << "  \"geomean_minst_per_sec\": " << overall << ",\n"
       << "  \"orgs\": [\n";
    for (std::size_t i = 0; i < orgs.size(); ++i) {
        const OrgResult &o = orgs[i];
        os << "    {\"config\": \"" << o.config
           << "\", \"geomean_minst_per_sec\": " << o.geo
           << ", \"workloads\": [";
        for (std::size_t w = 0; w < o.mips.size(); ++w) {
            os << "{\"workload\": \"" << suite[w].name
               << "\", \"minst_per_sec\": " << o.mips[w] << "}";
            if (w + 1 < o.mips.size())
                os << ", ";
        }
        os << "]}" << (i + 1 < orgs.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    std::printf("wrote %s\n", path.c_str());
}

} // namespace

int
main()
{
    const RunOptions opt = RunOptions::fromEnv();
    const std::vector<WorkloadSpec> suite = serverSuite(opt.traces);
    const std::vector<CpuConfig> configs = speedConfigs();

    std::printf("=== Simulator host throughput (Mi/s, best of %d) ===\n",
                kReps);
#ifndef NDEBUG
    std::printf("note: assertions enabled — compare Release builds only\n");
#endif
    std::printf("scale: warmup=%llu measure=%llu traces=%zu\n\n",
                static_cast<unsigned long long>(opt.warmup),
                static_cast<unsigned long long>(opt.measure), suite.size());

    // Workloads are generated once and reset between points so timing
    // excludes program generation.
    std::vector<std::unique_ptr<Workload>> workloads;
    workloads.reserve(suite.size());
    for (const WorkloadSpec &spec : suite)
        workloads.push_back(makeWorkload(spec));

    std::printf("%-22s", "config");
    for (const WorkloadSpec &spec : suite)
        std::printf(" %10s", spec.name.c_str());
    std::printf(" %10s\n", "geomean");

    std::vector<OrgResult> results;
    std::vector<double> geos;
    for (const CpuConfig &cfg : configs) {
        OrgResult r;
        r.config = cfg.btb.name();
        for (auto &wl : workloads)
            r.mips.push_back(timePoint(cfg, *wl, opt));
        r.geo = geomeanOf(r.mips);
        geos.push_back(r.geo);

        std::printf("%-22s", r.config.c_str());
        for (double m : r.mips)
            std::printf(" %10.3f", m);
        std::printf(" %10.3f\n", r.geo);
        results.push_back(std::move(r));
    }

    const double overall = geomeanOf(geos);
    std::printf("\noverall geomean: %.3f Mi/s\n", overall);

    const std::string json =
        env::outPath("BTBSIM_JSON_OUT", "results/bench_simspeed.json");
    if (!json.empty())
        writeJson(results, suite, opt, overall, json);
    return 0;
}
