/**
 * @file
 * Simulator micro-benchmarks (google-benchmark): trace generation and
 * interpretation throughput, plus full-pipeline simulation speed for each
 * BTB organization. Useful for tracking performance regressions of the
 * simulator itself.
 */

#include <benchmark/benchmark.h>

#include "sim/cpu.h"
#include "trace/generator.h"
#include "trace/suite.h"
#include "trace/synthetic_trace.h"

using namespace btbsim;

namespace {

const Program &
benchProgram()
{
    static const Program prog = [] {
        GenParams p;
        p.seed = 0x5151;
        p.target_static_insts = 48 * 1024;
        p.num_handlers = 8;
        return generateProgram(p);
    }();
    return prog;
}

void
BM_GenerateProgram(benchmark::State &state)
{
    GenParams p;
    p.seed = 0x1234;
    p.target_static_insts = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        Program prog = generateProgram(p);
        benchmark::DoNotOptimize(prog.insts.data());
    }
    state.SetItemsProcessed(state.iterations() * p.target_static_insts);
}

void
BM_InterpretTrace(benchmark::State &state)
{
    SyntheticTrace trace(benchProgram(), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(trace.next().pc);
    state.SetItemsProcessed(state.iterations());
}

void
BM_SimulateOrg(benchmark::State &state)
{
    const auto kind = static_cast<BtbKind>(state.range(0));
    CpuConfig cfg;
    switch (kind) {
      case BtbKind::kInstruction:
        cfg.btb = BtbConfig::ibtb(16);
        break;
      case BtbKind::kRegion:
        cfg.btb = BtbConfig::rbtb(3);
        break;
      case BtbKind::kBlock:
        cfg.btb = BtbConfig::bbtb(1, true);
        break;
      case BtbKind::kMultiBlock:
        cfg.btb = BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64);
        break;
    }
    const std::uint64_t chunk = 100'000;
    SyntheticTrace trace(benchProgram(), 2);
    Cpu cpu(cfg, trace);
    for (auto _ : state)
        cpu.run(0, chunk);
    state.SetItemsProcessed(static_cast<std::int64_t>(cpu.committed()));
    state.SetLabel(cfg.btb.name());
}

} // namespace

BENCHMARK(BM_GenerateProgram)->Arg(16 * 1024)->Arg(64 * 1024)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_InterpretTrace);
BENCHMARK(BM_SimulateOrg)
    ->Arg(static_cast<int>(BtbKind::kInstruction))
    ->Arg(static_cast<int>(BtbKind::kRegion))
    ->Arg(static_cast<int>(BtbKind::kBlock))
    ->Arg(static_cast<int>(BtbKind::kMultiBlock))
    ->Unit(benchmark::kMillisecond)->Iterations(5);

BENCHMARK_MAIN();
