/**
 * @file
 * Decode-based BTB prefill extension (Section 7.3, Boomerang-style): on
 * every L1I miss the incoming line is predecoded and its direct
 * unconditional branches/calls are inserted into the BTB, shrinking the
 * misfetch rate of organizations whose entries are not tied to dynamic
 * blocks (I-BTB, R-BTB; block organizations ignore prefill, matching the
 * paper's remark that decode-based prefetching cannot chain blocks).
 */

#include <cmath>
#include <cstdio>

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Extension — decode-based BTB prefill",
                        "Section 7.3 (BTB prefetching)");

    struct Variant
    {
        BtbConfig btb;
        bool prefill;
    };
    const std::vector<Variant> variants = {
        {BtbConfig::ibtb(16), false},
        {BtbConfig::ibtb(16), true},
        {BtbConfig::rbtb(3), false},
        {BtbConfig::rbtb(3), true},
        {BtbConfig::hetero(1, true), false},
        {BtbConfig::hetero(1, true), true},
    };

    std::printf("%-24s %9s %9s %9s %9s\n", "config", "IPC(gm)", "MFPKI",
                "MPKI", "L1hit%");
    std::printf("%s\n", std::string(64, '-').c_str());
    ResultSet rs;
    for (const Variant &v : variants) {
        CpuConfig cfg;
        cfg.btb = v.btb;
        cfg.btb_predecode_fill = v.prefill;
        double ipc = 1.0, mf = 0, mp = 0, hit = 0;
        for (const WorkloadSpec &spec : ctx.suite) {
            SimStats s = runOne(cfg, spec, ctx.opt);
            ipc *= s.ipc;
            mf += s.misfetch_pki;
            mp += s.branch_mpki;
            hit += s.l1_btb_hitrate;
            if (v.prefill)
                s.config += " +pf";
            rs.add(s);
        }
        const double n = static_cast<double>(ctx.suite.size());
        std::printf("%-24s %9.3f %9.2f %9.2f %9.1f\n",
                    (v.btb.name() + (v.prefill ? " +pf" : "")).c_str(),
                    std::pow(ipc, 1.0 / n), mf / n, mp / n,
                    100.0 * hit / n);
    }
    std::printf("\n");

    exportResults(rs, "");

    expectation(
        "Prefill removes most cold/capacity misfetches on unconditional "
        "branches and calls for the I-BTB and R-BTB (and feeds the "
        "heterogeneous hierarchy's region L2 directly); conditional and "
        "indirect-branch mispredictions are untouched, so the IPC gain "
        "tracks the misfetch share of the resteer mix.");
    return 0;
}
