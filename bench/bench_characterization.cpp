/**
 * @file
 * Workload characterization table: the trace statistics the paper cites in
 * its background/methodology sections (dynamic basic-block size, branch
 * class mix, code footprints), measured on the synthetic server suite.
 */

#include <cstdio>

#include "bench_common.h"
#include "trace/analyzer.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Workload characterization",
                        "Sections 1, 2 and 4 statistics");

    std::printf("%-10s %8s %7s %7s %7s %7s %7s %8s %8s\n", "workload",
                "codeKB", "BBsize", "nvrT%", "alwT%", "1tgtI%", "ret%",
                "90%KB", "100%KB");
    std::printf("%s\n", std::string(76, '-').c_str());

    double bb = 0, nt = 0, at = 0, sti = 0, c90 = 0, c100 = 0;
    for (const WorkloadSpec &spec : ctx.suite) {
        auto w = makeWorkload(spec);
        const TraceProperties p =
            analyzeTrace(*w, ctx.opt.warmup + ctx.opt.measure);
        std::printf("%-10s %8.0f %7.2f %7.1f %7.1f %7.1f %7.1f %8.0f %8.0f\n",
                    spec.name.c_str(),
                    w->program().footprintBytes() / 1024.0, p.avg_bb_size,
                    100.0 * p.frac_never_taken_cond,
                    100.0 * p.frac_always_taken_cond,
                    100.0 * p.frac_single_target_indirect,
                    100.0 * p.frac_returns, p.bytes_for_90pct / 1024.0,
                    p.bytes_for_100pct / 1024.0);
        bb += p.avg_bb_size;
        nt += p.frac_never_taken_cond;
        at += p.frac_always_taken_cond;
        sti += p.frac_single_target_indirect;
        c90 += static_cast<double>(p.bytes_for_90pct) / 1024.0;
        c100 += static_cast<double>(p.bytes_for_100pct) / 1024.0;
    }
    const double n = static_cast<double>(ctx.suite.size());
    std::printf("%-10s %8s %7.2f %7.1f %7.1f %7.1f %7s %8.0f %8.0f\n\n",
                "mean", "", bb / n, 100.0 * nt / n, 100.0 * at / n,
                100.0 * sti / n, "", c90 / n, c100 / n);

    expectation(
        "Paper (CVP-1 server traces): avg dynamic basic block 9.4 "
        "instructions; 34.8%% of dynamic branches are never-taken "
        "conditionals; 15.0%% always-taken conditionals; 9.1%% "
        "single-target indirects; 138KB average for 90%% dynamic line "
        "coverage (319KB for 100%%).");
    return 0;
}
