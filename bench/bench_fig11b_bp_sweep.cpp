/**
 * @file
 * Figure 11b: shrinking the conditional branch predictor from 64KB down
 * to 2KB raises branch MPKI; the speedup of MB-BTB 64 AllBr over I-BTB 16
 * (512K-entry BTBs, realistic backend) grows with MPKI because the
 * multi-block frontend refills the pipeline faster after each flush.
 */

#include <cstdio>

#include "bench_common.h"
#include "common/stats.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 11b — MB-BTB speedup vs branch predictor size",
                        "Figure 11b (Section 6.5.2)");

    std::printf("%-8s %10s %12s %12s %12s\n", "BP size", "avg MPKI",
                "min spdup", "geomean", "max spdup");
    std::printf("%s\n", std::string(58, '-').c_str());

    ResultSet rs;
    for (unsigned kb : {64u, 32u, 16u, 8u, 4u, 2u}) {
        CpuConfig ibtb = idealIbtb16();
        ibtb.bpred.perceptron = PerceptronConfig::ofSizeKB(kb);
        CpuConfig mb;
        mb.btb = BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64).makeIdeal();
        mb.bpred.perceptron = PerceptronConfig::ofSizeKB(kb);

        std::vector<double> speedups;
        double mpki = 0.0;
        for (const WorkloadSpec &spec : ctx.suite) {
            SimStats a = runOne(ibtb, spec, ctx.opt);
            SimStats b = runOne(mb, spec, ctx.opt);
            speedups.push_back(b.ipc / a.ipc);
            mpki += a.branch_mpki;
            // Distinguish predictor sizes in the exported results.
            a.config += " bp" + std::to_string(kb) + "KB";
            b.config += " bp" + std::to_string(kb) + "KB";
            rs.add(a);
            rs.add(b);
        }
        mpki /= static_cast<double>(ctx.suite.size());
        std::printf("%5uKB %10.2f %12.3f %12.3f %12.3f\n", kb, mpki,
                    vecMin(speedups), geomean(speedups), vecMax(speedups));
    }
    std::printf("\n");

    exportResults(rs, "");

    expectation(
        "Geomean MPKI rises as the predictor shrinks, and the MB-BTB "
        "speedup over I-BTB 16 rises with it (paper: from ~1.00 at 64KB "
        "toward ~1.02+ at 2KB, with the max across traces growing "
        "faster): pipeline refills expose the multi-block advantage.");
    return 0;
}
