/**
 * @file
 * Figure 7: R-BTB improvements — even/odd set-interleaved L1 (2L1 R-BTB,
 * Section 6.2), same-geometry entries with 16 branch slots (overflow
 * upper bound), and 128B regions with 2/3/4/6 slots.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 7 — R-BTB improvements",
                        "Figure 7 (Section 6.5.1)");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    configs.push_back(realIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    add(BtbConfig::rbtb(2));
    add(BtbConfig::rbtb(2, 64, /*dual=*/true)); // 2L1 R-BTB 2BS
    add(BtbConfig::rbtb(3));
    add(BtbConfig::rbtb(3, 64, /*dual=*/true)); // 2L1 R-BTB 3BS

    // Same geometry as the 2BS/3BS configs but 16 slots per entry: an
    // upper bound on shared "overflow" slot storage.
    {
        BtbConfig b = BtbConfig::rbtb(16);
        BtbConfig::realGeometry(2, b.l1, b.l2);
        add(b);
    }
    {
        BtbConfig b = BtbConfig::rbtb(16);
        BtbConfig::realGeometry(3, b.l1, b.l2);
        add(b);
    }

    for (unsigned slots : {2u, 3u, 4u, 6u})
        add(BtbConfig::rbtb(slots, 128));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "2L1 interleaving helps only slightly (paper: up to 1.4%%, 0.5%% "
        "geomean for 2BS); keeping the 2BS/3BS geometry but 16 slots per "
        "entry recovers near-I-BTB performance (pressure is on slots, not "
        "entries); 128B regions need ~4 slots to pay off and lose again at "
        "6 slots (too few entries). Best realistic R-BTB: 2L1 3BS.");
    return bench::finish();
}
