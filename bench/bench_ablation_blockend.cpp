/**
 * @file
 * Block-termination policy ablation (Section 2.3): the baseline lets
 * sometimes-taken conditionals fall through until the reach limit (the
 * fall-through stays computable in parallel with the BTB access); the
 * Yeh/Patt-style alternative ends the block at any so-far-taken branch,
 * trading storage (more entries, stored fall-throughs) for the precision
 * of shorter blocks.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Ablation — block termination policy",
                        "Section 2.3 baseline choice");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    for (unsigned slots : {1u, 2u}) {
        add(BtbConfig::bbtb(slots));
        BtbConfig ce = BtbConfig::bbtb(slots);
        ce.cond_ends_block = true;
        add(ce);
        BtbConfig sp = BtbConfig::bbtb(slots, /*split=*/true);
        add(sp);
        BtbConfig both = BtbConfig::bbtb(slots, /*split=*/true);
        both.cond_ends_block = true;
        add(both);
    }

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "Ending blocks at taken conditionals reduces slot pressure per "
        "entry (each block holds fewer branches) but allocates more "
        "entries and more redundant fall-through blocks — the additional "
        "performance the paper attributes to the Yeh/Patt definition "
        "shows mostly at one branch slot, where it overlaps with what "
        "splitting already provides.");
    return bench::finish();
}
