#include "bench_common.h"

#include <cstdio>
#include <iostream>

namespace btbsim::bench {

Context
setup(const std::string &title, const std::string &paper_ref)
{
    Context ctx;
    ctx.opt = RunOptions::fromEnv();
    ctx.suite = serverSuite(ctx.opt.traces);
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s of Perais & Sheikh, \"Branch Target Buffer\n"
                "Organizations\", MICRO 2023.\n",
                paper_ref.c_str());
    std::printf("%zu workloads, %llu warmup + %llu measured instructions each\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.opt.warmup),
                static_cast<unsigned long long>(ctx.opt.measure));
    std::printf("==============================================================\n\n");
    return ctx;
}

CpuConfig
idealIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    cfg.btb.makeIdeal();
    return cfg;
}

CpuConfig
realIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    return cfg;
}

ResultSet
runAll(const Context &ctx, const std::vector<CpuConfig> &configs)
{
    ResultSet rs;
    for (const CpuConfig &cfg : configs) {
        std::printf("  running %-28s", cfg.btb.name().c_str());
        std::fflush(stdout);
        for (const WorkloadSpec &spec : ctx.suite) {
            rs.add(runOne(cfg, spec, ctx.opt));
            std::printf(".");
            std::fflush(stdout);
        }
        const double gm = geomeanIpc(rs.all(), cfg.btb.name());
        std::printf(" geomean IPC %.3f\n", gm);
    }
    std::printf("\n");
    return rs;
}

void
printFigure(const ResultSet &results, const std::string &baseline)
{
    std::printf("IPC normalized to %s:\n", baseline.c_str());
    results.printNormalizedTable(std::cout, baseline);
    std::printf("\nPer-configuration detail (suite means):\n");
    results.printDetailTable(std::cout);
    std::printf("\n");
}

void
expectation(const std::string &text)
{
    std::printf("Paper-shape expectation: %s\n\n", text.c_str());
}

} // namespace btbsim::bench
