#include "bench_common.h"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "common/env.h"
#include "exp/experiment.h"
#include "obs/export.h"
#include "obs/span.h"
#include "serve/shard_pool.h"
#include "traceio/replay_env.h"

namespace btbsim::bench {

namespace {

/// Slug of the running bench's title, for default output file names.
std::string g_bench_slug = "bench";

/// Experiment metrics of the last runAll (embedded in the result JSON).
std::map<std::string, double> g_exp_counters;
bool g_have_experiment = false;

/// Failed (config, workload) labels + errors, for finish().
std::vector<std::string> g_failures;

} // namespace

Context
setup(const std::string &title, const std::string &paper_ref)
{
    obs::ObsSpan span("setup");
    Context ctx;
    ctx.opt = RunOptions::fromEnv();
    ctx.suite = serverSuite(ctx.opt.traces);
    g_bench_slug = obs::slugify(title);
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s of Perais & Sheikh, \"Branch Target Buffer\n"
                "Organizations\", MICRO 2023.\n",
                paper_ref.c_str());
    std::printf("%zu workloads, %llu warmup + %llu measured instructions each\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.opt.warmup),
                static_cast<unsigned long long>(ctx.opt.measure));
    if (const std::string dir = traceio::replayDirFromEnv(); !dir.empty()) {
        std::size_t recorded = 0;
        for (const WorkloadSpec &spec : ctx.suite)
            if (std::filesystem::exists(traceio::replayPath(dir, spec.name)))
                ++recorded;
        std::printf("trace replay: %s (%zu/%zu workloads recorded)\n",
                    dir.c_str(), recorded, ctx.suite.size());
    }
    std::printf("==============================================================\n\n");
    return ctx;
}

CpuConfig
idealIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    cfg.btb.makeIdeal();
    return cfg;
}

CpuConfig
realIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    return cfg;
}

ResultSet
runAll(const Context &ctx, const std::vector<CpuConfig> &configs)
{
    exp::ExperimentOptions opt = exp::ExperimentOptions::fromEnv();
    opt.run = ctx.opt;
    // BTBSIM_SHARDS=N: run the sweep on the persistent in-process shard
    // pool (shared replay-chunk cache) instead of per-sweep threads.
    serve::ShardPool *pool = serve::applyEnvPool(opt);

    // Compact live progress: one char per completed point.
    const std::size_t total = configs.size() * ctx.suite.size();
    std::size_t done = 0;
    opt.on_point = [&](const exp::PointResult &p) {
        char c = '.';
        switch (p.status) {
          case exp::PointStatus::kCached:
            c = 'c';
            break;
          case exp::PointStatus::kFailed:
            c = 'F';
            break;
          case exp::PointStatus::kSkipped:
            c = 's';
            break;
          default:
            break;
        }
        std::printf("%c", c);
        if (++done % 64 == 0 || done == total)
            std::printf(" [%zu/%zu]\n", done, total);
        std::fflush(stdout);
    };

    std::printf("  sweep: %zu configs x %zu workloads = %zu points%s\n",
                configs.size(), ctx.suite.size(), total,
                opt.cache_dir.empty()
                    ? " (run cache off)"
                    : (" (cache: " + opt.cache_dir +
                       (opt.resume ? ", resuming" : "") + ")")
                          .c_str());
    if (pool)
        std::printf("  shard pool: %u shards (BTBSIM_SHARDS), shared "
                    "chunk cache\n",
                    pool->shards());
    const exp::ExperimentResult res =
        exp::runExperiment(g_bench_slug, configs, ctx.suite, std::move(opt));

    ResultSet rs;
    for (const SimStats &s : res.stats())
        rs.add(s);

    // Per-config geomeans, as the serial runner used to print.
    std::printf("\n");
    for (const CpuConfig &cfg : configs)
        std::printf("  %-28s geomean IPC %.3f\n", cfg.btb.name().c_str(),
                    geomeanIpc(rs.all(), cfg.btb.name()));

    const exp::ExperimentSummary &sum = res.summary;
    std::printf("  experiment: %zu points — %zu simulated, %zu cached "
                "(%.1f%% hits), %zu failed, %zu skipped, %zu retries, "
                "%.2fs\n",
                sum.total, sum.ok, sum.cached, sum.cacheHitRate() * 100.0,
                sum.failed, sum.skipped, sum.retries, sum.wall_seconds);
    if (pool && !res.shards.empty() && sum.wall_seconds > 0.0) {
        std::printf("  shard utilization:");
        for (std::size_t i = 0; i < res.shards.size(); ++i)
            std::printf(" s%zu=%zupt/%.0f%%", i, res.shards[i].points,
                        100.0 * res.shards[i].busy_seconds /
                            sum.wall_seconds);
        std::printf("\n");
    }
    std::printf("\n");

    g_exp_counters = res.counters();
    g_have_experiment = true;
    for (const exp::PointResult *p : res.failures()) {
        const std::string label =
            "(" + p->config + ", " + p->workload + "): " + p->error;
        g_failures.push_back(label);
        std::fprintf(stderr, "btbsim: sweep point FAILED after %u attempts "
                             "%s\n",
                     p->attempts, label.c_str());
    }
    return rs;
}

int
finish()
{
    // Perfetto span dump on bench exit (BTBSIM_SPAN_OUT; off by default).
    const std::string trace_path =
        obs::SpanCollector::instance().writeChromeTraceFromEnv(
            "results/spans/" + g_bench_slug + ".trace.json");
    if (!trace_path.empty())
        std::printf("wrote %s (host span trace)\n", trace_path.c_str());

    if (g_failures.empty())
        return 0;
    std::fprintf(stderr, "btbsim: %zu sweep point(s) failed:\n",
                 g_failures.size());
    for (const std::string &f : g_failures)
        std::fprintf(stderr, "  %s\n", f.c_str());
    return 1;
}

bool
writeJsonTo(const ResultSet &results, const std::string &bench_name,
            const std::string &baseline, const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream os(p);
    if (!os)
        return false;
    // The whole-process host span profile rides along in every result
    // document, so `btbsim-stats prof` works on any bench JSON.
    const obs::ProfileBlock profile =
        obs::SpanCollector::instance().profile();
    results.writeJson(os, bench_name, baseline,
                      g_have_experiment ? &g_exp_counters : nullptr,
                      &profile);
    return static_cast<bool>(os);
}

void
printFigure(const ResultSet &results, const std::string &baseline)
{
    std::printf("IPC normalized to %s:\n", baseline.c_str());
    results.printNormalizedTable(std::cout, baseline);
    std::printf("\nPer-configuration detail (suite means):\n");
    results.printDetailTable(std::cout);
    std::printf("\n");
    exportResults(results, baseline);
}

void
exportResults(const ResultSet &results, const std::string &baseline)
{
    obs::ObsSpan span("export");
    const std::string json_path = env::outPath(
        "BTBSIM_JSON_OUT", "results/" + g_bench_slug + ".json");
    if (!json_path.empty()) {
        if (writeJsonTo(results, g_bench_slug, baseline, json_path))
            std::printf("wrote %s\n\n", json_path.c_str());
        else
            std::fprintf(stderr, "btbsim: failed to write %s\n",
                         json_path.c_str());
    }

    const std::string csv_path = env::outPath(
        "BTBSIM_CSV_OUT", "results/" + g_bench_slug + ".csv");
    if (!csv_path.empty()) {
        const std::filesystem::path p(csv_path);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        std::ofstream os(p);
        if (os) {
            results.writeCsv(os);
            std::printf("wrote %s\n\n", csv_path.c_str());
        } else {
            std::fprintf(stderr, "btbsim: failed to write %s\n",
                         csv_path.c_str());
        }
    }
}

void
expectation(const std::string &text)
{
    std::printf("Paper-shape expectation: %s\n\n", text.c_str());
}

} // namespace btbsim::bench
