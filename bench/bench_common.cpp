#include "bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>

#include "obs/export.h"
#include "traceio/replay_env.h"

namespace btbsim::bench {

namespace {

/// Slug of the running bench's title, for default output file names.
std::string g_bench_slug = "bench";

} // namespace

Context
setup(const std::string &title, const std::string &paper_ref)
{
    Context ctx;
    ctx.opt = RunOptions::fromEnv();
    ctx.suite = serverSuite(ctx.opt.traces);
    g_bench_slug = obs::slugify(title);
    std::printf("==============================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("Reproduces: %s of Perais & Sheikh, \"Branch Target Buffer\n"
                "Organizations\", MICRO 2023.\n",
                paper_ref.c_str());
    std::printf("%zu workloads, %llu warmup + %llu measured instructions each\n",
                ctx.suite.size(),
                static_cast<unsigned long long>(ctx.opt.warmup),
                static_cast<unsigned long long>(ctx.opt.measure));
    if (const std::string dir = traceio::replayDirFromEnv(); !dir.empty()) {
        std::size_t recorded = 0;
        for (const WorkloadSpec &spec : ctx.suite)
            if (std::filesystem::exists(traceio::replayPath(dir, spec.name)))
                ++recorded;
        std::printf("trace replay: %s (%zu/%zu workloads recorded)\n",
                    dir.c_str(), recorded, ctx.suite.size());
    }
    std::printf("==============================================================\n\n");
    return ctx;
}

CpuConfig
idealIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    cfg.btb.makeIdeal();
    return cfg;
}

CpuConfig
realIbtb16()
{
    CpuConfig cfg;
    cfg.btb = BtbConfig::ibtb(16);
    return cfg;
}

ResultSet
runAll(const Context &ctx, const std::vector<CpuConfig> &configs)
{
    ResultSet rs;
    for (const CpuConfig &cfg : configs) {
        std::printf("  running %-28s", cfg.btb.name().c_str());
        std::fflush(stdout);
        for (const WorkloadSpec &spec : ctx.suite) {
            rs.add(runOne(cfg, spec, ctx.opt));
            std::printf(".");
            std::fflush(stdout);
        }
        const double gm = geomeanIpc(rs.all(), cfg.btb.name());
        std::printf(" geomean IPC %.3f\n", gm);
    }
    std::printf("\n");
    return rs;
}

bool
writeJsonTo(const ResultSet &results, const std::string &bench_name,
            const std::string &baseline, const std::string &path)
{
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream os(p);
    if (!os)
        return false;
    results.writeJson(os, bench_name, baseline);
    return static_cast<bool>(os);
}

namespace {

/** Resolve an output env knob: "1"/"true" means the default path,
 *  anything else is taken as the path itself; empty/"0" disables. */
std::string
outPathFromEnv(const char *env, const std::string &default_path)
{
    const char *v = std::getenv(env);
    if (!v || !*v || std::strcmp(v, "0") == 0)
        return {};
    if (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0)
        return default_path;
    return v;
}

} // namespace

void
printFigure(const ResultSet &results, const std::string &baseline)
{
    std::printf("IPC normalized to %s:\n", baseline.c_str());
    results.printNormalizedTable(std::cout, baseline);
    std::printf("\nPer-configuration detail (suite means):\n");
    results.printDetailTable(std::cout);
    std::printf("\n");
    exportResults(results, baseline);
}

void
exportResults(const ResultSet &results, const std::string &baseline)
{
    const std::string json_path =
        outPathFromEnv("BTBSIM_JSON_OUT", "results/" + g_bench_slug + ".json");
    if (!json_path.empty()) {
        if (writeJsonTo(results, g_bench_slug, baseline, json_path))
            std::printf("wrote %s\n\n", json_path.c_str());
        else
            std::fprintf(stderr, "btbsim: failed to write %s\n",
                         json_path.c_str());
    }

    const std::string csv_path =
        outPathFromEnv("BTBSIM_CSV_OUT", "results/" + g_bench_slug + ".csv");
    if (!csv_path.empty()) {
        const std::filesystem::path p(csv_path);
        std::error_code ec;
        if (p.has_parent_path())
            std::filesystem::create_directories(p.parent_path(), ec);
        std::ofstream os(p);
        if (os) {
            results.writeCsv(os);
            std::printf("wrote %s\n\n", csv_path.c_str());
        } else {
            std::fprintf(stderr, "btbsim: failed to write %s\n",
                         csv_path.c_str());
        }
    }
}

void
expectation(const std::string &text)
{
    std::printf("Paper-shape expectation: %s\n\n", text.c_str());
}

} // namespace btbsim::bench
