/**
 * @file
 * Heterogeneous hierarchy study (Section 3.6.2, the paper's future work):
 * a block-organized L1 backed by a region-organized L2 that stores each
 * branch exactly once, compared against the homogeneous hierarchies at
 * iso-branch-slot sizing.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Extension — heterogeneous BTB hierarchy",
                        "Section 3.6.2 (future work)");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    configs.push_back(realIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    add(BtbConfig::bbtb(1, /*split=*/true)); // best homogeneous practical
    add(BtbConfig::rbtb(3, 64, /*dual=*/true));
    add(BtbConfig::hetero(1, /*split=*/true));
    add(BtbConfig::hetero(2, /*split=*/true));
    add(BtbConfig::hetero(2, /*split=*/false));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "The region L2 wastes no capacity on the B-BTB's metadata "
        "redundancy, so at iso-slot sizing the heterogeneous hierarchy "
        "should hold more distinct branches than the homogeneous B-BTB "
        "L2 and lose fewer taken branches entirely — the advantage the "
        "paper hypothesizes when suggesting heterogeneous hierarchies.");
    return bench::finish();
}
