/**
 * @file
 * Figure 8: B-BTB with/without entry splitting (Section 6.3) and MB-BTB
 * with the three pull policies (Section 6.4), for 1-3 branch slots.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 8 — B-BTB splitting and MultiBlock BTB",
                        "Figure 8 (Section 6.5.2)");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    configs.push_back(realIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    add(BtbConfig::rbtb(3, 64, /*dual=*/true)); // best R-BTB from Fig. 7

    add(BtbConfig::bbtb(1));
    add(BtbConfig::bbtb(1, /*split=*/true));
    add(BtbConfig::bbtb(2));
    add(BtbConfig::bbtb(2, /*split=*/true));
    add(BtbConfig::mbbtb(2, PullPolicy::kUncondDir));
    add(BtbConfig::mbbtb(2, PullPolicy::kCallDir));
    add(BtbConfig::mbbtb(2, PullPolicy::kAllBr));
    add(BtbConfig::bbtb(3));
    add(BtbConfig::bbtb(3, /*split=*/true));
    add(BtbConfig::mbbtb(3, PullPolicy::kUncondDir));
    add(BtbConfig::mbbtb(3, PullPolicy::kCallDir));
    add(BtbConfig::mbbtb(3, PullPolicy::kAllBr));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "B-BTB 1BS with splitting is the best practical configuration "
        "(paper: splitting adds 2.6%% geomean at 1BS, reaching 1.78 vs "
        "1.79 for realistic I-BTB); splitting barely matters at 2-3BS; "
        "MB-BTB pull policies help monotonically (UncndDir < CallDir < "
        "AllBr), most at 3BS (entries are scarcer, so chaining recovers "
        "reach), yet MB-BTB 2BS AllBr still trails B-BTB 1BS Splt.");
    return bench::finish();
}
