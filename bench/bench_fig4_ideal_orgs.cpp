/**
 * @file
 * Figure 4: potential of the I-, R- and B-BTB organizations with an
 * idealistic huge (512K-entry) BTB and 0-cycle taken-branch penalty.
 *
 * Configurations: I-BTB 8 / 16 / 16 Skp; R-BTB with 1/2/3/4/16 branch
 * slots; B-BTB with 1/2/3/4/16 branch slots. All normalized to I-BTB 16.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 4 — Idealistic BTB organization potential",
                        "Figure 4 (Section 5)");

    std::vector<CpuConfig> configs;
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b.makeIdeal();
        configs.push_back(c);
    };

    add(BtbConfig::ibtb(16));
    add(BtbConfig::ibtb(8));
    add(BtbConfig::ibtb(16, /*skip=*/true));
    for (unsigned slots : {1u, 2u, 3u, 4u, 16u})
        add(BtbConfig::rbtb(slots));
    for (unsigned slots : {1u, 2u, 3u, 4u, 16u})
        add(BtbConfig::bbtb(slots));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "All organizations sit within a few percent of I-BTB 16; IPC drops "
        "as R-/B-BTB branch slots shrink (untracked-branch misfetches and "
        "mispredictions); R-BTB stays slightly below I-/B-BTB even at 16 "
        "slots because an access cannot cross the region boundary; I-BTB 8 "
        "loses little and I-BTB 16 Skp gains little (throughput beyond the "
        "backend's ILP is wasted). Paper: I-BTB 8 costs up to 2.2% (0.2% "
        "geomean); Skp gains up to 1.4% (0.1% geomean); R-BTB 16BS loses "
        "up to 1.4% (0.2% geomean). Fetch PCs per access: 5.6 (I-BTB 8), "
        "7.7 (I-BTB 16), 15.9 (Skp), 6.2 (R-BTB).");
    return bench::finish();
}
