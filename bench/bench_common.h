/**
 * @file
 * Shared scaffolding for the figure-reproduction benches. Every bench
 * simulates a set of BTB configurations over the server suite and prints
 * the same rows/series the paper reports, normalized to the idealistic
 * 512K-entry I-BTB 16 exactly as the paper does (footnote 5).
 *
 * Scale with environment variables: BTBSIM_WARMUP, BTBSIM_MEASURE
 * (instructions), BTBSIM_TRACES (workload count).
 */

#ifndef BTBSIM_BENCH_BENCH_COMMON_H
#define BTBSIM_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"

namespace btbsim::bench {

/** Everything a bench needs: options and the workload suite. */
struct Context
{
    RunOptions opt;
    std::vector<WorkloadSpec> suite;
};

/** Parse env options, build the suite, print the bench banner. */
Context setup(const std::string &title, const std::string &paper_ref);

/** The paper's normalization baseline: idealistic 512K-entry I-BTB 16. */
CpuConfig idealIbtb16();

/** Table 1 realistic I-BTB 16. */
CpuConfig realIbtb16();

/**
 * Run all configurations over the suite through the experiment engine
 * (exp/experiment.h): points run in parallel, warm points come from the
 * content-addressed run cache (BTBSIM_RUN_CACHE, default results/cache;
 * 0 disables), a failed point is retried and then reported without
 * aborting the sweep, and BTBSIM_RESUME=1 resumes an interrupted sweep.
 * Prints per-point progress, per-config geomeans and the sweep summary
 * (cache-hit rate, failures). Failures are remembered for finish().
 */
ResultSet runAll(const Context &ctx, const std::vector<CpuConfig> &configs);

/**
 * Bench epilogue: prints any failed (config, workload) points recorded
 * by runAll and returns the bench's exit code (1 when the sweep lost
 * points, 0 otherwise). Call as `return bench::finish();` from main.
 */
int finish();

/**
 * Print the normalized-IPC whisker table plus the detail table, then —
 * when BTBSIM_JSON_OUT is set — write the schema-versioned result JSON:
 * to the given path when the value looks like one, otherwise to
 * results/<slug-of-bench-title>.json. BTBSIM_CSV_OUT does the same for
 * the per-run CSV.
 */
void printFigure(const ResultSet &results, const std::string &baseline);

/**
 * Write @p results as result JSON for bench @p bench_name to @p path
 * (parent directories are created). @return false on I/O failure.
 */
bool writeJsonTo(const ResultSet &results, const std::string &bench_name,
                 const std::string &baseline, const std::string &path);

/**
 * Honour BTBSIM_JSON_OUT / BTBSIM_CSV_OUT for @p results (see
 * printFigure). Benches with custom table printing call this directly so
 * every bench produces machine-readable output.
 */
void exportResults(const ResultSet &results, const std::string &baseline);

/** Note the paper's expected qualitative result under the tables. */
void expectation(const std::string &text);

} // namespace btbsim::bench

#endif // BTBSIM_BENCH_BENCH_COMMON_H
