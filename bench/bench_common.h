/**
 * @file
 * Shared scaffolding for the figure-reproduction benches. Every bench
 * simulates a set of BTB configurations over the server suite and prints
 * the same rows/series the paper reports, normalized to the idealistic
 * 512K-entry I-BTB 16 exactly as the paper does (footnote 5).
 *
 * Scale with environment variables: BTBSIM_WARMUP, BTBSIM_MEASURE
 * (instructions), BTBSIM_TRACES (workload count).
 */

#ifndef BTBSIM_BENCH_BENCH_COMMON_H
#define BTBSIM_BENCH_BENCH_COMMON_H

#include <string>
#include <vector>

#include "sim/report.h"
#include "sim/runner.h"

namespace btbsim::bench {

/** Everything a bench needs: options and the workload suite. */
struct Context
{
    RunOptions opt;
    std::vector<WorkloadSpec> suite;
};

/** Parse env options, build the suite, print the bench banner. */
Context setup(const std::string &title, const std::string &paper_ref);

/** The paper's normalization baseline: idealistic 512K-entry I-BTB 16. */
CpuConfig idealIbtb16();

/** Table 1 realistic I-BTB 16. */
CpuConfig realIbtb16();

/** Run all configurations over the suite, printing progress. */
ResultSet runAll(const Context &ctx, const std::vector<CpuConfig> &configs);

/** Print the normalized-IPC whisker table plus the detail table. */
void printFigure(const ResultSet &results, const std::string &baseline);

/** Note the paper's expected qualitative result under the tables. */
void expectation(const std::string &text);

} // namespace btbsim::bench

#endif // BTBSIM_BENCH_BENCH_COMMON_H
