/**
 * @file
 * Figure 10: average fetch PCs per BTB access alongside geomean IPC for
 * the realistic configurations compared throughout Section 6.
 */

#include <cstdio>

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 10 — Fetch PCs per BTB access vs geomean IPC",
                        "Figure 10 (Section 6.5.2)");

    std::vector<CpuConfig> configs;
    configs.push_back(realIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    add(BtbConfig::rbtb(3, 64, /*dual=*/true));
    add(BtbConfig::bbtb(1, /*split=*/true));
    add(BtbConfig::bbtb(2));
    add(BtbConfig::mbbtb(2, PullPolicy::kUncondDir));
    add(BtbConfig::mbbtb(2, PullPolicy::kCallDir));
    add(BtbConfig::mbbtb(2, PullPolicy::kAllBr));
    add(BtbConfig::mbbtb(2, PullPolicy::kAllBr, 32));
    add(BtbConfig::bbtb(3));
    add(BtbConfig::mbbtb(3, PullPolicy::kUncondDir));
    add(BtbConfig::mbbtb(3, PullPolicy::kCallDir));
    add(BtbConfig::mbbtb(3, PullPolicy::kAllBr));
    add(BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64));

    ResultSet rs = runAll(ctx, configs);

    // The figure's two series: fetch PCs per access and geomean IPC.
    std::printf("%-28s %12s %12s\n", "config", "fetchPCs/acc", "geomean IPC");
    std::printf("%s\n", std::string(54, '-').c_str());
    for (const std::string &cfg : rs.configs()) {
        double pcs = 0.0;
        int n = 0;
        for (const SimStats &s : rs.all()) {
            if (s.config != cfg)
                continue;
            pcs += s.fetch_pcs_per_access;
            ++n;
        }
        std::printf("%-28s %12.2f %12.3f\n", cfg.c_str(), pcs / n,
                    geomeanIpc(rs.all(), cfg));
    }
    std::printf("\n");

    exportResults(rs, "I-BTB 16");

    expectation(
        "MB-BTB raises fetch PCs per access well above plain B-BTB at the "
        "same slot count (partially compensating misses by supplying "
        "several blocks per hit), but in this contended setting that does "
        "not beat B-BTB 1BS Splt: avoiding BTB misses matters more than "
        "raw fetch-PC throughput.");
    return bench::finish();
}
