/**
 * @file
 * Figure 9: extending entry reach (block size) without adding branch
 * slots: B-BTB 1BS Splt at 16/32 instructions; MB-BTB 2BS and 3BS AllBr
 * at 16/32/64 instructions.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 9 — Increasing entry reach (block size)",
                        "Figure 9 (Section 6.5.2)");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    add(BtbConfig::bbtb(1, /*split=*/true, 16));
    add(BtbConfig::bbtb(1, /*split=*/true, 32));
    for (unsigned reach : {16u, 32u, 64u})
        add(BtbConfig::mbbtb(2, PullPolicy::kAllBr, reach));
    for (unsigned reach : {16u, 32u, 64u})
        add(BtbConfig::mbbtb(3, PullPolicy::kAllBr, reach));
    // Baseline B-BTB with larger reach for the "unused reach" comparison.
    add(BtbConfig::bbtb(2, false, 32));
    add(BtbConfig::bbtb(2, false, 64));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "Reach barely helps B-BTB 1BS Splt (16 -> 32 negligible) and plain "
        "B-BTB (blocks terminate at unconditional branches long before the "
        "limit); MB-BTB 2BS AllBr gains noticeably from 16 -> 32 (paper: "
        "up to 6.3%%, 1.3%% geomean) then saturates; MB-BTB 3BS AllBr "
        "benefits most (paper: 64-instruction blocks give +6.8%% geomean "
        "over 16).");
    return bench::finish();
}
