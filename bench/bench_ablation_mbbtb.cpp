/**
 * @file
 * MB-BTB design-choice ablations the paper discusses but does not plot:
 *  - the indirect stability threshold (Section 6.4.2 "we experimented
 *    with several thresholds and found ... 63 times in a row works well");
 *  - disallowing the last branch slot from pulling (Section 6.4.2 "a
 *    slight performance advantage").
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Ablation — MB-BTB stability threshold & last-slot pull",
                        "Section 6.4.2 design choices");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };

    // Threshold sweep: pull indirects after 0/3/15/63 consistent targets.
    for (unsigned threshold : {0u, 3u, 15u, 63u}) {
        BtbConfig b = BtbConfig::mbbtb(3, PullPolicy::kAllBr);
        b.stability_threshold = threshold;
        add(b);
    }

    // Last-slot pulling on/off.
    {
        BtbConfig b = BtbConfig::mbbtb(3, PullPolicy::kAllBr);
        b.allow_last_slot_pull = true;
        add(b);
    }
    {
        BtbConfig b = BtbConfig::mbbtb(2, PullPolicy::kAllBr);
        b.allow_last_slot_pull = true;
        add(b);
    }
    add(BtbConfig::mbbtb(2, PullPolicy::kAllBr));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "A very low threshold pulls unstable indirect targets and pays "
        "for the broken chains; a very high one forgoes density. Allowing "
        "the last slot to pull increases redundancy (two call sites of "
        "one function stop sharing its block entry), which the paper "
        "found to cost slightly more than the extra chaining gains.");
    return bench::finish();
}
