/**
 * @file
 * Figure 5: realistic two-level hierarchies (Table 1 sizes): I-BTB 16 vs
 * R-BTB and B-BTB with 1-4 branch slots per entry, structures resized so
 * total branch slots stay constant (Section 6.1). Normalized to the
 * idealistic I-BTB 16.
 */

#include "bench_common.h"

using namespace btbsim;
using namespace btbsim::bench;

int
main()
{
    Context ctx = setup("Fig. 5 — Realistic BTB hierarchies",
                        "Figure 5 (Section 6.1)");

    std::vector<CpuConfig> configs;
    configs.push_back(idealIbtb16());
    configs.push_back(realIbtb16());
    auto add = [&](BtbConfig b) {
        CpuConfig c;
        c.btb = b;
        configs.push_back(c);
    };
    for (unsigned slots : {1u, 2u, 3u, 4u})
        add(BtbConfig::rbtb(slots));
    for (unsigned slots : {1u, 2u, 3u, 4u})
        add(BtbConfig::bbtb(slots));

    ResultSet rs = runAll(ctx, configs);
    printFigure(rs, "I-BTB 16 (ideal)");

    expectation(
        "R-BTB 1BS performs worst (lines hold more than one taken branch); "
        "B-BTB 1BS comes close to realistic I-BTB (paper: 1.74 vs 1.79 "
        "geomean IPC) with the gap explained by redundancy and untracked "
        "branches (combined misfetch+mispredict 5.91 vs 0.84 MPKI, L1 hit "
        "60.8%% vs 76.3%%); adding slots helps R-BTB up to 3BS then flattens, "
        "while it *hurts* B-BTB (blocks start contending for entries).");
    return bench::finish();
}
