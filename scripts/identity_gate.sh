#!/usr/bin/env bash
# Zero-threshold identity gate: re-run every bench with the pinned knobs
# and diff its JSON against the pre-SoA goldens in results/presoa/.
set -u
BUILD=${BUILD:-/root/repo/build-rel}
GOLD=${GOLD:-/root/repo/results/presoa}
OUT=${OUT:-/tmp/identity_gate}
mkdir -p "$OUT"
export BTBSIM_WARMUP=20000 BTBSIM_MEASURE=50000 BTBSIM_TRACES=2 BTBSIM_RUN_CACHE=0
BENCHES="bench_ablation_blockend bench_ablation_mbbtb bench_btb_prefetch
bench_fig10_fetchpcs bench_fig11a_ideal_backend bench_fig11b_bp_sweep
bench_fig4_ideal_orgs bench_fig5_realistic bench_fig7_rbtb
bench_fig8_bbtb_mbbtb bench_fig9_blocksize bench_hetero bench_taken_penalty"
fail=0
for b in $BENCHES; do
    BTBSIM_JSON_OUT="$OUT/$b.json" "$BUILD/bench/$b" >/dev/null 2>&1 || { echo "RUN-FAIL $b"; fail=1; continue; }
    if "$BUILD/src/tools/btbsim-stats" diff "$GOLD/$b.json" "$OUT/$b.json" --threshold 0 >/dev/null 2>&1; then
        echo "OK   $b"
    else
        echo "DIFF $b"
        fail=1
    fi
done
exit $fail
