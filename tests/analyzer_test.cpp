/** @file Tests for the trace property analyzer, including suite calibration. */

#include <gtest/gtest.h>

#include "trace/analyzer.h"
#include "trace/suite.h"

using namespace btbsim;

TEST(Analyzer, SuitePropertiesMatchPaperBallpark)
{
    // The paper reports: avg dynamic basic block 9.4 instructions, 34.8%
    // never-taken conditionals, 15.0% always-taken conditionals, 9.1%
    // single-target indirects, ~138KB of lines for 90% of the dynamic
    // stream. The synthetic suite targets those distributions; assert the
    // suite-wide means are in range.
    const auto suite = serverSuite(6);
    double bb = 0, nt = 0, at = 0, sti = 0, cover = 0;
    for (const WorkloadSpec &spec : suite) {
        auto w = makeWorkload(spec);
        const TraceProperties p = analyzeTrace(*w, 1'500'000);
        bb += p.avg_bb_size;
        nt += p.frac_never_taken_cond;
        at += p.frac_always_taken_cond;
        sti += p.frac_single_target_indirect;
        cover += static_cast<double>(p.bytes_for_90pct);
    }
    const double n = static_cast<double>(suite.size());
    EXPECT_NEAR(bb / n, 9.4, 2.0);
    EXPECT_NEAR(nt / n, 0.348, 0.10);
    EXPECT_NEAR(at / n, 0.15, 0.07);
    EXPECT_GT(sti / n, 0.02);
    EXPECT_GT(cover / n, 64.0 * 1024); // Far exceeds the 32KB L1I.
}

TEST(Analyzer, CountsAreExact)
{
    // Hand-built program: 3 alu + always-taken jump back.
    Program prog;
    StaticInst alu;
    StaticInst jmp;
    jmp.cls = InstClass::kBranch;
    jmp.branch = BranchClass::kUncondDirect;
    jmp.target = 0;
    prog.insts = {alu, alu, alu, jmp};
    prog.entries = {0};
    prog.entry_weights = {1.0};
    ASSERT_EQ(prog.validate(), "");

    SyntheticTrace t(prog, 1);
    const TraceProperties p = analyzeTrace(t, 4000);
    EXPECT_EQ(p.branches, 1000u);
    EXPECT_EQ(p.taken_branches, 1000u);
    EXPECT_DOUBLE_EQ(p.avg_bb_size, 4.0);
    EXPECT_DOUBLE_EQ(p.frac_uncond_direct, 1.0);
    EXPECT_EQ(p.static_branch_sites, 1u);
    // All four instructions live in one 64B line.
    EXPECT_EQ(p.bytes_for_100pct, kLineBytes);
}

TEST(Analyzer, NeverAndAlwaysTakenClassification)
{
    Program prog;
    CondBehavior never;
    never.bias = 0.0;
    CondBehavior always;
    always.bias = 1.0;
    prog.conds = {never, always};

    StaticInst nt;
    nt.cls = InstClass::kBranch;
    nt.branch = BranchClass::kCondDirect;
    nt.behavior = 0;
    nt.target = 0;
    StaticInst at;
    at.cls = InstClass::kBranch;
    at.branch = BranchClass::kCondDirect;
    at.behavior = 1;
    at.target = 3;
    StaticInst alu;
    StaticInst jmp;
    jmp.cls = InstClass::kBranch;
    jmp.branch = BranchClass::kUncondDirect;
    jmp.target = 0;
    // 0: never-taken cond; 1: always-taken cond -> 3; 2: dead alu; 3: jmp 0
    prog.insts = {nt, at, alu, jmp};
    prog.entries = {0};
    prog.entry_weights = {1.0};
    ASSERT_EQ(prog.validate(), "");

    SyntheticTrace t(prog, 1);
    const TraceProperties p = analyzeTrace(t, 3000);
    EXPECT_NEAR(p.frac_never_taken_cond, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(p.frac_always_taken_cond, 1.0 / 3.0, 1e-9);
    EXPECT_NEAR(p.frac_uncond_direct, 1.0 / 3.0, 1e-9);
}

TEST(Analyzer, ResetsSourceAfterUse)
{
    const auto suite = serverSuite(1);
    auto w = makeWorkload(suite.front());
    const Addr first = w->next().pc;
    w->reset();
    analyzeTrace(*w, 10000);
    EXPECT_EQ(w->next().pc, first);
}
