/** @file Tests for the Instruction BTB organization. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/ibtb.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::unique_ptr<BtbOrg>
makeIbtb(unsigned width = 16, bool skip = false)
{
    return makeBtb(BtbConfig::ibtb(width, skip));
}

} // namespace

TEST(Ibtb, MissBeforeAllocation)
{
    auto btb = makeIbtb();
    StepView v = viewAt(*btb, 0x1000, 0x1000);
    EXPECT_EQ(v.kind, StepView::Kind::kSequential);
}

TEST(Ibtb, TakenBranchAllocates)
{
    auto btb = makeIbtb();
    btb->update(branchAt(0x1000, BranchClass::kUncondDirect, 0x2000), false);
    StepView v = viewAt(*btb, 0x1000, 0x1000);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.type, BranchClass::kUncondDirect);
    EXPECT_EQ(v.target, 0x2000u);
    EXPECT_EQ(v.level, 1);
}

TEST(Ibtb, NeverTakenDoesNotAllocate)
{
    auto btb = makeIbtb();
    btb->update(branchAt(0x1000, BranchClass::kCondDirect, 0x2000, false),
                false);
    StepView v = viewAt(*btb, 0x1000, 0x1000);
    EXPECT_EQ(v.kind, StepView::Kind::kSequential);
}

TEST(Ibtb, WindowLimitedByWidth)
{
    auto btb = makeIbtb(8);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 8u);
}

TEST(Ibtb, MidWindowBranchVisible)
{
    auto btb = makeIbtb();
    btb->update(branchAt(0x1010, BranchClass::kCondDirect, 0x3000), false);
    StepView v = viewAt(*btb, 0x1000, 0x1010);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.target, 0x3000u);
}

TEST(Ibtb, SkipModeChainsAcrossTaken)
{
    auto btb = makeIbtb(16, true);
    btb->update(branchAt(0x1000, BranchClass::kUncondDirect, 0x2000), false);
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    StepView v = b.probe(0x1000);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_TRUE(v.follow);
    EXPECT_TRUE(b.chain(*btb, 0x1000, 0x2000));
    // The access continues at the target.
    EXPECT_EQ(b.probe(0x2000).kind, StepView::Kind::kSequential);
    b.finish(*btb);
}

TEST(Ibtb, NonSkipModeDoesNotChain)
{
    auto btb = makeIbtb(16, false);
    btb->update(branchAt(0x1000, BranchClass::kUncondDirect, 0x2000), false);
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    StepView v = b.probe(0x1000);
    EXPECT_FALSE(v.follow);
    EXPECT_FALSE(b.chain(*btb, 0x1000, 0x2000));
    b.finish(*btb);
}

TEST(Ibtb, SkipModeStillBoundedByWidth)
{
    auto btb = makeIbtb(4, true);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 4u);
}

TEST(Ibtb, IndirectTargetRefreshes)
{
    auto btb = makeIbtb();
    btb->update(branchAt(0x1000, BranchClass::kIndirectJump, 0x2000), false);
    btb->update(branchAt(0x1000, BranchClass::kIndirectJump, 0x5000), false);
    StepView v = viewAt(*btb, 0x1000, 0x1000);
    EXPECT_EQ(v.target, 0x5000u);
}

TEST(Ibtb, L2HitReportedAndFillsL1)
{
    // Tiny L1 (1 set x 1 way) with a larger L2.
    BtbConfig cfg = BtbConfig::ibtb(16);
    cfg.l1 = {1, 1};
    cfg.l2 = {16, 4};
    auto btb = makeBtb(cfg);
    btb->update(branchAt(0x1000, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x2000, BranchClass::kUncondDirect, 0x1000), false);
    // 0x1000 was displaced from the 1-entry L1 by 0x2000 but lives in L2.
    StepView v = viewAt(*btb, 0x1000, 0x1000);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
    // The fill promoted it: a second access hits L1.
    v = viewAt(*btb, 0x1000, 0x1000);
    EXPECT_EQ(v.level, 1);
}

TEST(Ibtb, CollidingWindowReportsProbeTimeLevels)
{
    // 1-entry L1: the first slot's deferred L2->L1 fill evicts the second
    // slot's entry, so both probes must report an L2 hit even though the
    // second entry was still L1-resident when the access began (the
    // ShadowL1 overlay mirrors the eviction at fill time).
    BtbConfig cfg = BtbConfig::ibtb(4);
    cfg.l1 = {1, 1};
    cfg.l2 = {16, 4};
    auto btb = makeBtb(cfg);
    btb->update(branchAt(0x1000, BranchClass::kCondDirect, 0x2000), false);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x3000), false);

    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    StepView first = b.probe(0x1000);
    (void)b.probe(0x1004);
    StepView second = b.probe(0x1008);
    b.finish(*btb);
    ASSERT_EQ(first.kind, StepView::Kind::kBranch);
    EXPECT_EQ(first.level, 2);
    ASSERT_EQ(second.kind, StepView::Kind::kBranch);
    EXPECT_EQ(second.level, 2);

    // The replayed lookups really promoted both; the last fill won the
    // single L1 way, so the second branch now hits L1.
    StepView again = viewAt(*btb, 0x1008, 0x1008);
    EXPECT_EQ(again.level, 1);
}

TEST(Ibtb, IdealSingleLevelNeverReportsL2)
{
    BtbConfig cfg = BtbConfig::ibtb(16);
    cfg.makeIdeal();
    auto btb = makeBtb(cfg);
    for (Addr a = 0; a < 1000; ++a)
        btb->update(
            branchAt(0x10000 + a * 8, BranchClass::kUncondDirect, 0x2000),
            false);
    for (Addr a = 0; a < 1000; ++a) {
        StepView v =
            viewAt(*btb, 0x10000 + a * 8, 0x10000 + a * 8);
        ASSERT_EQ(v.kind, StepView::Kind::kBranch);
        EXPECT_EQ(v.level, 1);
    }
}

TEST(Ibtb, OccupancySampleCountsEntries)
{
    auto btb = makeIbtb();
    for (Addr a = 0; a < 100; ++a)
        btb->update(
            branchAt(0x1000 + a * 4, BranchClass::kUncondDirect, 0x9000),
            false);
    OccupancySample s = btb->sampleOccupancy();
    EXPECT_EQ(s.l1_entries, 100u);
    EXPECT_DOUBLE_EQ(s.l1_redundancy, 1.0);
    EXPECT_DOUBLE_EQ(s.l1_slot_occupancy, 1.0);
}

TEST(Ibtb, TakenPenaltyByLevel)
{
    auto btb = makeIbtb();
    EXPECT_EQ(btb->takenPenalty(1), 0u);
    EXPECT_EQ(btb->takenPenalty(2), 3u);
}
