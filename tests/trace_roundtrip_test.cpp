/** @file System tests of trace record → replay: bit-identical SimStats
 *  and a measurable delivery-speed advantage over live generation. */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <vector>

#include "env_util.h"
#include "sim/runner.h"
#include "trace/suite.h"
#include "traceio/replay_env.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"

using namespace btbsim;

namespace {

/** Records @p spec into `<dir>/<name>.btbt`, @p insts instructions long. */
void
recordWorkload(const std::string &dir, const WorkloadSpec &spec,
               std::uint64_t insts)
{
    std::filesystem::create_directories(dir);
    auto wl = makeWorkload(spec);
    traceio::TraceWriter writer(traceio::replayPath(dir, spec.name),
                                spec.name, &wl->program());
    traceio::RecordingSource rec(*wl, writer);
    for (std::uint64_t i = 0; i < insts; ++i)
        rec.next();
    writer.finish();
}

void
expectBitIdentical(const SimStats &a, const SimStats &b)
{
    EXPECT_EQ(a.workload, b.workload);
    EXPECT_EQ(a.config, b.config);
    EXPECT_EQ(a.instructions, b.instructions);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.ipc, b.ipc); // Exact — same arithmetic, same inputs.
    EXPECT_EQ(a.branch_mpki, b.branch_mpki);
    EXPECT_EQ(a.misfetch_pki, b.misfetch_pki);
    EXPECT_EQ(a.combined_mpki, b.combined_mpki);
    EXPECT_EQ(a.cond_mispredict_rate, b.cond_mispredict_rate);
    EXPECT_EQ(a.l1_btb_hitrate, b.l1_btb_hitrate);
    EXPECT_EQ(a.btb_hitrate, b.btb_hitrate);
    EXPECT_EQ(a.fetch_pcs_per_access, b.fetch_pcs_per_access);
    EXPECT_EQ(a.taken_per_ki, b.taken_per_ki);
    EXPECT_EQ(a.l1_slot_occupancy, b.l1_slot_occupancy);
    EXPECT_EQ(a.l2_slot_occupancy, b.l2_slot_occupancy);
    EXPECT_EQ(a.l1_redundancy, b.l1_redundancy);
    EXPECT_EQ(a.l2_redundancy, b.l2_redundancy);
    EXPECT_EQ(a.icache_mpki, b.icache_mpki);
    EXPECT_EQ(a.avg_dyn_bb_size, b.avg_dyn_bb_size);
    EXPECT_EQ(a.counters, b.counters);
    ASSERT_EQ(a.samples.size(), b.samples.size());
    for (std::size_t i = 0; i < a.samples.size(); ++i) {
        EXPECT_EQ(a.samples[i].cycle, b.samples[i].cycle) << i;
        EXPECT_EQ(a.samples[i].instructions, b.samples[i].instructions) << i;
        EXPECT_EQ(a.samples[i].ipc, b.samples[i].ipc) << i;
        EXPECT_EQ(a.samples[i].branch_mpki, b.samples[i].branch_mpki) << i;
    }
}

} // namespace

TEST(TraceRoundTrip, ReplayedRunIsBitIdenticalToLive)
{
    const std::string dir = ::testing::TempDir() + "btbt_roundtrip";

    WorkloadSpec spec = serverSuite(1)[0];
    RunOptions opt;
    opt.warmup = 30'000;
    opt.measure = 80'000;

    // Record more than the run consumes so replay never wraps (a wrap
    // rewrites the seam instruction and would diverge from live).
    recordWorkload(dir, spec, opt.warmup + opt.measure + (64u << 10));

    CpuConfig cfg;
    SimStats live;
    {
        test::ScopedEnv env("BTBSIM_TRACE_DIR", nullptr);
        live = runOne(cfg, spec, opt);
    }
    EXPECT_EQ(live.source_kind, "generated");

    SimStats rep;
    {
        test::ScopedEnv env("BTBSIM_TRACE_DIR", dir.c_str());
        rep = runOne(cfg, spec, opt);
    }
    EXPECT_EQ(rep.source_kind, "replay");
    expectBitIdentical(live, rep);

    EXPECT_GT(live.source_minst_per_sec, 0.0);
    EXPECT_GT(rep.source_minst_per_sec, 0.0);

    std::filesystem::remove_all(dir);
}

TEST(TraceRoundTrip, ReplayDeliversFasterThanGeneration)
{
    const std::string dir = ::testing::TempDir() + "btbt_speed";

    WorkloadSpec spec = serverSuite(1)[0];
    recordWorkload(dir, spec, 512u << 10);

    using clock = std::chrono::steady_clock;
    const std::uint64_t kDrain = 1'500'000;

    auto live = makeWorkload(spec);
    live->reset();
    const auto t0 = clock::now();
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < kDrain; ++i)
        sink += live->next().pc;
    const double live_s = std::chrono::duration<double>(clock::now() - t0)
                              .count();

    // Replay wraps several times over the drain — throughput is about
    // delivery speed, not stream identity. Warm one lap first so the
    // decode-once cache is populated, as it is after any sim run.
    traceio::TraceReplaySource replay(traceio::replayPath(dir, spec.name));
    for (std::uint64_t i = 0; i < replay.instructionCount(); ++i)
        sink += replay.next().pc;
    replay.reset();
    const auto t1 = clock::now();
    for (std::uint64_t i = 0; i < kDrain; ++i)
        sink += replay.next().pc;
    const double replay_s = std::chrono::duration<double>(clock::now() - t1)
                                .count();

    const double live_mips = kDrain / live_s / 1e6;
    const double replay_mips = kDrain / replay_s / 1e6;
    // Goes to the test log: the measured delivery advantage.
    std::printf("[ throughput ] generated %.1f Mi/s, replay %.1f Mi/s "
                "(%.2fx), sink=%llu\n",
                live_mips, replay_mips, replay_mips / live_mips,
                static_cast<unsigned long long>(sink));
    EXPECT_GT(replay_mips, live_mips)
        << "replay must beat live generation (generated " << live_mips
        << " Mi/s, replay " << replay_mips << " Mi/s)";

    std::filesystem::remove_all(dir);
}

TEST(TraceRoundTrip, CorruptRecordingFallsBackToGeneration)
{
    const std::string dir = ::testing::TempDir() + "btbt_fallback";
    std::filesystem::create_directories(dir);

    WorkloadSpec spec = serverSuite(1)[0];
    {
        std::ofstream os(traceio::replayPath(dir, spec.name),
                         std::ios::binary);
        os << "this is not a trace";
    }

    RunOptions opt;
    opt.warmup = 10'000;
    opt.measure = 20'000;
    test::ScopedEnv env("BTBSIM_TRACE_DIR", dir.c_str());
    const SimStats s = runOne(CpuConfig{}, spec, opt);
    // The bad file is diagnosed (to stderr) and the run still completes
    // on the live source.
    EXPECT_EQ(s.source_kind, "generated");
    EXPECT_GT(s.cycles, 0u);

    std::filesystem::remove_all(dir);
}

TEST(TraceRoundTrip, MissingRecordingUsesGeneration)
{
    const std::string dir = ::testing::TempDir() + "btbt_missing";
    std::filesystem::create_directories(dir); // Empty: no .btbt inside.

    WorkloadSpec spec = serverSuite(1)[0];
    RunOptions opt;
    opt.warmup = 10'000;
    opt.measure = 20'000;
    test::ScopedEnv env("BTBSIM_TRACE_DIR", dir.c_str());
    const SimStats s = runOne(CpuConfig{}, spec, opt);
    EXPECT_EQ(s.source_kind, "generated");

    std::filesystem::remove_all(dir);
}
