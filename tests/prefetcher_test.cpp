/** @file Tests for the IP-stride prefetcher. */

#include <gtest/gtest.h>

#include "memory/cache.h"
#include "memory/prefetcher.h"

using namespace btbsim;

namespace {

struct Fixture
{
    Dram dram{4, 100};
    Cache cache{{"L1D", 64, 12, 5, 16, false}, nullptr, &dram};
    IpStridePrefetcher pf{256, 2};
};

} // namespace

TEST(IpStride, DetectsStrideAfterTraining)
{
    Fixture f;
    const Addr pc = 0x4000;
    for (int i = 0; i < 4; ++i)
        f.pf.observe(pc, 0x100000 + static_cast<Addr>(i) * 256, i, f.cache);
    EXPECT_GT(f.pf.issued(), 0u);
    // The next strided lines were prefetched.
    EXPECT_TRUE(f.cache.contains(0x100000 + 4 * 256));
}

TEST(IpStride, IgnoresRandomAccesses)
{
    Fixture f;
    const Addr addrs[] = {0x10000, 0x84000, 0x2000, 0x99000, 0x41000};
    for (int i = 0; i < 5; ++i)
        f.pf.observe(0x4000, addrs[i], i, f.cache);
    EXPECT_EQ(f.pf.issued(), 0u);
}

TEST(IpStride, PerPcStateIsolated)
{
    Fixture f;
    // Two PCs with interleaved but individually strided streams.
    for (int i = 0; i < 6; ++i) {
        f.pf.observe(0x4000, 0x100000 + static_cast<Addr>(i) * 64, i, f.cache);
        f.pf.observe(0x5000, 0x900000 + static_cast<Addr>(i) * 128, i, f.cache);
    }
    EXPECT_TRUE(f.cache.contains(0x100000 + 6 * 64));
    EXPECT_TRUE(f.cache.contains(0x900000 + 6 * 128));
}

TEST(IpStride, StrideChangeResetsConfidence)
{
    Fixture f;
    for (int i = 0; i < 4; ++i)
        f.pf.observe(0x4000, 0x100000 + static_cast<Addr>(i) * 64, i, f.cache);
    const auto issued_before = f.pf.issued();
    // Break the stride; no new prefetches immediately.
    f.pf.observe(0x4000, 0x500000, 10, f.cache);
    f.pf.observe(0x4000, 0x700000, 11, f.cache);
    EXPECT_EQ(f.pf.issued(), issued_before);
}

TEST(IpStride, NegativeStrideWorks)
{
    Fixture f;
    for (int i = 0; i < 5; ++i)
        f.pf.observe(0x4000, 0x200000 - static_cast<Addr>(i) * 64, i, f.cache);
    EXPECT_TRUE(f.cache.contains(0x200000 - 5 * 64));
}
