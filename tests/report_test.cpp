/** @file Tests for result aggregation and report formatting. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/report.h"

using namespace btbsim;

namespace {

SimStats
stat(const std::string &cfg, const std::string &wl, double ipc)
{
    SimStats s;
    s.config = cfg;
    s.workload = wl;
    s.ipc = ipc;
    return s;
}

} // namespace

TEST(Report, FindAndOrder)
{
    ResultSet rs;
    rs.add(stat("A", "w1", 1.0));
    rs.add(stat("B", "w1", 2.0));
    rs.add(stat("A", "w2", 3.0));
    ASSERT_NE(rs.find("A", "w2"), nullptr);
    EXPECT_DOUBLE_EQ(rs.find("A", "w2")->ipc, 3.0);
    EXPECT_EQ(rs.find("C", "w1"), nullptr);
    EXPECT_EQ(rs.configs(), (std::vector<std::string>{"A", "B"}));
    EXPECT_EQ(rs.workloads(), (std::vector<std::string>{"w1", "w2"}));
}

TEST(Report, NormalizedIpc)
{
    ResultSet rs;
    rs.add(stat("base", "w1", 2.0));
    rs.add(stat("base", "w2", 4.0));
    rs.add(stat("test", "w1", 1.0));
    rs.add(stat("test", "w2", 8.0));
    const auto norm = rs.normalizedIpc("test", "base");
    ASSERT_EQ(norm.size(), 2u);
    EXPECT_DOUBLE_EQ(norm[0], 0.5);
    EXPECT_DOUBLE_EQ(norm[1], 2.0);
}

TEST(Report, NormalizedSkipsMissingPairs)
{
    ResultSet rs;
    rs.add(stat("base", "w1", 2.0));
    rs.add(stat("test", "w1", 1.0));
    rs.add(stat("test", "w2", 8.0)); // no baseline for w2
    EXPECT_EQ(rs.normalizedIpc("test", "base").size(), 1u);
}

TEST(Report, GeomeanIpc)
{
    ResultSet rs;
    rs.add(stat("A", "w1", 1.0));
    rs.add(stat("A", "w2", 4.0));
    EXPECT_DOUBLE_EQ(geomeanIpc(rs.all(), "A"), 2.0);
}

TEST(Report, TablesRenderWithoutCrashing)
{
    ResultSet rs;
    for (int w = 0; w < 5; ++w) {
        rs.add(stat("base", "w" + std::to_string(w), 1.0 + w * 0.1));
        rs.add(stat("test", "w" + std::to_string(w), 1.2 + w * 0.1));
    }
    std::ostringstream os;
    rs.printNormalizedTable(os, "base");
    rs.printDetailTable(os);
    rs.printPerWorkload(os, "test");
    EXPECT_NE(os.str().find("test"), std::string::npos);
    EXPECT_NE(os.str().find("geomean"), std::string::npos);
}

TEST(Report, QuartilesAreOrdered)
{
    ResultSet rs;
    const double vals[] = {0.8, 0.9, 1.0, 1.1, 1.4};
    for (int w = 0; w < 5; ++w) {
        rs.add(stat("base", "w" + std::to_string(w), 1.0));
        rs.add(stat("test", "w" + std::to_string(w), vals[w]));
    }
    std::ostringstream os;
    rs.printNormalizedTable(os, "base");
    // min row value appears before max in the printed line; a smoke check
    // that the reduction ran over all five workloads.
    EXPECT_NE(os.str().find("0.800"), std::string::npos);
    EXPECT_NE(os.str().find("1.400"), std::string::npos);
}
