/** @file Tests for the hashed perceptron predictor. */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "bpred/perceptron.h"

using namespace btbsim;

namespace {

/** Accuracy of the predictor on a generated outcome stream. */
template <typename NextOutcome>
double
accuracy(HashedPerceptron &p, NextOutcome next, int n)
{
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        auto [pc, taken] = next(i);
        correct += (p.predictAndTrain(pc, taken) == taken);
    }
    return static_cast<double>(correct) / n;
}

} // namespace

TEST(Perceptron, LearnsAlwaysTaken)
{
    HashedPerceptron p;
    const double acc = accuracy(
        p, [](int) { return std::pair<Addr, bool>{0x4000, true}; }, 2000);
    EXPECT_GT(acc, 0.98);
}

TEST(Perceptron, LearnsNeverTaken)
{
    HashedPerceptron p;
    const double acc = accuracy(
        p, [](int) { return std::pair<Addr, bool>{0x4000, false}; }, 2000);
    EXPECT_GT(acc, 0.98);
}

TEST(Perceptron, LearnsAlternatingPattern)
{
    HashedPerceptron p;
    const double acc = accuracy(
        p,
        [](int i) {
            return std::pair<Addr, bool>{0x4000, (i % 2) == 0};
        },
        5000);
    EXPECT_GT(acc, 0.95);
}

TEST(Perceptron, LearnsLoopExitPattern)
{
    // taken x7, not-taken x1 (an 8-trip loop back-edge).
    HashedPerceptron p;
    const double acc = accuracy(
        p,
        [](int i) {
            return std::pair<Addr, bool>{0x8000, (i % 8) != 7};
        },
        8000);
    EXPECT_GT(acc, 0.95);
}

TEST(Perceptron, LearnsCorrelatedBranches)
{
    // Branch B repeats branch A's outcome; both must become predictable.
    HashedPerceptron p;
    Rng rng(1);
    bool a_outcome = false;
    int correct_b = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        a_outcome = rng.nextBool(0.5);
        p.predictAndTrain(0x1000, a_outcome);
        correct_b += (p.predictAndTrain(0x2000, a_outcome) == a_outcome);
    }
    EXPECT_GT(static_cast<double>(correct_b) / n, 0.95);
}

TEST(Perceptron, BiasedBranchNearFloor)
{
    HashedPerceptron p;
    Rng rng(2);
    int wrong = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        const bool taken = rng.nextBool(0.02);
        wrong += (p.predictAndTrain(0x3000, taken) != taken);
    }
    // Mispredict rate should approach the 2% noise floor.
    EXPECT_LT(static_cast<double>(wrong) / n, 0.04);
}

TEST(Perceptron, CountersTrack)
{
    HashedPerceptron p;
    for (int i = 0; i < 100; ++i)
        p.predictAndTrain(0x100, true);
    EXPECT_EQ(p.lookups(), 100u);
    EXPECT_LT(p.mispredicts(), 10u);
}

/** Size sweep (Fig. 11b): smaller tables must still work and degrade
 *  gracefully under interference. */
class PerceptronSizeTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(PerceptronSizeTest, HandlesManyBranches)
{
    PerceptronConfig cfg = PerceptronConfig::ofSizeKB(GetParam());
    HashedPerceptron p(cfg);
    Rng rng(3);
    // 512 strongly biased branches.
    std::vector<double> bias(512);
    for (auto &b : bias)
        b = rng.nextBool(0.5) ? 0.05 : 0.95;
    int wrong = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const unsigned site = static_cast<unsigned>(rng.nextBounded(512));
        const bool taken = rng.nextBool(bias[site]);
        wrong += (p.predictAndTrain(0x10000 + site * 4, taken) != taken);
    }
    // Interference grows as the predictor shrinks (the Fig. 11b effect);
    // even the 2KB predictor must stay well below chance, and the full
    // 64KB predictor must be near the noise floor.
    const double rate = static_cast<double>(wrong) / n;
    EXPECT_LT(rate, 0.40);
    if (GetParam() >= 16)
        EXPECT_LT(rate, 0.20);
    if (GetParam() >= 64)
        EXPECT_LT(rate, 0.12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PerceptronSizeTest,
                         ::testing::Values(2u, 4u, 8u, 16u, 32u, 64u));

TEST(PerceptronConfig, SizeBytes)
{
    PerceptronConfig c;
    EXPECT_EQ(c.sizeBytes(), 64u * 1024u);
    EXPECT_EQ(PerceptronConfig::ofSizeKB(2).sizeBytes(), 2048u);
}
