/** @file Cross-module integration tests on real synthetic workloads. */

#include <gtest/gtest.h>

#include "sim/cpu.h"
#include "sim/report.h"
#include "sim/runner.h"
#include "trace/suite.h"

using namespace btbsim;

namespace {

RunOptions
quickOpt()
{
    RunOptions o;
    o.warmup = 150'000;
    o.measure = 250'000;
    o.threads = 1;
    return o;
}

WorkloadSpec
smallSpec()
{
    WorkloadSpec w;
    w.name = "itest";
    w.params.seed = 0xABC;
    w.params.target_static_insts = 48 * 1024;
    w.params.num_handlers = 8;
    w.trace_seed = 0x123;
    return w;
}

} // namespace

TEST(Integration, AllOrganizationsRunTheSameWorkload)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    const std::vector<CpuConfig> configs = [] {
        std::vector<CpuConfig> v(4);
        v[0].btb = BtbConfig::ibtb(16);
        v[1].btb = BtbConfig::rbtb(2);
        v[2].btb = BtbConfig::bbtb(2);
        v[3].btb = BtbConfig::mbbtb(2, PullPolicy::kAllBr);
        return v;
    }();
    for (const CpuConfig &cfg : configs) {
        const SimStats s = runOne(cfg, spec, opt);
        EXPECT_GT(s.ipc, 0.3) << s.config;
        EXPECT_LT(s.ipc, 16.0) << s.config;
        EXPECT_GT(s.btb_hitrate, 0.5) << s.config;
        EXPECT_GT(s.fetch_pcs_per_access, 1.0) << s.config;
    }
}

TEST(Integration, DeterministicResults)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig cfg;
    cfg.btb = BtbConfig::bbtb(1, true);
    const SimStats a = runOne(cfg, spec, opt);
    const SimStats b = runOne(cfg, spec, opt);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_DOUBLE_EQ(a.ipc, b.ipc);
}

TEST(Integration, IdealBtbBeatsRealistic)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig real;
    real.btb = BtbConfig::ibtb(16);
    CpuConfig ideal;
    ideal.btb = BtbConfig::ibtb(16);
    ideal.btb.makeIdeal();
    const SimStats r = runOne(real, spec, opt);
    const SimStats i = runOne(ideal, spec, opt);
    EXPECT_GE(i.ipc, r.ipc * 0.995);
    EXPECT_GE(i.btb_hitrate, r.btb_hitrate);
}

TEST(Integration, RbtbSingleSlotSuffersSlotMisses)
{
    // R-BTB 1BS performs poorly because cache lines generally contain
    // more than one taken branch (Section 6.1).
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig one;
    one.btb = BtbConfig::rbtb(1);
    CpuConfig three;
    three.btb = BtbConfig::rbtb(3);
    const SimStats s1 = runOne(one, spec, opt);
    const SimStats s3 = runOne(three, spec, opt);
    EXPECT_GT(s1.combined_mpki, s3.combined_mpki);
    EXPECT_LT(s1.ipc, s3.ipc);
}

TEST(Integration, SplittingHelpsSingleSlotBbtb)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig plain;
    plain.btb = BtbConfig::bbtb(1, false);
    CpuConfig split;
    split.btb = BtbConfig::bbtb(1, true);
    const SimStats p = runOne(plain, spec, opt);
    const SimStats s = runOne(split, spec, opt);
    EXPECT_GT(s.ipc, p.ipc * 0.99);
    EXPECT_LE(s.combined_mpki, p.combined_mpki * 1.05);
}

TEST(Integration, MbBtbRaisesFetchPcsPerAccess)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig plain;
    plain.btb = BtbConfig::bbtb(3);
    CpuConfig mb;
    mb.btb = BtbConfig::mbbtb(3, PullPolicy::kAllBr);
    const SimStats p = runOne(plain, spec, opt);
    const SimStats m = runOne(mb, spec, opt);
    EXPECT_GT(m.fetch_pcs_per_access, p.fetch_pcs_per_access);
}

TEST(Integration, BbtbShowsRedundancyAboveOne)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig cfg;
    cfg.btb = BtbConfig::bbtb(2);
    const SimStats s = runOne(cfg, spec, opt);
    EXPECT_GT(s.l1_redundancy, 1.0);
    EXPECT_LT(s.l1_redundancy, 2.0);
}

TEST(Integration, ReportAggregatesAndNormalizes)
{
    const WorkloadSpec spec = smallSpec();
    const RunOptions opt = quickOpt();
    CpuConfig a;
    a.btb = BtbConfig::ibtb(16);
    CpuConfig b;
    b.btb = BtbConfig::bbtb(1, true);
    ResultSet rs;
    rs.add(runOne(a, spec, opt));
    rs.add(runOne(b, spec, opt));
    ASSERT_EQ(rs.configs().size(), 2u);
    const auto norm = rs.normalizedIpc("B-BTB 1BS Splt", "I-BTB 16");
    ASSERT_EQ(norm.size(), 1u);
    EXPECT_GT(norm[0], 0.5);
    EXPECT_LT(norm[0], 1.5);
}

TEST(Integration, FailureInjectionCorruptBtbTargetIsMisfetch)
{
    // Corrupt a direct-branch target in the BTB: the frontend must detect
    // it at decode (misfetch) and never commit a wrong-path instruction.
    const WorkloadSpec spec = smallSpec();
    auto w = makeWorkload(spec);
    CpuConfig cfg;
    Cpu cpu(cfg, *w);
    cpu.run(20'000, 20'000);
    // The run completed with the committed count exactly as requested:
    // trace-driven commit counts are inherently correct-path, so the
    // property reduces to misfetch accounting staying bounded.
    EXPECT_GE(cpu.committed(), 40'000u);
    EXPECT_LE(cpu.committed(), 40'016u);
    EXPECT_LT(cpu.stats().misfetch_pki, 50.0);
}
