/** @file Tests for the workload suite. */

#include <gtest/gtest.h>

#include <set>

#include "trace/suite.h"

using namespace btbsim;

TEST(Suite, NamesAreUnique)
{
    const auto suite = serverSuite(12);
    std::set<std::string> names;
    for (const WorkloadSpec &w : suite)
        names.insert(w.name);
    EXPECT_EQ(names.size(), suite.size());
}

TEST(Suite, CountClamps)
{
    EXPECT_EQ(serverSuite(3).size(), 3u);
    EXPECT_EQ(serverSuite(100).size(), 12u);
}

TEST(Suite, SeedsDiffer)
{
    const auto suite = serverSuite(12);
    std::set<std::uint64_t> seeds;
    for (const WorkloadSpec &w : suite)
        seeds.insert(w.params.seed);
    EXPECT_EQ(seeds.size(), suite.size());
}

TEST(Suite, WorkloadIsDeterministicAndResettable)
{
    const auto suite = serverSuite(1);
    auto a = makeWorkload(suite.front());
    auto b = makeWorkload(suite.front());
    for (int i = 0; i < 50000; ++i)
        ASSERT_EQ(a->next().pc, b->next().pc);
    a->reset();
    b->reset();
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a->next().pc, b->next().pc);
}

TEST(Suite, FootprintsOversubscribeL1Btb)
{
    // Every workload's code footprint must dwarf the 3K-entry L1 BTB and
    // the 32KB L1I — the trace-selection criterion of Section 4.2.
    for (const WorkloadSpec &spec : serverSuite(12)) {
        auto w = makeWorkload(spec);
        EXPECT_GT(w->program().footprintBytes(), 128u * 1024)
            << spec.name;
    }
}

TEST(Suite, CodeImageExposed)
{
    const auto suite = serverSuite(1);
    auto w = makeWorkload(suite.front());
    ASSERT_NE(w->codeImage(), nullptr);
    EXPECT_EQ(w->codeImage(), &w->program());
    EXPECT_EQ(w->program().validate(), "");
}
