/** @file Tests for the MultiBlock BTB (Section 6.4). */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/mbbtb.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::unique_ptr<BtbOrg>
makeMb(unsigned slots, PullPolicy pull, unsigned reach = 16)
{
    return makeBtb(BtbConfig::mbbtb(slots, pull, reach));
}

void
redirectTo(BtbOrg &btb, Addr start)
{
    // Returns redirect the update cursor without ever pulling their
    // target, keeping these tests focused on the branch under test.
    btb.update(branchAt(start - 0x400, BranchClass::kReturn, start), false);
}

} // namespace

TEST(Mbbtb, UncondDirPullsTargetBlock)
{
    auto btb = makeMb(2, PullPolicy::kUncondDir);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kUncondDirect, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);

    // One access supplies block 0 and chains into the pulled block.
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    b.probe(0x1000);
    b.probe(0x1004);
    StepView v = b.probe(0x1008);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_TRUE(v.follow);
    ASSERT_TRUE(b.chain(*btb, 0x1008, 0x2000));
    EXPECT_EQ(b.probe(0x2000).kind, StepView::Kind::kSequential);
}

TEST(Mbbtb, UncondDirDoesNotPullCalls)
{
    auto btb = makeMb(2, PullPolicy::kUncondDir);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kDirectCall, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, CallDirPullsCalls)
{
    auto btb = makeMb(2, PullPolicy::kCallDir);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kDirectCall, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);
}

TEST(Mbbtb, AllBrPullsTakenConditionalImmediately)
{
    auto btb = makeMb(2, PullPolicy::kAllBr);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);
}

TEST(Mbbtb, CallDirDoesNotPullConditionals)
{
    auto btb = makeMb(2, PullPolicy::kCallDir);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, IndirectNeedsStabilityThreshold)
{
    BtbConfig cfg = BtbConfig::mbbtb(2, PullPolicy::kAllBr);
    cfg.stability_threshold = 63;
    auto btb = makeBtb(cfg);
    for (int i = 0; i < 63; ++i) {
        redirectTo(*btb, 0x1000);
        btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x2000),
                    false);
        EXPECT_EQ(btb->stats.get("pulls"), 0u) << "iteration " << i;
    }
    // The 64th consistent execution saturates the 6-bit counter.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);
}

TEST(Mbbtb, IndirectTargetChangeResetsStability)
{
    BtbConfig cfg = BtbConfig::mbbtb(2, PullPolicy::kAllBr);
    cfg.stability_threshold = 63;
    auto btb = makeBtb(cfg);
    for (int i = 0; i < 62; ++i) {
        redirectTo(*btb, 0x1000);
        btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x2000),
                    false);
    }
    // Different target: counter resets.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x5000), false);
    for (int i = 0; i < 62; ++i) {
        redirectTo(*btb, 0x1000);
        btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x5000),
                    false);
    }
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, ReturnsNeverPull)
{
    auto btb = makeMb(2, PullPolicy::kAllBr);
    for (int i = 0; i < 100; ++i) {
        redirectTo(*btb, 0x1000);
        btb->update(branchAt(0x1008, BranchClass::kReturn, 0x2000), false);
    }
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, LastSlotNeverPulls)
{
    auto btb = makeMb(2, PullPolicy::kCallDir);
    redirectTo(*btb, 0x1000);
    // Fill slot 0 with a non-pulling conditional, then a call in slot 1
    // (the last slot) must not pull (Section 6.4.2).
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x3000), false);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kDirectCall, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, DowngradeOnNotTakenConditional)
{
    auto btb = makeMb(2, PullPolicy::kAllBr);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    ASSERT_EQ(btb->stats.get("pulls"), 1u);
    // Later the conditional falls through: immediate downgrade.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000, false),
                false);
    EXPECT_EQ(btb->stats.get("downgrades"), 1u);
    // The slot remains as a normal conditional; no follow.
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    b.probe(0x1000);
    StepView v = b.probe(0x1004);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_FALSE(v.follow);
    // And the block coverage extends past the branch again.
    EXPECT_EQ(b.probe(0x1008).kind, StepView::Kind::kSequential);
}

TEST(Mbbtb, PulledSlotEndsAccessOnNotTakenPrediction)
{
    auto btb = makeMb(2, PullPolicy::kAllBr);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    b.probe(0x1000);
    StepView v = b.probe(0x1004);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_TRUE(v.end_on_not_taken);
}

TEST(Mbbtb, ChainsMultipleBlocks)
{
    // 3 slots: two of them may pull (the last slot never pulls), giving a
    // 3-block chain within one entry.
    auto btb = makeMb(3, PullPolicy::kUncondDir, 32);
    // Chain: 0x1000 -> jmp @0x1004 -> 0x2000 -> jmp @0x2004 -> 0x3000.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x2004, BranchClass::kUncondDirect, 0x3000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 2u);

    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    b.probe(0x1000);
    b.probe(0x1004);
    ASSERT_TRUE(b.chain(*btb, 0x1004, 0x2000));
    b.probe(0x2000);
    StepView v = b.probe(0x2004);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    ASSERT_TRUE(b.chain(*btb, 0x2004, 0x3000));
    EXPECT_EQ(b.probe(0x3000).kind, StepView::Kind::kSequential);
    EXPECT_EQ(btb->stats.get("chained_blocks"), 2u);
}

TEST(Mbbtb, ReachBudgetLimitsPulling)
{
    // Reach 4 instructions: after block 0 uses it up, no pull possible.
    auto btb = makeMb(2, PullPolicy::kUncondDir, 4);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x100C, BranchClass::kUncondDirect, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 0u);
}

TEST(Mbbtb, RedundancySampleSeesChainedSlots)
{
    auto btb = makeMb(2, PullPolicy::kUncondDir);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x2008, BranchClass::kUncondDirect, 0x3000), false);
    OccupancySample s = btb->sampleOccupancy();
    // The chained entry at 0x1000 (2 slots) plus the redirect's entry.
    EXPECT_EQ(s.l1_entries, 2u);
    EXPECT_DOUBLE_EQ(s.l1_slot_occupancy, 1.5);
}

TEST(Mbbtb, MissWindowIsReach)
{
    auto btb = makeMb(3, PullPolicy::kAllBr, 64);
    auto views = walk(*btb, 0x1000, 128);
    EXPECT_EQ(views.size(), 64u);
}
