/** @file Unit tests for the hierarchical stat registry (src/obs). */

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "obs/registry.h"

using namespace btbsim;
using obs::StatRegistry;

TEST(StatRegistry, CounterRegistrationAndDottedLookup)
{
    StatRegistry reg;
    ++reg.counter("l1_btb.hit");
    reg.counter("l1_btb.hit") += 2;
    ++reg.counter("ftq.stall");

    EXPECT_TRUE(reg.has("l1_btb.hit"));
    EXPECT_FALSE(reg.has("l1_btb.miss"));
    EXPECT_DOUBLE_EQ(reg.value("l1_btb.hit"), 3.0);
    EXPECT_DOUBLE_EQ(reg.value("ftq.stall"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("absent.path"), 0.0);
}

TEST(StatRegistry, MeansAndHistograms)
{
    StatRegistry reg;
    reg.mean("ftq.occupancy").add(10.0);
    reg.mean("ftq.occupancy").add(20.0);
    reg.histogram("btb.slots", 4).add(1);
    reg.histogram("btb.slots").add(3);

    EXPECT_DOUBLE_EQ(reg.value("ftq.occupancy"), 15.0);
    EXPECT_DOUBLE_EQ(reg.value("btb.slots"), 2.0);
    EXPECT_EQ(reg.histogram("btb.slots").bucketCount(), 4u);
}

TEST(StatRegistry, ScopesNestAndPrefix)
{
    StatRegistry reg;
    StatRegistry::Scope cpu = reg.scope("cpu");
    StatRegistry::Scope btb = cpu.scope("l1_btb");
    ++btb.counter("hit");
    btb.mean("occupancy").add(0.5);

    EXPECT_EQ(btb.prefix(), "cpu.l1_btb");
    EXPECT_TRUE(reg.has("cpu.l1_btb.hit"));
    EXPECT_DOUBLE_EQ(reg.value("cpu.l1_btb.hit"), 1.0);
    EXPECT_DOUBLE_EQ(reg.value("cpu.l1_btb.occupancy"), 0.5);
}

TEST(StatRegistry, ImportStatSet)
{
    StatSet s;
    s["accesses"] = 7;
    s["allocs"] = 2;

    StatRegistry reg;
    reg.scope("btb").importStatSet(s);
    EXPECT_DOUBLE_EQ(reg.value("btb.accesses"), 7.0);
    EXPECT_DOUBLE_EQ(reg.value("btb.allocs"), 2.0);

    // Importing again accumulates (merge semantics).
    reg.scope("btb").importStatSet(s);
    EXPECT_DOUBLE_EQ(reg.value("btb.accesses"), 14.0);
}

TEST(StatRegistry, MergeCombinesAllKinds)
{
    StatRegistry a, b;
    a.counter("c.x") = 2;
    b.counter("c.x") = 3;
    b.counter("c.y") = 1;
    a.mean("m") .add(1.0);
    b.mean("m").add(3.0);
    b.mean("m2").add(9.0);
    a.histogram("h", 4).add(1);
    b.histogram("h", 4).add(2);

    a.merge(b);
    EXPECT_DOUBLE_EQ(a.value("c.x"), 5.0);
    EXPECT_DOUBLE_EQ(a.value("c.y"), 1.0);
    EXPECT_DOUBLE_EQ(a.value("m"), 2.0);
    EXPECT_DOUBLE_EQ(a.value("m2"), 9.0);
    EXPECT_EQ(a.histogram("h").total(), 2u);
    EXPECT_EQ(a.histogram("h").count(1), 1u);
    EXPECT_EQ(a.histogram("h").count(2), 1u);
}

TEST(StatRegistry, MergeAcrossThreads)
{
    // Each worker fills its own registry (the runMatrix pattern: no
    // sharing during the run), then the results merge deterministically.
    constexpr int kThreads = 4;
    constexpr int kIncrements = 1000;
    std::vector<StatRegistry> regs(kThreads);
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t)
        pool.emplace_back([&regs, t] {
            for (int i = 0; i < kIncrements; ++i)
                ++regs[t].counter("worker.ticks");
            regs[t].counter("worker.id_sum") = static_cast<unsigned>(t);
        });
    for (auto &t : pool)
        t.join();

    StatRegistry total;
    for (const StatRegistry &r : regs)
        total.merge(r);
    EXPECT_DOUBLE_EQ(total.value("worker.ticks"),
                     double(kThreads) * kIncrements);
    EXPECT_DOUBLE_EQ(total.value("worker.id_sum"), 0.0 + 1 + 2 + 3);
}

TEST(StatRegistry, FlattenProducesDottedMap)
{
    StatRegistry reg;
    reg.counter("a.b") = 4;
    reg.mean("a.c").add(2.0);
    reg.histogram("d", 8).add(5);

    const auto flat = reg.flatten();
    ASSERT_EQ(flat.size(), 3u);
    EXPECT_DOUBLE_EQ(flat.at("a.b"), 4.0);
    EXPECT_DOUBLE_EQ(flat.at("a.c"), 2.0);
    EXPECT_DOUBLE_EQ(flat.at("d"), 5.0);
}
