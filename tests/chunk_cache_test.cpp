/** @file Tests for the process-wide shared replay-chunk cache
 *  (traceio/chunk_cache.h) and its TraceReplaySource integration. */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <thread>
#include <vector>

#include "env_util.h"
#include "traceio/chunk_cache.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"

using namespace btbsim;
using namespace btbsim::traceio;
using btbsim::test::ScopedEnv;

namespace {

std::string
tmpPath(const std::string &name)
{
    const std::string p = ::testing::TempDir() + "btbsim_ccache_" + name;
    std::filesystem::remove(p);
    return p;
}

/** Control-flow-consistent straight-line stream ending in a loop back. */
std::vector<Instruction>
loopStream(std::size_t n)
{
    std::vector<Instruction> v;
    const Addr base = 0x400000;
    for (std::size_t i = 0; i < n; ++i) {
        Instruction in;
        in.pc = base + i * kInstBytes;
        if (i + 1 == n) {
            in.cls = InstClass::kBranch;
            in.branch = BranchClass::kUncondDirect;
            in.taken = true;
            in.next_pc = base;
        } else {
            in.cls = InstClass::kAlu;
            in.next_pc = in.pc + kInstBytes;
        }
        v.push_back(in);
    }
    return v;
}

std::string
writeTrace(const std::string &name, const std::vector<Instruction> &insts,
           std::uint32_t chunk_insts)
{
    const std::string path = tmpPath(name);
    TraceWriter::Options opt;
    opt.chunk_insts = chunk_insts;
    TraceWriter w(path, name, nullptr, opt);
    for (const Instruction &in : insts)
        w.append(in);
    w.finish();
    return path;
}

void
expectSame(const Instruction &a, const Instruction &b, std::size_t i)
{
    ASSERT_EQ(a.pc, b.pc) << "inst " << i;
    ASSERT_EQ(a.next_pc, b.next_pc) << "inst " << i;
    ASSERT_EQ(a.cls, b.cls) << "inst " << i;
    ASSERT_EQ(a.branch, b.branch) << "inst " << i;
    ASSERT_EQ(a.taken, b.taken) << "inst " << i;
}

} // namespace

TEST(SharedChunkCache, FileKeyIdentifiesFileContentsGeneration)
{
    const std::string p1 = writeTrace("key_a.btbt", loopStream(32), 16);
    const std::string p2 = writeTrace("key_b.btbt", loopStream(32), 16);
    const std::string k1 = SharedChunkCache::fileKey(p1);
    const std::string k2 = SharedChunkCache::fileKey(p2);
    EXPECT_FALSE(k1.empty());
    EXPECT_FALSE(k2.empty());
    EXPECT_NE(k1, k2);
    EXPECT_EQ(k1, SharedChunkCache::fileKey(p1));
    EXPECT_TRUE(SharedChunkCache::fileKey(tmpPath("nope.btbt")).empty());
}

TEST(SharedChunkCache, DecodesEachKeyOnce)
{
    SharedChunkCache cache;
    std::atomic<int> decodes{0};
    const auto decoder = [&](std::vector<Instruction> &out) {
        ++decodes;
        out.resize(4);
    };
    const auto b1 = cache.get("f", 0, decoder);
    const auto b2 = cache.get("f", 0, decoder);
    const auto b3 = cache.get("f", 1, decoder);
    EXPECT_EQ(decodes.load(), 2);
    EXPECT_EQ(b1.get(), b2.get()); // Same shared buffer.
    EXPECT_NE(b1.get(), b3.get());
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 2u);
    EXPECT_EQ(s.hits, 1u);
    EXPECT_EQ(s.entries, 2u);
}

TEST(SharedChunkCache, ConcurrentGetsDecodeOnce)
{
    SharedChunkCache cache;
    std::atomic<int> decodes{0};
    std::vector<std::thread> threads;
    std::vector<SharedChunkCache::Buffer> bufs(8);
    for (int t = 0; t < 8; ++t)
        threads.emplace_back([&, t] {
            bufs[t] = cache.get("f", 7, [&](std::vector<Instruction> &out) {
                ++decodes;
                std::this_thread::sleep_for(std::chrono::milliseconds(5));
                out.resize(16);
            });
        });
    for (std::thread &t : threads)
        t.join();
    EXPECT_EQ(decodes.load(), 1);
    for (int t = 1; t < 8; ++t)
        EXPECT_EQ(bufs[0].get(), bufs[t].get());
}

TEST(SharedChunkCache, EvictsLruWithinBudgetButKeepsSharedBuffersAlive)
{
    SharedChunkCache cache(/*budget_bytes=*/sizeof(Instruction) * 6);
    const auto fill = [](std::vector<Instruction> &out) { out.resize(4); };
    const auto b0 = cache.get("f", 0, fill);
    cache.get("f", 1, fill); // Over budget: chunk 0 is evicted (LRU).
    const auto s = cache.stats();
    EXPECT_GE(s.evictions, 1u);
    EXPECT_LE(s.bytes, sizeof(Instruction) * 6);
    // The evicted buffer stays valid for holders.
    EXPECT_EQ(b0->size(), 4u);
    // Re-fetching the evicted chunk decodes again.
    const auto b0b = cache.get("f", 0, fill);
    EXPECT_NE(b0.get(), b0b.get());
    cache.clear();
    EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(SharedChunkCache, ReplaySourcesShareChunksBitIdentically)
{
    const std::size_t n = 400;
    const std::vector<Instruction> insts = loopStream(n);
    const std::string path = writeTrace("share.btbt", insts, 64);

    SharedChunkCache cache;
    TraceReplaySource::Options priv;
    priv.shared_cache = nullptr;
    TraceReplaySource::Options shared = priv;
    shared.shared_cache = &cache;

    TraceReplaySource a(path, shared);
    TraceReplaySource b(path, shared);
    TraceReplaySource ref(path, priv);

    // Cover wraps too: the seam chunk must stay correct (and private).
    for (std::size_t i = 0; i < 2 * n + 17; ++i) {
        const Instruction &want = ref.next();
        expectSame(want, a.next(), i);
        expectSame(want, b.next(), i);
    }

    // 400 insts / 64 per chunk = 7 chunks; the last is the (private)
    // wrap seam, so 6 are shared: decoded once, then hits.
    const auto s = cache.stats();
    EXPECT_EQ(s.misses, 6u);
    EXPECT_GE(s.hits, 6u); // Second source hits every shared chunk.
}

TEST(SharedChunkCache, OptionsFromEnvFollowsKnobAndProcessDefault)
{
    ASSERT_FALSE(SharedChunkCache::processDefault());
    {
        ScopedEnv e("BTBSIM_REPLAY_SHARED", "1");
        EXPECT_EQ(TraceReplaySource::Options::fromEnv().shared_cache,
                  &SharedChunkCache::instance());
    }
    {
        ScopedEnv e("BTBSIM_REPLAY_SHARED", "0");
        EXPECT_EQ(TraceReplaySource::Options::fromEnv().shared_cache,
                  nullptr);
    }
    {
        ScopedEnv e("BTBSIM_REPLAY_SHARED", nullptr);
        EXPECT_EQ(TraceReplaySource::Options::fromEnv().shared_cache,
                  nullptr);
        SharedChunkCache::setProcessDefault(true);
        EXPECT_EQ(TraceReplaySource::Options::fromEnv().shared_cache,
                  &SharedChunkCache::instance());
        // An explicit 0 still wins over the process default.
        ScopedEnv off("BTBSIM_REPLAY_SHARED", "0");
        EXPECT_EQ(TraceReplaySource::Options::fromEnv().shared_cache,
                  nullptr);
    }
    SharedChunkCache::setProcessDefault(false);
}
