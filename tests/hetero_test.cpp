/** @file Tests for the heterogeneous BTB hierarchy (Section 3.6.2). */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/hetero.h"
#include "sim/runner.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::unique_ptr<BtbOrg>
makeHetero(unsigned slots = 1, bool split = true)
{
    return makeBtb(BtbConfig::hetero(slots, split));
}

void
redirectTo(BtbOrg &btb, Addr start)
{
    btb.update(branchAt(start - 0x400, BranchClass::kReturn, start), false);
}

} // namespace

TEST(Hetero, FactoryProducesHetero)
{
    const BtbConfig cfg = BtbConfig::hetero(1);
    EXPECT_EQ(cfg.kind, BtbKind::kHetero);
    EXPECT_EQ(cfg.name(), "Hetero-BTB 1BS Splt");
    EXPECT_NE(makeBtb(cfg), nullptr);
}

TEST(Hetero, L1HitBehavesLikeBlockBtb)
{
    auto btb = makeHetero(2);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kUncondDirect, 0x2000), false);
    StepView v = viewAt(*btb, 0x1000, 0x1008);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 1);
    EXPECT_EQ(v.target, 0x2000u);
    // Block truncated at the unconditional.
    EXPECT_EQ(walk(*btb, 0x1000, 64).size(), 3u);
}

TEST(Hetero, L2RegionBacksL1AfterEviction)
{
    BtbConfig cfg = BtbConfig::hetero(1, true);
    cfg.l1 = {1, 1}; // one L1 block entry: any second block evicts.
    auto btb = makeBtb(cfg);

    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kUncondDirect, 0x2000), false);
    // A different block displaces the 0x1000 entry from the tiny L1.
    btb->update(branchAt(0x2008, BranchClass::kUncondDirect, 0x3000), false);

    // The branch is re-synthesized from the region-organized L2: hit at
    // level 2 (charging the taken-branch penalty), then level 1.
    StepView v = viewAt(*btb, 0x1000, 0x1008);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
    EXPECT_EQ(v.target, 0x2000u);
    EXPECT_GT(btb->stats.get("l2_synthesized_fills"), 0u);
}

TEST(Hetero, SynthesisSpansRegions)
{
    BtbConfig cfg = BtbConfig::hetero(2, true);
    cfg.l1 = {1, 1};
    auto btb = makeBtb(cfg);

    // Block starting near a region end with a branch in the next region.
    redirectTo(*btb, 0x1038);
    btb->update(branchAt(0x1044, BranchClass::kUncondDirect, 0x2000), false);
    // Evict the L1 copy.
    btb->update(branchAt(0x2008, BranchClass::kUncondDirect, 0x3000), false);

    StepView v = viewAt(*btb, 0x1038, 0x1044);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
}

TEST(Hetero, L2HoldsEachBranchOnce)
{
    auto btb = makeHetero(1);
    // Two overlapping blocks containing the same branch: the L1 carries
    // the redundancy, the region L2 does not.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1010, BranchClass::kCondDirect, 0x3000), false);
    redirectTo(*btb, 0x1008);
    btb->update(branchAt(0x1010, BranchClass::kCondDirect, 0x3000), false);
    OccupancySample s = btb->sampleOccupancy();
    EXPECT_DOUBLE_EQ(s.l2_redundancy, 1.0);
    EXPECT_GT(s.l1_redundancy, 1.0);
}

TEST(Hetero, SplitPreservesBranches)
{
    auto btb = makeHetero(1, true);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x3000), false);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x4000), false);
    EXPECT_EQ(btb->stats.get("splits"), 1u);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind, StepView::Kind::kBranch);
    EXPECT_EQ(viewAt(*btb, 0x1008, 0x1008).kind, StepView::Kind::kBranch);
}

TEST(Hetero, PrefillLandsInRegionL2)
{
    auto btb = makeHetero(1);
    Instruction br = branchAt(0x5008, BranchClass::kDirectCall, 0x9000);
    btb->prefill(br);
    EXPECT_EQ(btb->stats.get("prefills"), 1u);
    // Visible through L2 synthesis on first access.
    StepView v = viewAt(*btb, 0x5000, 0x5008);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
}

TEST(Hetero, EndToEndRunsAndIsCompetitive)
{
    WorkloadSpec spec;
    spec.name = "hetero-itest";
    spec.params.seed = 0xDEF;
    spec.params.target_static_insts = 48 * 1024;
    spec.params.num_handlers = 8;
    spec.trace_seed = 0x321;

    RunOptions opt;
    opt.warmup = 150'000;
    opt.measure = 250'000;
    opt.threads = 1;

    CpuConfig homo;
    homo.btb = BtbConfig::bbtb(1, true);
    CpuConfig het;
    het.btb = BtbConfig::hetero(1, true);

    const SimStats h = runOne(homo, spec, opt);
    const SimStats x = runOne(het, spec, opt);
    EXPECT_GT(x.ipc, h.ipc * 0.9);
    EXPECT_GT(x.btb_hitrate, 0.6);
}
