/** @file Tests for canonical configuration JSON (exp/config_json.h). */

#include <gtest/gtest.h>

#include <vector>

#include "exp/config_json.h"
#include "obs/json.h"

using namespace btbsim;

namespace {

/** A CpuConfig with every field moved off its default. */
CpuConfig
fullyMutatedConfig()
{
    CpuConfig c;
    c.btb = BtbConfig::mbbtb(3, PullPolicy::kAllBr, 32);
    c.btb.skip_taken = true;
    c.btb.region_bytes = 128;
    c.btb.dual_region = true;
    c.btb.split = true;
    c.btb.cond_ends_block = true;
    c.btb.stability_threshold = 7;
    c.btb.allow_last_slot_pull = true;
    c.btb.l1 = {64, 3};
    c.btb.l2 = {2048, 5};
    c.btb.ideal = true;
    c.btb.l2_penalty = 9;

    c.bpred.perceptron.num_tables = 5;
    c.bpred.ras_entries = 32;
    c.mem.l1i.sets = 128;
    c.mem.l2.ways = 12;
    c.mem.llc.next_line_prefetch = true;
    c.mem.dram_latency = 150;
    c.backend.rob_size = 777;
    c.backend.ideal = true;

    c.ftq_entries = 32;
    c.decode_queue = 48;
    c.alloc_queue = 40;
    c.fetch_width = 8;
    c.fetch_lines = 4;
    c.decode_width = 8;
    c.alloc_width = 8;
    c.btb_predecode_fill = true;
    return c;
}

WorkloadSpec
fullyMutatedSpec()
{
    WorkloadSpec s;
    s.name = "roundtrip-wl";
    s.trace_seed = 0xABCDEF;
    s.params.seed = 42;
    s.params.target_static_insts = 12345;
    s.params.num_handlers = 3;
    s.params.mean_block_len = 7.25;
    s.params.w_check = 0.31;
    s.params.w_always_if = 0.11;
    s.params.w_mixed_if = 0.08;
    s.params.w_loop = 0.04;
    s.params.w_call = 0.21;
    s.params.w_icall = 0.06;
    s.params.w_switch = 0.05;
    s.params.w_jump = 0.041;
    s.params.monomorphic_frac = 0.5;
    s.params.pattern_frac = 0.123456789012345; // Exercises %.17g fidelity.
    s.params.min_trips = 3;
    s.params.max_trips = 17;
    s.params.fixed_trip_frac = 0.91;
    s.params.data_footprint = 3ull << 20;
    s.params.frac_load = 0.19;
    s.params.frac_store = 0.08;
    s.params.frac_stream_stack = 0.59;
    s.params.frac_stream_stride = 0.33;
    s.params.dep_locality = 0.21;
    return s;
}

} // namespace

TEST(ConfigJson, CpuConfigRoundTripsExactly)
{
    for (const CpuConfig &c :
         {CpuConfig{}, fullyMutatedConfig(), [] {
              CpuConfig h;
              h.btb = BtbConfig::hetero(2);
              return h;
          }()}) {
        const std::string json = exp::toCanonicalJson(c);
        const CpuConfig back =
            exp::cpuConfigFromJson(obs::parseJson(json));
        EXPECT_EQ(back, c);
        // Re-serializing the round-tripped value is byte-identical:
        // canonical form is a fixed point.
        EXPECT_EQ(exp::toCanonicalJson(back), json);
    }
}

TEST(ConfigJson, RunOptionsRoundTripsExactly)
{
    RunOptions o;
    o.warmup = 123;
    o.measure = 456;
    o.traces = 7;
    o.threads = 3;
    const std::string json = exp::toCanonicalJson(o);
    const RunOptions back = exp::runOptionsFromJson(obs::parseJson(json));
    EXPECT_EQ(back, o);
    EXPECT_EQ(exp::toCanonicalJson(back), json);
}

TEST(ConfigJson, WorkloadSpecRoundTripsExactly)
{
    const WorkloadSpec s = fullyMutatedSpec();
    const std::string json = exp::toCanonicalJson(s);
    const WorkloadSpec back =
        exp::workloadSpecFromJson(obs::parseJson(json));
    EXPECT_EQ(back, s);
    EXPECT_EQ(exp::toCanonicalJson(back), json);
}

TEST(ConfigJson, SerializationIsDeterministic)
{
    const CpuConfig c = fullyMutatedConfig();
    EXPECT_EQ(exp::toCanonicalJson(c), exp::toCanonicalJson(c));
}

TEST(ConfigJson, DifferentConfigsSerializeDifferently)
{
    CpuConfig a, b;
    b.fetch_width = a.fetch_width + 1;
    EXPECT_NE(exp::toCanonicalJson(a), exp::toCanonicalJson(b));
}

TEST(ConfigJson, SchemaMismatchThrows)
{
    std::string json = exp::toCanonicalJson(CpuConfig{});
    const std::string needle =
        "\"_schema\": " + std::to_string(exp::kConfigSchemaVersion);
    const auto pos = json.find(needle);
    ASSERT_NE(pos, std::string::npos);
    json.replace(pos, needle.size(), "\"_schema\": 999");
    EXPECT_THROW(exp::cpuConfigFromJson(obs::parseJson(json)),
                 std::runtime_error);
}

TEST(ConfigJson, MissingKeyThrows)
{
    EXPECT_THROW(exp::runOptionsFromJson(obs::parseJson(
                     "{\"_schema\": 1, \"warmup\": 1}")),
                 std::runtime_error);
}

TEST(ConfigJson, EnumNamesRoundTrip)
{
    for (BtbKind k : {BtbKind::kInstruction, BtbKind::kRegion,
                      BtbKind::kBlock, BtbKind::kMultiBlock, BtbKind::kHetero})
        EXPECT_EQ(exp::btbKindFromName(exp::btbKindName(k)), k);
    for (PullPolicy p : {PullPolicy::kNone, PullPolicy::kUncondDir,
                         PullPolicy::kCallDir, PullPolicy::kAllBr})
        EXPECT_EQ(exp::pullPolicyFromName(exp::pullPolicyName(p)), p);
    EXPECT_THROW(exp::btbKindFromName("bogus"), std::runtime_error);
    EXPECT_THROW(exp::pullPolicyFromName("bogus"), std::runtime_error);
}
