/** @file Tests for the ablation features: block-termination policy,
 *  last-slot pulling, stability thresholds, and decode-based prefill. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/bbtb.h"
#include "core/mbbtb.h"
#include "sim/cpu.h"
#include "trace/suite.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

void
redirectTo(BtbOrg &btb, Addr start)
{
    btb.update(branchAt(start - 0x400, BranchClass::kReturn, start), false);
}

} // namespace

// ---- Section 2.3 block-termination policy -----------------------------------

TEST(CondEndsBlock, TakenCondTruncatesBlock)
{
    BtbConfig cfg = BtbConfig::bbtb(2);
    cfg.cond_ends_block = true;
    auto btb = makeBtb(cfg);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x3000), false);
    // Yeh/Patt-style blocks end at the taken conditional.
    EXPECT_EQ(walk(*btb, 0x1000, 64).size(), 3u);
}

TEST(CondEndsBlock, BaselineFallsThroughToReach)
{
    auto btb = makeBtb(BtbConfig::bbtb(2));
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x3000), false);
    EXPECT_EQ(walk(*btb, 0x1000, 64).size(), 16u);
}

TEST(CondEndsBlock, NameReflectsPolicy)
{
    BtbConfig cfg = BtbConfig::bbtb(2);
    cfg.cond_ends_block = true;
    EXPECT_EQ(cfg.name(), "B-BTB 2BS CndEnd");
}

TEST(CondEndsBlock, FallThroughOpensNewBlock)
{
    BtbConfig cfg = BtbConfig::bbtb(2);
    cfg.cond_ends_block = true;
    auto btb = makeBtb(cfg);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x3000), false);
    // Later the conditional is not taken: sequential flow continues and
    // a subsequent taken branch belongs to the fall-through block.
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x3000, false),
                false);
    btb->update(branchAt(0x1014, BranchClass::kUncondDirect, 0x4000), false);
    EXPECT_EQ(viewAt(*btb, 0x100C, 0x1014).kind, StepView::Kind::kBranch);
}

// ---- Section 6.4.2 last-slot pulling ----------------------------------------

TEST(LastSlotPull, AblationAllowsLastSlotToPull)
{
    BtbConfig cfg = BtbConfig::mbbtb(2, PullPolicy::kCallDir);
    cfg.allow_last_slot_pull = true;
    auto btb = makeBtb(cfg);
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x3000), false);
    redirectTo(*btb, 0x1000);
    // Call in the last slot: pulls only with the ablation flag.
    btb->update(branchAt(0x1008, BranchClass::kDirectCall, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);
    EXPECT_EQ(cfg.name(), "MB-BTB 2BS CallDir LSP");
}

// ---- Section 6.4.2 stability threshold --------------------------------------

TEST(StabilityThreshold, LowerThresholdPullsSooner)
{
    BtbConfig cfg = BtbConfig::mbbtb(2, PullPolicy::kAllBr);
    cfg.stability_threshold = 3;
    auto btb = makeBtb(cfg);
    for (int i = 0; i < 3; ++i) {
        redirectTo(*btb, 0x1000);
        btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x2000),
                    false);
        EXPECT_EQ(btb->stats.get("pulls"), 0u);
    }
    redirectTo(*btb, 0x1000);
    btb->update(branchAt(0x1008, BranchClass::kIndirectJump, 0x2000), false);
    EXPECT_EQ(btb->stats.get("pulls"), 1u);
}

// ---- Section 7.3 decode-based prefill ---------------------------------------

TEST(PredecodeFill, ReducesMisfetchesOnColdCode)
{
    WorkloadSpec spec;
    spec.name = "predecode-itest";
    spec.params.seed = 0xFED;
    spec.params.target_static_insts = 48 * 1024;
    spec.params.num_handlers = 8;
    spec.trace_seed = 0x777;

    auto run = [&](bool prefill) {
        auto w = makeWorkload(spec);
        CpuConfig cfg;
        cfg.btb = BtbConfig::ibtb(16);
        cfg.btb_predecode_fill = prefill;
        Cpu cpu(cfg, *w);
        cpu.run(0, 300'000); // no warmup: cold BTB and I$
        return cpu.stats();
    };

    const SimStats off = run(false);
    const SimStats on = run(true);
    EXPECT_LT(on.misfetch_pki, off.misfetch_pki);
    EXPECT_GE(on.ipc, off.ipc * 0.98);
}

TEST(PredecodeFill, PrefillCountersAdvance)
{
    WorkloadSpec spec;
    spec.params.seed = 0xFED;
    spec.params.target_static_insts = 16 * 1024;
    spec.params.num_handlers = 4;
    auto w = makeWorkload(spec);
    CpuConfig cfg;
    cfg.btb = BtbConfig::rbtb(3);
    cfg.btb_predecode_fill = true;
    Cpu cpu(cfg, *w);
    cpu.run(0, 100'000);
    EXPECT_GT(cpu.btb().stats.get("prefills"), 0u);
}

TEST(PredecodeFill, BlockOrgsIgnorePrefillSafely)
{
    WorkloadSpec spec;
    spec.params.seed = 0xFED;
    spec.params.target_static_insts = 16 * 1024;
    spec.params.num_handlers = 4;
    auto w = makeWorkload(spec);
    CpuConfig cfg;
    cfg.btb = BtbConfig::bbtb(1, true);
    cfg.btb_predecode_fill = true; // no-op for block organizations
    Cpu cpu(cfg, *w);
    cpu.run(0, 100'000);
    EXPECT_EQ(cpu.btb().stats.get("prefills"), 0u);
    EXPECT_GT(cpu.stats().ipc, 0.2);
}
