/** @file JSON/CSV round-trip tests for the result exporters. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "obs/export.h"
#include "obs/json.h"
#include "sim/report.h"
#include "sim/sim_stats.h"

using namespace btbsim;
using obs::JsonValue;

namespace {

SimStats
makeRun(const std::string &config, const std::string &workload, double ipc)
{
    SimStats s;
    s.config = config;
    s.workload = workload;
    s.instructions = 1'000'000;
    s.cycles = static_cast<std::uint64_t>(1'000'000 / ipc);
    s.ipc = ipc;
    s.branch_mpki = 3.5;
    s.misfetch_pki = 1.25;
    s.l1_btb_hitrate = 0.97;
    s.btb_hitrate = 0.99;
    s.icache_mpki = 0.5;
    s.host_seconds = 2.0;
    s.minst_per_host_sec = 0.5;
    s.counters["pcgen.accesses"] = 123456;
    s.counters["l1i.demand_misses"] = 789;

    s.sample_interval = 100'000;
    for (int i = 1; i <= 3; ++i) {
        obs::IntervalSample p;
        p.cycle = 100'000u * i;
        p.instructions = 150'000;
        p.ipc = 1.5;
        p.ftq_occupancy = 12.0 + i;
        s.samples.push_back(p);
    }
    return s;
}

} // namespace

TEST(ObsExport, JsonRoundTrip)
{
    ResultSet rs;
    rs.add(makeRun("I-BTB 16", "wl-a", 2.0));
    rs.add(makeRun("I-BTB 16", "wl-b", 1.0));
    rs.add(makeRun("B-BTB 16", "wl-a", 1.5));

    std::ostringstream os;
    rs.writeJson(os, "unit-test", "I-BTB 16");

    const JsonValue root = obs::parseJson(os.str());
    EXPECT_DOUBLE_EQ(root.at("schema_version").asNumber(),
                     obs::kSchemaVersion);
    EXPECT_EQ(root.at("generator").asString(), "btbsim");
    EXPECT_EQ(root.at("bench").asString(), "unit-test");
    EXPECT_EQ(root.at("baseline").asString(), "I-BTB 16");

    const JsonValue &runs = root.at("runs");
    ASSERT_EQ(runs.array.size(), 3u);
    const JsonValue &r0 = runs.array[0];
    EXPECT_EQ(r0.at("config").asString(), "I-BTB 16");
    EXPECT_EQ(r0.at("workload").asString(), "wl-a");

    const JsonValue &stats = r0.at("stats");
    EXPECT_DOUBLE_EQ(stats.at("ipc").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(stats.at("instructions").asNumber(), 1e6);
    EXPECT_DOUBLE_EQ(stats.at("branch_mpki").asNumber(), 3.5);
    EXPECT_DOUBLE_EQ(stats.at("l1_btb_hitrate").asNumber(), 0.97);

    EXPECT_DOUBLE_EQ(r0.at("counters").at("pcgen.accesses").asNumber(),
                     123456.0);
    EXPECT_DOUBLE_EQ(r0.at("host").at("seconds").asNumber(), 2.0);
    EXPECT_DOUBLE_EQ(r0.at("host").at("minst_per_sec").asNumber(), 0.5);

    const JsonValue &samples = r0.at("samples");
    EXPECT_DOUBLE_EQ(samples.at("interval_cycles").asNumber(), 100'000.0);
    const JsonValue &pts = samples.at("points");
    ASSERT_EQ(pts.array.size(), 3u);
    EXPECT_DOUBLE_EQ(pts.array[0].at("cycle").asNumber(), 100'000.0);
    EXPECT_DOUBLE_EQ(pts.array[2].at("ftq_occupancy").asNumber(), 15.0);

    // Aggregates: per-config geomean IPC, plus normalized when a baseline
    // is given.
    const JsonValue &agg = root.at("aggregates");
    const JsonValue &ibtb = agg.at("I-BTB 16");
    EXPECT_NEAR(ibtb.at("geomean_ipc").asNumber(), std::sqrt(2.0), 1e-9);
    EXPECT_DOUBLE_EQ(ibtb.at("normalized_ipc_geomean").asNumber(), 1.0);
    const JsonValue &bbtb = agg.at("B-BTB 16");
    EXPECT_DOUBLE_EQ(bbtb.at("geomean_ipc").asNumber(), 1.5);
    // B-BTB only has wl-a in common with the baseline: 1.5 / 2.0.
    EXPECT_DOUBLE_EQ(bbtb.at("normalized_ipc_geomean").asNumber(), 0.75);
}

TEST(ObsExport, CsvHasHeaderAndOneRowPerRun)
{
    ResultSet rs;
    rs.add(makeRun("cfg \"x\"", "wl,1", 1.0));
    rs.add(makeRun("cfg \"x\"", "wl2", 2.0));

    std::ostringstream os;
    rs.writeCsv(os);
    std::istringstream is(os.str());
    std::string header, row1, row2, extra;
    ASSERT_TRUE(std::getline(is, header));
    ASSERT_TRUE(std::getline(is, row1));
    ASSERT_TRUE(std::getline(is, row2));
    EXPECT_FALSE(std::getline(is, extra));

    EXPECT_EQ(header.rfind("config,workload,", 0), 0u);
    EXPECT_NE(header.find("ipc"), std::string::npos);
    EXPECT_NE(header.find("minst_per_host_sec"), std::string::npos);
    // Embedded quotes double, fields with commas/quotes get quoted.
    EXPECT_EQ(row1.rfind("\"cfg \"\"x\"\"\",\"wl,1\",", 0), 0u);
}

TEST(ObsExport, SamplesCsv)
{
    const SimStats s = makeRun("c", "w", 1.0);
    std::ostringstream os;
    obs::writeSamplesCsv(os, s);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, 1u + s.samples.size()); // header + one row per point
}

TEST(ObsExport, Slugify)
{
    EXPECT_EQ(obs::slugify("I-BTB 16"), "i_btb_16");
    EXPECT_EQ(obs::slugify("Fig. 10: fetch PCs / access"),
              "fig_10_fetch_pcs_access");
    EXPECT_EQ(obs::slugify(""), "unnamed");
    EXPECT_EQ(obs::slugify("---"), "unnamed");
}

TEST(ObsExport, AggregateCountersSumsAcrossRuns)
{
    std::vector<SimStats> v{makeRun("a", "w1", 1.0), makeRun("a", "w2", 2.0)};
    const auto agg = aggregateCounters(v);
    EXPECT_DOUBLE_EQ(agg.at("pcgen.accesses"), 2 * 123456.0);
    EXPECT_DOUBLE_EQ(agg.at("l1i.demand_misses"), 2 * 789.0);
}
