/**
 * @file
 * Tests for the property-based fuzzer (src/check/fuzz.h): generation
 * determinism, clean runs over the stock organizations across many
 * seeds, repro round-tripping, shrink behavior on passing cases, and
 * the PredictionBundle capacity negative paths.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <unistd.h>

#include "check/fuzz.h"
#include "core/btb_org.h"

using namespace btbsim;

namespace {

/** Fresh scratch directory, removed on scope exit. */
struct ScratchDir
{
    std::filesystem::path path;

    ScratchDir()
    {
        path = std::filesystem::temp_directory_path() /
               ("btbsim-fuzz-test-" + std::to_string(::getpid()));
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
};

} // namespace

TEST(Fuzz, RandomCaseIsDeterministic)
{
    check::FuzzCase a = check::randomCase(42, 500);
    check::FuzzCase b = check::randomCase(42, 500);
    EXPECT_EQ(a.btb, b.btb);
    ASSERT_EQ(a.insts.size(), b.insts.size());
    for (std::size_t i = 0; i < a.insts.size(); ++i) {
        EXPECT_EQ(a.insts[i].pc, b.insts[i].pc) << "index " << i;
        EXPECT_EQ(a.insts[i].next_pc, b.insts[i].next_pc) << "index " << i;
    }
    // A different seed must not produce the same stream.
    check::FuzzCase c = check::randomCase(43, 500);
    EXPECT_TRUE(c.btb != a.btb || c.insts[0].pc != a.insts[0].pc ||
                c.insts.size() != a.insts.size() ||
                !std::equal(a.insts.begin(), a.insts.end(), c.insts.begin(),
                            [](const Instruction &x, const Instruction &y) {
                                return x.pc == y.pc && x.next_pc == y.next_pc;
                            }));
}

TEST(Fuzz, SeedsCoverEveryOrganizationKind)
{
    bool seen[5] = {};
    for (std::uint64_t s = 1; s <= 64; ++s)
        seen[static_cast<int>(check::randomCase(s, 1).btb.kind)] = true;
    for (int k = 0; k < 5; ++k)
        EXPECT_TRUE(seen[k]) << "kind " << k << " never generated";
}

// The stock organizations must survive the checker across many random
// configurations. (The CI fuzz job runs far more seeds; this is the
// always-on regression floor.)
TEST(Fuzz, StockOrganizationsRunClean)
{
    for (std::uint64_t s = 1; s <= 20; ++s) {
        check::FuzzCase c = check::randomCase(s, 4000);
        auto fail = check::runCase(c);
        EXPECT_FALSE(fail.has_value())
            << "seed " << s << " (" << c.btb.name() << "):\n"
            << fail->message;
    }
}

TEST(Fuzz, ReproRoundTrips)
{
    ScratchDir dir;
    check::FuzzCase c = check::randomCase(7, 600);
    const std::string path = (dir.path / "case.btbt").string();
    check::writeRepro(c, path);
    EXPECT_TRUE(std::filesystem::exists(path));
    EXPECT_TRUE(std::filesystem::exists(check::reproConfigPath(path)));

    check::FuzzCase back = check::loadRepro(path);
    EXPECT_EQ(back.btb, c.btb);
    ASSERT_EQ(back.insts.size(), c.insts.size());
    for (std::size_t i = 0; i < c.insts.size(); ++i) {
        EXPECT_EQ(back.insts[i].pc, c.insts[i].pc) << "index " << i;
        EXPECT_EQ(back.insts[i].next_pc, c.insts[i].next_pc) << "index " << i;
        EXPECT_EQ(back.insts[i].taken, c.insts[i].taken) << "index " << i;
    }
    ASSERT_NE(back.program, nullptr); // Code image survives the round trip.

    // Running the loaded case must agree with the original (both clean).
    EXPECT_FALSE(check::runCase(back).has_value());
}

TEST(Fuzz, LoadReproRejectsMissingSidecar)
{
    ScratchDir dir;
    check::FuzzCase c = check::randomCase(7, 100);
    const std::string path = (dir.path / "case.btbt").string();
    check::writeRepro(c, path);
    std::filesystem::remove(check::reproConfigPath(path));
    EXPECT_THROW(check::loadRepro(path), std::runtime_error);
}

// Shrinking a case that does not fail must change nothing but the
// truncation point — the ddmin loop only keeps failing candidates.
TEST(Fuzz, ShrinkOfPassingCaseOnlyTruncates)
{
    check::FuzzCase c = check::randomCase(3, 400);
    ASSERT_FALSE(check::runCase(c).has_value());
    check::FuzzFailure f{99, "synthetic"};
    check::ShrinkResult r = check::shrinkCase(c, f);
    EXPECT_EQ(r.reduced.insts.size(), 100u);
    EXPECT_EQ(r.reduced.btb, c.btb);
    EXPECT_EQ(r.failure.message, "synthetic");
}

// ---- PredictionBundle capacity negative paths ------------------------------

#ifdef NDEBUG
TEST(BundleCapacity, OverflowIsAssertChecked)
{
    GTEST_SKIP() << "capacity asserts compiled out under NDEBUG";
}
#else
using BundleCapacityDeath = ::testing::Test;

TEST(BundleCapacityDeath, SegmentOverflowAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            PredictionBundle b;
            for (unsigned i = 0; i <= PredictionBundle::kMaxSegments; ++i)
                b.addSegment(i * 0x100, i * 0x100 + 0x40);
        },
        "segment overflow");
}

TEST(BundleCapacityDeath, SlotOverflowAsserts)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    EXPECT_DEATH(
        {
            PredictionBundle b;
            b.addSegment(0, 0x10000);
            for (unsigned i = 0; i <= PredictionBundle::kMaxSlots; ++i)
                b.addSlot(0, i * 4, BranchClass::kCondDirect, 0x100, 1);
        },
        "slot overflow");
}
#endif

// The fill APIs must accept exactly the documented capacities.
TEST(BundleCapacity, FullBundleIsRepresentable)
{
    PredictionBundle b;
    for (unsigned i = 0; i < PredictionBundle::kMaxSegments; ++i)
        b.addSegment(i * 0x100, i * 0x100 + 0x100);
    for (unsigned i = 0; i < PredictionBundle::kMaxSlots; ++i)
        b.addSlot(i % PredictionBundle::kMaxSegments, (i % 16) * 4,
                  BranchClass::kCondDirect, 0x100, 1);
    EXPECT_EQ(b.n_segments, PredictionBundle::kMaxSegments);
    EXPECT_EQ(b.n_slots, PredictionBundle::kMaxSlots);
}
