/** @file Tests for the durable sweep-completion journal (exp/journal.h):
 *  single-write+fdatasync appends, torn-tail crash recovery, resume. */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

#include "exp/journal.h"
#include "obs/json.h"

using namespace btbsim;

namespace {

std::string
tmpPath(const std::string &name)
{
    const std::string path = ::testing::TempDir() + "btbsim_journal_" + name;
    std::filesystem::remove(path);
    return path;
}

std::string
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::string &content)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    os << content;
}

exp::JournalRecord
record(const std::string &digest, const std::string &status)
{
    exp::JournalRecord r;
    r.digest = digest;
    r.status = status;
    r.config = "cfg";
    r.workload = "wl";
    r.attempts = status == "cached" ? 0 : 1;
    return r;
}

std::vector<std::string>
lines(const std::string &content)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start < content.size()) {
        const std::size_t nl = content.find('\n', start);
        if (nl == std::string::npos)
            break;
        out.push_back(content.substr(start, nl - start));
        start = nl + 1;
    }
    return out;
}

} // namespace

TEST(Journal, AppendIsImmediatelyDurableOnDisk)
{
    const std::string path = tmpPath("append.jsonl");
    exp::Journal j(path, /*resume=*/false);
    ASSERT_TRUE(j.open());

    j.append(record("d-ok", "ok"));
    // Visible on disk right away — no buffering, no close() needed
    // (this is what makes a kill -9 between records lossless).
    {
        const auto ls = lines(readFile(path));
        ASSERT_EQ(ls.size(), 1u);
        const obs::JsonValue v = obs::parseJson(ls[0]);
        EXPECT_EQ(v.at("digest").asString(), "d-ok");
        EXPECT_EQ(v.at("status").asString(), "ok");
        EXPECT_EQ(v.at("config").asString(), "cfg");
    }

    j.append(record("d-cached", "cached"));
    j.append(record("d-failed", "failed"));
    EXPECT_EQ(lines(readFile(path)).size(), 3u);

    // Only ok/cached count as completed work.
    EXPECT_TRUE(j.completedBefore("d-ok"));
    EXPECT_TRUE(j.completedBefore("d-cached"));
    EXPECT_FALSE(j.completedBefore("d-failed"));
    EXPECT_EQ(j.completedCount(), 2u);
}

TEST(Journal, RenderLineIsSingleLineJson)
{
    exp::JournalRecord r = record("abc", "failed");
    r.error = "boom\nsecond line";
    const std::string line = exp::Journal::renderLine(r);
    EXPECT_EQ(line.find('\n'), std::string::npos);
    const obs::JsonValue v = obs::parseJson(line);
    EXPECT_EQ(v.at("error").asString(), "boom\nsecond line");
    EXPECT_EQ(v.at("attempts").asNumber(), 1.0);
}

TEST(Journal, RecoverDropsOnlyTheTornTail)
{
    const std::string path = tmpPath("torn.jsonl");
    const std::string l1 = exp::Journal::renderLine(record("d1", "ok"));
    const std::string l2 = exp::Journal::renderLine(record("d2", "cached"));
    const std::string good = l1 + "\n" + l2 + "\n";
    // A record that died mid-write(2): no trailing newline.
    writeFile(path, good + R"({"digest":"d3","sta)");

    const auto completed = exp::Journal::recover(path);
    EXPECT_EQ(completed.size(), 2u);
    EXPECT_TRUE(completed.count("d1"));
    EXPECT_TRUE(completed.count("d2"));
    // The torn tail is gone from disk; the valid prefix is untouched.
    EXPECT_EQ(readFile(path), good);
}

TEST(Journal, RecoverTreatsUnparseableFinalLineAsTorn)
{
    const std::string path = tmpPath("badtail.jsonl");
    const std::string l1 = exp::Journal::renderLine(record("d1", "ok"));
    const std::string good = l1 + "\n";
    writeFile(path, good + "not json at all\n");

    const auto completed = exp::Journal::recover(path);
    EXPECT_EQ(completed.size(), 1u);
    EXPECT_EQ(readFile(path), good);
}

TEST(Journal, RecoverPreservesInteriorJunk)
{
    const std::string path = tmpPath("junk.jsonl");
    const std::string l1 = exp::Journal::renderLine(record("d1", "ok"));
    const std::string l2 = exp::Journal::renderLine(record("d2", "ok"));
    const std::string content = l1 + "\n# a diagnostic note\n" + l2 + "\n";
    writeFile(path, content);

    const auto completed = exp::Journal::recover(path);
    EXPECT_EQ(completed.size(), 2u);
    // Interior junk is skipped on load but not truncated away.
    EXPECT_EQ(readFile(path), content);
}

TEST(Journal, RecoverMissingFileIsEmpty)
{
    EXPECT_TRUE(exp::Journal::recover(tmpPath("missing.jsonl")).empty());
}

TEST(Journal, ResumeRecoversThenAppends)
{
    const std::string path = tmpPath("resume.jsonl");
    const std::string l1 = exp::Journal::renderLine(record("d1", "ok"));
    // Simulate a crash mid-append of the second record.
    writeFile(path, l1 + "\n" + R"({"digest":"d2")");

    exp::Journal j(path, /*resume=*/true);
    ASSERT_TRUE(j.open());
    EXPECT_TRUE(j.completedBefore("d1"));
    EXPECT_FALSE(j.completedBefore("d2"));
    EXPECT_EQ(j.completedCount(), 1u);

    j.append(record("d2", "ok"));
    const auto ls = lines(readFile(path));
    ASSERT_EQ(ls.size(), 2u);
    EXPECT_EQ(obs::parseJson(ls[0]).at("digest").asString(), "d1");
    EXPECT_EQ(obs::parseJson(ls[1]).at("digest").asString(), "d2");
}

TEST(Journal, FreshOpenTruncates)
{
    const std::string path = tmpPath("trunc.jsonl");
    writeFile(path,
              exp::Journal::renderLine(record("old", "ok")) + "\n");
    exp::Journal j(path, /*resume=*/false);
    ASSERT_TRUE(j.open());
    EXPECT_EQ(j.completedCount(), 0u);
    EXPECT_EQ(readFile(path), "");
}

TEST(Journal, EmptyPathDisables)
{
    exp::Journal j("", true);
    EXPECT_FALSE(j.open());
    j.append(record("d", "ok")); // Must be a safe no-op.
    EXPECT_EQ(j.completedCount(), 0u);
}

TEST(Journal, CreatesParentDirectories)
{
    const std::string dir =
        ::testing::TempDir() + "btbsim_journal_nested";
    std::filesystem::remove_all(dir);
    const std::string path = dir + "/a/b/j.jsonl";
    exp::Journal j(path, true);
    ASSERT_TRUE(j.open());
    j.append(record("d", "ok"));
    EXPECT_EQ(exp::Journal::recover(path).size(), 1u);
}
