/** @file Unit tests for stats primitives. */

#include <gtest/gtest.h>

#include <cmath>

#include "common/sat_counter.h"
#include "common/stats.h"

using namespace btbsim;

TEST(RunningMean, Basics)
{
    RunningMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.add(2.0);
    m.add(4.0);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
    m.add(6.0, 2.0); // weighted
    EXPECT_DOUBLE_EQ(m.mean(), (2 + 4 + 12) / 4.0);
}

TEST(Histogram, MeanAndOverflow)
{
    Histogram h(8);
    h.add(1);
    h.add(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    h.add(100); // clamps to bucket 7
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, ZeroBucketsClampsToOne)
{
    // Regression: Histogram(0) used to compute buckets_.size() - 1 on an
    // empty vector (underflow) and write out of bounds.
    Histogram h(0);
    EXPECT_EQ(h.bucketCount(), 1u);
    h.add(0);
    h.add(100);
    EXPECT_EQ(h.count(0), 2u);
    EXPECT_EQ(h.total(), 2u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Histogram, Merge)
{
    Histogram a(4), b(8);
    a.add(1);
    a.add(100); // clamps to bucket 3
    b.add(6);
    a.merge(b);
    EXPECT_EQ(a.bucketCount(), 8u); // grew to the wider histogram
    EXPECT_EQ(a.count(1), 1u);
    EXPECT_EQ(a.count(3), 1u);
    EXPECT_EQ(a.count(6), 1u);
    EXPECT_EQ(a.total(), 3u);
}

TEST(RunningMean, Merge)
{
    RunningMean a, b;
    a.add(2.0);
    b.add(4.0);
    b.add(6.0);
    a.merge(b);
    EXPECT_DOUBLE_EQ(a.mean(), 4.0);
    EXPECT_DOUBLE_EQ(a.count(), 3.0);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(Geomean, SkipsNonPositiveValues)
{
    // Regression: std::log(0) = -inf used to propagate NaN/0 into every
    // reported table containing a single dead run.
    EXPECT_DOUBLE_EQ(geomean({0.0, 4.0, 1.0}), 2.0);
    EXPECT_DOUBLE_EQ(geomean({-3.0, 9.0}), 9.0);
    EXPECT_DOUBLE_EQ(geomean({0.0}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({-1.0, 0.0}), 0.0);
    EXPECT_FALSE(std::isnan(geomean({-1.0, 2.0, 8.0})));
}

TEST(VecMinMax, Basics)
{
    EXPECT_DOUBLE_EQ(vecMin({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(vecMax({3.0, 1.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(vecMin({}), 0.0);
}

TEST(StatSet, MergeAndGet)
{
    StatSet a, b;
    a["x"] = 2;
    b["x"] = 3;
    b["y"] = 1;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 1u);
    EXPECT_EQ(a.get("z"), 0u);
}

TEST(SatCounter, SaturatesUp)
{
    SatCounter<2> c;
    EXPECT_EQ(c.max(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesDown)
{
    SatCounter<3> c(5);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, SixBitMaxIs63)
{
    SatCounter<6> c;
    EXPECT_EQ(c.max(), 63u);
}

TEST(SignedSatCounter, Rails)
{
    SignedSatCounter<8> w;
    for (int i = 0; i < 300; ++i)
        w.add(1);
    EXPECT_EQ(w.value(), 127);
    for (int i = 0; i < 600; ++i)
        w.add(-1);
    EXPECT_EQ(w.value(), -128);
}
