/** @file Unit tests for stats primitives. */

#include <gtest/gtest.h>

#include "common/sat_counter.h"
#include "common/stats.h"

using namespace btbsim;

TEST(RunningMean, Basics)
{
    RunningMean m;
    EXPECT_DOUBLE_EQ(m.mean(), 0.0);
    m.add(2.0);
    m.add(4.0);
    EXPECT_DOUBLE_EQ(m.mean(), 3.0);
    m.add(6.0, 2.0); // weighted
    EXPECT_DOUBLE_EQ(m.mean(), (2 + 4 + 12) / 4.0);
}

TEST(Histogram, MeanAndOverflow)
{
    Histogram h(8);
    h.add(1);
    h.add(3);
    EXPECT_DOUBLE_EQ(h.mean(), 2.0);
    h.add(100); // clamps to bucket 7
    EXPECT_EQ(h.count(7), 1u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(Geomean, KnownValues)
{
    EXPECT_DOUBLE_EQ(geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
}

TEST(VecMinMax, Basics)
{
    EXPECT_DOUBLE_EQ(vecMin({3.0, 1.0, 2.0}), 1.0);
    EXPECT_DOUBLE_EQ(vecMax({3.0, 1.0, 2.0}), 3.0);
    EXPECT_DOUBLE_EQ(vecMin({}), 0.0);
}

TEST(StatSet, MergeAndGet)
{
    StatSet a, b;
    a["x"] = 2;
    b["x"] = 3;
    b["y"] = 1;
    a.merge(b);
    EXPECT_EQ(a.get("x"), 5u);
    EXPECT_EQ(a.get("y"), 1u);
    EXPECT_EQ(a.get("z"), 0u);
}

TEST(SatCounter, SaturatesUp)
{
    SatCounter<2> c;
    EXPECT_EQ(c.max(), 3u);
    for (int i = 0; i < 10; ++i)
        c.increment();
    EXPECT_EQ(c.value(), 3u);
    EXPECT_TRUE(c.saturated());
}

TEST(SatCounter, SaturatesDown)
{
    SatCounter<3> c(5);
    for (int i = 0; i < 10; ++i)
        c.decrement();
    EXPECT_EQ(c.value(), 0u);
}

TEST(SatCounter, SixBitMaxIs63)
{
    SatCounter<6> c;
    EXPECT_EQ(c.max(), 63u);
}

TEST(SignedSatCounter, Rails)
{
    SignedSatCounter<8> w;
    for (int i = 0; i < 300; ++i)
        w.add(1);
    EXPECT_EQ(w.value(), 127);
    for (int i = 0; i < 600; ++i)
        w.add(-1);
    EXPECT_EQ(w.value(), -128);
}
