/** @file Tests for the cache hierarchy model. */

#include <gtest/gtest.h>

#include "memory/cache.h"

using namespace btbsim;

namespace {

struct Hierarchy
{
    Dram dram{4, 100};
    Cache llc;
    Cache l2;
    Cache l1;

    Hierarchy()
        : llc({"LLC", 64, 8, 35, 16, false}, nullptr, &dram),
          l2({"L2", 32, 8, 15, 16, false}, &llc, nullptr),
          l1({"L1", 8, 4, 3, 8, false}, &l2, nullptr)
    {}
};

} // namespace

TEST(Cache, ColdMissGoesToDram)
{
    Hierarchy h;
    const Cycle done = h.l1.access(0x1000, 10);
    EXPECT_GE(done, 110u); // at least the DRAM latency
    EXPECT_EQ(h.l1.demandMisses(), 1u);
    EXPECT_EQ(h.dram.accesses(), 1u);
}

TEST(Cache, HitLatencyAfterFill)
{
    Hierarchy h;
    const Cycle miss_done = h.l1.access(0x1000, 10);
    const Cycle hit_done = h.l1.access(0x1000, miss_done + 1);
    EXPECT_EQ(hit_done, miss_done + 1 + 3);
    EXPECT_EQ(h.l1.demandMisses(), 1u);
}

TEST(Cache, InclusiveFillAlongPath)
{
    Hierarchy h;
    h.l1.access(0x1000, 0);
    EXPECT_TRUE(h.l1.contains(0x1000));
    EXPECT_TRUE(h.l2.contains(0x1000));
    EXPECT_TRUE(h.llc.contains(0x1000));
}

TEST(Cache, L2HitIsCheaperThanDram)
{
    Hierarchy h;
    h.l2.access(0x2000, 0); // warm L2 (and LLC)
    const Cycle done = h.l1.access(0x2000, 1000);
    EXPECT_EQ(done, 1000u + 15u); // L2 cumulative load-to-use
}

TEST(Cache, SameLineSharesFill)
{
    Hierarchy h;
    h.l1.access(0x1000, 0);
    // Another address in the same 64B line hits.
    EXPECT_EQ(h.l1.demandMisses(), 1u);
    h.l1.access(0x1030, 500);
    EXPECT_EQ(h.l1.demandMisses(), 1u);
}

TEST(Cache, MshrMergeOnInflightLine)
{
    Hierarchy h;
    const Cycle a = h.l1.access(0x1000, 0);
    const Cycle b = h.l1.access(0x1004, 2); // same line, still in flight
    EXPECT_EQ(a, b);
    EXPECT_EQ(h.l1.stats.get("mshr_merges"), 1u);
    EXPECT_EQ(h.dram.accesses(), 1u);
}

TEST(Cache, PrefetchWarmsWithoutDemandCount)
{
    Hierarchy h;
    h.l1.prefetch(0x3000, 0);
    EXPECT_EQ(h.l1.demandAccesses(), 0u);
    EXPECT_TRUE(h.l1.contains(0x3000));
    const Cycle done = h.l1.access(0x3000, 1000);
    EXPECT_EQ(done, 1003u);
}

TEST(Cache, NextLinePrefetchOption)
{
    Dram dram(4, 100);
    Cache llc({"LLC", 64, 8, 35, 16, false}, nullptr, &dram);
    Cache l2({"L2", 32, 8, 15, 16, true}, &llc, nullptr);
    l2.access(0x1000, 0);
    EXPECT_TRUE(l2.contains(0x1040)); // next line pulled in
}

TEST(Cache, EvictionOnSetConflict)
{
    // L1: 8 sets, 4 ways. Fill 5 lines in the same set.
    Hierarchy h;
    for (int i = 0; i < 5; ++i)
        h.l1.access(0x10000 + static_cast<Addr>(i) * 8 * 64, 1000 * i);
    EXPECT_FALSE(h.l1.contains(0x10000)); // LRU victim gone from L1
    EXPECT_TRUE(h.l2.contains(0x10000));  // but still in L2
}

TEST(Dram, ChannelOccupancySerializes)
{
    Dram dram(1, 100, 8);
    const Cycle a = dram.access(0x0, 0);
    const Cycle b = dram.access(0x0, 0); // same channel, queued
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 108u);
}

TEST(Dram, ChannelsInterleaveByLine)
{
    Dram dram(4, 100, 8);
    const Cycle a = dram.access(0x000, 0);
    const Cycle b = dram.access(0x040, 0); // different channel
    EXPECT_EQ(a, 100u);
    EXPECT_EQ(b, 100u);
}
