/**
 * @file
 * Tests for the differential-checking subsystem (src/check/): the
 * training oracle, the eviction monitors, the reference models, and the
 * CheckedBtb decorator — both that it stays silent over the stock
 * organizations and that it actually fires on a corrupted one.
 */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "check/branch_history.h"
#include "check/checker.h"
#include "check/reference.h"
#include "env_util.h"

using namespace btbsim;
using check::BranchHistory;
using check::CheckedBtb;
using check::CheckFailure;
using check::EvictionMonitor;

namespace {

Instruction
cond(Addr pc, Addr target, bool taken = true)
{
    return test::branchAt(pc, BranchClass::kCondDirect, target, taken);
}

} // namespace

// ---- BranchHistory --------------------------------------------------------

TEST(BranchHistory, TracksEveryValueAndTheLatest)
{
    BranchHistory h;
    EXPECT_FALSE(h.knows(0x1000));
    h.train(0x1000, BranchClass::kIndirectCall, 0x2000);
    h.train(0x1000, BranchClass::kIndirectCall, 0x3000);
    h.train(0x1000, BranchClass::kIndirectCall, 0x2000); // Re-train, dedup.

    EXPECT_TRUE(h.knows(0x1000));
    EXPECT_TRUE(h.contains(0x1000, BranchClass::kIndirectCall, 0x2000));
    EXPECT_TRUE(h.contains(0x1000, BranchClass::kIndirectCall, 0x3000));
    EXPECT_FALSE(h.contains(0x1000, BranchClass::kIndirectCall, 0x4000));
    EXPECT_FALSE(h.contains(0x1000, BranchClass::kIndirectJump, 0x2000));
    ASSERT_NE(h.latest(0x1000), nullptr);
    EXPECT_EQ(h.latest(0x1000)->second, 0x2000u);
    EXPECT_EQ(h.trackedPcs(), 1u);
    EXPECT_EQ(h.latest(0x1004), nullptr);
}

// ---- EvictionMonitor ------------------------------------------------------

TEST(EvictionMonitor, CleanUntilDistinctKeysExceedWays)
{
    EvictionMonitor m(/*sets=*/2, /*ways=*/2, /*shift=*/2);
    // Keys 0x0, 0x8, 0x10 map to set 0; 0x4 maps to set 1.
    m.insertKey(0x0);
    m.insertKey(0x8);
    m.insertKey(0x8); // Same key again: not a new distinct key.
    EXPECT_TRUE(m.clean(0x0));
    m.insertKey(0x10); // Third distinct key in a 2-way set.
    EXPECT_FALSE(m.clean(0x0));
    EXPECT_FALSE(m.clean(0x10)); // Same set, same verdict.
    EXPECT_TRUE(m.clean(0x4));   // Other set unaffected.
}

// ---- reference models -----------------------------------------------------

TEST(RefIbtb, MustHoldOnlyBeforeAnyPossibleEviction)
{
    BtbConfig cfg;
    cfg.kind = BtbKind::kInstruction;
    cfg.l1 = {1, 2};
    cfg.l2 = {64, 4};
    check::RefIbtb ref(cfg);

    EXPECT_FALSE(ref.mustHold(0x1000)); // Never trained.
    ref.train(0x1000);
    ref.train(0x1004);
    EXPECT_TRUE(ref.mustHold(0x1000));
    EXPECT_TRUE(ref.mustHold(0x1004));
    ref.train(0x1008); // Third distinct key in the 2-way L1 set.
    EXPECT_FALSE(ref.mustHold(0x1000));
}

TEST(RefRbtb, SlotOverflowDropsCompleteness)
{
    BtbConfig cfg;
    cfg.kind = BtbKind::kRegion;
    cfg.region_bytes = 64;
    cfg.branch_slots = 2;
    cfg.l1 = {16, 4};
    cfg.l2 = {64, 4};
    check::RefRbtb ref(cfg);

    const Addr region = ref.regionBase(0x1010);
    EXPECT_EQ(region, 0x1000u);
    ref.train(0x1004);
    ref.train(0x1010);
    ASSERT_TRUE(ref.mustHoldAll(region));
    ASSERT_NE(ref.trainedBranches(region), nullptr);
    EXPECT_EQ(ref.trainedBranches(region)->size(), 2u);

    ref.train(0x1020); // Third distinct offset with 2 branch slots.
    EXPECT_FALSE(ref.mustHoldAll(region));
}

// ---- CheckedBtb: silent on correct organizations --------------------------

TEST(CheckedBtb, CleanOverStockOrganizations)
{
    const BtbConfig cfgs[] = {
        BtbConfig::ibtb(8),
        BtbConfig::ibtb(8, /*skip=*/true),
        BtbConfig::rbtb(2),
        BtbConfig::bbtb(2),
        BtbConfig::mbbtb(2, PullPolicy::kAllBr),
        BtbConfig::hetero(2),
    };
    for (const BtbConfig &cfg : cfgs) {
        auto org = makeBtb(cfg);
        CheckedBtb chk(*org, /*abort_on_failure=*/false);
        // Train a small loop body, then walk accesses over it.
        for (int round = 0; round < 3; ++round) {
            chk.update(cond(0x1008, 0x1100), false);
            chk.update(
                test::branchAt(0x1104, BranchClass::kUncondDirect, 0x1000),
                false);
            for (Addr pc : {Addr{0x1000}, Addr{0x1100}}) {
                PredictionBundle b;
                chk.beginAccess(pc, b);
                for (Addr p = pc; p < pc + 0x20; p += kInstBytes)
                    if (b.probe(p).kind == StepView::Kind::kEndOfWindow)
                        break;
                b.finish(chk);
            }
        }
        EXPECT_GT(chk.accessesChecked(), 0u) << cfg.name();
        EXPECT_EQ(&chk.config(), &org->config()) << cfg.name();
    }
}

// ---- CheckedBtb: fires on corrupted organizations --------------------------

namespace {

/** Configurable broken organization for negative tests. */
class BogusOrg : public BtbOrg
{
  public:
    enum class Mode {
        kUntrainedSlot,  ///< Exposes a value never trained.
        kStaleTarget,    ///< Exposes a superseded target (I-BTB semantics).
        kMisaligned,     ///< Slot pc not instruction-aligned.
        kInvertedSegment,///< Segment with start >= end.
        kWrongWindow,    ///< Window not anchored at the access pc.
    };

    explicit BogusOrg(Mode mode) : mode_(mode)
    {
        cfg_ = BtbConfig::ibtb(4);
    }

    int
    beginAccess(Addr pc, PredictionBundle &b) override
    {
        switch (mode_) {
          case Mode::kInvertedSegment:
            b.addSegment(pc, pc);
            return 0;
          case Mode::kWrongWindow:
            b.addSegment(pc + kInstBytes, pc + 5 * kInstBytes);
            return 0;
          default:
            break;
        }
        b.addSegment(pc, pc + Addr{4} * kInstBytes);
        switch (mode_) {
          case Mode::kUntrainedSlot:
            // pc + 4 is never trained by any test using this mode.
            b.addSlot(0, pc + kInstBytes, BranchClass::kUncondDirect,
                      0xdead0000, 1);
            break;
          case Mode::kStaleTarget:
            if (const auto *v = first_value_)
                b.addSlot(0, trained_pc_, BranchClass::kCondDirect, *v, 1);
            break;
          case Mode::kMisaligned:
            b.addSlot(0, pc + 2, BranchClass::kCondDirect, 0x2000, 1);
            break;
          default:
            break;
        }
        return 0;
    }

    void
    update(const Instruction &br, bool) override
    {
        if (!br.taken)
            return;
        if (!first_value_) {
            trained_pc_ = br.pc;
            stored_ = br.takenTarget();
            first_value_ = &stored_;
        }
    }

    OccupancySample sampleOccupancy() const override { return {}; }
    const BtbConfig &config() const override { return cfg_; }

  private:
    Mode mode_;
    BtbConfig cfg_;
    Addr trained_pc_ = 0;
    Addr stored_ = 0;
    const Addr *first_value_ = nullptr;
};

void
expectFailure(BogusOrg::Mode mode, const char *needle)
{
    BogusOrg org(mode);
    CheckedBtb chk(org, /*abort_on_failure=*/false);
    // Give modes that replay trained values something to go stale: train
    // the same pc twice with different targets.
    chk.update(cond(0x1000, 0x2000), false);
    chk.update(cond(0x1000, 0x3000), false);
    PredictionBundle b;
    try {
        chk.beginAccess(0x1000, b);
        FAIL() << "checker stayed silent in mode " << static_cast<int>(mode);
    } catch (const CheckFailure &e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos)
            << "unexpected report:\n"
            << e.what();
    }
}

} // namespace

TEST(CheckedBtb, CatchesUntrainedSlot)
{
    expectFailure(BogusOrg::Mode::kUntrainedSlot, "never trained");
}

TEST(CheckedBtb, CatchesStaleValueUnderLatestSemantics)
{
    expectFailure(BogusOrg::Mode::kStaleTarget, "latest training");
}

TEST(CheckedBtb, CatchesMisalignedSlot)
{
    expectFailure(BogusOrg::Mode::kMisaligned, "not instruction-aligned");
}

TEST(CheckedBtb, CatchesInvertedSegment)
{
    expectFailure(BogusOrg::Mode::kInvertedSegment, "empty or inverted");
}

TEST(CheckedBtb, CatchesMisanchoredWindow)
{
    expectFailure(BogusOrg::Mode::kWrongWindow, "does not start at the access pc");
}

// The failure report must carry enough context to debug from the text
// alone: organization name, access pc, and the full slot dump.
TEST(CheckedBtb, FailureReportCarriesContext)
{
    BogusOrg org(BogusOrg::Mode::kUntrainedSlot);
    CheckedBtb chk(org, /*abort_on_failure=*/false);
    chk.setNow(1234);
    PredictionBundle b;
    try {
        chk.beginAccess(0x1000, b);
        FAIL() << "checker stayed silent";
    } catch (const CheckFailure &e) {
        const std::string report = e.what();
        EXPECT_NE(report.find("cycle: 1234"), std::string::npos) << report;
        EXPECT_NE(report.find("access_pc: 0x1000"), std::string::npos)
            << report;
        EXPECT_NE(report.find("0xdead0000"), std::string::npos) << report;
    }
}

// ---- environment gate -----------------------------------------------------

TEST(CheckedBtb, WrapFromEnvHonorsBtbsimCheck)
{
    auto org = makeBtb(BtbConfig::ibtb(8));
    {
        test::ScopedEnv off("BTBSIM_CHECK", nullptr);
        EXPECT_EQ(CheckedBtb::wrapFromEnv(*org), nullptr);
    }
    {
        test::ScopedEnv off("BTBSIM_CHECK", "0");
        EXPECT_EQ(CheckedBtb::wrapFromEnv(*org), nullptr);
    }
    {
        test::ScopedEnv on("BTBSIM_CHECK", "1");
        auto chk = CheckedBtb::wrapFromEnv(*org);
        ASSERT_NE(chk, nullptr);
        EXPECT_EQ(&chk->config(), &org->config());
    }
}
