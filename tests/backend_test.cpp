/** @file Tests for the out-of-order backend. */

#include <gtest/gtest.h>

#include "backend/backend.h"
#include "trace_util.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

struct Fixture
{
    MemHier mem;
    BackendConfig cfg;
    std::unique_ptr<Backend> be;

    explicit Fixture(BackendConfig c = {}) : cfg(c)
    {
        be = std::make_unique<Backend>(cfg, mem);
    }

    std::uint64_t seq = 0;

    DynInst
    alu(std::uint8_t dst = 0, std::uint8_t src = 0)
    {
        DynInst d;
        d.in = seqAt(0x1000 + seq * 4);
        d.in.cls = InstClass::kAlu;
        d.in.dst = dst;
        d.in.src1 = src;
        d.seq = ++seq;
        return d;
    }

    DynInst
    load(Addr addr, std::uint8_t dst)
    {
        DynInst d = alu(dst);
        d.in.cls = InstClass::kLoad;
        d.in.mem_addr = addr;
        return d;
    }

    void
    drain(Cycle &now, std::uint64_t target)
    {
        while (be->committed() < target && now < 100000)
            be->runCycle(++now);
    }
};

} // namespace

TEST(Backend, IndependentInstructionsCommitWide)
{
    Fixture f;
    Cycle now = 1;
    for (int i = 0; i < 32; ++i)
        f.be->allocate(f.alu(), now);
    f.drain(now, 32);
    EXPECT_EQ(f.be->committed(), 32u);
    // 32 independent ALUs at 16-wide issue: a handful of cycles.
    EXPECT_LE(now, 8u);
}

TEST(Backend, DependencyChainSerializes)
{
    Fixture f;
    Cycle now = 1;
    // r1 <- r1 chain of 16.
    for (int i = 0; i < 16; ++i)
        f.be->allocate(f.alu(1, 1), now);
    f.drain(now, 16);
    EXPECT_GE(now, 16u); // one per cycle at best
}

TEST(Backend, LoadLatencyDelaysDependents)
{
    Fixture f;
    Cycle now = 1;
    f.be->allocate(f.load(0x100000, 1), now); // cold: DRAM latency
    f.be->allocate(f.alu(2, 1), now);         // consumes the load
    f.drain(now, 2);
    EXPECT_GT(now, 100u);
}

TEST(Backend, LoadPortsLimitIssue)
{
    Fixture f;
    // Warm the cache line so loads are short.
    f.mem.l1d().access(0x200000, 0);
    Cycle now = 10;
    for (int i = 0; i < 9; ++i)
        f.be->allocate(f.load(0x200000, 0), now);
    // 9 independent loads, 3 load ports -> at least 3 issue cycles.
    Cycle start = now;
    f.drain(now, 9);
    EXPECT_GE(now - start, 3u);
}

TEST(Backend, RobCapacityGatesAllocate)
{
    BackendConfig cfg;
    cfg.rob_size = 8;
    Fixture f(cfg);
    Cycle now = 1;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(f.be->canAllocate());
        f.be->allocate(f.alu(), now);
    }
    EXPECT_FALSE(f.be->canAllocate());
    f.drain(now, 1);
    EXPECT_TRUE(f.be->canAllocate());
}

TEST(Backend, ExecResteerFiresAtCompletion)
{
    Fixture f;
    Cycle now = 1;
    DynInst br = f.alu();
    br.in.cls = InstClass::kBranch;
    br.in.branch = BranchClass::kCondDirect;
    br.resteer = Resteer::kExec;
    f.be->allocate(std::move(br), now);
    EXPECT_EQ(f.be->takeExecResteer(now), 0u); // not yet issued
    f.be->runCycle(++now);
    const Cycle fired = f.be->takeExecResteer(now + 1);
    EXPECT_GT(fired, 0u);
    // Event consumed.
    EXPECT_EQ(f.be->takeExecResteer(now + 2), 0u);
}

TEST(Backend, InOrderCommit)
{
    Fixture f;
    Cycle now = 1;
    f.be->allocate(f.load(0x300000, 1), now); // slow head
    for (int i = 0; i < 10; ++i)
        f.be->allocate(f.alu(), now);
    // Run a few cycles: nothing commits while the head load is in flight.
    for (int i = 0; i < 20; ++i)
        f.be->runCycle(++now);
    EXPECT_EQ(f.be->committed(), 0u);
    f.drain(now, 11);
    EXPECT_EQ(f.be->committed(), 11u);
}

TEST(Backend, IdealModeDataflowLimited)
{
    Fixture real;
    Fixture ideal{BackendConfig::idealBackend()};
    Cycle now_r = 1, now_i = 1;
    for (int i = 0; i < 64; ++i) {
        real.be->allocate(real.alu(1, 1), now_r);
        ideal.be->allocate(ideal.alu(1, 1), now_i);
    }
    real.drain(now_r, 64);
    ideal.drain(now_i, 64);
    // A serial chain is one-per-cycle in both cases.
    EXPECT_GE(now_i, 64u);
    // But loads are unit latency in ideal mode.
    Fixture ideal2{BackendConfig::idealBackend()};
    Cycle now2 = 1;
    ideal2.be->allocate(ideal2.load(0x500000, 1), now2);
    ideal2.be->allocate(ideal2.alu(2, 1), now2);
    ideal2.drain(now2, 2);
    EXPECT_LT(now2, 10u);
}

TEST(Backend, StoresRetireThroughSq)
{
    BackendConfig cfg;
    cfg.sq_size = 2;
    Fixture f(cfg);
    Cycle now = 1;
    for (int i = 0; i < 2; ++i) {
        DynInst st = f.alu();
        st.in.cls = InstClass::kStore;
        st.in.mem_addr = 0x400000;
        ASSERT_TRUE(f.be->canAllocate());
        f.be->allocate(std::move(st), now);
    }
    EXPECT_FALSE(f.be->canAllocate()); // SQ full
    f.drain(now, 2);
    EXPECT_TRUE(f.be->canAllocate());
}
