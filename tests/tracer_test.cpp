/** @file Unit tests for the bounded ring-buffer event tracer. */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "obs/json.h"
#include "obs/tracer.h"

using namespace btbsim::obs;

TEST(Tracer, RecordsInOrderBelowCapacity)
{
    Tracer t(8);
    t.record(10, TraceEventType::kBtbMiss, 0x400, 0, 1);
    t.record(12, TraceEventType::kBtbFill, 0x400, 0x500, 2);
    EXPECT_EQ(t.size(), 2u);
    EXPECT_EQ(t.total(), 2u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.at(0).type, TraceEventType::kBtbMiss);
    EXPECT_EQ(t.at(0).cycle, 10u);
    EXPECT_EQ(t.at(1).type, TraceEventType::kBtbFill);
    EXPECT_EQ(t.at(1).aux, 0x500u);
    EXPECT_EQ(t.at(1).level, 2u);
}

TEST(Tracer, WraparoundKeepsNewestOldestFirst)
{
    Tracer t(4);
    for (std::uint64_t i = 0; i < 10; ++i)
        t.record(i, TraceEventType::kFetchRedirect, 0x1000 + i);

    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.size(), 4u);
    EXPECT_EQ(t.total(), 10u);
    EXPECT_EQ(t.dropped(), 6u);
    // Retains the newest 4 (cycles 6..9), oldest first.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.at(i).cycle, 6 + i);
        EXPECT_EQ(t.at(i).pc, 0x1006u + i);
    }
}

TEST(Tracer, ClearResets)
{
    Tracer t(4);
    for (int i = 0; i < 6; ++i)
        t.record(i, TraceEventType::kFtqStall, 0);
    t.clear();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.total(), 0u);
    t.record(99, TraceEventType::kBranchResolve, 0x42);
    EXPECT_EQ(t.size(), 1u);
    EXPECT_EQ(t.at(0).cycle, 99u);
}

TEST(Tracer, EventTypeNamesAreStable)
{
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kFetchRedirect),
                 "fetch_redirect");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kBtbMiss), "btb_miss");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kBtbFill), "btb_fill");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kBtbEvict), "btb_evict");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kFtqStall), "ftq_stall");
    EXPECT_STREQ(traceEventTypeName(TraceEventType::kBranchResolve),
                 "branch_resolve");
}

TEST(Tracer, DumpJsonlEmitsOneValidObjectPerLine)
{
    Tracer t(4);
    for (std::uint64_t i = 0; i < 6; ++i) // wraps: retains cycles 2..5
        t.record(i, TraceEventType::kBtbMiss, 0x100 * i, i, 1);

    std::ostringstream os;
    t.dumpJsonl(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line)) {
        const JsonValue v = parseJson(line); // each line is valid JSON
        EXPECT_DOUBLE_EQ(v.at("cycle").asNumber(),
                         static_cast<double>(2 + lines));
        EXPECT_EQ(v.at("type").asString(), "btb_miss");
        EXPECT_DOUBLE_EQ(v.at("level").asNumber(), 1.0);
        ++lines;
    }
    EXPECT_EQ(lines, 4u);
}
