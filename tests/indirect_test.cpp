/** @file Tests for the indirect target predictor. */

#include <gtest/gtest.h>

#include "bpred/indirect.h"

using namespace btbsim;

TEST(Indirect, LearnsMonomorphicSite)
{
    IndirectPredictor p;
    GlobalHistory h;
    int correct = 0;
    for (int i = 0; i < 1000; ++i)
        correct += (p.predictAndTrain(0x1000, h, 0xBEEF0) == 0xBEEF0);
    EXPECT_GT(correct, 990);
}

TEST(Indirect, FirstLookupHasNoPrediction)
{
    IndirectPredictor p;
    GlobalHistory h;
    EXPECT_EQ(p.predictAndTrain(0x1234, h, 0xAAAA0), 0u);
}

TEST(Indirect, AdaptsToTargetChange)
{
    IndirectPredictor p;
    GlobalHistory h;
    for (int i = 0; i < 10; ++i)
        p.predictAndTrain(0x1000, h, 0x100);
    // Target changes; one mispredict, then it follows.
    EXPECT_EQ(p.predictAndTrain(0x1000, h, 0x200), 0x100u);
    EXPECT_EQ(p.predictAndTrain(0x1000, h, 0x200), 0x200u);
}

TEST(Indirect, HistoryDisambiguatesContexts)
{
    IndirectPredictor p;
    // Same branch PC, two history contexts with different targets.
    GlobalHistory ctx_a, ctx_b;
    ctx_a.shift(true);
    ctx_b.shift(false);
    for (int i = 0; i < 20; ++i) {
        p.predictAndTrain(0x4000, ctx_a, 0xAAAA0);
        p.predictAndTrain(0x4000, ctx_b, 0xBBBB0);
    }
    EXPECT_EQ(p.predictAndTrain(0x4000, ctx_a, 0xAAAA0), 0xAAAA0u);
    EXPECT_EQ(p.predictAndTrain(0x4000, ctx_b, 0xBBBB0), 0xBBBB0u);
}

TEST(Indirect, CountersTrack)
{
    IndirectPredictor p;
    GlobalHistory h;
    p.predictAndTrain(0x1000, h, 0x10);
    p.predictAndTrain(0x1000, h, 0x10);
    EXPECT_EQ(p.lookups(), 2u);
    EXPECT_EQ(p.mispredicts(), 1u); // only the cold first lookup
}
