/** @file Unit tests for the dependency-free JSON writer and parser. */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "obs/json.h"

using namespace btbsim::obs;

TEST(JsonWriter, ObjectAndArrayShape)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("schema_version", 1);
    w.kv("name", "btbsim");
    w.key("runs");
    w.beginArray();
    w.value(std::uint64_t{7});
    w.value(2.5);
    w.value(true);
    w.valueNull();
    w.endArray();
    w.endObject();

    const JsonValue root = parseJson(os.str());
    ASSERT_TRUE(root.isObject());
    EXPECT_DOUBLE_EQ(root.at("schema_version").asNumber(), 1.0);
    EXPECT_EQ(root.at("name").asString(), "btbsim");
    const JsonValue &runs = root.at("runs");
    ASSERT_TRUE(runs.isArray());
    ASSERT_EQ(runs.array.size(), 4u);
    EXPECT_DOUBLE_EQ(runs.array[0].asNumber(), 7.0);
    EXPECT_DOUBLE_EQ(runs.array[1].asNumber(), 2.5);
    EXPECT_TRUE(runs.array[2].boolean);
    EXPECT_TRUE(runs.array[3].isNull());
}

TEST(JsonWriter, EscapesStrings)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginObject();
    w.kv("s", "quote\" slash\\ tab\t nl\n ctrl\x01");
    w.endObject();

    const std::string text = os.str();
    EXPECT_NE(text.find("\\\""), std::string::npos);
    EXPECT_NE(text.find("\\\\"), std::string::npos);
    EXPECT_NE(text.find("\\t"), std::string::npos);
    EXPECT_NE(text.find("\\n"), std::string::npos);
    EXPECT_NE(text.find("\\u0001"), std::string::npos);

    // And it round-trips through the parser.
    const JsonValue root = parseJson(text);
    EXPECT_EQ(root.at("s").asString(), "quote\" slash\\ tab\t nl\n ctrl\x01");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull)
{
    std::ostringstream os;
    JsonWriter w(os);
    w.beginArray();
    w.value(std::nan(""));
    w.value(INFINITY);
    w.endArray();

    const JsonValue root = parseJson(os.str());
    ASSERT_EQ(root.array.size(), 2u);
    EXPECT_TRUE(root.array[0].isNull());
    EXPECT_TRUE(root.array[1].isNull());
}

TEST(JsonParser, Literals)
{
    EXPECT_TRUE(parseJson("null").isNull());
    EXPECT_TRUE(parseJson("true").boolean);
    EXPECT_FALSE(parseJson("false").boolean);
    EXPECT_DOUBLE_EQ(parseJson("-12.5e2").asNumber(), -1250.0);
    EXPECT_EQ(parseJson("\"hi\"").asString(), "hi");
}

TEST(JsonParser, UnicodeEscape)
{
    const JsonValue v = parseJson("\"\\u00e9\\u0041\"");
    EXPECT_EQ(v.asString(), "\xc3\xa9"
                            "A"); // é as UTF-8, then 'A'
}

TEST(JsonParser, NestedStructure)
{
    const JsonValue root =
        parseJson(R"({"a": [1, {"b": "c"}, []], "d": {}})");
    EXPECT_EQ(root.at("a").array.size(), 3u);
    EXPECT_EQ(root.at("a").array[1].at("b").asString(), "c");
    EXPECT_TRUE(root.at("a").array[2].array.empty());
    EXPECT_TRUE(root.at("d").isObject());
    EXPECT_EQ(root.find("missing"), nullptr);
    EXPECT_THROW((void)root.at("missing"), std::runtime_error);
}

TEST(JsonParser, RejectsMalformedInput)
{
    EXPECT_THROW((void)parseJson(""), std::runtime_error);
    EXPECT_THROW((void)parseJson("{"), std::runtime_error);
    EXPECT_THROW((void)parseJson("[1,]"), std::runtime_error);
    EXPECT_THROW((void)parseJson("{\"a\" 1}"), std::runtime_error);
    EXPECT_THROW((void)parseJson("\"unterminated"), std::runtime_error);
    EXPECT_THROW((void)parseJson("nulL"), std::runtime_error);
    EXPECT_THROW((void)parseJson("1 2"), std::runtime_error); // trailing junk
}

TEST(JsonParser, TypeMismatchThrows)
{
    const JsonValue v = parseJson("{\"s\": \"x\", \"n\": 3}");
    EXPECT_THROW((void)v.at("s").asNumber(), std::runtime_error);
    EXPECT_THROW((void)v.at("n").asString(), std::runtime_error);
}
