/** @file Unit tests for the deterministic RNG. */

#include <gtest/gtest.h>

#include "common/rng.h"

using namespace btbsim;

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next64(), b.next64());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next64() == b.next64());
    EXPECT_LT(same, 2);
}

TEST(Rng, BoundedStaysInBounds)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.nextBounded(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.nextRange(-3, 3);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 3);
        saw_lo |= (v == -3);
        saw_hi |= (v == 3);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, DoubleInUnitInterval)
{
    Rng r(11);
    for (int i = 0; i < 10000; ++i) {
        const double d = r.nextDouble();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(Rng, BernoulliExtremes)
{
    Rng r(13);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.nextBool(0.0));
        EXPECT_TRUE(r.nextBool(1.0));
    }
}

TEST(Rng, BernoulliMatchesProbability)
{
    Rng r(17);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.nextBool(0.3);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, GeometricMeanRoughlyMatches)
{
    Rng r(19);
    double sum = 0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += r.nextGeometric(0.5, 100);
    // Mean of geometric(continue=0.5) is ~1.
    EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(Rng, GeometricRespectsMax)
{
    Rng r(23);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LE(r.nextGeometric(0.99, 5), 5u);
}

TEST(Rng, ForkIsIndependentButDeterministic)
{
    Rng a(31);
    Rng f1 = a.fork();
    Rng b(31);
    Rng f2 = b.fork();
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(f1.next64(), f2.next64());
}
