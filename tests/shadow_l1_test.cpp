/**
 * @file
 * Direct tests of the I-BTB's deferred-lookup machinery: the ShadowL1
 * overlay that predicts per-slot supply levels at fill time, and
 * commitProbed(), which replays the real lookups (recency touches and
 * L2-to-L1 fills) at endAccess. Uses deliberately colliding geometries
 * (1 set, 1-2 ways) where several window PCs share an L1 set, so the
 * reported level is only correct if the overlay mirrors every fill and
 * touch of the access in probe order. Observed through the public API:
 * bundle StepView levels during the walk, peekLevel() afterwards.
 */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/btb_org.h"

using namespace btbsim;

namespace {

/** I-BTB with a colliding L1: every PC maps to set 0. */
BtbConfig
tinyIbtb(unsigned l1_ways)
{
    BtbConfig c;
    c.kind = BtbKind::kInstruction;
    c.width = 4;
    c.l1 = {1, l1_ways};
    c.l2 = {64, 4};
    return c;
}

/** Train a taken conditional at @p pc (conditionals do not stop the
 *  window fill, unlike always-taken classes). */
void
trainCond(BtbOrg &org, Addr pc)
{
    org.update(test::branchAt(pc, BranchClass::kCondDirect, pc + 64), false);
}

/** Walk one access from @p pc across @p n sequential PCs and return the
 *  slot level seen at each (0 = sequential / end of window). */
std::vector<int>
walkLevels(BtbOrg &org, Addr pc, unsigned n)
{
    std::vector<int> levels;
    PredictionBundle b;
    org.beginAccess(pc, b);
    for (unsigned i = 0; i < n; ++i) {
        StepView v = b.probe(pc + Addr{i} * kInstBytes);
        if (v.kind == StepView::Kind::kEndOfWindow)
            break;
        levels.push_back(v.kind == StepView::Kind::kBranch ? v.level : 0);
    }
    b.finish(org);
    return levels;
}

} // namespace

// With a 1-entry L1, the second trained branch evicts the first, so a
// window touching both must report the first from L2 — and, because the
// replayed fill of the first evicts the survivor, the second from L2 too.
TEST(ShadowL1, OneEntryL1CollidingWindow)
{
    auto org = makeBtb(tinyIbtb(/*l1_ways=*/1));
    const Addr a = 0x1000, b = 0x1004;
    trainCond(*org, a);
    trainCond(*org, b); // L1 (1 entry) now holds only b.
    ASSERT_EQ(org->peekLevel(a), 2);
    ASSERT_EQ(org->peekLevel(b), 1);

    EXPECT_EQ(walkLevels(*org, a, 2), (std::vector<int>{2, 2}));

    // commitProbed replayed lookup(a) then lookup(b): the last promoted
    // key owns the single entry.
    EXPECT_EQ(org->peekLevel(a), 2);
    EXPECT_EQ(org->peekLevel(b), 1);
}

// A second access over the same window must see the post-replay state,
// not the fill-time snapshot of the first access.
TEST(ShadowL1, ReplayedFillsVisibleToNextAccess)
{
    auto org = makeBtb(tinyIbtb(/*l1_ways=*/1));
    const Addr a = 0x1000, b = 0x1004;
    trainCond(*org, a);
    trainCond(*org, b);

    EXPECT_EQ(walkLevels(*org, a, 2), (std::vector<int>{2, 2}));
    // L1 now holds b; a window starting at a evicts it again mid-access,
    // so b still reports level 2 despite being L1-resident at fill time.
    EXPECT_EQ(walkLevels(*org, a, 2), (std::vector<int>{2, 2}));
    EXPECT_EQ(org->peekLevel(b), 1);
}

// The overlay must mirror the recency touch of an L1 hit: the touched
// way survives the in-access fill, which evicts the other way instead.
TEST(ShadowL1, TouchOrderingDirectsVictimChoice)
{
    auto org = makeBtb(tinyIbtb(/*l1_ways=*/2));
    const Addr b = 0x1000, d = 0x1004, c = 0x1008;
    trainCond(*org, d);
    trainCond(*org, b);
    trainCond(*org, c); // L1 {b, c} (d evicted, was LRU); b older than c.
    ASSERT_EQ(org->peekLevel(b), 1);
    ASSERT_EQ(org->peekLevel(c), 1);
    ASSERT_EQ(org->peekLevel(d), 2);

    // Window probes b, d, c in order. The hit on b touches it, so d's
    // fill evicts c — which must therefore report level 2.
    EXPECT_EQ(walkLevels(*org, b, 3), (std::vector<int>{1, 2, 2}));

    // Replay: touch(b), fill(d) evicts c, fill(c) evicts b (oldest).
    EXPECT_EQ(org->peekLevel(b), 2);
    EXPECT_EQ(org->peekLevel(d), 1);
    EXPECT_EQ(org->peekLevel(c), 1);
}

// Only slots the walk actually probed replay their lookups; an access
// that ends early must leave unprobed slots' entries untouched.
TEST(ShadowL1, OnlyProbedSlotsReplay)
{
    auto org = makeBtb(tinyIbtb(/*l1_ways=*/1));
    const Addr a = 0x1000, b = 0x1004;
    trainCond(*org, a);
    trainCond(*org, b); // L1 holds b.

    PredictionBundle bun;
    org->beginAccess(a, bun);
    StepView v = bun.probe(a);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
    bun.finish(*org); // Walk ends at a; slot b was filled but not probed.

    // Only lookup(a) replayed: a owns the entry, b fell back to L2.
    EXPECT_EQ(org->peekLevel(a), 1);
    EXPECT_EQ(org->peekLevel(b), 2);
}

// Skp chaining commits the probed prefix before refilling at the target:
// the chained window's levels must account for the first window's fills.
TEST(ShadowL1, ChainCommitsBeforeRefill)
{
    BtbConfig cfg = tinyIbtb(/*l1_ways=*/1);
    cfg.skip_taken = true;
    auto org = makeBtb(cfg);
    const Addr a = 0x1000, t = 0x2000;
    trainCond(*org, t); // Target-window branch, L1 resident.
    org->update(test::branchAt(a, BranchClass::kUncondDirect, t), false);
    // L1 (1 entry) now holds a; t is L2-only.
    ASSERT_EQ(org->peekLevel(a), 1);
    ASSERT_EQ(org->peekLevel(t), 2);

    PredictionBundle bun;
    org->beginAccess(a, bun);
    StepView v = bun.probe(a);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 1);
    ASSERT_TRUE(v.follow);
    ASSERT_TRUE(bun.chain(*org, a, t));
    // chainAccess committed lookup(a) (a touch), then peeked the target
    // window: t is still L2-supplied because a holds the single entry.
    v = bun.probe(t);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.level, 2);
    bun.finish(*org);

    // The probed t replayed its fill and now owns the entry.
    EXPECT_EQ(org->peekLevel(t), 1);
    EXPECT_EQ(org->peekLevel(a), 2);
}
