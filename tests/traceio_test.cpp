/** @file Tests for the .btbt trace format, writer, replay source and
 *  ChampSim importer. */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <limits>
#include <vector>

#include "trace/generator.h"
#include "trace/program.h"
#include "traceio/champsim.h"
#include "traceio/format.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"

using namespace btbsim;
using namespace btbsim::traceio;

namespace {

std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "btbsim_traceio_" + name;
}

std::vector<std::uint8_t>
readFile(const std::string &path)
{
    std::ifstream is(path, std::ios::binary);
    EXPECT_TRUE(is) << path;
    return {std::istreambuf_iterator<char>(is),
            std::istreambuf_iterator<char>()};
}

void
writeFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::ofstream os(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(os) << path;
    os.write(reinterpret_cast<const char *>(bytes.data()),
             static_cast<std::streamsize>(bytes.size()));
}

/** A short control-flow-consistent stream with every field exercised. */
std::vector<Instruction>
sampleStream(std::size_t n)
{
    std::vector<Instruction> v;
    Addr pc = 0x400000;
    Addr mem = 0x10000;
    for (std::size_t i = 0; i < n; ++i) {
        Instruction in;
        in.pc = pc;
        in.dst = static_cast<std::uint8_t>(i % 31);
        in.src1 = static_cast<std::uint8_t>((i * 7) % 31);
        in.src2 = static_cast<std::uint8_t>((i * 13) % 31);
        switch (i % 5) {
        case 0:
            in.cls = InstClass::kLoad;
            in.mem_addr = mem;
            mem += 64;
            in.next_pc = pc + kInstBytes;
            break;
        case 1:
            in.cls = InstClass::kStore;
            in.mem_addr = mem - 32;
            in.next_pc = pc + kInstBytes;
            break;
        case 2:
            in.cls = InstClass::kBranch;
            in.branch = BranchClass::kCondDirect;
            in.taken = (i % 2) != 0;
            in.next_pc = in.taken ? pc + 64 * kInstBytes : pc + kInstBytes;
            break;
        case 3:
            in.cls = InstClass::kBranch;
            in.branch = BranchClass::kIndirectCall;
            in.taken = true;
            in.next_pc = pc - 16 * kInstBytes;
            break;
        default:
            in.cls = InstClass::kAlu;
            in.next_pc = pc + kInstBytes;
            break;
        }
        pc = in.next_pc;
        v.push_back(in);
    }
    return v;
}

void
expectSameInstruction(const Instruction &a, const Instruction &b,
                      std::size_t i)
{
    EXPECT_EQ(a.pc, b.pc) << "inst " << i;
    EXPECT_EQ(a.next_pc, b.next_pc) << "inst " << i;
    EXPECT_EQ(a.cls, b.cls) << "inst " << i;
    EXPECT_EQ(a.branch, b.branch) << "inst " << i;
    EXPECT_EQ(a.taken, b.taken) << "inst " << i;
    EXPECT_EQ(a.dst, b.dst) << "inst " << i;
    EXPECT_EQ(a.src1, b.src1) << "inst " << i;
    EXPECT_EQ(a.src2, b.src2) << "inst " << i;
    EXPECT_EQ(a.mem_addr, b.mem_addr) << "inst " << i;
}

std::string
writeSample(const std::string &name, const std::vector<Instruction> &insts,
            std::uint32_t chunk_insts, const Program *prog = nullptr)
{
    const std::string path = tmpPath(name);
    TraceWriter::Options opt;
    opt.chunk_insts = chunk_insts;
    TraceWriter w(path, name, prog, opt);
    for (const Instruction &in : insts)
        w.append(in);
    w.finish();
    return path;
}

} // namespace

// ---------------------------------------------------------------------
// Varint / zigzag codec.

TEST(TraceFormat, VarintRoundTrip)
{
    const std::uint64_t cases[] = {0,
                                   1,
                                   127,
                                   128,
                                   16383,
                                   16384,
                                   0xdeadbeef,
                                   0x7fffffffffffffffull,
                                   0x8000000000000000ull,
                                   0xffffffffffffffffull};
    std::vector<std::uint8_t> buf;
    for (std::uint64_t v : cases)
        putVarint(buf, v);
    ByteReader r(buf.data(), buf.size());
    for (std::uint64_t v : cases)
        EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
}

TEST(TraceFormat, ZigzagRoundTrip)
{
    const std::int64_t cases[] = {0,
                                  1,
                                  -1,
                                  63,
                                  -64,
                                  64,
                                  std::int64_t{1} << 40,
                                  -(std::int64_t{1} << 40),
                                  std::numeric_limits<std::int64_t>::max(),
                                  std::numeric_limits<std::int64_t>::min()};
    for (std::int64_t v : cases)
        EXPECT_EQ(unzigzag(zigzag(v)), v) << v;
}

TEST(TraceFormat, TruncatedVarintThrows)
{
    const std::uint8_t bytes[] = {0x80, 0x80};
    ByteReader r(bytes, sizeof(bytes));
    EXPECT_THROW(r.varint(), TraceError);
}

TEST(TraceFormat, OverlongVarintThrows)
{
    // 11 continuation bytes can never be a valid u64 varint.
    std::vector<std::uint8_t> bytes(11, 0x80);
    bytes.push_back(0x01);
    ByteReader r(bytes.data(), bytes.size());
    EXPECT_THROW(r.varint(), TraceError);
}

TEST(TraceFormat, RecordPcWraparound)
{
    // A stream that walks across the top of the address space: all
    // deltas are computed modulo 2^64 and must round-trip.
    std::vector<Instruction> insts;
    Instruction a;
    a.pc = 0xfffffffffffffff8ull;
    a.next_pc = 0xfffffffffffffffcull;
    insts.push_back(a);
    Instruction b;
    b.pc = 0xfffffffffffffffcull;
    b.next_pc = 0; // pc + 4 wraps to zero.
    insts.push_back(b);
    Instruction c;
    c.pc = 0;
    c.cls = InstClass::kBranch;
    c.branch = BranchClass::kUncondDirect;
    c.taken = true;
    c.next_pc = 0xfffffffffffffff8ull; // Maximal backward displacement.
    insts.push_back(c);

    std::vector<std::uint8_t> buf;
    CodecState enc;
    for (const Instruction &in : insts)
        encodeRecord(buf, enc, in);

    ByteReader r(buf.data(), buf.size());
    CodecState dec;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        Instruction out;
        decodeRecord(r, dec, out);
        expectSameInstruction(insts[i], out, i);
    }
    EXPECT_TRUE(r.done());
}

TEST(TraceFormat, RecordMaxMemDelta)
{
    std::vector<Instruction> insts;
    Instruction a;
    a.pc = 0x1000;
    a.next_pc = 0x1004;
    a.cls = InstClass::kLoad;
    a.mem_addr = 1;
    insts.push_back(a);
    Instruction b = a;
    b.pc = 0x1004;
    b.next_pc = 0x1008;
    b.mem_addr = 0xffffffffffffffffull; // Max positive-then-negative swing.
    insts.push_back(b);
    Instruction c = b;
    c.pc = 0x1008;
    c.next_pc = 0x100c;
    c.mem_addr = 2;
    insts.push_back(c);

    std::vector<std::uint8_t> buf;
    CodecState enc;
    for (const Instruction &in : insts)
        encodeRecord(buf, enc, in);
    ByteReader r(buf.data(), buf.size());
    CodecState dec;
    for (std::size_t i = 0; i < insts.size(); ++i) {
        Instruction out;
        decodeRecord(r, dec, out);
        expectSameInstruction(insts[i], out, i);
    }
}

// ---------------------------------------------------------------------
// Program image.

TEST(TraceFormat, ProgramImageRoundTrip)
{
    GenParams params;
    params.seed = 0x77;
    params.target_static_insts = 8 * 1024;
    params.num_handlers = 4;
    const Program prog = generateProgram(params);

    std::vector<std::uint8_t> blob;
    serializeProgram(prog, blob);
    const Program back = deserializeProgram(blob.data(), blob.size());

    EXPECT_EQ(back.name, prog.name);
    EXPECT_EQ(back.code_base, prog.code_base);
    ASSERT_EQ(back.insts.size(), prog.insts.size());
    for (std::size_t i = 0; i < prog.insts.size(); ++i) {
        EXPECT_EQ(back.insts[i].cls, prog.insts[i].cls) << i;
        EXPECT_EQ(back.insts[i].branch, prog.insts[i].branch) << i;
        EXPECT_EQ(back.insts[i].target, prog.insts[i].target) << i;
        EXPECT_EQ(back.insts[i].behavior, prog.insts[i].behavior) << i;
        EXPECT_EQ(back.insts[i].stream, prog.insts[i].stream) << i;
        EXPECT_EQ(back.insts[i].dst, prog.insts[i].dst) << i;
        EXPECT_EQ(back.insts[i].src1, prog.insts[i].src1) << i;
        EXPECT_EQ(back.insts[i].src2, prog.insts[i].src2) << i;
    }
    ASSERT_EQ(back.conds.size(), prog.conds.size());
    for (std::size_t i = 0; i < prog.conds.size(); ++i) {
        EXPECT_EQ(back.conds[i].kind, prog.conds[i].kind) << i;
        EXPECT_EQ(back.conds[i].bias, prog.conds[i].bias) << i;
        EXPECT_EQ(back.conds[i].min_trips, prog.conds[i].min_trips) << i;
        EXPECT_EQ(back.conds[i].max_trips, prog.conds[i].max_trips) << i;
        EXPECT_EQ(back.conds[i].pattern, prog.conds[i].pattern) << i;
        EXPECT_EQ(back.conds[i].pattern_len, prog.conds[i].pattern_len) << i;
    }
    ASSERT_EQ(back.indirects.size(), prog.indirects.size());
    for (std::size_t i = 0; i < prog.indirects.size(); ++i) {
        EXPECT_EQ(back.indirects[i].kind, prog.indirects[i].kind) << i;
        EXPECT_EQ(back.indirects[i].skew, prog.indirects[i].skew) << i;
        EXPECT_EQ(back.indirects[i].burst, prog.indirects[i].burst) << i;
        EXPECT_EQ(back.indirects[i].targets, prog.indirects[i].targets) << i;
        EXPECT_EQ(back.indirects[i].weights, prog.indirects[i].weights) << i;
    }
    ASSERT_EQ(back.streams.size(), prog.streams.size());
    for (std::size_t i = 0; i < prog.streams.size(); ++i) {
        EXPECT_EQ(back.streams[i].kind, prog.streams[i].kind) << i;
        EXPECT_EQ(back.streams[i].base, prog.streams[i].base) << i;
        EXPECT_EQ(back.streams[i].footprint, prog.streams[i].footprint) << i;
        EXPECT_EQ(back.streams[i].stride, prog.streams[i].stride) << i;
    }
    EXPECT_EQ(back.entries, prog.entries);
    EXPECT_EQ(back.entry_weights, prog.entry_weights);
    EXPECT_TRUE(back.validate().empty());
}

TEST(TraceFormat, TruncatedProgramImageThrows)
{
    GenParams params;
    params.seed = 0x78;
    params.target_static_insts = 4 * 1024;
    const Program prog = generateProgram(params);
    std::vector<std::uint8_t> blob;
    serializeProgram(prog, blob);
    EXPECT_THROW(deserializeProgram(blob.data(), blob.size() / 2), TraceError);
    // Trailing garbage must be rejected too.
    blob.push_back(0);
    EXPECT_THROW(deserializeProgram(blob.data(), blob.size()), TraceError);
}

// ---------------------------------------------------------------------
// Writer -> replay round trip.

TEST(TraceRoundTrip, WriterReaderAllFields)
{
    const auto insts = sampleStream(1000);
    // Odd chunk size forces several chunks plus a short tail.
    const std::string path = writeSample("rt_fields.btbt", insts, 171);

    // Cover the decode-once cache, the synchronous streaming path and
    // the double-buffered background decoder, with and without mmap.
    const struct
    {
        bool mmap;
        bool async;
        std::uint64_t cache;
    } modes[] = {
        {true, true, 256ull << 20},
        {false, false, 256ull << 20},
        {true, false, 0},
        {true, true, 0},
        {false, true, 0},
    };
    for (const auto &mode : modes) {
        {
            TraceReplaySource::Options opt;
            opt.use_mmap = mode.mmap;
            opt.background_decode = mode.async;
            opt.cache_budget_bytes = mode.cache;
            TraceReplaySource src(path, opt);
            EXPECT_EQ(src.instructionCount(), insts.size());
            EXPECT_EQ(src.name(), "rt_fields.btbt");
            EXPECT_EQ(src.codeImage(), nullptr);
            // All but the final instruction round-trip exactly; the
            // tail is pre-patched into the wrap-seam jump (pc and
            // registers survive, control flow redirects to the head).
            for (std::size_t i = 0; i + 1 < insts.size(); ++i)
                expectSameInstruction(insts[i], src.next(), i);
            const Instruction &tail = src.next();
            EXPECT_EQ(tail.pc, insts.back().pc);
            EXPECT_EQ(tail.dst, insts.back().dst);
            EXPECT_EQ(tail.src1, insts.back().src1);
            EXPECT_EQ(tail.src2, insts.back().src2);
            EXPECT_EQ(tail.next_pc, insts.front().pc);
            EXPECT_EQ(tail.branch, BranchClass::kUncondDirect);
            EXPECT_TRUE(tail.taken);
            EXPECT_EQ(src.wraps(), 0u);
        }
    }
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, ResetIsDeterministic)
{
    const auto insts = sampleStream(500);
    const std::string path = writeSample("rt_reset.btbt", insts, 64);

    TraceReplaySource src(path);
    for (int i = 0; i < 123; ++i)
        src.next();
    src.reset();
    // (Final instruction excluded: it is the pre-patched wrap seam.)
    for (std::size_t i = 0; i + 1 < insts.size(); ++i)
        expectSameInstruction(insts[i], src.next(), i);
    EXPECT_EQ(src.next().pc, insts.back().pc);
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, WrapInsertsConsistentSeam)
{
    const auto insts = sampleStream(100);
    const std::string path = writeSample("rt_wrap.btbt", insts, 32);

    TraceReplaySource src(path);
    std::vector<Instruction> seen;
    for (std::size_t i = 0; i < 2 * insts.size(); ++i)
        seen.push_back(src.next());
    EXPECT_EQ(src.wraps(), 1u);

    // Delivery stays control-flow consistent across the seam...
    for (std::size_t i = 0; i + 1 < seen.size(); ++i)
        EXPECT_EQ(seen[i].next_pc, seen[i + 1].pc) << "seam at " << i;
    // ...because the recorded tail was rewritten into a jump to the head.
    const Instruction &seam = seen[insts.size() - 1];
    EXPECT_EQ(seam.next_pc, insts.front().pc);
    EXPECT_TRUE(seam.taken);
    EXPECT_EQ(seam.branch, BranchClass::kUncondDirect);
    // Both laps otherwise deliver the recorded stream.
    for (std::size_t i = 0; i + 1 < insts.size(); ++i) {
        expectSameInstruction(insts[i], seen[i + insts.size()], i);
    }
    std::remove(path.c_str());
}

TEST(TraceRoundTrip, ProgramImageTravelsWithTrace)
{
    GenParams params;
    params.seed = 0x99;
    params.target_static_insts = 4 * 1024;
    const Program prog = generateProgram(params);
    const auto insts = sampleStream(64);
    const std::string path =
        writeSample("rt_prog.btbt", insts, kDefaultChunkInsts, &prog);

    TraceReplaySource src(path);
    ASSERT_NE(src.codeImage(), nullptr);
    EXPECT_EQ(src.codeImage()->insts.size(), prog.insts.size());
    EXPECT_EQ(src.codeImage()->name, prog.name);
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Negative paths: every corruption fails with a clean diagnostic.

TEST(TraceNegative, MissingFile)
{
    EXPECT_THROW(TraceReplaySource("/nonexistent/nope.btbt"), TraceError);
}

TEST(TraceNegative, TruncatedHeader)
{
    const std::string path = tmpPath("neg_short.btbt");
    writeFile(path, std::vector<std::uint8_t>(17, 0x42));
    EXPECT_THROW({ TraceReplaySource src(path); }, TraceError);
    EXPECT_THROW(inspectTrace(path, true), TraceError);
    EXPECT_FALSE(verifyTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceNegative, BadMagic)
{
    const auto insts = sampleStream(32);
    const std::string path = writeSample("neg_magic.btbt", insts, 16);
    auto bytes = readFile(path);
    bytes[0] ^= 0xff;
    writeFile(path, bytes);
    try {
        TraceReplaySource src(path);
        FAIL() << "bad magic must throw";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceNegative, VersionFromTheFuture)
{
    const auto insts = sampleStream(32);
    const std::string path = writeSample("neg_ver.btbt", insts, 16);
    auto bytes = readFile(path);
    bytes[8] = 0x63; // version = 99
    writeFile(path, bytes);
    try {
        TraceReplaySource src(path);
        FAIL() << "future version must throw";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
    }
    std::remove(path.c_str());
}

TEST(TraceNegative, CorruptChunkPayload)
{
    const auto insts = sampleStream(200);
    const std::string path = writeSample("neg_crc.btbt", insts, 64);
    // Flip one byte inside chunk 2's payload (not chunk 0 — the replay
    // constructor decodes that one eagerly and would throw up front).
    const TraceFileInfo pre = inspectTrace(path, false);
    ASSERT_GE(pre.chunks.size(), 3u);
    auto bytes = readFile(path);
    bytes[pre.chunks[2].offset + 16 + 5] ^= 0x5a;
    writeFile(path, bytes);

    const auto problems = verifyTrace(path);
    ASSERT_FALSE(problems.empty());
    EXPECT_NE(problems[0].find("CRC"), std::string::npos);

    TraceReplaySource src(path); // Directory scan alone is fine...
    EXPECT_THROW(
        {
            for (std::size_t i = 0; i < insts.size(); ++i)
                src.next(); // ...decoding the bad chunk is not.
        },
        TraceError);
    std::remove(path.c_str());
}

TEST(TraceNegative, TruncatedChunkPayload)
{
    const auto insts = sampleStream(200);
    const std::string path = writeSample("neg_trunc.btbt", insts, 64);
    auto bytes = readFile(path);
    bytes.resize(bytes.size() - 10);
    writeFile(path, bytes);
    EXPECT_THROW({ TraceReplaySource src(path); }, TraceError);
    EXPECT_FALSE(verifyTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceNegative, EmptyTraceRejected)
{
    const std::string path = writeSample("neg_empty.btbt", {}, 16);
    try {
        TraceReplaySource src(path);
        FAIL() << "empty trace must throw";
    } catch (const TraceError &e) {
        EXPECT_NE(std::string(e.what()).find("no instructions"),
                  std::string::npos);
    }
    // But the container itself is well-formed.
    EXPECT_TRUE(verifyTrace(path).empty());
    std::remove(path.c_str());
}

TEST(TraceNegative, ZeroLengthChunksAreSkipped)
{
    // Hand-build a file with an empty chunk wedged between two real
    // ones: header | chunk(2 insts) | chunk(0) | chunk(1 inst).
    const auto insts = sampleStream(3);
    auto putU32 = [](std::vector<std::uint8_t> &out, std::uint32_t v) {
        for (int i = 0; i < 4; ++i) {
            out.push_back(static_cast<std::uint8_t>(v));
            v >>= 8;
        }
    };
    auto putU64 = [&](std::vector<std::uint8_t> &out, std::uint64_t v) {
        putU32(out, static_cast<std::uint32_t>(v));
        putU32(out, static_cast<std::uint32_t>(v >> 32));
    };

    std::vector<std::uint8_t> f(kMagic, kMagic + sizeof(kMagic));
    putU32(f, kFormatVersion);
    putU32(f, kHeaderBytes);
    putU64(f, 3);  // instructions
    putU32(f, 3);  // chunks
    putU32(f, 2);  // chunk target
    putU32(f, 0);  // flags
    putU32(f, 0);  // name bytes
    putU64(f, 0);  // program bytes
    putU32(f, 0);  // program crc
    while (f.size() < kHeaderBytes)
        f.push_back(0);

    auto emitChunk = [&](const Instruction *first, std::uint32_t n) {
        std::vector<std::uint8_t> payload;
        CodecState st;
        for (std::uint32_t i = 0; i < n; ++i)
            encodeRecord(payload, st, first[i]);
        putU32(f, kChunkMagic);
        putU32(f, n);
        putU32(f, static_cast<std::uint32_t>(payload.size()));
        putU32(f, crc32(payload.data(), payload.size()));
        f.insert(f.end(), payload.begin(), payload.end());
    };
    emitChunk(&insts[0], 2);
    emitChunk(nullptr, 0);
    emitChunk(&insts[2], 1);

    const std::string path = tmpPath("zero_chunk.btbt");
    writeFile(path, f);
    EXPECT_TRUE(verifyTrace(path).empty());

    for (const bool async : {true, false}) {
        for (const std::uint64_t cache : {256ull << 20, 0ull}) {
            TraceReplaySource::Options opt;
            opt.background_decode = async;
            opt.cache_budget_bytes = cache;
            TraceReplaySource src(path, opt);
            // Two full laps across the empty chunk.
            for (int lap = 0; lap < 2; ++lap)
                for (std::size_t i = 0; i < insts.size(); ++i) {
                    const Instruction &got = src.next();
                    EXPECT_EQ(got.pc, insts[i].pc)
                        << "lap " << lap << " i " << i;
                }
            EXPECT_EQ(src.wraps(), 1u);
        }
    }
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// ChampSim importer.

namespace {

ChampSimRecord
csRecord(std::uint64_t ip)
{
    ChampSimRecord r{};
    r.ip = ip;
    return r;
}

} // namespace

TEST(ChampSim, BranchClassification)
{
    // Conditional: reads flags, writes IP.
    ChampSimRecord cond = csRecord(0x1000);
    cond.is_branch = 1;
    cond.branch_taken = 1;
    cond.source_registers[0] = kChampSimRegFlags;
    cond.destination_registers[0] = kChampSimRegIp;
    EXPECT_EQ(champsimToInstruction(cond, 0x2000).branch,
              BranchClass::kCondDirect);
    EXPECT_TRUE(champsimToInstruction(cond, 0x2000).taken);

    // Direct jump: writes IP only.
    ChampSimRecord jmp = csRecord(0x1000);
    jmp.is_branch = 1;
    jmp.branch_taken = 1;
    jmp.destination_registers[0] = kChampSimRegIp;
    EXPECT_EQ(champsimToInstruction(jmp, 0x2000).branch,
              BranchClass::kUncondDirect);

    // Indirect jump: writes IP, reads a general register.
    ChampSimRecord ind = jmp;
    ind.source_registers[0] = 11;
    EXPECT_EQ(champsimToInstruction(ind, 0x2000).branch,
              BranchClass::kIndirectJump);

    // Direct call: reads+writes SP, reads IP, writes IP.
    ChampSimRecord call = csRecord(0x1000);
    call.is_branch = 1;
    call.branch_taken = 1;
    call.source_registers[0] = kChampSimRegSp;
    call.source_registers[1] = kChampSimRegIp;
    call.destination_registers[0] = kChampSimRegIp;
    call.destination_registers[1] = kChampSimRegSp;
    EXPECT_EQ(champsimToInstruction(call, 0x2000).branch,
              BranchClass::kDirectCall);

    // Indirect call: like a call but also reads a general register.
    ChampSimRecord icall = call;
    icall.source_registers[2] = 9;
    EXPECT_EQ(champsimToInstruction(icall, 0x2000).branch,
              BranchClass::kIndirectCall);

    // Return: reads SP (not IP), writes SP and IP.
    ChampSimRecord ret = csRecord(0x1000);
    ret.is_branch = 1;
    ret.branch_taken = 1;
    ret.source_registers[0] = kChampSimRegSp;
    ret.destination_registers[0] = kChampSimRegIp;
    ret.destination_registers[1] = kChampSimRegSp;
    EXPECT_EQ(champsimToInstruction(ret, 0x2000).branch,
              BranchClass::kReturn);

    // Unconditional classes are taken even if the tracer said 0.
    jmp.branch_taken = 0;
    EXPECT_TRUE(champsimToInstruction(jmp, 0x2000).taken);
}

TEST(ChampSim, MemoryAndAluMapping)
{
    ChampSimRecord load = csRecord(0x1000);
    load.source_memory[0] = 0xbeef00;
    load.destination_registers[0] = 4;
    const Instruction li = champsimToInstruction(load, 0x1004);
    EXPECT_EQ(li.cls, InstClass::kLoad);
    EXPECT_EQ(li.mem_addr, 0xbeef00u);
    EXPECT_EQ(li.dst, 4);

    ChampSimRecord store = csRecord(0x1004);
    store.destination_memory[0] = 0xdead00;
    EXPECT_EQ(champsimToInstruction(store, 0x1008).cls, InstClass::kStore);

    ChampSimRecord alu = csRecord(0x1008);
    alu.source_registers[0] = 3;
    alu.source_registers[1] = 5;
    alu.destination_registers[0] = 7;
    const Instruction ai = champsimToInstruction(alu, 0x100c);
    EXPECT_EQ(ai.cls, InstClass::kAlu);
    EXPECT_EQ(ai.src1, 3);
    EXPECT_EQ(ai.src2, 5);
    EXPECT_EQ(ai.dst, 7);
}

TEST(ChampSim, ConvertStitchesNextPc)
{
    // x86-style variable-length stream: ips are NOT 4 apart, so next_pc
    // must come from the following record, not pc + 4.
    const std::uint64_t ips[] = {0x1000, 0x1003, 0x1009, 0x100a, 0x4000};
    std::vector<ChampSimRecord> recs;
    for (std::uint64_t ip : ips)
        recs.push_back(csRecord(ip));
    recs[3].is_branch = 1; // 0x100a jumps to 0x4000.
    recs[3].branch_taken = 1;
    recs[3].destination_registers[0] = kChampSimRegIp;

    const std::string in = tmpPath("champ.raw");
    {
        std::ofstream os(in, std::ios::binary | std::ios::trunc);
        os.write(reinterpret_cast<const char *>(recs.data()),
                 static_cast<std::streamsize>(recs.size() * sizeof(recs[0])));
    }
    const std::string out = tmpPath("champ.btbt");
    const ConvertStats cs = convertChampSim(in, out, "champ-test");
    EXPECT_EQ(cs.records, 5u);
    EXPECT_EQ(cs.branches, 1u);
    EXPECT_EQ(cs.taken_branches, 1u);

    TraceReplaySource src(out);
    EXPECT_EQ(src.name(), "champ-test");
    EXPECT_EQ(src.codeImage(), nullptr);
    for (std::size_t i = 0; i < 5; ++i) {
        const Instruction &got = src.next();
        EXPECT_EQ(got.pc, ips[i]) << i;
        if (i + 1 < 5) {
            EXPECT_EQ(got.next_pc, ips[i + 1]) << i;
        }
    }
    std::remove(in.c_str());
    std::remove(out.c_str());
}

TEST(ChampSim, RejectsEmptyAndPartialFiles)
{
    const std::string in = tmpPath("champ_bad.raw");
    writeFile(in, {});
    EXPECT_THROW(convertChampSim(in, tmpPath("o1.btbt"), "x"), TraceError);
    writeFile(in, std::vector<std::uint8_t>(100, 0x11)); // not 64-aligned
    EXPECT_THROW(convertChampSim(in, tmpPath("o2.btbt"), "x"), TraceError);
    std::remove(in.c_str());
}
