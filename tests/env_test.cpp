/** @file Tests for the BTBSIM_* environment-knob facade. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <optional>
#include <set>
#include <string>

#include "common/env.h"
#include "env_util.h"

using namespace btbsim;
using btbsim::test::ScopedEnv;

namespace {

constexpr const char *kVar = "BTBSIM_WARMUP"; // Any registered knob.

} // namespace

TEST(Env, KnobTableIsWellFormed)
{
    const auto &ks = env::knobs();
    ASSERT_FALSE(ks.empty());
    std::set<std::string> names;
    for (const env::Knob &k : ks) {
        EXPECT_TRUE(std::string(k.name).starts_with("BTBSIM_")) << k.name;
        EXPECT_TRUE(names.insert(k.name).second)
            << "duplicate knob " << k.name;
        EXPECT_NE(std::string(k.description), "") << k.name;
        EXPECT_TRUE(env::isKnown(k.name));
    }
    EXPECT_FALSE(env::isKnown("BTBSIM_NO_SUCH_KNOB"));
}

TEST(Env, EveryDocumentedKnobIsRegistered)
{
    // The knobs the rest of the library reads through the facade.
    for (const char *name :
         {"BTBSIM_WARMUP", "BTBSIM_MEASURE", "BTBSIM_TRACES",
          "BTBSIM_THREADS", "BTBSIM_RUN_CACHE", "BTBSIM_RESUME",
          "BTBSIM_RETRIES", "BTBSIM_MAX_FAILURES", "BTBSIM_SAMPLE_INTERVAL",
          "BTBSIM_SPANS", "BTBSIM_SPAN_CAP", "BTBSIM_SPAN_OUT",
          "BTBSIM_HOST_COUNTERS", "BTBSIM_PROGRESS_FD",
          "BTBSIM_PROGRESS_FILE", "BTBSIM_TRACE", "BTBSIM_TRACE_CAP",
          "BTBSIM_TRACE_DIR", "BTBSIM_JSON_OUT", "BTBSIM_CSV_OUT",
          "BTBSIM_REPLAY_SHARED", "BTBSIM_SHARDS", "BTBSIM_SERVE_SOCKET"})
        EXPECT_TRUE(env::isKnown(name)) << name;
}

TEST(Env, RawAndIsSet)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_EQ(env::raw(kVar), "");
        EXPECT_FALSE(env::isSet(kVar));
    }
    {
        ScopedEnv e(kVar, "");
        EXPECT_FALSE(env::isSet(kVar));
    }
    {
        ScopedEnv e(kVar, "123");
        EXPECT_EQ(env::raw(kVar), "123");
        EXPECT_TRUE(env::isSet(kVar));
    }
}

TEST(Env, U64)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_EQ(env::u64(kVar, 77), 77u);
    }
    {
        ScopedEnv e(kVar, "123456789012");
        EXPECT_EQ(env::u64(kVar, 77), 123456789012ull);
    }
}

TEST(Env, FlagAndDisabled)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_FALSE(env::flag(kVar));
        EXPECT_FALSE(env::disabled(kVar));
    }
    {
        ScopedEnv e(kVar, "0");
        EXPECT_FALSE(env::flag(kVar));
        EXPECT_TRUE(env::disabled(kVar));
    }
    {
        ScopedEnv e(kVar, "1");
        EXPECT_TRUE(env::flag(kVar));
        EXPECT_FALSE(env::disabled(kVar));
    }
}

TEST(Env, Str)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_EQ(env::str(kVar, "fb"), "fb");
    }
    {
        ScopedEnv e(kVar, "path/x");
        EXPECT_EQ(env::str(kVar, "fb"), "path/x");
    }
}

TEST(Env, OutPathSemantics)
{
    {
        ScopedEnv e(kVar, nullptr);
        EXPECT_EQ(env::outPath(kVar, "d.json"), "");
    }
    {
        ScopedEnv e(kVar, "0");
        EXPECT_EQ(env::outPath(kVar, "d.json"), "");
    }
    {
        ScopedEnv e(kVar, "1");
        EXPECT_EQ(env::outPath(kVar, "d.json"), "d.json");
    }
    {
        ScopedEnv e(kVar, "true");
        EXPECT_EQ(env::outPath(kVar, "d.json"), "d.json");
    }
    {
        ScopedEnv e(kVar, "other.json");
        EXPECT_EQ(env::outPath(kVar, "d.json"), "other.json");
    }
}
