/** @file Tests for the Region BTB organization. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/rbtb.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::unique_ptr<BtbOrg>
makeRbtb(unsigned slots, unsigned region = 64, bool dual = false)
{
    return makeBtb(BtbConfig::rbtb(slots, region, dual));
}

} // namespace

TEST(Rbtb, WindowEndsAtRegionBoundary)
{
    auto btb = makeRbtb(2);
    // Access from an unaligned PC: window covers only the rest of the
    // 64B region (Section 3.2).
    auto views = walk(*btb, 0x1010, 64);
    EXPECT_EQ(views.size(), (0x40 - 0x10) / kInstBytes);
}

TEST(Rbtb, BranchVisibleThroughRegionEntry)
{
    auto btb = makeRbtb(2);
    btb->update(branchAt(0x1020, BranchClass::kUncondDirect, 0x2000), false);
    // Accessible from any fetch PC within the region at or before it.
    StepView v = viewAt(*btb, 0x1000, 0x1020);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.target, 0x2000u);
    v = viewAt(*btb, 0x1010, 0x1020);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
}

TEST(Rbtb, TwoBranchesShareOneEntry)
{
    auto btb = makeRbtb(2);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    btb->update(branchAt(0x101C, BranchClass::kUncondDirect, 0x3000), false);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind, StepView::Kind::kBranch);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x101C).kind, StepView::Kind::kBranch);
    OccupancySample s = btb->sampleOccupancy();
    EXPECT_EQ(s.l1_entries, 1u);
    EXPECT_DOUBLE_EQ(s.l1_slot_occupancy, 2.0);
}

TEST(Rbtb, SlotContentionDisplaces)
{
    auto btb = makeRbtb(1);
    btb->update(branchAt(0x1004, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x1008, BranchClass::kUncondDirect, 0x3000), false);
    // Single slot: 0x1004 was displaced (BTB-hit slot-miss, Section 3.5).
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind,
              StepView::Kind::kSequential);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1008).kind, StepView::Kind::kBranch);
    EXPECT_EQ(btb->stats.get("slot_displacements"), 1u);
}

TEST(Rbtb, SlotLruDisplacement)
{
    auto btb = makeRbtb(2);
    btb->update(branchAt(0x1004, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x1008, BranchClass::kUncondDirect, 0x3000), false);
    // Refresh 0x1004 so 0x1008 is the LRU slot.
    btb->update(branchAt(0x1004, BranchClass::kUncondDirect, 0x2000), false);
    btb->update(branchAt(0x100C, BranchClass::kUncondDirect, 0x4000), false);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind, StepView::Kind::kBranch);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1008).kind,
              StepView::Kind::kSequential);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x100C).kind, StepView::Kind::kBranch);
}

TEST(Rbtb, NeverChainsTaken)
{
    auto btb = makeRbtb(2);
    btb->update(branchAt(0x1000, BranchClass::kUncondDirect, 0x2000), false);
    PredictionBundle b;
    btb->beginAccess(0x1000, b);
    b.probe(0x1000);
    EXPECT_FALSE(b.chain(*btb, 0x1000, 0x2000));
}

TEST(Rbtb, DualRegionExtendsWindowOnL1Hit)
{
    auto btb = makeRbtb(2, 64, true);
    // Populate both sequential regions so both hit L1.
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    btb->update(branchAt(0x1044, BranchClass::kCondDirect, 0x3000), false);
    auto views = walk(*btb, 0x1000, 64);
    // Window now spans both regions: 32 instructions.
    EXPECT_EQ(views.size(), 32u);
    // The second region's branch is visible in the same access.
    StepView v = viewAt(*btb, 0x1000, 0x1044);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.target, 0x3000u);
}

TEST(Rbtb, DualRegionRequiresSecondL1Hit)
{
    auto btb = makeRbtb(2, 64, true);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    // Second region has no entry: window stays one region.
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 16u);
}

TEST(Rbtb, SingleRegionWithoutDualEvenIfBothPresent)
{
    auto btb = makeRbtb(2, 64, false);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    btb->update(branchAt(0x1044, BranchClass::kCondDirect, 0x3000), false);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 16u);
}

TEST(Rbtb, LargeRegionCoversMoreInstructions)
{
    auto btb = makeRbtb(4, 128);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 32u); // 128B / 4B
}

TEST(Rbtb, RedundancyIsAlwaysOne)
{
    auto btb = makeRbtb(2);
    for (Addr a = 0; a < 64; ++a)
        btb->update(branchAt(0x1000 + a * 64, BranchClass::kUncondDirect,
                             0x2000),
                    false);
    OccupancySample s = btb->sampleOccupancy();
    EXPECT_DOUBLE_EQ(s.l1_redundancy, 1.0);
}
