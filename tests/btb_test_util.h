/** @file Shared helpers for BTB organization tests. */

#ifndef BTBSIM_TESTS_BTB_TEST_UTIL_H
#define BTBSIM_TESTS_BTB_TEST_UTIL_H

#include "core/btb_org.h"
#include "trace/instruction.h"

namespace btbsim::test {

/** Build a branch instruction record. */
inline Instruction
branchAt(Addr pc, BranchClass cls, Addr target, bool taken = true)
{
    Instruction in;
    in.pc = pc;
    in.cls = InstClass::kBranch;
    in.branch = cls;
    in.taken = taken;
    in.next_pc = taken ? target : pc + kInstBytes;
    return in;
}

/** Walk an access from @p pc, returning the view at each step until the
 *  window ends or @p max steps were taken. */
inline std::vector<StepView>
walk(BtbOrg &org, Addr pc, unsigned max = 64)
{
    std::vector<StepView> views;
    org.beginAccess(pc);
    Addr cur = pc;
    for (unsigned i = 0; i < max; ++i) {
        StepView v = org.step(cur);
        if (v.kind == StepView::Kind::kEndOfWindow)
            break;
        views.push_back(v);
        cur += kInstBytes;
    }
    return views;
}

/** The view for a single pc within a fresh access starting at @p start. */
inline StepView
viewAt(BtbOrg &org, Addr start, Addr pc)
{
    org.beginAccess(start);
    for (Addr cur = start; cur < pc; cur += kInstBytes) {
        StepView v = org.step(cur);
        if (v.kind == StepView::Kind::kEndOfWindow)
            return v;
    }
    return org.step(pc);
}

} // namespace btbsim::test

#endif // BTBSIM_TESTS_BTB_TEST_UTIL_H
