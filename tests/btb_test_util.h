/** @file Shared helpers for BTB organization tests. */

#ifndef BTBSIM_TESTS_BTB_TEST_UTIL_H
#define BTBSIM_TESTS_BTB_TEST_UTIL_H

#include "core/btb_org.h"
#include "trace/instruction.h"

namespace btbsim::test {

/** Build a branch instruction record. */
inline Instruction
branchAt(Addr pc, BranchClass cls, Addr target, bool taken = true)
{
    Instruction in;
    in.pc = pc;
    in.cls = InstClass::kBranch;
    in.branch = cls;
    in.taken = taken;
    in.next_pc = taken ? target : pc + kInstBytes;
    return in;
}

/** Walk an access from @p pc, returning the view at each probe until the
 *  window ends or @p max probes were made. Ends the access (finish) so
 *  deferred side effects commit, as the frontend walker would. */
inline std::vector<StepView>
walk(BtbOrg &org, Addr pc, unsigned max = 64)
{
    std::vector<StepView> views;
    PredictionBundle b;
    org.beginAccess(pc, b);
    Addr cur = pc;
    for (unsigned i = 0; i < max; ++i) {
        StepView v = b.probe(cur);
        if (v.kind == StepView::Kind::kEndOfWindow)
            break;
        views.push_back(v);
        cur += kInstBytes;
    }
    b.finish(org);
    return views;
}

/** The view for a single pc within a fresh access starting at @p start. */
inline StepView
viewAt(BtbOrg &org, Addr start, Addr pc)
{
    PredictionBundle b;
    org.beginAccess(start, b);
    StepView v;
    for (Addr cur = start; cur <= pc; cur += kInstBytes) {
        v = b.probe(cur);
        if (v.kind == StepView::Kind::kEndOfWindow)
            break;
    }
    b.finish(org);
    return v;
}

} // namespace btbsim::test

#endif // BTBSIM_TESTS_BTB_TEST_UTIL_H
