/** @file Tests for the experiment engine (exp/experiment.h). */

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "env_util.h"
#include "exp/experiment.h"

using namespace btbsim;

namespace {

std::vector<CpuConfig>
twoConfigs()
{
    std::vector<CpuConfig> v(2);
    v[0].btb = BtbConfig::ibtb(16);
    v[1].btb = BtbConfig::bbtb(1, true);
    return v;
}

std::vector<WorkloadSpec>
threeWorkloads()
{
    std::vector<WorkloadSpec> v(3);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i].name = "wl" + std::to_string(i);
        v[i].params.seed = 100 + i;
    }
    return v;
}

/** Fast fake simulation: deterministic stats from (config, workload). */
SimStats
fakeSim(const CpuConfig &c, const WorkloadSpec &w, const RunOptions &o)
{
    SimStats s;
    s.config = c.btb.name();
    s.workload = w.name;
    s.instructions = o.measure;
    s.cycles = o.measure * 2 + w.params.seed;
    s.ipc = static_cast<double>(s.instructions) /
            static_cast<double>(s.cycles);
    s.counters["fake.seed"] = static_cast<double>(w.params.seed);
    return s;
}

exp::ExperimentOptions
baseOptions(const std::string &cache_dir)
{
    exp::ExperimentOptions o;
    o.run.warmup = 10;
    o.run.measure = 1000;
    o.run.threads = 2;
    o.cache_dir = cache_dir;
    o.backoff_ms = 1; // Keep retry tests fast.
    o.simulate = fakeSim;
    return o;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

} // namespace

TEST(Experiment, AllPointsRunAndAreOrdered)
{
    const auto r = exp::runExperiment("t-basic", twoConfigs(),
                                      threeWorkloads(), baseOptions(""));
    ASSERT_EQ(r.points.size(), 6u);
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.summary.total, 6u);
    EXPECT_EQ(r.summary.ok, 6u);
    EXPECT_EQ(r.summary.cached, 0u);
    EXPECT_EQ(r.summary.cacheHitRate(), 0.0);
    // Ordered by (config, workload), stats dense.
    EXPECT_EQ(r.points[0].config, "I-BTB 16");
    EXPECT_EQ(r.points[0].workload, "wl0");
    EXPECT_EQ(r.points[2].workload, "wl2");
    EXPECT_EQ(r.points[3].config, "B-BTB 1BS Splt");
    EXPECT_EQ(r.stats().size(), 6u);
    for (const auto &p : r.points) {
        EXPECT_EQ(p.status, exp::PointStatus::kOk);
        EXPECT_EQ(p.attempts, 1u);
        EXPECT_EQ(p.digest.size(), 64u);
    }
    // exp.* counters for the observability block.
    const auto c = r.counters();
    EXPECT_EQ(c.at("exp.points"), 6.0);
    EXPECT_EQ(c.at("exp.ok"), 6.0);
    EXPECT_EQ(c.at("exp.cache_hit_rate"), 0.0);
}

TEST(Experiment, SecondRunIsServedEntirelyFromCache)
{
    const std::string dir = freshDir("exp_cache");

    const auto cold = exp::runExperiment("t-cache", twoConfigs(),
                                         threeWorkloads(), baseOptions(dir));
    EXPECT_EQ(cold.summary.ok, 6u);
    EXPECT_EQ(cold.summary.cached, 0u);

    std::atomic<unsigned> sims{0};
    exp::ExperimentOptions warm_opt = baseOptions(dir);
    warm_opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                            const RunOptions &o) {
        sims.fetch_add(1);
        return fakeSim(c, w, o);
    };
    const auto warm = exp::runExperiment("t-cache", twoConfigs(),
                                         threeWorkloads(),
                                         std::move(warm_opt));
    EXPECT_EQ(sims.load(), 0u) << "warm run must not simulate";
    EXPECT_EQ(warm.summary.cached, 6u);
    EXPECT_EQ(warm.summary.cacheHitRate(), 1.0);

    // Bit-identical restoration, point by point.
    for (std::size_t i = 0; i < warm.points.size(); ++i) {
        EXPECT_EQ(warm.points[i].status, exp::PointStatus::kCached);
        EXPECT_EQ(exp::statsToJson(warm.points[i].stats),
                  exp::statsToJson(cold.points[i].stats));
    }
    std::filesystem::remove_all(dir);
}

TEST(Experiment, ChangedRunOptionsMissTheCache)
{
    const std::string dir = freshDir("exp_cache_miss");

    auto opt = baseOptions(dir);
    (void)exp::runExperiment("t-miss", twoConfigs(), threeWorkloads(), opt);

    opt.run.measure += 1; // Any result-affecting change -> new digests.
    const auto r = exp::runExperiment("t-miss", twoConfigs(),
                                      threeWorkloads(), std::move(opt));
    EXPECT_EQ(r.summary.cached, 0u);
    EXPECT_EQ(r.summary.ok, 6u);
    std::filesystem::remove_all(dir);
}

TEST(Experiment, TransientFailureIsRetriedToSuccess)
{
    std::atomic<unsigned> calls{0};
    auto opt = baseOptions("");
    opt.retries = 3;
    opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                       const RunOptions &o) {
        // wl1 fails twice before succeeding, everything else is clean.
        if (w.name == "wl1" && calls.fetch_add(1) < 2)
            throw std::runtime_error("transient fault");
        return fakeSim(c, w, o);
    };
    const auto r = exp::runExperiment("t-retry", {twoConfigs()[0]},
                                      threeWorkloads(), std::move(opt));
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.summary.retries, 2u);
    for (const auto &p : r.points)
        if (p.workload == "wl1")
            EXPECT_EQ(p.attempts, 3u);
        else
            EXPECT_EQ(p.attempts, 1u);
}

TEST(Experiment, PermanentFailureIsIsolatedToItsPoint)
{
    auto opt = baseOptions("");
    opt.retries = 1;
    opt.simulate = [](const CpuConfig &c, const WorkloadSpec &w,
                      const RunOptions &o) {
        if (w.name == "wl1")
            throw std::runtime_error("port model exploded");
        return fakeSim(c, w, o);
    };
    const auto r = exp::runExperiment("t-fail", twoConfigs(),
                                      threeWorkloads(), std::move(opt));

    EXPECT_FALSE(r.allOk());
    EXPECT_EQ(r.summary.ok, 4u);
    EXPECT_EQ(r.summary.failed, 2u); // wl1 under both configs.
    EXPECT_EQ(r.stats().size(), 4u); // Failed points carry no stats.

    const auto fails = r.failures();
    ASSERT_EQ(fails.size(), 2u);
    for (const exp::PointResult *p : fails) {
        EXPECT_EQ(p->workload, "wl1");
        EXPECT_EQ(p->status, exp::PointStatus::kFailed);
        EXPECT_EQ(p->attempts, 2u); // 1 try + 1 retry.
        EXPECT_EQ(p->error, "port model exploded");
    }
}

TEST(Experiment, CircuitBreakerSkipsAfterMaxFailures)
{
    auto opt = baseOptions("");
    opt.retries = 0;
    opt.max_failures = 1;
    opt.run.threads = 1; // Deterministic scheduling for the assertion.
    opt.simulate = [](const CpuConfig &, const WorkloadSpec &,
                      const RunOptions &) -> SimStats {
        throw std::runtime_error("always fails");
    };
    const auto r = exp::runExperiment("t-breaker", twoConfigs(),
                                      threeWorkloads(), std::move(opt));
    EXPECT_EQ(r.summary.failed, 1u);
    EXPECT_EQ(r.summary.skipped, 5u);
    EXPECT_FALSE(r.allOk());
}

TEST(Experiment, ResumePicksUpWhereAnInterruptedSweepStopped)
{
    const std::string dir = freshDir("exp_resume");

    // First run "crashes" after completing the first config's points:
    // simulate the crash by only sweeping a subset.
    auto first = baseOptions(dir);
    (void)exp::runExperiment("t-resume", {twoConfigs()[0]},
                             threeWorkloads(), std::move(first));

    // Full sweep with resume: the journaled points count as resumed work
    // and nothing already complete is simulated again.
    std::atomic<unsigned> sims{0};
    auto second = baseOptions(dir);
    second.resume = true;
    second.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                          const RunOptions &o) {
        sims.fetch_add(1);
        return fakeSim(c, w, o);
    };
    const auto r = exp::runExperiment("t-resume", twoConfigs(),
                                      threeWorkloads(), std::move(second));
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.summary.cached, 3u);
    EXPECT_EQ(r.summary.resumed, 3u);
    EXPECT_EQ(sims.load(), 3u); // Only the second config's points ran.
    std::filesystem::remove_all(dir);
}

TEST(Experiment, JournalRecordsEveryPoint)
{
    const std::string dir = freshDir("exp_journal");
    auto opt = baseOptions(dir);
    opt.journal_path = dir + "/j.jsonl";
    (void)exp::runExperiment("t-journal", twoConfigs(), threeWorkloads(),
                             std::move(opt));

    std::ifstream is(dir + "/j.jsonl");
    ASSERT_TRUE(is.good());
    std::size_t lines = 0;
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty())
            continue;
        ++lines;
        EXPECT_NE(line.find("\"digest\""), std::string::npos);
        EXPECT_NE(line.find("\"status\": \"ok\""), std::string::npos);
    }
    EXPECT_EQ(lines, 6u);
    std::filesystem::remove_all(dir);
}

TEST(Experiment, EnvOptions)
{
    {
        test::ScopedEnv e1("BTBSIM_RUN_CACHE", "/tmp/expenv");
        test::ScopedEnv e2("BTBSIM_RESUME", "1");
        test::ScopedEnv e3("BTBSIM_RETRIES", "5");
        test::ScopedEnv e4("BTBSIM_MAX_FAILURES", "9");
        const auto o = exp::ExperimentOptions::fromEnv("fallback");
        EXPECT_EQ(o.cache_dir, "/tmp/expenv");
        EXPECT_TRUE(o.resume);
        EXPECT_EQ(o.retries, 5u);
        EXPECT_EQ(o.max_failures, 9u);
    }

    test::ScopedEnv e1("BTBSIM_RUN_CACHE", nullptr);
    test::ScopedEnv e2("BTBSIM_RESUME", nullptr);
    const auto d = exp::ExperimentOptions::fromEnv("fallback");
    EXPECT_EQ(d.cache_dir, "fallback");
    EXPECT_FALSE(d.resume);
}
