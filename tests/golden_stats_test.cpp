/**
 * @file
 * Behavior-preservation regression test for the BTB↔frontend protocol.
 *
 * Runs every organization (plus the protocol edge cases: I-BTB Skp
 * chaining, dual-region R-BTB, B-BTB splitting, MB-BTB pulled slots with
 * end-on-not-taken and chain seams, ideal mode) over a fixed synthetic
 * workload and digests the integral SimStats counters with SHA-256. The
 * digests below were captured from the pre-bundle step()/chainTaken()
 * protocol; the PredictionBundle walker must reproduce them bit for bit.
 *
 * On mismatch the test prints the full counter dump so the diverging
 * counter is immediately visible. Regenerate a golden only for a change
 * that is *supposed* to alter simulated behavior — never for a refactor.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string>
#include <unistd.h>

#include "exp/sha256.h"
#include "sim/cpu.h"
#include "trace/generator.h"
#include "trace/synthetic_trace.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"

using namespace btbsim;

namespace {

constexpr std::uint64_t kWarmup = 20'000;
constexpr std::uint64_t kMeasure = 120'000;

const Program &
goldenProgram()
{
    static const Program prog = [] {
        GenParams p;
        p.seed = 0xB7B5EED;
        p.target_static_insts = 96 * 1024;
        p.num_handlers = 12;
        return generateProgram(p);
    }();
    return prog;
}

/**
 * Canonical serialization of the run's integral counters. Doubles that
 * are not integral (e.g. the FTQ occupancy running mean) are excluded so
 * the digest stays stable across compilers and optimization levels;
 * every protocol-relevant statistic is an integer count.
 */
std::string
canonicalCounters(const SimStats &s)
{
    std::string out;
    out += "instructions=" + std::to_string(s.instructions) + "\n";
    out += "cycles=" + std::to_string(s.cycles) + "\n";
    for (const auto &[key, value] : s.counters) {
        if (std::nearbyint(value) != value)
            continue;
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.0f", value);
        out += key;
        out += "=";
        out += buf;
        out += "\n";
    }
    return out;
}

std::string
runDigest(const BtbConfig &btb)
{
    CpuConfig cfg;
    cfg.btb = btb;
    SyntheticTrace trace(goldenProgram(), 7);
    Cpu cpu(cfg, trace);
    cpu.run(kWarmup, kMeasure);
    return exp::Sha256::hexDigest(canonicalCounters(cpu.stats()));
}

void
expectGolden(const BtbConfig &btb, const std::string &golden)
{
    CpuConfig cfg;
    cfg.btb = btb;
    SyntheticTrace trace(goldenProgram(), 7);
    Cpu cpu(cfg, trace);
    cpu.run(kWarmup, kMeasure);
    const std::string canon = canonicalCounters(cpu.stats());
    const std::string digest = exp::Sha256::hexDigest(canon);
    EXPECT_EQ(digest, golden)
        << "SimStats diverged for " << btb.name() << "\n"
        << "counter dump:\n"
        << canon;
}

/**
 * The golden workload recorded as a `.btbt` file, once per process. The
 * recording carries a frontend-slack margin beyond warmup + measure so
 * replay never wraps (a wrap rewrites the seam instruction and would
 * change the stream).
 */
const std::string &
goldenRecording()
{
    static const std::string path = [] {
        const auto dir = std::filesystem::temp_directory_path() /
                         ("btbsim-golden-" + std::to_string(::getpid()));
        std::filesystem::create_directories(dir);
        const std::string p = (dir / "golden.btbt").string();
        SyntheticTrace live(goldenProgram(), 7);
        traceio::TraceWriter w(p, "golden", &goldenProgram());
        constexpr std::uint64_t kRecorded = kWarmup + kMeasure + 96 * 1024;
        for (std::uint64_t i = 0; i < kRecorded; ++i)
            w.append(live.next());
        w.finish();
        return p;
    }();
    return path;
}

/** The replay path must reproduce the live-source digest bit for bit:
 *  same golden constants, delivered through TraceReplaySource. */
void
expectGoldenReplay(const BtbConfig &btb, const std::string &golden)
{
    CpuConfig cfg;
    cfg.btb = btb;
    traceio::TraceReplaySource trace(goldenRecording());
    Cpu cpu(cfg, trace);
    cpu.run(kWarmup, kMeasure);
    EXPECT_EQ(trace.wraps(), 0u) << "recording margin too small";
    const std::string canon = canonicalCounters(cpu.stats());
    const std::string digest = exp::Sha256::hexDigest(canon);
    EXPECT_EQ(digest, golden)
        << "replayed SimStats diverged for " << btb.name() << "\n"
        << "counter dump:\n"
        << canon;
}

} // namespace

TEST(GoldenStats, InstructionBtb)
{
    expectGolden(BtbConfig::ibtb(16), "0c9ec7760d28f0ab6d1ad55ebe5698519c1892f7f2b3797b14797692d02c1138");
}

TEST(GoldenStats, InstructionBtbSkip)
{
    expectGolden(BtbConfig::ibtb(16, /*skip=*/true), "e5dfef3d24bab47eb531ac7f9237c7ddf73e509819d135b447389875798709f0");
}

TEST(GoldenStats, InstructionBtbIdeal)
{
    BtbConfig c = BtbConfig::ibtb(16);
    c.makeIdeal();
    expectGolden(c, "404410eee2c131060c7c17258eb9bd256cc0ab14406166d8f43c6b2e66c0f016");
}

TEST(GoldenStats, RegionBtb)
{
    expectGolden(BtbConfig::rbtb(3), "e65578889b508987aa3111d06a7f1660b11aa8e88976953b870467223547a183");
}

TEST(GoldenStats, RegionBtbDual)
{
    expectGolden(BtbConfig::rbtb(2, 64, /*dual=*/true), "7e5969e6f90bbd122609d2fba1bebfffb3d5358823ab5244fc5ede2db8020879");
}

TEST(GoldenStats, BlockBtb)
{
    expectGolden(BtbConfig::bbtb(2), "0d4186b21ec1c9cc92de8c039b520b6a8ec3e9bdcef2d57ed03a5a1b94adf0de");
}

TEST(GoldenStats, BlockBtbSplit)
{
    expectGolden(BtbConfig::bbtb(1, /*split=*/true), "cfc4f36d6a5231c037ae13ffacd47e7d2facd179b927f34f68772dfe9619445e");
}

TEST(GoldenStats, MultiBlockBtbAllBr)
{
    expectGolden(BtbConfig::mbbtb(3, PullPolicy::kAllBr), "30358f709265c666fa32e68014beb1f39faf5b7d26cc7ed6d51cf8d6148ccf78");
}

TEST(GoldenStats, MultiBlockBtbCallDir32)
{
    expectGolden(BtbConfig::mbbtb(2, PullPolicy::kCallDir, 32),
                 "b16f8ea7909183d95364cc3d340ff5c0d6b9c58a9b8bc1f6308787060c76a789");
}

TEST(GoldenStats, HeteroBtb)
{
    expectGolden(BtbConfig::hetero(2, /*split=*/true), "915e3f03dfbab451c1de96299165510e1e5469a52e65063bb986aae473e2c5b0");
}

// ---- replay path (TraceReplaySource must be stream-identical) -------------
// One test per organization kind, against the same golden constants as
// the live-source tests above.

TEST(GoldenStatsReplay, InstructionBtb)
{
    expectGoldenReplay(BtbConfig::ibtb(16), "0c9ec7760d28f0ab6d1ad55ebe5698519c1892f7f2b3797b14797692d02c1138");
}

TEST(GoldenStatsReplay, RegionBtb)
{
    expectGoldenReplay(BtbConfig::rbtb(3), "e65578889b508987aa3111d06a7f1660b11aa8e88976953b870467223547a183");
}

TEST(GoldenStatsReplay, BlockBtb)
{
    expectGoldenReplay(BtbConfig::bbtb(2), "0d4186b21ec1c9cc92de8c039b520b6a8ec3e9bdcef2d57ed03a5a1b94adf0de");
}

TEST(GoldenStatsReplay, MultiBlockBtb)
{
    expectGoldenReplay(BtbConfig::mbbtb(3, PullPolicy::kAllBr),
                       "30358f709265c666fa32e68014beb1f39faf5b7d26cc7ed6d51cf8d6148ccf78");
}

TEST(GoldenStatsReplay, HeteroBtb)
{
    expectGoldenReplay(BtbConfig::hetero(2, /*split=*/true),
                       "915e3f03dfbab451c1de96299165510e1e5469a52e65063bb986aae473e2c5b0");
}

/** Utility: prints every golden digest (run with --gtest_also_run_disabled_tests
 *  to regenerate after an intentional behavior change). */
TEST(GoldenStats, DISABLED_PrintDigests)
{
    std::printf("IBTB16          %s\n", runDigest(BtbConfig::ibtb(16)).c_str());
    std::printf("IBTB16SKP       %s\n",
                runDigest(BtbConfig::ibtb(16, true)).c_str());
    BtbConfig ideal = BtbConfig::ibtb(16);
    ideal.makeIdeal();
    std::printf("IBTB16IDEAL     %s\n", runDigest(ideal).c_str());
    std::printf("RBTB3           %s\n", runDigest(BtbConfig::rbtb(3)).c_str());
    std::printf("RBTB2DUAL       %s\n",
                runDigest(BtbConfig::rbtb(2, 64, true)).c_str());
    std::printf("BBTB2           %s\n", runDigest(BtbConfig::bbtb(2)).c_str());
    std::printf("BBTB1SPLIT      %s\n",
                runDigest(BtbConfig::bbtb(1, true)).c_str());
    std::printf("MBBTB3ALLBR     %s\n",
                runDigest(BtbConfig::mbbtb(3, PullPolicy::kAllBr)).c_str());
    std::printf("MBBTB2CALLDIR32 %s\n",
                runDigest(BtbConfig::mbbtb(2, PullPolicy::kCallDir, 32)).c_str());
    std::printf("HETERO2         %s\n",
                runDigest(BtbConfig::hetero(2, true)).c_str());
}
