/** @file Tests for the persistent shard pool (serve/shard_pool.h) as a
 *  SweepExecutor, and its BTBSIM_SHARDS env opt-in. */

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "env_util.h"
#include "exp/experiment.h"
#include "exp/run_cache.h"
#include "serve/shard_pool.h"
#include "traceio/chunk_cache.h"

using namespace btbsim;
using btbsim::test::ScopedEnv;

namespace {

SimStats
fakeSim(const CpuConfig &c, const WorkloadSpec &w, const RunOptions &o)
{
    SimStats s;
    s.config = c.btb.name();
    s.workload = w.name;
    s.instructions = o.measure;
    s.cycles = o.measure * 2 + w.params.seed;
    s.ipc = static_cast<double>(s.instructions) /
            static_cast<double>(s.cycles);
    return s;
}

std::vector<CpuConfig>
configs()
{
    std::vector<CpuConfig> v(3);
    v[0].btb = BtbConfig::ibtb(16);
    v[1].btb = BtbConfig::rbtb(2);
    v[2].btb = BtbConfig::bbtb(4);
    return v;
}

std::vector<WorkloadSpec>
workloads()
{
    std::vector<WorkloadSpec> v(4);
    for (std::size_t i = 0; i < v.size(); ++i) {
        v[i].name = "wl" + std::to_string(i);
        v[i].params.seed = 10 + i;
    }
    return v;
}

/** Architectural stats only: host-side timing (wall seconds, span
 *  profiles, perf counters) legitimately varies between runs. */
std::string
archJson(SimStats s)
{
    s.host_seconds = 0.0;
    s.minst_per_host_sec = 0.0;
    s.source_minst_per_sec = 0.0;
    s.span_profile = {};
    s.host_counters_available = false;
    return exp::statsToJson(s);
}

exp::ExperimentOptions
baseOptions()
{
    exp::ExperimentOptions o;
    o.run.warmup = 10;
    o.run.measure = 1000;
    o.run.threads = 2;
    o.simulate = fakeSim;
    return o;
}

} // namespace

TEST(ShardPool, RunsEverySlotExactlyOnce)
{
    serve::ShardPool pool(3);
    EXPECT_EQ(pool.shards(), 3u);
    EXPECT_EQ(pool.width(1), 3u); // A persistent pool ignores requests.
    EXPECT_EQ(pool.width(64), 3u);

    std::mutex mu;
    std::set<unsigned> slots;
    std::atomic<int> calls{0};
    pool.run([&](unsigned slot) {
        ++calls;
        std::lock_guard<std::mutex> lk(mu);
        slots.insert(slot);
    });
    EXPECT_EQ(calls.load(), 3);
    EXPECT_EQ(slots, (std::set<unsigned>{0, 1, 2}));

    // A second dispatch reuses the same threads.
    pool.run([&](unsigned) { ++calls; });
    EXPECT_EQ(calls.load(), 6);
    const auto stats = pool.stats();
    ASSERT_EQ(stats.size(), 3u);
    for (const auto &s : stats)
        EXPECT_EQ(s.jobs, 2u);
}

TEST(ShardPool, ZeroResolvesToHardwareConcurrency)
{
    serve::ShardPool pool(0);
    EXPECT_GE(pool.shards(), 1u);
}

TEST(ShardPool, SweepOnPoolMatchesPlainThreadsBitIdentically)
{
    exp::ExperimentOptions plain = baseOptions();
    const auto ref =
        exp::runExperiment("sp-ref", configs(), workloads(), plain);
    ASSERT_TRUE(ref.allOk());

    serve::ShardPool pool(4);
    exp::ExperimentOptions pooled = baseOptions();
    pooled.executor = &pool;
    const auto got =
        exp::runExperiment("sp-pool", configs(), workloads(), pooled);
    ASSERT_TRUE(got.allOk());

    // Same points, same order, bit-identical stats.
    ASSERT_EQ(got.points.size(), ref.points.size());
    for (std::size_t i = 0; i < ref.points.size(); ++i) {
        EXPECT_EQ(got.points[i].digest, ref.points[i].digest);
        EXPECT_EQ(exp::statsToJson(got.points[i].stats),
                  exp::statsToJson(ref.points[i].stats));
    }

    // Per-shard utilization covers the pool's width and sums to the
    // sweep's point count.
    ASSERT_EQ(got.shards.size(), 4u);
    std::size_t points = 0;
    for (const exp::ShardUtil &u : got.shards)
        points += u.points;
    EXPECT_EQ(points, got.points.size());
    const auto counters = got.counters();
    EXPECT_EQ(counters.at("exp.shards"), 4.0);
    EXPECT_TRUE(counters.count("exp.shard3.points"));
}

TEST(ShardPool, FromEnvCreatesPoolOnceAndEnablesSharedCache)
{
    // NOTE: fromEnv resolves BTBSIM_SHARDS once per process, so this
    // test owns the env-driven path for the whole binary.
    ASSERT_FALSE(traceio::SharedChunkCache::processDefault());
    ScopedEnv e("BTBSIM_SHARDS", "2");
    serve::ShardPool *pool = serve::ShardPool::fromEnv();
    ASSERT_NE(pool, nullptr);
    EXPECT_EQ(pool->shards(), 2u);
    EXPECT_TRUE(traceio::SharedChunkCache::processDefault());

    // Resolved once: later knob changes are ignored.
    ScopedEnv off("BTBSIM_SHARDS", "7");
    EXPECT_EQ(serve::ShardPool::fromEnv(), pool);

    exp::ExperimentOptions opt = baseOptions();
    EXPECT_EQ(serve::applyEnvPool(opt), pool);
    EXPECT_EQ(opt.executor, pool);

    const auto r = exp::runExperiment("sp-env", configs(), workloads(),
                                      std::move(opt));
    EXPECT_TRUE(r.allOk());
    EXPECT_EQ(r.shards.size(), 2u);
    traceio::SharedChunkCache::setProcessDefault(false);
}

TEST(ShardPool, RunMatrixPooledMatchesRunMatrixContract)
{
    // applyEnvPool inside runMatrixPooled reuses the already-resolved
    // process pool (see previous test); either way results must match
    // the hermetic reference.
    exp::ExperimentOptions plain = baseOptions();
    const auto ref =
        exp::runExperiment("sp-rm-ref", configs(), workloads(), plain);

    ScopedEnv cache("BTBSIM_RUN_CACHE", nullptr);
    RunOptions run;
    run.warmup = 10;
    run.measure = 1000;
    run.threads = 2;
    // runMatrixPooled has no simulate hook (it is the real runMatrix
    // drop-in); use the real simulator via a tiny workload set instead.
    std::vector<WorkloadSpec> wls(1);
    wls[0].name = "tiny";
    wls[0].params.seed = 42;
    run.warmup = 100;
    run.measure = 500;
    std::vector<CpuConfig> cfgs(1);
    cfgs[0].btb = BtbConfig::ibtb(16);

    const std::vector<SimStats> pooled =
        serve::runMatrixPooled(cfgs, wls, run);
    const std::vector<SimStats> direct = runMatrix(cfgs, wls, run);
    ASSERT_EQ(pooled.size(), direct.size());
    for (std::size_t i = 0; i < pooled.size(); ++i)
        EXPECT_EQ(archJson(pooled[i]), archJson(direct[i]));
    (void)ref;
}
