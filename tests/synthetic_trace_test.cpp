/** @file Tests for the synthetic trace interpreter. */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "trace/generator.h"
#include "trace/synthetic_trace.h"

using namespace btbsim;

namespace {

Program
makeProgram(std::uint64_t seed = 1)
{
    GenParams p;
    p.seed = seed;
    p.target_static_insts = 8 * 1024;
    p.num_handlers = 4;
    return generateProgram(p);
}

} // namespace

TEST(SyntheticTrace, ControlFlowIsConsistent)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 7);
    Addr expected = 0;
    for (int i = 0; i < 200000; ++i) {
        const Instruction &in = t.next();
        if (expected != 0)
            ASSERT_EQ(in.pc, expected) << "discontinuity at step " << i;
        // next_pc must be the fall-through unless taken.
        if (!in.taken)
            ASSERT_EQ(in.next_pc, in.pc + kInstBytes);
        expected = in.next_pc;
    }
}

TEST(SyntheticTrace, DeterministicAndResettable)
{
    const Program prog = makeProgram();
    SyntheticTrace a(prog, 7), b(prog, 7);
    std::vector<Addr> first;
    for (int i = 0; i < 10000; ++i)
        first.push_back(a.next().pc);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(b.next().pc, first[i]);
    a.reset();
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(a.next().pc, first[i]);
}

TEST(SyntheticTrace, CallsAndReturnsBalance)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 3);
    std::int64_t depth = 0;
    std::int64_t max_depth = 0;
    for (int i = 0; i < 500000; ++i) {
        const Instruction &in = t.next();
        if (isCall(in.branch))
            ++depth;
        if (in.branch == BranchClass::kReturn)
            --depth;
        max_depth = std::max(max_depth, depth);
        ASSERT_GE(depth, 0) << "return without call";
    }
    EXPECT_GT(max_depth, 2);
    EXPECT_LT(max_depth, 64) << "RAS would overflow constantly";
}

TEST(SyntheticTrace, ReturnsGoBackToCallSite)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 3);
    std::vector<Addr> stack;
    for (int i = 0; i < 500000; ++i) {
        const Instruction &in = t.next();
        if (isCall(in.branch))
            stack.push_back(in.pc + kInstBytes);
        if (in.branch == BranchClass::kReturn) {
            ASSERT_FALSE(stack.empty());
            ASSERT_EQ(in.next_pc, stack.back());
            stack.pop_back();
        }
    }
}

TEST(SyntheticTrace, DirectBranchTargetsAreStable)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 3);
    std::map<Addr, Addr> seen;
    for (int i = 0; i < 300000; ++i) {
        const Instruction &in = t.next();
        if (isDirect(in.branch) && in.taken) {
            auto [it, fresh] = seen.emplace(in.pc, in.next_pc);
            if (!fresh)
                ASSERT_EQ(it->second, in.next_pc)
                    << "direct branch changed target";
        }
    }
}

TEST(SyntheticTrace, UnconditionalsAlwaysTaken)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 5);
    for (int i = 0; i < 300000; ++i) {
        const Instruction &in = t.next();
        if (isBranch(in.branch) && in.branch != BranchClass::kCondDirect)
            ASSERT_TRUE(in.taken);
    }
}

TEST(SyntheticTrace, MemoryAddressesWithinStreams)
{
    const Program prog = makeProgram();
    SyntheticTrace t(prog, 5);
    for (int i = 0; i < 200000; ++i) {
        const Instruction &in = t.next();
        if (in.mem_addr != 0) {
            bool inside = false;
            for (const MemStream &s : prog.streams)
                inside |= (in.mem_addr >= s.base &&
                           in.mem_addr < s.base + s.footprint);
            ASSERT_TRUE(inside);
        }
    }
}

TEST(SyntheticTrace, LoopTripCountsRespected)
{
    // A tiny hand-built program: loop with fixed 4 trips.
    Program prog;
    prog.name = "loop4";
    CondBehavior loop;
    loop.kind = CondBehavior::Kind::kLoop;
    loop.min_trips = loop.max_trips = 4;
    prog.conds.push_back(loop);

    // 0: alu ; 1: backedge to 0 ; 2: jump to 0 (outer restart)
    StaticInst alu;
    StaticInst backedge;
    backedge.cls = InstClass::kBranch;
    backedge.branch = BranchClass::kCondDirect;
    backedge.target = 0;
    backedge.behavior = 0;
    StaticInst restart;
    restart.cls = InstClass::kBranch;
    restart.branch = BranchClass::kUncondDirect;
    restart.target = 0;
    prog.insts = {alu, backedge, restart};
    prog.entries = {0};
    prog.entry_weights = {1.0};
    ASSERT_EQ(prog.validate(), "");

    SyntheticTrace t(prog, 1);
    // Expect pattern: (alu, backedge-taken) x3, (alu, backedge-NT), restart.
    for (int outer = 0; outer < 10; ++outer) {
        for (int trip = 0; trip < 4; ++trip) {
            ASSERT_EQ(t.next().pc, prog.pcOf(0));
            const Instruction &b = t.next();
            ASSERT_EQ(b.pc, prog.pcOf(1));
            if (trip < 3)
                ASSERT_TRUE(b.taken) << "outer " << outer << " trip " << trip;
            else
                ASSERT_FALSE(b.taken);
        }
        ASSERT_EQ(t.next().pc, prog.pcOf(2)); // restart jump
    }
}
