/** @file Tests for the Block BTB organization, including entry splitting. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "core/bbtb.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::unique_ptr<BtbOrg>
makeBbtb(unsigned slots, bool split = false, unsigned reach = 16)
{
    return makeBtb(BtbConfig::bbtb(slots, split, reach));
}

/** Train a block starting at @p start whose branch at @p br_pc jumps to
 *  @p target: establishes the update-side cursor via a preceding redirect. */
void
trainBlock(BtbOrg &btb, Addr start, Addr br_pc, BranchClass cls, Addr target)
{
    // A jump into `start` sets the cursor, then the branch trains.
    btb.update(branchAt(start - 0x400, BranchClass::kUncondDirect, start),
               false);
    btb.update(branchAt(br_pc, cls, target), false);
}

} // namespace

TEST(Bbtb, MissWindowIsReach)
{
    auto btb = makeBbtb(2, false, 16);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 16u);
}

TEST(Bbtb, EntryKeyedByExactBlockStart)
{
    auto btb = makeBbtb(2);
    trainBlock(*btb, 0x1000, 0x1010, BranchClass::kCondDirect, 0x3000);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1010).kind, StepView::Kind::kBranch);
    // An access at a different start address does not see the entry.
    EXPECT_EQ(viewAt(*btb, 0x1004, 0x1010).kind,
              StepView::Kind::kSequential);
}

TEST(Bbtb, AlwaysTakenClassTruncatesBlock)
{
    auto btb = makeBbtb(2);
    trainBlock(*btb, 0x1000, 0x1008, BranchClass::kUncondDirect, 0x3000);
    // The block ends right after the unconditional jump.
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 3u); // 0x1000, 0x1004, 0x1008
}

TEST(Bbtb, SometimesTakenCondDoesNotTruncate)
{
    auto btb = makeBbtb(2);
    trainBlock(*btb, 0x1000, 0x1008, BranchClass::kCondDirect, 0x3000);
    // Baseline Section 2.3: the block falls through to the reach limit so
    // the fall-through address stays computable in parallel.
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 16u);
}

TEST(Bbtb, FallThroughBlockChainsAtReach)
{
    auto btb = makeBbtb(2, false, 16);
    // Cursor at 0x1000; a taken branch 20 instructions later belongs to
    // the *second* sequential block (0x1040).
    trainBlock(*btb, 0x1000, 0x1000 + 20 * kInstBytes,
               BranchClass::kUncondDirect, 0x3000);
    EXPECT_EQ(viewAt(*btb, 0x1040, 0x1050).kind, StepView::Kind::kBranch);
    // And nothing was allocated at 0x1000 (no taken branch inside it).
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind,
              StepView::Kind::kSequential);
}

TEST(Bbtb, DisplacementWithoutSplit)
{
    auto btb = makeBbtb(1, false);
    trainBlock(*btb, 0x1000, 0x1004, BranchClass::kCondDirect, 0x3000);
    // Second taken branch in the same block displaces the first.
    btb->update(branchAt(0x1000 - 0x400, BranchClass::kUncondDirect, 0x1000),
                false);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x4000), false);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind,
              StepView::Kind::kSequential);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1008).kind, StepView::Kind::kBranch);
    EXPECT_EQ(btb->stats.get("slot_displacements"), 1u);
}

TEST(Bbtb, SplitPreservesBothBranches)
{
    auto btb = makeBbtb(1, true);
    trainBlock(*btb, 0x1000, 0x1004, BranchClass::kCondDirect, 0x3000);
    btb->update(branchAt(0x1000 - 0x400, BranchClass::kUncondDirect, 0x1000),
                false);
    btb->update(branchAt(0x1008, BranchClass::kCondDirect, 0x4000), false);
    EXPECT_EQ(btb->stats.get("splits"), 1u);
    // Original entry keeps the first branch and now ends after it.
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind, StepView::Kind::kBranch);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 2u); // block [0x1000, 0x1008)
    // The spilled branch lives in the fall-through entry at 0x1008.
    StepView v = viewAt(*btb, 0x1008, 0x1008);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.target, 0x4000u);
}

TEST(Bbtb, SplitKeepsSlotsSortedByOffset)
{
    auto btb = makeBbtb(2, true);
    trainBlock(*btb, 0x1000, 0x1010, BranchClass::kCondDirect, 0x3000);
    btb->update(branchAt(0x1000 - 0x400, BranchClass::kUncondDirect, 0x1000),
                false);
    btb->update(branchAt(0x1020, BranchClass::kCondDirect, 0x4000), false);
    // Insert an *earlier* branch: the staged set is {0x1004, 0x1010,
    // 0x1020}; the entry keeps the first two, 0x1020 spills.
    btb->update(branchAt(0x1000 - 0x400, BranchClass::kUncondDirect, 0x1000),
                false);
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x5000), false);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1004).kind, StepView::Kind::kBranch);
    EXPECT_EQ(viewAt(*btb, 0x1000, 0x1010).kind, StepView::Kind::kBranch);
    // Entry now ends after 0x1010.
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 5u);
    // Spill landed at the split point 0x1014.
    EXPECT_EQ(viewAt(*btb, 0x1014, 0x1020).kind, StepView::Kind::kBranch);
}

TEST(Bbtb, RedundancyFromOverlappingBlocks)
{
    auto btb = makeBbtb(2);
    // Two blocks overlap: one starting at 0x1000, one at 0x1008, both
    // containing the branch at 0x1010 (Fig. 2).
    trainBlock(*btb, 0x1000, 0x1010, BranchClass::kCondDirect, 0x3000);
    trainBlock(*btb, 0x1008, 0x1010, BranchClass::kCondDirect, 0x3000);
    OccupancySample s = btb->sampleOccupancy();
    // Two overlapping block entries plus the two redirect-branch blocks.
    EXPECT_EQ(s.l1_entries, 4u);
    // 0x1010 is tracked twice; the two redirect jumps once each.
    EXPECT_NEAR(s.l1_redundancy, 4.0 / 3.0, 1e-9);
}

TEST(Bbtb, MispredictedTakenCondOpensBlockAtFallThrough)
{
    auto btb = makeBbtb(2);
    trainBlock(*btb, 0x1000, 0x1004, BranchClass::kCondDirect, 0x3000);
    // The branch is later not taken and the frontend resteers: the next
    // dynamic block begins at the fall-through.
    btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x3000, false),
                true);
    btb->update(branchAt(0x100C, BranchClass::kUncondDirect, 0x4000), false);
    StepView v = viewAt(*btb, 0x1008, 0x100C);
    ASSERT_EQ(v.kind, StepView::Kind::kBranch);
    EXPECT_EQ(v.target, 0x4000u);
}

TEST(Bbtb, LargerReachCoversMore)
{
    auto btb = makeBbtb(1, true, 32);
    auto views = walk(*btb, 0x1000, 64);
    EXPECT_EQ(views.size(), 32u);
}

/** Slot-count sweep: capacity respected, split only when enabled. */
class BbtbSlotsTest : public ::testing::TestWithParam<unsigned>
{};

TEST_P(BbtbSlotsTest, CapacityRespected)
{
    const unsigned slots = GetParam();
    auto btb = makeBbtb(slots, false);
    btb->update(branchAt(0x400, BranchClass::kUncondDirect, 0x1000), false);
    for (unsigned i = 0; i < slots + 3; ++i)
        btb->update(
            branchAt(0x1000 + i * kInstBytes, BranchClass::kCondDirect,
                     0x3000),
            false);
    OccupancySample s = btb->sampleOccupancy();
    EXPECT_LE(s.l1_slot_occupancy, static_cast<double>(slots));
    EXPECT_EQ(btb->stats.get("splits"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Slots, BbtbSlotsTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 16u));
