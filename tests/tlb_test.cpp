/** @file Tests for the TLB models. */

#include <gtest/gtest.h>

#include "memory/tlb.h"

using namespace btbsim;

TEST(Tlb, ColdMissWalksThenHits)
{
    L2Tlb l2;
    Tlb tlb(l2);
    const unsigned first = tlb.access(0x400000);
    EXPECT_EQ(first, 1u + 8u + 40u); // L1 + L2 + walk
    const unsigned second = tlb.access(0x400000);
    EXPECT_EQ(second, 1u);
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, SamePageSharesTranslation)
{
    L2Tlb l2;
    Tlb tlb(l2);
    tlb.access(0x400000);
    EXPECT_EQ(tlb.access(0x400FF8), 1u); // same 4KB page
    EXPECT_EQ(tlb.misses(), 1u);
}

TEST(Tlb, L2TlbCoversL1Evictions)
{
    L2Tlb l2;
    Tlb tlb(l2, 1, 2, 1); // tiny 2-entry L1 TLB
    tlb.access(0x1000000);
    tlb.access(0x2000000);
    tlb.access(0x3000000); // evicts 0x1000000 from L1 TLB
    const unsigned lat = tlb.access(0x1000000);
    EXPECT_EQ(lat, 1u + 8u); // L2 TLB hit, no walk
}

TEST(Tlb, SeparateL1TlbsShareL2)
{
    L2Tlb l2;
    Tlb itlb(l2), dtlb(l2);
    itlb.access(0x5000000);
    // The data TLB misses its L1 but hits the shared L2 TLB.
    EXPECT_EQ(dtlb.access(0x5000000), 1u + 8u);
}

TEST(Tlb, CounterTracking)
{
    L2Tlb l2;
    Tlb tlb(l2);
    tlb.access(0x1000);
    tlb.access(0x1000);
    tlb.access(0x2000000);
    EXPECT_EQ(tlb.accesses(), 3u);
    EXPECT_EQ(tlb.misses(), 2u);
    EXPECT_EQ(l2.misses(), 2u);
}
