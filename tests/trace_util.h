/** @file A hand-scripted looping trace source for pipeline tests. */

#ifndef BTBSIM_TESTS_TRACE_UTIL_H
#define BTBSIM_TESTS_TRACE_UTIL_H

#include <cassert>
#include <vector>

#include "trace/trace_source.h"

namespace btbsim::test {

/**
 * Replays a fixed instruction sequence forever. The sequence must be
 * control-flow consistent (each next_pc equals the following pc, and the
 * last instruction must jump back to the first).
 */
class VectorTrace : public TraceSource
{
  public:
    explicit VectorTrace(std::vector<Instruction> insts)
        : insts_(std::move(insts))
    {
        assert(!insts_.empty());
        for (std::size_t i = 0; i + 1 < insts_.size(); ++i)
            assert(insts_[i].next_pc == insts_[i + 1].pc &&
                   "trace is not control-flow consistent");
        assert(insts_.back().next_pc == insts_.front().pc &&
               "trace must loop");
    }

    const Instruction &
    next() override
    {
        const Instruction &in = insts_[pos_];
        pos_ = (pos_ + 1) % insts_.size();
        return in;
    }

    void reset() override { pos_ = 0; }
    std::string name() const override { return "vector"; }

  private:
    std::vector<Instruction> insts_;
    std::size_t pos_ = 0;
};

/** Sequential non-branch instruction. */
inline Instruction
seqAt(Addr pc)
{
    Instruction in;
    in.pc = pc;
    in.next_pc = pc + kInstBytes;
    return in;
}

/** Straight-line run [start, start + n*4). */
inline std::vector<Instruction>
straight(Addr start, unsigned n)
{
    std::vector<Instruction> v;
    for (unsigned i = 0; i < n; ++i)
        v.push_back(seqAt(start + i * kInstBytes));
    return v;
}

} // namespace btbsim::test

#endif // BTBSIM_TESTS_TRACE_UTIL_H
