/** @file Tests for the PC-generation stage. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "bpred/bpred_unit.h"
#include "core/btb_org.h"
#include "frontend/pcgen.h"
#include "trace_util.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

/** A simple loop: 7 instructions then an unconditional jump back. */
std::vector<Instruction>
jumpLoop(Addr base = 0x1000)
{
    auto v = straight(base, 7);
    v.push_back(branchAt(base + 7 * kInstBytes, BranchClass::kUncondDirect,
                         base));
    return v;
}

struct Fixture
{
    std::unique_ptr<BtbOrg> btb;
    BPredUnit bpred;
    Ftq ftq{64};

    explicit Fixture(BtbConfig cfg = BtbConfig::ibtb(16))
        : btb(makeBtb(cfg))
    {}
};

} // namespace

TEST(PcGen, FirstAccessSuppliesSequentialWindow)
{
    Fixture f;
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    EXPECT_EQ(pcgen.stats.accesses, 1u);
    // Cold BTB: the unconditional at the end is untracked -> misfetch.
    EXPECT_EQ(pcgen.stats.misfetches, 1u);
    EXPECT_EQ(pcgen.stats.fetch_pcs, 8u);
    EXPECT_TRUE(pcgen.waitingResteer());
}

TEST(PcGen, StallsUntilResteerResolved)
{
    Fixture f;
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    const auto accesses = pcgen.stats.accesses;
    pcgen.runCycle(2);
    pcgen.runCycle(3);
    EXPECT_EQ(pcgen.stats.accesses, accesses); // stalled
    pcgen.resteerResolved(3);
    pcgen.runCycle(4);
    EXPECT_EQ(pcgen.stats.accesses, accesses + 1);
}

TEST(PcGen, WarmBtbSuppliesAcrossIterations)
{
    Fixture f;
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    // Warm up: first iteration misfetches, then the jump is tracked.
    pcgen.runCycle(1);
    pcgen.resteerResolved(1);
    for (Cycle c = 2; c < 10; ++c)
        pcgen.runCycle(c);
    EXPECT_EQ(pcgen.stats.misfetches, 1u);
    // Subsequent bundles are exactly the 8-instruction loop body.
    EXPECT_GT(pcgen.stats.accesses, 3u);
    const double pcs_per_access =
        static_cast<double>(pcgen.stats.fetch_pcs) / pcgen.stats.accesses;
    EXPECT_NEAR(pcs_per_access, 8.0, 0.5);
}

TEST(PcGen, L1HitTakenBranchHasNoBubble)
{
    Fixture f;
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    pcgen.resteerResolved(1);
    for (Cycle c = 2; c < 12; ++c)
        pcgen.runCycle(c);
    // 0-cycle turnaround: one access per cycle once warm.
    EXPECT_EQ(pcgen.stats.taken_bubbles, 0u);
    EXPECT_EQ(pcgen.stats.accesses, 11u);
}

TEST(PcGen, L2HitChargesTakenPenalty)
{
    BtbConfig cfg = BtbConfig::ibtb(16);
    cfg.l1 = {1, 1}; // 1-entry L1: the loop jump keeps colliding with
                     // nothing, but a second branch will displace it.
    Fixture f(cfg);
    // Two alternating blocks ending in jumps: each jump displaces the
    // other from the 1-entry L1, forcing L2 hits.
    std::vector<Instruction> v = straight(0x1000, 3);
    v.push_back(branchAt(0x100C, BranchClass::kUncondDirect, 0x2000));
    auto w = straight(0x2000, 3);
    v.insert(v.end(), w.begin(), w.end());
    v.push_back(branchAt(0x200C, BranchClass::kUncondDirect, 0x1000));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);

    Cycle c = 1;
    for (; c < 6; ++c) {
        pcgen.runCycle(c);
        pcgen.resteerResolved(c); // resolve cold misfetches immediately
    }
    const auto bubbles_before = pcgen.stats.taken_bubbles;
    for (; c < 30; ++c)
        pcgen.runCycle(c);
    // Warm: every taken jump hits L2 (displaced from the tiny L1).
    EXPECT_GT(pcgen.stats.taken_bubbles, bubbles_before);
    EXPECT_GT(pcgen.stats.taken_l2_hits, 0u);
}

TEST(PcGen, ConditionalMispredictFlagsExecResteer)
{
    Fixture f;
    // A conditional that alternates taken/not-taken with a pattern the
    // fresh perceptron cannot have learned at first: first execution is
    // 'taken' while the BTB is cold -> exec-resolved mispredict.
    std::vector<Instruction> v = straight(0x1000, 2);
    v.push_back(branchAt(0x1008, BranchClass::kCondDirect, 0x1000, true));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    EXPECT_EQ(pcgen.stats.mispredicts, 1u);
    EXPECT_EQ(pcgen.stats.misfetches, 0u);
    EXPECT_TRUE(pcgen.waitingResteer());
}

TEST(PcGen, ReturnUsesRasAfterBtbWarm)
{
    Fixture f;
    // call @0x1008 -> 0x4000; callee: 1 alu + ret -> 0x100C; then jump
    // back to 0x1000.
    std::vector<Instruction> v = straight(0x1000, 2);
    v.push_back(branchAt(0x1008, BranchClass::kDirectCall, 0x4000));
    v.push_back(seqAt(0x4000));
    v.push_back(branchAt(0x4004, BranchClass::kReturn, 0x100C));
    v.push_back(branchAt(0x100C, BranchClass::kUncondDirect, 0x1000));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);

    Cycle c = 1;
    for (; c < 8; ++c) {
        pcgen.runCycle(c);
        pcgen.resteerResolved(c);
    }
    const auto mispredicts = pcgen.stats.mispredicts;
    const auto misfetches = pcgen.stats.misfetches;
    for (; c < 30; ++c)
        pcgen.runCycle(c);
    // Warm loop: call, return and jump all predicted correctly.
    EXPECT_EQ(pcgen.stats.mispredicts, mispredicts);
    EXPECT_EQ(pcgen.stats.misfetches, misfetches);
}

TEST(PcGen, FtqBackpressureStopsSupply)
{
    Fixture f;
    f.ftq = Ftq(2); // tiny FTQ
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    pcgen.resteerResolved(1);
    for (Cycle c = 2; c < 20; ++c)
        pcgen.runCycle(c); // nothing drains the FTQ
    EXPECT_TRUE(f.ftq.full());
    const auto pcs = pcgen.stats.fetch_pcs;
    pcgen.runCycle(20);
    EXPECT_EQ(pcgen.stats.fetch_pcs, pcs); // fully backpressured
}

TEST(PcGen, CountsTakenHitsByLevel)
{
    Fixture f;
    VectorTrace trace(jumpLoop());
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);
    pcgen.runCycle(1);
    pcgen.resteerResolved(1);
    for (Cycle c = 2; c < 10; ++c)
        pcgen.runCycle(c);
    EXPECT_GT(pcgen.stats.taken_l1_hits, 0u);
    EXPECT_EQ(pcgen.stats.taken_l2_hits, 0u);
}

TEST(PcGen, MbBtbPulledNotTakenEndsAccessSequentially)
{
    Fixture f(BtbConfig::mbbtb(2, PullPolicy::kAllBr));
    // Pre-train: a conditional at 0x1004, taken at allocation, pulls its
    // target block 0x2000 into the entry for 0x1000.
    f.btb->update(branchAt(0xFFC, BranchClass::kCondDirect, 0x3000, false),
                  true); // resteer to normalize the cursor at 0x1000
    f.btb->update(branchAt(0x1004, BranchClass::kCondDirect, 0x2000), false);
    ASSERT_EQ(f.btb->stats.get("pulls"), 1u);
    // Bias the direction predictor toward not-taken for this branch.
    for (int i = 0; i < 16; ++i)
        (void)f.bpred.predictDirection(0x1004, false);

    // The actual path falls through the pulled conditional. The
    // prediction (not taken) is correct — but the entry holds no
    // fall-through past the pulled slot (end_on_not_taken), so the
    // access must end and restart sequentially at 0x1008 with no
    // penalty of any kind.
    std::vector<Instruction> v;
    v.push_back(seqAt(0x1000));
    v.push_back(branchAt(0x1004, BranchClass::kCondDirect, 0x2000, false));
    auto w = straight(0x1008, 6);
    v.insert(v.end(), w.begin(), w.end());
    v.push_back(branchAt(0x1020, BranchClass::kUncondDirect, 0x1000));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);

    pcgen.runCycle(1);
    EXPECT_EQ(pcgen.stats.accesses, 1u);
    EXPECT_EQ(pcgen.stats.fetch_pcs, 2u); // 0x1000 + the conditional
    EXPECT_EQ(pcgen.stats.mispredicts, 0u);
    EXPECT_EQ(pcgen.stats.misfetches, 0u);
    EXPECT_EQ(pcgen.stats.taken_bubbles, 0u);
    EXPECT_FALSE(pcgen.waitingResteer());

    // Sequential restart: the next cycle opens a fresh access at the
    // fall-through without waiting on any resteer.
    pcgen.runCycle(2);
    EXPECT_EQ(pcgen.stats.accesses, 2u);
    EXPECT_GT(pcgen.stats.fetch_pcs, 2u);
}

TEST(PcGen, MbBtbChainSeamChargesNoBubble)
{
    Fixture f(BtbConfig::mbbtb(2, PullPolicy::kUncondDir));
    std::vector<Instruction> v = straight(0x1000, 3);
    v.push_back(branchAt(0x100C, BranchClass::kUncondDirect, 0x2000));
    auto w = straight(0x2000, 3);
    v.insert(v.end(), w.begin(), w.end());
    v.push_back(branchAt(0x200C, BranchClass::kUncondDirect, 0x1000));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);

    Cycle c = 1;
    for (; c < 8; ++c) {
        pcgen.runCycle(c);
        pcgen.resteerResolved(c);
    }
    const auto chained0 = f.btb->stats.get("chained_blocks");
    const auto bubbles0 = pcgen.stats.taken_bubbles;
    for (; c < 24; ++c)
        pcgen.runCycle(c);
    // Warm: every access crosses the A->B seam through the recorded
    // continuation segment — the chain is followed in-bundle (counted by
    // the organization's stat) and, unlike a bundle-ending taken branch,
    // charges no taken-branch bubble.
    EXPECT_GT(f.btb->stats.get("chained_blocks"), chained0);
    EXPECT_EQ(pcgen.stats.taken_bubbles, bubbles0);
}

TEST(PcGen, MbBtbChainSuppliesMultipleBlocksPerAccess)
{
    Fixture f(BtbConfig::mbbtb(2, PullPolicy::kUncondDir));
    // Block A (4 insts, ends in jump) -> block B (4 insts, ends in jump
    // back). The jump at A's end pulls B into A's entry.
    std::vector<Instruction> v = straight(0x1000, 3);
    v.push_back(branchAt(0x100C, BranchClass::kUncondDirect, 0x2000));
    auto w = straight(0x2000, 3);
    v.insert(v.end(), w.begin(), w.end());
    v.push_back(branchAt(0x200C, BranchClass::kUncondDirect, 0x1000));
    VectorTrace trace(v);
    PcGen pcgen(*f.btb, f.bpred, trace, f.ftq);

    Cycle c = 1;
    for (; c < 8; ++c) {
        pcgen.runCycle(c);
        pcgen.resteerResolved(c);
    }
    const auto acc0 = pcgen.stats.accesses;
    const auto pcs0 = pcgen.stats.fetch_pcs;
    for (; c < 24; ++c)
        pcgen.runCycle(c);
    const double per_access =
        static_cast<double>(pcgen.stats.fetch_pcs - pcs0) /
        static_cast<double>(pcgen.stats.accesses - acc0);
    // One access supplies A and the pulled B: ~8 fetch PCs per access,
    // where a plain B-BTB would supply only 4.
    EXPECT_GT(per_access, 6.0);
}
