/** @file Tests for the generic set-associative table. */

#include <gtest/gtest.h>

#include "core/set_assoc.h"

using namespace btbsim;

namespace {

struct Payload
{
    int value = 0;
};

} // namespace

TEST(SetAssoc, InsertFind)
{
    SetAssocTable<Payload> t(4, 2, 2);
    t.insert(0x100).value = 7;
    ASSERT_NE(t.find(0x100), nullptr);
    EXPECT_EQ(t.find(0x100)->value, 7);
    EXPECT_EQ(t.find(0x104), nullptr);
}

TEST(SetAssoc, InsertResetsExistingKey)
{
    SetAssocTable<Payload> t(4, 2, 2);
    t.insert(0x100).value = 7;
    EXPECT_EQ(t.insert(0x100).value, 0); // fresh payload
}

TEST(SetAssoc, LruEviction)
{
    // 1 set, 2 ways: keys mapping to the same set compete.
    SetAssocTable<Payload> t(1, 2, 2);
    t.insert(0x10).value = 1;
    t.insert(0x20).value = 2;
    t.find(0x10); // touch, making 0x20 the LRU
    t.insert(0x30).value = 3;
    EXPECT_NE(t.find(0x10), nullptr);
    EXPECT_EQ(t.find(0x20), nullptr); // evicted
    EXPECT_NE(t.find(0x30), nullptr);
    EXPECT_EQ(t.evictions(), 1u);
}

TEST(SetAssoc, PeekDoesNotTouchLru)
{
    SetAssocTable<Payload> t(1, 2, 2);
    t.insert(0x10);
    t.insert(0x20);
    t.peek(0x10); // must NOT promote 0x10
    t.insert(0x30);
    EXPECT_EQ(t.find(0x10), nullptr); // 0x10 was LRU and evicted
    EXPECT_NE(t.find(0x20), nullptr);
}

TEST(SetAssoc, SetIndexingUsesShift)
{
    // Shift 6 (64B lines): 0x000 and 0x040 land in different sets.
    SetAssocTable<Payload> t(2, 1, 6);
    t.insert(0x000);
    t.insert(0x040);
    EXPECT_NE(t.find(0x000), nullptr);
    EXPECT_NE(t.find(0x040), nullptr);
    // 0x080 aliases with 0x000 (same set, 1 way): evicts it.
    t.insert(0x080);
    EXPECT_EQ(t.find(0x000), nullptr);
}

TEST(SetAssoc, EraseAndClear)
{
    SetAssocTable<Payload> t(4, 2, 2);
    t.insert(0x10);
    t.insert(0x20);
    t.erase(0x10);
    EXPECT_EQ(t.find(0x10), nullptr);
    EXPECT_NE(t.find(0x20), nullptr);
    t.clear();
    EXPECT_EQ(t.find(0x20), nullptr);
}

TEST(SetAssoc, ForEachVisitsAllValid)
{
    SetAssocTable<Payload> t(8, 4, 2);
    for (Addr a = 0; a < 20; ++a)
        t.insert(a * 4).value = static_cast<int>(a);
    int count = 0;
    t.forEach([&](Addr, const Payload &) { ++count; });
    EXPECT_EQ(count, 20);
}

TEST(SetAssoc, FillCopiesPayload)
{
    SetAssocTable<Payload> t(4, 2, 2);
    Payload p;
    p.value = 42;
    t.fill(0x10, p);
    EXPECT_EQ(t.find(0x10)->value, 42);
}

/** Property sweep: capacity is respected for any geometry. */
class SetAssocGeomTest
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>>
{};

TEST_P(SetAssocGeomTest, NeverExceedsCapacity)
{
    const auto [sets, ways] = GetParam();
    SetAssocTable<Payload> t(sets, ways, 2);
    for (Addr a = 0; a < 10000; ++a)
        t.insert(a * 4);
    std::size_t count = 0;
    t.forEach([&](Addr, const Payload &) { ++count; });
    EXPECT_LE(count, static_cast<std::size_t>(sets) * ways);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, SetAssocGeomTest,
    ::testing::Values(std::pair{1u, 1u}, std::pair{512u, 6u},
                      std::pair{1024u, 13u}, std::pair{256u, 18u},
                      std::pair{3u, 5u}));
