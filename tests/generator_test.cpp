/** @file Tests for the synthetic program generator. */

#include <gtest/gtest.h>

#include "trace/generator.h"

using namespace btbsim;

namespace {

GenParams
smallParams(std::uint64_t seed = 1)
{
    GenParams p;
    p.seed = seed;
    p.target_static_insts = 8 * 1024;
    p.num_handlers = 4;
    return p;
}

} // namespace

TEST(Generator, ProgramValidates)
{
    const Program prog = generateProgram(smallParams());
    EXPECT_EQ(prog.validate(), "");
}

TEST(Generator, DeterministicInSeed)
{
    const Program a = generateProgram(smallParams(5));
    const Program b = generateProgram(smallParams(5));
    ASSERT_EQ(a.insts.size(), b.insts.size());
    for (std::size_t i = 0; i < a.insts.size(); ++i) {
        EXPECT_EQ(a.insts[i].branch, b.insts[i].branch) << "at " << i;
        EXPECT_EQ(a.insts[i].target, b.insts[i].target) << "at " << i;
    }
}

TEST(Generator, DifferentSeedsDiffer)
{
    const Program a = generateProgram(smallParams(1));
    const Program b = generateProgram(smallParams(2));
    EXPECT_NE(a.insts.size(), b.insts.size());
}

TEST(Generator, FootprintNearTarget)
{
    GenParams p = smallParams();
    p.target_static_insts = 64 * 1024;
    const Program prog = generateProgram(p);
    const double ratio =
        static_cast<double>(prog.insts.size()) / p.target_static_insts;
    EXPECT_GT(ratio, 0.5);
    EXPECT_LT(ratio, 2.5);
}

TEST(Generator, HasDispatcherEntry)
{
    const Program prog = generateProgram(smallParams());
    ASSERT_EQ(prog.entries.size(), 1u);
    EXPECT_LT(prog.entries.front(), prog.insts.size());
}

TEST(Generator, DirectTargetsInRange)
{
    const Program prog = generateProgram(smallParams());
    for (const StaticInst &si : prog.insts) {
        if (isDirect(si.branch))
            EXPECT_LT(si.target, prog.insts.size());
    }
}

TEST(Generator, BranchClassesAllPresent)
{
    const Program prog = generateProgram(smallParams());
    bool has[8] = {};
    for (const StaticInst &si : prog.insts)
        has[static_cast<int>(si.branch)] = true;
    EXPECT_TRUE(has[static_cast<int>(BranchClass::kCondDirect)]);
    EXPECT_TRUE(has[static_cast<int>(BranchClass::kUncondDirect)]);
    EXPECT_TRUE(has[static_cast<int>(BranchClass::kDirectCall)]);
    EXPECT_TRUE(has[static_cast<int>(BranchClass::kReturn)]);
    EXPECT_TRUE(has[static_cast<int>(BranchClass::kIndirectCall)]);
}

TEST(Generator, MemoryInstructionsHaveStreams)
{
    const Program prog = generateProgram(smallParams());
    std::size_t loads = 0;
    for (const StaticInst &si : prog.insts) {
        if (si.cls == InstClass::kLoad || si.cls == InstClass::kStore) {
            EXPECT_GE(si.stream, 0);
            EXPECT_LT(static_cast<std::size_t>(si.stream),
                      prog.streams.size());
            ++loads;
        }
    }
    EXPECT_GT(loads, 100u);
}

/** Footprint sweep: generation must stay valid across sizes. */
class GeneratorSizeTest : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(GeneratorSizeTest, ValidatesAtSize)
{
    GenParams p = smallParams();
    p.target_static_insts = GetParam();
    const Program prog = generateProgram(p);
    EXPECT_EQ(prog.validate(), "");
    EXPECT_GT(prog.insts.size(), GetParam() / 3);
}

INSTANTIATE_TEST_SUITE_P(Sizes, GeneratorSizeTest,
                         ::testing::Values(2048u, 8192u, 32768u, 131072u));
