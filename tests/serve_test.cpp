/** @file End-to-end tests for the sweep service: protocol round trips,
 *  daemon request handling, dedup, disconnects, crash-resume. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/journal.h"
#include "exp/run_cache.h"
#include "serve/client.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/server.h"

using namespace btbsim;
using namespace btbsim::serve;

namespace {

SimStats
fakeSim(const CpuConfig &c, const WorkloadSpec &w, const RunOptions &o)
{
    SimStats s;
    s.config = c.btb.name();
    s.workload = w.name;
    s.instructions = o.measure;
    s.cycles = o.measure * 2 + w.params.seed;
    s.ipc = static_cast<double>(s.instructions) /
            static_cast<double>(s.cycles);
    s.counters["fake.seed"] = static_cast<double>(w.params.seed);
    return s;
}

BatchSpec
smallBatch(const std::string &name = "t-batch")
{
    BatchSpec b;
    b.name = name;
    b.run.warmup = 10;
    b.run.measure = 1000;
    b.run.threads = 2;
    b.configs.resize(2);
    b.configs[0].btb = BtbConfig::ibtb(16);
    b.configs[1].btb = BtbConfig::bbtb(4);
    b.workloads.resize(3);
    for (std::size_t i = 0; i < b.workloads.size(); ++i) {
        b.workloads[i].name = "wl" + std::to_string(i);
        b.workloads[i].params.seed = 100 + i;
    }
    return b;
}

/** Unique short socket path (AF_UNIX paths are length-limited). */
std::string
sockPath(const std::string &tag)
{
    const std::string p = ::testing::TempDir() + "btbsim_sv_" + tag + ".sock";
    std::filesystem::remove(p);
    return p;
}

std::string
freshDir(const std::string &name)
{
    const std::string dir = ::testing::TempDir() + name;
    std::filesystem::remove_all(dir);
    return dir;
}

ServerOptions
serverOptions(const std::string &tag, const std::string &cache_dir = "")
{
    ServerOptions o;
    o.socket_path = sockPath(tag);
    o.shards = 2;
    o.cache_dir = cache_dir;
    o.simulate = fakeSim;
    return o;
}

} // namespace

TEST(ServeProtocol, BatchJsonRoundTripsAndDigestIsStable)
{
    const BatchSpec b = smallBatch();
    const std::string json = canonicalBatchJson(b);
    EXPECT_EQ(json.find('\n'), std::string::npos);
    const BatchSpec back = batchFromJson(obs::parseJson(json));
    EXPECT_EQ(canonicalBatchJson(back), json);
    EXPECT_EQ(batchDigest(back), batchDigest(b));
    EXPECT_EQ(batchDigest(b).size(), 64u);

    // Any semantic change moves the digest.
    BatchSpec other = smallBatch();
    other.run.measure += 1;
    EXPECT_NE(batchDigest(other), batchDigest(b));
}

TEST(ServeProtocol, RequestRoundTripAndValidation)
{
    Request r;
    r.op = "submit";
    r.batch = smallBatch();
    r.has_batch = true;
    const Request back = requestFromLine(requestToLine(r));
    EXPECT_EQ(back.op, "submit");
    ASSERT_TRUE(back.has_batch);
    EXPECT_EQ(batchDigest(back.batch), batchDigest(r.batch));

    EXPECT_THROW(requestFromLine("{not json"), std::runtime_error);
    EXPECT_THROW(requestFromLine(R"({"op":"frobnicate"})"),
                 std::runtime_error);
    EXPECT_THROW(requestFromLine(R"({"op":"status"})"),
                 std::runtime_error);
    // Protocol version mismatch is rejected, not misparsed.
    BatchSpec b = smallBatch();
    std::string json = canonicalBatchJson(b);
    const std::string from = "\"_schema\": " +
                             std::to_string(kServeProtocolVersion);
    json.replace(json.find(from), from.size(), "\"_schema\": 999");
    EXPECT_THROW(batchFromJson(obs::parseJson(json)), std::runtime_error);
}

TEST(Serve, PingAndUnknownBatchStatus)
{
    Server server(serverOptions("ping"));
    server.start();
    ServeClient client(server.socketPath());
    EXPECT_EQ(client.ping(), kServeProtocolVersion);
    EXPECT_THROW(client.status(std::string(64, 'f')), std::runtime_error);
    server.stop();
}

TEST(Serve, MalformedRequestReportsErrorAndConnectionStaysUsable)
{
    Server server(serverOptions("malformed"));
    server.start();

    LineConn conn = unixConnect(server.socketPath());
    ASSERT_TRUE(conn.valid());
    // Malformed JSON batch -> one error record, connection survives.
    ASSERT_TRUE(conn.sendLine(R"({"op":"submit","batch":{"broken")"));
    std::string line;
    ASSERT_TRUE(conn.recvLine(&line));
    EXPECT_NE(obs::parseJson(line).at("type").asString(), "pong");
    EXPECT_EQ(obs::parseJson(line).at("type").asString(), "error");

    ASSERT_TRUE(conn.sendLine(R"({"op":"ping"})"));
    ASSERT_TRUE(conn.recvLine(&line));
    EXPECT_EQ(obs::parseJson(line).at("type").asString(), "pong");
    server.stop();
}

TEST(Serve, SubmitStreamsPointsAndResultsMatchLocalRunBitIdentically)
{
    Server server(serverOptions("stream"));
    server.start();
    const BatchSpec batch = smallBatch();

    ServeClient client(server.socketPath());
    std::atomic<int> points{0};
    const BatchOutcome outcome =
        client.submit(batch, [&](const obs::JsonValue &p) {
            ++points;
            EXPECT_EQ(p.at("sweep").asString(), batch.name);
            EXPECT_EQ(p.at("total").asNumber(), 6.0);
            EXPECT_EQ(p.at("digest").asString().size(), 64u);
        });
    EXPECT_FALSE(outcome.dedup);
    EXPECT_EQ(outcome.batch_id, batchDigest(batch));
    EXPECT_EQ(outcome.total, 6u);
    EXPECT_EQ(outcome.ok, 6u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(points.load(), 6);
    EXPECT_EQ(outcome.shards, 2u);

    // Results are bit-identical to a plain in-process run.
    std::vector<ResultPoint> got;
    BatchOutcome end;
    ASSERT_TRUE(client.results(outcome.batch_id, &got, &end));
    ASSERT_EQ(got.size(), 6u);

    exp::ExperimentOptions ref_opt;
    ref_opt.run = batch.run;
    ref_opt.simulate = fakeSim;
    const auto ref = exp::runExperiment(batch.name, batch.configs,
                                        batch.workloads, std::move(ref_opt));
    ASSERT_TRUE(ref.allOk());
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].digest, ref.points[i].digest);
        EXPECT_EQ(exp::statsToJson(got[i].stats),
                  exp::statsToJson(ref.points[i].stats));
    }
    server.stop();
}

TEST(Serve, DuplicateSubmissionDedupsAndRunsNothingTwice)
{
    std::atomic<int> sim_calls{0};
    ServerOptions opt = serverOptions("dedup");
    opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                       const RunOptions &o) {
        ++sim_calls;
        return fakeSim(c, w, o);
    };
    Server server(std::move(opt));
    server.start();
    const BatchSpec batch = smallBatch();

    ServeClient c1(server.socketPath());
    const BatchOutcome first = c1.submit(batch);
    EXPECT_FALSE(first.dedup);
    EXPECT_EQ(sim_calls.load(), 6);

    // Same content, new connection: attaches, simulates nothing.
    ServeClient c2(server.socketPath());
    const BatchOutcome second = c2.submit(batch);
    EXPECT_TRUE(second.dedup);
    EXPECT_EQ(second.batch_id, first.batch_id);
    EXPECT_EQ(second.total, 6u);
    EXPECT_EQ(sim_calls.load(), 6);

    std::vector<ResultPoint> r1, r2;
    BatchOutcome e1, e2;
    ASSERT_TRUE(c1.results(first.batch_id, &r1, &e1));
    ASSERT_TRUE(c2.results(second.batch_id, &r2, &e2));
    ASSERT_EQ(r1.size(), r2.size());
    for (std::size_t i = 0; i < r1.size(); ++i)
        EXPECT_EQ(exp::statsToJson(r1[i].stats),
                  exp::statsToJson(r2[i].stats));
    server.stop();
}

TEST(Serve, ClientDisconnectMidStreamDoesNotKillTheBatch)
{
    std::atomic<int> sim_calls{0};
    ServerOptions opt = serverOptions("disco");
    opt.shards = 1;
    opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                       const RunOptions &o) {
        ++sim_calls;
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        return fakeSim(c, w, o);
    };
    Server server(std::move(opt));
    server.start();
    const BatchSpec batch = smallBatch();
    const std::string id = batchDigest(batch);

    // Submit raw, read the ack, then vanish mid-stream.
    {
        LineConn conn = unixConnect(server.socketPath());
        ASSERT_TRUE(conn.valid());
        Request r;
        r.op = "submit";
        r.batch = batch;
        r.has_batch = true;
        ASSERT_TRUE(conn.sendLine(requestToLine(r)));
        std::string ack;
        ASSERT_TRUE(conn.recvLine(&ack));
        EXPECT_EQ(obs::parseJson(ack).at("type").asString(), "batch");
    } // Connection closed while points are still streaming.

    // The batch must finish for everyone else.
    ServeClient other(server.socketPath());
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    for (;;) {
        const BatchStatus s = other.status(id);
        if (s.state == "done")
            break;
        ASSERT_LT(std::chrono::steady_clock::now(), deadline)
            << "batch did not finish after subscriber disconnect";
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    EXPECT_EQ(sim_calls.load(), 6);
    std::vector<ResultPoint> got;
    BatchOutcome end;
    ASSERT_TRUE(other.results(id, &got, &end));
    EXPECT_EQ(got.size(), 6u);
    server.stop();
}

TEST(Serve, KillAndResumeRunsNoConfigTwiceAndMergesBitIdentically)
{
    const std::string cache_dir = freshDir("serve_resume_cache");
    const BatchSpec batch = smallBatch("t-resume");
    const std::string id = batchDigest(batch);

    // --- First daemon "crashes" partway: the simulate hook dies after
    // 2 points, so 2 completions reach the durable journal + run cache
    // and the rest fail (retries=0 keeps attempts deterministic).
    std::atomic<int> first_calls{0};
    {
        ServerOptions opt = serverOptions("res1", cache_dir);
        opt.shards = 1;
        opt.retries = 0;
        opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                           const RunOptions &o) {
            if (first_calls.fetch_add(1) >= 2)
                throw std::runtime_error("injected crash");
            return fakeSim(c, w, o);
        };
        Server server(std::move(opt));
        server.start();
        ServeClient client(server.socketPath());
        const BatchOutcome out = client.submit(batch);
        EXPECT_EQ(out.ok, 2u);
        EXPECT_EQ(out.failed, 4u);
        server.stop();
    }
    // The journal recorded exactly the completed work.
    EXPECT_EQ(exp::Journal::recover(cache_dir + "/journal/serve-" + id +
                                    ".jsonl")
                  .size(),
              2u);

    // --- Restarted daemon, same cache dir: resubmit completes without
    // re-running the journaled points.
    std::atomic<int> second_calls{0};
    std::vector<ResultPoint> got;
    BatchOutcome end;
    {
        ServerOptions opt = serverOptions("res2", cache_dir);
        opt.shards = 2;
        opt.simulate = [&](const CpuConfig &c, const WorkloadSpec &w,
                           const RunOptions &o) {
            ++second_calls;
            return fakeSim(c, w, o);
        };
        Server server(std::move(opt));
        server.start();
        ServeClient client(server.socketPath());
        const BatchOutcome out = client.submit(batch);
        EXPECT_EQ(out.total, 6u);
        EXPECT_EQ(out.failed, 0u);
        EXPECT_EQ(out.ok + out.cached, 6u);
        EXPECT_EQ(out.cached, 2u);  // The crashed run's completed points.
        EXPECT_EQ(out.resumed, 2u); // ...credited to the journal.
        ASSERT_TRUE(client.results(id, &got, &end));
        server.stop();
    }
    // No config ran twice across the crash: 2 before + 4 after.
    EXPECT_EQ(second_calls.load(), 4);

    // Merged results are bit-identical to an uninterrupted local run.
    exp::ExperimentOptions ref_opt;
    ref_opt.run = batch.run;
    ref_opt.simulate = fakeSim;
    const auto ref = exp::runExperiment(batch.name, batch.configs,
                                        batch.workloads, std::move(ref_opt));
    ASSERT_TRUE(ref.allOk());
    ASSERT_EQ(got.size(), 6u);
    for (std::size_t i = 0; i < got.size(); ++i) {
        EXPECT_EQ(got[i].digest, ref.points[i].digest);
        EXPECT_EQ(exp::statsToJson(got[i].stats),
                  exp::statsToJson(ref.points[i].stats));
    }
}

TEST(Serve, ShutdownRequestDrainsWait)
{
    Server server(serverOptions("shutdown"));
    server.start();
    std::thread waiter([&] { server.wait(); });
    ServeClient client(server.socketPath());
    EXPECT_TRUE(client.shutdown());
    waiter.join(); // wait() returns (and stop()s) after the request.
    // Socket is gone: new connections fail.
    EXPECT_FALSE(unixConnect(server.socketPath()).valid());
}
