/**
 * @file
 * SoaSetTable unit tests: the SetView handle API, replacement-contract
 * parity with the retired AoS SetAssocTable (a reference model below
 * reproduces its exact semantics), scalar-vs-SIMD probe equivalence,
 * and the BTBSIM_WAYPRED first-probe filter.
 */

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "common/stats.h"
#include "core/soa_table.h"
#include "core/way_pred.h"
#include "env_util.h"

namespace btbsim {
namespace {

using test::ScopedEnv;

struct Payload
{
    int value = 0;
};

// ---- SetView basics -------------------------------------------------------

TEST(SoaTableTest, FillThenFind)
{
    SoaSetTable<Payload> tbl(4, 2, 0);
    fillEntry(tbl, 0x10).value = 7;
    Payload *p = touchingFind(tbl, 0x10);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, 7);
    EXPECT_EQ(touchingFind(tbl, 0x11), nullptr);
}

TEST(SoaTableTest, FillResetsExistingKey)
{
    SoaSetTable<Payload> tbl(4, 2, 0);
    fillEntry(tbl, 0x10).value = 7;
    // Re-filling the same key reclaims the resident way and hands the
    // payload back reset to Payload{} — no eviction is counted.
    Payload &p = fillEntry(tbl, 0x10);
    EXPECT_EQ(p.value, 0);
    EXPECT_EQ(tbl.evictions(), 0u);
}

TEST(SoaTableTest, LruEviction)
{
    SoaSetTable<Payload> tbl(1, 2, 0);
    fillEntry(tbl, 1).value = 1;
    fillEntry(tbl, 2).value = 2;
    // Touch key 1 so key 2 becomes the LRU victim.
    ASSERT_NE(touchingFind(tbl, 1), nullptr);
    fillEntry(tbl, 3).value = 3;
    EXPECT_EQ(tbl.evictions(), 1u);
    EXPECT_NE(touchingFind(tbl, 1), nullptr);
    EXPECT_EQ(touchingFind(tbl, 2), nullptr);
    EXPECT_NE(touchingFind(tbl, 3), nullptr);
}

TEST(SoaTableTest, PeekDoesNotTouchLru)
{
    SoaSetTable<Payload> tbl(1, 2, 0);
    fillEntry(tbl, 1).value = 1;
    fillEntry(tbl, 2).value = 2;
    // peekFind must not refresh key 1: it stays LRU and gets evicted.
    EXPECT_NE(peekFind(tbl, 1), nullptr);
    fillEntry(tbl, 3).value = 3;
    EXPECT_EQ(peekFind(tbl, 1), nullptr);
    EXPECT_NE(peekFind(tbl, 2), nullptr);
}

TEST(SoaTableTest, SetIndexingUsesShift)
{
    SoaSetTable<Payload> tbl(2, 1, 6);
    // 0x00 and 0x3F share a set (same 64B line); 0x40 maps to the other.
    EXPECT_EQ(tbl.setIndex(0x00), tbl.setIndex(0x3F));
    EXPECT_NE(tbl.setIndex(0x00), tbl.setIndex(0x40));
    fillEntry(tbl, 0x00).value = 1;
    fillEntry(tbl, 0x40).value = 2;
    EXPECT_NE(touchingFind(tbl, 0x00), nullptr);
    EXPECT_NE(touchingFind(tbl, 0x40), nullptr);
}

TEST(SoaTableTest, EraseAndClear)
{
    SoaSetTable<Payload> tbl(4, 2, 0);
    fillEntry(tbl, 1).value = 1;
    fillEntry(tbl, 2).value = 2;
    eraseKey(tbl, 1);
    EXPECT_EQ(peekFind(tbl, 1), nullptr);
    EXPECT_NE(peekFind(tbl, 2), nullptr);
    tbl.clear();
    EXPECT_EQ(peekFind(tbl, 2), nullptr);
}

TEST(SoaTableTest, ForEachVisitsAllValid)
{
    SoaSetTable<Payload> tbl(8, 4, 0);
    for (int i = 0; i < 20; ++i)
        fillEntry(tbl, static_cast<Addr>(i)).value = i;
    int count = 0;
    std::uint64_t key_sum = 0;
    tbl.forEach([&](Addr key, const Payload &p) {
        ++count;
        key_sum += key;
        EXPECT_EQ(p.value, static_cast<int>(key));
    });
    EXPECT_EQ(count, 20);
    EXPECT_EQ(key_sum, 190u); // 0 + 1 + ... + 19
}

TEST(SoaTableTest, SetViewProbeTouchFill)
{
    SoaSetTable<Payload> tbl(2, 4, 0);
    auto set = tbl.set(Addr{6});
    EXPECT_EQ(set.probe(6), -1);
    const int v = set.victim();
    ASSERT_GE(v, 0);
    set.fill(static_cast<unsigned>(v), 6).value = 42;
    EXPECT_EQ(set.probe(6), v);
    EXPECT_TRUE(set.valid(static_cast<unsigned>(v)));
    EXPECT_EQ(set.key(static_cast<unsigned>(v)), 6u);
    EXPECT_EQ(set.entry(static_cast<unsigned>(v)).value, 42);
    const std::uint64_t before = set.stamp(static_cast<unsigned>(v));
    set.touch(static_cast<unsigned>(v));
    EXPECT_GT(set.stamp(static_cast<unsigned>(v)), before);
}

TEST(SoaTableTest, VictimIsStablePureSelection)
{
    SoaSetTable<Payload> tbl(1, 4, 0);
    for (Addr k = 0; k < 4; ++k)
        fillEntry(tbl, k);
    auto set = tbl.setAt(0);
    const int v0 = set.victim();
    // victim() is pure: repeated calls with no intervening mutation
    // return the same way, and no probe/peek changes the choice.
    for (int i = 0; i < 5; ++i) {
        (void)set.probe(Addr{2});
        (void)peekFind(tbl, Addr{3});
        EXPECT_EQ(set.victim(), v0);
    }
    set.touch(static_cast<unsigned>(v0));
    EXPECT_NE(set.victim(), v0);
}

TEST(SoaTableTest, NonPowerOfTwoSets)
{
    SoaSetTable<Payload> tbl(3, 2, 0);
    // Modulo indexing must spread keys across all three sets.
    EXPECT_EQ(tbl.setIndex(0), 0u);
    EXPECT_EQ(tbl.setIndex(4), 1u);
    EXPECT_EQ(tbl.setIndex(5), 2u);
    for (Addr k = 0; k < 6; ++k)
        fillEntry(tbl, k).value = static_cast<int>(k);
    for (Addr k = 0; k < 6; ++k) {
        Payload *p = touchingFind(tbl, k);
        ASSERT_NE(p, nullptr) << "key " << k;
        EXPECT_EQ(p->value, static_cast<int>(k));
    }
    EXPECT_EQ(tbl.evictions(), 0u);
}

// ---- Geometry sweep -------------------------------------------------------

struct Geom
{
    unsigned sets, ways;
};

class SoaGeomTest : public ::testing::TestWithParam<Geom>
{};

TEST_P(SoaGeomTest, NeverExceedsCapacity)
{
    const Geom g = GetParam();
    SoaSetTable<Payload> tbl(g.sets, g.ways, 0);
    std::mt19937_64 rng(1234);
    for (int i = 0; i < 5000; ++i)
        fillEntry(tbl, rng() % 100000);
    std::size_t live = 0;
    tbl.forEach([&](Addr, const Payload &) { ++live; });
    EXPECT_LE(live, tbl.capacity());
}

INSTANTIATE_TEST_SUITE_P(Geometries, SoaGeomTest,
                         ::testing::Values(Geom{1, 1}, Geom{512, 6},
                                           Geom{1024, 13}, Geom{256, 18},
                                           Geom{3, 5}, Geom{7, 3}));

// ---- Parity with the retired AoS SetAssocTable ----------------------------

/**
 * Reference model: the exact replacement semantics of the old AoS
 * SetAssocTable (linear pointer walk, find-touches-LRU, single-scan
 * victim choice with first-invalid preference and strict-min tie-break
 * at the earliest way). The SoA table must be bit-compatible with this.
 */
class RefTable
{
  public:
    RefTable(unsigned sets, unsigned ways, unsigned shift)
        : sets_(sets), ways_(ways), shift_(shift), arr_(sets * ways)
    {}

    struct Way
    {
        Addr key = 0;
        std::uint64_t lru = 0;
        bool valid = false;
        int value = 0;
    };

    Way *
    find(Addr key)
    {
        Way *set = &arr_[setOf(key) * ways_];
        for (unsigned i = 0; i < ways_; ++i) {
            Way *w = set + i;
            if (w->valid && w->key == key) {
                w->lru = ++tick_;
                return w;
            }
        }
        return nullptr;
    }

    const Way *
    peek(Addr key) const
    {
        const Way *set = &arr_[setOf(key) * ways_];
        for (unsigned i = 0; i < ways_; ++i)
            if (set[i].valid && set[i].key == key)
                return set + i;
        return nullptr;
    }

    Way &
    insert(Addr key)
    {
        Way *set = &arr_[setOf(key) * ways_];
        Way *victim = nullptr;
        for (unsigned i = 0; i < ways_; ++i) {
            Way &w = set[i];
            if (w.valid && w.key == key) {
                victim = &w;
                break;
            }
            if (!victim || victim->valid) {
                if (!w.valid)
                    victim = &w;
                else if (!victim || w.lru < victim->lru)
                    victim = &w;
            }
        }
        if (victim->valid && victim->key != key)
            ++evictions_;
        victim->valid = true;
        victim->key = key;
        victim->lru = ++tick_;
        victim->value = 0;
        return *victim;
    }

    void
    erase(Addr key)
    {
        Way *set = &arr_[setOf(key) * ways_];
        for (unsigned i = 0; i < ways_; ++i)
            if (set[i].valid && set[i].key == key) {
                set[i].valid = false;
                return;
            }
    }

    std::uint64_t evictions() const { return evictions_; }

  private:
    std::size_t setOf(Addr key) const { return (key >> shift_) % sets_; }

    unsigned sets_, ways_, shift_;
    std::vector<Way> arr_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
};

TEST(SoaTableTest, ReplacementParityWithAosReference)
{
    // Drive both tables with an identical randomized op mix and demand
    // identical hit/miss results and eviction counts throughout. The
    // key range (0..47 over 4 sets x 3 ways) forces constant conflict,
    // so any LRU tie-break or victim-order divergence surfaces fast.
    const unsigned kSets = 4, kWays = 3, kShift = 2;
    SoaSetTable<Payload> soa(kSets, kWays, kShift);
    RefTable ref(kSets, kWays, kShift);
    std::mt19937_64 rng(99);
    for (int i = 0; i < 20000; ++i) {
        const Addr key = rng() % 48;
        switch (rng() % 4) {
        case 0: { // find (touches on hit)
            Payload *a = touchingFind(soa, key);
            RefTable::Way *b = ref.find(key);
            ASSERT_EQ(a != nullptr, b != nullptr) << "op " << i;
            if (a)
                ASSERT_EQ(a->value, b->value) << "op " << i;
            break;
        }
        case 1: { // peek (no LRU effect)
            ASSERT_EQ(peekFind(soa, key) != nullptr,
                      ref.peek(key) != nullptr)
                << "op " << i;
            break;
        }
        case 2: { // insert + payload write
            const int v = static_cast<int>(rng() % 1000);
            fillEntry(soa, key).value = v;
            ref.insert(key).value = v;
            break;
        }
        default: // occasional erase
            if (rng() % 8 == 0) {
                eraseKey(soa, key);
                ref.erase(key);
            }
            break;
        }
        ASSERT_EQ(soa.evictions(), ref.evictions()) << "op " << i;
    }
}

TEST(SoaTableTest, LruTieBreakPrefersEarliestWay)
{
    // All stamps distinct by construction; the "tie-break" contract is
    // positional: with fresh equal-history ways the earliest-filled way
    // (lowest stamp) is evicted first, scanning from way 0.
    SoaSetTable<Payload> tbl(1, 4, 0);
    for (Addr k = 0; k < 4; ++k)
        fillEntry(tbl, 10 + k);
    fillEntry(tbl, 20); // evicts key 10 (way 0, smallest stamp)
    EXPECT_EQ(peekFind(tbl, 10), nullptr);
    EXPECT_NE(peekFind(tbl, 11), nullptr);
    fillEntry(tbl, 21); // next victim: key 11
    EXPECT_EQ(peekFind(tbl, 11), nullptr);
    EXPECT_NE(peekFind(tbl, 12), nullptr);
}

// ---- Scalar vs SIMD probe equivalence -------------------------------------

TEST(SoaSimdTest, KernelsAgreeOnRandomKeys)
{
    // Same fill sequence under each BTBSIM_SIMD setting; every probe
    // must agree with the scalar table way-for-way. Unsupported kernels
    // clamp to scalar, so this passes (trivially) on any host.
    std::mt19937_64 rng(7);
    std::vector<Addr> keys(4000);
    for (Addr &k : keys)
        k = rng() % 1024;

    const char *kinds[] = {"scalar", "sse", "avx2", "auto"};
    std::vector<std::vector<int>> probes;
    for (const char *kind : kinds) {
        ScopedEnv e("BTBSIM_SIMD", kind);
        SoaSetTable<Payload> tbl(16, 6, 0); // stride pads 6 -> 8 lanes
        std::vector<int> result;
        for (std::size_t i = 0; i < keys.size(); ++i) {
            if (i % 3 == 0)
                fillEntry(tbl, keys[i]);
            result.push_back(tbl.set(keys[i]).probe(keys[i]));
        }
        probes.push_back(std::move(result));
    }
    for (std::size_t i = 1; i < probes.size(); ++i)
        EXPECT_EQ(probes[0], probes[i]) << "kind " << kinds[i];
}

TEST(SoaSimdTest, ScalarSelectionHonored)
{
    ScopedEnv e("BTBSIM_SIMD", "scalar");
    SoaSetTable<Payload> tbl(2, 2, 0);
    EXPECT_EQ(tbl.simdKind(), SimdKind::kScalar);
    EXPECT_STREQ(simdKindName(tbl.simdKind()), "scalar");
}

TEST(SoaSimdTest, PaddingLanesNeverMatch)
{
    // Key 0 equals the padding lanes' initial tag value; the valid mask
    // must keep padding out of the probe result.
    ScopedEnv e("BTBSIM_SIMD", "auto");
    SoaSetTable<Payload> tbl(2, 5, 0); // stride pads 5 -> 8 lanes
    EXPECT_EQ(tbl.set(Addr{0}).probe(Addr{0}), -1);
    fillEntry(tbl, Addr{0}).value = 9;
    EXPECT_EQ(tbl.set(Addr{0}).probe(Addr{0}), 0);
    Payload *p = touchingFind(tbl, Addr{0});
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(p->value, 9);
}

// ---- Way prediction -------------------------------------------------------

TEST(WayPredTest, OffByDefaultConstructsNoPredictor)
{
    ScopedEnv e("BTBSIM_WAYPRED", nullptr);
    StatSet stats;
    SoaSetTable<Payload> tbl(4, 4, 0, WayPredSink{&stats, "waypred.l1."});
    EXPECT_EQ(tbl.predictor(), nullptr);
    EXPECT_TRUE(stats.all().empty());
}

TEST(WayPredTest, NoSinkMeansNoPredictorEvenWhenEnabled)
{
    ScopedEnv e("BTBSIM_WAYPRED", "mru");
    SoaSetTable<Payload> tbl(4, 4, 0); // host-side table: no sink
    EXPECT_EQ(tbl.predictor(), nullptr);
}

TEST(WayPredTest, HashKeyNeverZero)
{
    EXPECT_NE(WayPredictor::hashKey(0), 0);
    std::mt19937_64 rng(3);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(WayPredictor::hashKey(rng()), 0);
}

TEST(WayPredTest, MruProbeResultsExact)
{
    ScopedEnv e("BTBSIM_WAYPRED", "mru");
    StatSet stats;
    SoaSetTable<Payload> pred(8, 4, 0, WayPredSink{&stats, "waypred.l1."});
    SoaSetTable<Payload> plain(8, 4, 0);
    ASSERT_NE(pred.predictor(), nullptr);
    EXPECT_EQ(pred.predictor()->mode(), WayPredMode::kMru);
    std::mt19937_64 rng(11);
    for (int i = 0; i < 10000; ++i) {
        const Addr key = rng() % 256;
        if (rng() % 3 == 0) {
            fillEntry(pred, key);
            fillEntry(plain, key);
        } else {
            ASSERT_EQ(touchingFind(pred, key) != nullptr,
                      touchingFind(plain, key) != nullptr)
                << "op " << i;
        }
        ASSERT_EQ(pred.evictions(), plain.evictions());
    }
    EXPECT_GT(stats["waypred.l1.probes"], 0u);
    EXPECT_GT(stats["waypred.l1.correct"], 0u);
    // Counters partition the probes: correct + fallbacks == probes.
    EXPECT_EQ(stats["waypred.l1.correct"] + stats["waypred.l1.fallbacks"],
              stats["waypred.l1.probes"]);
    // Energy proxy: each probe reads >= 1 way and a fallback reads the
    // full set on top of the predicted way.
    EXPECT_EQ(stats["waypred.l1.ways_read"],
              stats["waypred.l1.probes"] +
                  stats["waypred.l1.fallbacks"] * pred.ways());
}

TEST(WayPredTest, UtagProbeResultsExact)
{
    ScopedEnv e("BTBSIM_WAYPRED", "utag");
    StatSet stats;
    SoaSetTable<Payload> pred(8, 4, 0, WayPredSink{&stats, "waypred.l1."});
    SoaSetTable<Payload> plain(8, 4, 0);
    ASSERT_NE(pred.predictor(), nullptr);
    EXPECT_EQ(pred.predictor()->mode(), WayPredMode::kUtag);
    std::mt19937_64 rng(13);
    for (int i = 0; i < 10000; ++i) {
        const Addr key = rng() % 256;
        if (rng() % 3 == 0) {
            fillEntry(pred, key);
            fillEntry(plain, key);
        } else {
            ASSERT_EQ(touchingFind(pred, key) != nullptr,
                      touchingFind(plain, key) != nullptr)
                << "op " << i;
        }
        ASSERT_EQ(pred.evictions(), plain.evictions());
    }
    EXPECT_GT(stats["waypred.l1.probes"], 0u);
    EXPECT_GT(stats["waypred.l1.correct"], 0u);
    // correct + misses == probes (no false negatives by construction).
    EXPECT_EQ(stats["waypred.l1.correct"] + stats["waypred.l1.misses"],
              stats["waypred.l1.probes"]);
    // The candidate filter reads at most a full set per probe.
    EXPECT_LE(stats["waypred.l1.ways_read"],
              stats["waypred.l1.probes"] * pred.ways());
}

TEST(WayPredTest, ModeParsing)
{
    {
        ScopedEnv e("BTBSIM_WAYPRED", "utag");
        EXPECT_EQ(wayPredModeFromEnv(), WayPredMode::kUtag);
    }
    {
        ScopedEnv e("BTBSIM_WAYPRED", "mru");
        EXPECT_EQ(wayPredModeFromEnv(), WayPredMode::kMru);
    }
    {
        ScopedEnv e("BTBSIM_WAYPRED", "off");
        EXPECT_EQ(wayPredModeFromEnv(), WayPredMode::kOff);
    }
    {
        ScopedEnv e("BTBSIM_WAYPRED", "bogus");
        EXPECT_EQ(wayPredModeFromEnv(), WayPredMode::kOff);
    }
}

} // namespace
} // namespace btbsim
