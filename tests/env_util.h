/**
 * @file
 * RAII environment-variable override for tests.
 *
 * Every test that mutates a BTBSIM_* knob must do it through ScopedEnv so
 * the previous state is restored on scope exit — a bare setenv() leaks
 * into whatever test the ctest scheduler runs next in the same process
 * or (with test sharding) leaves `ctest -j` order-dependent.
 */

#ifndef BTBSIM_TESTS_ENV_UTIL_H
#define BTBSIM_TESTS_ENV_UTIL_H

#include <cstdlib>
#include <optional>
#include <string>

namespace btbsim::test {

/** Scoped env override that restores the previous state on destruction.
 *  Passing nullptr as @p value unsets the variable for the scope. */
class ScopedEnv
{
  public:
    ScopedEnv(const char *name, const char *value) : name_(name)
    {
        if (const char *old = std::getenv(name))
            old_ = old;
        if (value)
            setenv(name, value, 1);
        else
            unsetenv(name);
    }
    ScopedEnv(const std::string &name, const std::string &value)
        : ScopedEnv(name.c_str(), value.c_str())
    {}
    ~ScopedEnv()
    {
        if (old_)
            setenv(name_.c_str(), old_->c_str(), 1);
        else
            unsetenv(name_.c_str());
    }

    ScopedEnv(const ScopedEnv &) = delete;
    ScopedEnv &operator=(const ScopedEnv &) = delete;

  private:
    std::string name_;
    std::optional<std::string> old_;
};

} // namespace btbsim::test

#endif // BTBSIM_TESTS_ENV_UTIL_H
