/** @file End-to-end tests of the Cpu pipeline on scripted traces. */

#include <gtest/gtest.h>

#include "btb_test_util.h"
#include "sim/cpu.h"
#include "trace_util.h"

using namespace btbsim;
using namespace btbsim::test;

namespace {

std::vector<Instruction>
jumpLoop(Addr base, unsigned body)
{
    auto v = straight(base, body);
    v.push_back(
        branchAt(base + body * kInstBytes, BranchClass::kUncondDirect, base));
    return v;
}

} // namespace

TEST(Cpu, RunsAndCommits)
{
    VectorTrace trace(jumpLoop(0x1000, 15));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.run(2000, 10000);
    // Commit-width granularity may overshoot by less than one group.
    EXPECT_GE(cpu.stats().instructions, 10000u);
    EXPECT_LT(cpu.stats().instructions, 10016u);
    EXPECT_GT(cpu.stats().ipc, 1.0);
}

TEST(Cpu, TinyLoopIsFrontendLimitedByTakenBranches)
{
    // A 4-instruction loop: even with a perfect BTB, one access per cycle
    // supplies only one iteration (4 instructions) per cycle.
    VectorTrace trace(jumpLoop(0x1000, 3));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.run(2000, 8000);
    EXPECT_LE(cpu.stats().ipc, 4.2);
    EXPECT_GT(cpu.stats().ipc, 2.0);
}

TEST(Cpu, IdealVsRealisticBtbOrdering)
{
    // The idealistic BTB can never be slower than the realistic one on
    // the same trace.
    auto mk = [] { return VectorTrace(jumpLoop(0x1000, 15)); };
    CpuConfig real;
    CpuConfig ideal;
    ideal.btb.makeIdeal();
    auto t1 = mk();
    Cpu a(real, t1);
    a.run(2000, 8000);
    auto t2 = mk();
    Cpu b(ideal, t2);
    b.run(2000, 8000);
    EXPECT_GE(b.stats().ipc, a.stats().ipc * 0.999);
}

TEST(Cpu, MispredictsDepressIpc)
{
    // Loop body with an unpredictable conditional: alternate targets via
    // a 50/50 pattern the perceptron *can* learn... so instead craft a
    // pseudo-random irregular period-31 pattern over a long history.
    std::vector<Instruction> flaky;
    std::vector<Instruction> stable = jumpLoop(0x1000, 15);
    // Build two variants of one iteration: taken-to-base at 0x1020 or
    // fall-through to more instructions.
    // Simpler: compare a loop with returns mispredicted vs not needed;
    // keep this test as IPC sanity between workloads of different MPKI.
    VectorTrace t1(jumpLoop(0x1000, 15));
    CpuConfig cfg;
    Cpu a(cfg, t1);
    a.run(2000, 8000);
    EXPECT_LT(a.stats().branch_mpki, 1.0);
}

TEST(Cpu, ColdICacheMissesAreCounted)
{
    // A loop whose body spans many lines misses the I$ on first touch.
    VectorTrace trace(jumpLoop(0x1000, 255));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.run(0, 2000);
    EXPECT_GT(cpu.stats().icache_mpki, 0.0);
}

TEST(Cpu, StatsWindowExcludesWarmup)
{
    VectorTrace trace(jumpLoop(0x1000, 15));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.run(5000, 5000);
    // The cold misfetch happened during warmup; measured misfetch PKI
    // must be zero on this fully periodic trace.
    EXPECT_DOUBLE_EQ(cpu.stats().misfetch_pki, 0.0);
    EXPECT_GE(cpu.stats().instructions, 5000u);
    EXPECT_LT(cpu.stats().instructions, 5016u);
}

TEST(Cpu, FetchPcsPerAccessMatchesLoopShape)
{
    VectorTrace trace(jumpLoop(0x1000, 15)); // 16-instruction loop
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.run(4000, 8000);
    EXPECT_NEAR(cpu.stats().fetch_pcs_per_access, 16.0, 1.5);
}

TEST(Cpu, DeterministicAcrossRuns)
{
    auto run_once = [] {
        VectorTrace trace(jumpLoop(0x1000, 15));
        CpuConfig cfg;
        Cpu cpu(cfg, trace);
        cpu.run(2000, 8000);
        return cpu.stats().cycles;
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Cpu, StepAdvancesOneCycle)
{
    VectorTrace trace(jumpLoop(0x1000, 15));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.step();
    cpu.step();
    EXPECT_EQ(cpu.cycleCount(), 2u);
}

TEST(Cpu, ObservabilityHarvest)
{
    VectorTrace trace(jumpLoop(0x1000, 15));
    CpuConfig cfg;
    Cpu cpu(cfg, trace);
    cpu.setSampleInterval(200);

    obs::Tracer tracer(1024);
    cpu.attachTracer(&tracer);

    cpu.run(2000, 8000);
    const SimStats &s = cpu.stats();

    // Time series: 200-cycle interval over a ~1000-cycle measurement.
    EXPECT_EQ(s.sample_interval, 200u);
    EXPECT_GE(s.samples.size(), 2u);
    EXPECT_GT(s.samples.front().ipc, 0.0);
    for (std::size_t i = 1; i < s.samples.size(); ++i)
        EXPECT_GT(s.samples[i].cycle, s.samples[i - 1].cycle);

    // Registry: harvested into the flattened counters map.
    EXPECT_GT(s.counters.at("pcgen.accesses"), 0.0);
    EXPECT_GT(s.counters.at("backend.committed"), 0.0);
    EXPECT_GT(s.counters.at("ftq.occupancy"), 0.0);
    EXPECT_GT(s.counters.at("trace.events"), 0.0);

    // Tracer: the cold-start BTB misses and their fills must be visible.
    EXPECT_GT(tracer.total(), 0u);
    bool saw_miss = false, saw_fill = false;
    for (std::size_t i = 0; i < tracer.size(); ++i) {
        saw_miss |= tracer.at(i).type == obs::TraceEventType::kBtbMiss;
        saw_fill |= tracer.at(i).type == obs::TraceEventType::kBtbFill;
    }
    EXPECT_TRUE(saw_miss);
    EXPECT_TRUE(saw_fill);
}
