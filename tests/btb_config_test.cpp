/** @file Tests for BTB configuration presets and geometry (Section 6.1). */

#include <gtest/gtest.h>

#include "core/btb_org.h"

using namespace btbsim;

TEST(BtbConfig, Names)
{
    EXPECT_EQ(BtbConfig::ibtb(16).name(), "I-BTB 16");
    EXPECT_EQ(BtbConfig::ibtb(8).name(), "I-BTB 8");
    EXPECT_EQ(BtbConfig::ibtb(16, true).name(), "I-BTB 16 Skp");
    EXPECT_EQ(BtbConfig::rbtb(3).name(), "R-BTB 3BS");
    EXPECT_EQ(BtbConfig::rbtb(2, 64, true).name(), "2L1 R-BTB 2BS");
    EXPECT_EQ(BtbConfig::rbtb(4, 128).name(), "R-BTB 128B 4BS");
    EXPECT_EQ(BtbConfig::bbtb(1, true).name(), "B-BTB 1BS Splt");
    EXPECT_EQ(BtbConfig::bbtb(2, false, 32).name(), "B-BTB 32 2BS");
    EXPECT_EQ(BtbConfig::mbbtb(2, PullPolicy::kCallDir).name(),
              "MB-BTB 2BS CallDir");
    EXPECT_EQ(BtbConfig::mbbtb(3, PullPolicy::kAllBr, 64).name(),
              "MB-BTB 64 3BS AllBr");
    BtbConfig ideal = BtbConfig::ibtb(16);
    ideal.makeIdeal();
    EXPECT_EQ(ideal.name(), "I-BTB 16 (ideal)");
}

TEST(BtbConfig, Table1Geometries)
{
    BtbLevelGeom l1, l2;
    BtbConfig::realGeometry(1, l1, l2);
    EXPECT_EQ(l1.entries(), 3072u);  // 512 x 6
    EXPECT_EQ(l2.entries(), 13312u); // 1024 x 13
    BtbConfig::realGeometry(2, l1, l2);
    EXPECT_EQ(l1.entries(), 1536u);
    BtbConfig::realGeometry(3, l1, l2);
    EXPECT_EQ(l1.entries(), 1024u); // 256 x 4 per the paper
    EXPECT_EQ(l2.entries(), 4608u); // 256 x 18
    BtbConfig::realGeometry(4, l1, l2);
    EXPECT_EQ(l1.entries(), 768u);
}

TEST(BtbConfig, IsoSlotScalingHolds)
{
    // Total branch slots stays within ~15% of the I-BTB's 3072 across the
    // slot counts the paper evaluates (Section 6.1).
    for (unsigned slots : {1u, 2u, 3u, 4u, 6u}) {
        BtbLevelGeom l1, l2;
        BtbConfig::realGeometry(slots, l1, l2);
        const double total = static_cast<double>(l1.entries()) * slots;
        EXPECT_NEAR(total, 3072.0, 3072.0 * 0.15) << slots << " slots";
    }
}

TEST(BtbConfig, MakeIdealZeroesPenalty)
{
    BtbConfig c = BtbConfig::bbtb(2);
    c.makeIdeal();
    EXPECT_TRUE(c.ideal);
    EXPECT_EQ(c.l2_penalty, 0u);
}

TEST(BtbConfig, FactoryProducesEveryKind)
{
    EXPECT_NE(makeBtb(BtbConfig::ibtb(16)), nullptr);
    EXPECT_NE(makeBtb(BtbConfig::rbtb(2)), nullptr);
    EXPECT_NE(makeBtb(BtbConfig::bbtb(2)), nullptr);
    EXPECT_NE(makeBtb(BtbConfig::mbbtb(2, PullPolicy::kAllBr)), nullptr);
    EXPECT_NE(makeBtb(BtbConfig::hetero(1)), nullptr);
}

TEST(BtbConfig, PenaltyModel)
{
    auto real = makeBtb(BtbConfig::ibtb(16));
    EXPECT_EQ(real->takenPenalty(0), 0u);
    EXPECT_EQ(real->takenPenalty(1), 0u);
    EXPECT_EQ(real->takenPenalty(2), 3u);
    BtbConfig icfg = BtbConfig::ibtb(16);
    icfg.makeIdeal();
    auto ideal = makeBtb(icfg);
    EXPECT_EQ(ideal->takenPenalty(2), 0u);
}
