/** @file Tests for the Fetch Target Queue. */

#include <gtest/gtest.h>

#include "frontend/ftq.h"

using namespace btbsim;

namespace {

DynInst
instAt(Addr pc)
{
    DynInst d;
    d.in.pc = pc;
    return d;
}

} // namespace

TEST(Ftq, SameLineSharesEntry)
{
    Ftq q(4);
    EXPECT_TRUE(q.push(instAt(0x1000), 1, false, true));
    EXPECT_TRUE(q.push(instAt(0x1004), 1, false, false));
    EXPECT_TRUE(q.push(instAt(0x103C), 1, false, false));
    EXPECT_EQ(q.size(), 1u);
    EXPECT_EQ(q.front().insts.size(), 3u);
}

TEST(Ftq, LineCrossOpensEntry)
{
    Ftq q(4);
    q.push(instAt(0x103C), 1, false, true);
    q.push(instAt(0x1040), 1, false, false);
    EXPECT_EQ(q.size(), 2u);
}

TEST(Ftq, ForcedNewEntryAfterRedirect)
{
    Ftq q(4);
    q.push(instAt(0x1000), 1, false, true);
    // Taken-branch target in the same line still opens a fresh entry.
    q.push(instAt(0x1020), 1, false, true);
    EXPECT_EQ(q.size(), 2u);
}

TEST(Ftq, CapacityEnforced)
{
    Ftq q(2);
    EXPECT_TRUE(q.push(instAt(0x1000), 1, false, true));
    EXPECT_TRUE(q.push(instAt(0x2000), 1, false, true));
    EXPECT_FALSE(q.push(instAt(0x3000), 1, false, true));
    EXPECT_TRUE(q.full());
    // But appending to the open tail entry still works.
    EXPECT_TRUE(q.canAccept(0x2004, false));
    EXPECT_TRUE(q.push(instAt(0x2004), 1, false, false));
}

TEST(Ftq, BypassSetsImmediateIssue)
{
    Ftq q(4);
    q.push(instAt(0x1000), 5, true, true);
    EXPECT_EQ(q.front().min_issue_cycle, 5u);
    q.push(instAt(0x2000), 5, false, true);
    EXPECT_EQ(q.entries()[1].min_issue_cycle, 6u);
}

TEST(Ftq, NoAppendToIssuedEntry)
{
    Ftq q(4);
    q.push(instAt(0x1000), 1, false, true);
    q.front().issued = true;
    q.push(instAt(0x1004), 2, false, false);
    EXPECT_EQ(q.size(), 2u); // had to open a new entry
}

TEST(Ftq, PopAndClear)
{
    Ftq q(4);
    q.push(instAt(0x1000), 1, false, true);
    q.push(instAt(0x2000), 1, false, true);
    q.popFront();
    EXPECT_EQ(q.size(), 1u);
    q.clear();
    EXPECT_TRUE(q.empty());
}
