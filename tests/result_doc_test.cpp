/** @file Tests for the result-JSON loader (obs/result_doc.h): schema
 *  v1 compatibility against a checked-in golden file, v2 span parsing,
 *  version rejection, and the sparkline renderer. */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include "obs/export.h"
#include "obs/json.h"
#include "obs/result_doc.h"

using namespace btbsim;

#ifndef BTBSIM_TEST_DATA_DIR
#error "BTBSIM_TEST_DATA_DIR must point at tests/data"
#endif

namespace {

std::string
dataFile(const std::string &name)
{
    return std::string(BTBSIM_TEST_DATA_DIR) + "/" + name;
}

} // namespace

TEST(ResultDoc, LoadsCheckedInV1Golden)
{
    // The golden file is a schema-v1 document exactly as PR 1 wrote
    // them — no host.spans, no counters_available, no profile block.
    // It must keep loading as the schema moves forward.
    const obs::ResultDoc doc =
        obs::loadResultDoc(dataFile("schema_v1_golden.json"));

    EXPECT_EQ(doc.schema_version, 1);
    EXPECT_EQ(doc.bench, "fig10_fetchpcs");
    ASSERT_EQ(doc.runs.size(), 2u);

    const obs::DocRun &r0 = doc.runs[0];
    EXPECT_EQ(r0.config, "I-BTB 16");
    EXPECT_EQ(r0.workload, "srv-small");
    EXPECT_DOUBLE_EQ(r0.ipc, 1.6);
    EXPECT_DOUBLE_EQ(r0.branch_mpki, 4.2);
    EXPECT_EQ(r0.sample_interval, 10000u);
    ASSERT_EQ(r0.samples.size(), 2u);
    EXPECT_DOUBLE_EQ(r0.samples[1].ipc, 1.59);

    // v2-only members come back empty, not as parse errors.
    EXPECT_TRUE(r0.spans.empty());
    EXPECT_FALSE(r0.counters_available);
    EXPECT_FALSE(doc.has_profile);
    EXPECT_TRUE(doc.mergedSpans().empty());
    EXPECT_FALSE(doc.mergedCountersAvailable());

    // Second run has no samples block at all.
    EXPECT_TRUE(doc.runs[1].samples.empty());
}

TEST(ResultDoc, ParsesV2SpansAndProfile)
{
    const std::string text = R"({
      "schema_version": 2,
      "bench": "b",
      "runs": [
        {
          "config": "c0", "workload": "w0",
          "stats": { "ipc": 1.5, "branch_mpki": 2.0 },
          "host": {
            "seconds": 0.1,
            "counters_available": 1,
            "spans": {
              "run": { "count": 1, "wall_ns": 1000, "cycles": 500 },
              "run/measure": { "count": 1, "wall_ns": 800 }
            }
          }
        }
      ],
      "profile": {
        "total_spans": 7, "dropped": 2, "threads": 3,
        "counters_available": 1,
        "spans": {
          "run": { "count": 1, "wall_ns": 1000, "cycles": 500 },
          "run/measure": { "count": 1, "wall_ns": 800 },
          "setup": { "count": 1, "wall_ns": 50 }
        }
      }
    })";
    const obs::ResultDoc doc =
        obs::parseResultDoc(obs::parseJson(text), "inline");

    ASSERT_EQ(doc.runs.size(), 1u);
    EXPECT_TRUE(doc.runs[0].counters_available);
    EXPECT_EQ(doc.runs[0].spans.at("run").wall_ns, 1000u);
    EXPECT_EQ(doc.runs[0].spans.at("run").cycles, 500u);

    ASSERT_TRUE(doc.has_profile);
    EXPECT_EQ(doc.profile.total_spans, 7u);
    EXPECT_EQ(doc.profile.dropped, 2u);
    EXPECT_EQ(doc.profile.threads, 3u);

    // With a profile block present, mergedSpans() is the profile table
    // alone — run spans are already inside it (double-count guard).
    const obs::SpanProfile merged = doc.mergedSpans();
    EXPECT_EQ(merged.size(), 3u);
    EXPECT_EQ(merged.at("run").count, 1u);
    EXPECT_TRUE(doc.mergedCountersAvailable());
}

TEST(ResultDoc, MergedSpansFallsBackToSummingRuns)
{
    // A v2 document written without a profile block (e.g. a run-cache
    // envelope consumer) still yields a tree by summing per-run tables.
    const std::string text = R"({
      "schema_version": 2,
      "runs": [
        { "config": "c0", "workload": "w0", "stats": { "ipc": 1.0 },
          "host": { "spans": { "run": { "count": 1, "wall_ns": 10 } } } },
        { "config": "c1", "workload": "w0", "stats": { "ipc": 1.0 },
          "host": { "spans": { "run": { "count": 1, "wall_ns": 30 } } } }
      ]
    })";
    const obs::ResultDoc doc =
        obs::parseResultDoc(obs::parseJson(text), "inline");

    EXPECT_FALSE(doc.has_profile);
    const obs::SpanProfile merged = doc.mergedSpans();
    EXPECT_EQ(merged.at("run").count, 2u);
    EXPECT_EQ(merged.at("run").wall_ns, 40u);
}

TEST(ResultDoc, RejectsUnsupportedVersions)
{
    const auto parse = [](int version) {
        const std::string text = "{\"schema_version\": " +
                                 std::to_string(version) + ", \"runs\": []}";
        return obs::parseResultDoc(obs::parseJson(text), "inline");
    };

    EXPECT_NO_THROW(parse(1));
    EXPECT_NO_THROW(parse(obs::kSchemaVersion));
    try {
        parse(obs::kSchemaVersion + 1);
        FAIL() << "future schema_version must be rejected";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("unsupported schema_version"),
                  std::string::npos);
    }
    EXPECT_THROW(parse(0), std::runtime_error);
}

TEST(ResultDoc, SpanProfileJsonRoundTrips)
{
    obs::SpanProfile in;
    in["a"].count = 3;
    in["a"].wall_ns = 1234;
    in["a"].instructions = 99;
    in["a/b"].count = 1;
    in["a/b"].task_clock_ns = 55;

    std::ostringstream os;
    {
        obs::JsonWriter w(os);
        obs::writeSpanProfileJson(w, in);
    }
    const obs::JsonValue v = obs::parseJson(os.str());

    obs::SpanProfile out;
    for (const auto &[path, agg] : v.object) {
        obs::SpanAgg a;
        a.count = static_cast<std::uint64_t>(agg.at("count").asNumber());
        a.wall_ns = static_cast<std::uint64_t>(agg.at("wall_ns").asNumber());
        a.instructions =
            static_cast<std::uint64_t>(agg.at("instructions").asNumber());
        a.tsc = static_cast<std::uint64_t>(agg.at("tsc").asNumber());
        a.cycles = static_cast<std::uint64_t>(agg.at("cycles").asNumber());
        a.branch_misses =
            static_cast<std::uint64_t>(agg.at("branch_misses").asNumber());
        a.cache_misses =
            static_cast<std::uint64_t>(agg.at("cache_misses").asNumber());
        a.task_clock_ns =
            static_cast<std::uint64_t>(agg.at("task_clock_ns").asNumber());
        out[path] = a;
    }
    EXPECT_EQ(out, in);
}

TEST(Sparkline, RendersScaledBlocks)
{
    EXPECT_EQ(obs::sparkline({}), "");

    // Constant series: mid-height blocks, one per point.
    const std::string flat = obs::sparkline({2.0, 2.0, 2.0});
    EXPECT_EQ(flat, "▄▄▄");

    // Monotone ramp: first char is the lowest block, last the highest.
    const std::string ramp =
        obs::sparkline({0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0});
    ASSERT_EQ(ramp.size(), 8u * 3u); // One UTF-8 triplet per point.
    EXPECT_EQ(ramp.substr(0, 3), "▁");
    EXPECT_EQ(ramp.substr(ramp.size() - 3), "█");
}

TEST(Sparkline, DownsamplesToMaxPoints)
{
    std::vector<double> v(1000);
    for (std::size_t i = 0; i < v.size(); ++i)
        v[i] = static_cast<double>(i);
    const std::string s = obs::sparkline(v, 16);
    EXPECT_EQ(s.size(), 16u * 3u); // Bucket-averaged down to 16 chars.
    EXPECT_EQ(s.substr(0, 3), "▁");
    EXPECT_EQ(s.substr(s.size() - 3), "█");
}
