/**
 * @file
 * Mutation smoke for the differential checker: each compiled-in fault
 * point (check/fault.h) corrupts one organization's update path; the
 * fuzzer must find the corruption, shrink it to a tiny repro, and the
 * repro must round-trip and stay failing. Meaningful only in builds
 * configured with -DBTBSIM_FAULT_POINTS=ON (the CI fuzz-smoke job);
 * elsewhere every test skips.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <unistd.h>

#include "check/fault.h"
#include "check/fuzz.h"
#include "env_util.h"

using namespace btbsim;

namespace {

#ifdef BTBSIM_FAULT_POINTS
constexpr bool kFaultsCompiled = true;
#else
constexpr bool kFaultsCompiled = false;
#endif

/** Fuzz with @p point armed until a failure is found, then shrink and
 *  validate the whole repro pipeline. */
void
mutationSmoke(const char *point)
{
    if (!kFaultsCompiled)
        GTEST_SKIP() << "build has no fault points (-DBTBSIM_FAULT_POINTS=ON)";
    test::ScopedEnv arm("BTBSIM_FAULT", point);
    ASSERT_TRUE(check::faultArmed(point));

    std::optional<check::FuzzFailure> fail;
    check::FuzzCase failing;
    for (std::uint64_t seed = 1; seed <= 64 && !fail; ++seed) {
        failing = check::randomCase(seed, 20000);
        fail = check::runCase(failing);
    }
    ASSERT_TRUE(fail.has_value())
        << "checker missed the " << point << " corruption over 64 seeds";

    check::ShrinkResult r = check::shrinkCase(failing, *fail);
    EXPECT_LE(r.reduced.insts.size(), 1000u)
        << "shrunk repro for " << point << " is not minimal";
    EXPECT_TRUE(check::runCase(r.reduced).has_value());

    // Shrinking is deterministic, so a second pass is a fixpoint.
    check::ShrinkResult again = check::shrinkCase(r.reduced, r.failure);
    EXPECT_EQ(again.reduced.insts.size(), r.reduced.insts.size());
    EXPECT_EQ(again.reduced.btb, r.reduced.btb);

    // The repro must survive a disk round trip and still fail armed.
    const auto dir = std::filesystem::temp_directory_path() /
                     ("btbsim-fault-" + std::string(point) + "-" +
                      std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const std::string path = (dir / "repro.btbt").string();
    check::writeRepro(r.reduced, path);
    check::FuzzCase loaded = check::loadRepro(path);
    EXPECT_TRUE(check::runCase(loaded).has_value())
        << "loaded repro no longer fails for " << point;
    std::filesystem::remove_all(dir);
}

} // namespace

// Unarmed builds must never execute a fault, compiled in or not.
TEST(FaultInjection, UnarmedFaultsAreInert)
{
    test::ScopedEnv off("BTBSIM_FAULT", nullptr);
    EXPECT_FALSE(check::faultArmed("ibtb_update_target"));
    check::FuzzCase c = check::randomCase(5, 3000);
    EXPECT_FALSE(check::runCase(c).has_value());
}

TEST(FaultInjection, ArmingIsPerPoint)
{
    test::ScopedEnv arm("BTBSIM_FAULT", "ibtb_update_target");
    EXPECT_TRUE(check::faultArmed("ibtb_update_target"));
    EXPECT_FALSE(check::faultArmed("rbtb_update_target"));
}

TEST(FaultInjection, CatchesIbtbUpdateTarget)
{
    mutationSmoke("ibtb_update_target");
}

TEST(FaultInjection, CatchesRbtbUpdateTarget)
{
    mutationSmoke("rbtb_update_target");
}

TEST(FaultInjection, CatchesBbtbUpdateTarget)
{
    mutationSmoke("bbtb_update_target");
}

TEST(FaultInjection, CatchesMbbtbPullSeam)
{
    mutationSmoke("mbbtb_pull_seam");
}
