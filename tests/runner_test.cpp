/** @file Tests for the experiment runner. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "env_util.h"
#include "sim/runner.h"
#include "traceio/replay_env.h"
#include "traceio/trace_writer.h"

using namespace btbsim;

TEST(Runner, EnvOverrides)
{
    test::ScopedEnv e1("BTBSIM_WARMUP", "1234");
    test::ScopedEnv e2("BTBSIM_MEASURE", "5678");
    test::ScopedEnv e3("BTBSIM_TRACES", "3");
    test::ScopedEnv e4("BTBSIM_THREADS", "2");
    const RunOptions o = RunOptions::fromEnv();
    EXPECT_EQ(o.warmup, 1234u);
    EXPECT_EQ(o.measure, 5678u);
    EXPECT_EQ(o.traces, 3u);
    EXPECT_EQ(o.threads, 2u);
}

TEST(Runner, EnvDefaultsWhenUnset)
{
    test::ScopedEnv e("BTBSIM_WARMUP", nullptr);
    const RunOptions o = RunOptions::fromEnv();
    EXPECT_EQ(o.warmup, RunOptions{}.warmup);
}

TEST(Runner, MatrixOrderingAndDeterminism)
{
    RunOptions opt;
    opt.warmup = 60'000;
    opt.measure = 120'000;
    opt.threads = 2;

    WorkloadSpec spec;
    spec.name = "rt";
    spec.params.seed = 0x42;
    spec.params.target_static_insts = 24 * 1024;
    spec.params.num_handlers = 4;

    std::vector<CpuConfig> configs(2);
    configs[0].btb = BtbConfig::ibtb(16);
    configs[1].btb = BtbConfig::bbtb(1, true);

    const auto r1 = runMatrix(configs, {spec}, opt);
    const auto r2 = runMatrix(configs, {spec}, opt);
    ASSERT_EQ(r1.size(), 2u);
    // Ordered by (config, workload).
    EXPECT_EQ(r1[0].config, "I-BTB 16");
    EXPECT_EQ(r1[1].config, "B-BTB 1BS Splt");
    // Thread scheduling must not affect results.
    EXPECT_EQ(r1[0].cycles, r2[0].cycles);
    EXPECT_EQ(r1[1].cycles, r2[1].cycles);
}

TEST(Runner, ReplayAcrossThreadsIsBitIdentical)
{
    // One .btbt recording, replayed concurrently by several runMatrix
    // workers: every worker opens its own TraceReplaySource, so thread
    // count must not change a single bit of the results.
    RunOptions opt;
    opt.warmup = 40'000;
    opt.measure = 80'000;

    WorkloadSpec spec;
    spec.name = "rt-replay";
    spec.params.seed = 0x51;
    spec.params.target_static_insts = 24 * 1024;
    spec.params.num_handlers = 4;

    const std::string dir = ::testing::TempDir() + "btbt_runner";
    std::filesystem::create_directories(dir);
    {
        auto wl = makeWorkload(spec);
        traceio::TraceWriter writer(traceio::replayPath(dir, spec.name),
                                    spec.name, &wl->program());
        traceio::RecordingSource rec(*wl, writer);
        const std::uint64_t insts = opt.warmup + opt.measure + (64u << 10);
        for (std::uint64_t i = 0; i < insts; ++i)
            rec.next();
        writer.finish();
    }

    std::vector<CpuConfig> configs(2);
    configs[0].btb = BtbConfig::ibtb(16);
    configs[1].btb = BtbConfig::bbtb(1, true);

    std::vector<SimStats> mt, st;
    {
        test::ScopedEnv env("BTBSIM_TRACE_DIR", dir.c_str());
        opt.threads = 2;
        mt = runMatrix(configs, {spec}, opt);
        opt.threads = 1;
        st = runMatrix(configs, {spec}, opt);
    }

    ASSERT_EQ(mt.size(), 2u);
    ASSERT_EQ(st.size(), 2u);
    for (std::size_t i = 0; i < mt.size(); ++i) {
        EXPECT_EQ(mt[i].source_kind, "replay") << i;
        EXPECT_EQ(st[i].source_kind, "replay") << i;
        EXPECT_EQ(mt[i].cycles, st[i].cycles) << i;
        EXPECT_EQ(mt[i].instructions, st[i].instructions) << i;
        EXPECT_EQ(mt[i].ipc, st[i].ipc) << i;
        EXPECT_EQ(mt[i].counters, st[i].counters) << i;
    }
    std::filesystem::remove_all(dir);
}

TEST(Runner, RunOneFillsHeadlineStats)
{
    RunOptions opt;
    opt.warmup = 60'000;
    opt.measure = 120'000;

    WorkloadSpec spec;
    spec.name = "rt2";
    spec.params.seed = 0x43;
    spec.params.target_static_insts = 24 * 1024;
    spec.params.num_handlers = 4;

    CpuConfig cfg;
    const SimStats s = runOne(cfg, spec, opt);
    EXPECT_EQ(s.workload, "rt2");
    EXPECT_EQ(s.config, "I-BTB 16");
    EXPECT_GE(s.instructions, opt.measure);
    EXPECT_GT(s.cycles, 0u);
    EXPECT_GT(s.ipc, 0.0);
    EXPECT_GT(s.fetch_pcs_per_access, 1.0);
    EXPECT_GT(s.avg_dyn_bb_size, 2.0);
}
