/** @file Unit tests for the interval time-series sampler. */

#include <gtest/gtest.h>

#include "obs/sampler.h"

using namespace btbsim::obs;

namespace {

SampleSnapshot
snap(std::uint64_t cycle, std::uint64_t insts)
{
    SampleSnapshot s;
    s.cycle = cycle;
    s.instructions = insts;
    return s;
}

} // namespace

TEST(Sampler, IntervalBoundaries)
{
    Sampler s(100);
    EXPECT_TRUE(s.enabled());
    EXPECT_EQ(s.interval(), 100u);
    EXPECT_FALSE(s.due(0));
    EXPECT_FALSE(s.due(99));
    EXPECT_TRUE(s.due(100)); // boundary is inclusive
    EXPECT_TRUE(s.due(101));

    s.sample(snap(100, 250));
    // Re-armed exactly one interval past the sampled cycle.
    EXPECT_FALSE(s.due(199));
    EXPECT_TRUE(s.due(200));
}

TEST(Sampler, ZeroIntervalDisables)
{
    Sampler s(0);
    EXPECT_FALSE(s.enabled());
    EXPECT_FALSE(s.due(0));
    EXPECT_FALSE(s.due(1'000'000));
}

TEST(Sampler, DeltaRatesNotCumulative)
{
    Sampler s(100);

    SampleSnapshot a = snap(100, 150);
    a.taken_branches = 10;
    a.taken_l1_hits = 8;
    a.taken_l2_hits = 1;
    a.mispredicts = 3;
    a.misfetches = 1;
    a.icache_misses = 2;
    a.ftq_occupancy_sum = 400.0;
    s.sample(a);

    SampleSnapshot b = snap(300, 450); // 200 cycles, 300 insts later
    b.taken_branches = 30;
    b.taken_l1_hits = 18;
    b.taken_l2_hits = 7;
    b.mispredicts = 6;
    b.misfetches = 4;
    b.icache_misses = 5;
    b.ftq_occupancy_sum = 1000.0;
    s.sample(b);

    ASSERT_EQ(s.samples().size(), 2u);
    const IntervalSample &s0 = s.samples()[0];
    EXPECT_EQ(s0.cycle, 100u);
    EXPECT_EQ(s0.instructions, 150u);
    EXPECT_DOUBLE_EQ(s0.ipc, 1.5);
    EXPECT_DOUBLE_EQ(s0.l1_btb_hitrate, 0.8);
    EXPECT_DOUBLE_EQ(s0.btb_hitrate, 0.9);
    EXPECT_DOUBLE_EQ(s0.ftq_occupancy, 4.0);

    // The second row reflects only the second interval's deltas.
    const IntervalSample &s1 = s.samples()[1];
    EXPECT_EQ(s1.cycle, 300u);
    EXPECT_EQ(s1.instructions, 300u);
    EXPECT_DOUBLE_EQ(s1.ipc, 1.5);
    EXPECT_DOUBLE_EQ(s1.l1_btb_hitrate, 0.5);  // (18-8)/(30-10)
    EXPECT_DOUBLE_EQ(s1.btb_hitrate, 0.8);     // (25-9)/20
    EXPECT_DOUBLE_EQ(s1.branch_mpki, 10.0);    // 3 / 0.3 ki
    EXPECT_DOUBLE_EQ(s1.misfetch_pki, 10.0);   // 3 / 0.3 ki
    EXPECT_DOUBLE_EQ(s1.icache_mpki, 10.0);    // 3 / 0.3 ki
    EXPECT_DOUBLE_EQ(s1.ftq_occupancy, 3.0);   // 600 / 200 cycles
}

TEST(Sampler, RearmSkipsStalledGap)
{
    // After a long gap (e.g. a drain), the next boundary is one interval
    // past the late sample — no burst of degenerate rows.
    Sampler s(100);
    s.sample(snap(100, 100));
    s.sample(snap(750, 800)); // sampled late
    EXPECT_FALSE(s.due(849));
    EXPECT_TRUE(s.due(850));
    ASSERT_EQ(s.samples().size(), 2u);
    EXPECT_EQ(s.samples()[1].cycle, 750u);
    EXPECT_EQ(s.samples()[1].instructions, 700u);
}

TEST(Sampler, ZeroDeltaIntervalIsSafe)
{
    Sampler s(100);
    s.sample(snap(100, 50));
    s.sample(snap(100, 50)); // identical snapshot: all rates 0, no div-by-0
    ASSERT_EQ(s.samples().size(), 2u);
    EXPECT_DOUBLE_EQ(s.samples()[1].ipc, 0.0);
    EXPECT_DOUBLE_EQ(s.samples()[1].l1_btb_hitrate, 0.0);
    EXPECT_DOUBLE_EQ(s.samples()[1].branch_mpki, 0.0);
}

TEST(Sampler, TakeMovesSeries)
{
    Sampler s(10);
    s.sample(snap(10, 10));
    std::vector<IntervalSample> out = s.take();
    EXPECT_EQ(out.size(), 1u);
    EXPECT_TRUE(s.samples().empty());
}
