/** @file Tests for the content-addressed run cache (exp/run_cache.h). */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <set>
#include <vector>

#include "env_util.h"
#include "exp/run_cache.h"
#include "exp/sha256.h"
#include "obs/json.h"

using namespace btbsim;

namespace {

exp::RunKey
baseKey()
{
    exp::RunKey k;
    k.workload.name = "cache-wl";
    k.workload.params.seed = 7;
    k.opt.warmup = 1000;
    k.opt.measure = 2000;
    k.sample_interval = 50'000;
    k.source_kind = "generated";
    return k;
}

/** A SimStats with every field (incl. samples and counters) populated. */
SimStats
fullStats()
{
    SimStats s;
    s.workload = "cache-wl";
    s.config = "I-BTB 16";
    s.instructions = 123'456;
    s.cycles = 234'567;
    s.ipc = 0.5263101471520399; // Awkward mantissa: %.17g fidelity.
    s.branch_mpki = 12.25;
    s.misfetch_pki = 3.5;
    s.combined_mpki = 15.75;
    s.cond_mispredict_rate = 0.01234567890123456;
    s.l1_btb_hitrate = 0.75;
    s.btb_hitrate = 0.875;
    s.fetch_pcs_per_access = 7.7;
    s.taken_per_ki = 180.5;
    s.l1_slot_occupancy = 1.25;
    s.l2_slot_occupancy = 1.5;
    s.l1_redundancy = 1.0625;
    s.l2_redundancy = 1.125;
    s.icache_mpki = 4.25;
    s.avg_dyn_bb_size = 5.5;
    s.sample_interval = 50'000;
    obs::IntervalSample p;
    p.cycle = 50'000;
    p.instructions = 26'000;
    p.ipc = 0.52;
    p.l1_btb_hitrate = 0.74;
    p.btb_hitrate = 0.87;
    p.branch_mpki = 12.0;
    p.misfetch_pki = 3.25;
    p.ftq_occupancy = 31.5;
    p.icache_mpki = 4.0;
    s.samples = {p, p};
    s.samples[1].cycle = 100'000;
    s.counters = {{"btb.l1.hits", 1234.0},
                  {"frontend.fetch_stalls", 567.0}};
    s.host_seconds = 0.125;
    s.minst_per_host_sec = 0.987;
    s.source_kind = "generated";
    s.source_minst_per_sec = 42.5;
    return s;
}

} // namespace

TEST(RunCache, StatsJsonRoundTripsEveryField)
{
    const SimStats s = fullStats();
    const std::string json = exp::statsToJson(s);
    const SimStats back = exp::statsFromJson(obs::parseJson(json));
    // Serialization is the cache's equality oracle: byte-identical
    // re-serialization means every field survived.
    EXPECT_EQ(exp::statsToJson(back), json);
    EXPECT_EQ(back.counters, s.counters);
    ASSERT_EQ(back.samples.size(), s.samples.size());
    EXPECT_EQ(back.samples[1].cycle, s.samples[1].cycle);
    EXPECT_EQ(back.ipc, s.ipc);
    EXPECT_EQ(back.cond_mispredict_rate, s.cond_mispredict_rate);
}

TEST(RunCache, DigestIsStableAndKeyOrderCanonical)
{
    const exp::RunKey k = baseKey();
    EXPECT_EQ(exp::runKeyDigest(k), exp::runKeyDigest(k));
    EXPECT_EQ(exp::runKeyDigest(k).size(), 64u); // SHA-256 hex.
    EXPECT_EQ(exp::canonicalRunKeyJson(k), exp::canonicalRunKeyJson(k));
}

TEST(RunCache, EverySingleFieldChangeInvalidatesTheDigest)
{
    const std::string base = exp::runKeyDigest(baseKey());

    // Each mutator changes exactly one field somewhere in the key.
    const std::vector<std::function<void(exp::RunKey &)>> mutators = {
        // RunOptions (result-affecting fields).
        [](exp::RunKey &k) { ++k.opt.warmup; },
        [](exp::RunKey &k) { ++k.opt.measure; },
        // CpuConfig scalars.
        [](exp::RunKey &k) { ++k.config.fetch_width; },
        [](exp::RunKey &k) { ++k.config.ftq_entries; },
        [](exp::RunKey &k) { k.config.btb_predecode_fill = true; },
        // Nested BTB geometry and policy.
        [](exp::RunKey &k) { k.config.btb = BtbConfig::bbtb(2, true); },
        [](exp::RunKey &k) { ++k.config.btb.l1.sets; },
        [](exp::RunKey &k) { ++k.config.btb.l2.ways; },
        [](exp::RunKey &k) { k.config.btb.ideal = true; },
        [](exp::RunKey &k) { ++k.config.btb.l2_penalty; },
        [](exp::RunKey &k) { k.config.btb.skip_taken = true; },
        // Nested bpred / memory / backend.
        [](exp::RunKey &k) { ++k.config.bpred.perceptron.num_tables; },
        [](exp::RunKey &k) { ++k.config.bpred.ras_entries; },
        [](exp::RunKey &k) { ++k.config.mem.l1i.sets; },
        [](exp::RunKey &k) { ++k.config.mem.dram_latency; },
        [](exp::RunKey &k) { ++k.config.backend.rob_size; },
        [](exp::RunKey &k) { k.config.backend.ideal = true; },
        // Workload identity.
        [](exp::RunKey &k) { k.workload.name = "other"; },
        [](exp::RunKey &k) { ++k.workload.trace_seed; },
        [](exp::RunKey &k) { ++k.workload.params.seed; },
        [](exp::RunKey &k) { k.workload.params.mean_block_len += 0.5; },
        [](exp::RunKey &k) { k.workload.params.w_loop += 0.001; },
        // Engine-level key components.
        [](exp::RunKey &k) { k.sample_interval += 1; },
        [](exp::RunKey &k) { k.source_kind = "replay"; },
    };

    std::set<std::string> digests{base};
    for (std::size_t i = 0; i < mutators.size(); ++i) {
        exp::RunKey k = baseKey();
        mutators[i](k);
        const std::string d = exp::runKeyDigest(k);
        EXPECT_NE(d, base) << "mutator " << i << " did not change the hash";
        EXPECT_TRUE(digests.insert(d).second)
            << "mutator " << i << " collided with an earlier digest";
    }
}

TEST(RunCache, ThreadCountDoesNotInvalidate)
{
    // Results are bit-identical regardless of thread count (see
    // sim/runner.h), so `threads` is deliberately NOT part of the key:
    // re-sharding a sweep must keep its cache warm.
    exp::RunKey a = baseKey(), b = baseKey();
    a.opt.threads = 1;
    b.opt.threads = 8;
    EXPECT_EQ(exp::runKeyDigest(a), exp::runKeyDigest(b));
    // Same for `traces`: it selects points, it doesn't change one.
    b.opt.traces = a.opt.traces + 3;
    EXPECT_EQ(exp::runKeyDigest(a), exp::runKeyDigest(b));
}

TEST(RunCache, SchemaBumpInvalidates)
{
    const exp::RunKey k = baseKey();
    EXPECT_NE(exp::runKeyDigest(k, exp::kRunKeySchemaVersion),
              exp::runKeyDigest(k, exp::kRunKeySchemaVersion + 1));
}

TEST(RunCache, WarmHitIsBitIdentical)
{
    const std::string dir = ::testing::TempDir() + "run_cache_warm";
    std::filesystem::remove_all(dir);
    const exp::RunCache cache(dir);
    ASSERT_TRUE(cache.enabled());

    const exp::RunKey key = baseKey();
    const std::string digest = exp::runKeyDigest(key);
    const SimStats s = fullStats();

    EXPECT_FALSE(cache.load(digest).has_value()); // Cold.
    ASSERT_TRUE(cache.store(digest, exp::canonicalRunKeyJson(key), s));

    const auto hit = cache.load(digest);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(exp::statsToJson(*hit), exp::statsToJson(s));
    std::filesystem::remove_all(dir);
}

TEST(RunCache, CorruptedEntryIsDiscardedAndResimulated)
{
    const std::string dir = ::testing::TempDir() + "run_cache_corrupt";
    std::filesystem::remove_all(dir);
    const exp::RunCache cache(dir);

    const exp::RunKey key = baseKey();
    const std::string digest = exp::runKeyDigest(key);
    ASSERT_TRUE(cache.store(digest, exp::canonicalRunKeyJson(key),
                            fullStats()));
    const std::string path = cache.entryPath(digest);
    ASSERT_TRUE(std::filesystem::exists(path));

    // Flip the payload: ipc changes but stats_sha256 does not.
    {
        std::ifstream is(path);
        std::string text((std::istreambuf_iterator<char>(is)),
                         std::istreambuf_iterator<char>());
        const std::string from = "\"cycles\": 234567";
        const auto pos = text.find(from);
        ASSERT_NE(pos, std::string::npos);
        text.replace(pos, from.size(), "\"cycles\": 999999");
        std::ofstream(path) << text;
    }

    EXPECT_FALSE(cache.load(digest).has_value()); // Detected, not served.
    EXPECT_FALSE(std::filesystem::exists(path));  // ...and unlinked.

    // Truncated (torn write) entries are misses too.
    ASSERT_TRUE(cache.store(digest, exp::canonicalRunKeyJson(key),
                            fullStats()));
    std::filesystem::resize_file(path,
                                 std::filesystem::file_size(path) / 2);
    EXPECT_FALSE(cache.load(digest).has_value());
    EXPECT_FALSE(std::filesystem::exists(path));

    // The point can immediately be stored (re-simulated) again.
    ASSERT_TRUE(cache.store(digest, exp::canonicalRunKeyJson(key),
                            fullStats()));
    EXPECT_TRUE(cache.load(digest).has_value());
    std::filesystem::remove_all(dir);
}

TEST(RunCache, DisabledCacheMissesAndIgnoresStores)
{
    const exp::RunCache cache; // Empty dir = disabled.
    EXPECT_FALSE(cache.enabled());
    EXPECT_FALSE(cache.store("d", "{}", fullStats()));
    EXPECT_FALSE(cache.load("d").has_value());
}

TEST(RunCache, DirFromEnvSemantics)
{
    {
        test::ScopedEnv e("BTBSIM_RUN_CACHE", nullptr);
        EXPECT_EQ(exp::RunCache::dirFromEnv("fb"), "fb");
        EXPECT_EQ(exp::RunCache::dirFromEnv(""), "");
    }
    {
        test::ScopedEnv e("BTBSIM_RUN_CACHE", "0");
        EXPECT_EQ(exp::RunCache::dirFromEnv("fb"), "");
    }
    {
        test::ScopedEnv e("BTBSIM_RUN_CACHE", "/tmp/somewhere");
        EXPECT_EQ(exp::RunCache::dirFromEnv("fb"), "/tmp/somewhere");
    }
}

TEST(RunCache, Sha256MatchesReferenceVectors)
{
    EXPECT_EQ(exp::Sha256::hexDigest(""),
              "e3b0c44298fc1c149afbf4c8996fb924"
              "27ae41e4649b934ca495991b7852b855");
    EXPECT_EQ(exp::Sha256::hexDigest("abc"),
              "ba7816bf8f01cfea414140de5dae2223"
              "b00361a396177a9cb410ff61f20015ad");
    EXPECT_EQ(
        exp::Sha256::hexDigest(
            "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039"
        "a33ce45964ff2167f6ecedd419db06c1");
}
