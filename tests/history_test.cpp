/** @file Tests for global history folding. */

#include <gtest/gtest.h>

#include "bpred/history.h"

using namespace btbsim;

TEST(GlobalHistory, ShiftAndLow)
{
    GlobalHistory h;
    h.shift(true);
    h.shift(false);
    h.shift(true);
    // Most recent is bit 0: 1,0,1 -> 0b101.
    EXPECT_EQ(h.low(3), 0b101u);
    EXPECT_EQ(h.low(1), 1u);
}

TEST(GlobalHistory, ZeroLengthFoldIsZero)
{
    GlobalHistory h;
    for (int i = 0; i < 100; ++i)
        h.shift(i % 3 == 0);
    EXPECT_EQ(h.fold(0, 12), 0u);
}

TEST(GlobalHistory, FoldDependsOnHistory)
{
    GlobalHistory a, b;
    for (int i = 0; i < 64; ++i) {
        a.shift(true);
        b.shift(i != 13);
    }
    EXPECT_NE(a.fold(64, 12), b.fold(64, 12));
}

TEST(GlobalHistory, FoldStaysInBits)
{
    GlobalHistory h;
    for (int i = 0; i < 256; ++i) {
        h.shift((i * 7) % 5 < 2);
        EXPECT_LT(h.fold(232, 12), 1ull << 12);
        EXPECT_LT(h.fold(17, 9), 1ull << 9);
    }
}

TEST(GlobalHistory, LongShiftPropagatesAcrossWords)
{
    GlobalHistory h;
    h.shift(true);
    for (int i = 0; i < 70; ++i)
        h.shift(false);
    // The 1 is now at position 70; folding the first 64 bits sees zeros,
    // folding 128 sees the 1.
    EXPECT_EQ(h.fold(64, 8), 0u);
    EXPECT_NE(h.fold(128, 8), 0u);
}

TEST(GlobalHistory, ResetClears)
{
    GlobalHistory h;
    for (int i = 0; i < 200; ++i)
        h.shift(true);
    h.reset();
    EXPECT_EQ(h.low(64), 0u);
    EXPECT_EQ(h.fold(232, 12), 0u);
}

TEST(PathHistory, ShiftMixes)
{
    PathHistory p;
    p.shift(0x1000);
    const auto v1 = p.value();
    p.shift(0x2000);
    EXPECT_NE(p.value(), v1);
    p.reset();
    EXPECT_EQ(p.value(), 0u);
}
