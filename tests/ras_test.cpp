/** @file Tests for the return address stack. */

#include <gtest/gtest.h>

#include "bpred/ras.h"

using namespace btbsim;

TEST(Ras, PushPopLifo)
{
    ReturnAddressStack ras(8);
    ras.push(0x100);
    ras.push(0x200);
    ras.push(0x300);
    EXPECT_EQ(ras.pop(), 0x300u);
    EXPECT_EQ(ras.pop(), 0x200u);
    EXPECT_EQ(ras.pop(), 0x100u);
}

TEST(Ras, UnderflowReturnsZero)
{
    ReturnAddressStack ras(4);
    EXPECT_EQ(ras.pop(), 0u);
    EXPECT_EQ(ras.underflows(), 1u);
}

TEST(Ras, OverflowOverwritesOldest)
{
    ReturnAddressStack ras(4);
    for (Addr a = 1; a <= 6; ++a)
        ras.push(a * 0x10);
    // Entries 0x50, 0x60 overwrote 0x10, 0x20.
    EXPECT_EQ(ras.pop(), 0x60u);
    EXPECT_EQ(ras.pop(), 0x50u);
    EXPECT_EQ(ras.pop(), 0x40u);
    EXPECT_EQ(ras.pop(), 0x30u);
    // Depth exhausted; the oldest two are gone.
    EXPECT_EQ(ras.pop(), 0u);
}

TEST(Ras, DepthTracks)
{
    ReturnAddressStack ras(64);
    EXPECT_EQ(ras.depth(), 0u);
    ras.push(0x10);
    ras.push(0x20);
    EXPECT_EQ(ras.depth(), 2u);
    ras.pop();
    EXPECT_EQ(ras.depth(), 1u);
}

TEST(Ras, DeepCallChains)
{
    ReturnAddressStack ras(64);
    for (Addr a = 0; a < 60; ++a)
        ras.push(0x1000 + a * 4);
    for (Addr a = 60; a-- > 0;)
        EXPECT_EQ(ras.pop(), 0x1000 + a * 4);
}

TEST(Ras, CountersTrack)
{
    ReturnAddressStack ras(8);
    ras.push(1);
    ras.pop();
    ras.pop();
    EXPECT_EQ(ras.pushes(), 1u);
    EXPECT_EQ(ras.pops(), 2u);
    EXPECT_EQ(ras.underflows(), 1u);
}
