/** @file Tests for the wired Table 1 memory hierarchy. */

#include <gtest/gtest.h>

#include "memory/memhier.h"

using namespace btbsim;

TEST(MemHier, FetchPathColdThenWarm)
{
    MemHier mem;
    const Cycle cold = mem.fetchLine(0x400000, 100);
    EXPECT_GT(cold, 200u); // TLB walk + DRAM
    const Cycle warm = mem.fetchLine(0x400000, cold + 10);
    EXPECT_EQ(warm, cold + 10 + 3); // L1I load-to-use
}

TEST(MemHier, LoadPathUsesL1dLatency)
{
    MemHier mem;
    mem.load(0x1000, 0x800000, 0); // cold
    Cycle t0 = 10000;
    const Cycle warm = mem.load(0x1000, 0x800000, t0);
    EXPECT_EQ(warm, t0 + 5); // 5-cycle load-to-use
}

TEST(MemHier, InstructionAndDataShareL2)
{
    MemHier mem;
    mem.fetchLine(0x400000, 0); // fills L1I, L2, LLC
    mem.load(0x1000, 0x400800, 100); // warm the DTLB for the page
    // A data load to the fetched line hits the shared L2 (15 cycles),
    // not DRAM.
    Cycle t0 = 10000;
    const Cycle t = mem.load(0x1000, 0x400000, t0);
    EXPECT_EQ(t, t0 + 15);
}

TEST(MemHier, IcacheInterleaveCyclesOverLines)
{
    MemHier mem;
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(mem.icacheInterleave(0x1000 + i * 64), (0x40u + i) % 8);
    // Same line, same interleave regardless of offset.
    EXPECT_EQ(mem.icacheInterleave(0x1000), mem.icacheInterleave(0x103F));
}

TEST(MemHier, StridePrefetcherHidesArrayWalk)
{
    MemHier mem;
    // Walk an array with a fixed 64B stride; after training, accesses hit.
    Cycle now = 0;
    unsigned hits = 0;
    const unsigned n = 64;
    for (unsigned i = 0; i < n; ++i) {
        const Addr a = 0xA00000 + Addr{i} * 64;
        const Cycle done = mem.load(0x2000, a, now);
        if (done - now <= 5)
            ++hits;
        now += 400; // give prefetches time to land
    }
    EXPECT_GT(hits, n / 2);
}

TEST(MemHier, StoresAllocateLines)
{
    MemHier mem;
    mem.store(0xB00000, 0);
    EXPECT_TRUE(mem.l1d().contains(0xB00000));
}

TEST(MemHier, L2NextLinePrefetchOnInstructionPath)
{
    MemHier mem;
    mem.fetchLine(0xC00000, 0);
    // The L2's next-line prefetcher pulled the following line into L2.
    EXPECT_TRUE(mem.l2().contains(0xC00040));
}
