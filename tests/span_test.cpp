/** @file Tests for the host span profiler (obs/span.h) and its perf
 *  counter / Chrome-trace / progress-stream companions. */

#include <gtest/gtest.h>

#include <cstdlib>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exp/experiment.h"
#include "obs/host_counters.h"
#include "obs/json.h"
#include "obs/span.h"
#include "env_util.h"

using namespace btbsim;
using btbsim::test::ScopedEnv;

namespace {

// The collector singleton reads its knobs once, at first use — pin them
// before any test touches it: a tiny ring so overflow is cheap to
// trigger, and the no-perf fallback so counter expectations are the
// same on locked-down CI runners and on dev machines with perf access.
const bool g_env_init = [] {
    ::setenv("BTBSIM_SPAN_CAP", "64", 1);
    ::setenv("BTBSIM_HOST_COUNTERS", "0", 1);
    ::setenv("BTBSIM_SPANS", "1", 1);
    return true;
}();

obs::SpanCollector &
collector()
{
    (void)g_env_init;
    obs::SpanCollector &c = obs::SpanCollector::instance();
    c.reset();
    c.setEnabled(true);
    return c;
}

} // namespace

TEST(Span, NestingBuildsSlashJoinedPaths)
{
    obs::SpanCollector &c = collector();
    {
        obs::ObsSpan a("alpha");
        EXPECT_EQ(c.currentPath(), "alpha");
        {
            obs::ObsSpan b("beta");
            EXPECT_EQ(c.currentPath(), "alpha/beta");
        }
        {
            obs::ObsSpan g("gamma");
            EXPECT_EQ(c.currentPath(), "alpha/gamma");
        }
    }
    EXPECT_EQ(c.currentPath(), "");

    const obs::ProfileBlock p = c.profile();
    ASSERT_EQ(p.spans.count("alpha"), 1u);
    ASSERT_EQ(p.spans.count("alpha/beta"), 1u);
    ASSERT_EQ(p.spans.count("alpha/gamma"), 1u);
    EXPECT_EQ(p.spans.at("alpha").count, 1u);
    EXPECT_EQ(p.total_spans, 3u);
    EXPECT_EQ(p.dropped, 0u);
}

TEST(Span, UnwindsOnException)
{
    obs::SpanCollector &c = collector();
    try {
        obs::ObsSpan outer("throwing_region");
        obs::ObsSpan inner("inner");
        throw std::runtime_error("boom");
    } catch (const std::runtime_error &) {
    }
    // Unwinding ran both destructors: the stack is balanced and both
    // spans were recorded with the time spent until the throw.
    EXPECT_EQ(c.currentPath(), "");
    const obs::ProfileBlock p = c.profile();
    EXPECT_EQ(p.spans.at("throwing_region").count, 1u);
    EXPECT_EQ(p.spans.at("throwing_region/inner").count, 1u);
}

TEST(Span, RingOverflowCountsDroppedButAggregatesEverything)
{
    obs::SpanCollector &c = collector();
    constexpr std::uint64_t kSpans = 100; // Ring capacity pinned to 64.
    for (std::uint64_t i = 0; i < kSpans; ++i)
        obs::ObsSpan span("overflow_probe");

    EXPECT_EQ(c.dropped(), kSpans - 64);
    const obs::ProfileBlock p = c.profile();
    EXPECT_EQ(p.dropped, kSpans - 64);
    // The aggregate table never loses spans to ring eviction.
    EXPECT_EQ(p.spans.at("overflow_probe").count, kSpans);
    EXPECT_EQ(p.total_spans, kSpans);
}

TEST(Span, DisabledRecordsNothing)
{
    obs::SpanCollector &c = collector();
    c.setEnabled(false);
    {
        obs::ObsSpan span("invisible");
    }
    c.setEnabled(true);
    EXPECT_EQ(c.profile().total_spans, 0u);
}

TEST(Span, MarkAggregateSinceYieldsOnlyTheDelta)
{
    obs::SpanCollector &c = collector();
    {
        obs::ObsSpan span("before_mark");
    }
    const obs::SpanCollector::ThreadMark m = c.mark();
    for (int i = 0; i < 3; ++i)
        obs::ObsSpan span("after_mark");

    const obs::SpanProfile d = c.aggregateSince(m);
    ASSERT_EQ(d.count("after_mark"), 1u);
    EXPECT_EQ(d.at("after_mark").count, 3u);
    EXPECT_EQ(d.count("before_mark"), 0u);
}

TEST(Span, WorkerThreadsRecordIndependently)
{
    obs::SpanCollector &c = collector();
    // The experiment engine's worker pool is the real multi-thread
    // client: a stub simulate keeps it hermetic while the engine's own
    // point/execute spans record on each worker thread.
    std::vector<CpuConfig> configs(2);
    configs[0].btb = BtbConfig::ibtb(16);
    configs[1].btb = BtbConfig::ibtb(14);
    std::vector<WorkloadSpec> workloads(2);
    workloads[0].name = "wl0";
    workloads[1].name = "wl1";

    exp::ExperimentOptions opt;
    opt.run.threads = 4;
    opt.retries = 0;
    opt.simulate = [](const CpuConfig &cfg, const WorkloadSpec &w,
                      const RunOptions &) {
        obs::ObsSpan span("stub_sim");
        SimStats s;
        s.config = cfg.btb.name();
        s.workload = w.name;
        s.ipc = 1.0;
        return s;
    };

    const exp::ExperimentResult res = exp::runExperiment(
        "span_test_sweep", configs, workloads, std::move(opt));
    ASSERT_TRUE(res.allOk());

    const obs::ProfileBlock p = c.profile();
    EXPECT_EQ(p.spans.at("sweep").count, 1u);
    EXPECT_EQ(p.spans.at("point").count, 4u);
    EXPECT_EQ(p.spans.at("point/execute").count, 4u);
    EXPECT_EQ(p.spans.at("point/execute/stub_sim").count, 4u);
    EXPECT_GE(p.threads, 2u); // Main (sweep) plus at least one worker.

    // The per-run SimStats slice is attached by runner::runOne(), which
    // the injected stub bypasses — stub stats carry no span_profile.
    for (const SimStats &s : res.stats())
        EXPECT_TRUE(s.span_profile.empty())
            << s.config << "/" << s.workload;
}

TEST(Span, RunOneAttachesPerRunSlice)
{
    obs::SpanCollector &c = collector();
    CpuConfig cfg;
    WorkloadSpec spec;
    spec.name = "span_slice_wl";

    RunOptions opt;
    opt.warmup = 1000;
    opt.measure = 2000;

    const SimStats s = runOne(cfg, spec, opt);

    // runOne() diffs the thread's aggregate table around the run, so
    // the stats carry exactly this run's phases (the enclosing "run"
    // span closes after the diff and is deliberately absent).
    ASSERT_EQ(s.span_profile.count("run/init"), 1u);
    ASSERT_EQ(s.span_profile.count("run/warmup"), 1u);
    ASSERT_EQ(s.span_profile.count("run/measure"), 1u);
    EXPECT_EQ(s.span_profile.at("run/measure").count, 1u);
    EXPECT_GT(s.span_profile.at("run/measure").wall_ns, 0u);
    EXPECT_FALSE(s.host_counters_available); // Forced fallback (env).

    // The collector's global table additionally holds the run span.
    EXPECT_EQ(c.profile().spans.count("run"), 1u);
}

TEST(Span, ChromeTraceIsStructurallyValidJson)
{
    obs::SpanCollector &c = collector();
    {
        obs::ObsSpan outer("trace_outer");
        obs::ObsSpan inner("trace_inner");
    }
    std::ostringstream os;
    c.writeChromeTrace(os);

    // The dump must parse as JSON and carry the Chrome trace-event
    // structure Perfetto expects: complete ("X") events with
    // microsecond ts/dur plus thread-name metadata ("M").
    const obs::JsonValue root = obs::parseJson(os.str());
    EXPECT_EQ(root.at("displayTimeUnit").asString(), "ns");
    EXPECT_EQ(root.at("otherData").at("generator").asString(), "btbsim");

    const auto &events = root.at("traceEvents").array;
    ASSERT_GE(events.size(), 3u); // 1 metadata + 2 spans.
    std::size_t complete = 0, meta = 0;
    bool saw_inner = false;
    for (const obs::JsonValue &e : events) {
        const std::string ph = e.at("ph").asString();
        ASSERT_TRUE(e.at("pid").isNumber());
        ASSERT_TRUE(e.at("tid").isNumber());
        if (ph == "M") {
            ++meta;
            EXPECT_EQ(e.at("name").asString(), "thread_name");
        } else {
            ASSERT_EQ(ph, "X");
            ++complete;
            EXPECT_TRUE(e.at("ts").isNumber());
            EXPECT_GE(e.at("dur").asNumber(), 0.0);
            if (e.at("name").asString() == "trace_outer/trace_inner")
                saw_inner = true;
        }
    }
    EXPECT_GE(meta, 1u);
    EXPECT_EQ(complete, 2u);
    EXPECT_TRUE(saw_inner);
}

TEST(HostCounters, FallbackCarriesTaskClockOnly)
{
    // want=false is exactly the BTBSIM_HOST_COUNTERS=0 / EPERM path.
    obs::HostCounters hc(false);
    EXPECT_FALSE(hc.available());

    const obs::HostCounters::Values v1 = hc.read();
    EXPECT_EQ(v1.cycles, 0u);
    EXPECT_EQ(v1.instructions, 0u);
    EXPECT_EQ(v1.branch_misses, 0u);
    EXPECT_EQ(v1.cache_misses, 0u);

    // Thread CPU time needs no privileges and keeps advancing.
    volatile std::uint64_t sink = 0;
    for (int i = 0; i < 2'000'000; ++i)
        sink = sink + static_cast<std::uint64_t>(i);
    const obs::HostCounters::Values v2 = hc.read();
    EXPECT_GE(v2.task_clock_ns, v1.task_clock_ns);
    EXPECT_GT(v2.task_clock_ns, 0u);
}

TEST(HostCounters, EnvKnobGatesTheAttempt)
{
    {
        ScopedEnv e("BTBSIM_HOST_COUNTERS", "0");
        EXPECT_FALSE(obs::HostCounters::wantedFromEnv());
    }
    {
        ScopedEnv e("BTBSIM_HOST_COUNTERS", "1");
        EXPECT_TRUE(obs::HostCounters::wantedFromEnv());
    }
    {
        ScopedEnv e("BTBSIM_HOST_COUNTERS", nullptr);
        EXPECT_TRUE(obs::HostCounters::wantedFromEnv());
    }
}

TEST(Span, CollectorReportsNoCountersInForcedFallback)
{
    // g_env_init pinned BTBSIM_HOST_COUNTERS=0 before the collector was
    // born, so the whole-process profile must record the degradation.
    obs::SpanCollector &c = collector();
    {
        obs::ObsSpan span("fallback_probe");
    }
    EXPECT_FALSE(c.countersAvailable());
    const obs::ProfileBlock p = c.profile();
    EXPECT_FALSE(p.counters_available);
    const obs::SpanAgg &a = p.spans.at("fallback_probe");
    EXPECT_EQ(a.cycles, 0u);
    EXPECT_EQ(a.instructions, 0u);
    EXPECT_GT(a.wall_ns, 0u); // Timestamps still work.
}
