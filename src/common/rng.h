/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in btbsim (workload generation, branch bias
 * draws, replacement tie-breaking) flows through this generator so that a
 * given seed reproduces a bit-identical simulation.
 */

#ifndef BTBSIM_COMMON_RNG_H
#define BTBSIM_COMMON_RNG_H

#include <cstdint>

namespace btbsim {

/**
 * xoshiro256** 1.0 by Blackman and Vigna (public domain), seeded through
 * splitmix64. Small, fast, and high quality for simulation purposes.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next64();

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t nextBounded(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t nextRange(std::int64_t lo, std::int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability @p p of returning true. */
    bool nextBool(double p);

    /**
     * Geometric-ish draw: number of successes before failure with
     * continuation probability @p p, clamped to @p max.
     */
    unsigned nextGeometric(double p, unsigned max);

    /** Fork an independent stream (used to decorrelate sub-generators). */
    Rng fork();

  private:
    std::uint64_t s_[4];
};

} // namespace btbsim

#endif // BTBSIM_COMMON_RNG_H
