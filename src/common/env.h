/**
 * @file
 * Facade over every BTBSIM_* environment knob. All env reads in the
 * library go through here, so the full knob surface is enumerable: each
 * knob is registered once in kKnobs with its default and a one-line
 * description, and `btbsim-stats env` dumps the table (name, default,
 * current value). Adding a getenv() call anywhere else is a bug — add a
 * Knob entry instead (env_test cross-checks the table against the
 * accessors).
 */

#ifndef BTBSIM_COMMON_ENV_H
#define BTBSIM_COMMON_ENV_H

#include <cstdint>
#include <string>
#include <vector>

namespace btbsim::env {

/** One registered environment knob. */
struct Knob
{
    const char *name;        ///< Full variable name ("BTBSIM_WARMUP").
    const char *fallback;    ///< Default rendered for humans ("500000").
    const char *description; ///< One line, for the env dump / README.
};

/** Every knob the simulator honours, in table order. */
const std::vector<Knob> &knobs();

/** True when @p name is a registered knob. */
bool isKnown(const std::string &name);

/** Raw value: the variable's value, or "" when unset/empty. */
std::string raw(const char *name);

/** True when the variable is set to a non-empty value. */
bool isSet(const char *name);

/** Unsigned integer knob; @p fallback when unset/empty. */
std::uint64_t u64(const char *name, std::uint64_t fallback);

/** Flag semantics: set, non-empty and not "0". */
bool flag(const char *name);

/** True when the variable is explicitly set to "0" (opt-out knobs). */
bool disabled(const char *name);

/** String knob; @p fallback when unset/empty. */
std::string str(const char *name, const std::string &fallback = "");

/**
 * Output-path semantics shared by BTBSIM_JSON_OUT / BTBSIM_CSV_OUT:
 * unset/empty/"0" -> "" (off), "1"/"true" -> @p default_path, anything
 * else is the path itself.
 */
std::string outPath(const char *name, const std::string &default_path);

} // namespace btbsim::env

#endif // BTBSIM_COMMON_ENV_H
