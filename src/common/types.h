/**
 * @file
 * Fundamental scalar types shared across the simulator.
 */

#ifndef BTBSIM_COMMON_TYPES_H
#define BTBSIM_COMMON_TYPES_H

#include <cstdint>

namespace btbsim {

/** A byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A simulation cycle count. */
using Cycle = std::uint64_t;

/** Instruction size of the abstract fixed-length ISA (ARMv8-like). */
inline constexpr Addr kInstBytes = 4;

/** Cache line size, also the region size of the default R-BTB. */
inline constexpr Addr kLineBytes = 64;

/** Align @p a down to a multiple of @p align (power of two). */
constexpr Addr
alignDown(Addr a, Addr align)
{
    return a & ~(align - 1);
}

/** Align @p a up to a multiple of @p align (power of two). */
constexpr Addr
alignUp(Addr a, Addr align)
{
    return (a + align - 1) & ~(align - 1);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPow2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace btbsim

#endif // BTBSIM_COMMON_TYPES_H
