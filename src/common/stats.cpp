#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace btbsim {

double
Histogram::mean() const
{
    if (total_ == 0)
        return 0.0;
    double sum = 0.0;
    for (std::size_t i = 0; i < buckets_.size(); ++i)
        sum += static_cast<double>(i) * static_cast<double>(buckets_[i]);
    return sum / static_cast<double>(total_);
}

void
Histogram::merge(const Histogram &other)
{
    if (other.buckets_.size() > buckets_.size())
        buckets_.resize(other.buckets_.size(), 0);
    for (std::size_t i = 0; i < other.buckets_.size(); ++i)
        buckets_[i] += other.buckets_[i];
    total_ += other.total_;
}

double
geomean(const std::vector<double> &values)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double v : values) {
        if (v > 0.0) {
            log_sum += std::log(v);
            ++n;
        }
    }
    if (n == 0)
        return 0.0;
    return std::exp(log_sum / static_cast<double>(n));
}

double
vecMin(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::min_element(values.begin(), values.end());
}

double
vecMax(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    return *std::max_element(values.begin(), values.end());
}

} // namespace btbsim
