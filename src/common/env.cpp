#include "common/env.h"

#include <cstdlib>

namespace btbsim::env {

const std::vector<Knob> &
knobs()
{
    // One entry per knob the library reads anywhere. Grouped by layer.
    static const std::vector<Knob> table = {
        // sim/runner
        {"BTBSIM_WARMUP", "500000", "Warmup instructions per run."},
        {"BTBSIM_MEASURE", "1000000", "Measured instructions per run."},
        {"BTBSIM_TRACES", "6", "Workloads taken from the server suite."},
        {"BTBSIM_THREADS", "0",
         "Worker threads for sweeps (0 = hardware concurrency)."},
        // core/soa_table + core/way_pred (probe path)
        {"BTBSIM_SIMD", "auto",
         "Probe kernel for the SoA set tables: auto (widest supported), "
         "scalar, sse, avx2; unsupported choices fall back to scalar."},
        {"BTBSIM_WAYPRED", "off",
         "Way prediction for the simulated BTB levels: off, utag "
         "(hashed-tag candidate filter), mru (last-used way first); "
         "counters appear under btb.waypred.*."},
        // exp/experiment
        {"BTBSIM_RUN_CACHE", "results/cache",
         "Content-addressed run-result store; a path, or 0 to disable."},
        {"BTBSIM_RESUME", "0",
         "Resume an interrupted sweep from its journal (non-0 enables)."},
        {"BTBSIM_RETRIES", "2",
         "Extra attempts for a failed sweep point (bounded backoff)."},
        {"BTBSIM_MAX_FAILURES", "0",
         "Abort scheduling after this many failed points (0 = no limit; "
         "remaining points report status skipped)."},
        // obs/sampler
        {"BTBSIM_SAMPLE_INTERVAL", "100000",
         "Cycles per time-series sample; 0 disables sampling."},
        // obs/span + obs/host_counters + obs/progress
        {"BTBSIM_SPANS", "1",
         "0 disables the host-time span profiler (on by default; span "
         "sites are phase-grained, not per-instruction)."},
        {"BTBSIM_SPAN_CAP", "65536",
         "Per-thread span-record ring capacity for the Chrome trace "
         "(aggregates are exact regardless)."},
        {"BTBSIM_SPAN_OUT", "",
         "Chrome-trace span dump (Perfetto-loadable): 1/true = "
         "results/spans/<bench>.trace.json, else a path; 0/empty "
         "disables."},
        {"BTBSIM_HOST_COUNTERS", "1",
         "0 skips perf_event_open so span profiles carry timestamps "
         "only (auto-fallback when the kernel denies perf access)."},
        {"BTBSIM_PROGRESS_FD", "",
         "File descriptor number for the JSONL sweep-progress stream; "
         "empty disables."},
        {"BTBSIM_PROGRESS_FILE", "",
         "Append-mode file for the JSONL sweep-progress stream "
         "(BTBSIM_PROGRESS_FD wins when both are set)."},
        // obs/tracer + sim/runner trace dump; also the .btbt replay dir
        {"BTBSIM_TRACE", "0", "Non-0 enables the pipeline event tracer."},
        {"BTBSIM_TRACE_CAP", "65536",
         "Event-tracer ring-buffer capacity (events kept per run)."},
        {"BTBSIM_TRACE_DIR", "results/traces",
         "Directory for per-run .jsonl event dumps, and the directory "
         "searched for recorded .btbt workload traces to replay."},
        // bench output
        {"BTBSIM_JSON_OUT", "",
         "Result JSON: 1/true = results/<bench>.json, else a path; "
         "0/empty disables."},
        {"BTBSIM_CSV_OUT", "",
         "Per-run CSV: same semantics as BTBSIM_JSON_OUT."},
        // check/checker + check/fault
        {"BTBSIM_CHECK", "0",
         "Non-0 wraps every BTB in the differential checker (reference "
         "model + structural invariants; aborts on divergence)."},
        {"BTBSIM_FAULT", "",
         "Name of the fault point to arm (builds configured with "
         "-DBTBSIM_FAULT_POINTS=ON only); empty disables."},
        // traceio/trace_reader
        {"BTBSIM_REPLAY_MMAP", "1",
         "0 = buffered reads instead of mmap for .btbt replay."},
        {"BTBSIM_REPLAY_ASYNC", "1",
         "0 = disable background chunk decode for oversized traces."},
        {"BTBSIM_REPLAY_CACHE_MB", "256",
         "Decoded-chunk cache budget for replay; 0 streams "
         "chunk-at-a-time."},
        {"BTBSIM_REPLAY_SHARED", "",
         "1/0 forces the process-wide shared replay-chunk cache on/off; "
         "empty follows the shard pool (on once BTBSIM_SHARDS creates "
         "one)."},
        // serve (shard pool + daemon)
        {"BTBSIM_SHARDS", "0",
         "Worker shards for sweeps: N > 0 routes bench/tool sweeps "
         "through a persistent in-process shard pool sharing one "
         "replay-chunk cache; 0 keeps per-sweep threads."},
        {"BTBSIM_SERVE_SOCKET", "results/btbsim-serve.sock",
         "Unix socket path of the btbsim-serve daemon (also the "
         "btbsim-client default)."},
    };
    return table;
}

bool
isKnown(const std::string &name)
{
    for (const Knob &k : knobs())
        if (name == k.name)
            return true;
    return false;
}

std::string
raw(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : std::string();
}

bool
isSet(const char *name)
{
    const char *v = std::getenv(name);
    return v && *v;
}

std::uint64_t
u64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

bool
flag(const char *name)
{
    const std::string v = raw(name);
    return !v.empty() && v != "0";
}

bool
disabled(const char *name)
{
    return raw(name) == "0";
}

std::string
str(const char *name, const std::string &fallback)
{
    const std::string v = raw(name);
    return v.empty() ? fallback : v;
}

std::string
outPath(const char *name, const std::string &default_path)
{
    const std::string v = raw(name);
    if (v.empty() || v == "0")
        return {};
    if (v == "1" || v == "true")
        return default_path;
    return v;
}

} // namespace btbsim::env
