/**
 * @file
 * Fixed-width saturating counter, the workhorse of prediction hardware.
 */

#ifndef BTBSIM_COMMON_SAT_COUNTER_H
#define BTBSIM_COMMON_SAT_COUNTER_H

#include <cstdint>

namespace btbsim {

/**
 * Unsigned saturating counter with a compile-time bit width.
 *
 * Used for MB-BTB stability counters, replacement state and simple
 * confidence estimation.
 */
template <unsigned Bits>
class SatCounter
{
    static_assert(Bits >= 1 && Bits <= 31, "unsupported counter width");

  public:
    static constexpr std::uint32_t max() { return (1u << Bits) - 1; }

    constexpr SatCounter() = default;
    constexpr explicit SatCounter(std::uint32_t v) : value_(v > max() ? max() : v) {}

    std::uint32_t value() const { return value_; }
    bool saturated() const { return value_ == max(); }

    /** Increment, saturating at the maximum. Returns the new value. */
    std::uint32_t
    increment()
    {
        if (value_ < max())
            ++value_;
        return value_;
    }

    /** Decrement, saturating at zero. Returns the new value. */
    std::uint32_t
    decrement()
    {
        if (value_ > 0)
            --value_;
        return value_;
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** Force to the saturated value. */
    void saturate() { value_ = max(); }

  private:
    std::uint32_t value_ = 0;
};

/**
 * Signed saturating counter in [-2^(Bits-1), 2^(Bits-1) - 1], used for
 * perceptron weights.
 */
template <unsigned Bits>
class SignedSatCounter
{
    static_assert(Bits >= 2 && Bits <= 31, "unsupported counter width");

  public:
    static constexpr std::int32_t max() { return (1 << (Bits - 1)) - 1; }
    static constexpr std::int32_t min() { return -(1 << (Bits - 1)); }

    constexpr SignedSatCounter() = default;

    std::int32_t value() const { return value_; }

    /** Add @p delta (usually +1/-1), saturating at both rails. */
    void
    add(std::int32_t delta)
    {
        std::int32_t v = value_ + delta;
        if (v > max())
            v = max();
        if (v < min())
            v = min();
        value_ = v;
    }

  private:
    std::int32_t value_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_COMMON_SAT_COUNTER_H
