/**
 * @file
 * Lightweight statistics primitives: named counters, running averages,
 * histograms, and the geometric-mean helpers the paper's figures use.
 */

#ifndef BTBSIM_COMMON_STATS_H
#define BTBSIM_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace btbsim {

/** Running mean without storing samples. */
class RunningMean
{
  public:
    void
    add(double v, double weight = 1.0)
    {
        sum_ += v * weight;
        count_ += weight;
    }

    double mean() const { return count_ > 0 ? sum_ / count_ : 0.0; }
    double count() const { return count_; }
    double sum() const { return sum_; }

    /** Pool another running mean into this one. */
    void
    merge(const RunningMean &other)
    {
        sum_ += other.sum_;
        count_ += other.count_;
    }

  private:
    double sum_ = 0.0;
    double count_ = 0.0;
};

/** Fixed-bucket histogram over small non-negative integers. Values at or
 *  beyond the last bucket clamp into it (overflow bucket). */
class Histogram
{
  public:
    /** @p buckets is clamped to at least 1 so add() always has a valid
     *  overflow bucket. */
    explicit Histogram(std::size_t buckets = 64)
        : buckets_(buckets > 0 ? buckets : 1, 0)
    {}

    void
    add(std::size_t v)
    {
        if (v >= buckets_.size())
            v = buckets_.size() - 1;
        ++buckets_[v];
        ++total_;
    }

    std::uint64_t count(std::size_t v) const { return buckets_.at(v); }
    std::uint64_t total() const { return total_; }
    std::size_t bucketCount() const { return buckets_.size(); }
    const std::vector<std::uint64_t> &buckets() const { return buckets_; }

    /** Mean of the recorded values (overflow bucket counted at its index). */
    double mean() const;

    /** Add another histogram's counts bucket-wise. A wider @p other grows
     *  this histogram; counts keep their bucket index. */
    void merge(const Histogram &other);

  private:
    std::vector<std::uint64_t> buckets_;
    std::uint64_t total_ = 0;
};

/**
 * Geometric mean over the strictly positive entries of @p values;
 * non-positive entries are skipped (log is undefined for them) so a
 * single zero IPC cannot poison a whole reported table. Returns 0 when
 * no positive entry exists.
 */
double geomean(const std::vector<double> &values);

/** Minimum / maximum helpers that tolerate empty input (returning 0). */
double vecMin(const std::vector<double> &values);
double vecMax(const std::vector<double> &values);

/**
 * A tiny registry mapping stat names to counter values, used by modules to
 * expose internal occurrence counts without hard-coding a schema.
 */
class StatSet
{
  public:
    std::uint64_t &operator[](const std::string &name) { return counters_[name]; }

    std::uint64_t
    get(const std::string &name) const
    {
        auto it = counters_.find(name);
        return it == counters_.end() ? 0 : it->second;
    }

    const std::map<std::string, std::uint64_t> &all() const { return counters_; }

    void
    merge(const StatSet &other)
    {
        for (const auto &[k, v] : other.counters_)
            counters_[k] += v;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace btbsim

#endif // BTBSIM_COMMON_STATS_H
