/**
 * @file
 * Heterogeneous BTB hierarchy (Section 3.6.2, left as future work by the
 * paper): a block-organized L1 — the organization best suited for 0-cycle
 * turnaround — backed by a region-organized L2, which stores each branch
 * exactly once and therefore wastes none of its capacity on the metadata
 * redundancy a homogeneous B-BTB hierarchy suffers from.
 *
 * On an L1 miss, the region entries covering the missing block are read
 * from the L2 and a block entry is synthesized into the L1 (charging the
 * usual L2 taken-branch penalty). Updates train both levels: the L1 like
 * a Block BTB (with optional entry splitting), the L2 like a Region BTB.
 */

#ifndef BTBSIM_CORE_HETERO_H
#define BTBSIM_CORE_HETERO_H

#include <vector>

#include "core/btb_org.h"

namespace btbsim {

class HeteroBtb : public BtbOrg
{
  public:
    explicit HeteroBtb(const BtbConfig &cfg);

    int beginAccess(Addr pc, PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    void prefill(const Instruction &br) override;
    OccupancySample sampleOccupancy() const override;
    const BtbConfig &config() const override { return cfg_; }

    /** Branch slots per L2 region entry. */
    static constexpr unsigned kRegionSlots = 4;

  private:
    struct Slot
    {
        std::uint32_t offset = 0;
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
        std::uint64_t tick = 0;
    };

    /** L1 payload: one dynamic block (B-BTB style). */
    struct BlockEntry
    {
        std::vector<Slot> slots; ///< Sorted by offset.
        std::uint32_t end_bytes = 0;
        bool split = false;
    };

    /** L2 payload: one aligned region (R-BTB style, no redundancy). */
    struct RegionEntry
    {
        std::vector<Slot> slots;
    };

    BtbConfig cfg_;
    SoaSetTable<BlockEntry> l1_;
    SoaSetTable<RegionEntry> l2_;
    std::uint64_t tick_ = 0;

    // Update-side cursor (start of the dynamic block being trained).
    Addr cur_block_ = 0;
    bool cur_valid_ = false;

    Addr reachBytes() const { return Addr{cfg_.reach_instrs} * kInstBytes; }
    Addr regionBase(Addr pc) const { return alignDown(pc, cfg_.region_bytes); }

    std::uint32_t blockEnd(Addr start) const;
    void normalizeCursor(Addr pc);
    BlockEntry *synthesizeFromL2(Addr start);
    void insertIntoBlock(Addr block, Addr pc, BranchClass type, Addr target);
    void insertIntoRegion(Addr pc, BranchClass type, Addr target);
};

} // namespace btbsim

#endif // BTBSIM_CORE_HETERO_H
