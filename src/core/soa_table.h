/**
 * @file
 * Structure-of-arrays set-associative table with true-LRU replacement —
 * the probe-path successor to the AoS SetAssocTable. Shared by the BTB
 * organizations, caches and TLBs.
 *
 * Layout: one packed tag word per way (8B lanes, per-set stride padded
 * to a multiple of 4 so a set's tags span whole SIMD vectors — 8 ways =
 * one 64B cache line), a per-set 32-bit validity mask, and a parallel
 * LRU-stamp array. Payloads live in their own dense array so a probe
 * never drags entry bytes through the cache.
 *
 * A probe is a branchless word-compare over the whole set: portable
 * SWAR by default, SSE4.1/AVX2 kernels under runtime feature detection
 * (BTBSIM_SIMD selects; see resolveSimd()). Probing never touches LRU —
 * recency is advanced only by the explicit touch()/fill() mutators on
 * SetView, so lookup side effects are in the caller's hands.
 *
 * Replacement contract (bit-compatible with the old table): victim() is
 * the lowest-index invalid way if any, else the way with the strictly
 * smallest LRU stamp (stamps are unique per table, so order is total);
 * fill() counts an eviction when it overwrites a valid way holding a
 * different key and resets the payload to Entry{}.
 */

#ifndef BTBSIM_CORE_SOA_TABLE_H
#define BTBSIM_CORE_SOA_TABLE_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "core/way_pred.h"

namespace btbsim {

/** Probe kernel flavor; resolved once per table construction. */
enum class SimdKind : std::uint8_t { kScalar, kSse, kAvx2 };

/**
 * Pick the probe kernel from BTBSIM_SIMD (auto/scalar/sse/avx2) clamped
 * to what the host CPU supports; "auto" takes the widest available.
 */
SimdKind resolveSimd();

/** Human-readable kernel name ("scalar"/"sse"/"avx2"). */
const char *simdKindName(SimdKind kind);

namespace detail {

/** SSE4.1 tag compare; @p lanes must be a multiple of 2. */
std::uint32_t eqMaskSse(const std::uint64_t *tags, unsigned lanes,
                        std::uint64_t key);

/** AVX2 tag compare; @p lanes must be a multiple of 4. */
std::uint32_t eqMaskAvx2(const std::uint64_t *tags, unsigned lanes,
                         std::uint64_t key);

} // namespace detail

/** Portable SWAR tag compare: bit w set iff tags[w] == key. */
inline std::uint32_t
eqMaskScalar(const std::uint64_t *tags, unsigned lanes, std::uint64_t key)
{
    std::uint32_t m = 0;
    for (unsigned w = 0; w < lanes; ++w)
        m |= static_cast<std::uint32_t>(tags[w] == key) << w;
    return m;
}

/** Dispatch to the kernel selected at table construction. */
inline std::uint32_t
eqMask(SimdKind kind, const std::uint64_t *tags, unsigned lanes,
       std::uint64_t key)
{
    switch (kind) {
    case SimdKind::kSse:
        return detail::eqMaskSse(tags, lanes, key);
    case SimdKind::kAvx2:
        return detail::eqMaskAvx2(tags, lanes, key);
    case SimdKind::kScalar:
        break;
    }
    return eqMaskScalar(tags, lanes, key);
}

/**
 * SoA set-associative container keyed by address. @p Entry must be
 * default constructible. At most 32 ways (validity is one 32-bit word).
 *
 * All per-set operations go through the SetView / ConstSetView handles:
 *
 *   auto set = table.set(key);          // index computed once
 *   int w = set.probe(key);             // -1 on miss; no LRU effect
 *   if (w >= 0) { set.touch(w); use(set.entry(w)); }
 *   else        { Entry &e = set.fill(set.victim(), key); ... }
 *
 * @tparam Entry payload type.
 */
template <typename Entry>
class SoaSetTable
{
  public:
    /**
     * @param sets Number of sets (any positive value; non-power-of-two
     *             is handled with modulo indexing).
     * @param ways Associativity (1..32).
     * @param index_shift Right shift applied to the key before set
     *                    selection (e.g., 6 for 64B-granular keys).
     * @param sink When given a StatSet, attaches the BTBSIM_WAYPRED way
     *             predictor to this table's probes (BTB structures only).
     */
    SoaSetTable(unsigned sets, unsigned ways, unsigned index_shift,
                WayPredSink sink = {})
        : sets_(sets), ways_(ways), shift_(index_shift),
          stride_((ways + 3u) & ~3u),
          full_mask_(ways >= 32 ? ~std::uint32_t{0}
                                : (std::uint32_t{1} << ways) - 1),
          pow2_sets_(std::has_single_bit(sets)), simd_(resolveSimd()),
          tags_(static_cast<std::size_t>(sets) * stride_, 0),
          lru_(static_cast<std::size_t>(sets) * stride_, 0),
          valid_(sets, 0), entries_(static_cast<std::size_t>(sets) * ways)
    {
        assert(sets >= 1 && ways >= 1 && ways <= 32);
        if (sink.stats) {
            const WayPredMode mode = wayPredModeFromEnv();
            if (mode != WayPredMode::kOff)
                pred_ = std::make_unique<WayPredictor>(mode, sets, ways,
                                                       sink);
        }
    }

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::size_t
    capacity() const
    {
        return static_cast<std::size_t>(sets_) * ways_;
    }
    SimdKind simdKind() const { return simd_; }
    const WayPredictor *predictor() const { return pred_.get(); }

    /** Set index @p key maps to (external residency modeling). */
    std::size_t
    setIndex(Addr key) const
    {
        const Addr s = key >> shift_;
        return pow2_sets_ ? static_cast<std::size_t>(s & (sets_ - 1))
                          : static_cast<std::size_t>(s % sets_);
    }

    class ConstSetView;

    /** Mutable handle on one set; cheap to copy, never outlives the
     *  table. Way indices are 0..ways()-1. */
    class SetView
    {
      public:
        unsigned ways() const { return t_->ways_; }
        std::size_t index() const { return set_; }

        /** Way holding @p key, or -1. Never advances LRU. */
        int
        probe(Addr key) const
        {
            return t_->probeSet(set_, key);
        }

        bool
        valid(unsigned w) const
        {
            return (t_->valid_[set_] >> w) & 1u;
        }
        Addr key(unsigned w) const { return tags()[w]; }
        /** LRU stamp; larger = more recently used (0 = never). */
        std::uint64_t stamp(unsigned w) const { return lru()[w]; }

        Entry &
        entry(unsigned w)
        {
            return t_->entries_[set_ * t_->ways_ + w];
        }
        const Entry &
        entry(unsigned w) const
        {
            return t_->entries_[set_ * t_->ways_ + w];
        }

        /** Mark way @p w most recently used. */
        void
        touch(unsigned w)
        {
            lru()[w] = ++t_->tick_;
            if (WayPredictor *p = t_->pred_.get())
                p->onTouch(set_, w);
        }

        /** Replacement choice: lowest-index invalid way, else LRU way.
         *  Pure selection — no state changes. */
        int
        victim() const
        {
            const std::uint32_t inv = ~t_->valid_[set_] & t_->full_mask_;
            if (inv)
                return std::countr_zero(inv);
            const std::uint64_t *l = lru();
            unsigned best = 0;
            for (unsigned w = 1; w < t_->ways_; ++w)
                if (l[w] < l[best])
                    best = w;
            return static_cast<int>(best);
        }

        /**
         * Install @p key in way @p w: counts an eviction when a valid
         * different-key entry is overwritten, stamps recency, and
         * returns the payload reset to Entry{}.
         */
        Entry &
        fill(unsigned w, Addr key)
        {
            std::uint32_t &vm = t_->valid_[set_];
            std::uint64_t &tag = tags()[w];
            if (((vm >> w) & 1u) && tag != key)
                ++t_->evictions_;
            vm |= std::uint32_t{1} << w;
            tag = key;
            lru()[w] = ++t_->tick_;
            if (WayPredictor *p = t_->pred_.get())
                p->onFill(set_, w, key);
            Entry &e = entry(w);
            e = Entry{};
            return e;
        }

        /** Drop way @p w (tag/stamp bytes are retained but dead). */
        void
        invalidate(unsigned w)
        {
            t_->valid_[set_] &= ~(std::uint32_t{1} << w);
        }

      private:
        friend class SoaSetTable;
        friend class ConstSetView;
        SetView(SoaSetTable *t, std::size_t set) : t_(t), set_(set) {}

        std::uint64_t *tags() const
        {
            return t_->tags_.data() + set_ * t_->stride_;
        }
        std::uint64_t *lru() const
        {
            return t_->lru_.data() + set_ * t_->stride_;
        }

        SoaSetTable *t_;
        std::size_t set_;
    };

    /** Read-only set handle (residency/occupancy modeling, shadows). */
    class ConstSetView
    {
      public:
        unsigned ways() const { return t_->ways_; }
        std::size_t index() const { return set_; }

        /** Way holding @p key, or -1. Never advances LRU. */
        int
        probe(Addr key) const
        {
            return t_->probeSet(set_, key);
        }

        bool
        valid(unsigned w) const
        {
            return (t_->valid_[set_] >> w) & 1u;
        }
        Addr
        key(unsigned w) const
        {
            return t_->tags_[set_ * t_->stride_ + w];
        }
        std::uint64_t
        stamp(unsigned w) const
        {
            return t_->lru_[set_ * t_->stride_ + w];
        }
        const Entry &
        entry(unsigned w) const
        {
            return t_->entries_[set_ * t_->ways_ + w];
        }

      private:
        friend class SoaSetTable;
        ConstSetView(const SoaSetTable *t, std::size_t set)
            : t_(t), set_(set)
        {}

        const SoaSetTable *t_;
        std::size_t set_;
    };

    SetView set(Addr key) { return SetView(this, setIndex(key)); }
    SetView setAt(std::size_t index) { return SetView(this, index); }
    ConstSetView
    set(Addr key) const
    {
        return ConstSetView(this, setIndex(key));
    }
    ConstSetView
    setAt(std::size_t index) const
    {
        return ConstSetView(this, index);
    }

    /** Invalidate everything (tags/stamps retained but dead). */
    void
    clear()
    {
        for (std::uint32_t &v : valid_)
            v = 0;
    }

    /** Visit every valid entry in set-major, way order:
     *  f(key, const Entry&). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (std::size_t s = 0; s < sets_; ++s) {
            std::uint32_t vm = valid_[s];
            const std::uint64_t *tags = tags_.data() + s * stride_;
            const Entry *ent = entries_.data() + s * ways_;
            while (vm) {
                const unsigned w =
                    static_cast<unsigned>(std::countr_zero(vm));
                vm &= vm - 1;
                f(static_cast<Addr>(tags[w]), ent[w]);
            }
        }
    }

    std::uint64_t evictions() const { return evictions_; }

  private:
    friend class SetView;
    friend class ConstSetView;

    /** Shared probe core: predictor-filtered when attached. */
    int
    probeSet(std::size_t set, Addr key) const
    {
        const std::uint32_t vmask = valid_[set];
        const std::uint64_t *tags = tags_.data() + set * stride_;
        if (WayPredictor *p = pred_.get())
            return predictedProbe(set, key, vmask, tags, p);
        const std::uint32_t m = eqMask(simd_, tags, stride_, key) & vmask;
        return m ? std::countr_zero(m) : -1;
    }

    /**
     * First-probe filter + accounting. Results are identical to the
     * plain probe: MRU falls back to the full compare on a first-way
     * miss, and a utag candidate set provably contains any hitting way.
     */
    int
    predictedProbe(std::size_t set, Addr key, std::uint32_t vmask,
                   const std::uint64_t *tags, WayPredictor *p) const
    {
        ++*p->probes;
        if (p->mode() == WayPredMode::kMru) {
            const unsigned pw = p->predictedWay(set);
            ++*p->ways_read;
            if (pw < ways_ && ((vmask >> pw) & 1u) && tags[pw] == key) {
                ++*p->correct;
                return static_cast<int>(pw);
            }
            ++*p->fallbacks;
            *p->ways_read += ways_;
            const std::uint32_t m =
                eqMask(simd_, tags, stride_, key) & vmask;
            if (m) {
                ++*p->wrong;
                return std::countr_zero(m);
            }
            ++*p->misses;
            return -1;
        }
        // utag: read full tags for hash-matching ways only.
        const std::uint32_t cand =
            p->utagCandidates(set, WayPredictor::hashKey(key)) & vmask;
        const auto nread = static_cast<std::uint64_t>(std::popcount(cand));
        *p->ways_read += nread;
        for (std::uint32_t m = cand; m; m &= m - 1) {
            const int w = std::countr_zero(m);
            if (tags[w] == key) {
                ++*p->correct;
                *p->wrong += nread - 1;
                return w;
            }
        }
        *p->wrong += nread;
        ++*p->misses;
        return -1;
    }

    unsigned sets_;
    unsigned ways_;
    unsigned shift_;
    unsigned stride_; ///< Tag/LRU lanes per set (ways rounded up to 4).
    std::uint32_t full_mask_; ///< Low ways_ bits set.
    bool pow2_sets_;
    SimdKind simd_;
    std::vector<std::uint64_t> tags_; ///< Padding lanes masked by valid_.
    std::uint64_t tick_ = 0;
    std::vector<std::uint64_t> lru_;
    std::vector<std::uint32_t> valid_;
    std::vector<Entry> entries_;
    std::uint64_t evictions_ = 0;
    std::unique_ptr<WayPredictor> pred_;
};

// ---- Whole-table compositions of the SetView primitives -------------------
//
// The LRU effect is spelled out in the name: touchingFind advances
// recency, peekFind never does, fillEntry installs (resident way wins,
// else the victim) and hands back a payload reset to Entry{}.

/** Probe + touch: the resident entry for @p key or nullptr. */
template <typename Entry>
Entry *
touchingFind(SoaSetTable<Entry> &t, Addr key)
{
    auto set = t.set(key);
    const int w = set.probe(key);
    if (w < 0)
        return nullptr;
    set.touch(static_cast<unsigned>(w));
    return &set.entry(static_cast<unsigned>(w));
}

/** Probe without any LRU effect. */
template <typename Entry>
const Entry *
peekFind(const SoaSetTable<Entry> &t, Addr key)
{
    auto set = t.set(key);
    const int w = set.probe(key);
    return w < 0 ? nullptr : &set.entry(static_cast<unsigned>(w));
}

/** Insert-or-reset: the resident way wins, else the victim way; the
 *  payload comes back reset to Entry{}. */
template <typename Entry>
Entry &
fillEntry(SoaSetTable<Entry> &t, Addr key)
{
    auto set = t.set(key);
    int w = set.probe(key);
    if (w < 0)
        w = set.victim();
    return set.fill(static_cast<unsigned>(w), key);
}

/** Drop @p key if resident (tag/stamp bytes are retained but dead). */
template <typename Entry>
void
eraseKey(SoaSetTable<Entry> &t, Addr key)
{
    auto set = t.set(key);
    const int w = set.probe(key);
    if (w >= 0)
        set.invalidate(static_cast<unsigned>(w));
}

} // namespace btbsim

#endif // BTBSIM_CORE_SOA_TABLE_H
