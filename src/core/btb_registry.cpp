#include "core/btb_registry.h"

#include "core/btb_org.h"

namespace btbsim {

BtbRegistry &
BtbRegistry::instance()
{
    static BtbRegistry r;
    return r;
}

void
BtbRegistry::register_org(const std::string &name,
                          const std::string &summary, Maker maker,
                          TokenParser parser)
{
    for (Org &o : orgs_) {
        if (o.name == name) {
            o = {name, summary, std::move(maker), std::move(parser)};
            return;
        }
    }
    orgs_.push_back({name, summary, std::move(maker), std::move(parser)});
}

std::unique_ptr<BtbOrg>
BtbRegistry::make(const std::string &name, const BtbConfig &cfg) const
{
    for (const Org &o : orgs_)
        if (o.name == name)
            return o.maker(cfg);
    return nullptr;
}

bool
BtbRegistry::isKnown(const std::string &name) const
{
    for (const Org &o : orgs_)
        if (o.name == name)
            return true;
    return false;
}

bool
BtbRegistry::parseToken(const std::string &token, BtbConfig &out) const
{
    for (const Org &o : orgs_)
        if (o.parser && o.parser(token, out))
            return true;
    return false;
}

std::string
BtbRegistry::knownNames() const
{
    std::string names;
    for (const Org &o : orgs_) {
        if (!names.empty())
            names += ", ";
        names += o.name;
    }
    return names;
}

} // namespace btbsim
