#include "core/hetero.h"

#include <algorithm>
#include <unordered_map>

namespace btbsim {

HeteroBtb::HeteroBtb(const BtbConfig &cfg)
    : cfg_(cfg),
      l1_(cfg.ideal ? 16384 : cfg.l1.sets, cfg.ideal ? 32 : cfg.l1.ways,
          log2i(kInstBytes), WayPredSink{&stats, "waypred.l1."}),
      l2_(cfg.ideal ? 1 : cfg.l2.sets, cfg.ideal ? 1 : cfg.l2.ways,
          log2i(cfg.region_bytes), WayPredSink{&stats, "waypred.l2."})
{}

std::uint32_t
HeteroBtb::blockEnd(Addr start) const
{
    if (const BlockEntry *e = peekFind(l1_, start))
        return e->end_bytes;
    return static_cast<std::uint32_t>(reachBytes());
}

HeteroBtb::BlockEntry *
HeteroBtb::synthesizeFromL2(Addr start)
{
    // The L2 is region-organized: gather the slots of every region the
    // candidate block [start, start + reach) overlaps and rebuild the
    // block entry the L1 would have held. A miss in every overlapping
    // region means the L2 knows nothing about this code: full miss.
    BlockEntry blk;
    blk.end_bytes = static_cast<std::uint32_t>(reachBytes());
    bool any_region_hit = false;
    for (Addr region = regionBase(start); region < start + reachBytes();
         region += cfg_.region_bytes) {
        const RegionEntry *re = touchingFind(l2_, region);
        if (!re)
            continue;
        any_region_hit = true;
        for (const Slot &s : re->slots) {
            const Addr pc = region + s.offset;
            if (pc < start || pc >= start + blk.end_bytes)
                continue;
            Slot copy = s;
            copy.offset = static_cast<std::uint32_t>(pc - start);
            blk.slots.push_back(copy);
            // Blocks end at architecturally-taken branches.
            if (isAlwaysTaken(s.type))
                blk.end_bytes = std::min<std::uint32_t>(
                    blk.end_bytes,
                    copy.offset + static_cast<std::uint32_t>(kInstBytes));
        }
    }
    if (!any_region_hit)
        return nullptr;
    std::sort(blk.slots.begin(), blk.slots.end(),
              [](const Slot &a, const Slot &b) { return a.offset < b.offset; });
    std::erase_if(blk.slots, [&](const Slot &s) {
        return s.offset >= blk.end_bytes;
    });
    // Respect the L1 slot budget: keep the earliest slots and shrink the
    // block so no tracked branch is silently dropped.
    if (blk.slots.size() > cfg_.branch_slots) {
        blk.end_bytes = blk.slots[cfg_.branch_slots].offset;
        blk.slots.resize(cfg_.branch_slots);
        blk.split = true;
    }
    ++stats["l2_synthesized_fills"];
    BlockEntry &filled = fillEntry(l1_, start);
    filled = blk;
    return &filled;
}

int
HeteroBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++stats["accesses"];
    BlockEntry *entry = nullptr;
    int level = 0;
    if ((entry = touchingFind(l1_, pc)))
        level = 1;
    else if ((entry = synthesizeFromL2(pc)))
        level = 2;
    b.tick_counter = &tick_;
    b.addSegment(pc, pc + (entry ? entry->end_bytes : reachBytes()));
    if (entry)
        for (Slot &s : entry->slots)
            b.addSlot(0, pc + s.offset, s.type, s.target, level, &s.tick);
    return level; // BlockEntry slots are kept offset-sorted.
}

void
HeteroBtb::normalizeCursor(Addr pc)
{
    if (!cur_valid_ || pc < cur_block_) {
        cur_block_ = pc;
        cur_valid_ = true;
        return;
    }
    for (int guard = 0; guard < 4096; ++guard) {
        const std::uint32_t end = blockEnd(cur_block_);
        if (pc < cur_block_ + end)
            return;
        cur_block_ += end;
    }
    cur_block_ = pc;
}

void
HeteroBtb::insertIntoBlock(Addr block, Addr pc, BranchClass type, Addr target)
{
    for (int guard = 0; guard < 64; ++guard) {
        BlockEntry *e = touchingFind(l1_, block);
        BlockEntry canon;
        if (e) {
            canon = *e;
        } else {
            canon.end_bytes = static_cast<std::uint32_t>(reachBytes());
        }
        if (pc >= block + canon.end_bytes) {
            block += canon.end_bytes;
            continue;
        }
        const auto offset = static_cast<std::uint32_t>(pc - block);

        Slot *hit = nullptr;
        for (Slot &s : canon.slots)
            if (s.offset == offset)
                hit = &s;
        Addr spill_block = 0, spill_pc = 0;
        BranchClass spill_type = BranchClass::kNone;
        Addr spill_target = 0;

        if (hit) {
            hit->type = type;
            hit->target = target;
            hit->tick = ++tick_;
        } else {
            Slot s;
            s.offset = offset;
            s.type = type;
            s.target = target;
            s.tick = ++tick_;
            if (canon.slots.size() < cfg_.branch_slots) {
                canon.slots.insert(
                    std::upper_bound(
                        canon.slots.begin(), canon.slots.end(), s,
                        [](const Slot &a, const Slot &b) {
                            return a.offset < b.offset;
                        }),
                    s);
            } else if (cfg_.split) {
                std::vector<Slot> staged = canon.slots;
                staged.insert(
                    std::upper_bound(
                        staged.begin(), staged.end(), s,
                        [](const Slot &a, const Slot &b) {
                            return a.offset < b.offset;
                        }),
                    s);
                canon.slots.assign(staged.begin(),
                                   staged.begin() + cfg_.branch_slots);
                Slot spill = staged.back();
                canon.end_bytes = canon.slots.back().offset +
                    static_cast<std::uint32_t>(kInstBytes);
                canon.split = true;
                ++stats["splits"];
                spill_block = block + canon.end_bytes;
                spill_pc = block + spill.offset;
                spill_type = spill.type;
                spill_target = spill.target;
            } else {
                Slot *victim = &*std::min_element(
                    canon.slots.begin(), canon.slots.end(),
                    [](const Slot &a, const Slot &b) {
                        return a.tick < b.tick;
                    });
                *victim = s;
                std::sort(canon.slots.begin(), canon.slots.end(),
                          [](const Slot &a, const Slot &b) {
                              return a.offset < b.offset;
                          });
                ++stats["slot_displacements"];
            }
        }

        if (isAlwaysTaken(type)) {
            const std::uint32_t end =
                offset + static_cast<std::uint32_t>(kInstBytes);
            if (end < canon.end_bytes) {
                canon.end_bytes = end;
                std::erase_if(canon.slots, [&](const Slot &s2) {
                    return s2.offset >= end;
                });
            }
        }

        if (e)
            *e = canon;
        else
            fillEntry(l1_, block) = canon;

        if (spill_type != BranchClass::kNone) {
            block = spill_block;
            pc = spill_pc;
            type = spill_type;
            target = spill_target;
            continue;
        }
        return;
    }
}

void
HeteroBtb::insertIntoRegion(Addr pc, BranchClass type, Addr target)
{
    const Addr region = regionBase(pc);
    const auto offset = static_cast<std::uint32_t>(pc - region);
    RegionEntry *e = touchingFind(l2_, region);
    if (!e) {
        e = &fillEntry(l2_, region);
        ++stats["l2_allocs"];
    }
    Slot *hit = nullptr;
    for (Slot &s : e->slots)
        if (s.offset == offset)
            hit = &s;
    if (!hit) {
        if (e->slots.size() < kRegionSlots) {
            e->slots.emplace_back();
            hit = &e->slots.back();
        } else {
            hit = &*std::min_element(
                e->slots.begin(), e->slots.end(),
                [](const Slot &a, const Slot &b) { return a.tick < b.tick; });
            ++stats["l2_slot_displacements"];
        }
        hit->offset = offset;
    }
    hit->type = type;
    hit->target = target;
    hit->tick = ++tick_;
}

void
HeteroBtb::update(const Instruction &br, bool resteer)
{
    if (br.taken) {
        normalizeCursor(br.pc);
        insertIntoBlock(cur_block_, br.pc, br.branch, br.takenTarget());
        insertIntoRegion(br.pc, br.branch, br.takenTarget());
        cur_block_ = br.next_pc;
        cur_valid_ = true;
    } else if (resteer) {
        cur_block_ = br.fallThrough();
        cur_valid_ = true;
    }
}

void
HeteroBtb::prefill(const Instruction &br)
{
    // Region-organized L2 accepts decode-based prefill directly, but a
    // prefill never displaces demand-trained slots.
    const Addr region = regionBase(br.pc);
    const auto offset = static_cast<std::uint32_t>(br.pc - region);
    if (const RegionEntry *e = peekFind(l2_, region)) {
        for (const Slot &s : e->slots)
            if (s.offset == offset)
                return;
        if (e->slots.size() >= kRegionSlots)
            return;
    }
    insertIntoRegion(br.pc, br.branch, br.takenTarget());
    ++stats["prefills"];
}

OccupancySample
HeteroBtb::sampleOccupancy() const
{
    OccupancySample s;
    {
        std::uint64_t entries = 0, slots = 0;
        std::unordered_map<Addr, std::uint32_t> track;
        l1_.forEach([&](Addr key, const BlockEntry &e) {
            ++entries;
            slots += e.slots.size();
            for (const Slot &sl : e.slots)
                ++track[key + sl.offset];
        });
        s.l1_entries = entries;
        s.l1_slot_occupancy =
            entries ? static_cast<double>(slots) / entries : 0.0;
        std::uint64_t total = 0;
        for (const auto &[pc, c] : track)
            total += c;
        s.l1_redundancy = track.empty()
            ? 1.0 : static_cast<double>(total) / track.size();
    }
    {
        std::uint64_t entries = 0, slots = 0;
        l2_.forEach([&](Addr, const RegionEntry &e) {
            ++entries;
            slots += e.slots.size();
        });
        s.l2_entries = entries;
        s.l2_slot_occupancy =
            entries ? static_cast<double>(slots) / entries : 0.0;
        s.l2_redundancy = 1.0; // Region storage holds each branch once.
    }
    return s;
}

} // namespace btbsim
