#include "core/bbtb.h"

#include <algorithm>
#include <unordered_map>

#include "check/fault.h"

namespace btbsim {

BlockBtb::BlockBtb(const BtbConfig &cfg)
    : cfg_(cfg), table_(cfg, log2i(kInstBytes), &stats)
{}

std::uint32_t
BlockBtb::blockEnd(Addr start) const
{
    if (const Entry *e = table_.peekAuthoritative(start))
        return e->end_bytes;
    return static_cast<std::uint32_t>(reachBytes());
}

int
BlockBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++stats["accesses"];
    auto [e, lvl] = table_.lookup(pc);
    b.tick_counter = &tick_;
    b.addSegment(pc, pc + (e ? e->end_bytes : reachBytes()));
    if (e)
        for (Slot &s : e->slots)
            b.addSlot(0, pc + s.offset, s.type, s.target, lvl, &s.tick);
    return lvl; // Entry slots are kept offset-sorted; no sortSlots needed.
}

void
BlockBtb::normalizeCursor(Addr pc)
{
    if (!cur_valid_ || pc < cur_block_) {
        cur_block_ = pc;
        cur_valid_ = true;
        return;
    }
    // Walk forward across fall-through blocks until pc falls inside one.
    // Guard against pathological distances with a bounded walk.
    for (int guard = 0; guard < 4096; ++guard) {
        const std::uint32_t end = blockEnd(cur_block_);
        if (pc < cur_block_ + end)
            return;
        cur_block_ += end;
    }
    cur_block_ = pc;
}

void
BlockBtb::insertTaken(const Instruction &br)
{
    // Worklist of (block_start, offset, type, target) insertions; entry
    // splitting may spill a slot into the fall-through block.
    struct Pending
    {
        Addr block;
        Addr pc;
        BranchClass type;
        Addr target;
    };
    std::vector<Pending> work{{cur_block_, br.pc, br.branch, br.takenTarget()}};
    BTBSIM_FAULT_POINT("bbtb_update_target",
                       work.back().target = br.takenTarget() + kInstBytes);

    for (int guard = 0; guard < 64 && !work.empty(); ++guard) {
        Pending p = work.back();
        work.pop_back();

        Entry canon;
        if (const Entry *e = table_.peekAuthoritative(p.block)) {
            canon = *e;
        } else {
            canon.end_bytes = static_cast<std::uint32_t>(reachBytes());
            ++stats["allocs"];
        }
        if (p.pc >= p.block + canon.end_bytes) {
            // Stale cursor relative to a shrunk entry: the branch belongs
            // to a later block.
            work.push_back({p.block + canon.end_bytes, p.pc, p.type, p.target});
            table_.upsert(p.block, canon);
            continue;
        }

        const auto offset = static_cast<std::uint32_t>(p.pc - p.block);
        Slot *hit = nullptr;
        for (Slot &s : canon.slots)
            if (s.offset == offset)
                hit = &s;

        if (hit) {
            hit->type = p.type;
            hit->target = p.target;
            hit->tick = ++tick_;
        } else if (canon.slots.size() < cfg_.branch_slots) {
            Slot s;
            s.offset = offset;
            s.type = p.type;
            s.target = p.target;
            s.tick = ++tick_;
            canon.slots.insert(
                std::upper_bound(canon.slots.begin(), canon.slots.end(), s,
                                 [](const Slot &a, const Slot &b) {
                                     return a.offset < b.offset;
                                 }),
                s);
        } else if (cfg_.split) {
            // Stage the n+1 slots sorted by offset, keep the first n, and
            // split the entry after the n-th slot (Section 6.3).
            Slot s;
            s.offset = offset;
            s.type = p.type;
            s.target = p.target;
            s.tick = ++tick_;
            std::vector<Slot> staged = canon.slots;
            staged.insert(
                std::upper_bound(staged.begin(), staged.end(), s,
                                 [](const Slot &a, const Slot &b) {
                                     return a.offset < b.offset;
                                 }),
                s);
            canon.slots.assign(staged.begin(),
                               staged.begin() + cfg_.branch_slots);
            Slot spill = staged.back();
            canon.end_bytes = canon.slots.back().offset + kInstBytes;
            canon.split = true;
            ++stats["splits"];
            work.push_back({p.block + canon.end_bytes,
                            p.block + spill.offset, spill.type,
                            spill.target});
        } else {
            // Displace the least recently used slot.
            hit = &*std::min_element(
                canon.slots.begin(), canon.slots.end(),
                [](const Slot &a, const Slot &b) { return a.tick < b.tick; });
            hit->offset = offset;
            hit->type = p.type;
            hit->target = p.target;
            hit->tick = ++tick_;
            std::sort(canon.slots.begin(), canon.slots.end(),
                      [](const Slot &a, const Slot &b) {
                          return a.offset < b.offset;
                      });
            ++stats["slot_displacements"];
        }

        // Always-taken-class branches end the block at their offset; the
        // flow can never pass them, so no slot may live beyond. With the
        // cond_ends_block ablation, taken conditionals end it too
        // (Yeh/Patt-style blocks, Section 2.3).
        if (isAlwaysTaken(p.type) ||
            (cfg_.cond_ends_block && p.type == BranchClass::kCondDirect)) {
            const std::uint32_t end = offset + kInstBytes;
            if (end < canon.end_bytes) {
                canon.end_bytes = end;
                std::erase_if(canon.slots, [&](const Slot &s2) {
                    return s2.offset >= end;
                });
            }
        }

        table_.upsert(p.block, canon);
    }
}

void
BlockBtb::update(const Instruction &br, bool resteer)
{
    if (br.taken) {
        normalizeCursor(br.pc);
        insertTaken(br);
        cur_block_ = br.next_pc;
        cur_valid_ = true;
    } else if (resteer) {
        // Mispredicted-taken conditional: the frontend refetches from the
        // fall-through, which begins a new dynamic block.
        cur_block_ = br.fallThrough();
        cur_valid_ = true;
    }
}

OccupancySample
BlockBtb::sampleOccupancy() const
{
    OccupancySample s;
    auto probe = [](const SoaSetTable<Entry> &t, double &occ, double &red,
                    std::uint64_t &n) {
        std::uint64_t entries = 0, slots = 0;
        std::unordered_map<Addr, std::uint32_t> track;
        t.forEach([&](Addr key, const Entry &e) {
            ++entries;
            slots += e.slots.size();
            for (const Slot &sl : e.slots)
                ++track[key + sl.offset];
        });
        n = entries;
        occ = entries ? static_cast<double>(slots) / entries : 0.0;
        std::uint64_t total = 0;
        for (const auto &[pc, c] : track)
            total += c;
        red = track.empty() ? 1.0
                            : static_cast<double>(total) / track.size();
    };
    probe(table_.l1(), s.l1_slot_occupancy, s.l1_redundancy, s.l1_entries);
    probe(table_.l2(), s.l2_slot_occupancy, s.l2_redundancy, s.l2_entries);
    return s;
}

} // namespace btbsim
