/**
 * @file
 * Name-keyed registry of BTB organizations.
 *
 * Construction goes through registered factory functions instead of a
 * hard-coded switch: the built-in organizations register themselves in
 * btb_factory.cpp, and out-of-tree organizations (examples/, plugins)
 * call BtbRegistry::register_org() at static-init time — no core edits,
 * no subclass-and-switch. Each registration may also supply a config
 * token parser (e.g. "rbtb3" -> BtbConfig::rbtb(3)) so CLI surfaces can
 * resolve and enumerate every known organization uniformly.
 */

#ifndef BTBSIM_CORE_BTB_REGISTRY_H
#define BTBSIM_CORE_BTB_REGISTRY_H

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/btb_config.h"

namespace btbsim {

class BtbOrg;

class BtbRegistry
{
  public:
    using Maker =
        std::function<std::unique_ptr<BtbOrg>(const BtbConfig &)>;
    /** Parse a CLI config token into @p out; return false when the token
     *  does not belong to this organization. */
    using TokenParser =
        std::function<bool(const std::string &, BtbConfig &)>;

    struct Org
    {
        std::string name; ///< Canonical key, e.g. "rbtb".
        std::string summary; ///< One-liner for --help output.
        Maker maker;
        TokenParser parser; ///< May be null (not token-addressable).
    };

    /** Process-wide registry (registrations happen at static init). */
    static BtbRegistry &instance();

    /** Register under @p name; re-registering a name replaces it (an
     *  example can shadow a built-in deliberately). */
    void register_org(const std::string &name, const std::string &summary,
                      Maker maker, TokenParser parser = nullptr);

    /** Construct @p name with @p cfg; null when the name is unknown. */
    std::unique_ptr<BtbOrg> make(const std::string &name,
                                 const BtbConfig &cfg) const;

    bool isKnown(const std::string &name) const;

    /** Try every registered parser against @p token (first match wins,
     *  registration order). */
    bool parseToken(const std::string &token, BtbConfig &out) const;

    /** Registered organizations in registration order. */
    const std::vector<Org> &orgs() const { return orgs_; }

    /** Comma-separated known names for error/help messages. */
    std::string knownNames() const;

  private:
    std::vector<Org> orgs_;
};

/** Static-init helper: `static BtbRegistrar reg{"name", ...};` */
struct BtbRegistrar
{
    BtbRegistrar(const std::string &name, const std::string &summary,
                 BtbRegistry::Maker maker,
                 BtbRegistry::TokenParser parser = nullptr)
    {
        BtbRegistry::instance().register_org(name, summary,
                                             std::move(maker),
                                             std::move(parser));
    }
};

} // namespace btbsim

#endif // BTBSIM_CORE_BTB_REGISTRY_H
