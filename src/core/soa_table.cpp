/**
 * @file
 * SIMD probe kernels and kernel selection for SoaSetTable.
 *
 * The SSE4.1/AVX2 bodies are compiled with function-level target
 * attributes so the translation unit builds on any x86-64 baseline;
 * resolveSimd() only hands out a kernel the host actually supports
 * (checked with __builtin_cpu_supports), clamped by BTBSIM_SIMD.
 */

#include "core/soa_table.h"

#include "common/env.h"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#define BTBSIM_X86 1
#else
#define BTBSIM_X86 0
#endif

namespace btbsim {

namespace detail {

#if BTBSIM_X86

__attribute__((target("sse4.1"))) std::uint32_t
eqMaskSse(const std::uint64_t *tags, unsigned lanes, std::uint64_t key)
{
    const __m128i k = _mm_set1_epi64x(static_cast<long long>(key));
    std::uint32_t m = 0;
    for (unsigned w = 0; w < lanes; w += 2) {
        const __m128i t =
            _mm_loadu_si128(reinterpret_cast<const __m128i *>(tags + w));
        const __m128i eq = _mm_cmpeq_epi64(t, k);
        m |= static_cast<std::uint32_t>(
                 _mm_movemask_pd(_mm_castsi128_pd(eq)))
             << w;
    }
    return m;
}

__attribute__((target("avx2"))) std::uint32_t
eqMaskAvx2(const std::uint64_t *tags, unsigned lanes, std::uint64_t key)
{
    const __m256i k = _mm256_set1_epi64x(static_cast<long long>(key));
    std::uint32_t m = 0;
    for (unsigned w = 0; w < lanes; w += 4) {
        const __m256i t = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(tags + w));
        const __m256i eq = _mm256_cmpeq_epi64(t, k);
        m |= static_cast<std::uint32_t>(
                 _mm256_movemask_pd(_mm256_castsi256_pd(eq)))
             << w;
    }
    return m;
}

#else // !BTBSIM_X86 — never selected by resolveSimd(); keep linkable.

std::uint32_t
eqMaskSse(const std::uint64_t *tags, unsigned lanes, std::uint64_t key)
{
    return eqMaskScalar(tags, lanes, key);
}

std::uint32_t
eqMaskAvx2(const std::uint64_t *tags, unsigned lanes, std::uint64_t key)
{
    return eqMaskScalar(tags, lanes, key);
}

#endif // BTBSIM_X86

} // namespace detail

namespace {

bool
hostSupports(SimdKind kind)
{
#if BTBSIM_X86
    switch (kind) {
    case SimdKind::kScalar:
        return true;
    case SimdKind::kSse:
        return __builtin_cpu_supports("sse4.1");
    case SimdKind::kAvx2:
        return __builtin_cpu_supports("avx2");
    }
#else
    if (kind == SimdKind::kScalar)
        return true;
#endif
    return false;
}

} // namespace

SimdKind
resolveSimd()
{
    const std::string v = env::str("BTBSIM_SIMD", "auto");
    if (v == "scalar")
        return SimdKind::kScalar;
    if (v == "sse")
        return hostSupports(SimdKind::kSse) ? SimdKind::kSse
                                            : SimdKind::kScalar;
    if (v == "avx2")
        return hostSupports(SimdKind::kAvx2) ? SimdKind::kAvx2
                                             : SimdKind::kScalar;
    // auto: widest supported kernel.
    if (hostSupports(SimdKind::kAvx2))
        return SimdKind::kAvx2;
    if (hostSupports(SimdKind::kSse))
        return SimdKind::kSse;
    return SimdKind::kScalar;
}

const char *
simdKindName(SimdKind kind)
{
    switch (kind) {
    case SimdKind::kSse:
        return "sse";
    case SimdKind::kAvx2:
        return "avx2";
    case SimdKind::kScalar:
        break;
    }
    return "scalar";
}

} // namespace btbsim
