/**
 * @file
 * Per-access prediction bundle: the data contract between a BTB
 * organization and the PC-generation walker.
 *
 * At beginAccess() the organization fills a fixed-capacity, stack-
 * allocated PredictionBundle: the access window (one segment per supplied
 * block — MB-BTB continuation records are the segments past the first),
 * plus one slot per tracked branch inside the window. The frontend then
 * walks the bundle inline with probe(), one call per actual-path PC, with
 * zero virtual dispatch until the access ends. Two virtual hooks remain,
 * both per *access event*, never per instruction: chainAccess() for
 * organizations that can extend the window at a dynamic taken target
 * (I-BTB Skp), and endAccess() for organizations that defer lookup side
 * effects to the end of the walk (I-BTB recency/fill replay).
 *
 * Semantics the walker preserves exactly from the virtual step() protocol
 * it replaced:
 *  - Slot recency ticks happen at probe time, before the frontend decides
 *    whether the instruction is actually consumed (an FTQ-full retry
 *    ticks the slot twice, as the per-PC protocol did).
 *  - Slots below the walk's entry PC (an access starting mid-region) are
 *    skipped without ticking.
 *  - A probe outside the current segment reports kEndOfWindow; chained
 *    segments are only entered through chain() on a correct taken
 *    prediction with @c follow set.
 *
 * Capacity rules: a bundle holds at most kMaxSegments segments and
 * kMaxSlots slots. Organizations must guarantee their windows fit —
 * see the asserts in addSegment()/addSlot(); every stock configuration
 * is far below both limits (MB-BTB: branch_slots + 1 segments; I-BTB:
 * width slots; dual-region R-BTB: 2 x branch_slots slots).
 */

#ifndef BTBSIM_CORE_PREDICTION_BUNDLE_H
#define BTBSIM_CORE_PREDICTION_BUNDLE_H

#include <cassert>
#include <cstdint>

#include "common/types.h"
#include "trace/instruction.h"

namespace btbsim {

class BtbOrg;

/** What the organization says about one PC inside the current access. */
struct StepView
{
    enum class Kind : std::uint8_t {
        kEndOfWindow, ///< PC is outside what this access can supply.
        kSequential,  ///< PC supplied; no tracked branch here.
        kBranch,      ///< PC supplied; a tracked branch lives here.
    };

    Kind kind = Kind::kEndOfWindow;
    BranchClass type = BranchClass::kNone; ///< kBranch: stored type.
    Addr target = 0;                       ///< kBranch: stored target.
    bool follow = false; ///< kBranch: taking it continues in-entry (MB).
    /** kBranch: the entry holds no fall-through for this slot, so a
     *  not-taken prediction must end the access (MB-BTB pulled slots). */
    bool end_on_not_taken = false;
    int level = 0; ///< BTB level supplying this info (1 or 2).
};

/** One access worth of predictions, filled by BtbOrg::beginAccess(). */
struct PredictionBundle
{
    static constexpr unsigned kMaxSegments = 16;
    static constexpr unsigned kMaxSlots = 64;

    /** One contiguous PC range the access supplies. Segments past the
     *  first are continuation records (MB-BTB chained blocks). */
    struct Segment
    {
        Addr start;
        Addr end; ///< Exclusive.
    };

    /** One tracked branch inside the window. */
    struct Slot
    {
        Addr pc;
        Addr target;
        std::uint64_t *tick; ///< Slot recency to stamp at probe time.
        BranchClass type;
        std::uint8_t seg;   ///< Owning segment index.
        std::uint8_t level; ///< BTB level that supplied the slot (1/2).
        bool follow;
        bool end_on_not_taken;
    };

    // ---- fill state (written by the organization) -------------------------
    Segment segments[kMaxSegments]; ///< Only [0, n_segments) are valid.
    Slot slots[kMaxSlots];          ///< Sorted by (seg, pc); [0, n_slots).
    unsigned n_segments = 0;
    unsigned n_slots = 0;
    /** The organization's recency clock; stamped through Slot::tick. */
    std::uint64_t *tick_counter = nullptr;
    /** Call BtbOrg::chainAccess() when an in-bundle continuation is not
     *  recorded (I-BTB Skp extends the window at dynamic targets). */
    bool dynamic_chain = false;
    /** Call BtbOrg::endAccess() when the walk ends (deferred commits). */
    bool wants_end_access = false;

    // ---- walk state (maintained by probe()/chain()) -----------------------
    unsigned cur_seg = 0;
    unsigned cursor = 0; ///< First slot not yet passed by the walk.
    unsigned probes = 0; ///< PCs supplied so far (across segments).
    std::uint64_t probed = 0;  ///< Bitmask of slots the walk probed.
    unsigned committed = 0;    ///< Slots below this index are committed.

    // ---- fill API (organizations) -----------------------------------------

    void
    addSegment(Addr start, Addr end)
    {
        assert(n_segments < kMaxSegments && "bundle segment overflow");
        segments[n_segments++] = {start, end};
    }

    void
    addSlot(unsigned seg, Addr pc, BranchClass type, Addr target, int level,
            std::uint64_t *tick = nullptr, bool follow = false,
            bool end_on_not_taken = false)
    {
        assert(n_slots < kMaxSlots && "bundle slot overflow");
        Slot &s = slots[n_slots++];
        s.pc = pc;
        s.target = target;
        s.tick = tick;
        s.type = type;
        s.seg = static_cast<std::uint8_t>(seg);
        s.level = static_cast<std::uint8_t>(level);
        s.follow = follow;
        s.end_on_not_taken = end_on_not_taken;
    }

    /** Restore (seg, pc) slot order for organizations whose entries do
     *  not store slots sorted (R-BTB). Insertion sort: n is tiny. */
    void
    sortSlots()
    {
        for (unsigned i = 1; i < n_slots; ++i) {
            const Slot s = slots[i];
            unsigned j = i;
            for (; j > 0 && (slots[j - 1].seg > s.seg ||
                             (slots[j - 1].seg == s.seg &&
                              slots[j - 1].pc > s.pc));
                 --j)
                slots[j] = slots[j - 1];
            slots[j] = s;
        }
    }

    /** Drop all fill and walk-position state, keeping the probe budget:
     *  chainAccess() re-fills the bundle at a dynamic target. */
    void
    restartFill()
    {
        n_segments = 0;
        n_slots = 0;
        cur_seg = 0;
        cursor = 0;
        probed = 0;
        committed = 0;
    }

    // ---- walk API (PcGen, tests, examples) --------------------------------

    /**
     * The bundle's answer for @p pc — the inline replacement for the
     * virtual per-PC step(). Probing a slot stamps its recency tick and
     * records it for deferred commit (endAccess).
     */
    StepView
    probe(Addr pc)
    {
        StepView v;
        if (cur_seg >= n_segments)
            return v; // kEndOfWindow
        const Segment &sg = segments[cur_seg];
        if (pc < sg.start || pc >= sg.end)
            return v; // kEndOfWindow
        ++probes;
        while (cursor < n_slots &&
               (slots[cursor].seg < cur_seg ||
                (slots[cursor].seg == cur_seg && slots[cursor].pc < pc)))
            ++cursor;
        if (cursor < n_slots && slots[cursor].seg == cur_seg &&
            slots[cursor].pc == pc) {
            Slot &s = slots[cursor];
            probed |= std::uint64_t{1} << cursor;
            if (s.tick)
                *s.tick = ++*tick_counter;
            v.kind = StepView::Kind::kBranch;
            v.type = s.type;
            v.target = s.target;
            v.follow = s.follow;
            v.end_on_not_taken = s.end_on_not_taken;
            v.level = s.level;
            return v;
        }
        v.kind = StepView::Kind::kSequential;
        return v;
    }

    /**
     * Continue the access across the correct-taken branch at @p pc toward
     * @p target. Follows a recorded continuation segment when one starts
     * at the target (MB-BTB), else asks the organization to extend the
     * window (I-BTB Skp). @return true when the access keeps supplying
     * PCs at the target. Defined in btb_org.h (needs BtbOrg).
     */
    inline bool chain(BtbOrg &org, Addr pc, Addr target);

    /** End the walk: runs the organization's deferred commits, if any.
     *  Call exactly once per access. Defined in btb_org.h. */
    inline void finish(BtbOrg &org);
};

} // namespace btbsim

#endif // BTBSIM_CORE_PREDICTION_BUNDLE_H
