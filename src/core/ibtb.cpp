#include "core/ibtb.h"

namespace btbsim {

InstructionBtb::InstructionBtb(const BtbConfig &cfg)
    : cfg_(cfg), table_(cfg, log2i(kInstBytes))
{}

int
InstructionBtb::beginAccess(Addr pc)
{
    (void)pc;
    supplied_ = 0;
    ++stats["accesses"];
    return 0; // Levels are reported per probed PC in step().
}

StepView
InstructionBtb::step(Addr pc)
{
    StepView v;
    if (supplied_ >= cfg_.width)
        return v; // kEndOfWindow

    ++supplied_;
    auto [entry, level] = table_.lookup(pc);
    if (!entry) {
        v.kind = StepView::Kind::kSequential;
        return v;
    }
    v.kind = StepView::Kind::kBranch;
    v.type = entry->type;
    v.target = entry->target;
    v.level = level;
    // Skp mode chains across taken branches within the access width.
    v.follow = cfg_.skip_taken;
    return v;
}

bool
InstructionBtb::chainTaken(Addr pc, Addr target)
{
    (void)pc;
    (void)target;
    return cfg_.skip_taken && supplied_ < cfg_.width;
}

void
InstructionBtb::update(const Instruction &br, bool resteer)
{
    (void)resteer;
    if (!br.taken)
        return; // Never-taken branches occupy no BTB storage.

    auto [l1, l2] = table_.findBoth(br.pc);
    if (!l1 && !l2) {
        auto [a, b] = table_.allocate(br.pc);
        l1 = a;
        l2 = b;
        ++stats["allocs"];
    }
    for (Entry *e : {l1, l2}) {
        if (!e)
            continue;
        e->type = br.branch;
        e->target = br.takenTarget();
    }
}

void
InstructionBtb::prefill(const Instruction &br)
{
    if (table_.peek(br.pc))
        return; // Already tracked; do not disturb LRU.
    update(br, false);
    ++stats["prefills"];
}

OccupancySample
InstructionBtb::sampleOccupancy() const
{
    OccupancySample s;
    std::uint64_t n1 = 0, n2 = 0;
    table_.l1().forEach([&](Addr, const Entry &) { ++n1; });
    table_.l2().forEach([&](Addr, const Entry &) { ++n2; });
    s.l1_entries = n1;
    s.l2_entries = n2;
    s.l1_slot_occupancy = 1.0;
    s.l2_slot_occupancy = 1.0;
    s.l1_redundancy = 1.0;
    s.l2_redundancy = 1.0;
    return s;
}

} // namespace btbsim
