#include "core/ibtb.h"

#include "check/fault.h"

namespace btbsim {

namespace {

/**
 * Overlay mirroring the L1 residency effects of this access's deferred
 * lookups (commitProbed): recency touches and L2-to-L1 fills, including
 * the evictions those fills cause. The walk probes slots strictly in
 * window order, so any probed slot's deferred lookup runs after exactly
 * the deferred lookups of the slots filled before it — mirroring every
 * filled slot's effect in fill order therefore predicts each lookup's
 * level and residency exactly, even when several window PCs collide in
 * one L1 set (l1.sets < width, e.g. the 1-cycle taken-penalty limit
 * study's 1-entry L1).
 *
 * Sets materialize lazily: until a fill targets a set, residency answers
 * come straight from the real table and recency touches are only queued,
 * so geometries whose windows never collide (every stock one) pay a few
 * appends per access and no copies.
 */
template <typename Table>
class ShadowL1
{
  public:
    explicit ShadowL1(const Table &t) : t_(t) {}

    /** Would the deferred lookup for @p key still hit L1? */
    bool
    resident(Addr key)
    {
        if (const Set *s = findSet(t_.setIndex(key)))
            return s->find(key) != nullptr;
        return t_.set(key).probe(key) >= 0;
    }

    /** Mirror the find() recency touch of an L1-hit lookup. */
    void
    touch(Addr key)
    {
        if (Set *s = findSet(t_.setIndex(key))) {
            if (ShadowWay *w = s->find(key))
                w->lru = ++s->tick;
        } else {
            assert(n_queued_ < kMaxSlots);
            queued_[n_queued_++] = key;
        }
    }

    /** Mirror the L1 fill (and its eviction) of an L2-hit lookup. */
    void
    promote(Addr key)
    {
        Set &s = materialize(t_.setIndex(key));
        // Same victim choice as SoaSetTable: the key's own way, else the
        // first invalid way, else the least-recent way.
        ShadowWay *victim = nullptr;
        for (unsigned i = 0; i < s.n_ways; ++i) {
            ShadowWay &w = s.ways[i];
            if (w.valid && w.key == key) {
                victim = &w;
                break;
            }
            if (!w.valid) {
                if (!victim || victim->valid)
                    victim = &w;
            } else if (!victim || (victim->valid && w.lru < victim->lru)) {
                victim = &w;
            }
        }
        victim->valid = true;
        victim->key = key;
        victim->lru = ++s.tick;
    }

  private:
    static constexpr unsigned kMaxSlots = PredictionBundle::kMaxSlots;
    static constexpr unsigned kMaxWays = 32;

    struct ShadowWay
    {
        Addr key;
        std::uint64_t lru;
        bool valid;
    };

    struct Set
    {
        std::size_t index;
        unsigned n_ways;
        std::uint64_t tick;
        ShadowWay ways[kMaxWays];

        ShadowWay *
        find(Addr key)
        {
            for (unsigned i = 0; i < n_ways; ++i)
                if (ways[i].valid && ways[i].key == key)
                    return &ways[i];
            return nullptr;
        }
        const ShadowWay *
        find(Addr key) const
        {
            return const_cast<Set *>(this)->find(key);
        }
    };

    Set *
    findSet(std::size_t index)
    {
        for (unsigned i = 0; i < n_sets_; ++i)
            if (sets_[i].index == index)
                return &sets_[i];
        return nullptr;
    }

    Set &
    materialize(std::size_t index)
    {
        if (Set *s = findSet(index))
            return *s;
        assert(n_sets_ < kMaxSlots && t_.ways() <= kMaxWays);
        Set &s = sets_[n_sets_++];
        s.index = index;
        s.n_ways = t_.ways();
        s.tick = 0;
        const auto src = t_.setAt(index);
        for (unsigned i = 0; i < s.n_ways; ++i) {
            s.ways[i] = {src.key(i), src.stamp(i), src.valid(i)};
            if (src.valid(i) && src.stamp(i) > s.tick)
                s.tick = src.stamp(i);
        }
        // Apply the touches queued before this set materialized, in order.
        for (unsigned i = 0; i < n_queued_; ++i)
            if (t_.setIndex(queued_[i]) == index)
                if (ShadowWay *w = s.find(queued_[i]))
                    w->lru = ++s.tick;
        return s;
    }

    const Table &t_;
    unsigned n_sets_ = 0;
    unsigned n_queued_ = 0;
    Set sets_[kMaxSlots]; ///< Uninitialized until materialized.
    Addr queued_[kMaxSlots];
};

} // namespace

InstructionBtb::InstructionBtb(const BtbConfig &cfg)
    : cfg_(cfg), table_(cfg, log2i(kInstBytes), &stats)
{}

/**
 * Fill @p b with a window of @p count banked probes starting at @p start,
 * using side-effect-free peeks. The recency touches and L2-to-L1 fills
 * the per-PC lookup() protocol performed at probe time are replayed for
 * the slots the walk actually probes — at chainAccess()/endAccess() time,
 * still before any update() of the access (commitProbed). A lookup miss
 * has no side effects, so sequential PCs need no replay. A ShadowL1
 * overlay mirrors the deferred lookups' L1 residency changes so the
 * peeked levels match the replayed lookups exactly for any geometry.
 */
void
InstructionBtb::fillWindow(Addr start, unsigned count, PredictionBundle &b)
{
    b.addSegment(start, start + Addr{count} * kInstBytes);
    const unsigned seg = b.n_segments - 1;
    const bool two_level = !table_.ideal();
    ShadowL1 shadow(table_.l1());
    for (unsigned i = 0; i < count; ++i) {
        const Addr pc = start + Addr{i} * kInstBytes;
        int level = 1;
        const Entry *e = nullptr;
        if (!two_level) {
            e = peekFind(table_.l1(), pc);
        } else if (shadow.resident(pc)) {
            e = peekFind(table_.l1(), pc);
            shadow.touch(pc);
        } else if ((e = peekFind(table_.l2(), pc)) != nullptr) {
            level = 2;
            shadow.promote(pc);
        }
        if (!e)
            continue;
        b.addSlot(seg, pc, e->type, e->target, level, nullptr,
                  cfg_.skip_taken);
        // The walk can never continue past an always-taken-class slot
        // within this segment (it either ends the access, diverges, or
        // chains into a fresh window), so stop peeking here.
        if (isAlwaysTaken(e->type))
            break;
    }
}

/** Replay the real lookup (recency touch, L2-to-L1 fill) for every
 *  probed slot not yet committed, in probe order. */
void
InstructionBtb::commitProbed(PredictionBundle &b)
{
    for (unsigned i = b.committed; i < b.n_slots; ++i)
        if (b.probed >> i & 1)
            (void)table_.lookup(b.slots[i].pc);
    b.committed = b.n_slots;
}

int
InstructionBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++stats["accesses"];
    b.dynamic_chain = cfg_.skip_taken;
    b.wants_end_access = true;
    fillWindow(pc, cfg_.width, b);
    return 0; // Levels are reported per probed PC via the bundle slots.
}

bool
InstructionBtb::chainAccess(Addr pc, Addr target, PredictionBundle &b)
{
    (void)pc;
    // Skp mode chains across taken branches within the access width.
    if (!cfg_.skip_taken || b.probes >= cfg_.width)
        return false;
    commitProbed(b);
    const unsigned remaining = cfg_.width - b.probes;
    b.restartFill();
    fillWindow(target, remaining, b);
    return true;
}

void
InstructionBtb::endAccess(PredictionBundle &b)
{
    commitProbed(b);
}

void
InstructionBtb::update(const Instruction &br, bool resteer)
{
    (void)resteer;
    if (!br.taken)
        return; // Never-taken branches occupy no BTB storage.

    auto [l1, l2] = table_.findBoth(br.pc);
    if (!l1 && !l2) {
        auto [a, b] = table_.allocate(br.pc);
        l1 = a;
        l2 = b;
        ++stats["allocs"];
    }
    for (Entry *e : {l1, l2}) {
        if (!e)
            continue;
        e->type = br.branch;
        e->target = br.takenTarget();
        BTBSIM_FAULT_POINT("ibtb_update_target",
                           e->target = br.takenTarget() + kInstBytes);
    }
}

void
InstructionBtb::prefill(const Instruction &br)
{
    if (table_.peek(br.pc))
        return; // Already tracked; do not disturb LRU.
    update(br, false);
    ++stats["prefills"];
}

OccupancySample
InstructionBtb::sampleOccupancy() const
{
    OccupancySample s;
    std::uint64_t n1 = 0, n2 = 0;
    table_.l1().forEach([&](Addr, const Entry &) { ++n1; });
    table_.l2().forEach([&](Addr, const Entry &) { ++n2; });
    s.l1_entries = n1;
    s.l2_entries = n2;
    s.l1_slot_occupancy = 1.0;
    s.l2_slot_occupancy = 1.0;
    s.l1_redundancy = 1.0;
    s.l2_redundancy = 1.0;
    return s;
}

} // namespace btbsim
