/**
 * @file
 * Way prediction for set-associative tables: utag / MRU policies layered
 * on top of SoaSetTable probes.
 *
 * The predictor plays two roles at once:
 *  - *Simulated structure*: per-probe accuracy and energy-proxy counters
 *    (ways actually read vs. a full parallel tag read) feed the owning
 *    organization's StatSet and surface in the obs registry under
 *    "btb.waypred.*".
 *  - *Host-side first-probe filter*: the predicted way (MRU) or the
 *    utag-matching candidate set is compared first; only a misprediction
 *    falls back to the full SIMD probe. Probe *results* are exact either
 *    way — the filter can cost extra reads, never a wrong hit/miss.
 *
 * Selected via BTBSIM_WAYPRED (off | utag | mru); off constructs no
 * predictor and adds no counters, keeping default runs bit-identical.
 */

#ifndef BTBSIM_CORE_WAY_PRED_H
#define BTBSIM_CORE_WAY_PRED_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"

namespace btbsim {

enum class WayPredMode : std::uint8_t { kOff, kUtag, kMru };

/** Parse BTBSIM_WAYPRED (off/utag/mru; unknown values mean off). */
WayPredMode wayPredModeFromEnv();

/**
 * Optional way-prediction attachment for a table. Tables constructed
 * without a sink never predict regardless of BTBSIM_WAYPRED — only the
 * simulated BTB structures opt in; host-side caches/TLBs do not.
 */
struct WayPredSink
{
    StatSet *stats = nullptr; ///< Owning organization's counter set.
    const char *prefix = ""; ///< Counter prefix, e.g. "waypred.l1.".
};

/**
 * Policy state + counters for one table. Non-template: it sees keys and
 * way indices only, never entry payloads.
 *
 * utag: an 8-bit hash of the key is stored per way on fill; a probe
 * first compares hashes and reads full tags for matching ways only.
 * Because the stored utag is always derived from the resident key, the
 * candidate set provably contains any hitting way (no false negatives);
 * hash aliases cost extra reads and are counted as @c wrong.
 *
 * mru: the last touched/filled way per set is predicted; a probe reads
 * that single way first and falls back to the full compare on mismatch.
 */
class WayPredictor
{
  public:
    WayPredictor(WayPredMode mode, unsigned sets, unsigned ways,
                 const WayPredSink &sink);

    WayPredMode mode() const { return mode_; }

    /** 8-bit key hash; never 0 so 0 can mean "empty slot". */
    static std::uint8_t
    hashKey(Addr key)
    {
        const std::uint64_t h = key * 0x9E3779B97F4A7C15ull;
        const std::uint8_t u = static_cast<std::uint8_t>(h >> 56);
        return u ? u : 1;
    }

    unsigned
    predictedWay(std::size_t set) const
    {
        return mru_[set];
    }

    /** Ways of @p set whose stored utag matches hashKey(@p key). */
    std::uint32_t
    utagCandidates(std::size_t set, std::uint8_t hash) const
    {
        const std::uint8_t *u = &utags_[set * ways_];
        std::uint32_t m = 0;
        for (unsigned w = 0; w < ways_; ++w)
            m |= static_cast<std::uint32_t>(u[w] == hash) << w;
        return m;
    }

    void
    onTouch(std::size_t set, unsigned way)
    {
        mru_[set] = static_cast<std::uint8_t>(way);
    }

    void
    onFill(std::size_t set, unsigned way, Addr key)
    {
        mru_[set] = static_cast<std::uint8_t>(way);
        utags_[set * ways_ + way] = hashKey(key);
    }

    // Counter cells, cached once (StatSet map references are stable).
    std::uint64_t *probes; ///< Probes seen while predicting.
    std::uint64_t *correct; ///< Hit found among the predicted ways.
    std::uint64_t *wrong; ///< Mispredicted/aliased ways read in vain.
    std::uint64_t *fallbacks; ///< Full probes after a first-probe miss.
    std::uint64_t *ways_read; ///< Energy proxy: tag words actually read.
    std::uint64_t *misses; ///< Probes that missed the whole set.

  private:
    WayPredMode mode_;
    unsigned ways_;
    std::vector<std::uint8_t> mru_; ///< Per-set predicted way.
    std::vector<std::uint8_t> utags_; ///< Per-way hashed tag (0 = empty).
};

} // namespace btbsim

#endif // BTBSIM_CORE_WAY_PRED_H
