/**
 * @file
 * Block BTB: one dynamic instruction block per entry, with N branch slots.
 *
 * A block is a run of at most @c reach_instrs instructions starting at a
 * control-flow-target (or fall-through) address. Following the paper's
 * baseline (Section 2.3), sometimes-taken conditional branches do NOT end
 * a block — the block falls through until the reach limit, keeping the
 * fall-through address computable in parallel with the BTB access.
 * Always-taken-class branches (unconditional jumps, calls, returns,
 * indirects) end the block at their offset.
 *
 * With @c split (Section 6.3), a supernumerary taken branch splits the
 * entry after its n-th slot instead of displacing another branch.
 */

#ifndef BTBSIM_CORE_BBTB_H
#define BTBSIM_CORE_BBTB_H

#include <vector>

#include "core/btb_org.h"

namespace btbsim {

class BlockBtb : public BtbOrg
{
  public:
    explicit BlockBtb(const BtbConfig &cfg);

    int beginAccess(Addr pc, PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    OccupancySample sampleOccupancy() const override;
    const BtbConfig &config() const override { return cfg_; }

  private:
    struct Slot
    {
        std::uint32_t offset = 0; ///< Byte offset within the block.
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
        std::uint64_t tick = 0;
    };

    struct Entry
    {
        std::vector<Slot> slots;    ///< Kept sorted by offset.
        std::uint32_t end_bytes = 0; ///< Block extent from its start.
        bool split = false;
    };

    BtbConfig cfg_;
    TwoLevelTable<Entry> table_;
    std::uint64_t tick_ = 0;

    // Update-side cursor: start of the dynamic block being trained.
    Addr cur_block_ = 0;
    bool cur_valid_ = false;

    Addr reachBytes() const { return Addr{cfg_.reach_instrs} * kInstBytes; }

    /** Extent of the (possibly missing) block starting at @p start. */
    std::uint32_t blockEnd(Addr start) const;

    void normalizeCursor(Addr pc);
    void insertTaken(const Instruction &br);
    void insertSlotInto(Entry &e, Addr block_start, const Instruction &br,
                        bool &overflowed, Slot &staged_out);
};

} // namespace btbsim

#endif // BTBSIM_CORE_BBTB_H
