/**
 * @file
 * BTB organization descriptors: every configuration evaluated in the paper
 * is expressible as a BtbConfig value.
 */

#ifndef BTBSIM_CORE_BTB_CONFIG_H
#define BTBSIM_CORE_BTB_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace btbsim {

/** The three classical organizations plus the proposed MultiBlock BTB
 *  and the heterogeneous hierarchy the paper leaves as future work. */
enum class BtbKind : std::uint8_t {
    kInstruction, ///< One branch per entry (I-BTB).
    kRegion,      ///< One aligned memory region per entry (R-BTB).
    kBlock,       ///< One dynamic instruction block per entry (B-BTB).
    kMultiBlock,  ///< Chained blocks per entry (MB-BTB, Section 6.4).
    kHetero,      ///< Block L1 backed by a region L2 (Section 3.6.2).
};

/** Which branches may pull their target block into the entry (MB-BTB). */
enum class PullPolicy : std::uint8_t {
    kNone,      ///< Plain B-BTB behaviour.
    kUncondDir, ///< Unconditional direct jumps only (excluding calls).
    kCallDir,   ///< + direct calls.
    kAllBr,     ///< + always-taken conditionals and stable indirects.
};

/** Geometry of one BTB level. */
struct BtbLevelGeom
{
    unsigned sets = 512;
    unsigned ways = 6;

    unsigned entries() const { return sets * ways; }

    bool operator==(const BtbLevelGeom &) const = default;
};

/** Full description of a BTB hierarchy configuration. */
struct BtbConfig
{
    BtbKind kind = BtbKind::kInstruction;

    /** Branch slots per entry (R-/B-/MB-BTB). */
    unsigned branch_slots = 1;

    /** I-BTB: fetch PCs per access (number of banks). */
    unsigned width = 16;
    /** I-BTB: idealized mode that keeps supplying PCs across taken
     *  branches (I-BTB 16 Skp in Fig. 4). */
    bool skip_taken = false;

    /** R-BTB: region size in bytes. */
    unsigned region_bytes = 64;
    /** R-BTB: even/odd set interleaved L1 serving two sequential regions
     *  per cycle (2L1 R-BTB, Section 6.2). */
    bool dual_region = false;

    /** B-/MB-BTB: entry reach in instructions (block size). */
    unsigned reach_instrs = 16;
    /** B-/MB-BTB: allow entry splitting (Section 6.3). */
    bool split = false;
    /** B-BTB ablation (Section 2.3): end blocks at sometimes-taken
     *  conditionals (Yeh/Patt-style) instead of falling through to the
     *  reach limit. Trades performance for the storage the paper
     *  discusses (the fall-through must be stored in the entry). */
    bool cond_ends_block = false;

    /** MB-BTB: pull policy and indirect stability threshold. */
    PullPolicy pull = PullPolicy::kNone;
    unsigned stability_threshold = 63;
    /** MB-BTB ablation (Section 6.4.2): allow the last branch slot to
     *  pull its target block (the paper disallows it, finding a slight
     *  advantage from the reduced redundancy). */
    bool allow_last_slot_pull = false;

    /** Hierarchy geometry; with @c ideal only @c l1 is used. */
    BtbLevelGeom l1{512, 6};
    BtbLevelGeom l2{1024, 13};
    bool ideal = false;
    unsigned l2_penalty = 3; ///< Bubbles on an L2-hit taken branch.

    /** Human-readable configuration name used in reports. */
    std::string name() const;

    bool operator==(const BtbConfig &) const = default;

    // ---- geometry helpers (Section 6.1 sizing) ---------------------------

    /** Table 1 realistic geometry for @p slots branch slots per entry. */
    static void realGeometry(unsigned slots, BtbLevelGeom &l1, BtbLevelGeom &l2);

    // ---- presets ----------------------------------------------------------

    static BtbConfig ibtb(unsigned width = 16, bool skip = false);
    static BtbConfig rbtb(unsigned slots, unsigned region_bytes = 64,
                          bool dual = false);
    static BtbConfig bbtb(unsigned slots, bool split = false,
                          unsigned reach = 16);
    static BtbConfig mbbtb(unsigned slots, PullPolicy pull,
                           unsigned reach = 16);
    /** Heterogeneous hierarchy: block-organized L1 (slots, optional
     *  splitting) backed by a region-organized L2 (Section 3.6.2). */
    static BtbConfig hetero(unsigned slots, bool split = true,
                            unsigned reach = 16);

    /** Turn any preset into the idealistic 512K-entry, 0-penalty variant. */
    BtbConfig &makeIdeal();
};

} // namespace btbsim

#endif // BTBSIM_CORE_BTB_CONFIG_H
