/**
 * @file
 * Region BTB: one aligned memory region per entry, with N branch slots.
 *
 * An access covers the region containing the fetch PC; with
 * @c dual_region (2L1 R-BTB, Section 6.2), the window extends into the
 * next sequential region when — and only when — that region's entry hits
 * the L1 (even/odd set interleaving only doubles L1 bandwidth).
 */

#ifndef BTBSIM_CORE_RBTB_H
#define BTBSIM_CORE_RBTB_H

#include <vector>

#include "core/btb_org.h"

namespace btbsim {

class RegionBtb : public BtbOrg
{
  public:
    explicit RegionBtb(const BtbConfig &cfg);

    int beginAccess(Addr pc, PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    void prefill(const Instruction &br) override;
    OccupancySample sampleOccupancy() const override;
    const BtbConfig &config() const override { return cfg_; }

    /** @p key is the region base address. */
    int
    peekLevel(Addr key) const override
    {
        if (table_.l1().set(key).probe(key) >= 0)
            return 1;
        if (!table_.ideal() && table_.l2().set(key).probe(key) >= 0)
            return 2;
        return 0;
    }

  private:
    struct Slot
    {
        std::uint32_t offset = 0; ///< Byte offset within the region.
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
        std::uint64_t tick = 0; ///< Slot-LRU recency.
    };

    struct Entry
    {
        std::vector<Slot> slots;
    };

    BtbConfig cfg_;
    TwoLevelTable<Entry> table_;
    std::uint64_t tick_ = 0;

    Addr regionBase(Addr pc) const { return alignDown(pc, cfg_.region_bytes); }

    void bundleSlots(PredictionBundle &b, Entry &e, Addr base, int level);
    void applySlotUpdate(const Instruction &br);
};

} // namespace btbsim

#endif // BTBSIM_CORE_RBTB_H
