#include "core/way_pred.h"

#include "common/env.h"

namespace btbsim {

WayPredMode
wayPredModeFromEnv()
{
    const std::string v = env::str("BTBSIM_WAYPRED", "off");
    if (v == "utag")
        return WayPredMode::kUtag;
    if (v == "mru")
        return WayPredMode::kMru;
    return WayPredMode::kOff;
}

WayPredictor::WayPredictor(WayPredMode mode, unsigned sets, unsigned ways,
                           const WayPredSink &sink)
    : mode_(mode), ways_(ways), mru_(sets, 0),
      utags_(static_cast<std::size_t>(sets) * ways, 0)
{
    StatSet &s = *sink.stats;
    const std::string p = sink.prefix;
    probes = &s[p + "probes"];
    correct = &s[p + "correct"];
    wrong = &s[p + "wrong"];
    fallbacks = &s[p + "fallbacks"];
    ways_read = &s[p + "ways_read"];
    misses = &s[p + "misses"];
}

} // namespace btbsim
