/**
 * @file
 * Instruction BTB: one branch per entry (the "classical" organization).
 *
 * An access models @c width banked probes with consecutive instruction
 * addresses, supplying up to @c width fetch PCs and ending at the first
 * predicted-taken branch. With @c skip_taken (I-BTB 16 Skp, Fig. 4), the
 * access keeps supplying PCs across taken branches — an idealization used
 * to gauge sensitivity to fetch-PC throughput.
 */

#ifndef BTBSIM_CORE_IBTB_H
#define BTBSIM_CORE_IBTB_H

#include "core/btb_org.h"

namespace btbsim {

class InstructionBtb : public BtbOrg
{
  public:
    explicit InstructionBtb(const BtbConfig &cfg);

    int beginAccess(Addr pc, PredictionBundle &b) override;
    bool chainAccess(Addr pc, Addr target, PredictionBundle &b) override;
    void endAccess(PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    void prefill(const Instruction &br) override;
    OccupancySample sampleOccupancy() const override;
    const BtbConfig &config() const override { return cfg_; }

    int
    peekLevel(Addr key) const override
    {
        if (table_.l1().set(key).probe(key) >= 0)
            return 1;
        if (!table_.ideal() && table_.l2().set(key).probe(key) >= 0)
            return 2;
        return 0;
    }

  private:
    struct Entry
    {
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
    };

    BtbConfig cfg_;
    TwoLevelTable<Entry> table_;

    void fillWindow(Addr start, unsigned count, PredictionBundle &b);
    void commitProbed(PredictionBundle &b);
};

} // namespace btbsim

#endif // BTBSIM_CORE_IBTB_H
