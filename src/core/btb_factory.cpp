#include <cstdlib>
#include <memory>
#include <sstream>

#include "core/bbtb.h"
#include "core/btb_org.h"
#include "core/btb_registry.h"
#include "core/hetero.h"
#include "core/ibtb.h"
#include "core/mbbtb.h"
#include "core/rbtb.h"

namespace btbsim {

namespace {

/** "rbtb3" -> 3 for prefix "rbtb"; false when the prefix or the number
 *  does not match. */
bool
numberedToken(const std::string &tok, const char *prefix, unsigned &n)
{
    const std::string p(prefix);
    if (tok.rfind(p, 0) != 0 || tok.size() == p.size())
        return false;
    n = static_cast<unsigned>(std::atoi(tok.c_str() + p.size()));
    return n != 0;
}

// Built-in organizations, keyed by the canonical names BtbKind maps to.
// Registration order defines token-parser priority and --help order.

const BtbRegistrar reg_ibtb{
    "ibtb", "Instruction BTB: one branch per entry (token ibtb<W>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<InstructionBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        unsigned n = 0;
        if (!numberedToken(tok, "ibtb", n))
            return false;
        out = BtbConfig::ibtb(n);
        return true;
    }};

const BtbRegistrar reg_rbtb{
    "rbtb", "Region BTB: slots per aligned region (token rbtb<S>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<RegionBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        unsigned n = 0;
        if (!numberedToken(tok, "rbtb", n))
            return false;
        out = BtbConfig::rbtb(n);
        return true;
    }};

const BtbRegistrar reg_bbtb{
    "bbtb", "Block BTB: slots per dynamic block (token bbtb<S>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<BlockBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        unsigned n = 0;
        if (!numberedToken(tok, "bbtb", n))
            return false;
        out = BtbConfig::bbtb(n);
        return true;
    }};

const BtbRegistrar reg_mbbtb{
    "mbbtb", "Multi-block BTB with AllBr pull (token mbbtb<S>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<MultiBlockBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        unsigned n = 0;
        if (!numberedToken(tok, "mbbtb", n))
            return false;
        out = BtbConfig::mbbtb(n, PullPolicy::kAllBr);
        return true;
    }};

const BtbRegistrar reg_hetero{
    "hetero", "Heterogeneous BTB: block L1 over region L2 (token hetero<S>)",
    [](const BtbConfig &c) -> std::unique_ptr<BtbOrg> {
        return std::make_unique<HeteroBtb>(c);
    },
    [](const std::string &tok, BtbConfig &out) {
        unsigned n = 0;
        if (!numberedToken(tok, "hetero", n))
            return false;
        out = BtbConfig::hetero(n);
        return true;
    }};

/** Canonical registry key for a built-in kind. */
const char *
kindKey(BtbKind kind)
{
    switch (kind) {
      case BtbKind::kInstruction:
        return "ibtb";
      case BtbKind::kRegion:
        return "rbtb";
      case BtbKind::kBlock:
        return "bbtb";
      case BtbKind::kMultiBlock:
        return "mbbtb";
      case BtbKind::kHetero:
        return "hetero";
    }
    return "";
}

} // namespace

void
BtbConfig::realGeometry(unsigned slots, BtbLevelGeom &l1, BtbLevelGeom &l2)
{
    // Section 6.1: structures are resized so the total number of branch
    // slots matches the 3K-entry L1 / 13K-entry L2 I-BTB.
    switch (slots) {
      case 1:
        l1 = {512, 6};
        l2 = {1024, 13};
        return;
      case 2:
        l1 = {512, 3};
        l2 = {512, 13};
        return;
      case 3:
        l1 = {256, 4};
        l2 = {256, 18};
        return;
      case 4:
        l1 = {256, 3};
        l2 = {256, 13};
        return;
      default: {
        // Generic iso-slot scaling for the remaining sweep points.
        const unsigned l1_entries = std::max(64u, 3072 / slots);
        const unsigned l2_entries = std::max(256u, 13312 / slots);
        unsigned sets1 = 1;
        while (sets1 * 2 * 4 <= l1_entries)
            sets1 *= 2;
        unsigned sets2 = 1;
        while (sets2 * 2 * 8 <= l2_entries)
            sets2 *= 2;
        l1 = {sets1, std::max(1u, l1_entries / sets1)};
        l2 = {sets2, std::max(1u, l2_entries / sets2)};
        return;
      }
    }
}

BtbConfig
BtbConfig::ibtb(unsigned width, bool skip)
{
    BtbConfig c;
    c.kind = BtbKind::kInstruction;
    c.width = width;
    c.skip_taken = skip;
    c.branch_slots = 1;
    realGeometry(1, c.l1, c.l2);
    return c;
}

BtbConfig
BtbConfig::rbtb(unsigned slots, unsigned region_bytes, bool dual)
{
    BtbConfig c;
    c.kind = BtbKind::kRegion;
    c.branch_slots = slots;
    c.region_bytes = region_bytes;
    c.dual_region = dual;
    realGeometry(slots, c.l1, c.l2);
    return c;
}

BtbConfig
BtbConfig::bbtb(unsigned slots, bool split, unsigned reach)
{
    BtbConfig c;
    c.kind = BtbKind::kBlock;
    c.branch_slots = slots;
    c.split = split;
    c.reach_instrs = reach;
    realGeometry(slots, c.l1, c.l2);
    return c;
}

BtbConfig
BtbConfig::mbbtb(unsigned slots, PullPolicy pull, unsigned reach)
{
    BtbConfig c;
    c.kind = BtbKind::kMultiBlock;
    c.branch_slots = slots;
    c.pull = pull;
    c.reach_instrs = reach;
    realGeometry(slots, c.l1, c.l2);
    return c;
}

BtbConfig
BtbConfig::hetero(unsigned slots, bool split, unsigned reach)
{
    BtbConfig c;
    c.kind = BtbKind::kHetero;
    c.branch_slots = slots;
    c.split = split;
    c.reach_instrs = reach;
    realGeometry(slots, c.l1, c.l2);
    // The L2 is region-organized with kRegionSlots per entry: size it
    // iso-slot against the 13K-slot homogeneous L2.
    const unsigned l2_entries =
        std::max(256u, 13312u / HeteroBtb::kRegionSlots);
    unsigned sets = 1;
    while (sets * 2 * 8 <= l2_entries)
        sets *= 2;
    c.l2 = {sets, std::max(1u, l2_entries / sets)};
    return c;
}

BtbConfig &
BtbConfig::makeIdeal()
{
    ideal = true;
    l2_penalty = 0;
    return *this;
}

std::string
BtbConfig::name() const
{
    std::ostringstream os;
    switch (kind) {
      case BtbKind::kInstruction:
        os << "I-BTB " << width;
        if (skip_taken)
            os << " Skp";
        break;
      case BtbKind::kRegion:
        if (dual_region)
            os << "2L1 ";
        os << "R-BTB";
        if (region_bytes != 64)
            os << " " << region_bytes << "B";
        os << " " << branch_slots << "BS";
        break;
      case BtbKind::kBlock:
        os << "B-BTB";
        if (reach_instrs != 16)
            os << " " << reach_instrs;
        os << " " << branch_slots << "BS";
        if (split)
            os << " Splt";
        if (cond_ends_block)
            os << " CndEnd";
        break;
      case BtbKind::kHetero:
        os << "Hetero-BTB";
        if (reach_instrs != 16)
            os << " " << reach_instrs;
        os << " " << branch_slots << "BS";
        if (split)
            os << " Splt";
        break;
      case BtbKind::kMultiBlock:
        os << "MB-BTB";
        if (reach_instrs != 16)
            os << " " << reach_instrs;
        os << " " << branch_slots << "BS";
        switch (pull) {
          case PullPolicy::kNone: break;
          case PullPolicy::kUncondDir: os << " UncndDir"; break;
          case PullPolicy::kCallDir: os << " CallDir"; break;
          case PullPolicy::kAllBr: os << " AllBr"; break;
        }
        if (allow_last_slot_pull)
            os << " LSP";
        if (stability_threshold != 63)
            os << " T" << stability_threshold;
        break;
    }
    if (ideal)
        os << " (ideal)";
    return os.str();
}

std::unique_ptr<BtbOrg>
makeBtb(const BtbConfig &cfg)
{
    return BtbRegistry::instance().make(kindKey(cfg.kind), cfg);
}

} // namespace btbsim
