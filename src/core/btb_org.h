/**
 * @file
 * Abstract BTB organization interface and the two-level storage helper.
 *
 * The frontend's PC-generation stage performs one BTB *access* per cycle
 * (two region probes for the 2L1 R-BTB). An access opens a window of
 * instruction PCs the organization can supply: beginAccess() fills a
 * PredictionBundle (window segments plus branch slots) and the frontend
 * walks the actual trace through it inline — see prediction_bundle.h.
 * This keeps the organizations swappable exactly as the paper requires
 * while letting the trace-driven frontend detect every divergence class
 * (BTB miss, branch-slot miss, stale target, direction mispredict)
 * without a virtual call per instruction.
 */

#ifndef BTBSIM_CORE_BTB_ORG_H
#define BTBSIM_CORE_BTB_ORG_H

#include <cstdint>
#include <memory>

#include "common/stats.h"
#include "common/types.h"
#include "core/btb_config.h"
#include "core/prediction_bundle.h"
#include "core/soa_table.h"
#include "trace/instruction.h"

namespace btbsim {

/** Periodic structure sample (Sections 5 and 6.1 metrics). */
struct OccupancySample
{
    double l1_slot_occupancy = 0.0; ///< Used slots per valid L1 entry.
    double l2_slot_occupancy = 0.0;
    double l1_redundancy = 0.0; ///< Avg entries tracking each branch PC.
    double l2_redundancy = 0.0;
    std::uint64_t l1_entries = 0;
    std::uint64_t l2_entries = 0;
};

/**
 * A BTB organization over a two-level hierarchy.
 *
 * Protocol per access: beginAccess(pc, bundle) once; the frontend then
 * walks the bundle inline with PredictionBundle::probe() for successive
 * PCs along the (actual) path — no virtual dispatch per instruction.
 * When a tracked branch with @c follow is predicted taken and verified
 * correct, the walker follows a recorded continuation segment (MB-BTB
 * multi-block supply) or calls chainAccess() to extend the window at the
 * dynamic target (I-BTB Skp). When the walk ends, endAccess() commits
 * any side effects the organization deferred (bundle.wants_end_access).
 *
 * update() is called for every actual branch instruction in program order
 * (immediate update, per Section 4.1).
 */
class BtbOrg
{
  public:
    virtual ~BtbOrg() = default;

    /**
     * Start an access at @p pc, filling @p b (a fresh, default-constructed
     * bundle) with the window and its branch slots.
     * @return hit level (0 = miss, 1, 2).
     */
    virtual int beginAccess(Addr pc, PredictionBundle &b) = 0;

    /**
     * Extend the current access across the correct-taken branch at @p pc
     * toward @p target by re-filling @p b (only called when the bundle
     * has @c dynamic_chain set and no recorded continuation matches).
     * @return true if the access keeps supplying PCs at @p target.
     */
    virtual bool
    chainAccess(Addr pc, Addr target, PredictionBundle &b)
    {
        (void)pc;
        (void)target;
        (void)b;
        return false;
    }

    /** Commit side effects deferred during the walk (only called when the
     *  bundle has @c wants_end_access set). Runs after the last probe and
     *  before any update() of the access's branches. */
    virtual void endAccess(PredictionBundle &b) { (void)b; }

    /**
     * Train with the actual branch @p br. @p resteer is true when the
     * frontend was redirected at this branch (any misfetch/mispredict).
     */
    virtual void update(const Instruction &br, bool resteer) = 0;

    /**
     * Decode-based prefill (Boomerang-style, Section 7.3): insert a
     * branch discovered by predecoding a fetched I-cache line. Only
     * meaningful for organizations whose entries are not tied to the
     * dynamic block structure (I-BTB, R-BTB); the default ignores it —
     * matching the paper's observation that decode-based prefetching
     * "may not always be able to chain blocks".
     */
    virtual void prefill(const Instruction &br) { (void)br; }

    /** Sample slot occupancy and redundancy across the structure. */
    virtual OccupancySample sampleOccupancy() const = 0;

    virtual const BtbConfig &config() const = 0;

    /**
     * Debug probe: the level (1 or 2) at which an entry keyed by @p key
     * currently resides, 0 when absent, or -1 when the organization does
     * not support the query. Must not disturb LRU or fill state — it
     * exists for the differential checker (src/check/), never for the
     * simulated machinery.
     */
    virtual int
    peekLevel(Addr key) const
    {
        (void)key;
        return -1;
    }

    /** Bubbles charged when a taken branch was supplied by @p level. */
    unsigned
    takenPenalty(int level) const
    {
        if (level >= 2)
            return config().l2_penalty;
        return 0;
    }

    /// Occurrence counters (accesses, hits per level, etc.).
    StatSet stats;

    /** Where bundle-walk helpers account their counters. Defaults to this
     *  organization's own @c stats; a checking decorator points it at the
     *  wrapped organization's set so harvested counters stay identical
     *  with and without checking. */
    StatSet *walk_stats = &stats;
};

/**
 * Two-level inclusive storage shared by all organizations. L2 is the
 * backing level; L1 hits are fast (0-cycle turnaround), L2 hits fill into
 * L1 and charge the taken-branch penalty. With BtbConfig::ideal, only a
 * single huge 0-penalty level exists.
 */
template <typename Entry>
class TwoLevelTable
{
  public:
    using Table = SoaSetTable<Entry>;

    /** @p waypred_stats, when non-null, attaches the BTBSIM_WAYPRED way
     *  predictor to both levels with counters under waypred.l{1,2}.*. */
    TwoLevelTable(const BtbConfig &cfg, unsigned index_shift,
                  StatSet *waypred_stats = nullptr)
        : ideal_(cfg.ideal),
          l1_(cfg.ideal ? 16384 : cfg.l1.sets, cfg.ideal ? 32 : cfg.l1.ways,
              index_shift, WayPredSink{waypred_stats, "waypred.l1."}),
          l2_(cfg.ideal ? 1 : cfg.l2.sets, cfg.ideal ? 1 : cfg.l2.ways,
              index_shift, WayPredSink{waypred_stats, "waypred.l2."})
    {}

    /**
     * Hierarchy lookup. On an L2 hit the entry is filled into L1.
     * @return {entry pointer or nullptr, level (0/1/2)}.
     */
    std::pair<Entry *, int>
    lookup(Addr key)
    {
        if (Entry *e = touchingFind(l1_, key))
            return {e, 1};
        if (ideal_)
            return {nullptr, 0};
        if (Entry *e = touchingFind(l2_, key)) {
            Entry &filled = fillEntry(l1_, key);
            filled = *e;
            return {&filled, 2};
        }
        return {nullptr, 0};
    }

    /** Lookup without LRU update or fill (stats probes). */
    const Entry *
    peek(Addr key) const
    {
        if (const Entry *e = peekFind(l1_, key))
            return e;
        if (!ideal_)
            return peekFind(l2_, key);
        return nullptr;
    }

    /**
     * Find the entry for updating: L1 first, then L2 (without promoting).
     * @return pointers to the L1 and L2 copies (either may be null).
     */
    std::pair<Entry *, Entry *>
    findBoth(Addr key)
    {
        Entry *a = touchingFind(l1_, key);
        Entry *b = ideal_ ? nullptr : touchingFind(l2_, key);
        return {a, b};
    }

    /** Allocate in both levels (immediate update, inclusive fill). */
    std::pair<Entry *, Entry *>
    allocate(Addr key)
    {
        Entry *a = &fillEntry(l1_, key);
        Entry *b = ideal_ ? nullptr : &fillEntry(l2_, key);
        return {a, b};
    }

    /** Write @p value through to both levels. */
    void
    writeBoth(Addr key, const Entry &value)
    {
        if (Entry *e = touchingFind(l1_, key))
            *e = value;
        if (!ideal_)
            if (Entry *e = touchingFind(l2_, key))
                *e = value;
    }

    /** Write @p value to both levels, allocating where absent. */
    void
    upsert(Addr key, const Entry &value)
    {
        if (Entry *e = touchingFind(l1_, key))
            *e = value;
        else
            fillEntry(l1_, key) = value;
        if (!ideal_) {
            if (Entry *e = touchingFind(l2_, key))
                *e = value;
            else
                fillEntry(l2_, key) = value;
        }
    }

    /** Authoritative copy for read-modify-write updates: L2 when present
     *  (it outlives L1 residency), else L1. */
    const Entry *
    peekAuthoritative(Addr key) const
    {
        if (!ideal_)
            if (const Entry *e = peekFind(l2_, key))
                return e;
        return peekFind(l1_, key);
    }

    Table &l1() { return l1_; }
    Table &l2() { return l2_; }
    const Table &l1() const { return l1_; }
    const Table &l2() const { return l2_; }
    bool ideal() const { return ideal_; }

  private:
    bool ideal_;
    Table l1_;
    Table l2_;
};

/** Construct the organization described by @p cfg. */
std::unique_ptr<BtbOrg> makeBtb(const BtbConfig &cfg);

// ---- PredictionBundle walk hooks (need the complete BtbOrg) ---------------

inline bool
PredictionBundle::chain(BtbOrg &org, Addr pc, Addr target)
{
    if (cur_seg + 1 < n_segments && segments[cur_seg + 1].start == target) {
        // Recorded continuation: the entry chained this block (MB-BTB).
        ++cur_seg;
        ++(*org.walk_stats)["chained_blocks"];
        return true;
    }
    if (dynamic_chain)
        return org.chainAccess(pc, target, *this);
    return false;
}

inline void
PredictionBundle::finish(BtbOrg &org)
{
    if (wants_end_access)
        org.endAccess(*this);
}

} // namespace btbsim

#endif // BTBSIM_CORE_BTB_ORG_H
