#include "core/rbtb.h"

#include <algorithm>
#include <unordered_map>

#include "check/fault.h"

namespace btbsim {

RegionBtb::RegionBtb(const BtbConfig &cfg)
    : cfg_(cfg), table_(cfg, log2i(cfg.region_bytes), &stats)
{}

void
RegionBtb::bundleSlots(PredictionBundle &b, Entry &e, Addr base, int level)
{
    for (Slot &s : e.slots)
        if (s.type != BranchClass::kNone)
            b.addSlot(0, base + s.offset, s.type, s.target, level, &s.tick);
}

int
RegionBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++stats["accesses"];
    const Addr region0 = regionBase(pc);
    Addr window_end = region0 + cfg_.region_bytes;

    auto [e0, lvl0] = table_.lookup(region0);

    Entry *entry1 = nullptr;
    if (cfg_.dual_region) {
        // The interleaved L1 can serve the next sequential region in the
        // same cycle, but only on an L1 hit (the L2 is not interleaved).
        const Addr region1 = region0 + cfg_.region_bytes;
        if (Entry *e1 = touchingFind(table_.l1(), region1)) {
            entry1 = e1;
            window_end = region1 + cfg_.region_bytes;
        }
    }

    b.tick_counter = &tick_;
    b.addSegment(region0, window_end);
    if (e0)
        bundleSlots(b, *e0, region0, lvl0);
    if (entry1)
        bundleSlots(b, *entry1, region0 + cfg_.region_bytes, 1);
    b.sortSlots(); // Entry slot vectors are not offset-sorted.
    return lvl0;
}

void
RegionBtb::applySlotUpdate(const Instruction &br)
{
    const Addr region = regionBase(br.pc);
    const auto offset = static_cast<std::uint32_t>(br.pc - region);

    auto [l1, l2] = table_.findBoth(region);
    if (!l1 && !l2) {
        auto [a, b] = table_.allocate(region);
        l1 = a;
        l2 = b;
        ++stats["allocs"];
    }

    bool displaced = false;
    for (Entry *e : {l1, l2}) {
        if (!e)
            continue;
        Slot *hit = nullptr;
        for (Slot &s : e->slots)
            if (s.offset == offset)
                hit = &s;
        if (!hit) {
            if (e->slots.size() < cfg_.branch_slots) {
                e->slots.emplace_back();
                hit = &e->slots.back();
            } else {
                // Slot contention: displace the least recently used slot.
                hit = &*std::min_element(
                    e->slots.begin(), e->slots.end(),
                    [](const Slot &a, const Slot &b) { return a.tick < b.tick; });
                displaced = true;
            }
            hit->offset = offset;
        }
        hit->type = br.branch;
        hit->target = br.takenTarget();
        hit->tick = ++tick_;
        BTBSIM_FAULT_POINT("rbtb_update_target",
                           hit->target = br.takenTarget() + kInstBytes);
    }
    if (displaced)
        ++stats["slot_displacements"];
}

void
RegionBtb::update(const Instruction &br, bool resteer)
{
    (void)resteer;
    if (!br.taken)
        return;
    applySlotUpdate(br);
}

void
RegionBtb::prefill(const Instruction &br)
{
    // Non-destructive prefill: never displace demand-trained slots, and
    // skip branches already visible through their region entry.
    const Addr region = regionBase(br.pc);
    const auto offset = static_cast<std::uint32_t>(br.pc - region);
    if (const Entry *e = table_.peek(region)) {
        for (const Slot &s : e->slots)
            if (s.offset == offset)
                return;
        if (e->slots.size() >= cfg_.branch_slots)
            return; // Entry full: a prefill must not evict training.
    }
    applySlotUpdate(br);
    ++stats["prefills"];
}

OccupancySample
RegionBtb::sampleOccupancy() const
{
    OccupancySample s;
    auto probe = [](const SoaSetTable<Entry> &t, double &occ,
                    std::uint64_t &n) {
        std::uint64_t entries = 0, slots = 0;
        t.forEach([&](Addr, const Entry &e) {
            ++entries;
            slots += e.slots.size();
        });
        n = entries;
        occ = entries ? static_cast<double>(slots) / entries : 0.0;
    };
    probe(table_.l1(), s.l1_slot_occupancy, s.l1_entries);
    probe(table_.l2(), s.l2_slot_occupancy, s.l2_entries);
    s.l1_redundancy = 1.0; // A branch lives in at most one region entry.
    s.l2_redundancy = 1.0;
    return s;
}

} // namespace btbsim
