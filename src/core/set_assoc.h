/**
 * @file
 * Generic set-associative table with true-LRU replacement, shared by the
 * BTB organizations, caches and TLBs.
 */

#ifndef BTBSIM_CORE_SET_ASSOC_H
#define BTBSIM_CORE_SET_ASSOC_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace btbsim {

/**
 * Set-associative container keyed by address. @p Entry must be default
 * constructible; the table wraps it with validity, key and LRU state.
 *
 * @tparam Entry payload type.
 */
template <typename Entry>
class SetAssocTable
{
  public:
    struct Way
    {
        bool valid = false;
        Addr key = 0;
        std::uint64_t lru = 0;
        Entry data{};
    };

    /**
     * @param sets Number of sets (any positive value; non-power-of-two is
     *             handled with modulo indexing).
     * @param ways Associativity.
     * @param index_shift Right shift applied to the key before set
     *                    selection (e.g., 6 for 64B-granular keys).
     */
    SetAssocTable(unsigned sets, unsigned ways, unsigned index_shift)
        : sets_(sets), ways_(ways), shift_(index_shift),
          array_(static_cast<std::size_t>(sets) * ways)
    {}

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }
    std::size_t capacity() const { return array_.size(); }

    /** Set index @p key maps to (external residency modeling). */
    std::size_t
    setIndex(Addr key) const
    {
        return static_cast<std::size_t>((key >> shift_) % sets_);
    }

    /** Read-only view of the ways() ways of set @p index. */
    const Way *
    setWays(std::size_t index) const
    {
        return &array_[index * ways_];
    }

    /** Find the entry for @p key; returns nullptr on miss. Touches LRU. */
    Entry *
    find(Addr key)
    {
        Way *w = findWay(key);
        if (!w)
            return nullptr;
        w->lru = ++tick_;
        return &w->data;
    }

    /** Find without touching LRU (stats probes). */
    const Entry *
    peek(Addr key) const
    {
        const std::size_t base = setBase(key);
        for (unsigned i = 0; i < ways_; ++i) {
            const Way &w = array_[base + i];
            if (w.valid && w.key == key)
                return &w.data;
        }
        return nullptr;
    }

    /**
     * Insert a fresh (default-constructed) entry for @p key, evicting the
     * LRU way if needed. If @p key already resides, its payload is reset.
     * @return reference to the (reset) payload.
     */
    Entry &
    insert(Addr key)
    {
        const std::size_t base = setBase(key);
        Way *victim = nullptr;
        for (unsigned i = 0; i < ways_; ++i) {
            Way &w = array_[base + i];
            if (w.valid && w.key == key) {
                victim = &w;
                break;
            }
            if (!w.valid) {
                if (!victim || victim->valid)
                    victim = &w;
            } else if (!victim || (victim->valid && w.lru < victim->lru)) {
                victim = &w;
            }
        }
        if (victim->valid && victim->key != key)
            ++evictions_;
        victim->valid = true;
        victim->key = key;
        victim->lru = ++tick_;
        victim->data = Entry{};
        return victim->data;
    }

    /** Insert @p key with a copy of @p value (hierarchy fills). */
    Entry &
    fill(Addr key, const Entry &value)
    {
        Entry &e = insert(key);
        e = value;
        return e;
    }

    /** Remove @p key if present. */
    void
    erase(Addr key)
    {
        Way *w = findWay(key);
        if (w)
            w->valid = false;
    }

    /** Invalidate everything. */
    void
    clear()
    {
        for (Way &w : array_)
            w.valid = false;
    }

    /** Visit every valid entry: f(key, const Entry&). */
    template <typename F>
    void
    forEach(F &&f) const
    {
        for (const Way &w : array_)
            if (w.valid)
                f(w.key, w.data);
    }

    std::uint64_t evictions() const { return evictions_; }

  private:
    std::size_t
    setBase(Addr key) const
    {
        return setIndex(key) * ways_;
    }

    Way *
    findWay(Addr key)
    {
        const std::size_t base = setBase(key);
        for (unsigned i = 0; i < ways_; ++i) {
            Way &w = array_[base + i];
            if (w.valid && w.key == key)
                return &w;
        }
        return nullptr;
    }

    unsigned sets_;
    unsigned ways_;
    unsigned shift_;
    std::vector<Way> array_;
    std::uint64_t tick_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_CORE_SET_ASSOC_H
