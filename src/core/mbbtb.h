/**
 * @file
 * MultiBlock BTB (Section 6.4): each entry chains up to N+1 blocks by
 * "pulling" the target block of eligible branches into the entry.
 *
 * Eligibility follows the paper's policies:
 *  - kUncndDir: unconditional direct jumps (not calls);
 *  - kCallDir:  + direct calls;
 *  - kAllBr:    + conditional branches taken at allocation (immediately)
 *               and non-return indirect branches whose target repeated
 *               @c stability_threshold times in a row (6-bit counter).
 *
 * The last branch slot of an entry never pulls (reduces redundancy,
 * Section 6.4.2). When a pulled conditional turns out not taken, or a
 * pulled indirect changes target, the entry is immediately downgraded:
 * the target block and its followers are removed (Section 6.4.3).
 */

#ifndef BTBSIM_CORE_MBBTB_H
#define BTBSIM_CORE_MBBTB_H

#include <vector>

#include "core/btb_org.h"

namespace btbsim {

class MultiBlockBtb : public BtbOrg
{
  public:
    explicit MultiBlockBtb(const BtbConfig &cfg);

    int beginAccess(Addr pc, PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    OccupancySample sampleOccupancy() const override;
    const BtbConfig &config() const override { return cfg_; }

  private:
    struct Slot
    {
        std::uint8_t blk = 0;     ///< Which chained block the slot lives in.
        std::uint32_t offset = 0; ///< Byte offset within that block.
        BranchClass type = BranchClass::kNone;
        Addr target = 0;
        bool follow = false;      ///< Taking it continues in-entry.
        std::uint8_t stabl = 0;   ///< 6-bit stability counter.
        std::uint64_t tick = 0;
    };

    struct Block
    {
        Addr start = 0;
        std::uint32_t len = 0; ///< Bytes covered by this chained block.
    };

    struct Entry
    {
        std::vector<Block> blocks; ///< blocks[0].start == entry key.
        std::vector<Slot> slots;   ///< Sorted by (blk, offset).
    };

    BtbConfig cfg_;
    TwoLevelTable<Entry> table_;
    std::uint64_t tick_ = 0;

    // Update-side cursor.
    bool cur_valid_ = false;
    Addr cur_key_ = 0;
    unsigned cur_blk_ = 0;
    Addr cur_start_ = 0;

    std::uint32_t reachBytes() const
    {
        return cfg_.reach_instrs * static_cast<std::uint32_t>(kInstBytes);
    }

    Entry freshEntry(Addr key) const;
    static std::uint32_t usedBytes(const Entry &e, std::size_t upto);
    Slot *findSlot(Entry &e, unsigned blk, std::uint32_t offset);
    void sortSlots(Entry &e);
    bool eligibleToPull(const Entry &e, const Slot &slot,
                        std::size_t slot_index) const;
    void doPull(Entry &e, Slot &slot);
    void removePulled(Entry &e, std::size_t slot_index);
    void normalizeCursor(Addr pc);
    void resetCursor(Addr pc);
    void updateTaken(const Instruction &br);
    void updateNotTaken(const Instruction &br, bool resteer);
};

} // namespace btbsim

#endif // BTBSIM_CORE_MBBTB_H
