#include "core/mbbtb.h"

#include <algorithm>
#include <cassert>
#include <unordered_map>

#include "check/fault.h"
#include "common/sat_counter.h"

namespace btbsim {

MultiBlockBtb::MultiBlockBtb(const BtbConfig &cfg)
    : cfg_(cfg), table_(cfg, log2i(kInstBytes), &stats)
{}

MultiBlockBtb::Entry
MultiBlockBtb::freshEntry(Addr key) const
{
    Entry e;
    e.blocks.push_back({key, reachBytes()});
    return e;
}

std::uint32_t
MultiBlockBtb::usedBytes(const Entry &e, std::size_t upto)
{
    std::uint32_t sum = 0;
    for (std::size_t i = 0; i < upto && i < e.blocks.size(); ++i)
        sum += e.blocks[i].len;
    return sum;
}

MultiBlockBtb::Slot *
MultiBlockBtb::findSlot(Entry &e, unsigned blk, std::uint32_t offset)
{
    for (Slot &s : e.slots)
        if (s.blk == blk && s.offset == offset)
            return &s;
    return nullptr;
}

void
MultiBlockBtb::sortSlots(Entry &e)
{
    std::sort(e.slots.begin(), e.slots.end(),
              [](const Slot &a, const Slot &b) {
                  return a.blk != b.blk ? a.blk < b.blk : a.offset < b.offset;
              });
}

// ---- access protocol -------------------------------------------------------

int
MultiBlockBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++stats["accesses"];
    auto [e, lvl] = table_.lookup(pc);
    b.tick_counter = &tick_;
    if (!e) {
        b.addSegment(pc, pc + reachBytes());
        return lvl;
    }
    // One segment per chained block: segments past the first are the
    // entry's continuation records, entered only through chain() on a
    // correct-taken @c follow branch.
    for (const Block &blk : e->blocks)
        b.addSegment(blk.start, blk.start + blk.len);
    for (Slot &s : e->slots) {
        if (s.blk >= e->blocks.size() ||
            s.offset >= e->blocks[s.blk].len)
            continue; // Beyond a truncated block: unreachable by the walk.
        // A pulled slot replaced its fall-through with the target block,
        // so a not-taken prediction must end the access (Section 6.4.1).
        b.addSlot(s.blk, e->blocks[s.blk].start + s.offset, s.type,
                  s.target, lvl, &s.tick, s.follow, s.follow);
    }
    return lvl; // Entry slots are kept (blk, offset)-sorted.
}

// ---- pull / downgrade machinery --------------------------------------------

bool
MultiBlockBtb::eligibleToPull(const Entry &e, const Slot &slot,
                              std::size_t slot_index) const
{
    if (cfg_.pull == PullPolicy::kNone)
        return false;
    // The last branch slot of an entry never pulls (Section 6.4.2),
    // unless the ablation flag re-enables it.
    if (!cfg_.allow_last_slot_pull && slot_index + 1 >= cfg_.branch_slots)
        return false;
    // Pulls only extend the chain at the end of the entry.
    if (slot.blk + 1u != e.blocks.size())
        return false;
    // The slot must be the deepest in the entry (nothing beyond it).
    for (const Slot &o : e.slots)
        if (o.blk > slot.blk || (o.blk == slot.blk && o.offset > slot.offset))
            return false;
    if (e.blocks.size() >= cfg_.branch_slots + 1)
        return false;
    // Remaining reach budget for the pulled block.
    const std::uint32_t prefix = usedBytes(e, slot.blk);
    if (prefix + slot.offset + kInstBytes >= reachBytes())
        return false;

    switch (slot.type) {
      case BranchClass::kUncondDirect:
        return true;
      case BranchClass::kDirectCall:
        return cfg_.pull >= PullPolicy::kCallDir;
      case BranchClass::kCondDirect:
        return cfg_.pull == PullPolicy::kAllBr &&
               slot.stabl >= cfg_.stability_threshold;
      case BranchClass::kIndirectJump:
      case BranchClass::kIndirectCall:
        return cfg_.pull == PullPolicy::kAllBr &&
               slot.stabl >= cfg_.stability_threshold;
      case BranchClass::kReturn:
      case BranchClass::kNone:
        return false;
    }
    return false;
}

void
MultiBlockBtb::doPull(Entry &e, Slot &slot)
{
    const std::uint32_t prefix = usedBytes(e, slot.blk);
    const std::uint32_t term = slot.offset + kInstBytes;
    e.blocks[slot.blk].len = term;
    const std::uint32_t remaining = reachBytes() - (prefix + term);
    e.blocks.push_back({slot.target, remaining});
    BTBSIM_FAULT_POINT("mbbtb_pull_seam",
                       e.blocks.back().start = slot.target + kInstBytes);
    slot.follow = true;
    ++stats["pulls"];
}

void
MultiBlockBtb::removePulled(Entry &e, std::size_t slot_index)
{
    Slot &slot = e.slots[slot_index];
    const unsigned keep_blk = slot.blk;
    slot.follow = false;
    slot.stabl = 0;
    if (e.blocks.size() > keep_blk + 1)
        e.blocks.resize(keep_blk + 1);
    std::erase_if(e.slots,
                  [&](const Slot &s) { return s.blk > keep_blk; });
    // Restore the fall-through coverage of the (now last) block.
    const std::uint32_t prefix = usedBytes(e, keep_blk);
    e.blocks[keep_blk].len = reachBytes() - prefix;
    ++stats["downgrades"];
}

// ---- update-side cursor -----------------------------------------------------

void
MultiBlockBtb::resetCursor(Addr pc)
{
    cur_valid_ = true;
    cur_key_ = pc;
    cur_blk_ = 0;
    cur_start_ = pc;
}

void
MultiBlockBtb::normalizeCursor(Addr pc)
{
    if (!cur_valid_ || pc < cur_start_) {
        resetCursor(pc);
        return;
    }
    for (int guard = 0; guard < 4096; ++guard) {
        const Entry *e = table_.peekAuthoritative(cur_key_);
        std::uint32_t len = reachBytes();
        if (e && cur_blk_ < e->blocks.size() &&
            e->blocks[cur_blk_].start == cur_start_) {
            len = e->blocks[cur_blk_].len;
        } else if (cur_blk_ != 0) {
            // Entry changed underneath the cursor; restart at cur_start_.
            cur_key_ = cur_start_;
            cur_blk_ = 0;
            continue;
        } else if (e) {
            len = e->blocks[0].len;
        }
        if (pc < cur_start_ + len)
            return;
        // Sequential flow ran off the end of this block: the fall-through
        // begins a new entry.
        cur_start_ += len;
        cur_key_ = cur_start_;
        cur_blk_ = 0;
    }
    resetCursor(pc);
}

// ---- updates ----------------------------------------------------------------

void
MultiBlockBtb::updateTaken(const Instruction &br)
{
    normalizeCursor(br.pc);

    Entry canon;
    bool fresh = false;
    if (const Entry *e = table_.peekAuthoritative(cur_key_)) {
        canon = *e;
        if (cur_blk_ >= canon.blocks.size() ||
            canon.blocks[cur_blk_].start != cur_start_) {
            // Inconsistent cursor (entry mutated): restart as a new entry
            // keyed at the current block start.
            cur_key_ = cur_start_;
            cur_blk_ = 0;
            if (const Entry *e2 = table_.peekAuthoritative(cur_key_)) {
                canon = *e2;
            } else {
                canon = freshEntry(cur_key_);
                fresh = true;
            }
        }
    } else {
        if (cur_blk_ != 0) {
            cur_key_ = cur_start_;
            cur_blk_ = 0;
        }
        canon = freshEntry(cur_key_);
        fresh = true;
    }
    if (fresh)
        ++stats["allocs"];

    auto offset = static_cast<std::uint32_t>(br.pc - cur_start_);
    if (offset >= canon.blocks[cur_blk_].len) {
        // Shrunk block (entry mutated since normalization): restart with
        // the branch opening a new block.
        resetCursor(br.pc);
        if (const Entry *e2 = table_.peekAuthoritative(cur_key_)) {
            canon = *e2;
        } else {
            canon = freshEntry(cur_key_);
            ++stats["allocs"];
        }
        offset = 0;
    }

    Slot *slot = findSlot(canon, cur_blk_, offset);
    const bool is_ind = isIndirect(br.branch) &&
                        br.branch != BranchClass::kReturn;

    if (slot) {
        if (is_ind) {
            if (slot->target == br.takenTarget()) {
                if (slot->stabl < SatCounter<6>::max())
                    ++slot->stabl;
            } else {
                slot->stabl = 0;
                if (slot->follow) {
                    const auto idx = static_cast<std::size_t>(
                        slot - canon.slots.data());
                    removePulled(canon, idx);
                    slot = findSlot(canon, cur_blk_, offset);
                }
                slot->target = br.takenTarget();
            }
        } else {
            slot->target = br.takenTarget();
        }
        slot->type = br.branch;
        slot->tick = ++tick_;
    } else {
        // Insert a new slot, making room if necessary.
        if (canon.slots.size() >= cfg_.branch_slots) {
            // Displace the least recently used slot (tearing down its
            // pulled chain first if it had one).
            std::size_t victim = 0;
            for (std::size_t i = 1; i < canon.slots.size(); ++i)
                if (canon.slots[i].tick < canon.slots[victim].tick)
                    victim = i;
            if (canon.slots[victim].follow)
                removePulled(canon, victim);
            // removePulled may have erased slots; re-pick the LRU victim.
            if (canon.slots.size() >= cfg_.branch_slots) {
                victim = 0;
                for (std::size_t i = 1; i < canon.slots.size(); ++i)
                    if (canon.slots[i].tick < canon.slots[victim].tick)
                        victim = i;
                canon.slots.erase(canon.slots.begin() +
                                  static_cast<std::ptrdiff_t>(victim));
            }
            ++stats["slot_displacements"];
        }
        Slot s;
        s.blk = static_cast<std::uint8_t>(cur_blk_);
        s.offset = offset;
        s.type = br.branch;
        s.target = br.takenTarget();
        s.tick = ++tick_;
        // Conditionals taken at allocation are treated as always-taken
        // until proven otherwise; direct unconditional classes are pinned.
        if (br.branch == BranchClass::kCondDirect ||
            br.branch == BranchClass::kUncondDirect ||
            br.branch == BranchClass::kDirectCall) {
            s.stabl = SatCounter<6>::max();
        } else if (is_ind) {
            s.stabl = 0;
        }
        canon.slots.push_back(s);
        sortSlots(canon);
        slot = findSlot(canon, cur_blk_, offset);
    }

    // Pull the target block in when eligible and not already pulled.
    bool pulled = slot->follow;
    if (!pulled) {
        const auto idx =
            static_cast<std::size_t>(slot - canon.slots.data());
        if (eligibleToPull(canon, *slot, idx)) {
            doPull(canon, *slot);
            pulled = true;
        }
    }

    table_.upsert(cur_key_, canon);

    if (pulled) {
        ++cur_blk_;
        cur_start_ = br.takenTarget();
    } else {
        cur_key_ = br.takenTarget();
        cur_blk_ = 0;
        cur_start_ = cur_key_;
    }
    cur_valid_ = true;
}

void
MultiBlockBtb::updateNotTaken(const Instruction &br, bool resteer)
{
    // A pulled conditional observed not taken is immediately downgraded
    // (Section 6.4.3).
    if (cur_valid_) {
        if (const Entry *e = table_.peekAuthoritative(cur_key_)) {
            if (cur_blk_ < e->blocks.size() &&
                e->blocks[cur_blk_].start == cur_start_ &&
                br.pc >= cur_start_ &&
                br.pc < cur_start_ + e->blocks[cur_blk_].len) {
                Entry canon = *e;
                const auto offset =
                    static_cast<std::uint32_t>(br.pc - cur_start_);
                if (Slot *s = findSlot(canon, cur_blk_, offset)) {
                    if (s->follow) {
                        const auto idx = static_cast<std::size_t>(
                            s - canon.slots.data());
                        removePulled(canon, idx);
                        table_.upsert(cur_key_, canon);
                    } else if (s->type == BranchClass::kCondDirect &&
                               s->stabl > 0) {
                        // No longer always-taken: block future pulls.
                        s->stabl = 0;
                        table_.upsert(cur_key_, canon);
                    }
                }
            }
        }
    }
    if (resteer)
        resetCursor(br.fallThrough());
}

void
MultiBlockBtb::update(const Instruction &br, bool resteer)
{
    if (br.taken)
        updateTaken(br);
    else
        updateNotTaken(br, resteer);
}

OccupancySample
MultiBlockBtb::sampleOccupancy() const
{
    OccupancySample s;
    auto probe = [](const SoaSetTable<Entry> &t, double &occ, double &red,
                    std::uint64_t &n) {
        std::uint64_t entries = 0, slots = 0;
        std::unordered_map<Addr, std::uint32_t> track;
        t.forEach([&](Addr, const Entry &e) {
            ++entries;
            slots += e.slots.size();
            for (const Slot &sl : e.slots) {
                if (sl.blk < e.blocks.size())
                    ++track[e.blocks[sl.blk].start + sl.offset];
            }
        });
        n = entries;
        occ = entries ? static_cast<double>(slots) / entries : 0.0;
        std::uint64_t total = 0;
        for (const auto &[pc, c] : track)
            total += c;
        red = track.empty() ? 1.0
                            : static_cast<double>(total) / track.size();
    };
    probe(table_.l1(), s.l1_slot_occupancy, s.l1_redundancy, s.l1_entries);
    probe(table_.l2(), s.l2_slot_occupancy, s.l2_redundancy, s.l2_entries);
    return s;
}

} // namespace btbsim
