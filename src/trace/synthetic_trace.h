/**
 * @file
 * Interpreter turning a static Program into an infinite dynamic stream.
 */

#ifndef BTBSIM_TRACE_SYNTHETIC_TRACE_H
#define BTBSIM_TRACE_SYNTHETIC_TRACE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "trace/program.h"
#include "trace/trace_source.h"

namespace btbsim {

/**
 * Executes a synthetic Program functionally, producing the dynamic
 * instruction stream the timing model consumes. All stochastic choices
 * (Bernoulli branches, variable trip counts, skewed indirect targets,
 * memory addresses) come from a generator seeded at construction, so the
 * stream is fully deterministic and restartable.
 */
class SyntheticTrace : public TraceSource
{
  public:
    SyntheticTrace(const Program &program, std::uint64_t seed,
                   std::string name = "");

    const Instruction &next() override;
    void reset() override;
    std::string name() const override { return name_; }

    const Program &program() const { return *prog_; }
    const Program *codeImage() const override { return prog_; }

  private:
    const Program *prog_;
    std::uint64_t seed_;
    std::string name_;

    Rng rng_{0};
    std::uint32_t cur_ = 0;
    std::vector<std::uint32_t> call_stack_;

    /// Per kLoop behaviour: remaining back-edge takes, kInactive if idle.
    static constexpr std::uint32_t kInactive = 0xffffffffu;
    std::vector<std::uint32_t> loop_remaining_;
    /// Per kPattern behaviour: current position in the pattern.
    std::vector<std::uint32_t> pattern_pos_;
    /// Per indirect behaviour: round-robin cursor.
    std::vector<std::uint32_t> rr_pos_;
    /// Per indirect behaviour: remaining executions of the current burst.
    std::vector<std::uint32_t> burst_left_;
    /// Per memory stream: walk position.
    std::vector<std::uint64_t> stream_pos_;

    Instruction out_;

    bool evalCond(const StaticInst &si);
    std::uint32_t evalIndirect(const StaticInst &si);
    Addr evalAddress(const StaticInst &si);
};

} // namespace btbsim

#endif // BTBSIM_TRACE_SYNTHETIC_TRACE_H
