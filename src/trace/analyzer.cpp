#include "trace/analyzer.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace btbsim {

namespace {

struct SiteStats
{
    std::uint64_t executions = 0;
    std::uint64_t taken = 0;
    BranchClass cls = BranchClass::kNone;
    std::unordered_set<Addr> targets;
};

} // namespace

TraceProperties
analyzeTrace(TraceSource &src, std::uint64_t instructions)
{
    src.reset();

    TraceProperties p;
    std::unordered_map<Addr, SiteStats> sites;
    std::unordered_map<Addr, std::uint64_t> line_counts;

    std::uint64_t taken = 0;
    for (std::uint64_t i = 0; i < instructions; ++i) {
        const Instruction &in = src.next();
        ++line_counts[alignDown(in.pc, kLineBytes)];
        if (!in.isBranch())
            continue;
        ++p.branches;
        if (in.taken)
            ++taken;
        SiteStats &s = sites[in.pc];
        ++s.executions;
        s.cls = in.branch;
        if (in.taken) {
            ++s.taken;
            if (isIndirect(in.branch) && in.branch != BranchClass::kReturn)
                s.targets.insert(in.next_pc);
        }
    }

    p.instructions = instructions;
    p.taken_branches = taken;
    p.avg_bb_size = p.branches
        ? static_cast<double>(instructions) / static_cast<double>(p.branches)
        : 0.0;
    p.avg_taken_distance = taken
        ? static_cast<double>(instructions) / static_cast<double>(taken)
        : 0.0;

    std::uint64_t never_cond = 0, always_cond = 0, mixed_cond = 0;
    std::uint64_t single_ind = 0, rets = 0, calls = 0, uncond = 0;
    std::uint64_t taken_sites = 0;
    for (const auto &[pc, s] : sites) {
        if (s.taken > 0)
            ++taken_sites;
        switch (s.cls) {
          case BranchClass::kCondDirect:
            if (s.taken == 0)
                never_cond += s.executions;
            else if (s.taken == s.executions)
                always_cond += s.executions;
            else
                mixed_cond += s.executions;
            break;
          case BranchClass::kReturn:
            rets += s.executions;
            break;
          case BranchClass::kDirectCall:
          case BranchClass::kIndirectCall:
            calls += s.executions;
            if (s.cls == BranchClass::kIndirectCall && s.targets.size() == 1)
                single_ind += s.executions;
            break;
          case BranchClass::kIndirectJump:
            if (s.targets.size() == 1)
                single_ind += s.executions;
            break;
          case BranchClass::kUncondDirect:
            uncond += s.executions;
            break;
          case BranchClass::kNone:
            break;
        }
    }

    const double b = std::max<double>(1.0, static_cast<double>(p.branches));
    p.frac_never_taken_cond = never_cond / b;
    p.frac_always_taken_cond = always_cond / b;
    p.frac_mixed_cond = mixed_cond / b;
    p.frac_single_target_indirect = single_ind / b;
    p.frac_returns = rets / b;
    p.frac_calls = calls / b;
    p.frac_uncond_direct = uncond / b;
    p.static_branch_sites = sites.size();
    p.static_taken_sites = taken_sites;

    // Footprint: sort lines by access count descending, take the smallest
    // set covering 90% of dynamic instructions.
    std::vector<std::uint64_t> counts;
    counts.reserve(line_counts.size());
    for (const auto &[line, c] : line_counts)
        counts.push_back(c);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t covered = 0;
    const std::uint64_t goal90 = instructions * 9 / 10;
    std::uint64_t lines90 = 0;
    for (std::uint64_t c : counts) {
        if (covered >= goal90)
            break;
        covered += c;
        ++lines90;
    }
    p.bytes_for_90pct = lines90 * kLineBytes;
    p.bytes_for_100pct = counts.size() * kLineBytes;

    src.reset();
    return p;
}

} // namespace btbsim
