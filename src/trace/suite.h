/**
 * @file
 * The calibrated workload suite standing in for the CVP-1 server traces.
 */

#ifndef BTBSIM_TRACE_SUITE_H
#define BTBSIM_TRACE_SUITE_H

#include <memory>
#include <string>
#include <vector>

#include "trace/generator.h"
#include "trace/synthetic_trace.h"

namespace btbsim {

/** A named workload: generation parameters plus an interpreter seed. */
struct WorkloadSpec
{
    std::string name;
    GenParams params;
    std::uint64_t trace_seed = 1;

    bool operator==(const WorkloadSpec &) const = default;
};

/**
 * A TraceSource owning both its Program and interpreter. Not copyable or
 * movable (the interpreter holds a pointer into the owned program).
 */
class Workload : public TraceSource
{
  public:
    explicit Workload(const WorkloadSpec &spec)
        : program_(generateProgram(spec.params)),
          trace_(program_, spec.trace_seed, spec.name)
    {}

    Workload(const Workload &) = delete;
    Workload &operator=(const Workload &) = delete;

    const Instruction &next() override { return trace_.next(); }
    void reset() override { trace_.reset(); }
    std::string name() const override { return trace_.name(); }

    const Program &program() const { return program_; }
    const Program *codeImage() const override { return &program_; }

  private:
    Program program_;
    SyntheticTrace trace_;
};

/**
 * The default server-like suite: workloads spanning code footprints from
 * roughly 100KB to 1MB, basic-block sizes around the paper's 9.4-instruction
 * average, and varying call-graph and predictability characteristics. All
 * exhibit > 1 I-cache MPKI on the Table 1 configuration, matching the
 * paper's trace selection criterion.
 *
 * @param count Number of workloads (clamped to the available spec list).
 */
std::vector<WorkloadSpec> serverSuite(std::size_t count = 8);

/** Instantiate a workload (generation is deterministic in the spec). */
std::unique_ptr<Workload> makeWorkload(const WorkloadSpec &spec);

} // namespace btbsim

#endif // BTBSIM_TRACE_SUITE_H
