/**
 * @file
 * Workload property analyzer — measures the trace statistics the paper
 * reports in its background and methodology sections.
 */

#ifndef BTBSIM_TRACE_ANALYZER_H
#define BTBSIM_TRACE_ANALYZER_H

#include <cstdint>

#include "trace/trace_source.h"

namespace btbsim {

/** Aggregate properties of a dynamic instruction window. */
struct TraceProperties
{
    std::uint64_t instructions = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;

    /** Average dynamic basic-block size (instructions per branch). */
    double avg_bb_size = 0.0;
    /** Average taken-to-taken distance (instructions per taken branch). */
    double avg_taken_distance = 0.0;

    /** Shares of *dynamic branches*, as the paper reports them. */
    double frac_never_taken_cond = 0.0;
    double frac_always_taken_cond = 0.0;
    double frac_mixed_cond = 0.0;
    double frac_single_target_indirect = 0.0;
    double frac_returns = 0.0;
    double frac_calls = 0.0;
    double frac_uncond_direct = 0.0;

    /** Distinct static branch sites observed. */
    std::uint64_t static_branch_sites = 0;
    /** Distinct static taken branch sites (BTB working set). */
    std::uint64_t static_taken_sites = 0;

    /** Code footprint: bytes of 64B lines covering 90% / 100% of the
     *  dynamic instruction stream. */
    std::uint64_t bytes_for_90pct = 0;
    std::uint64_t bytes_for_100pct = 0;
};

/**
 * Run @p src for @p instructions and measure its properties. The source is
 * reset() before and after the measurement.
 */
TraceProperties analyzeTrace(TraceSource &src, std::uint64_t instructions);

} // namespace btbsim

#endif // BTBSIM_TRACE_ANALYZER_H
