/**
 * @file
 * Abstract source of dynamic instructions.
 */

#ifndef BTBSIM_TRACE_TRACE_SOURCE_H
#define BTBSIM_TRACE_TRACE_SOURCE_H

#include <string>

#include "trace/instruction.h"

namespace btbsim {

struct Program;

/**
 * An infinite, restartable stream of dynamic instructions. The simulator
 * pulls instructions one at a time; a source must be deterministic so the
 * same (source, config) pair reproduces identical results.
 *
 * Thread-ownership contract: a TraceSource belongs to exactly one
 * consumer. next()/reset() mutate cursor state without locking, so
 * concurrent simulations (runMatrix workers) must each construct their
 * own instance rather than share one — implementations are required to
 * be independently instantiable and deterministic per instance, which
 * makes lock-free parallel replay safe by construction.
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Produce the next dynamic instruction. */
    virtual const Instruction &next() = 0;

    /** Restart the stream from its initial state. */
    virtual void reset() = 0;

    /** Human-readable identifier used in reports. */
    virtual std::string name() const = 0;

    /**
     * The static code image behind this stream, when one exists. Used by
     * decode-based BTB prefill (predecoding fetched I-cache lines); a
     * null return disables that feature.
     */
    virtual const Program *codeImage() const { return nullptr; }
};

} // namespace btbsim

#endif // BTBSIM_TRACE_TRACE_SOURCE_H
