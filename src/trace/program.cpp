#include "trace/program.h"

#include <sstream>

namespace btbsim {

std::string_view
branchClassName(BranchClass b)
{
    switch (b) {
      case BranchClass::kNone: return "none";
      case BranchClass::kCondDirect: return "cond";
      case BranchClass::kUncondDirect: return "jump";
      case BranchClass::kDirectCall: return "call";
      case BranchClass::kReturn: return "ret";
      case BranchClass::kIndirectJump: return "ijump";
      case BranchClass::kIndirectCall: return "icall";
    }
    return "?";
}

std::string
Program::validate() const
{
    std::ostringstream err;
    if (insts.empty())
        return "program has no instructions";
    if (entries.empty())
        return "program has no entry points";
    if (entry_weights.size() != entries.size())
        return "entry_weights size mismatch";
    for (std::uint32_t e : entries) {
        if (e >= insts.size()) {
            err << "entry " << e << " out of range";
            return err.str();
        }
    }
    for (std::size_t i = 0; i < insts.size(); ++i) {
        const StaticInst &si = insts[i];
        const bool is_branch = isBranch(si.branch);
        if (is_branch && si.cls != InstClass::kBranch) {
            err << "inst " << i << ": branch class without kBranch";
            return err.str();
        }
        if (isDirect(si.branch) && si.target >= insts.size()) {
            err << "inst " << i << ": direct target out of range";
            return err.str();
        }
        if (si.branch == BranchClass::kCondDirect) {
            if (si.behavior < 0 ||
                static_cast<std::size_t>(si.behavior) >= conds.size()) {
                err << "inst " << i << ": missing cond behavior";
                return err.str();
            }
        }
        if (si.branch == BranchClass::kIndirectJump ||
            si.branch == BranchClass::kIndirectCall) {
            if (si.behavior < 0 ||
                static_cast<std::size_t>(si.behavior) >= indirects.size()) {
                err << "inst " << i << ": missing indirect behavior";
                return err.str();
            }
            const auto &beh = indirects[si.behavior];
            if (beh.targets.empty()) {
                err << "inst " << i << ": indirect with no targets";
                return err.str();
            }
            for (std::uint32_t t : beh.targets) {
                if (t >= insts.size()) {
                    err << "inst " << i << ": indirect target out of range";
                    return err.str();
                }
            }
        }
        if (si.cls == InstClass::kLoad || si.cls == InstClass::kStore) {
            if (si.stream < 0 ||
                static_cast<std::size_t>(si.stream) >= streams.size()) {
                err << "inst " << i << ": memory inst without stream";
                return err.str();
            }
        }
    }
    return "";
}

} // namespace btbsim
