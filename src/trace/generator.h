/**
 * @file
 * Synthetic server-workload program generator.
 *
 * The CVP-1 "secret" server traces used by the paper are proprietary, so
 * btbsim substitutes seeded synthetic programs whose *distributional*
 * properties match those the paper reports: average dynamic basic-block
 * size around 9.4 instructions, roughly a third of dynamic branches being
 * never-taken conditionals, 15% always-taken conditionals, 9% stable
 * single-target indirect branches, and instruction footprints large enough
 * to oversubscribe a 3K-entry L1 BTB and a 32KB L1 I-cache.
 *
 * A generated program is a dispatcher loop indirectly calling a set of
 * request-handler functions; handlers call mid-level functions which call
 * leaf utilities, with loops, biased conditionals, switches and virtual
 * call sites sprinkled throughout — the control-flow shape of monolithic
 * server binaries the paper's introduction motivates.
 */

#ifndef BTBSIM_TRACE_GENERATOR_H
#define BTBSIM_TRACE_GENERATOR_H

#include <cstdint>

#include "trace/program.h"

namespace btbsim {

/** Knobs controlling synthetic program generation. */
struct GenParams
{
    std::uint64_t seed = 1;

    /** Code footprint target in static instructions (x4 bytes). */
    std::uint32_t target_static_insts = 64 * 1024;

    /** Number of top-level request handlers (dispatcher targets). */
    std::uint32_t num_handlers = 12;

    /** Mean straight-line run between control-flow constructs. */
    double mean_block_len = 10.0;

    /** Statement mix (relative weights, normalized internally). */
    double w_check = 0.40;       ///< Never-taken error-check branch.
    double w_always_if = 0.10;   ///< Always-taken forward branch.
    double w_mixed_if = 0.09;    ///< Data-dependent if/else.
    double w_loop = 0.03;        ///< Counted loop.
    double w_call = 0.20;        ///< Direct call to a lower-level function.
    double w_icall = 0.07;      ///< Indirect (virtual) call site.
    double w_switch = 0.06;     ///< Indirect jump over case blocks.
    double w_jump = 0.045;        ///< Unconditional forward jump.

    /** Fraction of indirect call sites with a single target. */
    double monomorphic_frac = 0.78;

    /** Fraction of mixed conditionals with a learnable periodic pattern. */
    double pattern_frac = 0.03;

    /** Loop trip-count ranges. */
    std::uint32_t min_trips = 2;
    std::uint32_t max_trips = 10;
    /** Fraction of loops with a fixed (fully predictable) trip count. */
    double fixed_trip_frac = 0.92;

    /** Data-side behaviour. */
    std::uint64_t data_footprint = 2ull << 20; ///< Random-stream reach.
    double frac_load = 0.20;   ///< Loads among straight-line instructions.
    double frac_store = 0.09;  ///< Stores among straight-line instructions.
    double frac_stream_stack = 0.60;
    double frac_stream_stride = 0.32; ///< Remainder is random streams.

    /** Probability a source register comes from a recent producer. */
    double dep_locality = 0.22;

    bool operator==(const GenParams &) const = default;
};

/**
 * Build a synthetic program from @p params. Deterministic in
 * @p params.seed. The result always passes Program::validate().
 */
Program generateProgram(const GenParams &params);

} // namespace btbsim

#endif // BTBSIM_TRACE_GENERATOR_H
