/**
 * @file
 * Dynamic instruction record — the unit flowing through the simulator.
 *
 * btbsim models an abstract fixed-length (4-byte) ISA in the spirit of
 * ARMv8: only PC arithmetic, branch class, register dataflow and memory
 * addresses matter for the microarchitectural questions the paper asks.
 */

#ifndef BTBSIM_TRACE_INSTRUCTION_H
#define BTBSIM_TRACE_INSTRUCTION_H

#include <cstdint>
#include <string_view>

#include "common/types.h"

namespace btbsim {

/** Control-flow class of an instruction. */
enum class BranchClass : std::uint8_t {
    kNone,          ///< Not a branch.
    kCondDirect,    ///< Conditional direct branch.
    kUncondDirect,  ///< Unconditional direct jump (not a call).
    kDirectCall,    ///< Unconditional direct call.
    kReturn,        ///< Function return (indirect through link register).
    kIndirectJump,  ///< Indirect jump (e.g., switch table).
    kIndirectCall,  ///< Indirect call (e.g., virtual dispatch).
};

/** Execution class, used for functional-unit and latency modelling. */
enum class InstClass : std::uint8_t {
    kAlu,
    kMul,
    kDiv,
    kFp,
    kLoad,
    kStore,
    kBranch,
};

/** True for any control-flow instruction. */
constexpr bool
isBranch(BranchClass b)
{
    return b != BranchClass::kNone;
}

/** True for branches whose target is encoded in the instruction bytes. */
constexpr bool
isDirect(BranchClass b)
{
    return b == BranchClass::kCondDirect || b == BranchClass::kUncondDirect ||
           b == BranchClass::kDirectCall;
}

/** True for branches that are architecturally always taken. */
constexpr bool
isAlwaysTaken(BranchClass b)
{
    return isBranch(b) && b != BranchClass::kCondDirect;
}

/** True for calls (direct or indirect). */
constexpr bool
isCall(BranchClass b)
{
    return b == BranchClass::kDirectCall || b == BranchClass::kIndirectCall;
}

/** True for indirect branches (target from a register), including returns. */
constexpr bool
isIndirect(BranchClass b)
{
    return b == BranchClass::kReturn || b == BranchClass::kIndirectJump ||
           b == BranchClass::kIndirectCall;
}

/** Short human-readable name of a branch class. */
std::string_view branchClassName(BranchClass b);

/**
 * One dynamic instruction as produced by a TraceSource.
 *
 * @c next_pc is always the PC of the next dynamic instruction: the taken
 * target for taken branches, the fall-through otherwise. The frontend never
 * reads @c taken / @c next_pc to *predict*; it only uses them to resolve
 * predictions, exactly as a trace-driven simulator checks its speculation
 * against the recorded ground truth.
 */
struct Instruction
{
    Addr pc = 0;
    Addr next_pc = 0;
    InstClass cls = InstClass::kAlu;
    BranchClass branch = BranchClass::kNone;
    bool taken = false;

    /// Register dataflow: 0 means "no register".
    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;

    /// Effective address for loads/stores, 0 otherwise.
    Addr mem_addr = 0;

    bool isBranch() const { return btbsim::isBranch(branch); }
    bool isLoad() const { return cls == InstClass::kLoad; }
    bool isStore() const { return cls == InstClass::kStore; }

    /** Taken target (only meaningful when @c taken). */
    Addr takenTarget() const { return next_pc; }

    /** Sequential fall-through PC. */
    Addr fallThrough() const { return pc + kInstBytes; }
};

} // namespace btbsim

#endif // BTBSIM_TRACE_INSTRUCTION_H
