#include "trace/generator.h"

#include <algorithm>
#include <cmath>
#include <cassert>

#include "common/rng.h"

namespace btbsim {

namespace {

/** Construct kinds a statement can end with. */
enum class Construct {
    kNone,
    kCheck,
    kAlwaysIf,
    kMixedIf,
    kLoop,
    kCall,
    kICall,
    kSwitch,
    kJump,
};

/**
 * Incremental program builder. Emits functions bottom-up (leaves first) so
 * that call sites always reference already-emitted entries, then a
 * dispatcher loop that indirectly calls the handler functions forever.
 */
class Builder
{
  public:
    explicit Builder(const GenParams &p) : p_(p), rng_(p.seed) {}

    Program
    build()
    {
        prog_.name = "synthetic";
        buildStreams();
        planFunctions();

        for (const FuncPlan &f : plans_)
            emitFunction(f);

        emitDispatcher();

        assert(prog_.validate().empty());
        return std::move(prog_);
    }

  private:
    struct FuncPlan
    {
        unsigned level;          // 0 = leaf, 1 = mid, 2 = handler
        unsigned stmts;          // statement budget
        std::vector<std::uint32_t> callees; // indices into entries_ flat list
    };

    struct ColdFixup
    {
        std::uint32_t branch_idx; // the check branch to patch
        std::uint32_t resume_idx; // where the cold block jumps back to
        unsigned len;             // cold block length
    };

    const GenParams &p_;
    Rng rng_;
    Program prog_;

    std::vector<FuncPlan> plans_;
    /// Entry static index of every emitted function, in emission order.
    std::vector<std::uint32_t> entries_;
    /// Entries grouped by level.
    std::vector<std::uint32_t> by_level_[3];

    std::vector<std::int32_t> stack_streams_;
    std::vector<std::int32_t> stride_streams_;
    std::vector<std::int32_t> random_streams_;

    std::vector<std::uint8_t> recent_dsts_;

    // Per-function emission state.
    std::vector<std::uint32_t> cur_callees_;
    std::size_t callee_pos_ = 0;
    std::vector<ColdFixup> cold_fixups_;

    std::uint32_t here() const { return static_cast<std::uint32_t>(prog_.insts.size()); }

    std::uint32_t
    emit(const StaticInst &si)
    {
        prog_.insts.push_back(si);
        return here() - 1;
    }

    void
    buildStreams()
    {
        Addr data_base = 0x40000000ull;
        auto add = [&](MemStream s) {
            s.base = data_base;
            data_base = alignUp(data_base + s.footprint + 4096, 4096);
            prog_.streams.push_back(s);
            return static_cast<std::int32_t>(prog_.streams.size() - 1);
        };

        for (int i = 0; i < 4; ++i) {
            MemStream s;
            s.kind = MemStream::Kind::kStack;
            s.footprint = 2048 + 1024 * i;
            stack_streams_.push_back(add(s));
        }
        for (int i = 0; i < 24; ++i) {
            MemStream s;
            s.kind = MemStream::Kind::kStride;
            s.footprint = (16ull + rng_.nextBounded(240)) << 10;
            const std::int64_t strides[] = {8, 16, 32, 64, 64, 128};
            s.stride = strides[rng_.nextBounded(6)];
            stride_streams_.push_back(add(s));
        }
        for (int i = 0; i < 8; ++i) {
            MemStream s;
            s.kind = MemStream::Kind::kRandom;
            s.footprint = std::max<std::uint64_t>(p_.data_footprint / 8, 64 << 10);
            random_streams_.push_back(add(s));
        }
    }

    /**
     * Decide how many functions to generate per level and wire the call
     * graph so every function is reachable from some handler.
     */
    void
    planFunctions()
    {
        // Rough instruction cost of one statement (straight run + branch
        // and construct overhead). Used only for budgeting.
        const double per_stmt = p_.mean_block_len + 4.5;

        const unsigned handler_stmts = 48;
        const unsigned mid_stmts = 26;
        const unsigned leaf_stmts = 13;

        const double handler_cost = p_.num_handlers * handler_stmts * per_stmt;
        double remaining = std::max<double>(
            static_cast<double>(p_.target_static_insts) - handler_cost,
            2000.0);

        unsigned n_leaf = std::max<unsigned>(
            8, static_cast<unsigned>(remaining * 0.55 / (leaf_stmts * per_stmt)));
        unsigned n_mid = std::max<unsigned>(
            4, static_cast<unsigned>(remaining * 0.45 / (mid_stmts * per_stmt)));

        auto jitter = [&](unsigned base) {
            return std::max<unsigned>(
                4, base / 2 + static_cast<unsigned>(rng_.nextBounded(base)));
        };

        std::uint32_t id = 0;
        std::vector<std::uint32_t> leaf_ids, mid_ids;
        for (unsigned i = 0; i < n_leaf; ++i) {
            plans_.push_back({0, jitter(leaf_stmts), {}});
            leaf_ids.push_back(id++);
        }
        for (unsigned i = 0; i < n_mid; ++i) {
            plans_.push_back({1, jitter(mid_stmts), {}});
            mid_ids.push_back(id++);
        }
        std::vector<std::uint32_t> handler_ids;
        for (unsigned i = 0; i < p_.num_handlers; ++i) {
            plans_.push_back({2, jitter(handler_stmts), {}});
            handler_ids.push_back(id++);
        }

        // Every leaf is called by at least one mid; every mid by at least
        // one handler; plus random extra edges for fan-in variety.
        for (std::size_t i = 0; i < leaf_ids.size(); ++i)
            plans_[mid_ids[i % mid_ids.size()]].callees.push_back(leaf_ids[i]);
        for (std::size_t i = 0; i < mid_ids.size(); ++i)
            plans_[handler_ids[i % handler_ids.size()]].callees.push_back(mid_ids[i]);

        for (std::uint32_t m : mid_ids) {
            unsigned extra = 1 + rng_.nextBounded(3);
            for (unsigned e = 0; e < extra; ++e)
                plans_[m].callees.push_back(
                    leaf_ids[rng_.nextBounded(leaf_ids.size())]);
        }
        for (std::uint32_t h : handler_ids) {
            unsigned extra = 2 + rng_.nextBounded(4);
            for (unsigned e = 0; e < extra; ++e) {
                if (rng_.nextBool(0.7)) {
                    plans_[h].callees.push_back(
                        mid_ids[rng_.nextBounded(mid_ids.size())]);
                } else {
                    plans_[h].callees.push_back(
                        leaf_ids[rng_.nextBounded(leaf_ids.size())]);
                }
            }
        }
    }

    // ---- operand and straight-line emission -----------------------------

    std::uint8_t
    pickSrc()
    {
        if (!recent_dsts_.empty() && rng_.nextBool(p_.dep_locality))
            return recent_dsts_[rng_.nextBounded(recent_dsts_.size())];
        return static_cast<std::uint8_t>(1 + rng_.nextBounded(31));
    }

    std::uint8_t
    pickDst()
    {
        auto d = static_cast<std::uint8_t>(1 + rng_.nextBounded(31));
        recent_dsts_.push_back(d);
        if (recent_dsts_.size() > 12)
            recent_dsts_.erase(recent_dsts_.begin());
        return d;
    }

    std::int32_t
    pickStream()
    {
        double r = rng_.nextDouble();
        if (r < p_.frac_stream_stack)
            return stack_streams_[rng_.nextBounded(stack_streams_.size())];
        if (r < p_.frac_stream_stack + p_.frac_stream_stride)
            return stride_streams_[rng_.nextBounded(stride_streams_.size())];
        return random_streams_[rng_.nextBounded(random_streams_.size())];
    }

    StaticInst
    makeWorker()
    {
        StaticInst si;
        double r = rng_.nextDouble();
        if (r < p_.frac_load) {
            si.cls = InstClass::kLoad;
            si.dst = pickDst();
            si.src1 = pickSrc();
            si.stream = pickStream();
        } else if (r < p_.frac_load + p_.frac_store) {
            si.cls = InstClass::kStore;
            si.src1 = pickSrc();
            si.src2 = pickSrc();
            si.stream = pickStream();
        } else {
            double k = rng_.nextDouble();
            if (k < 0.78)
                si.cls = InstClass::kAlu;
            else if (k < 0.86)
                si.cls = InstClass::kMul;
            else if (k < 0.98)
                si.cls = InstClass::kFp;
            else
                si.cls = InstClass::kDiv;
            si.dst = pickDst();
            // A good fraction of ALU work uses immediates or values long
            // since computed (no in-window dependency).
            if (rng_.nextBool(0.75))
                si.src1 = pickSrc();
            if (rng_.nextBool(0.35))
                si.src2 = pickSrc();
        }
        return si;
    }

    void
    emitStraight(unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            emit(makeWorker());
    }

    unsigned
    blockLen()
    {
        // 1 + geometric with continuation tuned to the requested mean.
        const double cont = 1.0 - 1.0 / std::max(1.0, p_.mean_block_len);
        return 1 + rng_.nextGeometric(cont, 24);
    }

    // ---- behaviour helpers ----------------------------------------------

    std::int32_t
    addCond(const CondBehavior &b)
    {
        prog_.conds.push_back(b);
        return static_cast<std::int32_t>(prog_.conds.size() - 1);
    }

    std::int32_t
    addIndirect(IndirectBehavior b)
    {
        prog_.indirects.push_back(std::move(b));
        return static_cast<std::int32_t>(prog_.indirects.size() - 1);
    }

    std::uint32_t
    emitCondBranch(std::int32_t behavior)
    {
        StaticInst si;
        si.cls = InstClass::kBranch;
        si.branch = BranchClass::kCondDirect;
        si.src1 = pickSrc();
        si.behavior = behavior;
        return emit(si);
    }

    std::uint32_t
    emitJump()
    {
        StaticInst si;
        si.cls = InstClass::kBranch;
        si.branch = BranchClass::kUncondDirect;
        return emit(si);
    }

    void patch(std::uint32_t idx, std::uint32_t target) { prog_.insts[idx].target = target; }

    // ---- statement constructs -------------------------------------------

    void
    stmtCheck()
    {
        // Error-check: conditional branch to a cold block placed after the
        // function's return; (almost) never taken.
        CondBehavior b;
        b.kind = CondBehavior::Kind::kBernoulli;
        b.bias = rng_.nextBool(0.85) ? 0.0 : 0.002;
        std::uint32_t br = emitCondBranch(addCond(b));
        cold_fixups_.push_back({br, here(), 2 + static_cast<unsigned>(rng_.nextBounded(4))});
    }

    void
    stmtAlwaysIf()
    {
        CondBehavior b;
        b.kind = CondBehavior::Kind::kBernoulli;
        b.bias = 1.0;
        std::uint32_t br = emitCondBranch(addCond(b));
        emitStraight(2 + rng_.nextBounded(4)); // dead code, never executed
        patch(br, here());
    }

    void
    stmtMixedIf()
    {
        CondBehavior b;
        if (rng_.nextBool(p_.pattern_frac)) {
            // Short periodic patterns: learnable only when the branch
            // re-executes with correlated history (e.g., in loops).
            b.kind = CondBehavior::Kind::kPattern;
            b.pattern_len = static_cast<std::uint8_t>(2 + rng_.nextBounded(5));
            b.pattern = rng_.next64();
        } else {
            // Strongly biased data-dependent branches: the dominant kind
            // in server code, predictable at max(p, 1-p).
            b.kind = CondBehavior::Kind::kBernoulli;
            double r = rng_.nextDouble();
            if (r < 0.45)
                b.bias = 0.003 + 0.018 * rng_.nextDouble();
            else if (r < 0.96)
                b.bias = 0.979 + 0.018 * rng_.nextDouble();
            else
                b.bias = 0.3 + 0.4 * rng_.nextDouble();
        }
        std::uint32_t br = emitCondBranch(addCond(b)); // taken -> else
        emitStraight(2 + rng_.nextBounded(5));         // then block
        std::uint32_t jmp = emitJump();                // skip else
        patch(br, here());
        emitStraight(2 + rng_.nextBounded(5));         // else block
        patch(jmp, here());
    }

    void
    stmtLoop(unsigned depth, unsigned &budget)
    {
        CondBehavior b;
        b.kind = CondBehavior::Kind::kLoop;
        if (rng_.nextBool(p_.fixed_trip_frac)) {
            std::uint32_t t = p_.min_trips +
                static_cast<std::uint32_t>(
                    rng_.nextBounded(p_.max_trips - p_.min_trips + 1));
            b.min_trips = b.max_trips = t;
        } else {
            b.min_trips = p_.min_trips;
            b.max_trips = p_.min_trips +
                static_cast<std::uint32_t>(
                    rng_.nextBounded(p_.max_trips - p_.min_trips + 1));
        }
        std::uint32_t header = here();
        unsigned body_stmts = 1 + rng_.nextBounded(2);
        body_stmts = std::min(body_stmts, std::max(1u, budget));
        budget -= std::min(budget, body_stmts);
        emitBody(depth + 1, body_stmts);
        std::uint32_t br = emitCondBranch(addCond(b));
        patch(br, header);
    }

    void
    stmtCall()
    {
        StaticInst si;
        si.cls = InstClass::kBranch;
        si.branch = BranchClass::kDirectCall;
        si.target = entries_[cur_callees_[callee_pos_ % cur_callees_.size()]];
        ++callee_pos_;
        emit(si);
    }

    void
    stmtICall(unsigned level)
    {
        // Virtual-call site: targets drawn from functions below this level.
        std::vector<std::uint32_t> pool;
        for (unsigned l = 0; l < level; ++l)
            pool.insert(pool.end(), by_level_[l].begin(), by_level_[l].end());
        if (pool.empty()) {
            emitStraight(1);
            return;
        }
        IndirectBehavior b;
        unsigned k = rng_.nextBool(p_.monomorphic_frac)
            ? 1 : 2 + static_cast<unsigned>(rng_.nextBounded(3));
        for (unsigned i = 0; i < k; ++i)
            b.targets.push_back(pool[rng_.nextBounded(pool.size())]);
        b.kind = (k == 1) ? IndirectBehavior::Kind::kFixed
                          : IndirectBehavior::Kind::kSkewed;
        b.skew = 0.93 + 0.06 * rng_.nextDouble();
        StaticInst si;
        si.cls = InstClass::kBranch;
        si.branch = BranchClass::kIndirectCall;
        si.src1 = pickSrc();
        si.behavior = addIndirect(std::move(b));
        emit(si);
    }

    void
    stmtSwitch()
    {
        // Monomorphic sites model computed gotos / function-pointer jumps
        // that always land on the same label (the paper's "indirect
        // branches that always jump to the same target", 9.1% dynamic).
        unsigned k = rng_.nextBool(p_.monomorphic_frac)
            ? 1 : 2 + static_cast<unsigned>(rng_.nextBounded(4));
        StaticInst si;
        si.cls = InstClass::kBranch;
        si.branch = BranchClass::kIndirectJump;
        si.src1 = pickSrc();
        std::uint32_t ij = emit(si);

        IndirectBehavior b;
        b.kind = k == 1 ? IndirectBehavior::Kind::kFixed
                        : (rng_.nextBool(0.1)
                               ? IndirectBehavior::Kind::kRoundRobin
                               : IndirectBehavior::Kind::kSkewed);
        b.skew = 0.93 + 0.06 * rng_.nextDouble();

        std::vector<std::uint32_t> exit_jumps;
        for (unsigned c = 0; c < k; ++c) {
            b.targets.push_back(here());
            emitStraight(2 + rng_.nextBounded(5));
            exit_jumps.push_back(emitJump());
        }
        for (std::uint32_t j : exit_jumps)
            patch(j, here());
        prog_.insts[ij].behavior = addIndirect(std::move(b));
    }

    void
    stmtJump()
    {
        std::uint32_t j = emitJump();
        emitStraight(1 + rng_.nextBounded(3)); // dead padding
        patch(j, here());
    }

    // ---- function emission ----------------------------------------------

    Construct
    pickConstruct(unsigned depth, bool have_callees, unsigned level)
    {
        struct Choice { Construct c; double w; };
        const Choice choices[] = {
            {Construct::kCheck, p_.w_check},
            {Construct::kAlwaysIf, p_.w_always_if},
            {Construct::kMixedIf, p_.w_mixed_if},
            {Construct::kLoop, depth < 2 ? p_.w_loop : 0.0},
            {Construct::kCall, have_callees ? p_.w_call : 0.0},
            {Construct::kICall, level > 0 ? p_.w_icall : 0.0},
            {Construct::kSwitch, p_.w_switch},
            {Construct::kJump, p_.w_jump},
        };
        double total = 0.0;
        for (const auto &ch : choices)
            total += ch.w;
        double r = rng_.nextDouble() * total;
        for (const auto &ch : choices) {
            if (r < ch.w)
                return ch.c;
            r -= ch.w;
        }
        return Construct::kNone;
    }

    unsigned cur_level_ = 0;

    void
    emitBody(unsigned depth, unsigned budget)
    {
        while (budget > 0) {
            --budget;
            emitStraight(blockLen());
            switch (pickConstruct(depth, !cur_callees_.empty(), cur_level_)) {
              case Construct::kCheck: stmtCheck(); break;
              case Construct::kAlwaysIf: stmtAlwaysIf(); break;
              case Construct::kMixedIf: stmtMixedIf(); break;
              case Construct::kLoop: stmtLoop(depth, budget); break;
              case Construct::kCall: stmtCall(); break;
              case Construct::kICall: stmtICall(cur_level_); break;
              case Construct::kSwitch: stmtSwitch(); break;
              case Construct::kJump: stmtJump(); break;
              case Construct::kNone: break;
            }
        }
    }

    void
    emitFunction(const FuncPlan &plan)
    {
        cur_level_ = plan.level;
        cur_callees_ = plan.callees;
        callee_pos_ = rng_.nextBounded(16);
        cold_fixups_.clear();

        std::uint32_t entry = here();
        emitBody(0, plan.stmts);

        StaticInst ret;
        ret.cls = InstClass::kBranch;
        ret.branch = BranchClass::kReturn;
        emit(ret);

        // Cold error blocks live past the return, jumping back on the rare
        // occasions they execute.
        for (const ColdFixup &fx : cold_fixups_) {
            patch(fx.branch_idx, here());
            emitStraight(fx.len);
            std::uint32_t j = emitJump();
            patch(j, fx.resume_idx);
        }

        entries_.push_back(entry);
        by_level_[plan.level].push_back(entry);
    }

    void
    emitDispatcher()
    {
        std::uint32_t disp = here();
        emitStraight(2);

        // Bursty dispatch: a realistic event loop draining a work queue
        // whose requests arrive in short same-type bursts.
        IndirectBehavior b;
        b.kind = IndirectBehavior::Kind::kBursty;
        b.burst = 2;
        const auto &handlers = by_level_[2];
        for (std::size_t i = 0; i < handlers.size(); ++i) {
            b.targets.push_back(handlers[i]);
            b.weights.push_back(1.0);
        }
        StaticInst icall;
        icall.cls = InstClass::kBranch;
        icall.branch = BranchClass::kIndirectCall;
        icall.src1 = pickSrc();
        icall.behavior = addIndirect(std::move(b));
        emit(icall);

        emitStraight(1);
        std::uint32_t j = emitJump();
        patch(j, disp);

        prog_.entries = {disp};
        prog_.entry_weights = {1.0};
    }
};

} // namespace

Program
generateProgram(const GenParams &params)
{
    Builder b(params);
    return b.build();
}

} // namespace btbsim
