#include "trace/suite.h"

namespace btbsim {

std::vector<WorkloadSpec>
serverSuite(std::size_t count)
{
    std::vector<WorkloadSpec> suite;

    auto add = [&](std::string name, auto tweak) {
        WorkloadSpec w;
        w.name = std::move(name);
        w.params.seed = 0x1000 + suite.size() * 0x111;
        w.trace_seed = 0x9000 + suite.size() * 0x77;
        tweak(w.params);
        suite.push_back(std::move(w));
    };

    // Web-server-like: large footprint, deep call graph, short blocks.
    add("web-lg", [](GenParams &p) {
        p.target_static_insts = 256 * 1024;
        p.num_handlers = 16;
        p.mean_block_len = 9.8;
    });
    // Database-like: very large footprint, moderate blocks, loopy.
    add("db-xl", [](GenParams &p) {
        p.target_static_insts = 358 * 1024;
        p.num_handlers = 14;
        p.mean_block_len = 10.6;
        p.w_loop = 0.05;
        p.max_trips = 16;
    });
    // Cache-server-like: medium footprint, tight loops, stride-heavy data.
    add("kv-md", [](GenParams &p) {
        p.target_static_insts = 153 * 1024;
        p.num_handlers = 10;
        p.mean_block_len = 10.2;
        p.frac_stream_stride = 0.45;
        p.frac_stream_stack = 0.45;
    });
    // Proxy-like: large footprint, branchy, fewer loops.
    add("proxy-lg", [](GenParams &p) {
        p.target_static_insts = 204 * 1024;
        p.num_handlers = 12;
        p.mean_block_len = 9.4;
        p.w_loop = 0.02;
        p.w_check = 0.48;
    });
    // App-server-like: polymorphic call sites, switches.
    add("app-lg", [](GenParams &p) {
        p.target_static_insts = 230 * 1024;
        p.num_handlers = 12;
        p.mean_block_len = 10.4;
        p.w_icall = 0.09;
        p.w_switch = 0.04;
        p.monomorphic_frac = 0.6;
    });
    // Analytics-like: longer blocks, hot loops, larger data footprint.
    add("olap-md", [](GenParams &p) {
        p.target_static_insts = 128 * 1024;
        p.num_handlers = 8;
        p.mean_block_len = 11.8;
        p.w_loop = 0.05;
        p.max_trips = 20;
        p.data_footprint = 16ull << 20;
    });
    // Microservice-like: small-medium footprint, noisy branches.
    add("rpc-sm", [](GenParams &p) {
        p.target_static_insts = 89 * 1024;
        p.num_handlers = 10;
        p.mean_block_len = 10.0;
        p.pattern_frac = 0.35;
    });
    // Monolith: the biggest footprint in the suite.
    add("mono-xxl", [](GenParams &p) {
        p.target_static_insts = 409 * 1024;
        p.num_handlers = 16;
        p.mean_block_len = 10.2;
    });
    // Variants with different seeds to widen the population.
    add("web-lg2", [](GenParams &p) {
        p.target_static_insts = 281 * 1024;
        p.num_handlers = 14;
        p.mean_block_len = 9.6;
    });
    add("db-lg2", [](GenParams &p) {
        p.target_static_insts = 307 * 1024;
        p.num_handlers = 12;
        p.mean_block_len = 11.0;
        p.w_loop = 0.04;
    });
    add("kv-lg2", [](GenParams &p) {
        p.target_static_insts = 179 * 1024;
        p.num_handlers = 10;
        p.mean_block_len = 10.8;
    });
    add("app-md2", [](GenParams &p) {
        p.target_static_insts = 166 * 1024;
        p.num_handlers = 12;
        p.mean_block_len = 11.4;
        p.w_icall = 0.08;
    });

    if (count < suite.size())
        suite.resize(count);
    return suite;
}

std::unique_ptr<Workload>
makeWorkload(const WorkloadSpec &spec)
{
    return std::make_unique<Workload>(spec);
}

} // namespace btbsim
