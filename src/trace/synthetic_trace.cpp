#include "trace/synthetic_trace.h"

#include <cassert>

namespace btbsim {

SyntheticTrace::SyntheticTrace(const Program &program, std::uint64_t seed,
                               std::string name)
    : prog_(&program), seed_(seed),
      name_(name.empty() ? program.name : std::move(name))
{
    reset();
}

void
SyntheticTrace::reset()
{
    rng_ = Rng(seed_);
    cur_ = prog_->entries.front();
    call_stack_.clear();
    loop_remaining_.assign(prog_->conds.size(), kInactive);
    pattern_pos_.assign(prog_->conds.size(), 0);
    rr_pos_.assign(prog_->indirects.size(), 0);
    burst_left_.assign(prog_->indirects.size(), 0);
    stream_pos_.assign(prog_->streams.size(), 0);
}

bool
SyntheticTrace::evalCond(const StaticInst &si)
{
    const CondBehavior &b = prog_->conds[si.behavior];
    switch (b.kind) {
      case CondBehavior::Kind::kBernoulli:
        return rng_.nextBool(b.bias);
      case CondBehavior::Kind::kPattern: {
        std::uint32_t &pos = pattern_pos_[si.behavior];
        bool taken = (b.pattern >> (pos % b.pattern_len)) & 1;
        pos = (pos + 1) % b.pattern_len;
        return taken;
      }
      case CondBehavior::Kind::kLoop: {
        std::uint32_t &rem = loop_remaining_[si.behavior];
        if (rem == kInactive) {
            std::uint32_t trips = b.min_trips;
            if (b.max_trips > b.min_trips)
                trips += static_cast<std::uint32_t>(
                    rng_.nextBounded(b.max_trips - b.min_trips + 1));
            rem = trips > 0 ? trips - 1 : 0;
        }
        if (rem > 0) {
            --rem;
            return true;
        }
        rem = kInactive;
        return false;
      }
    }
    return false;
}

std::uint32_t
SyntheticTrace::evalIndirect(const StaticInst &si)
{
    const IndirectBehavior &b = prog_->indirects[si.behavior];
    switch (b.kind) {
      case IndirectBehavior::Kind::kFixed:
        return b.targets.front();
      case IndirectBehavior::Kind::kRoundRobin: {
        std::uint32_t &pos = rr_pos_[si.behavior];
        std::uint32_t t = b.targets[pos % b.targets.size()];
        pos = (pos + 1) % static_cast<std::uint32_t>(b.targets.size());
        return t;
      }
      case IndirectBehavior::Kind::kSkewed: {
        if (rng_.nextBool(b.skew) || b.targets.size() == 1)
            return b.targets.front();
        return b.targets[1 + rng_.nextBounded(b.targets.size() - 1)];
      }
      case IndirectBehavior::Kind::kBursty: {
        std::uint32_t &pos = rr_pos_[si.behavior];
        std::uint32_t &left = burst_left_[si.behavior];
        if (left == 0) {
            pos = (pos + 1) % static_cast<std::uint32_t>(b.targets.size());
            left = b.burst;
        }
        --left;
        return b.targets[pos];
      }
      case IndirectBehavior::Kind::kWeighted: {
        double total = 0.0;
        for (double w : b.weights)
            total += w;
        double r = rng_.nextDouble() * total;
        for (std::size_t i = 0; i < b.targets.size(); ++i) {
            if (r < b.weights[i])
                return b.targets[i];
            r -= b.weights[i];
        }
        return b.targets.back();
      }
    }
    return b.targets.front();
}

Addr
SyntheticTrace::evalAddress(const StaticInst &si)
{
    const MemStream &s = prog_->streams[si.stream];
    std::uint64_t &pos = stream_pos_[si.stream];
    switch (s.kind) {
      case MemStream::Kind::kStack:
        return s.base + (rng_.nextBounded(s.footprint) & ~7ull);
      case MemStream::Kind::kStride: {
        Addr a = s.base + pos;
        pos = (pos + static_cast<std::uint64_t>(s.stride)) % s.footprint;
        return a;
      }
      case MemStream::Kind::kRandom:
        return s.base + (rng_.nextBounded(s.footprint) & ~7ull);
    }
    return s.base;
}

const Instruction &
SyntheticTrace::next()
{
    const StaticInst &si = prog_->insts[cur_];

    out_ = Instruction{};
    out_.pc = prog_->pcOf(cur_);
    out_.cls = si.cls;
    out_.branch = si.branch;
    out_.dst = si.dst;
    out_.src1 = si.src1;
    out_.src2 = si.src2;

    std::uint32_t next_idx = cur_ + 1;

    switch (si.branch) {
      case BranchClass::kNone:
        if (si.cls == InstClass::kLoad || si.cls == InstClass::kStore)
            out_.mem_addr = evalAddress(si);
        break;
      case BranchClass::kCondDirect:
        out_.taken = evalCond(si);
        if (out_.taken)
            next_idx = si.target;
        break;
      case BranchClass::kUncondDirect:
        out_.taken = true;
        next_idx = si.target;
        break;
      case BranchClass::kDirectCall:
        out_.taken = true;
        call_stack_.push_back(cur_ + 1);
        next_idx = si.target;
        break;
      case BranchClass::kReturn:
        out_.taken = true;
        assert(!call_stack_.empty() && "return without matching call");
        next_idx = call_stack_.back();
        call_stack_.pop_back();
        break;
      case BranchClass::kIndirectJump:
        out_.taken = true;
        next_idx = evalIndirect(si);
        break;
      case BranchClass::kIndirectCall:
        out_.taken = true;
        call_stack_.push_back(cur_ + 1);
        next_idx = evalIndirect(si);
        break;
    }

    out_.next_pc = prog_->pcOf(next_idx);
    cur_ = next_idx;
    return out_;
}

} // namespace btbsim
