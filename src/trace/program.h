/**
 * @file
 * Static program representation for the synthetic workload substrate.
 *
 * A Program is a flat array of static instructions laid out contiguously in
 * the simulated address space, plus behaviour descriptors that drive the
 * stochastic-but-seeded interpretation performed by SyntheticTrace.
 */

#ifndef BTBSIM_TRACE_PROGRAM_H
#define BTBSIM_TRACE_PROGRAM_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "trace/instruction.h"

namespace btbsim {

/** Behaviour model of a conditional branch. */
struct CondBehavior
{
    enum class Kind : std::uint8_t {
        kBernoulli, ///< Independent draws with probability @c bias of taken.
        kLoop,      ///< Loop back-edge: taken (trips-1) times, then not.
        kPattern,   ///< Fixed periodic taken/not-taken pattern.
    };

    Kind kind = Kind::kBernoulli;
    double bias = 0.0;             ///< P(taken) for kBernoulli.
    std::uint32_t min_trips = 1;   ///< kLoop: trip count lower bound.
    std::uint32_t max_trips = 1;   ///< kLoop: trip count upper bound.
    std::uint64_t pattern = 0;     ///< kPattern: bit i = outcome of step i.
    std::uint8_t pattern_len = 1;  ///< kPattern: period in [1, 64].
};

/** Behaviour model of an indirect jump/call site. */
struct IndirectBehavior
{
    enum class Kind : std::uint8_t {
        kFixed,      ///< Always the first target (monomorphic site).
        kRoundRobin, ///< Cycle through targets in order.
        kSkewed,     ///< Mostly the first target, occasionally others.
        kWeighted,   ///< Random draw using @c weights (dispatcher loops).
        kBursty,     ///< Rotate targets, repeating each for @c burst runs.
    };

    Kind kind = Kind::kFixed;
    double skew = 0.9;          ///< kSkewed: probability of the first target.
    std::uint32_t burst = 6;    ///< kBursty: executions per target.
    std::vector<std::uint32_t> targets; ///< Static instruction indices.
    std::vector<double> weights;        ///< kWeighted: selection weights.
};

/** Memory access stream attached to loads/stores. */
struct MemStream
{
    enum class Kind : std::uint8_t {
        kStack,   ///< Small, hot region (always L1-resident).
        kStride,  ///< Sequential walk with fixed stride (prefetchable).
        kRandom,  ///< Uniform random over the footprint (miss-heavy).
    };

    Kind kind = Kind::kStride;
    Addr base = 0;
    std::uint64_t footprint = 4096; ///< Bytes covered by the stream.
    std::int64_t stride = 64;       ///< kStride step in bytes.
};

/** One static instruction with its semantic annotations. */
struct StaticInst
{
    InstClass cls = InstClass::kAlu;
    BranchClass branch = BranchClass::kNone;

    std::uint8_t dst = 0;
    std::uint8_t src1 = 0;
    std::uint8_t src2 = 0;

    /// Direct branch target as a static instruction index.
    std::uint32_t target = 0;
    /// Index into Program::conds / Program::indirects, -1 if none.
    std::int32_t behavior = -1;
    /// Index into Program::streams, -1 if not a memory instruction.
    std::int32_t stream = -1;
};

/**
 * A complete synthetic program: code image plus behaviour tables.
 */
struct Program
{
    Addr code_base = 0x00400000;

    std::vector<StaticInst> insts;
    std::vector<CondBehavior> conds;
    std::vector<IndirectBehavior> indirects;
    std::vector<MemStream> streams;

    /// Entry static indices of the top-level "request handler" functions.
    std::vector<std::uint32_t> entries;
    /// Relative selection weight of each handler (same size as entries).
    std::vector<double> entry_weights;

    std::string name = "program";

    /** PC of static instruction @p idx. */
    Addr pcOf(std::uint32_t idx) const { return code_base + Addr{idx} * kInstBytes; }

    /** Static instruction index of @p pc (must be in range). */
    std::uint32_t
    indexOf(Addr pc) const
    {
        return static_cast<std::uint32_t>((pc - code_base) / kInstBytes);
    }

    /** Code footprint in bytes. */
    std::uint64_t footprintBytes() const { return insts.size() * kInstBytes; }

    /**
     * Validate structural invariants (branch targets in range, behaviour
     * indices valid, entries exist). Returns an empty string when valid,
     * otherwise a description of the first violation.
     */
    std::string validate() const;
};

} // namespace btbsim

#endif // BTBSIM_TRACE_PROGRAM_H
