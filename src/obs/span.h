/**
 * @file
 * Hierarchical host-time span tracer: where do the *simulator's* cycles
 * go? ObsSpan is an RAII region marker (steady-clock nanoseconds plus a
 * raw timestamp counter); spans nest through a thread-local stack, so a
 * span's path is the '/'-joined chain of its ancestors ("point/execute/
 * measure"). Every thread owns its own buffer — runMatrix workers and the
 * replay background-decode thread record concurrently without locks on
 * the hot path.
 *
 * Two products come out of a run:
 *
 *  - A complete per-path aggregate (SpanProfile: count, wall time, tsc
 *    ticks, and — when host perf counters are available — cycles,
 *    instructions, branch misses, cache misses and thread CPU time).
 *    Aggregation is incremental at span end, so it never loses data to
 *    ring overflow. The per-run slice lands in SimStats::span_profile
 *    (result-JSON host block, schema v2); the whole-process table is the
 *    bench JSON's top-level "profile" block, rendered by
 *    `btbsim-stats prof`.
 *
 *  - A bounded ring of individual span records per thread (most recent
 *    window, like obs/tracer.h; overflow increments a dropped counter)
 *    exported as Chrome trace-event JSON (writeChromeTrace) that loads
 *    directly in Perfetto / chrome://tracing. BTBSIM_SPAN_OUT selects
 *    the output file; benches write it on exit.
 *
 * Recording is on by default and costs one relaxed atomic load plus a
 * few dozen nanoseconds per span — span sites are phase-grained (per
 * run, per sweep point, per decoded chunk), never per simulated
 * instruction. BTBSIM_SPANS=0 disables recording entirely;
 * BTBSIM_SPAN_CAP resizes the per-thread ring.
 */

#ifndef BTBSIM_OBS_SPAN_H
#define BTBSIM_OBS_SPAN_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/host_counters.h"

namespace btbsim::obs {

/** Aggregate of every completed span sharing one path. */
struct SpanAgg
{
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0; ///< Summed steady-clock duration.
    std::uint64_t tsc = 0;     ///< Summed raw timestamp-counter ticks.

    // Host perf-counter deltas (all zero when counters are unavailable).
    std::uint64_t cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t branch_misses = 0;
    std::uint64_t cache_misses = 0;
    std::uint64_t task_clock_ns = 0; ///< Thread CPU time in the span.

    SpanAgg &operator+=(const SpanAgg &o);
    /** Saturating subtraction, member-wise (for mark/delta captures). */
    SpanAgg minus(const SpanAgg &o) const;

    bool operator==(const SpanAgg &) const = default;
};

/** Per-path aggregate table keyed by the '/'-joined span path. */
using SpanProfile = std::map<std::string, SpanAgg>;

/** Whole-process profile: the aggregate table plus recorder health.
 *  Emitted as the bench JSON's top-level "profile" object. */
struct ProfileBlock
{
    SpanProfile spans;
    std::uint64_t total_spans = 0; ///< Spans ever completed.
    std::uint64_t dropped = 0;     ///< Span records lost to ring overflow.
    std::uint32_t threads = 0;     ///< Threads that recorded spans.
    bool counters_available = false;
};

/** One retained span record (Chrome-trace export granularity). */
struct SpanRecord
{
    std::uint32_t path = 0; ///< Interned path id (SpanCollector::pathName).
    std::uint16_t depth = 0;
    std::uint64_t start_ns = 0; ///< Relative to the collector epoch.
    std::uint64_t dur_ns = 0;
    std::uint64_t tsc = 0; ///< Timestamp-counter ticks in the span.
    HostCounters::Values counters; ///< Deltas; zeros when unavailable.
};

class SpanCollector;

namespace detail {

/** Per-thread span storage; only its owning thread writes it. */
class SpanThreadBuf
{
  public:
    SpanThreadBuf(std::uint32_t tid, std::size_t ring_capacity,
                  bool open_counters);

    std::uint32_t tid() const { return tid_; }
    std::uint64_t completed() const { return completed_; }
    std::uint64_t dropped() const { return dropped_; }
    const HostCounters &counters() const { return counters_; }

  private:
    friend class btbsim::obs::SpanCollector;

    static constexpr std::size_t kMaxDepth = 64;

    struct Frame
    {
        std::uint32_t path = 0;
        std::uint64_t start_ns = 0;
        std::uint64_t start_tsc = 0;
        HostCounters::Values start_counters;
    };

    std::uint32_t tid_;
    HostCounters counters_;

    Frame stack_[kMaxDepth];
    std::size_t depth_ = 0;
    std::uint64_t deep_skips_ = 0; ///< Spans beyond kMaxDepth (untimed).

    // Most-recent-window ring of records (Chrome trace export).
    std::vector<SpanRecord> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t completed_ = 0; ///< Spans ended on this thread, ever.
    std::uint64_t dropped_ = 0;   ///< completed_ records evicted/lost.

    // Complete per-path aggregation (never drops).
    std::map<std::uint32_t, SpanAgg> agg_;

    // Pointer-keyed memo of (parent path, name literal) -> path id, so
    // steady-state begin() never takes the collector's intern lock.
    std::map<std::pair<std::uint32_t, const void *>, std::uint32_t>
        intern_memo_;
};

} // namespace detail

/**
 * Process-wide span registry: thread buffers, the interned path table,
 * aggregation and export. All reads (profile/aggregate/trace export)
 * are intended for quiescent points — after worker threads joined —
 * and take the registration lock; recording itself is lock-free once a
 * thread's buffer and path memo are warm.
 */
class SpanCollector
{
  public:
    static SpanCollector &instance();

    /** Recording gate; initialized from BTBSIM_SPANS (default on). */
    bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
    /** Override the gate (tests); affects spans opened afterwards. */
    void setEnabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

    /** True when at least one thread opened host perf counters. */
    bool countersAvailable() const;

    /** '/'-joined path of interned id @p id ("sweep/point/execute"). */
    std::string pathName(std::uint32_t id) const;

    /** Innermost open span path on the calling thread ("" when none). */
    std::string currentPath() const;

    /**
     * Snapshot of the calling thread's aggregate table, for delta
     * captures around a region (see aggregateSince).
     */
    struct ThreadMark
    {
        detail::SpanThreadBuf *buf = nullptr;
        std::map<std::uint32_t, SpanAgg> agg;
    };

    ThreadMark mark();

    /**
     * Spans completed on the calling thread since @p m, as a path-keyed
     * profile. Spans still open at the call (including the region's own
     * enclosing span) are not part of the delta.
     */
    SpanProfile aggregateSince(const ThreadMark &m) const;

    /** Whole-process profile across every registered thread. */
    ProfileBlock profile() const;

    /**
     * Retained span records of every thread as Chrome trace-event JSON
     * ("traceEvents" array of "ph":"X" complete events plus thread-name
     * metadata). Loads in Perfetto / chrome://tracing.
     */
    void writeChromeTrace(std::ostream &os) const;

    /** Chrome-trace dump honouring BTBSIM_SPAN_OUT (see env table):
     *  returns the path written, or "" when the knob is off or the file
     *  cannot be written. @p default_path is used for "1"/"true". */
    std::string writeChromeTraceFromEnv(const std::string &default_path);

    /** Drop all recorded data and thread buffers (tests only; callers
     *  must guarantee no span is open on any thread). */
    void reset();

    std::uint64_t dropped() const;
    std::size_t threadCount() const;

    // ---- recording (ObsSpan only) -------------------------------------
    detail::SpanThreadBuf *threadBuf();
    void begin(detail::SpanThreadBuf *buf, const char *name);
    void end(detail::SpanThreadBuf *buf);

  private:
    SpanCollector();

    struct PathNode
    {
        std::uint32_t parent = 0; ///< 0 = root (no parent).
        std::string name;
    };

    std::uint32_t intern(std::uint32_t parent, const char *name);

    std::atomic<bool> enabled_{true};
    bool host_counters_wanted_ = true;
    std::size_t ring_capacity_;
    std::uint64_t epoch_ns_ = 0; ///< steady_clock origin of start_ns.

    mutable std::mutex mu_; ///< Guards threads_ and paths_.
    std::vector<std::unique_ptr<detail::SpanThreadBuf>> threads_;
    /** Index 0 is the root sentinel; ids are indices into this table. */
    std::vector<PathNode> paths_;
};

/**
 * RAII span: times the enclosing scope under @p name. @p name must be a
 * string literal (it is interned by pointer identity per thread).
 *
 *   { obs::ObsSpan span("measure"); ...measurement loop... }
 *
 * Exception-safe by construction: unwinding runs the destructor, so a
 * throwing region still closes its span with the time spent until the
 * throw.
 */
class ObsSpan
{
  public:
    explicit ObsSpan(const char *name)
    {
        SpanCollector &c = SpanCollector::instance();
        if (!c.enabled())
            return;
        buf_ = c.threadBuf();
        c.begin(buf_, name);
    }

    ~ObsSpan()
    {
        if (buf_)
            SpanCollector::instance().end(buf_);
    }

    ObsSpan(const ObsSpan &) = delete;
    ObsSpan &operator=(const ObsSpan &) = delete;

  private:
    detail::SpanThreadBuf *buf_ = nullptr;
};

/** Raw timestamp counter (0 on architectures without one). */
std::uint64_t readTsc();

} // namespace btbsim::obs

#endif // BTBSIM_OBS_SPAN_H
