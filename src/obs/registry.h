/**
 * @file
 * Hierarchical statistics registry. Stats are registered under dotted
 * paths ("l1_btb.hit", "ftq.occupancy") so every component of the Cpu —
 * PC generation, BTB organization, caches, backend — exports under its
 * own namespace, and registries from different runs or threads can be
 * merged for suite-level aggregation.
 *
 * Three stat kinds are supported, matching the primitives in
 * common/stats.h: monotonically increasing counters, running means, and
 * fixed-bucket histograms. The legacy per-component StatSet is wrapped via
 * importStatSet(), so existing modules keep their cheap local counters and
 * the registry remains the single export surface.
 */

#ifndef BTBSIM_OBS_REGISTRY_H
#define BTBSIM_OBS_REGISTRY_H

#include <cstdint>
#include <map>
#include <string>

#include "common/stats.h"

namespace btbsim::obs {

/** Dotted-path stat registry; see file comment. */
class StatRegistry
{
  public:
    /** Counter at @p path, created zero-initialized on first use. */
    std::uint64_t &counter(const std::string &path);

    /** Running mean at @p path, created empty on first use. */
    RunningMean &mean(const std::string &path);

    /**
     * Histogram at @p path, created with @p buckets buckets on first use
     * (the bucket count of an existing histogram is not changed).
     */
    Histogram &histogram(const std::string &path, std::size_t buckets = 64);

    /** True if any stat kind is registered at @p path. */
    bool has(const std::string &path) const;

    /**
     * Scalar read of the stat at @p path: counter value, mean of a
     * running mean, or mean of a histogram. 0 when absent.
     */
    double value(const std::string &path) const;

    /** Import every counter of a legacy StatSet under @p prefix. */
    void importStatSet(const std::string &prefix, const StatSet &s);

    /**
     * Combine @p other into this registry: counters add, running means
     * pool their sums, histograms add bucket-wise. Used to aggregate the
     * per-run registries produced by the threaded runMatrix.
     */
    void merge(const StatRegistry &other);

    /** All stats flattened to (dotted path -> scalar), for export. */
    std::map<std::string, double> flatten() const;

    const std::map<std::string, std::uint64_t> &counters() const
    {
        return counters_;
    }
    const std::map<std::string, RunningMean> &means() const { return means_; }
    const std::map<std::string, Histogram> &histograms() const
    {
        return hists_;
    }

    bool empty() const
    {
        return counters_.empty() && means_.empty() && hists_.empty();
    }

    void
    clear()
    {
        counters_.clear();
        means_.clear();
        hists_.clear();
    }

    /**
     * A registration proxy bound to one dotted prefix. Components receive
     * a Scope and need not know where in the hierarchy they live:
     *
     *   auto btb = registry.scope("l1_btb");
     *   ++btb.counter("hit");            // registers "l1_btb.hit"
     *   auto sub = btb.scope("evict");   // prefix "l1_btb.evict"
     */
    class Scope
    {
      public:
        Scope(StatRegistry &reg, std::string prefix)
            : reg_(&reg), prefix_(std::move(prefix))
        {}

        std::uint64_t &counter(const std::string &name)
        {
            return reg_->counter(join(name));
        }
        RunningMean &mean(const std::string &name)
        {
            return reg_->mean(join(name));
        }
        Histogram &histogram(const std::string &name,
                             std::size_t buckets = 64)
        {
            return reg_->histogram(join(name), buckets);
        }
        void importStatSet(const StatSet &s)
        {
            reg_->importStatSet(prefix_, s);
        }
        Scope scope(const std::string &sub) const
        {
            return Scope(*reg_, join(sub));
        }
        const std::string &prefix() const { return prefix_; }

      private:
        std::string
        join(const std::string &name) const
        {
            return prefix_.empty() ? name : prefix_ + "." + name;
        }

        StatRegistry *reg_;
        std::string prefix_;
    };

    Scope scope(const std::string &prefix) { return Scope(*this, prefix); }

  private:
    std::map<std::string, std::uint64_t> counters_;
    std::map<std::string, RunningMean> means_;
    std::map<std::string, Histogram> hists_;
};

} // namespace btbsim::obs

#endif // BTBSIM_OBS_REGISTRY_H
