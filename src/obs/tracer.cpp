#include "obs/tracer.h"

#include <ostream>

#include "common/env.h"

namespace btbsim::obs {

const char *
traceEventTypeName(TraceEventType t)
{
    switch (t) {
      case TraceEventType::kFetchRedirect:
        return "fetch_redirect";
      case TraceEventType::kBtbMiss:
        return "btb_miss";
      case TraceEventType::kBtbFill:
        return "btb_fill";
      case TraceEventType::kBtbEvict:
        return "btb_evict";
      case TraceEventType::kFtqStall:
        return "ftq_stall";
      case TraceEventType::kBranchResolve:
        return "branch_resolve";
      case TraceEventType::kCheckFail:
        return "check_fail";
    }
    return "unknown";
}

Tracer::Tracer(std::size_t capacity) : buf_(capacity > 0 ? capacity : 1) {}

void
Tracer::dumpJsonl(std::ostream &os) const
{
    for (std::size_t i = 0; i < count_; ++i) {
        const TraceEvent &e = at(i);
        os << "{\"cycle\": " << e.cycle << ", \"type\": \""
           << traceEventTypeName(e.type) << "\", \"pc\": " << e.pc
           << ", \"aux\": " << e.aux
           << ", \"level\": " << static_cast<unsigned>(e.level) << "}\n";
    }
}

bool
Tracer::enabledFromEnv()
{
    return env::flag("BTBSIM_TRACE");
}

std::size_t
Tracer::capacityFromEnv()
{
    const std::uint64_t cap = env::u64("BTBSIM_TRACE_CAP", 0);
    return cap > 0 ? static_cast<std::size_t>(cap) : kDefaultCapacity;
}

} // namespace btbsim::obs
