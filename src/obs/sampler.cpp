#include "obs/sampler.h"

#include "common/env.h"

namespace btbsim::obs {

std::uint64_t
Sampler::intervalFromEnv()
{
    return env::u64("BTBSIM_SAMPLE_INTERVAL", kDefaultIntervalCycles);
}

void
Sampler::sample(const SampleSnapshot &cum)
{
    IntervalSample s;
    const double dc = static_cast<double>(cum.cycle - prev_.cycle);
    const double di =
        static_cast<double>(cum.instructions - prev_.instructions);
    const double dki = di / 1000.0;
    const double taken =
        static_cast<double>(cum.taken_branches - prev_.taken_branches);

    s.cycle = cum.cycle;
    s.instructions = cum.instructions - prev_.instructions;
    s.ipc = dc > 0 ? di / dc : 0.0;
    if (taken > 0) {
        const double l1 =
            static_cast<double>(cum.taken_l1_hits - prev_.taken_l1_hits);
        const double l2 =
            static_cast<double>(cum.taken_l2_hits - prev_.taken_l2_hits);
        s.l1_btb_hitrate = l1 / taken;
        s.btb_hitrate = (l1 + l2) / taken;
    }
    if (dki > 0) {
        s.branch_mpki = (cum.mispredicts - prev_.mispredicts) / dki;
        s.misfetch_pki = (cum.misfetches - prev_.misfetches) / dki;
        s.icache_mpki = (cum.icache_misses - prev_.icache_misses) / dki;
    }
    s.ftq_occupancy =
        dc > 0 ? (cum.ftq_occupancy_sum - prev_.ftq_occupancy_sum) / dc
               : 0.0;

    samples_.push_back(s);
    prev_ = cum;
    next_ = cum.cycle + interval_;
}

} // namespace btbsim::obs
