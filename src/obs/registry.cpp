#include "obs/registry.h"

namespace btbsim::obs {

std::uint64_t &
StatRegistry::counter(const std::string &path)
{
    return counters_[path];
}

RunningMean &
StatRegistry::mean(const std::string &path)
{
    return means_[path];
}

Histogram &
StatRegistry::histogram(const std::string &path, std::size_t buckets)
{
    auto it = hists_.find(path);
    if (it == hists_.end())
        it = hists_.emplace(path, Histogram(buckets)).first;
    return it->second;
}

bool
StatRegistry::has(const std::string &path) const
{
    return counters_.count(path) || means_.count(path) ||
           hists_.count(path);
}

double
StatRegistry::value(const std::string &path) const
{
    if (auto it = counters_.find(path); it != counters_.end())
        return static_cast<double>(it->second);
    if (auto it = means_.find(path); it != means_.end())
        return it->second.mean();
    if (auto it = hists_.find(path); it != hists_.end())
        return it->second.mean();
    return 0.0;
}

void
StatRegistry::importStatSet(const std::string &prefix, const StatSet &s)
{
    for (const auto &[name, v] : s.all())
        counters_[prefix.empty() ? name : prefix + "." + name] += v;
}

void
StatRegistry::merge(const StatRegistry &other)
{
    for (const auto &[k, v] : other.counters_)
        counters_[k] += v;
    for (const auto &[k, m] : other.means_)
        means_[k].merge(m);
    for (const auto &[k, h] : other.hists_) {
        auto it = hists_.find(k);
        if (it == hists_.end())
            hists_.emplace(k, h);
        else
            it->second.merge(h);
    }
}

std::map<std::string, double>
StatRegistry::flatten() const
{
    std::map<std::string, double> out;
    for (const auto &[k, v] : counters_)
        out[k] = static_cast<double>(v);
    for (const auto &[k, m] : means_)
        out[k] = m.mean();
    for (const auto &[k, h] : hists_)
        out[k] = h.mean();
    return out;
}

} // namespace btbsim::obs
