/**
 * @file
 * Machine-readable exporters for simulation results. The JSON document
 * schema is versioned (kSchemaVersion, emitted as "schema_version") and
 * documented in DESIGN.md §Observability; tools/btbsim-stats consumes it.
 *
 * Schema v2 (one document per bench invocation):
 *
 *   {
 *     "schema_version": 2,
 *     "generator": "btbsim",
 *     "bench": "<bench slug>",
 *     "baseline": "<config name or "">,
 *     "runs": [
 *       {
 *         "config": "...", "workload": "...",
 *         "stats": { instructions, cycles, ipc, branch_mpki, ... },
 *         "counters": { "<component.stat>": <number>, ... },
 *         "host": {
 *           "seconds": s, "minst_per_sec": r,
 *           "counters_available": 0|1,          // v2
 *           "spans": {                          // v2: per-run profile
 *             "<path>": { count, wall_ns, tsc, cycles, instructions,
 *                         branch_misses, cache_misses, task_clock_ns }
 *           }
 *         },
 *         "samples": {
 *           "interval_cycles": N,
 *           "points": [ { cycle, instructions, ipc, l1_btb_hitrate,
 *                         btb_hitrate, branch_mpki, misfetch_pki,
 *                         ftq_occupancy, icache_mpki }, ... ]
 *         }
 *       }, ...
 *     ],
 *     "aggregates": {
 *       "<config>": { "geomean_ipc": g, "normalized_ipc_geomean": n }
 *     },
 *     "profile": {                              // v2: whole process
 *       "total_spans": n, "dropped": d, "threads": t,
 *       "counters_available": 0|1,
 *       "spans": { "<path>": { ...same as host.spans... } }
 *     }
 *   }
 *
 * v1 is v2 without the host.counters_available / host.spans / profile
 * members; consumers (obs/result_doc.h) accept both.
 */

#ifndef BTBSIM_OBS_EXPORT_H
#define BTBSIM_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"
#include "obs/span.h"

namespace btbsim {
struct SimStats;
}

namespace btbsim::obs {

/** Version of the result-JSON schema documented above. */
constexpr int kSchemaVersion = 2;

/** Emit one run as a JSON object (config/workload/stats/counters/...). */
void writeSimStatsJson(JsonWriter &w, const SimStats &s);

/** Emit a path-keyed span-aggregate table as a JSON object (the value
 *  of "host.spans" and "profile.spans"). */
void writeSpanProfileJson(JsonWriter &w, const SpanProfile &p);

/** Emit a whole-process profile as the top-level "profile" value. */
void writeProfileBlockJson(JsonWriter &w, const ProfileBlock &p);

/** CSV header matching writeRunCsvRow's columns. */
void writeRunsCsvHeader(std::ostream &os);

/** One CSV row of a run's headline stats. */
void writeRunCsvRow(std::ostream &os, const SimStats &s);

/** The per-interval time series of one run as CSV (header + rows). */
void writeSamplesCsv(std::ostream &os, const SimStats &s);

/** Filesystem-safe slug: lowercase alnum, everything else collapsed
 *  to single underscores ("I-BTB 16" -> "i_btb_16"). */
std::string slugify(std::string_view s);

} // namespace btbsim::obs

#endif // BTBSIM_OBS_EXPORT_H
