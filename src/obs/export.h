/**
 * @file
 * Machine-readable exporters for simulation results. The JSON document
 * schema is versioned (kSchemaVersion, emitted as "schema_version") and
 * documented in DESIGN.md §Observability; tools/btbsim-stats consumes it.
 *
 * Schema v1 (one document per bench invocation):
 *
 *   {
 *     "schema_version": 1,
 *     "generator": "btbsim",
 *     "bench": "<bench slug>",
 *     "baseline": "<config name or "">,
 *     "runs": [
 *       {
 *         "config": "...", "workload": "...",
 *         "stats": { instructions, cycles, ipc, branch_mpki, ... },
 *         "counters": { "<component.stat>": <number>, ... },
 *         "host": { "seconds": s, "minst_per_sec": r },
 *         "samples": {
 *           "interval_cycles": N,
 *           "points": [ { cycle, instructions, ipc, l1_btb_hitrate,
 *                         btb_hitrate, branch_mpki, misfetch_pki,
 *                         ftq_occupancy, icache_mpki }, ... ]
 *         }
 *       }, ...
 *     ],
 *     "aggregates": {
 *       "<config>": { "geomean_ipc": g, "normalized_ipc_geomean": n }
 *     }
 *   }
 */

#ifndef BTBSIM_OBS_EXPORT_H
#define BTBSIM_OBS_EXPORT_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "obs/json.h"

namespace btbsim {
struct SimStats;
}

namespace btbsim::obs {

/** Version of the result-JSON schema documented above. */
constexpr int kSchemaVersion = 1;

/** Emit one run as a JSON object (config/workload/stats/counters/...). */
void writeSimStatsJson(JsonWriter &w, const SimStats &s);

/** CSV header matching writeRunCsvRow's columns. */
void writeRunsCsvHeader(std::ostream &os);

/** One CSV row of a run's headline stats. */
void writeRunCsvRow(std::ostream &os, const SimStats &s);

/** The per-interval time series of one run as CSV (header + rows). */
void writeSamplesCsv(std::ostream &os, const SimStats &s);

/** Filesystem-safe slug: lowercase alnum, everything else collapsed
 *  to single underscores ("I-BTB 16" -> "i_btb_16"). */
std::string slugify(std::string_view s);

} // namespace btbsim::obs

#endif // BTBSIM_OBS_EXPORT_H
