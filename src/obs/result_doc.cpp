#include "obs/result_doc.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/export.h"
#include "obs/json.h"

namespace btbsim::obs {

namespace {

double
numberOr(const JsonValue &v, std::string_view key, double fallback)
{
    const JsonValue *m = v.find(key);
    return m && m->isNumber() ? m->number : fallback;
}

std::uint64_t
u64Or(const JsonValue &v, std::string_view key, std::uint64_t fallback)
{
    return static_cast<std::uint64_t>(
        numberOr(v, key, static_cast<double>(fallback)));
}

SpanAgg
parseSpanAgg(const JsonValue &v)
{
    SpanAgg a;
    a.count = u64Or(v, "count", 0);
    a.wall_ns = u64Or(v, "wall_ns", 0);
    a.tsc = u64Or(v, "tsc", 0);
    a.cycles = u64Or(v, "cycles", 0);
    a.instructions = u64Or(v, "instructions", 0);
    a.branch_misses = u64Or(v, "branch_misses", 0);
    a.cache_misses = u64Or(v, "cache_misses", 0);
    a.task_clock_ns = u64Or(v, "task_clock_ns", 0);
    return a;
}

SpanProfile
parseSpanTable(const JsonValue &spans)
{
    SpanProfile out;
    for (const auto &[path, agg] : spans.object)
        out[path] = parseSpanAgg(agg);
    return out;
}

} // namespace

SpanProfile
ResultDoc::mergedSpans() const
{
    // The whole-process profile block already aggregates every span,
    // including the ones each run's host.spans re-states as a per-run
    // slice — summing both would double-count. Runs are the fallback
    // for documents without a profile block.
    if (has_profile && !profile.spans.empty())
        return profile.spans;
    SpanProfile out;
    for (const DocRun &r : runs)
        for (const auto &[path, agg] : r.spans)
            out[path] += agg;
    return out;
}

bool
ResultDoc::mergedCountersAvailable() const
{
    if (has_profile && profile.counters_available)
        return true;
    for (const DocRun &r : runs)
        if (r.counters_available)
            return true;
    return false;
}

ResultDoc
parseResultDoc(const JsonValue &root, const std::string &origin)
{
    ResultDoc doc;
    doc.schema_version =
        static_cast<int>(root.at("schema_version").asNumber());
    // Compat shim: v1 documents (pre-profiling) parse with empty span
    // data; anything newer than the build is rejected loudly.
    if (doc.schema_version < 1 || doc.schema_version > kSchemaVersion)
        throw std::runtime_error(
            origin + ": unsupported schema_version " +
            std::to_string(doc.schema_version) + " (tool supports 1.." +
            std::to_string(kSchemaVersion) + ")");
    if (const JsonValue *b = root.find("bench"))
        doc.bench = b->isString() ? b->str : "";

    for (const JsonValue &r : root.at("runs").array) {
        DocRun run;
        run.config = r.at("config").asString();
        run.workload = r.at("workload").asString();
        const JsonValue &stats = r.at("stats");
        run.ipc = stats.at("ipc").asNumber();
        run.branch_mpki = numberOr(stats, "branch_mpki", 0.0);

        if (const JsonValue *s = r.find("samples")) {
            run.sample_interval = u64Or(*s, "interval_cycles", 0);
            if (const JsonValue *pts = s->find("points")) {
                for (const JsonValue &pv : pts->array) {
                    IntervalSample p;
                    p.cycle = u64Or(pv, "cycle", 0);
                    p.instructions = u64Or(pv, "instructions", 0);
                    p.ipc = numberOr(pv, "ipc", 0.0);
                    p.l1_btb_hitrate = numberOr(pv, "l1_btb_hitrate", 0.0);
                    p.btb_hitrate = numberOr(pv, "btb_hitrate", 0.0);
                    p.branch_mpki = numberOr(pv, "branch_mpki", 0.0);
                    p.misfetch_pki = numberOr(pv, "misfetch_pki", 0.0);
                    p.ftq_occupancy = numberOr(pv, "ftq_occupancy", 0.0);
                    p.icache_mpki = numberOr(pv, "icache_mpki", 0.0);
                    run.samples.push_back(p);
                }
            }
        }

        if (const JsonValue *h = r.find("host")) {
            run.counters_available = numberOr(*h, "counters_available",
                                              0.0) != 0.0;
            if (const JsonValue *spans = h->find("spans"))
                run.spans = parseSpanTable(*spans);
        }
        doc.runs.push_back(std::move(run));
    }

    if (const JsonValue *p = root.find("profile")) {
        doc.has_profile = true;
        doc.profile.total_spans = u64Or(*p, "total_spans", 0);
        doc.profile.dropped = u64Or(*p, "dropped", 0);
        doc.profile.threads =
            static_cast<std::uint32_t>(u64Or(*p, "threads", 0));
        doc.profile.counters_available =
            numberOr(*p, "counters_available", 0.0) != 0.0;
        if (const JsonValue *spans = p->find("spans"))
            doc.profile.spans = parseSpanTable(*spans);
    }
    return doc;
}

ResultDoc
loadResultDoc(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    return parseResultDoc(parseJson(buf.str()), path);
}

std::string
sparkline(const std::vector<double> &v, std::size_t max_points)
{
    if (v.empty() || max_points == 0)
        return {};

    // Downsample to max_points by averaging adjacent buckets.
    std::vector<double> pts;
    if (v.size() <= max_points) {
        pts = v;
    } else {
        pts.reserve(max_points);
        for (std::size_t b = 0; b < max_points; ++b) {
            const std::size_t lo = b * v.size() / max_points;
            std::size_t hi = (b + 1) * v.size() / max_points;
            if (hi <= lo)
                hi = lo + 1;
            double sum = 0.0;
            for (std::size_t i = lo; i < hi; ++i)
                sum += v[i];
            pts.push_back(sum / static_cast<double>(hi - lo));
        }
    }

    double mn = pts[0], mx = pts[0];
    for (double x : pts) {
        if (x < mn)
            mn = x;
        if (x > mx)
            mx = x;
    }

    // U+2581..U+2588, one UTF-8 triplet per level.
    static const char *kBlocks[8] = {"▁", "▂", "▃",
                                     "▄", "▅", "▆",
                                     "▇", "█"};
    std::string out;
    out.reserve(pts.size() * 3);
    const double range = mx - mn;
    for (double x : pts) {
        int lvl = 3; // Constant series render mid-height.
        if (range > 0) {
            lvl = static_cast<int>((x - mn) / range * 7.0 + 0.5);
            if (lvl < 0)
                lvl = 0;
            if (lvl > 7)
                lvl = 7;
        }
        out += kBlocks[lvl];
    }
    return out;
}

} // namespace btbsim::obs
