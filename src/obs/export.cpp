#include "obs/export.h"

#include <cctype>
#include <ostream>

#include "sim/sim_stats.h"

namespace btbsim::obs {

namespace {

/** The scalar SimStats fields exported both to JSON and CSV, in order. */
struct Field
{
    const char *name;
    double (*get)(const SimStats &);
};

constexpr Field kScalarFields[] = {
    {"ipc", [](const SimStats &s) { return s.ipc; }},
    {"branch_mpki", [](const SimStats &s) { return s.branch_mpki; }},
    {"misfetch_pki", [](const SimStats &s) { return s.misfetch_pki; }},
    {"combined_mpki", [](const SimStats &s) { return s.combined_mpki; }},
    {"cond_mispredict_rate",
     [](const SimStats &s) { return s.cond_mispredict_rate; }},
    {"l1_btb_hitrate", [](const SimStats &s) { return s.l1_btb_hitrate; }},
    {"btb_hitrate", [](const SimStats &s) { return s.btb_hitrate; }},
    {"fetch_pcs_per_access",
     [](const SimStats &s) { return s.fetch_pcs_per_access; }},
    {"taken_per_ki", [](const SimStats &s) { return s.taken_per_ki; }},
    {"l1_slot_occupancy",
     [](const SimStats &s) { return s.l1_slot_occupancy; }},
    {"l2_slot_occupancy",
     [](const SimStats &s) { return s.l2_slot_occupancy; }},
    {"l1_redundancy", [](const SimStats &s) { return s.l1_redundancy; }},
    {"l2_redundancy", [](const SimStats &s) { return s.l2_redundancy; }},
    {"icache_mpki", [](const SimStats &s) { return s.icache_mpki; }},
    {"avg_dyn_bb_size", [](const SimStats &s) { return s.avg_dyn_bb_size; }},
};

} // namespace

void
writeSimStatsJson(JsonWriter &w, const SimStats &s)
{
    w.beginObject();
    w.kv("config", s.config);
    w.kv("workload", s.workload);

    w.key("stats");
    w.beginObject();
    w.kv("instructions", s.instructions);
    w.kv("cycles", s.cycles);
    for (const Field &f : kScalarFields)
        w.kv(f.name, f.get(s));
    w.endObject();

    w.key("counters");
    w.beginObject();
    for (const auto &[name, v] : s.counters)
        w.kv(name, v);
    w.endObject();

    w.key("host");
    w.beginObject();
    w.kv("seconds", s.host_seconds);
    w.kv("minst_per_sec", s.minst_per_host_sec);
    w.kv("source", s.source_kind);
    w.kv("source_minst_per_sec", s.source_minst_per_sec);
    w.kv("counters_available", s.host_counters_available ? 1 : 0);
    w.key("spans");
    writeSpanProfileJson(w, s.span_profile);
    w.endObject();

    w.key("samples");
    w.beginObject();
    w.kv("interval_cycles", s.sample_interval);
    w.key("points");
    w.beginArray();
    for (const obs::IntervalSample &p : s.samples) {
        w.beginObject();
        w.kv("cycle", p.cycle);
        w.kv("instructions", p.instructions);
        w.kv("ipc", p.ipc);
        w.kv("l1_btb_hitrate", p.l1_btb_hitrate);
        w.kv("btb_hitrate", p.btb_hitrate);
        w.kv("branch_mpki", p.branch_mpki);
        w.kv("misfetch_pki", p.misfetch_pki);
        w.kv("ftq_occupancy", p.ftq_occupancy);
        w.kv("icache_mpki", p.icache_mpki);
        w.endObject();
    }
    w.endArray();
    w.endObject();

    w.endObject();
}

void
writeSpanProfileJson(JsonWriter &w, const SpanProfile &p)
{
    w.beginObject();
    for (const auto &[path, a] : p) {
        w.key(path);
        w.beginObject();
        w.kv("count", a.count);
        w.kv("wall_ns", a.wall_ns);
        w.kv("tsc", a.tsc);
        w.kv("cycles", a.cycles);
        w.kv("instructions", a.instructions);
        w.kv("branch_misses", a.branch_misses);
        w.kv("cache_misses", a.cache_misses);
        w.kv("task_clock_ns", a.task_clock_ns);
        w.endObject();
    }
    w.endObject();
}

void
writeProfileBlockJson(JsonWriter &w, const ProfileBlock &p)
{
    w.beginObject();
    w.kv("total_spans", p.total_spans);
    w.kv("dropped", p.dropped);
    w.kv("threads", p.threads);
    w.kv("counters_available", p.counters_available ? 1 : 0);
    w.key("spans");
    writeSpanProfileJson(w, p.spans);
    w.endObject();
}

namespace {

void
csvQuote(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"')
            os << '"';
        os << c;
    }
    os << '"';
}

} // namespace

void
writeRunsCsvHeader(std::ostream &os)
{
    os << "config,workload,instructions,cycles";
    for (const Field &f : kScalarFields)
        os << ',' << f.name;
    os << ",host_seconds,minst_per_host_sec,source,source_minst_per_sec\n";
}

void
writeRunCsvRow(std::ostream &os, const SimStats &s)
{
    csvQuote(os, s.config);
    os << ',';
    csvQuote(os, s.workload);
    os << ',' << s.instructions << ',' << s.cycles;
    for (const Field &f : kScalarFields)
        os << ',' << f.get(s);
    os << ',' << s.host_seconds << ',' << s.minst_per_host_sec << ',';
    csvQuote(os, s.source_kind);
    os << ',' << s.source_minst_per_sec << '\n';
}

void
writeSamplesCsv(std::ostream &os, const SimStats &s)
{
    os << "config,workload,cycle,instructions,ipc,l1_btb_hitrate,"
          "btb_hitrate,branch_mpki,misfetch_pki,ftq_occupancy,icache_mpki\n";
    for (const obs::IntervalSample &p : s.samples) {
        csvQuote(os, s.config);
        os << ',';
        csvQuote(os, s.workload);
        os << ',' << p.cycle << ',' << p.instructions << ',' << p.ipc << ','
           << p.l1_btb_hitrate << ',' << p.btb_hitrate << ','
           << p.branch_mpki << ',' << p.misfetch_pki << ','
           << p.ftq_occupancy << ',' << p.icache_mpki << '\n';
    }
}

std::string
slugify(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    bool pending_sep = false;
    for (char c : s) {
        if (std::isalnum(static_cast<unsigned char>(c))) {
            if (pending_sep && !out.empty())
                out += '_';
            pending_sep = false;
            out += static_cast<char>(
                std::tolower(static_cast<unsigned char>(c)));
        } else {
            pending_sep = true;
        }
    }
    return out.empty() ? "unnamed" : out;
}

} // namespace btbsim::obs
