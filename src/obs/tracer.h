/**
 * @file
 * Opt-in pipeline event tracer. Frontend and core components hold a
 * Tracer pointer that is null unless tracing was requested (BTBSIM_TRACE
 * or Cpu::attachTracer), so the disabled cost is a single predictable
 * null-pointer branch per event site. Events are typed records in a
 * bounded ring buffer — tracing a long run keeps the most recent window
 * instead of growing without bound — and dump as JSONL, one event per
 * line, for external tooling.
 */

#ifndef BTBSIM_OBS_TRACER_H
#define BTBSIM_OBS_TRACER_H

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <vector>

#include "common/types.h"

namespace btbsim::obs {

/** Pipeline event kinds the tracer records. */
enum class TraceEventType : std::uint8_t {
    kFetchRedirect, ///< Frontend resteer (decode or execute resolved).
    kBtbMiss,       ///< BTB access that hit no level.
    kBtbFill,       ///< BTB trained after a resteer (fill/correction).
    kBtbEvict,      ///< Entry displaced (when an organization reports it).
    kFtqStall,      ///< PC generation blocked on a full FTQ.
    kBranchResolve, ///< Execute-resolved branch consumed by the frontend.
    kCheckFail,     ///< Differential checker divergence (src/check/).
};

/** Stable lowercase name used in the JSONL output. */
const char *traceEventTypeName(TraceEventType t);

/** One recorded event. @c aux is event-specific (e.g. branch target). */
struct TraceEvent
{
    Cycle cycle = 0;
    Addr pc = 0;
    Addr aux = 0;
    TraceEventType type = TraceEventType::kFetchRedirect;
    std::uint8_t level = 0; ///< BTB level where meaningful.
};

/** Bounded ring buffer of TraceEvents with JSONL export. */
class Tracer
{
  public:
    static constexpr std::size_t kDefaultCapacity = 1 << 16;

    explicit Tracer(std::size_t capacity = kDefaultCapacity);

    void
    record(Cycle cycle, TraceEventType type, Addr pc, Addr aux = 0,
           int level = 0)
    {
        TraceEvent &e = buf_[(head_ + count_) % buf_.size()];
        e = {cycle, pc, aux, type, static_cast<std::uint8_t>(level)};
        if (count_ < buf_.size())
            ++count_;
        else
            head_ = (head_ + 1) % buf_.size();
        ++total_;
    }

    std::size_t capacity() const { return buf_.size(); }
    /** Events currently retained (≤ capacity). */
    std::size_t size() const { return count_; }
    /** Events ever recorded; total() - size() were dropped (oldest). */
    std::uint64_t total() const { return total_; }
    std::uint64_t dropped() const { return total_ - count_; }

    /** Retained event @p i, oldest first. */
    const TraceEvent &
    at(std::size_t i) const
    {
        return buf_[(head_ + i) % buf_.size()];
    }

    void
    clear()
    {
        head_ = 0;
        count_ = 0;
        total_ = 0;
    }

    /** Dump retained events as JSONL (one JSON object per line). */
    void dumpJsonl(std::ostream &os) const;

    // ---- environment opt-in ---------------------------------------------

    /** True when BTBSIM_TRACE is set to a non-empty, non-"0" value. */
    static bool enabledFromEnv();
    /** BTBSIM_TRACE_CAP, or kDefaultCapacity when unset/invalid. */
    static std::size_t capacityFromEnv();

  private:
    std::vector<TraceEvent> buf_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t total_ = 0;
};

} // namespace btbsim::obs

#endif // BTBSIM_OBS_TRACER_H
