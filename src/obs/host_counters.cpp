#include "obs/host_counters.h"

#include <cstring>
#include <ctime>

#include "common/env.h"

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace btbsim::obs {

namespace {

std::uint64_t
threadCpuNs()
{
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0)
        return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ull +
               static_cast<std::uint64_t>(ts.tv_nsec);
#endif
    return 0;
}

#if defined(__linux__)
long
perfEventOpen(perf_event_attr *attr, int group_fd)
{
    // pid 0 / cpu -1: measure the calling thread on any CPU.
    return syscall(SYS_perf_event_open, attr, 0, -1, group_fd, 0);
}

int
openHwCounter(std::uint64_t config, int group_fd)
{
    perf_event_attr attr;
    std::memset(&attr, 0, sizeof(attr));
    attr.size = sizeof(attr);
    attr.type = PERF_TYPE_HARDWARE;
    attr.config = config;
    attr.disabled = group_fd < 0 ? 1 : 0; // Leader starts disabled.
    attr.exclude_kernel = 1;              // Lower paranoia requirement.
    attr.exclude_hv = 1;
    attr.read_format = PERF_FORMAT_GROUP;
    return static_cast<int>(perfEventOpen(&attr, group_fd));
}
#endif

} // namespace

HostCounters::Values
HostCounters::Values::minus(const Values &o) const
{
    auto sub = [](std::uint64_t a, std::uint64_t b) {
        return a >= b ? a - b : 0;
    };
    Values d;
    d.cycles = sub(cycles, o.cycles);
    d.instructions = sub(instructions, o.instructions);
    d.branch_misses = sub(branch_misses, o.branch_misses);
    d.cache_misses = sub(cache_misses, o.cache_misses);
    d.task_clock_ns = sub(task_clock_ns, o.task_clock_ns);
    return d;
}

bool
HostCounters::wantedFromEnv()
{
    return !env::disabled("BTBSIM_HOST_COUNTERS");
}

HostCounters::HostCounters(bool want)
{
#if defined(__linux__)
    if (!want)
        return;
    // One group, read atomically: cycles leads; instructions, branch
    // misses and cache misses join it. Any failure (perf_event_paranoid,
    // seccomp, missing PMU) degrades the whole group to unavailable.
    static constexpr std::uint64_t kConfigs[4] = {
        PERF_COUNT_HW_CPU_CYCLES,
        PERF_COUNT_HW_INSTRUCTIONS,
        PERF_COUNT_HW_BRANCH_MISSES,
        PERF_COUNT_HW_CACHE_MISSES,
    };
    for (int i = 0; i < 4; ++i) {
        fds_[i] = openHwCounter(kConfigs[i], i == 0 ? -1 : fds_[0]);
        if (fds_[i] < 0) {
            for (int j = 0; j < i; ++j) {
                close(fds_[j]);
                fds_[j] = -1;
            }
            return;
        }
    }
    group_fd_ = fds_[0];
    ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
    ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
#else
    (void)want;
#endif
}

HostCounters::~HostCounters()
{
#if defined(__linux__)
    for (int fd : fds_)
        if (fd >= 0)
            close(fd);
#endif
}

HostCounters::Values
HostCounters::read() const
{
    Values v;
    v.task_clock_ns = threadCpuNs();
#if defined(__linux__)
    if (group_fd_ < 0)
        return v;
    // PERF_FORMAT_GROUP layout: { u64 nr; u64 values[nr]; }.
    std::uint64_t buf[1 + 4] = {};
    const ssize_t n = ::read(group_fd_, buf, sizeof(buf));
    if (n < static_cast<ssize_t>(sizeof(buf)) || buf[0] != 4)
        return v;
    v.cycles = buf[1];
    v.instructions = buf[2];
    v.branch_misses = buf[3];
    v.cache_misses = buf[4];
#endif
    return v;
}

} // namespace btbsim::obs
