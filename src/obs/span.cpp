#include "obs/span.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>

#include "common/env.h"
#include "obs/json.h"

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#endif

namespace btbsim::obs {

std::uint64_t
readTsc()
{
#if defined(__x86_64__) || defined(__i386__)
    return __rdtsc();
#elif defined(__aarch64__)
    std::uint64_t v;
    asm volatile("mrs %0, cntvct_el0" : "=r"(v));
    return v;
#else
    return 0;
#endif
}

namespace {

std::uint64_t
steadyNs()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

thread_local detail::SpanThreadBuf *t_buf = nullptr;

} // namespace

// ---- SpanAgg -----------------------------------------------------------

SpanAgg &
SpanAgg::operator+=(const SpanAgg &o)
{
    count += o.count;
    wall_ns += o.wall_ns;
    tsc += o.tsc;
    cycles += o.cycles;
    instructions += o.instructions;
    branch_misses += o.branch_misses;
    cache_misses += o.cache_misses;
    task_clock_ns += o.task_clock_ns;
    return *this;
}

SpanAgg
SpanAgg::minus(const SpanAgg &o) const
{
    auto sub = [](std::uint64_t a, std::uint64_t b) {
        return a >= b ? a - b : 0;
    };
    SpanAgg d;
    d.count = sub(count, o.count);
    d.wall_ns = sub(wall_ns, o.wall_ns);
    d.tsc = sub(tsc, o.tsc);
    d.cycles = sub(cycles, o.cycles);
    d.instructions = sub(instructions, o.instructions);
    d.branch_misses = sub(branch_misses, o.branch_misses);
    d.cache_misses = sub(cache_misses, o.cache_misses);
    d.task_clock_ns = sub(task_clock_ns, o.task_clock_ns);
    return d;
}

// ---- SpanThreadBuf -----------------------------------------------------

namespace detail {

SpanThreadBuf::SpanThreadBuf(std::uint32_t tid, std::size_t ring_capacity,
                             bool open_counters)
    : tid_(tid), counters_(open_counters)
{
    ring_.resize(ring_capacity == 0 ? 1 : ring_capacity);
}

} // namespace detail

// ---- SpanCollector -----------------------------------------------------

SpanCollector &
SpanCollector::instance()
{
    static SpanCollector c;
    return c;
}

SpanCollector::SpanCollector()
{
    enabled_.store(!env::disabled("BTBSIM_SPANS"),
                   std::memory_order_relaxed);
    host_counters_wanted_ = HostCounters::wantedFromEnv();
    ring_capacity_ = static_cast<std::size_t>(
        env::u64("BTBSIM_SPAN_CAP", 1 << 16));
    if (ring_capacity_ == 0)
        ring_capacity_ = 1;
    epoch_ns_ = steadyNs();
    paths_.push_back({0, ""}); // Root sentinel (id 0).
}

detail::SpanThreadBuf *
SpanCollector::threadBuf()
{
    if (t_buf)
        return t_buf;
    std::lock_guard<std::mutex> lk(mu_);
    threads_.push_back(std::make_unique<detail::SpanThreadBuf>(
        static_cast<std::uint32_t>(threads_.size()), ring_capacity_,
        host_counters_wanted_));
    t_buf = threads_.back().get();
    return t_buf;
}

std::uint32_t
SpanCollector::intern(std::uint32_t parent, const char *name)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (std::uint32_t id = 1; id < paths_.size(); ++id)
        if (paths_[id].parent == parent && paths_[id].name == name)
            return id;
    paths_.push_back({parent, name});
    return static_cast<std::uint32_t>(paths_.size() - 1);
}

void
SpanCollector::begin(detail::SpanThreadBuf *buf, const char *name)
{
    if (buf->depth_ >= detail::SpanThreadBuf::kMaxDepth) {
        ++buf->deep_skips_;
        ++buf->depth_;
        return;
    }
    const std::uint32_t parent =
        buf->depth_ > 0 && buf->depth_ <= detail::SpanThreadBuf::kMaxDepth
            ? buf->stack_[buf->depth_ - 1].path
            : 0;
    // Pointer-keyed per-thread memo; the slow path interns by content so
    // identical literals from different TUs share one id.
    const auto memo_key = std::make_pair(parent,
                                         static_cast<const void *>(name));
    std::uint32_t id;
    auto it = buf->intern_memo_.find(memo_key);
    if (it != buf->intern_memo_.end()) {
        id = it->second;
    } else {
        id = intern(parent, name);
        buf->intern_memo_.emplace(memo_key, id);
    }

    detail::SpanThreadBuf::Frame &f = buf->stack_[buf->depth_++];
    f.path = id;
    f.start_counters = buf->counters_.read();
    f.start_tsc = readTsc();
    f.start_ns = steadyNs();
}

void
SpanCollector::end(detail::SpanThreadBuf *buf)
{
    if (buf->depth_ == 0)
        return; // Unbalanced end (collector reset under an open span).
    if (buf->depth_ > detail::SpanThreadBuf::kMaxDepth) {
        --buf->depth_; // Matching a begin skipped for depth.
        return;
    }
    const std::uint64_t end_ns = steadyNs();
    const std::uint64_t end_tsc = readTsc();
    const HostCounters::Values end_counters = buf->counters_.read();

    const detail::SpanThreadBuf::Frame &f = buf->stack_[--buf->depth_];
    const HostCounters::Values d = end_counters.minus(f.start_counters);

    SpanRecord rec;
    rec.path = f.path;
    rec.depth = static_cast<std::uint16_t>(buf->depth_);
    rec.start_ns = f.start_ns > epoch_ns_ ? f.start_ns - epoch_ns_ : 0;
    rec.dur_ns = end_ns > f.start_ns ? end_ns - f.start_ns : 0;
    rec.tsc = end_tsc > f.start_tsc ? end_tsc - f.start_tsc : 0;
    rec.counters = d;

    // Aggregate first (complete), then ring (most recent window).
    SpanAgg &a = buf->agg_[f.path];
    ++a.count;
    a.wall_ns += rec.dur_ns;
    a.tsc += rec.tsc;
    a.cycles += d.cycles;
    a.instructions += d.instructions;
    a.branch_misses += d.branch_misses;
    a.cache_misses += d.cache_misses;
    a.task_clock_ns += d.task_clock_ns;

    buf->ring_[(buf->head_ + buf->count_) % buf->ring_.size()] = rec;
    if (buf->count_ < buf->ring_.size())
        ++buf->count_;
    else {
        buf->head_ = (buf->head_ + 1) % buf->ring_.size();
        ++buf->dropped_;
    }
    ++buf->completed_;
}

bool
SpanCollector::countersAvailable() const
{
    std::lock_guard<std::mutex> lk(mu_);
    for (const auto &t : threads_)
        if (t->counters().available())
            return true;
    return false;
}

std::string
SpanCollector::pathName(std::uint32_t id) const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::string out;
    // Path chains are shallow (span nesting depth); build backwards.
    std::vector<const std::string *> parts;
    while (id != 0 && id < paths_.size()) {
        parts.push_back(&paths_[id].name);
        id = paths_[id].parent;
    }
    for (auto it = parts.rbegin(); it != parts.rend(); ++it) {
        if (!out.empty())
            out += '/';
        out += **it;
    }
    return out;
}

std::string
SpanCollector::currentPath() const
{
    const detail::SpanThreadBuf *buf = t_buf;
    if (!buf || buf->depth_ == 0 ||
        buf->depth_ > detail::SpanThreadBuf::kMaxDepth)
        return {};
    return pathName(buf->stack_[buf->depth_ - 1].path);
}

SpanCollector::ThreadMark
SpanCollector::mark()
{
    ThreadMark m;
    if (!enabled())
        return m;
    m.buf = threadBuf();
    m.agg = m.buf->agg_;
    return m;
}

SpanProfile
SpanCollector::aggregateSince(const ThreadMark &m) const
{
    SpanProfile out;
    if (!m.buf)
        return out;
    for (const auto &[id, agg] : m.buf->agg_) {
        SpanAgg delta = agg;
        if (auto it = m.agg.find(id); it != m.agg.end())
            delta = agg.minus(it->second);
        if (delta.count > 0)
            out[pathName(id)] += delta;
    }
    return out;
}

ProfileBlock
SpanCollector::profile() const
{
    ProfileBlock p;
    // pathName locks mu_ too; gather ids under the lock, resolve after.
    std::vector<std::pair<std::uint32_t, SpanAgg>> rows;
    {
        std::lock_guard<std::mutex> lk(mu_);
        p.threads = static_cast<std::uint32_t>(threads_.size());
        for (const auto &t : threads_) {
            p.total_spans += t->completed();
            p.dropped += t->dropped() + t->deep_skips_;
            if (t->counters().available())
                p.counters_available = true;
            for (const auto &[id, agg] : t->agg_)
                rows.emplace_back(id, agg);
        }
    }
    for (const auto &[id, agg] : rows)
        p.spans[pathName(id)] += agg;
    return p;
}

std::uint64_t
SpanCollector::dropped() const
{
    std::lock_guard<std::mutex> lk(mu_);
    std::uint64_t n = 0;
    for (const auto &t : threads_)
        n += t->dropped() + t->deep_skips_;
    return n;
}

std::size_t
SpanCollector::threadCount() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return threads_.size();
}

void
SpanCollector::writeChromeTrace(std::ostream &os) const
{
    // Collect (record, tid) rows under the lock, resolve names after.
    std::vector<std::pair<SpanRecord, std::uint32_t>> rows;
    std::uint64_t dropped = 0;
    std::size_t n_threads = 0;
    {
        std::lock_guard<std::mutex> lk(mu_);
        n_threads = threads_.size();
        for (const auto &t : threads_) {
            dropped += t->dropped() + t->deep_skips_;
            for (std::size_t i = 0; i < t->count_; ++i)
                rows.emplace_back(
                    t->ring_[(t->head_ + i) % t->ring_.size()], t->tid());
        }
    }

    JsonWriter w(os);
    w.beginObject();
    w.kv("displayTimeUnit", "ns");
    w.key("otherData");
    w.beginObject();
    w.kv("generator", "btbsim");
    w.kv("dropped_spans", dropped);
    w.endObject();
    w.key("traceEvents");
    w.beginArray();
    for (std::size_t tid = 0; tid < n_threads; ++tid) {
        w.beginObject();
        w.kv("name", "thread_name");
        w.kv("ph", "M");
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(tid));
        w.key("args");
        w.beginObject();
        w.kv("name", tid == 0 ? "main" : ("worker-" + std::to_string(tid)));
        w.endObject();
        w.endObject();
    }
    for (const auto &[rec, tid] : rows) {
        w.beginObject();
        w.kv("name", pathName(rec.path));
        w.kv("cat", "btbsim");
        w.kv("ph", "X");
        // Chrome trace timestamps and durations are microseconds.
        w.kv("ts", static_cast<double>(rec.start_ns) / 1000.0);
        w.kv("dur", static_cast<double>(rec.dur_ns) / 1000.0);
        w.kv("pid", 1);
        w.kv("tid", static_cast<std::uint64_t>(tid));
        w.key("args");
        w.beginObject();
        w.kv("tsc", rec.tsc);
        if (rec.counters.cycles != 0 || rec.counters.instructions != 0) {
            w.kv("cycles", rec.counters.cycles);
            w.kv("instructions", rec.counters.instructions);
            w.kv("branch_misses", rec.counters.branch_misses);
            w.kv("cache_misses", rec.counters.cache_misses);
        }
        w.kv("task_clock_ns", rec.counters.task_clock_ns);
        w.endObject();
        w.endObject();
    }
    w.endArray();
    w.endObject();
    os << "\n";
}

std::string
SpanCollector::writeChromeTraceFromEnv(const std::string &default_path)
{
    const std::string path = env::outPath("BTBSIM_SPAN_OUT", default_path);
    if (path.empty())
        return {};
    const std::filesystem::path p(path);
    std::error_code ec;
    if (p.has_parent_path())
        std::filesystem::create_directories(p.parent_path(), ec);
    std::ofstream os(p);
    if (!os)
        return {};
    writeChromeTrace(os);
    return os ? path : std::string();
}

void
SpanCollector::reset()
{
    std::lock_guard<std::mutex> lk(mu_);
    threads_.clear();
    t_buf = nullptr;
    paths_.clear();
    paths_.push_back({0, ""});
    epoch_ns_ = steadyNs();
}

} // namespace btbsim::obs
