#include "obs/progress.h"

#include <cstdlib>

#include "common/env.h"

#if defined(_WIN32)
#include <io.h>
#define BTBSIM_DUP _dup
#define BTBSIM_FDOPEN _fdopen
#else
#include <unistd.h>
#define BTBSIM_DUP dup
#define BTBSIM_FDOPEN fdopen
#endif

namespace btbsim::obs {

ProgressStream::~ProgressStream()
{
    if (f_)
        std::fclose(f_);
}

std::unique_ptr<ProgressStream>
ProgressStream::openFromEnv()
{
    const std::string fd_str = env::raw("BTBSIM_PROGRESS_FD");
    if (!fd_str.empty()) {
        char *end = nullptr;
        const long fd = std::strtol(fd_str.c_str(), &end, 10);
        if (end && *end == '\0' && fd >= 0)
            return fromFd(static_cast<int>(fd));
        return nullptr;
    }
    const std::string path = env::raw("BTBSIM_PROGRESS_FILE");
    if (!path.empty())
        return fromFile(path);
    return nullptr;
}

std::unique_ptr<ProgressStream>
ProgressStream::fromFd(int fd)
{
    const int dup_fd = BTBSIM_DUP(fd);
    if (dup_fd < 0)
        return nullptr;
    std::FILE *f = BTBSIM_FDOPEN(dup_fd, "a");
    if (!f)
        return nullptr;
    return std::unique_ptr<ProgressStream>(new ProgressStream(f));
}

std::unique_ptr<ProgressStream>
ProgressStream::fromFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "a");
    if (!f)
        return nullptr;
    return std::unique_ptr<ProgressStream>(new ProgressStream(f));
}

void
ProgressStream::emitLine(const std::string &json_line)
{
    std::lock_guard<std::mutex> lk(mu_);
    // A broken pipe / full disk silently stops the stream; the sweep
    // itself must not notice.
    if (std::fputs(json_line.c_str(), f_) < 0)
        return;
    std::fputc('\n', f_);
    std::fflush(f_);
}

} // namespace btbsim::obs
