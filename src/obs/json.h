/**
 * @file
 * Dependency-free JSON support for the observability layer: a streaming
 * writer (JsonWriter) used by the exporters, and a small recursive-descent
 * parser (parseJson) used by tools/btbsim-stats to load result files.
 *
 * The writer never allocates per-value; the parser builds a JsonValue tree
 * and is tolerant only of standard JSON (RFC 8259), no comments.
 */

#ifndef BTBSIM_OBS_JSON_H
#define BTBSIM_OBS_JSON_H

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace btbsim::obs {

/**
 * Streaming JSON emitter with 2-space indentation. Containers are opened
 * and closed explicitly; the writer tracks comma/newline placement.
 *
 *   JsonWriter w(os);
 *   w.beginObject();
 *   w.kv("schema_version", 1);
 *   w.key("runs"); w.beginArray(); ... w.endArray();
 *   w.endObject();
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &os) : os_(os) {}

    void beginObject();
    void endObject();
    void beginArray();
    void endArray();

    /** Emit an object key; must be followed by exactly one value. */
    void key(std::string_view k);

    void value(std::string_view v);
    void value(const char *v) { value(std::string_view(v)); }
    void value(double v);
    void value(std::uint64_t v);
    void value(std::int64_t v);
    void value(int v) { value(static_cast<std::int64_t>(v)); }
    void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }
    void value(bool v);
    void valueNull();

    /** key() + value() in one call. */
    template <typename T>
    void
    kv(std::string_view k, T v)
    {
        key(k);
        value(v);
    }

    /** Escape @p s per JSON string rules into @p os (no quotes added). */
    static void escape(std::ostream &os, std::string_view s);

  private:
    struct Frame
    {
        bool is_object = false;
        bool first = true;
    };

    std::ostream &os_;
    std::vector<Frame> stack_;
    bool after_key_ = false;

    void beforeValue();
    void indent();
};

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Type : std::uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    /// Insertion-ordered object members.
    std::vector<std::pair<std::string, JsonValue>> object;

    bool isNull() const { return type == Type::kNull; }
    bool isNumber() const { return type == Type::kNumber; }
    bool isString() const { return type == Type::kString; }
    bool isArray() const { return type == Type::kArray; }
    bool isObject() const { return type == Type::kObject; }

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** find() that throws std::runtime_error naming the missing key. */
    const JsonValue &at(std::string_view key) const;

    /** Number cast with type check (throws std::runtime_error). */
    double asNumber() const;
    const std::string &asString() const;
};

/** Parse @p text; throws std::runtime_error with offset info on error. */
JsonValue parseJson(std::string_view text);

} // namespace btbsim::obs

#endif // BTBSIM_OBS_JSON_H
