/**
 * @file
 * Host microarchitectural counters for the profiling layer: one
 * perf_event_open group per thread sampling cycles, instructions,
 * branch misses and cache misses of the *simulator process itself* —
 * the most direct profile of a BTB simulator's hot loop is the host's
 * own branch-miss counter. Thread CPU time (task clock) comes from
 * CLOCK_THREAD_CPUTIME_ID, which needs no privileges.
 *
 * Availability is feature-detected at construction: containers and CI
 * runners with perf_event_paranoid locked down (or non-Linux hosts)
 * simply report available() == false and read() returns task-clock-only
 * values — callers degrade to timestamps and the result JSON records
 * host.counters_available = 0 instead of failing. BTBSIM_HOST_COUNTERS=0
 * forces the fallback (used by tests to pin down that path).
 */

#ifndef BTBSIM_OBS_HOST_COUNTERS_H
#define BTBSIM_OBS_HOST_COUNTERS_H

#include <cstdint>

namespace btbsim::obs {

/**
 * A per-thread group of host performance counters. Open it on the
 * thread it should measure (the fds are bound to the calling thread);
 * instances are not thread-safe and must not be shared.
 */
class HostCounters
{
  public:
    /** Cumulative counter values; deltas of two read()s profile a span. */
    struct Values
    {
        std::uint64_t cycles = 0;
        std::uint64_t instructions = 0;
        std::uint64_t branch_misses = 0;
        std::uint64_t cache_misses = 0;
        std::uint64_t task_clock_ns = 0; ///< Thread CPU time.

        Values minus(const Values &o) const;
    };

    /** @p want false skips the perf syscalls entirely (fallback mode). */
    explicit HostCounters(bool want = true);
    ~HostCounters();

    HostCounters(const HostCounters &) = delete;
    HostCounters &operator=(const HostCounters &) = delete;

    /** True when the perf group opened; task clock works regardless. */
    bool available() const { return group_fd_ >= 0; }

    /** Current values (one group read); hardware fields are zero when
     *  unavailable, task_clock_ns is always live. */
    Values read() const;

    /** BTBSIM_HOST_COUNTERS: unset/non-0 = attempt perf, 0 = off. */
    static bool wantedFromEnv();

  private:
    int group_fd_ = -1; ///< Leader (cycles); -1 when unavailable.
    int fds_[4] = {-1, -1, -1, -1};
};

} // namespace btbsim::obs

#endif // BTBSIM_OBS_HOST_COUNTERS_H
