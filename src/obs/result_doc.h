/**
 * @file
 * Loader for btbsim result JSON shared by tools/btbsim-stats and the
 * tests: accepts schema v1 (PR 1, no profiling data) and v2 (adds the
 * per-run host span table and the top-level "profile" block) through one
 * Document, so `show`/`diff`/`prof` work on both and old result files
 * stay comparable. Version-specific fields simply come back empty for
 * v1 documents.
 */

#ifndef BTBSIM_OBS_RESULT_DOC_H
#define BTBSIM_OBS_RESULT_DOC_H

#include <cstddef>
#include <string>
#include <vector>

#include "obs/sampler.h"
#include "obs/span.h"

namespace btbsim::obs {

struct JsonValue;

/** One entry of the "runs" array, as the tools consume it. */
struct DocRun
{
    std::string config;
    std::string workload;
    double ipc = 0.0;
    double branch_mpki = 0.0;

    /** Interval time series ("samples.points"); empty when absent. */
    std::uint64_t sample_interval = 0;
    std::vector<IntervalSample> samples;

    /** Host span table of this run (schema v2; empty for v1). */
    SpanProfile spans;
    bool counters_available = false;
};

/** A parsed result document (schema v1 or v2). */
struct ResultDoc
{
    int schema_version = 0;
    std::string bench;
    std::vector<DocRun> runs;

    /** Top-level "profile" block (v2); has_profile false for v1. */
    bool has_profile = false;
    ProfileBlock profile;

    /**
     * The complete span tree `btbsim-stats prof` renders: the process
     * profile block when present (it already contains every run's
     * spans), otherwise the runs' host.spans summed. Counter
     * availability is the OR over the profile block and all runs.
     */
    SpanProfile mergedSpans() const;
    bool mergedCountersAvailable() const;
};

/** Parse @p root; @p origin names the source in error messages. Throws
 *  std::runtime_error on malformed documents or unsupported versions. */
ResultDoc parseResultDoc(const JsonValue &root, const std::string &origin);

/** Read and parse @p path (throws std::runtime_error). */
ResultDoc loadResultDoc(const std::string &path);

/**
 * Unicode block-character sparkline of @p v scaled to its own min..max
 * ("▁▂▃▅▇█"); constant series render mid-height. Empty input -> "".
 * @p max_points caps the width by averaging adjacent points.
 */
std::string sparkline(const std::vector<double> &v,
                      std::size_t max_points = 32);

} // namespace btbsim::obs

#endif // BTBSIM_OBS_RESULT_DOC_H
