/**
 * @file
 * Live sweep progress as a JSONL stream. When BTBSIM_PROGRESS_FD (an
 * inherited file descriptor number) or BTBSIM_PROGRESS_FILE (a path,
 * opened append) is set, the experiment engine emits one JSON object per
 * line as the sweep advances, so a supervising process — eventually the
 * btbsim-serve daemon — can render progress without scraping stdout:
 *
 *   {"type":"sweep_start","sweep":"<name>","total":N,
 *    "cache":"<dir or ''>","threads":T}
 *   {"type":"point","sweep":"<name>","done":d,"total":N,"ok":o,
 *    "cached":c,"failed":f,"skipped":s,"elapsed_seconds":e,
 *    "eta_seconds":eta,"config":"...","workload":"...",
 *    "status":"ok|cached|failed|skipped","span":"<current span path>"}
 *   {"type":"sweep_end","sweep":"<name>","total":N,"ok":o,"cached":c,
 *    "failed":f,"skipped":s,"retries":r,"wall_seconds":w}
 *
 * eta_seconds is a simple linear extrapolation over completed points
 * (-1 until one point completes). Records are serialized under a mutex;
 * writes are line-buffered and flushed per record so a reader sees whole
 * lines even when the writer is killed. A dead fd / unwritable file
 * disables the stream silently — progress must never take a sweep down.
 */

#ifndef BTBSIM_OBS_PROGRESS_H
#define BTBSIM_OBS_PROGRESS_H

#include <cstdio>
#include <memory>
#include <mutex>
#include <string>

namespace btbsim::obs {

/** One JSONL progress sink; see file comment for the record schema. */
class ProgressStream
{
  public:
    ~ProgressStream();

    /**
     * BTBSIM_PROGRESS_FD takes precedence over BTBSIM_PROGRESS_FILE;
     * nullptr when neither is set or the sink cannot be opened.
     */
    static std::unique_ptr<ProgressStream> openFromEnv();

    /** Adopt file descriptor @p fd (dup()ed; caller keeps ownership). */
    static std::unique_ptr<ProgressStream> fromFd(int fd);

    /** Append to @p path (created when missing). */
    static std::unique_ptr<ProgressStream> fromFile(const std::string &path);

    /** Write one pre-rendered single-line JSON record (no newline). */
    void emitLine(const std::string &json_line);

  private:
    explicit ProgressStream(std::FILE *f) : f_(f) {}

    std::FILE *f_ = nullptr;
    std::mutex mu_;
};

} // namespace btbsim::obs

#endif // BTBSIM_OBS_PROGRESS_H
