/**
 * @file
 * Interval time-series sampler. Cpu::run() feeds the sampler a cumulative
 * snapshot of its headline counters every time the measurement-relative
 * cycle count crosses an interval boundary (default every 100k cycles,
 * overridable via BTBSIM_SAMPLE_INTERVAL; 0 disables sampling). The
 * sampler differences consecutive snapshots into per-interval rates —
 * IPC, BTB hit rates, misfetch PKI, FTQ occupancy, I$ MPKI — giving each
 * run a within-run time series that the JSON/CSV exporters emit, so phase
 * behaviour (the thing FDIP-style frontends are sensitive to) is visible
 * instead of averaged away.
 */

#ifndef BTBSIM_OBS_SAMPLER_H
#define BTBSIM_OBS_SAMPLER_H

#include <cstdint>
#include <vector>

namespace btbsim::obs {

/** One interval of the time series; rates are over the interval only. */
struct IntervalSample
{
    std::uint64_t cycle = 0;        ///< Measurement-relative end cycle.
    std::uint64_t instructions = 0; ///< Committed in the interval.
    double ipc = 0.0;
    double l1_btb_hitrate = 0.0; ///< Taken branches hitting the L1 BTB.
    double btb_hitrate = 0.0;    ///< Taken branches hitting any level.
    double branch_mpki = 0.0;
    double misfetch_pki = 0.0;
    double ftq_occupancy = 0.0; ///< Mean FTQ entries over the interval.
    double icache_mpki = 0.0;
};

/** Cumulative (measurement-relative) counter snapshot fed by the Cpu. */
struct SampleSnapshot
{
    std::uint64_t cycle = 0;
    std::uint64_t instructions = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t taken_l1_hits = 0;
    std::uint64_t taken_l2_hits = 0;
    std::uint64_t mispredicts = 0;
    std::uint64_t misfetches = 0;
    std::uint64_t icache_misses = 0;
    double ftq_occupancy_sum = 0.0; ///< Sum of per-cycle FTQ size.
};

/** Differences cumulative snapshots into IntervalSample rows. */
class Sampler
{
  public:
    static constexpr std::uint64_t kDefaultIntervalCycles = 100'000;

    /** @p interval_cycles 0 disables the sampler entirely. */
    explicit Sampler(std::uint64_t interval_cycles = kDefaultIntervalCycles)
        : interval_(interval_cycles), next_(interval_cycles)
    {}

    /** BTBSIM_SAMPLE_INTERVAL, or the default when unset/empty. */
    static std::uint64_t intervalFromEnv();

    bool enabled() const { return interval_ > 0; }
    std::uint64_t interval() const { return interval_; }

    /** Has the measurement-relative @p cycle crossed the next boundary? */
    bool due(std::uint64_t cycle) const
    {
        return enabled() && cycle >= next_;
    }

    /**
     * Record the interval ending at @p cum (cumulative values). Rates are
     * derived from the delta against the previous snapshot; the next
     * boundary is re-armed one interval past @p cum.cycle so a stalled
     * pipeline cannot queue up a burst of degenerate samples.
     */
    void sample(const SampleSnapshot &cum);

    const std::vector<IntervalSample> &samples() const { return samples_; }
    std::vector<IntervalSample> take() { return std::move(samples_); }

  private:
    std::uint64_t interval_;
    std::uint64_t next_;
    SampleSnapshot prev_;
    std::vector<IntervalSample> samples_;
};

} // namespace btbsim::obs

#endif // BTBSIM_OBS_SAMPLER_H
