#include "obs/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace btbsim::obs {

// ---------------------------------------------------------------- writer --

void
JsonWriter::indent()
{
    os_ << '\n';
    for (std::size_t i = 0; i < stack_.size(); ++i)
        os_ << "  ";
}

void
JsonWriter::beforeValue()
{
    if (after_key_) {
        after_key_ = false;
        return;
    }
    if (stack_.empty())
        return;
    Frame &f = stack_.back();
    if (!f.first)
        os_ << ',';
    f.first = false;
    indent();
}

void
JsonWriter::beginObject()
{
    beforeValue();
    os_ << '{';
    stack_.push_back({true, true});
}

void
JsonWriter::endObject()
{
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << '}';
}

void
JsonWriter::beginArray()
{
    beforeValue();
    os_ << '[';
    stack_.push_back({false, true});
}

void
JsonWriter::endArray()
{
    const bool empty = stack_.back().first;
    stack_.pop_back();
    if (!empty)
        indent();
    os_ << ']';
}

void
JsonWriter::key(std::string_view k)
{
    Frame &f = stack_.back();
    if (!f.first)
        os_ << ',';
    f.first = false;
    indent();
    os_ << '"';
    escape(os_, k);
    os_ << "\": ";
    after_key_ = true;
}

void
JsonWriter::value(std::string_view v)
{
    beforeValue();
    os_ << '"';
    escape(os_, v);
    os_ << '"';
}

void
JsonWriter::value(double v)
{
    beforeValue();
    if (!std::isfinite(v)) {
        // JSON has no Inf/NaN; emit null so files stay parseable.
        os_ << "null";
        return;
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    os_ << buf;
}

void
JsonWriter::value(std::uint64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(std::int64_t v)
{
    beforeValue();
    os_ << v;
}

void
JsonWriter::value(bool v)
{
    beforeValue();
    os_ << (v ? "true" : "false");
}

void
JsonWriter::valueNull()
{
    beforeValue();
    os_ << "null";
}

void
JsonWriter::escape(std::ostream &os, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"':
            os << "\\\"";
            break;
          case '\\':
            os << "\\\\";
            break;
          case '\n':
            os << "\\n";
            break;
          case '\r':
            os << "\\r";
            break;
          case '\t':
            os << "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                os << buf;
            } else {
                os << c;
            }
        }
    }
}

// ----------------------------------------------------------------- value --

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (type != Type::kObject)
        return nullptr;
    for (const auto &[k, v] : object)
        if (k == key)
            return &v;
    return nullptr;
}

const JsonValue &
JsonValue::at(std::string_view key) const
{
    if (const JsonValue *v = find(key))
        return *v;
    throw std::runtime_error("json: missing key '" + std::string(key) + "'");
}

double
JsonValue::asNumber() const
{
    if (type != Type::kNumber)
        throw std::runtime_error("json: value is not a number");
    return number;
}

const std::string &
JsonValue::asString() const
{
    if (type != Type::kString)
        throw std::runtime_error("json: value is not a string");
    return str;
}

// ---------------------------------------------------------------- parser --

namespace {

class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    JsonValue
    parse()
    {
        JsonValue v = parseValue();
        skipWs();
        if (pos_ != text_.size())
            fail("trailing characters");
        return v;
    }

  private:
    std::string_view text_;
    std::size_t pos_ = 0;

    [[noreturn]] void
    fail(const std::string &msg) const
    {
        throw std::runtime_error("json parse error at offset " +
                                 std::to_string(pos_) + ": " + msg);
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek()
    {
        if (pos_ >= text_.size())
            fail("unexpected end of input");
        return text_[pos_];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos_;
    }

    bool
    consumeLiteral(std::string_view lit)
    {
        if (text_.substr(pos_, lit.size()) != lit)
            return false;
        pos_ += lit.size();
        return true;
    }

    JsonValue
    parseValue()
    {
        skipWs();
        switch (peek()) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"': {
            JsonValue v;
            v.type = JsonValue::Type::kString;
            v.str = parseString();
            return v;
          }
          case 't':
          case 'f': {
            JsonValue v;
            v.type = JsonValue::Type::kBool;
            if (consumeLiteral("true"))
                v.boolean = true;
            else if (consumeLiteral("false"))
                v.boolean = false;
            else
                fail("bad literal");
            return v;
          }
          case 'n':
            if (!consumeLiteral("null"))
                fail("bad literal");
            return {};
          default:
            return parseNumber();
        }
    }

    JsonValue
    parseObject()
    {
        expect('{');
        JsonValue v;
        v.type = JsonValue::Type::kObject;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return v;
        }
        for (;;) {
            skipWs();
            std::string key = parseString();
            skipWs();
            expect(':');
            v.object.emplace_back(std::move(key), parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect('}');
            return v;
        }
    }

    JsonValue
    parseArray()
    {
        expect('[');
        JsonValue v;
        v.type = JsonValue::Type::kArray;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return v;
        }
        for (;;) {
            v.array.push_back(parseValue());
            skipWs();
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            expect(']');
            return v;
        }
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= text_.size())
                fail("unterminated string");
            char c = text_[pos_++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                fail("unterminated escape");
            char e = text_[pos_++];
            switch (e) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    fail("bad \\u escape");
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad hex digit in \\u escape");
                }
                // Encode the code point as UTF-8 (BMP only; surrogate
                // pairs in stat names do not occur).
                if (cp < 0x80) {
                    out += static_cast<char>(cp);
                } else if (cp < 0x800) {
                    out += static_cast<char>(0xC0 | (cp >> 6));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (cp >> 12));
                    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (cp & 0x3F));
                }
                break;
              }
              default:
                fail("bad escape character");
            }
        }
    }

    JsonValue
    parseNumber()
    {
        const std::size_t start = pos_;
        if (peek() == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            fail("expected a value");
        JsonValue v;
        v.type = JsonValue::Type::kNumber;
        const std::string_view s = text_.substr(start, pos_ - start);
        const auto res =
            std::from_chars(s.data(), s.data() + s.size(), v.number);
        if (res.ec != std::errc() || res.ptr != s.data() + s.size())
            fail("malformed number");
        return v;
    }
};

} // namespace

JsonValue
parseJson(std::string_view text)
{
    return Parser(text).parse();
}

} // namespace btbsim::obs
