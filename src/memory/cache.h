/**
 * @file
 * Latency-propagating set-associative cache model with MSHRs.
 *
 * The model is functional-with-latency: an access returns the absolute
 * cycle at which the line's data is available to the requester. Lines in
 * flight are represented by tags whose ready cycle lies in the future, so
 * secondary misses merge naturally (MSHR behaviour). Hit latencies are
 * cumulative load-to-use values as given in Table 1.
 */

#ifndef BTBSIM_MEMORY_CACHE_H
#define BTBSIM_MEMORY_CACHE_H

#include <string>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "core/soa_table.h"

namespace btbsim {

/** Fixed-latency, channel-limited DRAM model (Table 1: quad channel). */
class Dram
{
  public:
    explicit Dram(unsigned channels = 4, unsigned latency = 120,
                  unsigned occupancy = 8)
        : latency_(latency), occupancy_(occupancy), channel_free_(channels, 0)
    {}

    /** Access starting at @p now; returns the absolute completion cycle. */
    Cycle
    access(Addr line, Cycle now)
    {
        auto &ch = channel_free_[(line >> 6) % channel_free_.size()];
        const Cycle start = std::max(now, ch);
        ch = start + occupancy_;
        ++accesses_;
        return start + latency_;
    }

    std::uint64_t accesses() const { return accesses_; }

  private:
    unsigned latency_;
    unsigned occupancy_;
    std::vector<Cycle> channel_free_;
    std::uint64_t accesses_ = 0;
};

/** Static configuration of one cache level. */
struct CacheConfig
{
    std::string name = "cache";
    unsigned sets = 64;
    unsigned ways = 8;
    unsigned latency = 3;   ///< Cumulative load-to-use on hit.
    unsigned mshrs = 16;
    bool next_line_prefetch = false;

    bool operator==(const CacheConfig &) const = default;
};

/**
 * One cache level. Misses forward to @c next or, at the last level, to
 * DRAM. Fills are inclusive along the path back.
 */
class Cache
{
  public:
    Cache(const CacheConfig &cfg, Cache *next, Dram *dram);

    /**
     * Demand access to the 64B line containing @p addr, issued at @p now.
     * @return absolute cycle at which data is available.
     */
    Cycle access(Addr addr, Cycle now) { return accessLine(lineOf(addr), now, false); }

    /** Prefetch into this level (no latency returned to a consumer). */
    void prefetch(Addr addr, Cycle now) { accessLine(lineOf(addr), now, true); }

    /** True if the line is present (possibly still in flight). */
    bool contains(Addr addr) const { return peekFind(tags_, lineOf(addr)) != nullptr; }

    const CacheConfig &config() const { return cfg_; }

    std::uint64_t demandAccesses() const { return demand_accesses_; }
    std::uint64_t demandMisses() const { return demand_misses_; }

    StatSet stats;

  private:
    struct Line
    {
        Cycle ready = 0;
    };

    static Addr lineOf(Addr addr) { return alignDown(addr, kLineBytes); }

    Cycle accessLine(Addr line, Cycle now, bool is_prefetch);

    CacheConfig cfg_;
    Cache *next_;
    Dram *dram_;
    SoaSetTable<Line> tags_;
    std::vector<Cycle> mshr_free_;

    std::uint64_t demand_accesses_ = 0;
    std::uint64_t demand_misses_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_MEMORY_CACHE_H
