/**
 * @file
 * IP-stride prefetcher used at the L1D (Table 1).
 */

#ifndef BTBSIM_MEMORY_PREFETCHER_H
#define BTBSIM_MEMORY_PREFETCHER_H

#include <cstdint>

#include "common/types.h"
#include "core/soa_table.h"

namespace btbsim {

class Cache;

/**
 * Classic per-PC stride detector: after two consecutive accesses from the
 * same load PC with the same stride, prefetches @c degree strides ahead.
 */
class IpStridePrefetcher
{
  public:
    explicit IpStridePrefetcher(unsigned entries = 256, unsigned degree = 2)
        : table_(entries / 4, 4, 2), degree_(degree)
    {}

    /** Observe a demand load and issue prefetches into @p cache. */
    void observe(Addr pc, Addr addr, Cycle now, Cache &cache);

    std::uint64_t issued() const { return issued_; }

  private:
    struct State
    {
        Addr last_addr = 0;
        std::int64_t stride = 0;
        std::uint8_t confidence = 0;
    };

    SoaSetTable<State> table_;
    unsigned degree_;
    std::uint64_t issued_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_MEMORY_PREFETCHER_H
