#include "memory/prefetcher.h"

#include "memory/cache.h"

namespace btbsim {

void
IpStridePrefetcher::observe(Addr pc, Addr addr, Cycle now, Cache &cache)
{
    // One probe covers both outcomes; nothing between the probe and
    // the fill touches this table.
    auto set = table_.set(pc);
    const int w = set.probe(pc);
    if (w < 0) {
        State &fresh = set.fill(static_cast<unsigned>(set.victim()), pc);
        fresh.last_addr = addr;
        return;
    }
    set.touch(static_cast<unsigned>(w));
    State *s = &set.entry(static_cast<unsigned>(w));

    const std::int64_t stride =
        static_cast<std::int64_t>(addr) -
        static_cast<std::int64_t>(s->last_addr);
    if (stride != 0 && stride == s->stride) {
        if (s->confidence < 3)
            ++s->confidence;
    } else {
        s->confidence = s->confidence > 0 ? s->confidence - 1 : 0;
        s->stride = stride;
    }
    s->last_addr = addr;

    if (s->confidence >= 2 && s->stride != 0) {
        for (unsigned d = 1; d <= degree_; ++d) {
            const Addr target =
                addr + static_cast<Addr>(s->stride * static_cast<std::int64_t>(d));
            cache.prefetch(target, now);
            ++issued_;
        }
    }
}

} // namespace btbsim
