/**
 * @file
 * Two-level TLB model (ITLB / DTLB backed by a shared L2 TLB).
 */

#ifndef BTBSIM_MEMORY_TLB_H
#define BTBSIM_MEMORY_TLB_H

#include "common/stats.h"
#include "common/types.h"
#include "core/soa_table.h"

namespace btbsim {

inline constexpr Addr kPageBytes = 4096;

/** Shared second-level TLB; misses cost a fixed page-walk latency. */
class L2Tlb
{
  public:
    L2Tlb(unsigned sets = 128, unsigned ways = 12, unsigned latency = 8,
          unsigned walk_latency = 40)
        : tags_(sets, ways, log2i(kPageBytes)), latency_(latency),
          walk_latency_(walk_latency)
    {}

    /** @return extra cycles beyond the L1 TLB latency. */
    unsigned
    access(Addr addr)
    {
        const Addr page = alignDown(addr, kPageBytes);
        ++accesses_;
        auto set = tags_.set(page);
        const int w = set.probe(page);
        if (w >= 0) {
            set.touch(static_cast<unsigned>(w));
            return latency_;
        }
        ++misses_;
        set.fill(static_cast<unsigned>(set.victim()), page);
        return latency_ + walk_latency_;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Empty {};
    SoaSetTable<Empty> tags_;
    unsigned latency_;
    unsigned walk_latency_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

/** First-level TLB (ITLB or DTLB). */
class Tlb
{
  public:
    Tlb(L2Tlb &l2, unsigned sets = 32, unsigned ways = 4,
        unsigned latency = 1)
        : l2_(&l2), tags_(sets, ways, log2i(kPageBytes)), latency_(latency)
    {}

    /** @return translation latency in cycles (hit: @c latency). */
    unsigned
    access(Addr addr)
    {
        const Addr page = alignDown(addr, kPageBytes);
        ++accesses_;
        auto set = tags_.set(page);
        const int w = set.probe(page);
        if (w >= 0) {
            set.touch(static_cast<unsigned>(w));
            return latency_;
        }
        ++misses_;
        const unsigned extra = l2_->access(addr);
        set.fill(static_cast<unsigned>(set.victim()), page);
        return latency_ + extra;
    }

    std::uint64_t accesses() const { return accesses_; }
    std::uint64_t misses() const { return misses_; }

  private:
    struct Empty {};
    L2Tlb *l2_;
    SoaSetTable<Empty> tags_;
    unsigned latency_;
    std::uint64_t accesses_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_MEMORY_TLB_H
