#include "memory/cache.h"

#include <algorithm>

namespace btbsim {

Cache::Cache(const CacheConfig &cfg, Cache *next, Dram *dram)
    : cfg_(cfg), next_(next), dram_(dram),
      tags_(cfg.sets, cfg.ways, log2i(kLineBytes)),
      mshr_free_(cfg.mshrs, 0)
{}

Cycle
Cache::accessLine(Addr line, Cycle now, bool is_prefetch)
{
    if (!is_prefetch) {
        ++demand_accesses_;
    } else {
        ++stats["prefetches"];
    }

    // One probe serves both outcomes: the set handle carries the hit way
    // on a hit and the victim choice on a miss. Nothing between the
    // probe and the fill re-enters this cache (the recursion below goes
    // to the *next* level), so the set state cannot change in between.
    auto set = tags_.set(line);
    const int w = set.probe(line);
    if (w >= 0) {
        // Hit, possibly on a line still in flight (MSHR merge).
        set.touch(static_cast<unsigned>(w));
        Line &l = set.entry(static_cast<unsigned>(w));
        const Cycle available = std::max(now + cfg_.latency, l.ready);
        if (l.ready > now)
            ++stats["mshr_merges"];
        return available;
    }

    if (!is_prefetch)
        ++demand_misses_;

    auto mshr = std::min_element(mshr_free_.begin(), mshr_free_.end());
    if (*mshr > now)
        ++stats["mshr_full_stalls"];
    const Cycle start = std::max(now, *mshr);
    Cycle done;
    if (next_) {
        done = next_->accessLine(line, start, is_prefetch);
    } else {
        done = dram_->access(line, start);
    }

    Line &l = set.fill(static_cast<unsigned>(set.victim()), line);
    l.ready = done;

    // Charge the MSHR until the fill returns (the element picked above
    // is still the minimum: only other cache objects ran in between).
    *mshr = done;

    if (cfg_.next_line_prefetch && !is_prefetch)
        accessLine(line + kLineBytes, now, true);

    return done;
}

} // namespace btbsim
