#include "memory/cache.h"

#include <algorithm>

namespace btbsim {

Cache::Cache(const CacheConfig &cfg, Cache *next, Dram *dram)
    : cfg_(cfg), next_(next), dram_(dram),
      tags_(cfg.sets, cfg.ways, log2i(kLineBytes)),
      mshr_free_(cfg.mshrs, 0)
{}

Cycle
Cache::allocMshr(Cycle now)
{
    auto it = std::min_element(mshr_free_.begin(), mshr_free_.end());
    if (*it > now)
        ++stats["mshr_full_stalls"];
    const Cycle start = std::max(now, *it);
    return start;
}

Cycle
Cache::accessLine(Addr line, Cycle now, bool is_prefetch)
{
    if (!is_prefetch) {
        ++demand_accesses_;
    } else {
        ++stats["prefetches"];
    }

    if (Line *l = tags_.find(line)) {
        // Hit, possibly on a line still in flight (MSHR merge).
        const Cycle available = std::max(now + cfg_.latency, l->ready);
        if (l->ready > now)
            ++stats["mshr_merges"];
        return available;
    }

    if (!is_prefetch)
        ++demand_misses_;

    const Cycle start = allocMshr(now);
    Cycle done;
    if (next_) {
        done = next_->accessLine(line, start, is_prefetch);
    } else {
        done = dram_->access(line, start);
    }

    Line &l = tags_.insert(line);
    l.ready = done;

    // Charge an MSHR until the fill returns.
    *std::min_element(mshr_free_.begin(), mshr_free_.end()) = done;

    if (cfg_.next_line_prefetch && !is_prefetch)
        accessLine(line + kLineBytes, now, true);

    return done;
}

} // namespace btbsim
