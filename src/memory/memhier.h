/**
 * @file
 * The full memory hierarchy of Table 1, wired together.
 */

#ifndef BTBSIM_MEMORY_MEMHIER_H
#define BTBSIM_MEMORY_MEMHIER_H

#include <memory>

#include "memory/cache.h"
#include "memory/prefetcher.h"
#include "memory/tlb.h"

namespace btbsim {

/** Memory system configuration (Table 1 defaults). */
struct MemConfig
{
    CacheConfig l1i{"L1I", 64, 8, 3, 16, false};
    CacheConfig l1d{"L1D", 64, 12, 5, 16, false};
    CacheConfig l2{"L2", 1024, 8, 15, 32, true}; ///< Next-line prefetcher.
    CacheConfig llc{"LLC", 2048, 16, 35, 64, false};
    unsigned dram_latency = 120;
    unsigned icache_interleaves = 8;

    bool operator==(const MemConfig &) const = default;
};

/**
 * Instruction and data paths sharing an L2/LLC/DRAM backend, with the
 * IP-stride prefetcher on the data side (Table 1).
 */
class MemHier
{
  public:
    explicit MemHier(const MemConfig &cfg = {})
        : cfg_(cfg), dram_(4, cfg.dram_latency),
          llc_(cfg.llc, nullptr, &dram_), l2_(cfg.l2, &llc_, nullptr),
          l1i_(cfg.l1i, &l2_, nullptr), l1d_(cfg.l1d, &l2_, nullptr),
          itlb_(l2tlb_), dtlb_(l2tlb_)
    {}

    /** Instruction fetch of the line containing @p pc. Includes ITLB. */
    Cycle
    fetchLine(Addr pc, Cycle now)
    {
        const unsigned tlb_lat = itlb_.access(pc);
        return l1i_.access(pc, now + (tlb_lat - 1));
    }

    /** Data load at @p addr from load @p pc. Includes DTLB + prefetcher. */
    Cycle
    load(Addr pc, Addr addr, Cycle now)
    {
        const unsigned tlb_lat = dtlb_.access(addr);
        const Cycle done = l1d_.access(addr, now + (tlb_lat - 1));
        stride_pf_.observe(pc, addr, now, l1d_);
        return done;
    }

    /** Data store at @p addr (allocate-on-write; latency not consumed). */
    void
    store(Addr addr, Cycle now)
    {
        dtlb_.access(addr);
        l1d_.access(addr, now);
    }

    /** I-cache set interleave of the line containing @p pc. */
    unsigned
    icacheInterleave(Addr pc) const
    {
        return static_cast<unsigned>((pc / kLineBytes) %
                                     cfg_.icache_interleaves);
    }

    Cache &l1i() { return l1i_; }
    Cache &l1d() { return l1d_; }
    Cache &l2() { return l2_; }
    Cache &llc() { return llc_; }
    const Cache &l1i() const { return l1i_; }
    Dram &dram() { return dram_; }
    Tlb &itlb() { return itlb_; }

  private:
    MemConfig cfg_;
    Dram dram_;
    Cache llc_;
    Cache l2_;
    Cache l1i_;
    Cache l1d_;
    L2Tlb l2tlb_;
    Tlb itlb_;
    Tlb dtlb_;
    IpStridePrefetcher stride_pf_;
};

} // namespace btbsim

#endif // BTBSIM_MEMORY_MEMHIER_H
