/**
 * @file
 * Differential checking decorator for BTB organizations.
 *
 * CheckedBtb wraps a real organization and validates every
 * PredictionBundle it produces against two kinds of evidence:
 *
 *  - Structural invariants of the bundle protocol and of each
 *    organization's window shape (segment geometry, slot ordering and
 *    alignment, always-taken blocks ending at the branch, MB-BTB chain
 *    seams summing to the entry reach, follow-slot seam consistency).
 *
 *  - Functional reference models (branch_history.h, reference.h): every
 *    exposed slot value must have been trained; I-BTB and R-BTB slots
 *    must carry the *latest* trained value (their updates write through
 *    to every live copy); and in eviction-free regimes the I-BTB and
 *    R-BTB must expose everything they were trained with.
 *
 * For the I-BTB it additionally cross-checks the ShadowL1 deferred-fill
 * overlay: a probed slot's recorded supply level must match the real
 * hierarchy before endAccess() commits, and the entry must be
 * L1-resident afterwards (restricted to slots whose L1 set is not
 * shared with another probed slot, where the outcome is
 * order-independent, and to accesses with no interleaved prefill).
 *
 * On divergence the checker dumps full context (organization, cycle,
 * access pc, bundle contents, recent pipeline events) and either aborts
 * (the BTBSIM_CHECK=1 mode wired through Cpu) or throws CheckFailure
 * (the fuzzer's mode, so failures can be shrunk).
 *
 * The checker is an opt-in debugging tool: it assumes the stock
 * organization semantics, so wrapping a user-supplied custom BtbOrg may
 * report divergences that are simply different design decisions.
 */

#ifndef BTBSIM_CHECK_CHECKER_H
#define BTBSIM_CHECK_CHECKER_H

#include <cstdint>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>

#include "check/branch_history.h"
#include "check/reference.h"
#include "core/btb_org.h"

namespace btbsim::obs {
class Tracer;
}

namespace btbsim::check {

/** Thrown (in non-aborting mode) when a check fails; what() carries the
 *  full context report. */
class CheckFailure : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

class CheckedBtb final : public BtbOrg
{
  public:
    /** Wrap @p inner (not owned; must outlive the wrapper). */
    explicit CheckedBtb(BtbOrg &inner, bool abort_on_failure = true);

    /** Checker for @p inner when BTBSIM_CHECK is set, else null. */
    static std::unique_ptr<CheckedBtb> wrapFromEnv(BtbOrg &inner);

    /** Pipeline event tracer to dump on failure (may be null). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }
    /** Current cycle, for failure reports. */
    void setNow(Cycle now) { now_ = now; }

    std::uint64_t accessesChecked() const { return accesses_; }

    // ---- BtbOrg (validating forwarders) -----------------------------------
    int beginAccess(Addr pc, PredictionBundle &b) override;
    bool chainAccess(Addr pc, Addr target, PredictionBundle &b) override;
    void endAccess(PredictionBundle &b) override;
    void update(const Instruction &br, bool resteer) override;
    void prefill(const Instruction &br) override;
    OccupancySample sampleOccupancy() const override
    {
        return inner_.sampleOccupancy();
    }
    const BtbConfig &config() const override { return inner_.config(); }
    int peekLevel(Addr key) const override { return inner_.peekLevel(key); }

  private:
    void trainTaken(const Instruction &br);
    void validateBundle(const PredictionBundle &b, bool chained);
    [[noreturn]] void fail(const PredictionBundle *b, const std::string &msg);

    BtbOrg &inner_;
    bool abort_;
    BranchHistory history_;
    std::optional<RefIbtb> ref_ibtb_;
    std::optional<RefRbtb> ref_rbtb_;

    obs::Tracer *tracer_ = nullptr;
    Cycle now_ = 0;
    std::uint64_t accesses_ = 0;
    Addr access_pc_ = 0;
    /** Table mutated (update/prefill) since the last bundle fill: the
     *  residency cross-check is only sound when this is false. */
    bool access_dirty_ = false;
};

} // namespace btbsim::check

#endif // BTBSIM_CHECK_CHECKER_H
