/**
 * @file
 * Compile-time fault-injection points for checker validation.
 *
 * A fault point is a named statement compiled into an organization's
 * update path only when the build is configured with
 * -DBTBSIM_FAULT_POINTS=ON, and executed only when BTBSIM_FAULT names
 * it. The mutation-smoke CI job arms one point at a time and asserts
 * the differential checker catches the corruption with a shrunk repro;
 * production builds compile the macro away entirely.
 */

#ifndef BTBSIM_CHECK_FAULT_H
#define BTBSIM_CHECK_FAULT_H

namespace btbsim::check {

/** True when BTBSIM_FAULT currently names @p point (re-read per call so
 *  a validation process can arm points in turn). */
bool faultArmed(const char *point);

} // namespace btbsim::check

#ifdef BTBSIM_FAULT_POINTS
#define BTBSIM_FAULT_POINT(point, stmt)                                       \
    do {                                                                      \
        if (::btbsim::check::faultArmed(point)) {                             \
            stmt;                                                             \
        }                                                                     \
    } while (0)
#else
#define BTBSIM_FAULT_POINT(point, stmt)                                       \
    do {                                                                      \
    } while (0)
#endif

#endif // BTBSIM_CHECK_FAULT_H
