#include "check/fuzz.h"

#include <algorithm>
#include <cstddef>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/checker.h"
#include "core/btb_org.h"
#include "exp/config_json.h"
#include "obs/json.h"
#include "trace/generator.h"
#include "trace/synthetic_trace.h"
#include "traceio/trace_reader.h"
#include "traceio/trace_writer.h"

namespace btbsim::check {

namespace {

/** xorshift64*: tiny, seedable, and not shared with the simulator's own
 *  Rng so fuzzing choices never perturb simulation determinism. */
struct FuzzRng
{
    std::uint64_t s;

    explicit FuzzRng(std::uint64_t seed)
        : s(seed ? seed : 0x9e3779b97f4a7c15ull)
    {}

    std::uint64_t
    next()
    {
        s ^= s >> 12;
        s ^= s << 25;
        s ^= s >> 27;
        return s * 0x2545f4914f6cdd1dull;
    }

    std::uint64_t below(std::uint64_t n) { return next() % n; }
    bool chance(unsigned pct) { return below(100) < pct; }
};

/** Random configuration biased toward tiny geometries: a handful of sets
 *  and ways means constant evictions, displacements and L2 fills, which
 *  is where the interesting bookkeeping lives. */
BtbConfig
randomConfig(FuzzRng &rng)
{
    BtbConfig b;
    switch (rng.below(5)) {
    case 0: b.kind = BtbKind::kInstruction; break;
    case 1: b.kind = BtbKind::kRegion; break;
    case 2: b.kind = BtbKind::kBlock; break;
    case 3: b.kind = BtbKind::kMultiBlock; break;
    default: b.kind = BtbKind::kHetero; break;
    }

    b.branch_slots = 1 + static_cast<unsigned>(rng.below(4));
    b.width = 4 * (1 + static_cast<unsigned>(rng.below(4)));
    b.skip_taken = b.kind == BtbKind::kInstruction && rng.chance(40);
    b.region_bytes = 32u << rng.below(3);
    b.dual_region = rng.chance(40);
    b.reach_instrs = 8u << rng.below(3);
    b.split = rng.chance(50);
    b.cond_ends_block = rng.chance(25);
    static constexpr PullPolicy kPulls[] = {
        PullPolicy::kNone,
        PullPolicy::kUncondDir,
        PullPolicy::kCallDir,
        PullPolicy::kAllBr,
    };
    b.pull = kPulls[rng.below(4)];
    b.stability_threshold = 1 + static_cast<unsigned>(rng.below(8));
    b.allow_last_slot_pull = rng.chance(25);

    b.l1.sets = 1u << rng.below(5);
    b.l1.ways = 1u << rng.below(3);
    b.l2.sets = 1u << (1 + rng.below(5));
    b.l2.ways = 1 + static_cast<unsigned>(rng.below(4));
    b.ideal = rng.chance(12);
    b.l2_penalty = static_cast<unsigned>(rng.below(4));
    return b;
}

} // namespace

FuzzCase
randomCase(std::uint64_t seed, std::uint64_t trace_insts)
{
    FuzzRng rng(seed * 0x9e3779b97f4a7c15ull + 0x6c62272e07bb0142ull);

    FuzzCase c;
    c.seed = seed;
    c.name = "fuzz-" + std::to_string(seed);
    c.btb = randomConfig(rng);

    GenParams gp;
    gp.seed = rng.next() | 1;
    // Small footprint: enough static branches to oversubscribe the tiny
    // tables above many times over, small enough to revisit PCs often.
    gp.target_static_insts = 1024u << rng.below(3);
    gp.num_handlers = 2 + static_cast<std::uint32_t>(rng.below(5));
    auto prog = std::make_shared<Program>(generateProgram(gp));

    SyntheticTrace trace(*prog, rng.next() | 1, c.name);
    c.insts.reserve(trace_insts);
    for (std::uint64_t i = 0; i < trace_insts; ++i)
        c.insts.push_back(trace.next());
    c.program = std::move(prog);
    return c;
}

std::optional<FuzzFailure>
runCase(const FuzzCase &c)
{
    auto org = makeBtb(c.btb);
    CheckedBtb checker(*org, /*abort_on_failure=*/false);

    std::size_t i = 0;
    try {
        PredictionBundle b;
        bool open = false;
        Addr next_pc = 0;
        // Updates are deferred to the end of the access, as the pipeline
        // delays them past the in-flight bundle (and the residency
        // cross-check assumes mid-access probes see an unmutated table
        // unless marked dirty).
        std::vector<std::pair<Instruction, bool>> deferred;

        const auto closeAccess = [&] {
            if (!open)
                return;
            b.finish(checker);
            open = false;
            for (const auto &[br, resteer] : deferred)
                checker.update(br, resteer);
            deferred.clear();
        };

        while (i < c.insts.size()) {
            const Instruction &in = c.insts[i];

            // A PC discontinuity (spliced shrink candidate, or a resteer
            // we signalled last iteration) starts a fresh access — this
            // is what makes every subsequence of the stream a valid
            // input, so shrinking needs no control-flow repair.
            if (open && in.pc != next_pc)
                closeAccess();

            bool fresh = false;
            if (!open) {
                b = PredictionBundle{};
                checker.beginAccess(in.pc, b);
                open = true;
                fresh = true;
            }

            StepView v = b.probe(in.pc);
            if (v.kind == StepView::Kind::kEndOfWindow) {
                closeAccess();
                if (!fresh)
                    continue; // Retry this PC on a fresh access.
                // A fresh access refusing its own start PC (probe budget
                // exhausted never applies here, but an empty window can):
                // consume the instruction unpredicted to guarantee
                // progress.
                ++i;
                next_pc = in.next_pc;
                continue;
            }

            bool end_access = false;
            if (in.isBranch()) {
                bool resteer = false;
                if (v.kind == StepView::Kind::kBranch) {
                    if (in.taken) {
                        if (v.target != in.takenTarget()) {
                            // Stale target: the frontend would misfetch.
                            resteer = true;
                            end_access = true;
                        } else if (v.follow) {
                            if (!b.chain(checker, in.pc, in.takenTarget()))
                                end_access = true;
                        } else {
                            end_access = true;
                        }
                    } else if (v.end_on_not_taken) {
                        end_access = true;
                    }
                } else if (in.taken) {
                    // Taken branch the BTB did not track: misfetch.
                    resteer = true;
                    end_access = true;
                }
                deferred.emplace_back(in, resteer);
            }

            ++i;
            next_pc = in.next_pc;
            if (end_access)
                closeAccess();
        }
        closeAccess();
    } catch (const CheckFailure &e) {
        std::size_t at = c.insts.empty() ? 0 : std::min(i, c.insts.size() - 1);
        return FuzzFailure{at, e.what()};
    }
    return std::nullopt;
}

namespace {

/** Truncate @p c right after its failure index: nothing past it can
 *  matter (the walk is strictly sequential). */
void
truncateAtFailure(FuzzCase &c, const FuzzFailure &f)
{
    if (f.index + 1 < c.insts.size())
        c.insts.resize(f.index + 1);
}

/** Re-run @p c with @p candidate as its stream; on failure adopt the
 *  candidate (and the possibly different failure) and return true. */
bool
tryStream(FuzzCase &c, std::vector<Instruction> candidate, FuzzFailure &fail)
{
    FuzzCase t = c;
    t.insts = std::move(candidate);
    if (auto f = runCase(t)) {
        c.insts = std::move(t.insts);
        fail = *f;
        truncateAtFailure(c, fail);
        return true;
    }
    return false;
}

} // namespace

ShrinkResult
shrinkCase(const FuzzCase &c, const FuzzFailure &failure)
{
    ShrinkResult r;
    r.reduced = c;
    r.failure = failure;
    truncateAtFailure(r.reduced, r.failure);

    bool changed = true;
    while (changed && r.rounds < 32) {
        ++r.rounds;
        changed = false;

        // ddmin over the instruction stream: delete chunks, halving the
        // granularity down to single instructions.
        for (std::size_t gran =
                 std::max<std::size_t>(1, r.reduced.insts.size() / 2);
             ;) {
            for (std::size_t at = 0;
                 at + gran <= r.reduced.insts.size() &&
                 r.reduced.insts.size() > 1;) {
                std::vector<Instruction> cand;
                cand.reserve(r.reduced.insts.size() - gran);
                cand.insert(cand.end(), r.reduced.insts.begin(),
                            r.reduced.insts.begin() +
                                static_cast<std::ptrdiff_t>(at));
                cand.insert(cand.end(),
                            r.reduced.insts.begin() +
                                static_cast<std::ptrdiff_t>(at + gran),
                            r.reduced.insts.end());
                if (tryStream(r.reduced, std::move(cand), r.failure)) {
                    // The chunk was irrelevant; the same position now
                    // holds fresh content, so do not advance.
                    changed = true;
                } else {
                    at += gran;
                }
            }
            if (gran == 1)
                break;
            gran = std::max<std::size_t>(1, gran / 2);
        }

        // Configuration simplification: each knob reverts to its most
        // boring value if the failure survives.
        const auto trySimplify = [&](auto &&mutate) {
            FuzzCase t = r.reduced;
            mutate(t.btb);
            if (t.btb == r.reduced.btb)
                return;
            if (auto f = runCase(t)) {
                r.reduced.btb = t.btb;
                r.failure = *f;
                truncateAtFailure(r.reduced, r.failure);
                changed = true;
            }
        };
        trySimplify([](BtbConfig &b) { b.dual_region = false; });
        trySimplify([](BtbConfig &b) { b.skip_taken = false; });
        trySimplify([](BtbConfig &b) { b.split = false; });
        trySimplify([](BtbConfig &b) { b.cond_ends_block = false; });
        trySimplify([](BtbConfig &b) { b.allow_last_slot_pull = false; });
        trySimplify([](BtbConfig &b) { b.pull = PullPolicy::kNone; });
        trySimplify([](BtbConfig &b) { b.ideal = false; });
        trySimplify([](BtbConfig &b) { b.l2_penalty = 0; });
        trySimplify([](BtbConfig &b) { b.width = 4; });
        trySimplify([](BtbConfig &b) { b.branch_slots = 1; });
        trySimplify([](BtbConfig &b) { b.reach_instrs = 8; });
    }
    return r;
}

std::string
reproConfigPath(const std::string &trace_path)
{
    return trace_path + ".json";
}

void
writeRepro(const FuzzCase &c, const std::string &trace_path)
{
    {
        traceio::TraceWriter w(trace_path, c.name, c.program.get());
        for (const Instruction &in : c.insts)
            w.append(in);
        // TraceReplaySource rewrites the recording's final instruction
        // into a jump to the head unless it already is one (its wrap
        // seam). Append a sentinel that satisfies the seam so the real
        // stream survives the round trip untouched; loadRepro drops it.
        if (!c.insts.empty()) {
            Instruction seam;
            seam.pc = c.insts.back().next_pc;
            seam.next_pc = c.insts.front().pc;
            seam.cls = InstClass::kBranch;
            seam.branch = BranchClass::kUncondDirect;
            seam.taken = true;
            w.append(seam);
        }
        w.finish();
    }
    const std::string cfg_path = reproConfigPath(trace_path);
    std::ofstream os(cfg_path);
    if (!os)
        throw std::runtime_error("cannot write " + cfg_path);
    obs::JsonWriter jw(os);
    exp::writeBtbConfigJson(jw, c.btb);
    os << "\n";
    if (!os)
        throw std::runtime_error("write failed: " + cfg_path);
}

FuzzCase
loadRepro(const std::string &trace_path)
{
    FuzzCase c;

    const std::string cfg_path = reproConfigPath(trace_path);
    std::ifstream is(cfg_path);
    if (!is)
        throw std::runtime_error("missing repro config " + cfg_path);
    std::ostringstream ss;
    ss << is.rdbuf();
    c.btb = exp::btbConfigFromJson(obs::parseJson(ss.str()));

    traceio::TraceReplaySource src(trace_path);
    const std::uint64_t n = src.instructionCount();
    if (n < 2)
        throw std::runtime_error("empty repro trace " + trace_path);
    c.insts.reserve(static_cast<std::size_t>(n - 1));
    for (std::uint64_t i = 0; i < n; ++i)
        c.insts.push_back(src.next());
    c.insts.pop_back(); // The writeRepro() wrap-seam sentinel.
    if (const Program *p = src.codeImage())
        c.program = std::make_shared<Program>(*p);
    c.name = src.name();
    return c;
}

} // namespace btbsim::check
