/**
 * @file
 * Cycle-free functional reference models for the differential checker.
 *
 * The reference side deliberately avoids re-implementing the
 * organizations: a mirror that duplicates the real replacement and
 * cursor machinery would share its bugs. Instead it tracks only facts
 * that are *obviously* derivable from the access/update stream with
 * unbounded maps, and is honest about when capacity effects make a
 * prediction impossible:
 *
 *  - An EvictionMonitor per set-associative level counts the distinct
 *    keys ever inserted into each set. While a set has seen at most
 *    `ways` distinct keys, no eviction can possibly have happened
 *    there, so entry *presence* is exactly predictable. The first time
 *    a set overflows it is marked permanently, and every prediction
 *    about its keys downgrades from "must be present" to "may be
 *    present" (containment checking via BranchHistory only).
 *
 *  - RefIbtb / RefRbtb additionally know which branches each entry must
 *    expose in the no-eviction regime (an R-BTB region with at most
 *    `branch_slots` distinct trained offsets cannot have displaced any
 *    of them). The block-structured organizations (B-/MB-BTB, hetero)
 *    have history-dependent entry boundaries, so the checker validates
 *    them through structural invariants and BranchHistory containment
 *    instead of presence predictions.
 */

#ifndef BTBSIM_CHECK_REFERENCE_H
#define BTBSIM_CHECK_REFERENCE_H

#include <cstdint>
#include <unordered_map>
#include <unordered_set>

#include "common/types.h"
#include "core/btb_config.h"

namespace btbsim::check {

/**
 * Tracks, per set of one set-associative level, the distinct keys ever
 * inserted. clean(key) answers "can key's set have evicted anything?"
 * soundly: false positives (spurious overflow marks) only weaken the
 * checking, never break it, so callers may insertKey() conservatively.
 */
class EvictionMonitor
{
  public:
    EvictionMonitor(unsigned sets, unsigned ways, unsigned index_shift)
        : sets_(sets), ways_(ways), shift_(index_shift)
    {}

    void
    insertKey(Addr key)
    {
        const std::size_t idx = setIndex(key);
        if (overflowed_.contains(idx))
            return;
        auto &keys = keys_[idx];
        keys.insert(key);
        if (keys.size() > ways_) {
            overflowed_.insert(idx);
            keys_.erase(idx);
        }
    }

    /** True when @p key's set has never held more distinct keys than
     *  ways — i.e. no eviction can have occurred there. */
    bool
    clean(Addr key) const
    {
        return !overflowed_.contains(setIndex(key));
    }

  private:
    std::size_t
    setIndex(Addr key) const
    {
        return static_cast<std::size_t>((key >> shift_) % sets_);
    }

    unsigned sets_;
    unsigned ways_;
    unsigned shift_;
    std::unordered_map<std::size_t, std::unordered_set<Addr>> keys_;
    std::unordered_set<std::size_t> overflowed_;
};

/** Reference for the I-BTB: one branch per entry, keyed by branch PC. */
class RefIbtb
{
  public:
    explicit RefIbtb(const BtbConfig &cfg);

    /** Mirror a (potential) allocation for @p pc. */
    void train(Addr pc);

    /** Must the real organization currently hold an entry for @p pc?
     *  True only when @p pc was trained and no eviction can have
     *  touched its set at any level. */
    bool mustHold(Addr pc) const;

  private:
    bool ideal_;
    EvictionMonitor l1_;
    EvictionMonitor l2_;
    std::unordered_set<Addr> trained_;
};

/** Reference for the R-BTB: region entries with bounded branch slots. */
class RefRbtb
{
  public:
    explicit RefRbtb(const BtbConfig &cfg);

    void train(Addr pc);
    /** Mirror a decode-based prefill; returns true when the real
     *  organization must have accepted it (entry not provably full). */
    bool prefill(Addr pc);

    /** Must the region entry for @p pc's region exist and expose every
     *  trained branch of the region? True only when the region's sets
     *  never overflowed at any level AND the region never held more
     *  distinct branch offsets than branch_slots (no displacement). */
    bool mustHoldAll(Addr region) const;

    /** Distinct trained branch PCs of @p region (only meaningful when
     *  mustHoldAll(region)). */
    const std::unordered_set<Addr> *trainedBranches(Addr region) const;

    Addr regionBase(Addr pc) const { return alignDown(pc, region_bytes_); }

  private:
    unsigned region_bytes_;
    unsigned branch_slots_;
    bool ideal_;
    EvictionMonitor l1_;
    EvictionMonitor l2_;
    /** Region base -> trained branch PCs; erased once the region
     *  overflows its slot budget (displacement possible). */
    std::unordered_map<Addr, std::unordered_set<Addr>> regions_;
    std::unordered_set<Addr> slot_overflowed_;
};

} // namespace btbsim::check

#endif // BTBSIM_CHECK_REFERENCE_H
