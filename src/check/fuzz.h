/**
 * @file
 * Property-based fuzzer for the BTB organizations.
 *
 * A FuzzCase is a seeded random BtbConfig (deliberately tiny geometries,
 * so evictions, displacements and window collisions happen constantly)
 * plus a captured synthetic instruction stream. runCase() drives the
 * organization through the full bundle protocol under the differential
 * checker (checker.h) with an oracle direction predictor, tolerating
 * arbitrary control-flow discontinuities — which makes EVERY subsequence
 * of a failing stream a valid input, the property shrinkCase() exploits:
 * it truncates at the failure, deletes chunks ddmin-style down to single
 * instructions, then simplifies the configuration, all deterministically
 * (shrinking an already-shrunk case is a fixpoint).
 *
 * Repros round-trip through the traceio container: writeRepro() emits
 * the stream as a `.btbt` file plus a canonical-JSON BtbConfig sidecar,
 * loadRepro() reads both back, so a CI fuzz artifact replays locally
 * with `btbsim-fuzz replay`.
 */

#ifndef BTBSIM_CHECK_FUZZ_H
#define BTBSIM_CHECK_FUZZ_H

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/btb_config.h"
#include "trace/instruction.h"
#include "trace/program.h"

namespace btbsim::check {

/** One fuzzing input: a configuration and an instruction stream. */
struct FuzzCase
{
    std::uint64_t seed = 0;
    BtbConfig btb;
    std::vector<Instruction> insts;
    /** Code image for the `.btbt` repro (may be null). */
    std::shared_ptr<const Program> program;
    std::string name = "fuzz";
};

/** A checker divergence observed while walking a case. */
struct FuzzFailure
{
    std::size_t index = 0; ///< Instruction index being walked at failure.
    std::string message;   ///< Full CheckFailure report.
};

/** Deterministic random case for @p seed. */
FuzzCase randomCase(std::uint64_t seed, std::uint64_t trace_insts = 20000);

/** Walk @p c under the checker; the first divergence, if any. */
std::optional<FuzzFailure> runCase(const FuzzCase &c);

struct ShrinkResult
{
    FuzzCase reduced;
    FuzzFailure failure; ///< The (possibly different) surviving failure.
    unsigned rounds = 0;
};

/**
 * Minimize @p c while it keeps failing. @p failure is the divergence a
 * prior runCase(c) returned. Deterministic and idempotent.
 */
ShrinkResult shrinkCase(const FuzzCase &c, const FuzzFailure &failure);

/** Write @p c as @p trace_path (.btbt) + its config sidecar. */
void writeRepro(const FuzzCase &c, const std::string &trace_path);

/** Read a repro written by writeRepro(); throws on any problem. */
FuzzCase loadRepro(const std::string &trace_path);

/** Sidecar config path for @p trace_path ("x.btbt" -> "x.btbt.json"). */
std::string reproConfigPath(const std::string &trace_path);

} // namespace btbsim::check

#endif // BTBSIM_CHECK_FUZZ_H
