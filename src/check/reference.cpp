#include "check/reference.h"

namespace btbsim::check {

namespace {

// Mirrors TwoLevelTable's geometry selection (btb_org.h): with ideal,
// only the single huge L1 exists.
EvictionMonitor
monitorL1(const BtbConfig &cfg, unsigned shift)
{
    if (cfg.ideal)
        return EvictionMonitor(16384, 32, shift);
    return EvictionMonitor(cfg.l1.sets, cfg.l1.ways, shift);
}

EvictionMonitor
monitorL2(const BtbConfig &cfg, unsigned shift)
{
    if (cfg.ideal)
        return EvictionMonitor(1, 1, shift); // Unused when ideal.
    return EvictionMonitor(cfg.l2.sets, cfg.l2.ways, shift);
}

} // namespace

// ---- RefIbtb ---------------------------------------------------------------

RefIbtb::RefIbtb(const BtbConfig &cfg)
    : ideal_(cfg.ideal),
      l1_(monitorL1(cfg, log2i(kInstBytes))),
      l2_(monitorL2(cfg, log2i(kInstBytes)))
{}

void
RefIbtb::train(Addr pc)
{
    trained_.insert(pc);
    // Fills (L2 -> L1) re-insert keys that were already counted at
    // allocation, so counting only at train time covers every insertion
    // the real table can perform.
    l1_.insertKey(pc);
    if (!ideal_)
        l2_.insertKey(pc);
}

bool
RefIbtb::mustHold(Addr pc) const
{
    if (!trained_.contains(pc))
        return false;
    if (!l1_.clean(pc))
        return false;
    return ideal_ || l2_.clean(pc);
}

// ---- RefRbtb ---------------------------------------------------------------

RefRbtb::RefRbtb(const BtbConfig &cfg)
    : region_bytes_(cfg.region_bytes),
      branch_slots_(cfg.branch_slots),
      ideal_(cfg.ideal),
      l1_(monitorL1(cfg, log2i(cfg.region_bytes))),
      l2_(monitorL2(cfg, log2i(cfg.region_bytes)))
{}

void
RefRbtb::train(Addr pc)
{
    const Addr region = regionBase(pc);
    l1_.insertKey(region);
    if (!ideal_)
        l2_.insertKey(region);
    if (slot_overflowed_.contains(region))
        return;
    auto &branches = regions_[region];
    branches.insert(pc);
    if (branches.size() > branch_slots_) {
        // Slot displacement is now possible; which branch survives
        // depends on probe recency, so stop predicting completeness.
        slot_overflowed_.insert(region);
        regions_.erase(region);
    }
}

bool
RefRbtb::prefill(Addr pc)
{
    // The real organization refuses a prefill only when the entry
    // already holds branch_slots slots and none matches this offset —
    // in which case the region holds > branch_slots distinct trained
    // offsets and train() drops it from completeness tracking anyway.
    // Prefill values are static (direct branches), so recording a
    // refused one in BranchHistory is harmless. Mirror it as training.
    train(pc);
    return !slot_overflowed_.contains(regionBase(pc));
}

bool
RefRbtb::mustHoldAll(Addr region) const
{
    const auto it = regions_.find(region);
    if (it == regions_.end())
        return false;
    if (!l1_.clean(region))
        return false;
    return ideal_ || l2_.clean(region);
}

const std::unordered_set<Addr> *
RefRbtb::trainedBranches(Addr region) const
{
    const auto it = regions_.find(region);
    return it == regions_.end() ? nullptr : &it->second;
}

} // namespace btbsim::check
