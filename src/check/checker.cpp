#include "check/checker.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/env.h"
#include "obs/tracer.h"

namespace btbsim::check {

namespace {

std::string
hexAddr(Addr a)
{
    std::ostringstream os;
    os << "0x" << std::hex << a;
    return os.str();
}

void
dumpBundle(std::ostream &os, const PredictionBundle &b)
{
    os << "  segments (" << b.n_segments << "):\n";
    for (unsigned i = 0; i < b.n_segments && i < PredictionBundle::kMaxSegments;
         ++i)
        os << "    [" << i << "] " << hexAddr(b.segments[i].start) << " .. "
           << hexAddr(b.segments[i].end) << "\n";
    os << "  slots (" << b.n_slots << ", cursor=" << b.cursor
       << ", committed=" << b.committed << ", probes=" << b.probes
       << ", probed_mask=" << hexAddr(b.probed) << "):\n";
    for (unsigned i = 0; i < b.n_slots && i < PredictionBundle::kMaxSlots;
         ++i) {
        const auto &s = b.slots[i];
        os << "    [" << i << "] seg=" << unsigned{s.seg} << " pc="
           << hexAddr(s.pc) << " type=" << branchClassName(s.type)
           << " target=" << hexAddr(s.target) << " level="
           << unsigned{s.level} << (s.follow ? " follow" : "")
           << (s.end_on_not_taken ? " end_on_not_taken" : "")
           << ((b.probed >> i & 1) ? " probed" : "") << "\n";
    }
}

} // namespace

CheckedBtb::CheckedBtb(BtbOrg &inner, bool abort_on_failure)
    : inner_(inner), abort_(abort_on_failure)
{
    // Walk helpers (PredictionBundle::chain) account through the wrapper
    // when it fronts the frontend; keep the counters on the inner org so
    // harvested stats are identical with and without checking.
    walk_stats = &inner_.stats;
    const BtbConfig &cfg = inner_.config();
    switch (cfg.kind) {
      case BtbKind::kInstruction:
        ref_ibtb_.emplace(cfg);
        break;
      case BtbKind::kRegion:
        ref_rbtb_.emplace(cfg);
        break;
      default:
        break; // Block-structured: structural + containment checks only.
    }
}

std::unique_ptr<CheckedBtb>
CheckedBtb::wrapFromEnv(BtbOrg &inner)
{
    if (!env::flag("BTBSIM_CHECK"))
        return nullptr;
    return std::make_unique<CheckedBtb>(inner, /*abort_on_failure=*/true);
}

void
CheckedBtb::fail(const PredictionBundle *b, const std::string &msg)
{
    std::ostringstream os;
    os << "btbsim differential check FAILED: " << msg << "\n"
       << "  org: " << inner_.config().name() << "\n"
       << "  cycle: " << now_ << "  access#: " << accesses_
       << "  access_pc: " << hexAddr(access_pc_) << "\n";
    if (b)
        dumpBundle(os, *b);
    if (tracer_) {
        tracer_->record(now_, obs::TraceEventType::kCheckFail, access_pc_);
        const std::size_t n = tracer_->size();
        const std::size_t from = n > 16 ? n - 16 : 0;
        os << "  recent pipeline events:\n";
        for (std::size_t i = from; i < n; ++i) {
            const obs::TraceEvent &e = tracer_->at(i);
            os << "    cycle=" << e.cycle << " "
               << obs::traceEventTypeName(e.type) << " pc=" << hexAddr(e.pc)
               << " aux=" << hexAddr(e.aux) << " level="
               << unsigned{e.level} << "\n";
        }
    }
    const std::string report = os.str();
    if (abort_) {
        std::fputs(report.c_str(), stderr);
        std::abort();
    }
    throw CheckFailure(report);
}

void
CheckedBtb::trainTaken(const Instruction &br)
{
    history_.train(br.pc, br.branch, br.takenTarget());
    if (ref_ibtb_)
        ref_ibtb_->train(br.pc);
    if (ref_rbtb_)
        ref_rbtb_->train(br.pc);
}

int
CheckedBtb::beginAccess(Addr pc, PredictionBundle &b)
{
    ++accesses_;
    access_pc_ = pc;
    const int lvl = inner_.beginAccess(pc, b);
    access_dirty_ = false;
    validateBundle(b, /*chained=*/false);
    return lvl;
}

bool
CheckedBtb::chainAccess(Addr pc, Addr target, PredictionBundle &b)
{
    const bool ok = inner_.chainAccess(pc, target, b);
    if (ok) {
        access_pc_ = target;
        access_dirty_ = false;
        validateBundle(b, /*chained=*/true);
    }
    return ok;
}

void
CheckedBtb::update(const Instruction &br, bool resteer)
{
    if (br.taken)
        trainTaken(br);
    access_dirty_ = true;
    inner_.update(br, resteer);
}

void
CheckedBtb::prefill(const Instruction &br)
{
    // Prefilled targets of direct branches are static, so recording them
    // as training is exact even when the organization declines the fill.
    history_.train(br.pc, br.branch, br.takenTarget());
    if (ref_ibtb_)
        ref_ibtb_->train(br.pc);
    if (ref_rbtb_)
        ref_rbtb_->prefill(br.pc);
    access_dirty_ = true;
    inner_.prefill(br);
}

void
CheckedBtb::endAccess(PredictionBundle &b)
{
    // ShadowL1 cross-check: the I-BTB records per-slot supply levels from
    // side-effect-free peeks and replays the real lookups here. For any
    // probed, not-yet-committed slot whose L1 set no other probed slot
    // maps to (so commit order inside the set cannot matter) and with no
    // interleaved table mutation, the peeked level must match the real
    // hierarchy before the replay, and the replay must leave the entry
    // L1-resident.
    if (inner_.config().kind != BtbKind::kInstruction || access_dirty_) {
        inner_.endAccess(b);
        return;
    }
    const BtbConfig &cfg = inner_.config();
    const unsigned sets = cfg.ideal ? 16384 : cfg.l1.sets;

    unsigned idx[PredictionBundle::kMaxSlots];
    std::size_t set_of[PredictionBundle::kMaxSlots];
    unsigned n = 0;
    for (unsigned i = b.committed; i < b.n_slots; ++i)
        if (b.probed >> i & 1) {
            idx[n] = i;
            set_of[n] = static_cast<std::size_t>(
                (b.slots[i].pc >> log2i(kInstBytes)) % sets);
            ++n;
        }
    bool shared[PredictionBundle::kMaxSlots] = {};
    for (unsigned a = 0; a < n; ++a)
        for (unsigned c = a + 1; c < n; ++c)
            if (set_of[a] == set_of[c])
                shared[a] = shared[c] = true;

    for (unsigned k = 0; k < n; ++k) {
        if (shared[k])
            continue;
        const auto &s = b.slots[idx[k]];
        const int lvl = inner_.peekLevel(s.pc);
        if (lvl < 0) {
            inner_.endAccess(b);
            return; // Organization cannot answer residency queries.
        }
        if (lvl != int{s.level})
            fail(&b, "probed slot at " + hexAddr(s.pc) + " recorded level " +
                         std::to_string(unsigned{s.level}) +
                         " but the entry resides at level " +
                         std::to_string(lvl) + " before commit");
    }

    inner_.endAccess(b);

    for (unsigned k = 0; k < n; ++k) {
        if (shared[k])
            continue;
        const auto &s = b.slots[idx[k]];
        if (inner_.peekLevel(s.pc) != 1)
            fail(&b, "probed slot at " + hexAddr(s.pc) +
                         " is not L1-resident after its deferred lookup "
                         "committed");
    }
}

void
CheckedBtb::validateBundle(const PredictionBundle &b, bool chained)
{
    const BtbConfig &cfg = inner_.config();
    const Addr pc = access_pc_;
    const Addr reach_bytes = Addr{cfg.reach_instrs} * kInstBytes;

    // ---- segment geometry -------------------------------------------------
    if (b.n_segments < 1 || b.n_segments > PredictionBundle::kMaxSegments)
        fail(&b, "bundle has " + std::to_string(b.n_segments) + " segments");
    if (b.n_slots > PredictionBundle::kMaxSlots)
        fail(&b, "bundle has " + std::to_string(b.n_slots) + " slots");
    for (unsigned i = 0; i < b.n_segments; ++i)
        if (b.segments[i].start >= b.segments[i].end)
            fail(&b, "segment " + std::to_string(i) + " is empty or inverted");

    const auto &seg0 = b.segments[0];
    switch (cfg.kind) {
      case BtbKind::kInstruction: {
        if (b.n_segments != 1)
            fail(&b, "I-BTB window must be a single segment");
        if (seg0.start != pc)
            fail(&b, "window does not start at the access pc");
        // chainAccess() refills with the remaining probe budget.
        const Addr want = Addr{cfg.width - b.probes} * kInstBytes;
        if (seg0.end - seg0.start != want)
            fail(&b, "I-BTB window length " +
                         std::to_string(seg0.end - seg0.start) +
                         " != banked probe budget " + std::to_string(want));
        break;
      }
      case BtbKind::kRegion: {
        if (b.n_segments != 1)
            fail(&b, "R-BTB window must be a single segment");
        if (seg0.start != alignDown(pc, cfg.region_bytes))
            fail(&b, "window not aligned to the access pc's region");
        if (pc >= seg0.end)
            fail(&b, "access pc beyond the region window");
        const Addr len = seg0.end - seg0.start;
        if (len != cfg.region_bytes &&
            !(cfg.dual_region && len == Addr{2} * cfg.region_bytes))
            fail(&b, "region window length " + std::to_string(len) +
                         " is not one region (or two with dual_region)");
        break;
      }
      case BtbKind::kBlock:
      case BtbKind::kHetero: {
        if (b.n_segments != 1)
            fail(&b, "block window must be a single segment");
        if (seg0.start != pc)
            fail(&b, "window does not start at the access pc");
        const Addr len = seg0.end - seg0.start;
        if (len > reach_bytes)
            fail(&b, "block length " + std::to_string(len) +
                         " exceeds the entry reach");
        break;
      }
      case BtbKind::kMultiBlock: {
        if (seg0.start != pc)
            fail(&b, "window does not start at the access pc");
        Addr sum = 0;
        for (unsigned i = 0; i < b.n_segments; ++i)
            sum += b.segments[i].end - b.segments[i].start;
        // freshEntry/doPull/removePulled all keep the chained blocks
        // summing exactly to the entry reach.
        if (sum != reach_bytes)
            fail(&b, "chained block lengths sum to " + std::to_string(sum) +
                         " != entry reach " + std::to_string(reach_bytes));
        break;
      }
    }
    if (chained && cfg.kind != BtbKind::kInstruction)
        fail(&b, "chainAccess succeeded on a non-Skp organization");

    // ---- slots ------------------------------------------------------------
    const bool latest_semantics = cfg.kind == BtbKind::kInstruction ||
                                  cfg.kind == BtbKind::kRegion;
    unsigned at_seen = 0;
    Addr at_pc = 0;
    for (unsigned i = 0; i < b.n_slots; ++i) {
        const auto &s = b.slots[i];
        const std::string who = "slot " + std::to_string(i) + " (" +
                                hexAddr(s.pc) + ")";
        if (s.seg >= b.n_segments)
            fail(&b, who + " references segment " + std::to_string(s.seg));
        const auto &sg = b.segments[s.seg];
        if (s.pc < sg.start || s.pc >= sg.end)
            fail(&b, who + " lies outside its segment");
        if (s.pc % kInstBytes != 0)
            fail(&b, who + " is not instruction-aligned");
        if (s.type == BranchClass::kNone)
            fail(&b, who + " has no branch type");
        if (s.level != 1 && s.level != 2)
            fail(&b, who + " has level " + std::to_string(unsigned{s.level}));
        if (cfg.ideal && cfg.kind != BtbKind::kHetero && s.level != 1)
            fail(&b, who + " reports L2 in an ideal (single-level) config");
        if (i > 0) {
            const auto &p = b.slots[i - 1];
            if (!(s.seg > p.seg || (s.seg == p.seg && s.pc > p.pc)))
                fail(&b, who + " breaks strict (segment, pc) ordering");
        }

        switch (cfg.kind) {
          case BtbKind::kInstruction:
            if (s.follow != cfg.skip_taken)
                fail(&b, who + " follow flag disagrees with skip_taken");
            if (s.end_on_not_taken)
                fail(&b, who + " sets end_on_not_taken on an I-BTB");
            // fillWindow() stops peeking past an always-taken slot.
            if (at_seen)
                fail(&b, who + " lies beyond the always-taken slot at " +
                             hexAddr(at_pc));
            break;
          case BtbKind::kRegion:
          case BtbKind::kBlock:
          case BtbKind::kHetero:
            if (s.follow || s.end_on_not_taken)
                fail(&b, who + " sets chain flags on a non-chaining org");
            break;
          case BtbKind::kMultiBlock:
            if (s.end_on_not_taken != s.follow)
                fail(&b, who + " pulled-slot flags disagree");
            if (s.follow) {
                if (s.pc != sg.end - kInstBytes)
                    fail(&b, who + " is a pulled slot away from its block "
                                   "seam");
                if (unsigned{s.seg} + 1 >= b.n_segments)
                    fail(&b, who + " pulls past the last chained block");
                if (s.target != b.segments[s.seg + 1].start)
                    fail(&b, who + " pull target disagrees with the next "
                                   "chained block");
                if (i + 1 < b.n_slots && b.slots[i + 1].seg == s.seg)
                    fail(&b, who + " pulled slot is not the last of its "
                                   "block");
            }
            break;
        }

        if (isAlwaysTaken(s.type)) {
            ++at_seen;
            at_pc = s.pc;
            if (cfg.kind == BtbKind::kBlock || cfg.kind == BtbKind::kHetero) {
                // Blocks end at architecturally-taken branches.
                if (i + 1 < b.n_slots)
                    fail(&b, who + " always-taken slot is not last in its "
                                   "block");
                if (sg.end != s.pc + kInstBytes)
                    fail(&b, who + " always-taken slot does not end its "
                                   "block");
            }
        }

        // ---- value oracle -------------------------------------------------
        if (latest_semantics) {
            const BranchHistory::Value *latest = history_.latest(s.pc);
            if (!latest)
                fail(&b, who + " exposes a branch that was never trained");
            if (latest->first != s.type || latest->second != s.target)
                fail(&b, who + " exposes (" +
                             std::string(branchClassName(s.type)) + ", " +
                             hexAddr(s.target) + ") but the latest training "
                             "was (" +
                             std::string(branchClassName(latest->first)) +
                             ", " + hexAddr(latest->second) + ")");
        } else if (!history_.contains(s.pc, s.type, s.target)) {
            fail(&b, who + " exposes (" +
                         std::string(branchClassName(s.type)) + ", " +
                         hexAddr(s.target) +
                         "), which was never trained for this pc");
        }
    }

    // ---- completeness (eviction-free regimes only) ------------------------
    if (cfg.kind == BtbKind::kInstruction && ref_ibtb_) {
        unsigned si = 0;
        for (Addr p = seg0.start; p < seg0.end; p += kInstBytes) {
            while (si < b.n_slots && b.slots[si].pc < p)
                ++si;
            if (si < b.n_slots && b.slots[si].pc == p) {
                if (isAlwaysTaken(b.slots[si].type))
                    break; // The window fill stops peeking here.
                continue;
            }
            if (ref_ibtb_->mustHold(p))
                fail(&b, "trained branch at " + hexAddr(p) +
                             " is missing from the window although its sets "
                             "never overflowed");
        }
    }
    if (cfg.kind == BtbKind::kRegion && ref_rbtb_) {
        const Addr region0 = seg0.start;
        if (ref_rbtb_->mustHoldAll(region0)) {
            for (const Addr p : *ref_rbtb_->trainedBranches(region0)) {
                bool found = false;
                for (unsigned i = 0; i < b.n_slots && !found; ++i)
                    found = b.slots[i].pc == p;
                if (!found)
                    fail(&b, "trained branch at " + hexAddr(p) +
                                 " is missing from its region entry although "
                                 "neither sets nor slots ever overflowed");
            }
        }
    }
}

} // namespace btbsim::check
