/**
 * @file
 * Organization-independent training oracle for the differential checker.
 *
 * Every (type, target) pair an organization was ever asked to store for
 * a branch PC — demand updates of taken branches plus decode-based
 * prefills — is recorded here in an unbounded map. Whatever slots an
 * organization later exposes must come from this set: a value outside
 * it was fabricated (corrupted offset arithmetic, a wrong-key write, a
 * stale pointer), which no amount of legitimate capacity pressure can
 * produce.
 *
 * Two strengths of value check exist:
 *  - contains(): the exposed pair matches SOME recorded pair. Valid for
 *    every organization — block-structured storage (B-/MB-BTB, hetero)
 *    legitimately keeps redundant copies that go stale when the branch
 *    retrains through a different dynamic block.
 *  - latest(): the exposed pair matches the MOST RECENT recorded pair.
 *    Valid for the I-BTB and R-BTB, whose updates write through to
 *    every live copy of the single entry tracking the branch, so a
 *    stale exposure is impossible by construction.
 */

#ifndef BTBSIM_CHECK_BRANCH_HISTORY_H
#define BTBSIM_CHECK_BRANCH_HISTORY_H

#include <unordered_map>
#include <utility>
#include <vector>

#include "common/types.h"
#include "trace/instruction.h"

namespace btbsim::check {

class BranchHistory
{
  public:
    using Value = std::pair<BranchClass, Addr>;

    /** Record that @p pc was trained (or prefilled) with @p type/@p target. */
    void
    train(Addr pc, BranchClass type, Addr target)
    {
        PcHistory &h = map_[pc];
        h.latest = {type, target};
        for (const Value &v : h.values)
            if (v.first == type && v.second == target)
                return;
        h.values.emplace_back(type, target);
    }

    /** Was @p pc ever trained at all? */
    bool knows(Addr pc) const { return map_.contains(pc); }

    /** Does (type, target) match any value ever trained for @p pc? */
    bool
    contains(Addr pc, BranchClass type, Addr target) const
    {
        const auto it = map_.find(pc);
        if (it == map_.end())
            return false;
        for (const Value &v : it->second.values)
            if (v.first == type && v.second == target)
                return true;
        return false;
    }

    /** Most recent value trained for @p pc, or nullptr if never trained. */
    const Value *
    latest(Addr pc) const
    {
        const auto it = map_.find(pc);
        return it == map_.end() ? nullptr : &it->second.latest;
    }

    std::size_t trackedPcs() const { return map_.size(); }

  private:
    struct PcHistory
    {
        std::vector<Value> values; ///< Deduplicated, insertion order.
        Value latest{BranchClass::kNone, 0};
    };

    std::unordered_map<Addr, PcHistory> map_;
};

} // namespace btbsim::check

#endif // BTBSIM_CHECK_BRANCH_HISTORY_H
