#include "check/fault.h"

#include <cstdlib>
#include <cstring>

namespace btbsim::check {

bool
faultArmed(const char *point)
{
    // Re-read the environment on every call: fault points exist only in
    // validation builds, where tests arm different points in turn within
    // one process. The getenv cost on the update path is irrelevant there.
    const char *armed = std::getenv("BTBSIM_FAULT");
    return armed && std::strcmp(armed, point) == 0;
}

} // namespace btbsim::check
