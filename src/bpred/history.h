/**
 * @file
 * Global branch history register with folded-segment hashing.
 */

#ifndef BTBSIM_BPRED_HISTORY_H
#define BTBSIM_BPRED_HISTORY_H

#include <array>
#include <cstdint>

#include "common/types.h"

namespace btbsim {

/**
 * A shift register of branch outcomes up to 256 bits long, supporting the
 * folded-segment hashes geometric-history predictors index with.
 */
class GlobalHistory
{
  public:
    static constexpr unsigned kBits = 256;

    /** Shift in one outcome (bit 0 becomes the most recent). */
    void shift(bool taken);

    /** Clear all history. */
    void reset();

    /**
     * XOR-fold the most recent @p length bits down to @p out_bits bits.
     * length == 0 yields 0 (bias-table indexing).
     */
    std::uint64_t fold(unsigned length, unsigned out_bits) const;

    /** Raw low @p n bits of history (n <= 64). */
    std::uint64_t low(unsigned n) const;

  private:
    std::array<std::uint64_t, kBits / 64> words_{};
};

/** Path history: hashed PCs of recent taken branches. */
class PathHistory
{
  public:
    void
    shift(Addr pc)
    {
        value_ = (value_ << 3) ^ (pc >> 2);
    }

    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_BPRED_HISTORY_H
