#include "bpred/perceptron.h"

#include <cmath>

namespace btbsim {

HashedPerceptron::HashedPerceptron(const PerceptronConfig &config)
    : cfg_(config)
{
    // Geometric history lengths from 0 to max_history: table 0 is the
    // PC-indexed bias table, the rest follow a geometric progression.
    hist_lengths_.resize(cfg_.num_tables);
    hist_lengths_[0] = 0;
    const double ratio = std::pow(
        static_cast<double>(cfg_.max_history) / 3.0,
        1.0 / static_cast<double>(cfg_.num_tables - 2));
    double len = 3.0;
    for (unsigned t = 1; t < cfg_.num_tables; ++t) {
        hist_lengths_[t] = static_cast<unsigned>(len + 0.5);
        len *= ratio;
    }
    hist_lengths_.back() = cfg_.max_history;

    weights_.assign(std::size_t{cfg_.num_tables} * cfg_.entries_per_table,
                    SignedSatCounter<8>{});

    index_bits_ = log2i(cfg_.entries_per_table);
    index_mask_ = (1ull << index_bits_) - 1;
    table_hash_.resize(cfg_.num_tables);
    for (unsigned t = 0; t < cfg_.num_tables; ++t)
        table_hash_[t] = std::uint64_t{t} * 0x9e3779b97f4a7c15ull >> 48;

    theta_ = static_cast<int>(2.14 * cfg_.num_tables + 20.58);
}

unsigned
HashedPerceptron::index(Addr pc, unsigned table) const
{
    std::uint64_t h = (pc >> 2) ^ ((pc >> 2) >> index_bits_) ^
        table_hash_[table];
    h ^= history_.fold(hist_lengths_[table], index_bits_);
    return static_cast<unsigned>(h & index_mask_);
}

int
HashedPerceptron::sum(Addr pc, std::vector<unsigned> &indices) const
{
    indices.resize(cfg_.num_tables);
    int s = 0;
    const SignedSatCounter<8> *w = weights_.data();
    for (unsigned t = 0; t < cfg_.num_tables; ++t) {
        indices[t] = index(pc, t);
        s += w[std::size_t{t} * cfg_.entries_per_table + indices[t]].value();
    }
    return s;
}

bool
HashedPerceptron::predict(Addr pc) const
{
    std::vector<unsigned> indices;
    return sum(pc, indices) >= 0;
}

bool
HashedPerceptron::predictAndTrain(Addr pc, bool taken)
{
    const int s = sum(pc, scratch_);
    const bool pred = s >= 0;

    ++lookups_;
    if (pred != taken)
        ++mispredicts_;

    // Train on mispredict or low confidence.
    if (pred != taken || std::abs(s) <= theta_) {
        for (unsigned t = 0; t < cfg_.num_tables; ++t)
            weights_[std::size_t{t} * cfg_.entries_per_table + scratch_[t]]
                .add(taken ? 1 : -1);

        // Adaptive threshold (Seznec-style): grow on mispredicts, shrink
        // when training only because of low confidence.
        if (pred != taken) {
            if (++tc_ >= 32) {
                tc_ = 0;
                ++theta_;
            }
        } else {
            if (--tc_ <= -32) {
                tc_ = 0;
                if (theta_ > 4)
                    --theta_;
            }
        }
    }

    history_.shift(taken);
    return pred;
}

} // namespace btbsim
