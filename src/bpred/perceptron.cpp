#include "bpred/perceptron.h"

#include <cmath>

namespace btbsim {

HashedPerceptron::HashedPerceptron(const PerceptronConfig &config)
    : cfg_(config)
{
    // Geometric history lengths from 0 to max_history: table 0 is the
    // PC-indexed bias table, the rest follow a geometric progression.
    hist_lengths_.resize(cfg_.num_tables);
    hist_lengths_[0] = 0;
    const double ratio = std::pow(
        static_cast<double>(cfg_.max_history) / 3.0,
        1.0 / static_cast<double>(cfg_.num_tables - 2));
    double len = 3.0;
    for (unsigned t = 1; t < cfg_.num_tables; ++t) {
        hist_lengths_[t] = static_cast<unsigned>(len + 0.5);
        len *= ratio;
    }
    hist_lengths_.back() = cfg_.max_history;

    tables_.assign(cfg_.num_tables, {});
    for (auto &t : tables_)
        t.assign(cfg_.entries_per_table, SignedSatCounter<8>{});

    theta_ = static_cast<int>(2.14 * cfg_.num_tables + 20.58);
}

unsigned
HashedPerceptron::index(Addr pc, unsigned table) const
{
    const unsigned bits = log2i(cfg_.entries_per_table);
    const std::uint64_t mask = (1ull << bits) - 1;
    std::uint64_t h = (pc >> 2) ^ ((pc >> 2) >> bits) ^
        (std::uint64_t{table} * 0x9e3779b97f4a7c15ull >> 48);
    h ^= history_.fold(hist_lengths_[table], bits);
    return static_cast<unsigned>(h & mask);
}

int
HashedPerceptron::sum(Addr pc, std::vector<unsigned> &indices) const
{
    indices.resize(cfg_.num_tables);
    int s = 0;
    for (unsigned t = 0; t < cfg_.num_tables; ++t) {
        indices[t] = index(pc, t);
        s += tables_[t][indices[t]].value();
    }
    return s;
}

bool
HashedPerceptron::predict(Addr pc) const
{
    std::vector<unsigned> indices;
    return sum(pc, indices) >= 0;
}

bool
HashedPerceptron::predictAndTrain(Addr pc, bool taken)
{
    std::vector<unsigned> indices;
    const int s = sum(pc, indices);
    const bool pred = s >= 0;

    ++lookups_;
    if (pred != taken)
        ++mispredicts_;

    // Train on mispredict or low confidence.
    if (pred != taken || std::abs(s) <= theta_) {
        for (unsigned t = 0; t < cfg_.num_tables; ++t)
            tables_[t][indices[t]].add(taken ? 1 : -1);

        // Adaptive threshold (Seznec-style): grow on mispredicts, shrink
        // when training only because of low confidence.
        if (pred != taken) {
            if (++tc_ >= 32) {
                tc_ = 0;
                ++theta_;
            }
        } else {
            if (--tc_ <= -32) {
                tc_ = 0;
                if (theta_ > 4)
                    --theta_;
            }
        }
    }

    history_.shift(taken);
    return pred;
}

} // namespace btbsim
