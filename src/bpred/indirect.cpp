#include "bpred/indirect.h"

namespace btbsim {

IndirectPredictor::IndirectPredictor(unsigned entries)
    : table_(entries, 0), index_bits_(log2i(entries))
{}

Addr
IndirectPredictor::predictAndTrain(Addr pc, const GlobalHistory &history,
                                   Addr actual)
{
    const std::uint64_t mask = (1ull << index_bits_) - 1;
    const std::uint64_t idx =
        ((pc >> 2) ^ history.fold(4, index_bits_)) & mask;

    const Addr predicted = table_[idx];
    ++lookups_;
    if (predicted != actual)
        ++mispredicts_;
    table_[idx] = actual;
    return predicted;
}

} // namespace btbsim
