/**
 * @file
 * Combined branch prediction unit: direction + indirect target + RAS.
 */

#ifndef BTBSIM_BPRED_BPRED_UNIT_H
#define BTBSIM_BPRED_BPRED_UNIT_H

#include <cstdint>

#include "common/types.h"
#include "bpred/indirect.h"
#include "bpred/perceptron.h"
#include "bpred/ras.h"
#include "trace/instruction.h"

namespace btbsim {

/** Branch prediction unit configuration (Table 1 defaults). */
struct BPredConfig
{
    PerceptronConfig perceptron;
    unsigned ras_entries = 64;
    unsigned indirect_entries = 4096;

    bool operator==(const BPredConfig &) const = default;
};

/**
 * The prediction resources of the frontend, distinct from the BTB: the BTB
 * provides branch *existence*, type and direct targets, while this unit
 * provides conditional directions, return targets, and indirect targets.
 *
 * All methods follow the trace-driven immediate-update discipline: they
 * return what the hardware would have predicted, then train with the
 * ground truth in the same call.
 */
class BPredUnit
{
  public:
    explicit BPredUnit(const BPredConfig &config = {})
        : perceptron_(config.perceptron),
          indirect_(config.indirect_entries), ras_(config.ras_entries)
    {}

    /** Conditional direction: predict then train, shifting history. */
    bool
    predictDirection(Addr pc, bool taken)
    {
        return perceptron_.predictAndTrain(pc, taken);
    }

    /** Non-return indirect target: predict then train. 0 = no prediction. */
    Addr
    predictIndirect(Addr pc, Addr actual)
    {
        return indirect_.predictAndTrain(pc, perceptron_.history(), actual);
    }

    /** Call at @p pc: push its return address. */
    void pushCall(Addr call_pc) { ras_.push(call_pc + kInstBytes); }

    /** Return: pop the predicted target (0 when the stack is empty). */
    Addr popReturn() { return ras_.pop(); }

    const HashedPerceptron &perceptron() const { return perceptron_; }
    const IndirectPredictor &indirect() const { return indirect_; }
    const ReturnAddressStack &ras() const { return ras_; }

  private:
    HashedPerceptron perceptron_;
    IndirectPredictor indirect_;
    ReturnAddressStack ras_;
};

} // namespace btbsim

#endif // BTBSIM_BPRED_BPRED_UNIT_H
