#include "bpred/history.h"

#include <algorithm>

namespace btbsim {

void
GlobalHistory::shift(bool taken)
{
    for (std::size_t i = words_.size() - 1; i > 0; --i)
        words_[i] = (words_[i] << 1) | (words_[i - 1] >> 63);
    words_[0] = (words_[0] << 1) | static_cast<std::uint64_t>(taken);
}

void
GlobalHistory::reset()
{
    words_.fill(0);
}

std::uint64_t
GlobalHistory::fold(unsigned length, unsigned out_bits) const
{
    if (length == 0 || out_bits == 0)
        return 0;
    if (length > kBits)
        length = kBits;

    std::uint64_t acc = 0;
    unsigned consumed = 0;
    while (consumed < length) {
        const unsigned word = consumed / 64;
        const unsigned bit = consumed % 64;
        unsigned chunk = std::min({64u - bit, length - consumed, out_bits});
        std::uint64_t v = (words_[word] >> bit) &
            ((chunk == 64) ? ~0ull : ((1ull << chunk) - 1));
        acc ^= v;
        // Rotate accumulator by chunk within out_bits to spread segments.
        acc = ((acc << 1) | (acc >> (out_bits - 1))) &
            ((out_bits == 64) ? ~0ull : ((1ull << out_bits) - 1));
        consumed += chunk;
    }
    return acc;
}

std::uint64_t
GlobalHistory::low(unsigned n) const
{
    if (n == 0)
        return 0;
    if (n >= 64)
        return words_[0];
    return words_[0] & ((1ull << n) - 1);
}

} // namespace btbsim
