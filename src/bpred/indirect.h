/**
 * @file
 * gshare-like indirect target predictor (4K entries per Table 1).
 */

#ifndef BTBSIM_BPRED_INDIRECT_H
#define BTBSIM_BPRED_INDIRECT_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "bpred/history.h"

namespace btbsim {

/**
 * Tagless target array indexed by PC xor folded global history, as in
 * ChampSim's baseline indirect predictor. Predicts targets for non-return
 * indirect branches; returns use the RAS instead.
 */
class IndirectPredictor
{
  public:
    explicit IndirectPredictor(unsigned entries = 4096);

    /**
     * Predict the target of the indirect branch at @p pc given the current
     * @p history, then train with the @p actual target.
     * @return the predicted target (0 if the entry was empty).
     */
    Addr predictAndTrain(Addr pc, const GlobalHistory &history, Addr actual);

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    std::vector<Addr> table_;
    unsigned index_bits_;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_BPRED_INDIRECT_H
