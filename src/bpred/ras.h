/**
 * @file
 * Return Address Stack (Kaeli and Emma), 64 entries per Table 1.
 */

#ifndef BTBSIM_BPRED_RAS_H
#define BTBSIM_BPRED_RAS_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace btbsim {

/**
 * Circular return-address stack. Overflow silently overwrites the oldest
 * entry (as hardware does); underflow returns 0, which the frontend treats
 * as "no prediction".
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(unsigned entries = 64)
        : stack_(entries, 0)
    {}

    /** Push the return address of a call. */
    void
    push(Addr ret_pc)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = ret_pc;
        if (depth_ < stack_.size())
            ++depth_;
        ++pushes_;
    }

    /** Pop the predicted return target; 0 when empty. */
    Addr
    pop()
    {
        ++pops_;
        if (depth_ == 0) {
            ++underflows_;
            return 0;
        }
        Addr r = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --depth_;
        return r;
    }

    unsigned depth() const { return static_cast<unsigned>(depth_); }
    std::uint64_t pushes() const { return pushes_; }
    std::uint64_t pops() const { return pops_; }
    std::uint64_t underflows() const { return underflows_; }

  private:
    std::vector<Addr> stack_;
    std::size_t top_ = 0;
    std::size_t depth_ = 0;
    std::uint64_t pushes_ = 0;
    std::uint64_t pops_ = 0;
    std::uint64_t underflows_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_BPRED_RAS_H
