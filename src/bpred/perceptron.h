/**
 * @file
 * Hashed perceptron conditional branch predictor.
 *
 * Models the paper's Table 1 predictor: 16 tables of 4K 8-bit weights
 * (64KB total) indexed by hashes of the PC and geometric global-history
 * segments spanning 0 to 232 bits, with adaptive-threshold training
 * (Jiménez; Tarjan and Skadron).
 */

#ifndef BTBSIM_BPRED_PERCEPTRON_H
#define BTBSIM_BPRED_PERCEPTRON_H

#include <cstdint>
#include <vector>

#include "common/sat_counter.h"
#include "common/types.h"
#include "bpred/history.h"

namespace btbsim {

/** Hashed perceptron configuration. */
struct PerceptronConfig
{
    unsigned num_tables = 16;
    unsigned entries_per_table = 4096; ///< 4K x 16 x 1B = 64KB.
    unsigned max_history = 232;

    /** Total storage in bytes (one byte per weight). */
    std::uint64_t
    sizeBytes() const
    {
        return std::uint64_t{num_tables} * entries_per_table;
    }

    /** Build a configuration of roughly @p kb kilobytes (Fig. 11b sweep). */
    static PerceptronConfig
    ofSizeKB(unsigned kb)
    {
        PerceptronConfig c;
        c.entries_per_table = std::max(64u, kb * 1024 / c.num_tables);
        return c;
    }

    bool operator==(const PerceptronConfig &) const = default;
};

/**
 * The predictor. Prediction and training are fused (trace-driven immediate
 * update): predictAndTrain() returns what the hardware would have
 * predicted, then trains on the actual outcome and shifts history.
 */
class HashedPerceptron
{
  public:
    explicit HashedPerceptron(const PerceptronConfig &config = {});

    /** Predict the branch at @p pc, then train with @p taken. */
    bool predictAndTrain(Addr pc, bool taken);

    /** Read-only prediction (no training, no history shift). */
    bool predict(Addr pc) const;

    /** Share the history register (read-only) with other predictors. */
    const GlobalHistory &history() const { return history_; }

    std::uint64_t lookups() const { return lookups_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

  private:
    PerceptronConfig cfg_;
    std::vector<unsigned> hist_lengths_;
    /// Flattened weights: table t entry i lives at t * entries_per_table
    /// + i (one allocation, one indirection on the sum path).
    std::vector<SignedSatCounter<8>> weights_;
    GlobalHistory history_;

    unsigned index_bits_ = 0;
    std::uint64_t index_mask_ = 0;
    /// Per-table hash constant: t * phi64 >> 48, fixed at construction.
    std::vector<std::uint64_t> table_hash_;
    /// Scratch for predictAndTrain (avoids a per-lookup allocation).
    std::vector<unsigned> scratch_;

    int theta_ = 0;
    int tc_ = 0; ///< Adaptive-threshold training counter.

    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;

    unsigned index(Addr pc, unsigned table) const;
    int sum(Addr pc, std::vector<unsigned> &indices) const;
};

} // namespace btbsim

#endif // BTBSIM_BPRED_PERCEPTRON_H
