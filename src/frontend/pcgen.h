/**
 * @file
 * PC-generation stage: drives one BTB access per cycle, walks the actual
 * instruction stream through the access window, detects every divergence
 * class (misfetch, misprediction, slot miss), charges taken-branch
 * bubbles, and feeds the FTQ.
 */

#ifndef BTBSIM_FRONTEND_PCGEN_H
#define BTBSIM_FRONTEND_PCGEN_H

#include <cstdint>
#include <utility>
#include <vector>

#include "bpred/bpred_unit.h"
#include "core/btb_org.h"
#include "frontend/ftq.h"
#include "obs/tracer.h"
#include "trace/trace_source.h"

namespace btbsim {

/** Counters the figures report. */
struct PcGenStats
{
    std::uint64_t accesses = 0;
    std::uint64_t fetch_pcs = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t taken_l1_hits = 0;
    std::uint64_t taken_l2_hits = 0;
    std::uint64_t cond_branches = 0;
    std::uint64_t cond_mispredicts = 0;
    std::uint64_t mispredicts = 0; ///< Exec-resolved resteers.
    std::uint64_t misfetches = 0;  ///< Decode-resolved resteers.
    std::uint64_t misp_cond = 0;      ///< direction mispredictions
    std::uint64_t misp_indirect = 0;  ///< indirect target mispredictions
    std::uint64_t misp_return = 0;    ///< RAS mispredictions
    std::uint64_t misp_btbmiss = 0;   ///< taken-cond BTB/slot miss
    std::uint64_t taken_bubbles = 0;
    std::uint64_t branches = 0;
};

/**
 * The BP stage of Fig. 3. Trace-driven: the stage owns the trace cursor
 * and only consumes instructions along the correct path; divergences stall
 * it until the pipeline resolves the flagged branch (Decode or Execute).
 */
class PcGen
{
  public:
    PcGen(BtbOrg &org, BPredUnit &bpred, TraceSource &trace, Ftq &ftq);

    /** Run the stage for cycle @p now (call once per cycle). */
    void runCycle(Cycle now);

    /** Resolve the outstanding resteer; PC generation resumes next cycle. */
    void
    resteerResolved(Cycle now)
    {
        waiting_resteer_ = false;
        if (ready_cycle_ < now + 1)
            ready_cycle_ = now + 1;
    }

    bool waitingResteer() const { return waiting_resteer_; }

    /** Attach the opt-in event tracer (nullptr = tracing off). */
    void setTracer(obs::Tracer *tracer) { tracer_ = tracer; }

    PcGenStats stats;

  private:
    BtbOrg *org_;
    BPredUnit *bpred_;
    TraceSource *trace_;
    Ftq *ftq_;
    obs::Tracer *tracer_ = nullptr;

    Instruction pending_;
    Addr next_fetch_pc_ = 0;
    Cycle ready_cycle_ = 0;
    bool waiting_resteer_ = false;
    bool redirect_pending_ = true; ///< Next pushed inst opens a new entry.
    std::uint64_t seq_ = 0;

    std::vector<std::pair<Instruction, bool>> deferred_updates_;

    void advance() { pending_ = trace_->next(); }
};

} // namespace btbsim

#endif // BTBSIM_FRONTEND_PCGEN_H
