#include "frontend/pcgen.h"

#include <cassert>

namespace btbsim {

PcGen::PcGen(BtbOrg &org, BPredUnit &bpred, TraceSource &trace, Ftq &ftq)
    : org_(&org), bpred_(&bpred), trace_(&trace), ftq_(&ftq)
{
    advance();
    next_fetch_pc_ = pending_.pc;
}

void
PcGen::runCycle(Cycle now)
{
    if (waiting_resteer_ || now < ready_cycle_)
        return;
    if (!ftq_->canAccept(next_fetch_pc_, redirect_pending_)) {
        if (tracer_)
            tracer_->record(now, obs::TraceEventType::kFtqStall,
                            next_fetch_pc_);
        return; // Backpressure: the FTQ is full.
    }

    const bool bypass = ftq_->empty();
    PredictionBundle bundle;
    const int level0 = org_->beginAccess(next_fetch_pc_, bundle);
    if (tracer_ && level0 == 0)
        tracer_->record(now, obs::TraceEventType::kBtbMiss, next_fetch_pc_);
    ++stats.accesses;
    deferred_updates_.clear();

    unsigned bubbles = 0;
    bool force_new_entry = redirect_pending_;
    redirect_pending_ = false;

    for (int guard = 0; guard < 256; ++guard) {
        assert(pending_.pc == next_fetch_pc_ &&
               "frontend cursor diverged from trace");

        const StepView v = bundle.probe(pending_.pc);
        if (v.kind == StepView::Kind::kEndOfWindow)
            break; // Next access continues sequentially, no bubble.

        if (!ftq_->canAccept(pending_.pc, force_new_entry))
            break; // FTQ filled mid-bundle; resume here next cycle.

        // This instruction is consumed into the bundle.
        const Instruction in = pending_;
        DynInst d;
        d.in = in;
        d.seq = ++seq_;

        const bool tracked = v.kind == StepView::Kind::kBranch;
        const bool is_branch = in.isBranch();

        // Direction predictor: queried (and trained, immediate update) for
        // every actual conditional branch in program order.
        bool dir_pred = false;
        if (in.branch == BranchClass::kCondDirect) {
            dir_pred = bpred_->predictDirection(in.pc, in.taken);
            ++stats.cond_branches;
            if (dir_pred != in.taken)
                ++stats.cond_mispredicts;
        }
        // Indirect target predictor: trained on every non-return indirect.
        Addr ipred_target = 0;
        if (isIndirect(in.branch) && in.branch != BranchClass::kReturn)
            ipred_target = bpred_->predictIndirect(in.pc, in.next_pc);

        bool predicted_taken = false;
        Addr predicted_target = 0;
        bool ras_popped = false;
        if (tracked && is_branch) {
            predicted_taken =
                (v.type == BranchClass::kCondDirect) ? dir_pred : true;
            if (predicted_taken) {
                switch (v.type) {
                  case BranchClass::kReturn:
                    predicted_target = bpred_->popReturn();
                    ras_popped = true;
                    break;
                  case BranchClass::kIndirectJump:
                  case BranchClass::kIndirectCall:
                    predicted_target = v.follow ? v.target
                        : (ipred_target ? ipred_target : v.target);
                    break;
                  default:
                    predicted_target = v.target;
                    break;
                }
            }
        }

        // Architectural RAS maintenance along the correct path.
        if (isCall(in.branch))
            bpred_->pushCall(in.pc);
        if (in.branch == BranchClass::kReturn && !ras_popped) {
            // Untracked (or mispredicted-NT) return: popped once the
            // decoder identifies it.
            predicted_target = predicted_target ? predicted_target
                                                : bpred_->popReturn();
            if (!tracked || !predicted_taken)
                (void)0; // value used below for untracked-return resteer
        }

        if (is_branch) {
            ++stats.branches;
            if (in.taken) {
                ++stats.taken_branches;
                if (tracked) {
                    if (v.level >= 2)
                        ++stats.taken_l2_hits;
                    else
                        ++stats.taken_l1_hits;
                }
            }
        }

        const bool ends_access_nt =
            tracked && v.end_on_not_taken && !predicted_taken && !in.taken;

        if (tracked && !is_branch) {
            // Stale entry over a non-branch: the decoder flags a misfetch
            // if the stale slot would have redirected fetch.
            if (isAlwaysTaken(v.type)) {
                d.resteer = Resteer::kDecode;
                d.counts_misfetch = true;
                ++stats.misfetches;
                ftq_->push(d, now, bypass, force_new_entry);
                ++stats.fetch_pcs;
                advance();
                next_fetch_pc_ = in.next_pc;
                waiting_resteer_ = true;
                redirect_pending_ = true;
                if (tracer_)
                    tracer_->record(now,
                                    obs::TraceEventType::kFetchRedirect,
                                    in.pc, in.next_pc);
                deferred_updates_.emplace_back(in, true);
                break;
            }
            // Stale conditional slot: treated as not taken; harmless.
        }

        bool end_bundle = false;
        bool chained = false;

        if (!is_branch || (!predicted_taken && !in.taken)) {
            // Plain instruction or correctly-not-taken branch.
            if (is_branch)
                deferred_updates_.emplace_back(in, false);
            end_bundle = ends_access_nt;
        } else if (predicted_taken && in.taken &&
                   predicted_target == in.next_pc) {
            // Correct taken prediction.
            deferred_updates_.emplace_back(in, false);
            if (v.follow && bundle.chain(*org_, in.pc, in.next_pc)) {
                chained = true; // Same access continues at the target.
            } else {
                end_bundle = true;
                bubbles += org_->takenPenalty(v.level);
                if (isIndirect(v.type) && v.type != BranchClass::kReturn)
                    bubbles += 1; // Extra bubble for non-return indirects.
            }
        } else {
            // Divergence. Classify the resteer (Fig. 3).
            deferred_updates_.emplace_back(in, true);
            Resteer r = Resteer::kExec;
            if (predicted_taken && in.taken) {
                // Wrong target from the BTB.
                r = isDirect(v.type) ? Resteer::kDecode : Resteer::kExec;
            } else if (!predicted_taken && in.taken) {
                switch (in.branch) {
                  case BranchClass::kUncondDirect:
                  case BranchClass::kDirectCall:
                    r = Resteer::kDecode; // Decoder computes the target.
                    break;
                  case BranchClass::kReturn:
                    // The decoder identifies the return and uses the RAS;
                    // a wrong RAS target escalates to Execute.
                    r = (predicted_target == in.next_pc) ? Resteer::kDecode
                                                         : Resteer::kExec;
                    break;
                  default:
                    r = Resteer::kExec; // Conditionals and indirects.
                    break;
                }
            } else {
                // Predicted taken, actually not taken: conditional
                // misprediction resolved at Execute.
                r = Resteer::kExec;
            }
            d.resteer = r;
            if (r == Resteer::kDecode) {
                d.counts_misfetch = true;
                ++stats.misfetches;
            } else {
                d.counts_mispredict = true;
                ++stats.mispredicts;
                if (in.branch == BranchClass::kCondDirect) {
                    if (tracked && dir_pred != in.taken)
                        ++stats.misp_cond;
                    else if (!tracked)
                        ++stats.misp_btbmiss;
                    else
                        ++stats.misp_cond;
                } else if (in.branch == BranchClass::kReturn) {
                    ++stats.misp_return;
                } else {
                    ++stats.misp_indirect;
                }
            }
            ftq_->push(d, now, bypass, force_new_entry);
            ++stats.fetch_pcs;
            advance();
            next_fetch_pc_ = in.next_pc;
            waiting_resteer_ = true;
            redirect_pending_ = true;
            if (tracer_)
                tracer_->record(now, obs::TraceEventType::kFetchRedirect,
                                in.pc, in.next_pc);
            break;
        }

        // Consume the instruction into the FTQ.
        ftq_->push(d, now, bypass, force_new_entry);
        force_new_entry = false;
        ++stats.fetch_pcs;
        advance();
        next_fetch_pc_ = in.next_pc;

        if (chained) {
            force_new_entry = true; // New fetch block at the taken target.
            continue;
        }
        if (end_bundle) {
            if (bubbles == 0 && !in.taken) {
                // Not-taken end (MB-BTB pulled slot): sequential restart.
            }
            redirect_pending_ = in.taken;
            break;
        }
    }

    // End of walk: let the organization commit side effects it deferred
    // during the access (must precede the updates below).
    bundle.finish(*org_);

    stats.taken_bubbles += bubbles;
    ready_cycle_ = now + 1 + bubbles;

    // Apply the BTB updates after the access so the walk never observes
    // entries mutating underneath it.
    for (const auto &[br, resteer] : deferred_updates_) {
        org_->update(br, resteer);
        // A resteer-triggered update fills or corrects the entry for this
        // branch; that is the fill event external tooling cares about.
        if (tracer_ && resteer)
            tracer_->record(now, obs::TraceEventType::kBtbFill, br.pc,
                            br.next_pc);
    }
    deferred_updates_.clear();
}

} // namespace btbsim
