/**
 * @file
 * Fetch Target Queue: the decoupling queue between PC generation and
 * instruction fetch (Reinman et al.). One entry relates to a single cache
 * line (Table 1), holding the fetch PCs that fall within it.
 */

#ifndef BTBSIM_FRONTEND_FTQ_H
#define BTBSIM_FRONTEND_FTQ_H

#include <deque>
#include <vector>

#include "common/types.h"
#include "sim/dyn_inst.h"

namespace btbsim {

/** One FTQ entry: instructions within a single I-cache line. */
struct FtqEntry
{
    Addr line = 0;
    std::vector<DynInst> insts;
    Cycle min_issue_cycle = 0; ///< Earliest I$ access (FTQ bypass when 0-delay).
    bool issued = false;       ///< I$ access started.
    Cycle data_ready = 0;      ///< I$ data available (valid when issued).
    std::size_t next_idx = 0;  ///< Delivery progress within @c insts.
};

/** The queue itself (64 entries per Table 1). */
class Ftq
{
  public:
    explicit Ftq(std::size_t capacity = 64) : capacity_(capacity) {}

    bool full() const { return entries_.size() >= capacity_; }
    bool empty() const { return entries_.empty(); }
    std::size_t size() const { return entries_.size(); }
    std::size_t capacity() const { return capacity_; }

    /**
     * Append @p inst, opening a new entry when the line changes (or when
     * the stream was redirected). @return false if a new entry was needed
     * but the queue is full.
     *
     * @param new_entry Force a fresh entry even within the same line
     *                  (redirect targets start a new fetch block).
     */
    bool
    push(const DynInst &inst, Cycle now, bool bypass, bool new_entry)
    {
        const Addr line = alignDown(inst.in.pc, kLineBytes);
        if (!new_entry && !entries_.empty() && !entries_.back().issued &&
            entries_.back().line == line) {
            entries_.back().insts.push_back(inst);
            return true;
        }
        if (full())
            return false;
        FtqEntry e;
        e.line = line;
        e.min_issue_cycle = bypass ? now : now + 1;
        e.insts.push_back(inst);
        entries_.push_back(std::move(e));
        return true;
    }

    /** Can a new entry be opened for @p pc without allocating? */
    bool
    canAccept(Addr pc, bool new_entry) const
    {
        const Addr line = alignDown(pc, kLineBytes);
        if (!new_entry && !entries_.empty() && !entries_.back().issued &&
            entries_.back().line == line)
            return true;
        return !full();
    }

    std::deque<FtqEntry> &entries() { return entries_; }
    FtqEntry &front() { return entries_.front(); }

    void
    popFront()
    {
        // Issued entries form a prefix; dropping an issued front shifts
        // the first-unissued index left by one.
        if (first_unissued_ > 0)
            --first_unissued_;
        entries_.pop_front();
    }

    void
    clear()
    {
        entries_.clear();
        first_unissued_ = 0;
    }

    /**
     * Index of the oldest un-issued entry (== size() when all are
     * issued). Valid because issue happens strictly in queue order and
     * nothing un-issues an entry.
     */
    std::size_t firstUnissued() const { return first_unissued_; }

    /** Record that the entry at firstUnissued() was just issued. */
    void noteIssued() { ++first_unissued_; }

  private:
    std::size_t capacity_;
    std::deque<FtqEntry> entries_;
    std::size_t first_unissued_ = 0;
};

} // namespace btbsim

#endif // BTBSIM_FRONTEND_FTQ_H
