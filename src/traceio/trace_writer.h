/**
 * @file
 * Writing `.btbt` traces: TraceWriter appends instructions chunk by
 * chunk; RecordingSource captures any live TraceSource to disk while
 * passing it through unchanged.
 */

#ifndef BTBSIM_TRACEIO_TRACE_WRITER_H
#define BTBSIM_TRACEIO_TRACE_WRITER_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/trace_source.h"
#include "traceio/format.h"

namespace btbsim::traceio {

/**
 * Streams instructions into a `.btbt` file. Records are delta/varint
 * packed into chunks of @c chunk_insts instructions, each with its own
 * CRC32. finish() (or destruction) flushes the tail chunk and patches
 * the instruction/chunk counts into the header.
 */
class TraceWriter
{
  public:
    struct Options
    {
        std::uint32_t chunk_insts = kDefaultChunkInsts;
    };

    /**
     * Open @p path for writing and emit the header. @p stream_name is
     * the workload name replay will report; @p program (may be null) is
     * serialized so decode-based prefill works on replay. Throws
     * TraceError when the file cannot be created.
     */
    TraceWriter(const std::string &path, const std::string &stream_name,
                const Program *program, Options opt);
    TraceWriter(const std::string &path, const std::string &stream_name,
                const Program *program)
        : TraceWriter(path, stream_name, program, Options())
    {}

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** finish()es if that has not been done explicitly (errors ignored). */
    ~TraceWriter();

    /** Append one instruction. Throws TraceError on I/O failure. */
    void append(const Instruction &in);

    /** Flush the tail chunk, patch the header, close the file. Throws
     *  TraceError on I/O failure. Idempotent. */
    void finish();

    std::uint64_t instructionsWritten() const { return inst_count_; }
    const std::string &path() const { return path_; }

  private:
    std::string path_;
    std::ofstream os_;
    std::uint32_t chunk_insts_;

    std::vector<std::uint8_t> payload_;
    CodecState codec_;
    std::uint32_t chunk_records_ = 0;

    std::uint64_t inst_count_ = 0;
    std::uint32_t chunk_count_ = 0;
    bool finished_ = false;

    void flushChunk();
};

/**
 * Pass-through TraceSource that appends every delivered instruction to
 * a TraceWriter. The captured file is the concatenation of everything
 * the consumer pulled, including any stream restarts via reset().
 */
class RecordingSource : public TraceSource
{
  public:
    RecordingSource(TraceSource &inner, TraceWriter &writer)
        : inner_(&inner), writer_(&writer)
    {}

    const Instruction &
    next() override
    {
        const Instruction &in = inner_->next();
        writer_->append(in);
        return in;
    }

    void reset() override { inner_->reset(); }
    std::string name() const override { return inner_->name(); }
    const Program *codeImage() const override { return inner_->codeImage(); }

  private:
    TraceSource *inner_;
    TraceWriter *writer_;
};

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_TRACE_WRITER_H
