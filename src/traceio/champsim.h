/**
 * @file
 * ChampSim trace importer: converts raw ChampSim/CVP-style
 * `input_instr` records into the `.btbt` format.
 *
 * ChampSim traces are streams of fixed 64-byte records (the
 * `input_instr` struct ChampSim's tracer fwrites). The importer applies
 * the same register heuristics ChampSim's tracereader uses (x86 stack
 * pointer = 6, flags = 25, instruction pointer = 26) to classify each
 * branch, and stitches each record's next_pc from the following
 * record's instruction pointer — exactly the ground truth a
 * trace-driven frontend needs.
 *
 * Compressed traces (.gz/.xz, as distributed) must be decompressed
 * before conversion; the importer reads raw records only.
 */

#ifndef BTBSIM_TRACEIO_CHAMPSIM_H
#define BTBSIM_TRACEIO_CHAMPSIM_H

#include <cstdint>
#include <string>

#include "trace/instruction.h"

namespace btbsim::traceio {

/** ChampSim's on-disk `input_instr` record (x86, 64 bytes). */
struct ChampSimRecord
{
    std::uint64_t ip;
    std::uint8_t is_branch;
    std::uint8_t branch_taken;
    std::uint8_t destination_registers[2];
    std::uint8_t source_registers[4];
    std::uint64_t destination_memory[2];
    std::uint64_t source_memory[4];
};
static_assert(sizeof(ChampSimRecord) == 64,
              "ChampSimRecord must match ChampSim's 64-byte input_instr");

/** ChampSim x86 register numbers the branch heuristics key on. */
inline constexpr std::uint8_t kChampSimRegSp = 6;
inline constexpr std::uint8_t kChampSimRegFlags = 25;
inline constexpr std::uint8_t kChampSimRegIp = 26;

/**
 * Map one ChampSim record onto our abstract ISA. @p next_ip is the
 * following record's instruction pointer (the record's ground-truth
 * next_pc).
 */
Instruction champsimToInstruction(const ChampSimRecord &rec,
                                  std::uint64_t next_ip);

/** Summary of one conversion. */
struct ConvertStats
{
    std::uint64_t records = 0;
    std::uint64_t branches = 0;
    std::uint64_t taken_branches = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
};

/**
 * Convert the raw ChampSim trace at @p in_path into a `.btbt` file at
 * @p out_path named @p stream_name (no Program image — decode-based
 * prefill is disabled for imported traces). @p max_insts limits the
 * conversion when nonzero. Throws TraceError on I/O problems, an
 * empty input, or a size that is not a multiple of 64 bytes.
 */
ConvertStats convertChampSim(const std::string &in_path,
                             const std::string &out_path,
                             const std::string &stream_name,
                             std::uint64_t max_insts = 0);

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_CHAMPSIM_H
