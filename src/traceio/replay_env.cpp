#include "traceio/replay_env.h"

#include <cstdio>
#include <filesystem>
#include <mutex>
#include <set>

#include "common/env.h"
#include "traceio/format.h"
#include "traceio/trace_reader.h"

namespace btbsim::traceio {

std::string
replayDirFromEnv()
{
    return env::raw("BTBSIM_TRACE_DIR");
}

std::string
replayPath(const std::string &dir, const std::string &workload_name)
{
    if (dir.empty())
        return {};
    return (std::filesystem::path(dir) / (workload_name + kTraceExt))
        .string();
}

namespace {

/** Warn once per broken file, even across concurrent runMatrix workers. */
void
warnOnce(const std::string &path, const std::string &what)
{
    static std::mutex m;
    static std::set<std::string> seen;
    std::lock_guard<std::mutex> lk(m);
    if (seen.insert(path).second)
        std::fprintf(stderr,
                     "btbsim: cannot replay %s (%s); falling back to live "
                     "generation\n",
                     path.c_str(), what.c_str());
}

} // namespace

OpenedSource
openWorkloadSource(const WorkloadSpec &spec)
{
    OpenedSource out;
    const std::string path = replayPath(replayDirFromEnv(), spec.name);
    if (!path.empty()) {
        std::error_code ec;
        if (std::filesystem::exists(path, ec)) {
            try {
                out.source = std::make_unique<TraceReplaySource>(path);
                out.replay = true;
                out.trace_path = path;
                return out;
            } catch (const TraceError &e) {
                warnOnce(path, e.what());
            }
        }
    }
    out.source = makeWorkload(spec);
    return out;
}

} // namespace btbsim::traceio
