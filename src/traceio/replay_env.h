/**
 * @file
 * Environment-driven workload source selection.
 *
 * When BTBSIM_TRACE_DIR is set and holds `<workload-name>.btbt`, the
 * runner transparently replays the recorded trace instead of
 * regenerating and re-interpreting the synthetic program — same
 * instruction stream, same code image, a fraction of the setup and
 * delivery cost. Workloads without a recording fall back to live
 * generation, so partially recorded suites still run.
 */

#ifndef BTBSIM_TRACEIO_REPLAY_ENV_H
#define BTBSIM_TRACEIO_REPLAY_ENV_H

#include <memory>
#include <string>

#include "trace/suite.h"

namespace btbsim::traceio {

/** A workload source plus how it was produced. */
struct OpenedSource
{
    std::unique_ptr<TraceSource> source;
    bool replay = false;      ///< True when replaying a `.btbt` file.
    std::string trace_path;   ///< The replayed file (empty when live).
};

/** The replay directory from BTBSIM_TRACE_DIR; empty when unset. */
std::string replayDirFromEnv();

/**
 * Path a recording of @p workload_name lives at under @p dir
 * (`<dir>/<workload_name>.btbt`); empty when @p dir is empty.
 */
std::string replayPath(const std::string &dir,
                       const std::string &workload_name);

/**
 * Open @p spec: a TraceReplaySource when BTBSIM_TRACE_DIR holds a
 * recording of it, the live generated workload otherwise. A recording
 * that fails to open (corrupt, truncated, wrong version) is reported
 * to stderr once and falls back to live generation rather than
 * aborting a whole bench matrix.
 *
 * Each call constructs a fresh, self-contained source, so every
 * runMatrix worker gets its own instance — the thread-safety contract
 * of TraceSource.
 */
OpenedSource openWorkloadSource(const WorkloadSpec &spec);

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_REPLAY_ENV_H
