/**
 * @file
 * Process-wide, read-only cache of decoded `.btbt` trace chunks.
 *
 * A sharded sweep opens one TraceReplaySource per worker, and K workers
 * replaying the same recording would otherwise decode every chunk K
 * times. The SharedChunkCache keys decoded chunk buffers by (file
 * identity, chunk index) and hands out shared_ptr<const vector> views,
 * so each chunk of a file is decoded exactly once per process no matter
 * how many sources replay it concurrently.
 *
 * Sharing is safe because decoded buffers are immutable — with one
 * exception: the wrap-seam rewrite (TraceReplaySource::installFront)
 * mutates the final chunk's tail instruction. The replay source
 * therefore keeps its *seam chunk private* and shares only the others;
 * bit-identity of the delivered stream is unaffected either way because
 * decoding is deterministic.
 *
 * Concurrency: the first caller of get() for a key decodes outside the
 * lock while later callers wait on a condition variable; a decode
 * failure wakes the waiters, which retry the decode themselves (the
 * error may be caller-local, e.g. a closed mapping). Eviction is LRU by
 * byte budget and only drops the cache's own reference — sources
 * holding a buffer keep it alive via shared_ptr.
 *
 * Enabling: TraceReplaySource::Options::fromEnv() attaches the process
 * instance when BTBSIM_REPLAY_SHARED says so — explicitly ("1"/"0"),
 * or, when unset, whenever setProcessDefault(true) was called (the
 * shard pool / serve daemon turn it on).
 */

#ifndef BTBSIM_TRACEIO_CHUNK_CACHE_H
#define BTBSIM_TRACEIO_CHUNK_CACHE_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "trace/instruction.h"

namespace btbsim::traceio {

class SharedChunkCache
{
  public:
    using Buffer = std::shared_ptr<const std::vector<Instruction>>;
    /** Decodes one chunk into @p out; throws on any problem. */
    using Decoder = std::function<void(std::vector<Instruction> &out)>;

    /** @p budget_bytes caps the decoded bytes the cache itself pins. */
    explicit SharedChunkCache(std::uint64_t budget_bytes = 1ull << 30)
        : budget_bytes_(budget_bytes)
    {}

    /**
     * Stable identity of the trace file at @p path: canonical path plus
     * size and mtime (ns), so a rewritten file never aliases its
     * predecessor's chunks. Empty when the file cannot be stat'ed.
     */
    static std::string fileKey(const std::string &path);

    /**
     * The decoded buffer for (@p file_key, @p chunk): a cache hit, or a
     * decode via @p decode (exactly one concurrent caller decodes; the
     * rest wait). Throws whatever @p decode throws.
     */
    Buffer get(const std::string &file_key, std::size_t chunk,
               const Decoder &decode);

    struct CacheStats
    {
        std::uint64_t hits = 0;
        std::uint64_t misses = 0;   ///< Decodes performed.
        std::uint64_t evictions = 0;
        std::uint64_t bytes = 0;    ///< Decoded bytes currently pinned.
        std::uint64_t entries = 0;
    };

    CacheStats stats() const;

    /** Drop every entry (tests; sources keep their shared_ptrs). */
    void clear();

    /** The process-wide instance every replay source shares. */
    static SharedChunkCache &instance();

    /** Programmatic default for BTBSIM_REPLAY_SHARED-unset processes;
     *  the shard pool and the serve daemon set it to true. */
    static void setProcessDefault(bool on);
    static bool processDefault();

  private:
    struct Entry
    {
        Buffer buf;
        bool decoding = false;
        std::uint64_t last_use = 0;
    };

    using Key = std::pair<std::string, std::size_t>;

    void evictLocked();

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::map<Key, Entry> entries_;
    std::uint64_t budget_bytes_;
    std::uint64_t bytes_ = 0;
    std::uint64_t tick_ = 0;
    CacheStats stats_{};
};

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_CHUNK_CACHE_H
