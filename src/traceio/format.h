/**
 * @file
 * The `.btbt` binary trace format — constants, header, varint/delta codec
 * and static-Program serialization.
 *
 * On-disk layout (all integers little-endian; multi-byte fields use
 * LEB128 varints inside variable-length sections):
 *
 *   [ 0, 8)   magic "BTBTRACE"
 *   [ 8,12)   u32 format version (kFormatVersion)
 *   [12,16)   u32 header bytes (kHeaderBytes; offset of the name section)
 *   [16,24)   u64 instruction count
 *   [24,28)   u32 chunk count
 *   [28,32)   u32 chunk target (instructions per full chunk)
 *   [32,36)   u32 flags (bit 0: a Program image follows the name)
 *   [36,40)   u32 stream-name bytes
 *   [40,48)   u64 Program-image bytes (0 when absent)
 *   [48,52)   u32 Program-image CRC32
 *   [52,64)   reserved (zero)
 *   [64, ..)  stream name, then the serialized Program image,
 *             then chunk_count chunks.
 *
 * Each chunk is independently decodable (the delta codec restarts per
 * chunk, so chunks can be skipped or used as seek points):
 *
 *   u32 chunk magic "CHNK" | u32 record count | u32 payload bytes |
 *   u32 payload CRC32 | payload
 *
 * One record in a chunk payload:
 *
 *   u8  flags          bits 0-2 InstClass, 3-5 BranchClass,
 *                      bit 6 taken, bit 7 has mem_addr
 *   var zz(pc - expected)        expected = previous record's next_pc
 *                                (0 at chunk start)
 *   var zz(next_pc - (pc + 4))   0 for every fall-through
 *   u8  dst, u8 src1, u8 src2
 *   var zz(mem_addr - prev_mem)  only when bit 7 is set
 *
 * All deltas are computed modulo 2^64, so PC wraparound round-trips.
 */

#ifndef BTBSIM_TRACEIO_FORMAT_H
#define BTBSIM_TRACEIO_FORMAT_H

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "trace/instruction.h"

namespace btbsim {
struct Program;
}

namespace btbsim::traceio {

/** Any structural problem with a trace file: bad magic, truncation,
 *  CRC mismatch, unsupported version, codec corruption, I/O failure. */
class TraceError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

inline constexpr char kMagic[8] = {'B', 'T', 'B', 'T', 'R', 'A', 'C', 'E'};
inline constexpr std::uint32_t kFormatVersion = 1;
inline constexpr std::uint32_t kHeaderBytes = 64;
inline constexpr std::uint32_t kChunkMagic = 0x4b4e4843; // "CHNK"
inline constexpr std::uint32_t kDefaultChunkInsts = 1u << 16;
inline constexpr std::uint32_t kFlagHasProgram = 1u << 0;

/** File extension of recorded traces (with the dot). */
inline constexpr const char *kTraceExt = ".btbt";

/** CRC-32 (IEEE 802.3, polynomial 0xEDB88320) of @p n bytes. */
std::uint32_t crc32(const void *data, std::size_t n);

/** Little-endian u32 at @p p (caller guarantees 4 readable bytes). */
inline std::uint32_t
readLeU32(const std::uint8_t *p)
{
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

/** Little-endian u64 at @p p (caller guarantees 8 readable bytes). */
inline std::uint64_t
readLeU64(const std::uint8_t *p)
{
    return static_cast<std::uint64_t>(readLeU32(p)) |
           (static_cast<std::uint64_t>(readLeU32(p + 4)) << 32);
}

// ---------------------------------------------------------------------
// Varint / zigzag primitives.

/** Append @p v as a LEB128 varint (1-10 bytes). */
void putVarint(std::vector<std::uint8_t> &out, std::uint64_t v);

/** Zigzag-map a signed delta so small magnitudes encode small. */
constexpr std::uint64_t
zigzag(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzag(). */
constexpr std::int64_t
unzigzag(std::uint64_t v)
{
    return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

/** Append a zigzag-encoded signed delta. */
inline void
putZigzag(std::vector<std::uint8_t> &out, std::int64_t v)
{
    putVarint(out, zigzag(v));
}

/**
 * Bounds-checked cursor over a byte range. Every read throws TraceError
 * instead of walking off the end, so truncated files fail cleanly.
 */
class ByteReader
{
  public:
    ByteReader(const std::uint8_t *data, std::size_t size)
        : p_(data), end_(data + size)
    {}

    bool done() const { return p_ == end_; }
    std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }

    std::uint8_t
    u8()
    {
        if (p_ == end_)
            failTruncated();
        return *p_++;
    }

    std::uint64_t
    varint()
    {
        // Fast path: most deltas are sequential fall-throughs that fit
        // a single byte.
        if (p_ != end_ && *p_ < 0x80)
            return *p_++;
        return varintSlow();
    }

    std::int64_t zigzagVarint() { return unzigzag(varint()); }
    double f64();
    /** Raw byte view of length @p n (advances the cursor). */
    const std::uint8_t *bytes(std::size_t n);

  private:
    const std::uint8_t *p_;
    const std::uint8_t *end_;

    std::uint64_t varintSlow();
    [[noreturn]] static void failTruncated();
};

// ---------------------------------------------------------------------
// Fixed header.

/** Parsed fixed header plus derived offsets into the file. */
struct TraceHeader
{
    std::uint32_t version = kFormatVersion;
    std::uint64_t inst_count = 0;
    std::uint32_t chunk_count = 0;
    std::uint32_t chunk_target = kDefaultChunkInsts;
    std::uint32_t flags = 0;
    std::string name;

    std::uint64_t program_bytes = 0;
    std::uint32_t program_crc = 0;

    /** File offset of the Program image (== name end). */
    std::uint64_t program_offset = 0;
    /** File offset of the first chunk header. */
    std::uint64_t data_offset = 0;

    bool hasProgram() const { return flags & kFlagHasProgram; }
};

/**
 * Parse and validate the fixed header + name of a mapped trace file.
 * Throws TraceError on bad magic, truncation or a version newer than
 * kFormatVersion.
 */
TraceHeader parseHeader(const std::uint8_t *data, std::size_t size);

// ---------------------------------------------------------------------
// Record codec. The state restarts zeroed at every chunk boundary.

/** Delta-codec state threaded through one chunk's records. */
struct CodecState
{
    Addr expected_pc = 0; ///< Previous record's next_pc.
    Addr prev_mem = 0;    ///< Previous record's mem_addr.
};

/** Append one instruction to a chunk payload. */
void encodeRecord(std::vector<std::uint8_t> &out, CodecState &st,
                  const Instruction &in);

/** Decode one instruction; throws TraceError on truncation or invalid
 *  enum values. */
void decodeRecord(ByteReader &r, CodecState &st, Instruction &out);

/** Worst-case encoded size of one record: flags + two 10-byte varints
 *  + three register bytes + one 10-byte mem varint. */
inline constexpr std::size_t kMaxRecordBytes = 34;

/**
 * Decode a whole chunk payload (@p count records in @p size bytes) into
 * @p out. This is the replay hot path: records are read with unchecked
 * loads while at least kMaxRecordBytes remain (a record can never
 * consume more, even on garbage input), the tail with bounds-checked
 * reads. Throws TraceError on truncation, invalid enum values, or
 * payload bytes left over after the last record.
 */
void decodeChunkPayload(const std::uint8_t *data, std::size_t size,
                        std::uint32_t count, Instruction *out);

// ---------------------------------------------------------------------
// Static Program image.

/** Serialize @p prog (all fields, bit-exact doubles) into @p out. */
void serializeProgram(const Program &prog, std::vector<std::uint8_t> &out);

/**
 * Inverse of serializeProgram(). Throws TraceError on truncation,
 * invalid enum values, or a Program failing Program::validate().
 */
Program deserializeProgram(const std::uint8_t *data, std::size_t size);

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_FORMAT_H
