#include "traceio/chunk_cache.h"

#include <atomic>
#include <filesystem>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/stat.h>
#endif

namespace btbsim::traceio {

namespace {

std::atomic<bool> g_process_default{false};

} // namespace

std::string
SharedChunkCache::fileKey(const std::string &path)
{
    std::error_code ec;
    const std::filesystem::path canon =
        std::filesystem::weakly_canonical(path, ec);
    const std::string p = ec ? path : canon.string();
#if defined(__unix__) || defined(__APPLE__)
    struct stat st {};
    if (::stat(p.c_str(), &st) != 0)
        return {};
    return p + "|" + std::to_string(st.st_size) + "|" +
           std::to_string(static_cast<long long>(st.st_mtim.tv_sec)) + "." +
           std::to_string(static_cast<long long>(st.st_mtim.tv_nsec));
#else
    const auto size = std::filesystem::file_size(p, ec);
    if (ec)
        return {};
    const auto mtime = std::filesystem::last_write_time(p, ec);
    if (ec)
        return {};
    return p + "|" + std::to_string(size) + "|" +
           std::to_string(mtime.time_since_epoch().count());
#endif
}

SharedChunkCache::Buffer
SharedChunkCache::get(const std::string &file_key, std::size_t chunk,
                      const Decoder &decode)
{
    const Key key{file_key, chunk};
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        Entry &e = entries_[key];
        if (e.buf) {
            e.last_use = ++tick_;
            ++stats_.hits;
            return e.buf;
        }
        if (!e.decoding) {
            e.decoding = true;
            break;
        }
        // Another source is decoding this chunk; wait for it to publish
        // (or fail, in which case we retry the decode ourselves).
        cv_.wait(lk);
    }

    lk.unlock();
    auto decoded = std::make_shared<std::vector<Instruction>>();
    try {
        decode(*decoded);
    } catch (...) {
        lk.lock();
        entries_[key].decoding = false;
        cv_.notify_all();
        throw;
    }
    decoded->shrink_to_fit();
    const std::uint64_t cost = decoded->size() * sizeof(Instruction);

    lk.lock();
    Entry &e = entries_[key];
    e.decoding = false;
    e.buf = std::move(decoded);
    e.last_use = ++tick_;
    bytes_ += cost;
    ++stats_.misses;
    Buffer out = e.buf; // Grab before eviction may drop the map entry;
                        // the local shared_ptr keeps the buffer alive.
    evictLocked();
    cv_.notify_all();
    return out;
}

void
SharedChunkCache::evictLocked()
{
    while (bytes_ > budget_bytes_ && entries_.size() > 1) {
        auto victim = entries_.end();
        for (auto it = entries_.begin(); it != entries_.end(); ++it) {
            if (!it->second.buf || it->second.decoding)
                continue;
            if (victim == entries_.end() ||
                it->second.last_use < victim->second.last_use)
                victim = it;
        }
        if (victim == entries_.end())
            return;
        bytes_ -= victim->second.buf->size() * sizeof(Instruction);
        entries_.erase(victim);
        ++stats_.evictions;
    }
}

SharedChunkCache::CacheStats
SharedChunkCache::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    CacheStats s = stats_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

void
SharedChunkCache::clear()
{
    std::lock_guard<std::mutex> lk(mu_);
    entries_.clear();
    bytes_ = 0;
}

SharedChunkCache &
SharedChunkCache::instance()
{
    static SharedChunkCache cache;
    return cache;
}

void
SharedChunkCache::setProcessDefault(bool on)
{
    g_process_default.store(on, std::memory_order_relaxed);
}

bool
SharedChunkCache::processDefault()
{
    return g_process_default.load(std::memory_order_relaxed);
}

} // namespace btbsim::traceio
