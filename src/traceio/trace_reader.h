/**
 * @file
 * Reading `.btbt` traces: the mmap-backed TraceReplaySource plus the
 * inspection/verification helpers behind `btbsim-trace info|verify`.
 */

#ifndef BTBSIM_TRACEIO_TRACE_READER_H
#define BTBSIM_TRACEIO_TRACE_READER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "trace/program.h"
#include "trace/trace_source.h"
#include "traceio/chunk_cache.h"
#include "traceio/format.h"

namespace btbsim::traceio {

/** Read-only view of a whole file: mmap when possible, an owned buffer
 *  otherwise. Unmaps/frees on destruction. */
class MappedFile
{
  public:
    /** Throws TraceError when the file cannot be opened or read. */
    MappedFile(const std::string &path, bool try_mmap);
    ~MappedFile();

    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }
    bool mapped() const { return mapped_; }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool mapped_ = false;
    std::vector<std::uint8_t> owned_;
};

/**
 * Replays a recorded `.btbt` file as a TraceSource.
 *
 * The file is mmapped (falling back to a buffered read) and decoded one
 * chunk at a time. Traces whose decoded form fits the cache budget
 * (cache_budget_bytes, default BTBSIM_REPLAY_CACHE_MB or 256 MB) are
 * decoded at most once per chunk and delivered straight from the cached
 * buffers afterwards — wraps and resets cost nothing but a pointer
 * move, which is what makes replay delivery much faster than live
 * generation. Larger traces stream through a double buffer instead;
 * with background decode enabled a worker thread keeps the next chunk
 * ready while the simulator consumes the current one. Delivery is
 * deterministic in every mode.
 *
 * When the consumer outruns the recording the stream wraps to the first
 * chunk; if the recorded tail does not already jump to the recorded
 * head, the seam instruction is rewritten as a taken unconditional
 * direct branch so the stream stays control-flow consistent (see
 * pcgen's cursor assertion). Runs that must be bit-identical to the
 * live source therefore need a recording at least as long as the
 * instructions they consume.
 *
 * Instances are self-contained (own mapping, buffers and worker), so
 * concurrent runMatrix workers must each construct their own — sharing
 * one instance across threads is a data race by design (next() mutates
 * cursor state; no lock serializes callers).
 */
class TraceReplaySource : public TraceSource
{
  public:
    struct Options
    {
        bool use_mmap = true;
        bool background_decode = true;
        /** Decoded-chunk cache limit in bytes; 0 forces streaming. */
        std::uint64_t cache_budget_bytes = 256ull << 20;

        /** Process-wide decoded-chunk cache to share with other sources
         *  replaying the same file (chunk_cache.h); null keeps every
         *  buffer private. Only effective in cached mode; the seam
         *  chunk stays private regardless (its tail is rewritten). */
        SharedChunkCache *shared_cache = nullptr;

        /** BTBSIM_REPLAY_MMAP=0 / BTBSIM_REPLAY_ASYNC=0 disable the
         *  respective fast path; BTBSIM_REPLAY_CACHE_MB resizes the
         *  decoded-chunk cache; BTBSIM_REPLAY_SHARED attaches the
         *  process-wide SharedChunkCache ("1"/"0" forces, unset follows
         *  SharedChunkCache::processDefault()). */
        static Options fromEnv();
    };

    /** Opens and validates @p path; throws TraceError on any problem. */
    explicit TraceReplaySource(const std::string &path,
                               Options opt = Options::fromEnv());
    ~TraceReplaySource() override;

    const Instruction &next() override;
    void reset() override;
    std::string name() const override { return header_.name; }
    const Program *codeImage() const override
    {
        return program_ ? program_.get() : nullptr;
    }

    const TraceHeader &header() const { return header_; }
    std::uint64_t instructionCount() const { return header_.inst_count; }
    /** Times the stream wrapped back to the first chunk. */
    std::uint64_t wraps() const { return wraps_; }

  private:
    struct Chunk
    {
        std::uint64_t payload_offset = 0;
        std::uint32_t records = 0;
        std::uint32_t payload_bytes = 0;
        std::uint32_t crc = 0;
    };

    std::string path_;
    MappedFile map_;
    TraceHeader header_;
    std::vector<Chunk> chunks_;
    std::unique_ptr<Program> program_;
    /// The mapping is immutable, so each chunk's CRC is verified only
    /// on its first decode (wraps and resets then skip the scan).
    std::unique_ptr<std::atomic<bool>[]> crc_checked_;

    // Consumer-side cursor. cur_ points at the buffer being delivered:
    // a cache_ slot or shared-cache buffer in cached mode, stream_buf_
    // in streaming mode. Read-only: the only mutation (the wrap-seam
    // rewrite) goes through the always-private seam-chunk buffer.
    const std::vector<Instruction> *cur_ = nullptr;
    std::size_t pos_ = 0;
    std::size_t cur_chunk_ = 0; ///< Chunk index cur_ holds.
    std::size_t seam_chunk_ = 0; ///< Last non-empty chunk (wrap seam).
    Addr first_pc_ = 0;
    bool first_pc_set_ = false;
    std::uint64_t wraps_ = 0;

    // Decode-once cache (cached mode).
    bool cached_mode_ = false;
    std::vector<std::vector<Instruction>> cache_;
    std::vector<bool> cache_valid_;

    // Cross-source chunk sharing (cached mode; see chunk_cache.h).
    SharedChunkCache *shared_ = nullptr;
    std::string file_key_;
    std::vector<SharedChunkCache::Buffer> shared_slots_;

    // Streaming double buffer (oversized traces).
    std::vector<Instruction> stream_buf_;

    // Background decode (double buffering).
    bool async_ = false;
    std::thread worker_;
    std::mutex m_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::uint64_t gen_ = 0;       ///< Bumped by reset() to void stale work.
    std::size_t want_chunk_ = 0;  ///< Chunk the worker should decode.
    bool has_work_ = false;
    std::vector<Instruction> back_;
    bool back_ready_ = false;
    std::string error_;
    bool stop_ = false;

    void decodeChunk(std::size_t idx, std::vector<Instruction> &out) const;
    const std::vector<Instruction> &chunkBuffer(std::size_t idx);
    void installFront(std::size_t idx);
    void requestDecode(std::size_t idx);
    void advance();
    void workerLoop();
};

/** Integrity record of one chunk, as reported by inspectTrace(). */
struct ChunkInfo
{
    std::uint64_t offset = 0; ///< File offset of the chunk header.
    std::uint32_t records = 0;
    std::uint32_t payload_bytes = 0;
    bool crc_ok = true;
};

/** Everything `btbsim-trace info` prints about a file. */
struct TraceFileInfo
{
    TraceHeader header;
    std::uint64_t file_bytes = 0;
    bool program_crc_ok = true;
    std::vector<ChunkInfo> chunks;
};

/**
 * Walk the container structure of @p path; with @p check_crc also
 * verify the Program image and every chunk payload CRC. Structural
 * damage (bad magic, truncation, bad chunk framing) throws TraceError;
 * CRC mismatches are reported per chunk instead.
 */
TraceFileInfo inspectTrace(const std::string &path, bool check_crc);

/**
 * Full verification: container walk, all CRCs, and a complete decode
 * of every chunk. Returns a human-readable problem list (empty = ok);
 * never throws for file-content problems.
 */
std::vector<std::string> verifyTrace(const std::string &path);

} // namespace btbsim::traceio

#endif // BTBSIM_TRACEIO_TRACE_READER_H
