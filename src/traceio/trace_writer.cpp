#include "traceio/trace_writer.h"

#include <filesystem>

#include "trace/program.h"

namespace btbsim::traceio {

namespace {

void
putU32(std::vector<std::uint8_t> &out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v));
        v >>= 8;
    }
}

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    putU32(out, static_cast<std::uint32_t>(v));
    putU32(out, static_cast<std::uint32_t>(v >> 32));
}

} // namespace

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &stream_name,
                         const Program *program, Options opt)
    : path_(path), chunk_insts_(opt.chunk_insts ? opt.chunk_insts : 1)
{
    const std::filesystem::path p(path);
    if (p.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(p.parent_path(), ec);
    }
    os_.open(path, std::ios::binary | std::ios::trunc);
    if (!os_)
        throw TraceError("cannot create trace file " + path);

    std::vector<std::uint8_t> program_blob;
    if (program)
        serializeProgram(*program, program_blob);

    std::vector<std::uint8_t> header;
    header.reserve(kHeaderBytes + stream_name.size() + program_blob.size());
    header.insert(header.end(), kMagic, kMagic + sizeof(kMagic));
    putU32(header, kFormatVersion);
    putU32(header, kHeaderBytes);
    putU64(header, 0); // Instruction count, patched by finish().
    putU32(header, 0); // Chunk count, patched by finish().
    putU32(header, chunk_insts_);
    putU32(header, program ? kFlagHasProgram : 0);
    putU32(header, static_cast<std::uint32_t>(stream_name.size()));
    putU64(header, program_blob.size());
    putU32(header,
           program_blob.empty()
               ? 0
               : crc32(program_blob.data(), program_blob.size()));
    while (header.size() < kHeaderBytes)
        header.push_back(0);

    header.insert(header.end(), stream_name.begin(), stream_name.end());
    header.insert(header.end(), program_blob.begin(), program_blob.end());
    os_.write(reinterpret_cast<const char *>(header.data()),
              static_cast<std::streamsize>(header.size()));
    if (!os_)
        throw TraceError("I/O error writing trace header to " + path);
}

TraceWriter::~TraceWriter()
{
    try {
        finish();
    } catch (const TraceError &) {
        // Destructors must not throw; an explicit finish() reports errors.
    }
}

void
TraceWriter::append(const Instruction &in)
{
    encodeRecord(payload_, codec_, in);
    ++chunk_records_;
    ++inst_count_;
    if (chunk_records_ >= chunk_insts_)
        flushChunk();
}

void
TraceWriter::flushChunk()
{
    if (chunk_records_ == 0)
        return;
    std::vector<std::uint8_t> head;
    putU32(head, kChunkMagic);
    putU32(head, chunk_records_);
    putU32(head, static_cast<std::uint32_t>(payload_.size()));
    putU32(head, crc32(payload_.data(), payload_.size()));
    os_.write(reinterpret_cast<const char *>(head.data()),
              static_cast<std::streamsize>(head.size()));
    os_.write(reinterpret_cast<const char *>(payload_.data()),
              static_cast<std::streamsize>(payload_.size()));
    if (!os_)
        throw TraceError("I/O error writing trace chunk to " + path_);
    payload_.clear();
    codec_ = CodecState{};
    chunk_records_ = 0;
    ++chunk_count_;
}

void
TraceWriter::finish()
{
    if (finished_)
        return;
    flushChunk();

    std::vector<std::uint8_t> patch;
    putU64(patch, inst_count_);
    putU32(patch, chunk_count_);
    os_.seekp(16); // Offset of the instruction-count field.
    os_.write(reinterpret_cast<const char *>(patch.data()),
              static_cast<std::streamsize>(patch.size()));
    os_.close();
    finished_ = true;
    if (os_.fail())
        throw TraceError("I/O error finishing trace file " + path_);
}

} // namespace btbsim::traceio
