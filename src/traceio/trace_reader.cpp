#include "traceio/trace_reader.h"

#include <cstring>
#include <fstream>
#include <utility>

#include "common/env.h"
#include "obs/span.h"

#if defined(__unix__) || defined(__APPLE__)
#define BTBSIM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace btbsim::traceio {

// ---------------------------------------------------------------------
// MappedFile.

MappedFile::MappedFile(const std::string &path, bool try_mmap)
{
#if BTBSIM_HAVE_MMAP
    if (try_mmap) {
        const int fd = ::open(path.c_str(), O_RDONLY);
        if (fd < 0)
            throw TraceError("cannot open trace file " + path);
        struct stat st {};
        if (::fstat(fd, &st) == 0 && st.st_size > 0) {
            void *p = ::mmap(nullptr, static_cast<std::size_t>(st.st_size),
                             PROT_READ, MAP_PRIVATE, fd, 0);
            if (p != MAP_FAILED) {
                data_ = static_cast<const std::uint8_t *>(p);
                size_ = static_cast<std::size_t>(st.st_size);
                mapped_ = true;
            }
        }
        ::close(fd);
        if (mapped_)
            return;
        // Fall through to the buffered path (mmap unavailable or the
        // file is empty).
    }
#else
    (void)try_mmap;
#endif
    std::ifstream is(path, std::ios::binary);
    if (!is)
        throw TraceError("cannot open trace file " + path);
    owned_.assign(std::istreambuf_iterator<char>(is),
                  std::istreambuf_iterator<char>());
    if (is.bad())
        throw TraceError("I/O error reading trace file " + path);
    data_ = owned_.data();
    size_ = owned_.size();
}

MappedFile::~MappedFile()
{
#if BTBSIM_HAVE_MMAP
    if (mapped_)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
#endif
}

// ---------------------------------------------------------------------
// TraceReplaySource.

TraceReplaySource::Options
TraceReplaySource::Options::fromEnv()
{
    Options o;
    o.use_mmap = !env::disabled("BTBSIM_REPLAY_MMAP");
    o.background_decode = !env::disabled("BTBSIM_REPLAY_ASYNC");
    if (env::isSet("BTBSIM_REPLAY_CACHE_MB"))
        o.cache_budget_bytes = env::u64("BTBSIM_REPLAY_CACHE_MB", 0) << 20;
    const bool shared = env::isSet("BTBSIM_REPLAY_SHARED")
                            ? env::flag("BTBSIM_REPLAY_SHARED")
                            : SharedChunkCache::processDefault();
    if (shared)
        o.shared_cache = &SharedChunkCache::instance();
    return o;
}

TraceReplaySource::TraceReplaySource(const std::string &path, Options opt)
    : path_(path), map_(path, opt.use_mmap)
{
    obs::ObsSpan span("replay_open");
    header_ = parseHeader(map_.data(), map_.size());

    if (header_.hasProgram()) {
        const std::uint8_t *blob = map_.data() + header_.program_offset;
        const auto n = static_cast<std::size_t>(header_.program_bytes);
        if (crc32(blob, n) != header_.program_crc)
            throw TraceError(path + ": Program image CRC mismatch");
        program_ = std::make_unique<Program>(deserializeProgram(blob, n));
    }

    // Build the chunk directory with pure bounds checks; payload CRCs
    // are verified lazily as chunks are decoded.
    std::uint64_t off = header_.data_offset;
    std::uint64_t total = 0;
    chunks_.reserve(header_.chunk_count);
    for (std::uint32_t i = 0; i < header_.chunk_count; ++i) {
        if (map_.size() - off < 16)
            throw TraceError(path + ": truncated chunk header (chunk " +
                             std::to_string(i) + ")");
        const std::uint8_t *h = map_.data() + off;
        if (readLeU32(h) != kChunkMagic)
            throw TraceError(path + ": bad chunk magic (chunk " +
                             std::to_string(i) + ")");
        Chunk c;
        c.records = readLeU32(h + 4);
        c.payload_bytes = readLeU32(h + 8);
        c.crc = readLeU32(h + 12);
        c.payload_offset = off + 16;
        if (map_.size() - c.payload_offset < c.payload_bytes)
            throw TraceError(path + ": truncated chunk payload (chunk " +
                             std::to_string(i) + ")");
        off = c.payload_offset + c.payload_bytes;
        total += c.records;
        chunks_.push_back(c);
    }
    if (total != header_.inst_count)
        throw TraceError(path + ": chunk record counts disagree with the "
                         "header instruction count");
    if (header_.inst_count == 0)
        throw TraceError(path + ": trace holds no instructions");
    crc_checked_ = std::make_unique<std::atomic<bool>[]>(chunks_.size());

    // The wrap seam lives in the last non-empty chunk; its tail gets
    // rewritten, so that chunk always stays a private buffer.
    seam_chunk_ = chunks_.size() - 1;
    while (seam_chunk_ > 0 && chunks_[seam_chunk_].records == 0)
        --seam_chunk_;

    // Decode-once cache: when the whole decoded trace fits the budget,
    // every chunk is decoded at most once and wraps/resets are free.
    cached_mode_ = opt.cache_budget_bytes > 0 &&
                   header_.inst_count <=
                       opt.cache_budget_bytes / sizeof(Instruction);
    if (cached_mode_) {
        cache_.resize(chunks_.size());
        cache_valid_.assign(chunks_.size(), false);
        // Cross-source sharing: non-seam chunks come from the process
        // cache so K sources replaying one file decode each chunk once.
        if (opt.shared_cache) {
            file_key_ = SharedChunkCache::fileKey(path_);
            if (!file_key_.empty()) {
                shared_ = opt.shared_cache;
                shared_slots_.resize(chunks_.size());
            }
        }
    }

    // Streaming fallback for oversized traces. A single chunk replays
    // from one resident buffer; a worker would only re-decode it.
    async_ = !cached_mode_ && opt.background_decode && chunks_.size() > 1;
    if (async_)
        worker_ = std::thread([this] { workerLoop(); });

    reset();
}

TraceReplaySource::~TraceReplaySource()
{
    if (worker_.joinable()) {
        {
            std::lock_guard<std::mutex> lk(m_);
            stop_ = true;
        }
        cv_work_.notify_one();
        worker_.join();
    }
}

void
TraceReplaySource::decodeChunk(std::size_t idx,
                               std::vector<Instruction> &out) const
{
    obs::ObsSpan span("replay_decode");
    const Chunk &c = chunks_[idx];
    const std::uint8_t *payload = map_.data() + c.payload_offset;
    if (!crc_checked_[idx].load(std::memory_order_relaxed)) {
        if (crc32(payload, c.payload_bytes) != c.crc)
            throw TraceError(path_ + ": payload CRC mismatch (chunk " +
                             std::to_string(idx) + ")");
        crc_checked_[idx].store(true, std::memory_order_relaxed);
    }
    // Avoid resize()'s value-initialization when the buffer is reused at
    // the same size (every full chunk): decode overwrites each element.
    if (out.size() != c.records) {
        out.clear();
        out.resize(c.records);
    }
    try {
        decodeChunkPayload(payload, c.payload_bytes, c.records, out.data());
    } catch (const TraceError &e) {
        throw TraceError(path_ + ": " + e.what() + " (chunk " +
                         std::to_string(idx) + ")");
    }
}

const std::vector<Instruction> &
TraceReplaySource::chunkBuffer(std::size_t idx)
{
    if (shared_ && idx != seam_chunk_) {
        if (!shared_slots_[idx])
            shared_slots_[idx] = shared_->get(
                file_key_, idx, [this, idx](std::vector<Instruction> &out) {
                    decodeChunk(idx, out);
                });
        return *shared_slots_[idx];
    }
    if (!cache_valid_[idx]) {
        decodeChunk(idx, cache_[idx]);
        cache_valid_[idx] = true;
    }
    return cache_[idx];
}

void
TraceReplaySource::installFront(std::size_t idx)
{
    cur_chunk_ = idx;
    pos_ = 0;
    if (cur_->empty())
        return;
    if (!first_pc_set_) {
        first_pc_ = cur_->front().pc;
        first_pc_set_ = true;
    }

    // Control-flow-consistent wrap seam: the frontend asserts that each
    // instruction's next_pc matches the following pc, so the recorded
    // tail is rewritten into a jump back to the recorded head. The
    // rewrite is idempotent, so re-installing a cached chunk is fine.
    // The seam chunk is never shared across sources (chunkBuffer), so
    // this write cannot race another replay of the same file.
    if (idx == seam_chunk_) {
        std::vector<Instruction> &buf =
            cached_mode_ ? cache_[idx] : stream_buf_;
        Instruction &tail = buf.back();
        if (tail.next_pc != first_pc_) {
            tail.cls = InstClass::kBranch;
            tail.branch = BranchClass::kUncondDirect;
            tail.taken = true;
            tail.next_pc = first_pc_;
            tail.mem_addr = 0;
        }
    }
}

void
TraceReplaySource::requestDecode(std::size_t idx)
{
    {
        std::lock_guard<std::mutex> lk(m_);
        want_chunk_ = idx;
        has_work_ = true;
    }
    cv_work_.notify_one();
}

void
TraceReplaySource::advance()
{
    // Skip empty chunks, but never loop forever on an all-empty file
    // (the constructor rejects inst_count == 0).
    for (std::size_t guard = 0; guard <= chunks_.size(); ++guard) {
        std::size_t idx = cur_chunk_ + 1;
        if (idx == chunks_.size()) {
            idx = 0;
            ++wraps_;
        }
        if (cached_mode_) {
            cur_ = &chunkBuffer(idx);
        } else if (async_) {
            {
                std::unique_lock<std::mutex> lk(m_);
                cv_done_.wait(lk, [this] { return back_ready_; });
                if (!error_.empty())
                    throw TraceError(error_);
                stream_buf_.swap(back_);
                back_ready_ = false;
            }
            cur_ = &stream_buf_;
            requestDecode(idx + 1 == chunks_.size() ? 0 : idx + 1);
        } else {
            decodeChunk(idx, stream_buf_);
            cur_ = &stream_buf_;
        }
        installFront(idx);
        if (!cur_->empty())
            return;
    }
    throw TraceError(path_ + ": no decodable instructions");
}

const Instruction &
TraceReplaySource::next()
{
    if (pos_ >= cur_->size())
        advance();
    return (*cur_)[pos_++];
}

void
TraceReplaySource::reset()
{
    if (async_) {
        std::lock_guard<std::mutex> lk(m_);
        ++gen_; // Voids any in-flight decode of the old position.
        has_work_ = false;
        back_ready_ = false;
        error_.clear();
    }
    wraps_ = 0;
    if (cached_mode_) {
        cur_ = &chunkBuffer(0);
    } else {
        decodeChunk(0, stream_buf_);
        cur_ = &stream_buf_;
    }
    installFront(0);
    if (async_)
        requestDecode(chunks_.size() > 1 ? 1 : 0);
    while (cur_->empty())
        advance();
}

void
TraceReplaySource::workerLoop()
{
    // Persistent scratch: swapped with back_ on publish, so the three
    // buffers (front, back, scratch) rotate with stable capacity and
    // full-chunk decodes never reallocate or re-initialize.
    std::vector<Instruction> tmp;
    std::unique_lock<std::mutex> lk(m_);
    for (;;) {
        cv_work_.wait(lk, [this] { return has_work_ || stop_; });
        if (stop_)
            return;
        const std::size_t idx = want_chunk_;
        const std::uint64_t gen = gen_;
        has_work_ = false;
        lk.unlock();

        std::string err;
        try {
            decodeChunk(idx, tmp);
        } catch (const TraceError &e) {
            err = e.what();
        }

        lk.lock();
        if (gen == gen_) {
            back_.swap(tmp);
            error_ = std::move(err);
            back_ready_ = true;
            cv_done_.notify_one();
        }
    }
}

// ---------------------------------------------------------------------
// Inspection / verification.

TraceFileInfo
inspectTrace(const std::string &path, bool check_crc)
{
    MappedFile map(path, true);
    TraceFileInfo info;
    info.file_bytes = map.size();
    info.header = parseHeader(map.data(), map.size());

    if (check_crc && info.header.hasProgram()) {
        const std::uint8_t *blob = map.data() + info.header.program_offset;
        info.program_crc_ok =
            crc32(blob, static_cast<std::size_t>(info.header.program_bytes)) ==
            info.header.program_crc;
    }

    std::uint64_t off = info.header.data_offset;
    std::uint64_t total = 0;
    for (std::uint32_t i = 0; i < info.header.chunk_count; ++i) {
        if (map.size() - off < 16)
            throw TraceError(path + ": truncated chunk header (chunk " +
                             std::to_string(i) + ")");
        const std::uint8_t *h = map.data() + off;
        if (readLeU32(h) != kChunkMagic)
            throw TraceError(path + ": bad chunk magic (chunk " +
                             std::to_string(i) + ")");
        ChunkInfo c;
        c.offset = off;
        c.records = readLeU32(h + 4);
        c.payload_bytes = readLeU32(h + 8);
        const std::uint32_t crc = readLeU32(h + 12);
        if (map.size() - (off + 16) < c.payload_bytes)
            throw TraceError(path + ": truncated chunk payload (chunk " +
                             std::to_string(i) + ")");
        if (check_crc)
            c.crc_ok = crc32(map.data() + off + 16, c.payload_bytes) == crc;
        off += 16 + c.payload_bytes;
        total += c.records;
        info.chunks.push_back(c);
    }
    if (total != info.header.inst_count)
        throw TraceError(path + ": chunk record counts disagree with the "
                         "header instruction count");
    return info;
}

std::vector<std::string>
verifyTrace(const std::string &path)
{
    std::vector<std::string> problems;

    TraceFileInfo info;
    try {
        info = inspectTrace(path, true);
    } catch (const TraceError &e) {
        problems.push_back(e.what());
        return problems;
    }

    if (!info.program_crc_ok)
        problems.push_back(path + ": Program image CRC mismatch");

    MappedFile map(path, true);
    if (info.header.hasProgram() && info.program_crc_ok) {
        try {
            deserializeProgram(
                map.data() + info.header.program_offset,
                static_cast<std::size_t>(info.header.program_bytes));
        } catch (const TraceError &e) {
            problems.push_back(e.what());
        }
    }

    for (std::size_t i = 0; i < info.chunks.size(); ++i) {
        const ChunkInfo &c = info.chunks[i];
        if (!c.crc_ok) {
            problems.push_back(path + ": payload CRC mismatch (chunk " +
                               std::to_string(i) + ")");
            continue;
        }
        try {
            std::vector<Instruction> scratch(c.records);
            decodeChunkPayload(map.data() + c.offset + 16, c.payload_bytes,
                               c.records, scratch.data());
        } catch (const TraceError &e) {
            problems.push_back(std::string(e.what()) + " (chunk " +
                               std::to_string(i) + ")");
        }
    }
    return problems;
}

} // namespace btbsim::traceio
