#include "traceio/champsim.h"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iterator>

#include "traceio/trace_writer.h"

namespace btbsim::traceio {

namespace {

bool
hasReg(const std::uint8_t *regs, std::size_t n, std::uint8_t r)
{
    return std::find(regs, regs + n, r) != regs + n;
}

bool
hasOtherReg(const std::uint8_t *regs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] != 0 && regs[i] != kChampSimRegSp &&
            regs[i] != kChampSimRegFlags && regs[i] != kChampSimRegIp)
            return true;
    return false;
}

/** First nonzero address in @p mem, 0 when none. */
std::uint64_t
firstMem(const std::uint64_t *mem, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (mem[i] != 0)
            return mem[i];
    return 0;
}

/** First register that is not one of ChampSim's special x86 registers. */
std::uint8_t
firstGeneralReg(const std::uint8_t *regs, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] != 0 && regs[i] != kChampSimRegSp &&
            regs[i] != kChampSimRegFlags && regs[i] != kChampSimRegIp)
            return regs[i];
    return 0;
}

/** ChampSim tracereader's register-pattern branch classification. */
BranchClass
classifyBranch(const ChampSimRecord &rec)
{
    const auto *src = rec.source_registers;
    const auto *dst = rec.destination_registers;
    const bool reads_sp = hasReg(src, 4, kChampSimRegSp);
    const bool writes_sp = hasReg(dst, 2, kChampSimRegSp);
    const bool reads_flags = hasReg(src, 4, kChampSimRegFlags);
    const bool reads_ip = hasReg(src, 4, kChampSimRegIp);
    const bool writes_ip = hasReg(dst, 2, kChampSimRegIp);
    const bool reads_other = hasOtherReg(src, 4);

    if (!reads_sp && !reads_flags && writes_ip && !reads_other)
        return BranchClass::kUncondDirect;
    if (!reads_sp && !reads_flags && writes_ip && reads_other)
        return BranchClass::kIndirectJump;
    if (!reads_sp && reads_flags && writes_ip && !reads_other)
        return BranchClass::kCondDirect;
    // Calls read IP (to push the return address); returns do not —
    // without the reads_ip test every return would match the call rules.
    if (reads_sp && reads_ip && !reads_flags && writes_sp && writes_ip &&
        !reads_other)
        return BranchClass::kDirectCall;
    if (reads_sp && reads_ip && !reads_flags && writes_sp && writes_ip &&
        reads_other)
        return BranchClass::kIndirectCall;
    if (reads_sp && !reads_ip && writes_sp && writes_ip)
        return BranchClass::kReturn;
    // "BRANCH_OTHER": treat as an indirect jump — resolved from the
    // recorded target, never decodeable.
    return BranchClass::kIndirectJump;
}

} // namespace

Instruction
champsimToInstruction(const ChampSimRecord &rec, std::uint64_t next_ip)
{
    Instruction in;
    in.pc = rec.ip;
    in.next_pc = next_ip;

    const std::uint64_t load_addr = firstMem(rec.source_memory, 4);
    const std::uint64_t store_addr = firstMem(rec.destination_memory, 2);

    if (rec.is_branch) {
        in.branch = classifyBranch(rec);
        in.cls = InstClass::kBranch;
        // Unconditional branches are architecturally always taken even
        // when the tracer left branch_taken unset.
        in.taken = rec.branch_taken != 0 || isAlwaysTaken(in.branch);
        in.mem_addr = 0;
    } else if (store_addr != 0) {
        in.cls = InstClass::kStore;
        in.mem_addr = store_addr;
    } else if (load_addr != 0) {
        in.cls = InstClass::kLoad;
        in.mem_addr = load_addr;
    } else {
        in.cls = InstClass::kAlu;
    }

    in.dst = firstGeneralReg(rec.destination_registers, 2);
    in.src1 = rec.source_registers[0];
    in.src2 = rec.source_registers[1];
    return in;
}

ConvertStats
convertChampSim(const std::string &in_path, const std::string &out_path,
                const std::string &stream_name, std::uint64_t max_insts)
{
    std::ifstream is(in_path, std::ios::binary);
    if (!is)
        throw TraceError("cannot open ChampSim trace " + in_path);

    TraceWriter writer(out_path, stream_name, nullptr);
    ConvertStats cs;

    // One-record lookahead: a record's next_pc is the following ip.
    ChampSimRecord cur{};
    ChampSimRecord nxt{};
    if (!is.read(reinterpret_cast<char *>(&cur), sizeof(cur)))
        throw TraceError(in_path + ": empty or unreadable ChampSim trace (" +
                         "expected raw 64-byte input_instr records; "
                         "decompress .gz/.xz traces first)");

    auto emit = [&](const ChampSimRecord &rec, std::uint64_t next_ip) {
        const Instruction in = champsimToInstruction(rec, next_ip);
        writer.append(in);
        ++cs.records;
        if (in.isBranch()) {
            ++cs.branches;
            if (in.taken)
                ++cs.taken_branches;
        }
        if (in.isLoad())
            ++cs.loads;
        if (in.isStore())
            ++cs.stores;
    };

    while (is.read(reinterpret_cast<char *>(&nxt), sizeof(nxt))) {
        emit(cur, nxt.ip);
        cur = nxt;
        if (max_insts != 0 && cs.records >= max_insts) {
            writer.finish();
            return cs;
        }
    }
    if (is.gcount() != 0)
        throw TraceError(in_path + ": trailing partial record (file size is "
                         "not a multiple of 64 bytes)");
    // Last record: no successor, assume sequential fall-through.
    emit(cur, cur.ip + kInstBytes);
    writer.finish();
    return cs;
}

} // namespace btbsim::traceio
