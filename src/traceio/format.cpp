#include "traceio/format.h"

#include <array>
#include <bit>
#include <cstring>

#include "trace/program.h"

namespace btbsim::traceio {

namespace {

// Slicing-by-8 CRC-32: eight lookup tables let the hot loop fold eight
// bytes per iteration, which keeps CRC checks off the replay critical
// path (the byte-at-a-time loop caps decode around 400 MB/s).
constexpr std::array<std::array<std::uint32_t, 256>, 8>
makeCrcTables()
{
    std::array<std::array<std::uint32_t, 256>, 8> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
        t[0][i] = c;
    }
    for (std::uint32_t i = 0; i < 256; ++i)
        for (std::size_t s = 1; s < 8; ++s)
            t[s][i] = (t[s - 1][i] >> 8) ^ t[0][t[s - 1][i] & 0xff];
    return t;
}

constexpr auto kCrcTables = makeCrcTables();

} // namespace

std::uint32_t
crc32(const void *data, std::size_t n)
{
    const auto *p = static_cast<const std::uint8_t *>(data);
    const auto &t = kCrcTables;
    std::uint32_t c = 0xffffffffu;
    while (n >= 8) {
        c ^= readLeU32(p);
        const std::uint32_t hi = readLeU32(p + 4);
        c = t[7][c & 0xff] ^ t[6][(c >> 8) & 0xff] ^ t[5][(c >> 16) & 0xff] ^
            t[4][c >> 24] ^ t[3][hi & 0xff] ^ t[2][(hi >> 8) & 0xff] ^
            t[1][(hi >> 16) & 0xff] ^ t[0][hi >> 24];
        p += 8;
        n -= 8;
    }
    for (std::size_t i = 0; i < n; ++i)
        c = t[0][(c ^ p[i]) & 0xff] ^ (c >> 8);
    return c ^ 0xffffffffu;
}

void
putVarint(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<std::uint8_t>(v));
}

void
ByteReader::failTruncated()
{
    throw TraceError("trace data truncated (byte read past end)");
}

std::uint64_t
ByteReader::varintSlow()
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 64; shift += 7) {
        const std::uint8_t b = u8();
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throw TraceError("trace data corrupt (varint longer than 10 bytes)");
}

double
ByteReader::f64()
{
    const std::uint8_t *p = bytes(8);
    return std::bit_cast<double>(readLeU64(p));
}

const std::uint8_t *
ByteReader::bytes(std::size_t n)
{
    if (remaining() < n)
        throw TraceError("trace data truncated (raw read past end)");
    const std::uint8_t *p = p_;
    p_ += n;
    return p;
}

TraceHeader
parseHeader(const std::uint8_t *data, std::size_t size)
{
    if (size < kHeaderBytes)
        throw TraceError("not a .btbt trace: file shorter than the " +
                         std::to_string(kHeaderBytes) + "-byte header (" +
                         std::to_string(size) + " bytes)");
    if (std::memcmp(data, kMagic, sizeof(kMagic)) != 0)
        throw TraceError("not a .btbt trace: bad magic");

    TraceHeader h;
    h.version = readLeU32(data + 8);
    if (h.version == 0 || h.version > kFormatVersion)
        throw TraceError("unsupported .btbt format version " +
                         std::to_string(h.version) + " (this build reads <= " +
                         std::to_string(kFormatVersion) + ")");
    const std::uint32_t header_bytes = readLeU32(data + 12);
    if (header_bytes < kHeaderBytes || header_bytes > size)
        throw TraceError("corrupt .btbt header: header size " +
                         std::to_string(header_bytes) + " out of range");
    h.inst_count = readLeU64(data + 16);
    h.chunk_count = readLeU32(data + 24);
    h.chunk_target = readLeU32(data + 28);
    h.flags = readLeU32(data + 32);
    const std::uint32_t name_bytes = readLeU32(data + 36);
    h.program_bytes = readLeU64(data + 40);
    h.program_crc = readLeU32(data + 48);

    if (name_bytes > size - header_bytes)
        throw TraceError("truncated .btbt: name extends past end of file");
    h.name.assign(reinterpret_cast<const char *>(data) + header_bytes,
                  name_bytes);
    h.program_offset = header_bytes + name_bytes;
    if (h.program_bytes > size - h.program_offset)
        throw TraceError("truncated .btbt: Program image extends past end "
                         "of file");
    if (h.hasProgram() != (h.program_bytes != 0))
        throw TraceError("corrupt .btbt header: Program flag and image size "
                         "disagree");
    h.data_offset = h.program_offset + h.program_bytes;
    return h;
}

void
encodeRecord(std::vector<std::uint8_t> &out, CodecState &st,
             const Instruction &in)
{
    const bool has_mem = in.mem_addr != 0;
    std::uint8_t flags = static_cast<std::uint8_t>(in.cls) |
                         (static_cast<std::uint8_t>(in.branch) << 3);
    if (in.taken)
        flags |= 0x40;
    if (has_mem)
        flags |= 0x80;
    out.push_back(flags);

    putZigzag(out, static_cast<std::int64_t>(in.pc - st.expected_pc));
    putZigzag(out,
              static_cast<std::int64_t>(in.next_pc - (in.pc + kInstBytes)));
    out.push_back(in.dst);
    out.push_back(in.src1);
    out.push_back(in.src2);
    if (has_mem) {
        putZigzag(out, static_cast<std::int64_t>(in.mem_addr - st.prev_mem));
        st.prev_mem = in.mem_addr;
    }
    st.expected_pc = in.next_pc;
}

void
decodeRecord(ByteReader &r, CodecState &st, Instruction &out)
{
    const std::uint8_t flags = r.u8();
    const std::uint8_t cls = flags & 0x7;
    const std::uint8_t branch = (flags >> 3) & 0x7;
    if (cls > static_cast<std::uint8_t>(InstClass::kBranch) ||
        branch > static_cast<std::uint8_t>(BranchClass::kIndirectCall))
        throw TraceError("trace data corrupt (invalid instruction class)");
    out.cls = static_cast<InstClass>(cls);
    out.branch = static_cast<BranchClass>(branch);
    out.taken = flags & 0x40;

    out.pc = st.expected_pc + static_cast<Addr>(r.zigzagVarint());
    out.next_pc = out.pc + kInstBytes + static_cast<Addr>(r.zigzagVarint());
    out.dst = r.u8();
    out.src1 = r.u8();
    out.src2 = r.u8();
    if (flags & 0x80) {
        out.mem_addr = st.prev_mem + static_cast<Addr>(r.zigzagVarint());
        st.prev_mem = out.mem_addr;
    } else {
        out.mem_addr = 0;
    }
    st.expected_pc = out.next_pc;
}

namespace {

/** Byte-at-a-time continuation of varintUnchecked() for the rare 9- and
 *  10-byte encodings (the caller guarantees 10 readable bytes). */
[[gnu::cold]] std::uint64_t
varintUncheckedLong(const std::uint8_t *&p)
{
    std::uint64_t v = 0;
    for (unsigned shift = 0; shift < 70; shift += 7) {
        const std::uint64_t b = *p++;
        v |= (b & 0x7f) << shift;
        if (!(b & 0x80))
            return v;
    }
    throw TraceError("trace data corrupt (varint longer than 10 bytes)");
}

/**
 * Unchecked LEB128 read — the decode hot path. The caller guarantees at
 * least 10 readable bytes; consumption is capped at 10 even when the
 * payload is garbage with a valid CRC.
 *
 * Multi-byte varints are length-decided by the data (taken-branch and
 * memory deltas), so that path is branchless: one unaligned 8-byte
 * load, find the terminator with countr_zero, compact the 7-bit groups
 * with a fixed mask/shift/or tree. Only the common 1-byte case keeps a
 * (well-predicted) branch.
 */
inline std::uint64_t
varintUnchecked(const std::uint8_t *&p)
{
    if (*p < 0x80)
        return *p++;

    const std::uint64_t w = readLeU64(p);
    const std::uint64_t stop = ~w & 0x8080808080808080ull;
    if (stop == 0)
        return varintUncheckedLong(p); // 9+ bytes: off the fast path.
    const unsigned nbytes = (static_cast<unsigned>(std::countr_zero(stop)) >> 3) + 1;

    const std::uint64_t x = w & 0x7f7f7f7f7f7f7f7full;
    std::uint64_t v = (x & 0x7f) | ((x & 0x7f00) >> 1) |
                      ((x & 0x7f0000) >> 2) | ((x & 0x7f000000) >> 3) |
                      ((x & 0x7f00000000) >> 4) |
                      ((x & 0x7f0000000000) >> 5) |
                      ((x & 0x7f000000000000) >> 6) |
                      ((x & 0x7f00000000000000) >> 7);
    v &= (std::uint64_t{1} << (7 * nbytes)) - 1; // nbytes <= 8, shift < 64.
    p += nbytes;
    return v;
}

inline std::int64_t
zigzagUnchecked(const std::uint8_t *&p)
{
    return unzigzag(varintUnchecked(p));
}

} // namespace

void
decodeChunkPayload(const std::uint8_t *data, std::size_t size,
                   std::uint32_t count, Instruction *out)
{
    const std::uint8_t *p = data;
    const std::uint8_t *const end = data + size;
    CodecState st;

    std::uint32_t i = 0;
    for (; i < count && static_cast<std::size_t>(end - p) >= kMaxRecordBytes;
         ++i) {
        Instruction &o = out[i];
        const std::uint8_t flags = *p++;
        const std::uint8_t cls = flags & 0x7;
        const std::uint8_t branch = (flags >> 3) & 0x7;
        if (cls > static_cast<std::uint8_t>(InstClass::kBranch) ||
            branch > static_cast<std::uint8_t>(BranchClass::kIndirectCall))
            throw TraceError("trace data corrupt (invalid instruction "
                             "class)");
        o.cls = static_cast<InstClass>(cls);
        o.branch = static_cast<BranchClass>(branch);
        o.taken = flags & 0x40;
        o.pc = st.expected_pc + static_cast<Addr>(zigzagUnchecked(p));
        o.next_pc = o.pc + kInstBytes + static_cast<Addr>(zigzagUnchecked(p));
        o.dst = *p++;
        o.src1 = *p++;
        o.src2 = *p++;
        if (flags & 0x80) {
            o.mem_addr = st.prev_mem + static_cast<Addr>(zigzagUnchecked(p));
            st.prev_mem = o.mem_addr;
        } else {
            o.mem_addr = 0;
        }
        st.expected_pc = o.next_pc;
    }

    // Checked tail: fewer than kMaxRecordBytes left.
    ByteReader r(p, static_cast<std::size_t>(end - p));
    for (; i < count; ++i)
        decodeRecord(r, st, out[i]);
    if (!r.done())
        throw TraceError("trace data corrupt (trailing bytes after the "
                         "last record)");
}

// ---------------------------------------------------------------------
// Program image.

namespace {

void
putF64(std::vector<std::uint8_t> &out, double d)
{
    std::uint64_t bits = std::bit_cast<std::uint64_t>(d);
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(bits));
        bits >>= 8;
    }
}

void
putString(std::vector<std::uint8_t> &out, const std::string &s)
{
    putVarint(out, s.size());
    out.insert(out.end(), s.begin(), s.end());
}

template <typename T>
T
checkedEnum(std::uint8_t raw, T max, const char *what)
{
    if (raw > static_cast<std::uint8_t>(max))
        throw TraceError(std::string("corrupt Program image (invalid ") +
                         what + ")");
    return static_cast<T>(raw);
}

std::size_t
checkedCount(ByteReader &r, const char *what)
{
    const std::uint64_t n = r.varint();
    // Every element is at least one byte, so a count larger than the
    // remaining payload is corruption, not a huge-but-valid table.
    if (n > r.remaining())
        throw TraceError(std::string("corrupt Program image (") + what +
                         " count exceeds image size)");
    return static_cast<std::size_t>(n);
}

} // namespace

void
serializeProgram(const Program &prog, std::vector<std::uint8_t> &out)
{
    putString(out, prog.name);
    putVarint(out, prog.code_base);

    putVarint(out, prog.insts.size());
    for (const StaticInst &si : prog.insts) {
        out.push_back(static_cast<std::uint8_t>(si.cls));
        out.push_back(static_cast<std::uint8_t>(si.branch));
        out.push_back(si.dst);
        out.push_back(si.src1);
        out.push_back(si.src2);
        putVarint(out, si.target);
        putZigzag(out, si.behavior);
        putZigzag(out, si.stream);
    }

    putVarint(out, prog.conds.size());
    for (const CondBehavior &c : prog.conds) {
        out.push_back(static_cast<std::uint8_t>(c.kind));
        putF64(out, c.bias);
        putVarint(out, c.min_trips);
        putVarint(out, c.max_trips);
        putVarint(out, c.pattern);
        out.push_back(c.pattern_len);
    }

    putVarint(out, prog.indirects.size());
    for (const IndirectBehavior &ib : prog.indirects) {
        out.push_back(static_cast<std::uint8_t>(ib.kind));
        putF64(out, ib.skew);
        putVarint(out, ib.burst);
        putVarint(out, ib.targets.size());
        for (std::uint32_t t : ib.targets)
            putVarint(out, t);
        putVarint(out, ib.weights.size());
        for (double w : ib.weights)
            putF64(out, w);
    }

    putVarint(out, prog.streams.size());
    for (const MemStream &ms : prog.streams) {
        out.push_back(static_cast<std::uint8_t>(ms.kind));
        putVarint(out, ms.base);
        putVarint(out, ms.footprint);
        putZigzag(out, ms.stride);
    }

    putVarint(out, prog.entries.size());
    for (std::uint32_t e : prog.entries)
        putVarint(out, e);
    putVarint(out, prog.entry_weights.size());
    for (double w : prog.entry_weights)
        putF64(out, w);
}

Program
deserializeProgram(const std::uint8_t *data, std::size_t size)
{
    ByteReader r(data, size);
    Program prog;

    const std::size_t name_len = checkedCount(r, "name");
    const std::uint8_t *name = r.bytes(name_len);
    prog.name.assign(reinterpret_cast<const char *>(name), name_len);
    prog.code_base = r.varint();

    prog.insts.resize(checkedCount(r, "instruction"));
    for (StaticInst &si : prog.insts) {
        si.cls = checkedEnum(r.u8(), InstClass::kBranch, "InstClass");
        si.branch =
            checkedEnum(r.u8(), BranchClass::kIndirectCall, "BranchClass");
        si.dst = r.u8();
        si.src1 = r.u8();
        si.src2 = r.u8();
        si.target = static_cast<std::uint32_t>(r.varint());
        si.behavior = static_cast<std::int32_t>(r.zigzagVarint());
        si.stream = static_cast<std::int32_t>(r.zigzagVarint());
    }

    prog.conds.resize(checkedCount(r, "conditional-behaviour"));
    for (CondBehavior &c : prog.conds) {
        c.kind = checkedEnum(r.u8(), CondBehavior::Kind::kPattern,
                             "CondBehavior kind");
        c.bias = r.f64();
        c.min_trips = static_cast<std::uint32_t>(r.varint());
        c.max_trips = static_cast<std::uint32_t>(r.varint());
        c.pattern = r.varint();
        c.pattern_len = r.u8();
    }

    prog.indirects.resize(checkedCount(r, "indirect-behaviour"));
    for (IndirectBehavior &ib : prog.indirects) {
        ib.kind = checkedEnum(r.u8(), IndirectBehavior::Kind::kBursty,
                              "IndirectBehavior kind");
        ib.skew = r.f64();
        ib.burst = static_cast<std::uint32_t>(r.varint());
        ib.targets.resize(checkedCount(r, "indirect-target"));
        for (std::uint32_t &t : ib.targets)
            t = static_cast<std::uint32_t>(r.varint());
        ib.weights.resize(checkedCount(r, "indirect-weight"));
        for (double &w : ib.weights)
            w = r.f64();
    }

    prog.streams.resize(checkedCount(r, "memory-stream"));
    for (MemStream &ms : prog.streams) {
        ms.kind =
            checkedEnum(r.u8(), MemStream::Kind::kRandom, "MemStream kind");
        ms.base = r.varint();
        ms.footprint = r.varint();
        ms.stride = r.zigzagVarint();
    }

    prog.entries.resize(checkedCount(r, "entry"));
    for (std::uint32_t &e : prog.entries)
        e = static_cast<std::uint32_t>(r.varint());
    prog.entry_weights.resize(checkedCount(r, "entry-weight"));
    for (double &w : prog.entry_weights)
        w = r.f64();

    if (!r.done())
        throw TraceError("corrupt Program image (trailing bytes)");
    if (const std::string err = prog.validate(); !err.empty())
        throw TraceError("corrupt Program image (" + err + ")");
    return prog;
}

} // namespace btbsim::traceio
