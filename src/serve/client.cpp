#include "serve/client.h"

#include <stdexcept>

#include "exp/run_cache.h"

namespace btbsim::serve {

namespace {

std::size_t
fieldCount(const obs::JsonValue &v, const char *key)
{
    return static_cast<std::size_t>(v.at(key).asNumber());
}

BatchOutcome
outcomeFromEnd(const obs::JsonValue &v)
{
    BatchOutcome o;
    o.batch_id = v.at("batch_id").asString();
    o.total = fieldCount(v, "total");
    o.ok = fieldCount(v, "ok");
    o.cached = fieldCount(v, "cached");
    o.failed = fieldCount(v, "failed");
    o.skipped = fieldCount(v, "skipped");
    o.retries = fieldCount(v, "retries");
    o.resumed = fieldCount(v, "resumed");
    o.wall_seconds = v.at("wall_seconds").asNumber();
    o.shards = fieldCount(v, "shards");
    return o;
}

} // namespace

bool
ServeClient::connect()
{
    if (conn_.valid())
        return true;
    conn_ = unixConnect(socket_path_);
    return conn_.valid();
}

void
ServeClient::ensureConnected()
{
    if (!connect())
        throw std::runtime_error("serve client: cannot connect to " +
                                 socket_path_);
}

obs::JsonValue
ServeClient::readRecord()
{
    std::string line;
    if (!conn_.recvLine(&line))
        throw std::runtime_error(
            "serve client: connection closed by daemon");
    obs::JsonValue v = obs::parseJson(line);
    const obs::JsonValue *type = v.find("type");
    if (!type)
        throw std::runtime_error("serve client: record without type: " +
                                 line);
    if (type->str == "error")
        throw std::runtime_error("serve daemon: " +
                                 v.at("message").asString());
    return v;
}

int
ServeClient::ping()
{
    ensureConnected();
    Request r;
    r.op = "ping";
    if (!conn_.sendLine(requestToLine(r)))
        throw std::runtime_error("serve client: send failed");
    const obs::JsonValue v = readRecord();
    if (v.at("type").asString() != "pong")
        throw std::runtime_error("serve client: expected pong");
    return static_cast<int>(v.at("protocol").asNumber());
}

BatchOutcome
ServeClient::submit(
    const BatchSpec &batch,
    const std::function<void(const obs::JsonValue &)> &on_point)
{
    ensureConnected();
    Request r;
    r.op = "submit";
    r.batch = batch;
    r.has_batch = true;
    if (!conn_.sendLine(requestToLine(r)))
        throw std::runtime_error("serve client: send failed");

    bool dedup = false;
    std::string batch_id;
    for (;;) {
        const obs::JsonValue v = readRecord();
        const std::string &type = v.at("type").asString();
        if (type == "batch") {
            // The submission ack; later "batch" records (none today)
            // would be progress refreshes.
            batch_id = v.at("batch_id").asString();
            const obs::JsonValue *d = v.find("dedup");
            dedup = d && d->boolean;
        } else if (type == "point") {
            if (on_point)
                on_point(v);
        } else if (type == "batch_end") {
            BatchOutcome o = outcomeFromEnd(v);
            o.dedup = dedup;
            return o;
        } else {
            throw std::runtime_error(
                "serve client: unexpected record type \"" + type +
                "\" while streaming");
        }
    }
}

BatchStatus
ServeClient::status(const std::string &batch_id)
{
    ensureConnected();
    Request r;
    r.op = "status";
    r.batch_id = batch_id;
    if (!conn_.sendLine(requestToLine(r)))
        throw std::runtime_error("serve client: send failed");
    const obs::JsonValue v = readRecord();
    if (v.at("type").asString() != "batch")
        throw std::runtime_error("serve client: expected batch record");
    BatchStatus s;
    s.batch_id = v.at("batch_id").asString();
    s.state = v.at("state").asString();
    s.total = fieldCount(v, "total");
    s.done = fieldCount(v, "done");
    s.ok = fieldCount(v, "ok");
    s.cached = fieldCount(v, "cached");
    s.failed = fieldCount(v, "failed");
    s.skipped = fieldCount(v, "skipped");
    return s;
}

bool
ServeClient::results(const std::string &batch_id,
                     std::vector<ResultPoint> *out, BatchOutcome *end)
{
    ensureConnected();
    Request r;
    r.op = "results";
    r.batch_id = batch_id;
    if (!conn_.sendLine(requestToLine(r)))
        throw std::runtime_error("serve client: send failed");

    std::vector<ResultPoint> points;
    for (;;) {
        const obs::JsonValue v = readRecord();
        const std::string &type = v.at("type").asString();
        if (type == "batch") {
            // Still queued/running: not ready.
            return false;
        }
        if (type == "result") {
            ResultPoint p;
            p.digest = v.at("digest").asString();
            p.config = v.at("config").asString();
            p.workload = v.at("workload").asString();
            p.status = v.at("status").asString();
            p.stats = exp::statsFromJson(v.at("stats"));
            points.push_back(std::move(p));
        } else if (type == "batch_end") {
            if (out)
                *out = std::move(points);
            if (end)
                *end = outcomeFromEnd(v);
            return true;
        } else {
            throw std::runtime_error(
                "serve client: unexpected record type \"" + type +
                "\" in results");
        }
    }
}

bool
ServeClient::shutdown()
{
    ensureConnected();
    Request r;
    r.op = "shutdown";
    if (!conn_.sendLine(requestToLine(r)))
        return false;
    try {
        return readRecord().at("type").asString() == "shutdown";
    } catch (const std::exception &) {
        return false;
    }
}

} // namespace btbsim::serve
