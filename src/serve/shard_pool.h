/**
 * @file
 * In-process shard pool: N persistent worker threads, each standing in
 * for one simulation shard, implementing exp::SweepExecutor so the
 * experiment engine schedules sweep points onto the pool instead of
 * spawning fresh threads per sweep.
 *
 * Why a pool instead of Experiment's own thread-per-sweep workers:
 *
 *  - the btbsim-serve daemon runs many batches over its lifetime; the
 *    shards (and their warmed allocator arenas) persist across them;
 *  - the pool is the natural place to account per-shard utilization
 *    (jobs, busy seconds) across a whole serving session;
 *  - pairing with the SharedChunkCache (traceio/chunk_cache.h): shards
 *    replaying the same .btbt recording decode each chunk once.
 *
 * Benches opt in with BTBSIM_SHARDS=N (see fromEnv/applyEnvPool):
 * bench_common routes every sweep through the process pool and the
 * shared chunk cache, with per-shard utilization in the result JSON.
 *
 * run() dispatches one worker invocation per shard and blocks until
 * every shard returns; concurrent run() calls are serialized (the
 * daemon runs one batch at a time — parallelism lives *inside* a batch,
 * across its points).
 */

#ifndef BTBSIM_SERVE_SHARD_POOL_H
#define BTBSIM_SERVE_SHARD_POOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "exp/experiment.h"

namespace btbsim::serve {

class ShardPool : public exp::SweepExecutor
{
  public:
    /** @p shards == 0 resolves to hardware concurrency. */
    explicit ShardPool(unsigned shards);
    ~ShardPool() override;

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    unsigned shards() const
    {
        return static_cast<unsigned>(threads_.size());
    }

    // exp::SweepExecutor: a persistent pool always runs at its own
    // width (an idle shard costs one no-op worker call).
    unsigned width(unsigned /*requested*/) const override
    {
        return shards();
    }
    void run(const std::function<void(unsigned slot)> &worker) override;

    /** Lifetime totals per shard, across every run() so far. */
    struct ShardStats
    {
        std::uint64_t jobs = 0;     ///< run() dispatches executed.
        double busy_seconds = 0.0;  ///< Host time inside workers.
    };
    std::vector<ShardStats> stats() const;

    /**
     * The process-wide pool sized by BTBSIM_SHARDS: nullptr when the
     * knob is 0/unset, otherwise a pool created on first call (later
     * changes to the knob are ignored). Creating the pool also turns on
     * the shared replay-chunk cache
     * (traceio::SharedChunkCache::setProcessDefault).
     */
    static ShardPool *fromEnv();

  private:
    void shardLoop(unsigned id);

    mutable std::mutex mu_;
    std::condition_variable cv_work_;
    std::condition_variable cv_done_;
    std::mutex run_mu_; ///< Serializes concurrent run() calls.

    const std::function<void(unsigned)> *job_ = nullptr;
    std::uint64_t generation_ = 0; ///< Bumped per run() dispatch.
    unsigned remaining_ = 0;       ///< Shards still inside job_.
    bool stop_ = false;

    std::vector<ShardStats> stats_;
    std::vector<std::thread> threads_;
};

/**
 * Bench/tool opt-in: when BTBSIM_SHARDS names a pool, attach it as
 * @p opt's executor (and leave @p opt untouched otherwise). Returns the
 * pool so callers can report per-shard utilization.
 */
ShardPool *applyEnvPool(exp::ExperimentOptions &opt);

/**
 * Drop-in runMatrix() (sim/runner.h) that runs the sweep on the
 * env-configured shard pool when BTBSIM_SHARDS is set, with identical
 * results and failure semantics either way.
 */
std::vector<SimStats> runMatrixPooled(const std::vector<CpuConfig> &configs,
                                      const std::vector<WorkloadSpec> &suite,
                                      const RunOptions &opt);

} // namespace btbsim::serve

#endif // BTBSIM_SERVE_SHARD_POOL_H
