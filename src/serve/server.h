/**
 * @file
 * The btbsim-serve daemon core: accepts config batches over a Unix
 * domain socket (serve/protocol.h), runs them on the in-process shard
 * pool, and streams per-point progress and results back to clients.
 *
 * Design:
 *
 *  - One accept thread; one short-lived thread per client connection.
 *    A connection may issue any number of requests; a "submit" also
 *    subscribes it to that batch's live stream.
 *  - One batch-runner thread executes queued batches strictly in
 *    submission order — parallelism lives INSIDE a batch, across its
 *    points, on the ShardPool (and through the shared chunk cache).
 *  - Batches are content-addressed (batch_id == SHA-256 of the batch's
 *    canonical JSON). Resubmitting an identical batch attaches to the
 *    running/finished one (dedup) instead of re-running it; the run
 *    cache additionally dedups point-by-point against PRIOR batches
 *    that shared any (config, workload, run) points.
 *  - Crash recovery: every batch journals per-point completion to
 *    <cache_dir>/journal/serve-<batch_id>.jsonl with durable appends
 *    (exp/journal.h). After a kill -9, a restarted daemon given the
 *    same cache dir resumes a resubmitted batch from the journal +
 *    run cache — completed points replay as "cached", nothing runs
 *    twice, and the merged results are bit-identical.
 *
 * A dead subscriber (client closed mid-stream) is dropped at its first
 * failed send; the batch keeps running for the journal, the cache, and
 * any other subscribers.
 */

#ifndef BTBSIM_SERVE_SERVER_H
#define BTBSIM_SERVE_SERVER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "exp/experiment.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "serve/shard_pool.h"

namespace btbsim::serve {

struct ServerOptions
{
    std::string socket_path; ///< AF_UNIX path to listen on (required).

    /** Shard-pool width; 0 resolves to hardware concurrency. */
    unsigned shards = 0;

    /** Run-cache directory — also the journal home. Empty disables both
     *  caching and crash recovery (tests only). */
    std::string cache_dir;

    unsigned retries = 2; ///< Per-point retry budget (exp engine).

    /** Simulation hook override for tests; empty uses runOne(). */
    std::function<SimStats(const CpuConfig &, const WorkloadSpec &,
                           const RunOptions &)>
        simulate;
};

class Server
{
  public:
    explicit Server(ServerOptions opt);
    ~Server(); ///< Implies stop().

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    /** Bind the socket and start the accept + runner threads. Throws
     *  std::runtime_error when the socket cannot be bound. */
    void start();

    /** Block until a client issues "shutdown" (daemon main loop). */
    void wait();

    /** Drain: finish the running batch, close every connection, join
     *  all threads, unlink the socket. Idempotent. */
    void stop();

    const std::string &socketPath() const { return opt_.socket_path; }
    unsigned shards() const;

    /** Batches completed since start (for tests / the status line). */
    std::uint64_t batchesDone() const;

  private:
    /** A connected client; sends are serialized so the batch runner
     *  (streaming) and the connection thread (replies) never interleave
     *  bytes on one socket. */
    struct Client
    {
        LineConn conn;
        std::mutex send_mu;
        bool dead = false;

        bool send(const std::string &line);
    };
    using ClientPtr = std::shared_ptr<Client>;

    struct Batch
    {
        std::string id;
        BatchSpec spec;

        enum class State : std::uint8_t { kQueued, kRunning, kDone };
        State state = State::kQueued;

        // Live progress (guarded by the server mutex).
        std::size_t done = 0, ok = 0, cached = 0, failed = 0, skipped = 0;
        double started_at = 0.0; ///< Monotonic seconds at kRunning.

        exp::ExperimentResult result; ///< Valid once kDone.
        std::vector<ClientPtr> subscribers;
    };
    using BatchPtr = std::shared_ptr<Batch>;

    void acceptLoop();
    void connectionLoop(ClientPtr client);
    void runnerLoop();
    void runBatch(const BatchPtr &batch);

    void handleSubmit(const ClientPtr &client, Request req);
    void handleStatus(const ClientPtr &client, const Request &req);
    void handleResults(const ClientPtr &client, const Request &req);

    std::string batchStatusLine(const Batch &b, bool dedup) const;
    std::string batchEndLine(const Batch &b) const;

    ServerOptions opt_;
    UnixListener listener_;
    std::unique_ptr<ShardPool> pool_;

    mutable std::mutex mu_;
    std::condition_variable cv_runner_;   ///< Wakes the batch runner.
    std::condition_variable cv_shutdown_; ///< Wakes wait().
    bool stopping_ = false;
    bool shutdown_requested_ = false;
    std::uint64_t batches_done_ = 0;

    std::map<std::string, BatchPtr> batches_; ///< By batch_id.
    std::deque<BatchPtr> queue_;              ///< Submission order.
    std::vector<ClientPtr> clients_;

    std::thread accept_thread_;
    std::thread runner_thread_;
    std::vector<std::thread> conn_threads_;
};

} // namespace btbsim::serve

#endif // BTBSIM_SERVE_SERVER_H
