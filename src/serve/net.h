/**
 * @file
 * Minimal Unix-domain-socket plumbing for the sweep service: a
 * listener, a blocking line-framed connection, and a connect helper.
 *
 * Framing is newline-delimited JSON in both directions (one object per
 * line, no raw newlines inside a record — the protocol layer guarantees
 * that). Writes use MSG_NOSIGNAL so a client that disappears mid-stream
 * surfaces as a send error, never a SIGPIPE; the server drops the
 * subscriber and the batch keeps running.
 */

#ifndef BTBSIM_SERVE_NET_H
#define BTBSIM_SERVE_NET_H

#include <string>

namespace btbsim::serve {

/** Blocking, line-framed duplex connection over a connected fd. */
class LineConn
{
  public:
    LineConn() = default;
    explicit LineConn(int fd) : fd_(fd) {}
    ~LineConn() { close(); }

    LineConn(LineConn &&other) noexcept { *this = std::move(other); }
    LineConn &
    operator=(LineConn &&other) noexcept
    {
        if (this != &other) {
            close();
            fd_ = other.fd_;
            rbuf_ = std::move(other.rbuf_);
            other.fd_ = -1;
        }
        return *this;
    }
    LineConn(const LineConn &) = delete;
    LineConn &operator=(const LineConn &) = delete;

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }

    /** Send @p line plus a trailing newline; false on any send error
     *  (connection is then closed). Not thread-safe — callers holding
     *  one connection across threads serialize externally. */
    bool sendLine(const std::string &line);

    /** Read the next newline-terminated line (newline stripped).
     *  False on EOF or error. */
    bool recvLine(std::string *line);

    /** shutdown(2) both directions WITHOUT closing the fd — safe to
     *  call from another thread to unblock a recvLine() in progress
     *  (close() while another thread reads would race fd reuse). */
    void shutdownBoth();

    void close();

  private:
    int fd_ = -1;
    std::string rbuf_;
};

/** Listening Unix-domain stream socket bound to @p path. */
class UnixListener
{
  public:
    UnixListener() = default;
    ~UnixListener() { close(); }

    UnixListener(const UnixListener &) = delete;
    UnixListener &operator=(const UnixListener &) = delete;

    /**
     * Bind and listen on @p path, unlinking any stale socket first (a
     * kill -9'd daemon leaves one behind). Throws std::runtime_error on
     * failure (path too long, bind/listen error).
     */
    void listen(const std::string &path);

    /** Accept one connection; invalid LineConn when the listener was
     *  closed (shutdown) or accept failed. */
    LineConn accept();

    bool valid() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

    /** Close the socket (unblocks accept()) and unlink the path. */
    void close();

  private:
    int fd_ = -1;
    std::string path_;
};

/** Connect to the daemon at @p path; invalid LineConn on failure. */
LineConn unixConnect(const std::string &path);

} // namespace btbsim::serve

#endif // BTBSIM_SERVE_NET_H
