#include "serve/protocol.h"

#include <sstream>
#include <stdexcept>

#include "exp/config_json.h"
#include "exp/sha256.h"

namespace btbsim::serve {

std::string
flatJsonObject(const std::function<void(obs::JsonWriter &)> &fill)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    w.beginObject();
    fill(w);
    w.endObject();
    // One record per line: JsonWriter pretty-prints, so strip newlines
    // (JSON strings never contain raw ones).
    const std::string s = os.str();
    std::string flat;
    flat.reserve(s.size());
    for (char c : s)
        if (c != '\n')
            flat += c;
    return flat;
}

void
writeBatchJson(obs::JsonWriter &w, const BatchSpec &b)
{
    w.beginObject();
    w.kv("_schema", kServeProtocolVersion);
    w.kv("name", b.name);
    w.key("run");
    exp::writeRunOptionsJson(w, b.run);
    w.key("configs");
    w.beginArray();
    for (const CpuConfig &c : b.configs)
        exp::writeCpuConfigJson(w, c);
    w.endArray();
    w.key("workloads");
    w.beginArray();
    for (const WorkloadSpec &s : b.workloads)
        exp::writeWorkloadSpecJson(w, s);
    w.endArray();
    w.endObject();
}

std::string
canonicalBatchJson(const BatchSpec &b)
{
    std::ostringstream os;
    obs::JsonWriter w(os);
    writeBatchJson(w, b);
    const std::string s = os.str();
    std::string flat;
    flat.reserve(s.size());
    for (char c : s)
        if (c != '\n')
            flat += c;
    return flat;
}

std::string
batchDigest(const BatchSpec &b)
{
    return exp::Sha256::hexDigest(canonicalBatchJson(b));
}

BatchSpec
batchFromJson(const obs::JsonValue &v)
{
    if (!v.isObject())
        throw std::runtime_error("batch: not a JSON object");
    const int schema = static_cast<int>(v.at("_schema").asNumber());
    if (schema != kServeProtocolVersion)
        throw std::runtime_error(
            "batch: protocol version mismatch (got " +
            std::to_string(schema) + ", expected " +
            std::to_string(kServeProtocolVersion) + ")");
    BatchSpec b;
    b.name = v.at("name").asString();
    b.run = exp::runOptionsFromJson(v.at("run"));
    const obs::JsonValue &configs = v.at("configs");
    if (!configs.isArray())
        throw std::runtime_error("batch: \"configs\" is not an array");
    for (const obs::JsonValue &c : configs.array)
        b.configs.push_back(exp::cpuConfigFromJson(c));
    const obs::JsonValue &workloads = v.at("workloads");
    if (!workloads.isArray())
        throw std::runtime_error("batch: \"workloads\" is not an array");
    for (const obs::JsonValue &s : workloads.array)
        b.workloads.push_back(exp::workloadSpecFromJson(s));
    if (b.configs.empty() || b.workloads.empty())
        throw std::runtime_error("batch: empty configs or workloads");
    return b;
}

Request
requestFromLine(const std::string &line)
{
    const obs::JsonValue v = obs::parseJson(line);
    if (!v.isObject())
        throw std::runtime_error("request: not a JSON object");
    Request r;
    r.op = v.at("op").asString();
    if (r.op == "ping" || r.op == "shutdown") {
        // No operands.
    } else if (r.op == "submit") {
        r.batch = batchFromJson(v.at("batch"));
        r.has_batch = true;
    } else if (r.op == "status" || r.op == "results") {
        r.batch_id = v.at("batch_id").asString();
        if (r.batch_id.empty())
            throw std::runtime_error("request: empty batch_id");
    } else {
        throw std::runtime_error("request: unknown op \"" + r.op + "\"");
    }
    return r;
}

std::string
requestToLine(const Request &r)
{
    return flatJsonObject([&](obs::JsonWriter &w) {
        w.kv("op", r.op);
        if (!r.batch_id.empty())
            w.kv("batch_id", r.batch_id);
        if (r.has_batch) {
            w.key("batch");
            writeBatchJson(w, r.batch);
        }
    });
}

std::string
errorLine(const std::string &message)
{
    return flatJsonObject([&](obs::JsonWriter &w) {
        w.kv("type", "error");
        w.kv("message", message);
    });
}

} // namespace btbsim::serve
