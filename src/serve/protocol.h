/**
 * @file
 * Wire protocol of the btbsim-serve daemon: newline-delimited JSON over
 * a Unix domain socket, one object per line in both directions.
 *
 * Requests (client -> server):
 *
 *   {"op":"ping"}
 *   {"op":"submit","batch":{...BatchSpec...}}
 *   {"op":"status","batch_id":"<digest>"}
 *   {"op":"results","batch_id":"<digest>"}
 *   {"op":"shutdown"}
 *
 * Responses (server -> client), discriminated by "type":
 *
 *   {"type":"error","message":"..."}
 *   {"type":"pong","protocol":1}
 *   {"type":"batch","batch_id":"...","state":"running|done","dedup":B,
 *    "total":N,"done":d,"ok":o,"cached":c,"failed":f,"skipped":s}
 *   {"type":"point", ...}            // PR 6 progress schema (obs/progress.h)
 *                                    // plus "batch_id" and "digest"
 *   {"type":"result","batch_id":"...","digest":"...","config":"...",
 *    "workload":"...","status":"ok|cached","stats":{...full SimStats...}}
 *   {"type":"batch_end","batch_id":"...","total":N,"ok":o,"cached":c,
 *    "failed":f,"skipped":s,"retries":r,"wall_seconds":w}
 *   {"type":"shutdown"}              // ack; the daemon then drains and exits
 *
 * A "submit" subscribes the connection to the batch's live stream: a
 * "batch" ack first (dedup=true when the identical batch is already
 * running or complete), then "point" progress records, then one
 * "batch_end". "results" replays "result" records for every point with
 * stats, then "batch_end". Submitting a batch whose points are all warm
 * in the run cache still streams — the points just arrive instantly as
 * status "cached".
 *
 * Batch identity is content-addressed: the batch_id IS the SHA-256 of
 * the batch's canonical JSON (exp/config_json.h writers underneath), so
 * duplicate submissions dedup naturally and a resubmit after a daemon
 * crash reattaches to the journaled sweep instead of restarting it.
 */

#ifndef BTBSIM_SERVE_PROTOCOL_H
#define BTBSIM_SERVE_PROTOCOL_H

#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "sim/config.h"
#include "sim/runner.h"
#include "trace/suite.h"

namespace btbsim::serve {

/** Wire-protocol version, echoed in "pong" and checked on "submit"
 *  (a mismatched client gets an "error", not a misparsed batch). */
constexpr int kServeProtocolVersion = 1;

/** One config-sweep request: the cross product configs x workloads is
 *  simulated with the given run options. */
struct BatchSpec
{
    std::string name = "serve"; ///< Sweep name (journal/progress label).
    RunOptions run;
    std::vector<CpuConfig> configs;
    std::vector<WorkloadSpec> workloads;

    std::size_t points() const { return configs.size() * workloads.size(); }
};

/** Canonical batch JSON (schema-versioned, every field, declaration
 *  order — the hashing substrate, like exp/config_json.h). */
void writeBatchJson(obs::JsonWriter &w, const BatchSpec &b);

/** Single-line canonical JSON of @p b. */
std::string canonicalBatchJson(const BatchSpec &b);

/** The batch's content address: SHA-256 of canonicalBatchJson(). */
std::string batchDigest(const BatchSpec &b);

/** Strict inverse of writeBatchJson (throws std::runtime_error). */
BatchSpec batchFromJson(const obs::JsonValue &v);

/** One parsed request line. */
struct Request
{
    std::string op;       ///< ping | submit | status | results | shutdown.
    std::string batch_id; ///< For status/results.
    BatchSpec batch;      ///< For submit (valid when has_batch).
    bool has_batch = false;
};

/** Parse one request line; throws std::runtime_error on malformed JSON,
 *  an unknown op, or a missing required field. */
Request requestFromLine(const std::string &line);

/** Serialize @p r to one line (no trailing newline). */
std::string requestToLine(const Request &r);

/** Render a single-line JSON object via @p fill (begin/endObject are
 *  added by the helper). Shared by every record the protocol emits. */
std::string flatJsonObject(const std::function<void(obs::JsonWriter &)> &fill);

/** {"type":"error","message":...} */
std::string errorLine(const std::string &message);

} // namespace btbsim::serve

#endif // BTBSIM_SERVE_PROTOCOL_H
