/**
 * @file
 * Client side of the btbsim-serve protocol: one blocking connection to
 * the daemon's Unix socket, with typed wrappers over the request ops
 * (serve/protocol.h). Used by the btbsim-client CLI and the serve
 * tests; benches talk to the in-process ShardPool instead.
 */

#ifndef BTBSIM_SERVE_CLIENT_H
#define BTBSIM_SERVE_CLIENT_H

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "obs/json.h"
#include "serve/net.h"
#include "serve/protocol.h"
#include "sim/sim_stats.h"

namespace btbsim::serve {

/** The daemon-reported terminal summary of a batch ("batch_end"). */
struct BatchOutcome
{
    std::string batch_id;
    bool dedup = false; ///< Submission attached to an existing batch.
    std::size_t total = 0, ok = 0, cached = 0, failed = 0, skipped = 0;
    std::size_t retries = 0, resumed = 0;
    double wall_seconds = 0.0;
    std::size_t shards = 0;
};

/** A "batch" status record. */
struct BatchStatus
{
    std::string batch_id;
    std::string state; ///< queued | running | done.
    std::size_t total = 0, done = 0, ok = 0, cached = 0, failed = 0,
                skipped = 0;
};

/** One streamed "result" record, stats fully deserialized. */
struct ResultPoint
{
    std::string digest;
    std::string config;
    std::string workload;
    std::string status; ///< ok | cached.
    SimStats stats;
};

/**
 * Blocking client over one connection. Methods throw std::runtime_error
 * on connection failure or a protocol violation (including an "error"
 * response); they are not thread-safe.
 */
class ServeClient
{
  public:
    explicit ServeClient(std::string socket_path)
        : socket_path_(std::move(socket_path))
    {
    }

    /** Connect now (ops otherwise connect lazily). False on failure. */
    bool connect();
    bool connected() const { return conn_.valid(); }

    /** Round-trip a ping; returns the daemon's protocol version. */
    int ping();

    /**
     * Submit @p batch and stream until its "batch_end". @p on_point
     * (optional) sees every raw "point" progress record as parsed JSON.
     */
    BatchOutcome
    submit(const BatchSpec &batch,
           const std::function<void(const obs::JsonValue &)> &on_point = {});

    BatchStatus status(const std::string &batch_id);

    /**
     * Fetch the finished batch's per-point results. Returns true and
     * fills @p out + @p end when the batch is done; false (leaving them
     * untouched) when it is still queued/running.
     */
    bool results(const std::string &batch_id, std::vector<ResultPoint> *out,
                 BatchOutcome *end);

    /** Ask the daemon to drain and exit; true once acked. */
    bool shutdown();

  private:
    void ensureConnected();
    obs::JsonValue readRecord(); ///< Next line, "error" raised as throw.

    std::string socket_path_;
    LineConn conn_;
};

} // namespace btbsim::serve

#endif // BTBSIM_SERVE_CLIENT_H
