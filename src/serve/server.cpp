#include "serve/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "exp/run_cache.h"
#include "traceio/chunk_cache.h"

namespace btbsim::serve {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

bool
Server::Client::send(const std::string &line)
{
    std::lock_guard<std::mutex> lk(send_mu);
    if (dead)
        return false;
    if (!conn.sendLine(line)) {
        dead = true;
        return false;
    }
    return true;
}

Server::Server(ServerOptions opt) : opt_(std::move(opt)) {}

Server::~Server()
{
    stop();
}

void
Server::start()
{
    if (opt_.socket_path.empty())
        throw std::runtime_error("serve: empty socket path");
    listener_.listen(opt_.socket_path);
    pool_ = std::make_unique<ShardPool>(opt_.shards);
    // Shards replaying one recording should decode each chunk once.
    traceio::SharedChunkCache::setProcessDefault(true);
    accept_thread_ = std::thread([this] { acceptLoop(); });
    runner_thread_ = std::thread([this] { runnerLoop(); });
}

void
Server::wait()
{
    {
        std::unique_lock<std::mutex> lk(mu_);
        cv_shutdown_.wait(
            lk, [this] { return shutdown_requested_ || stopping_; });
    }
    stop();
}

void
Server::stop()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        stopping_ = true;
    }
    cv_shutdown_.notify_all();
    cv_runner_.notify_all();
    listener_.close(); // Unblocks accept().
    if (accept_thread_.joinable())
        accept_thread_.join();
    if (runner_thread_.joinable())
        runner_thread_.join(); // Lets a running batch finish + journal.

    std::vector<ClientPtr> clients;
    {
        std::lock_guard<std::mutex> lk(mu_);
        clients = clients_;
    }
    for (const ClientPtr &c : clients)
        c->conn.shutdownBoth(); // Unblocks connection recvLine()s.
    for (std::thread &t : conn_threads_)
        if (t.joinable())
            t.join();
    conn_threads_.clear();
    {
        std::lock_guard<std::mutex> lk(mu_);
        clients_.clear();
    }
    pool_.reset();
}

unsigned
Server::shards() const
{
    return pool_ ? pool_->shards() : opt_.shards;
}

std::uint64_t
Server::batchesDone() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return batches_done_;
}

void
Server::acceptLoop()
{
    for (;;) {
        LineConn conn = listener_.accept();
        if (!conn.valid())
            return; // Listener closed (stop()).
        ClientPtr client = std::make_shared<Client>();
        client->conn = std::move(conn);
        std::lock_guard<std::mutex> lk(mu_);
        if (stopping_)
            return;
        clients_.push_back(client);
        conn_threads_.emplace_back(
            [this, client] { connectionLoop(client); });
    }
}

void
Server::connectionLoop(ClientPtr client)
{
    std::string line;
    while (client->conn.recvLine(&line)) {
        if (line.empty())
            continue;
        Request req;
        try {
            req = requestFromLine(line);
        } catch (const std::exception &e) {
            // A malformed request poisons only itself: report it and
            // keep the connection serviceable.
            client->send(errorLine(e.what()));
            continue;
        }
        if (req.op == "ping") {
            client->send(flatJsonObject([](obs::JsonWriter &w) {
                w.kv("type", "pong");
                w.kv("protocol", kServeProtocolVersion);
            }));
        } else if (req.op == "shutdown") {
            client->send(flatJsonObject([](obs::JsonWriter &w) {
                w.kv("type", "shutdown");
            }));
            std::lock_guard<std::mutex> lk(mu_);
            shutdown_requested_ = true;
            cv_shutdown_.notify_all();
        } else if (req.op == "submit") {
            handleSubmit(client, std::move(req));
        } else if (req.op == "status") {
            handleStatus(client, req);
        } else { // results (requestFromLine rejects unknown ops)
            handleResults(client, req);
        }
    }
    // EOF / error: detach. The client may still be subscribed to a
    // batch; the first failed stream send marks it dead and the batch
    // runner drops it.
    std::lock_guard<std::mutex> lk(mu_);
    {
        std::lock_guard<std::mutex> slk(client->send_mu);
        client->dead = true;
    }
    clients_.erase(std::remove(clients_.begin(), clients_.end(), client),
                   clients_.end());
}

void
Server::handleSubmit(const ClientPtr &client, Request req)
{
    const std::string id = batchDigest(req.batch);
    std::string ack, end;
    {
        std::lock_guard<std::mutex> lk(mu_);
        BatchPtr batch;
        bool dedup = true;
        const auto it = batches_.find(id);
        if (it != batches_.end()) {
            batch = it->second;
        } else {
            dedup = false;
            batch = std::make_shared<Batch>();
            batch->id = id;
            batch->spec = std::move(req.batch);
            batches_.emplace(id, batch);
            queue_.push_back(batch);
            cv_runner_.notify_all();
        }
        batch->subscribers.push_back(client);
        ack = batchStatusLine(*batch, dedup);
        if (batch->state == Batch::State::kDone)
            end = batchEndLine(*batch);
    }
    client->send(ack);
    if (!end.empty())
        client->send(end);
}

void
Server::handleStatus(const ClientPtr &client, const Request &req)
{
    std::string reply;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = batches_.find(req.batch_id);
        reply = it == batches_.end()
                    ? errorLine("unknown batch_id: " + req.batch_id)
                    : batchStatusLine(*it->second, false);
    }
    client->send(reply);
}

void
Server::handleResults(const ClientPtr &client, const Request &req)
{
    BatchPtr batch;
    std::string reply;
    {
        std::lock_guard<std::mutex> lk(mu_);
        const auto it = batches_.find(req.batch_id);
        if (it == batches_.end()) {
            reply = errorLine("unknown batch_id: " + req.batch_id);
        } else if (it->second->state != Batch::State::kDone) {
            // Not ready: the status record tells the client to poll.
            reply = batchStatusLine(*it->second, false);
        } else {
            batch = it->second;
        }
    }
    if (!batch) {
        client->send(reply);
        return;
    }
    // state == kDone: result is immutable, stream without the lock.
    for (const exp::PointResult &p : batch->result.points) {
        if (!p.hasStats())
            continue;
        const std::string line =
            flatJsonObject([&](obs::JsonWriter &w) {
                w.kv("type", "result");
                w.kv("batch_id", batch->id);
                w.kv("digest", p.digest);
                w.kv("config", p.config);
                w.kv("workload", p.workload);
                w.kv("status", exp::pointStatusName(p.status));
                w.key("stats");
                exp::writeStatsJson(w, p.stats);
            });
        if (!client->send(line))
            return; // Client went away mid-stream.
    }
    std::lock_guard<std::mutex> lk(mu_);
    client->send(batchEndLine(*batch));
}

std::string
Server::batchStatusLine(const Batch &b, bool dedup) const
{
    const char *state = b.state == Batch::State::kDone      ? "done"
                        : b.state == Batch::State::kRunning ? "running"
                                                            : "queued";
    const std::size_t total = b.spec.points();
    return flatJsonObject([&](obs::JsonWriter &w) {
        w.kv("type", "batch");
        w.kv("batch_id", b.id);
        w.kv("state", state);
        w.kv("dedup", dedup);
        w.kv("total", static_cast<std::uint64_t>(total));
        w.kv("done", static_cast<std::uint64_t>(b.done));
        w.kv("ok", static_cast<std::uint64_t>(b.ok));
        w.kv("cached", static_cast<std::uint64_t>(b.cached));
        w.kv("failed", static_cast<std::uint64_t>(b.failed));
        w.kv("skipped", static_cast<std::uint64_t>(b.skipped));
    });
}

std::string
Server::batchEndLine(const Batch &b) const
{
    const exp::ExperimentSummary &s = b.result.summary;
    return flatJsonObject([&](obs::JsonWriter &w) {
        w.kv("type", "batch_end");
        w.kv("batch_id", b.id);
        w.kv("total", static_cast<std::uint64_t>(s.total));
        w.kv("ok", static_cast<std::uint64_t>(s.ok));
        w.kv("cached", static_cast<std::uint64_t>(s.cached));
        w.kv("failed", static_cast<std::uint64_t>(s.failed));
        w.kv("skipped", static_cast<std::uint64_t>(s.skipped));
        w.kv("retries", static_cast<std::uint64_t>(s.retries));
        w.kv("resumed", static_cast<std::uint64_t>(s.resumed));
        w.kv("wall_seconds", s.wall_seconds);
        w.kv("shards", static_cast<std::uint64_t>(b.result.shards.size()));
    });
}

void
Server::runnerLoop()
{
    for (;;) {
        BatchPtr batch;
        {
            std::unique_lock<std::mutex> lk(mu_);
            cv_runner_.wait(
                lk, [this] { return stopping_ || !queue_.empty(); });
            if (stopping_)
                return; // Queued batches re-run on resubmission.
            batch = queue_.front();
            queue_.pop_front();
            batch->state = Batch::State::kRunning;
            batch->started_at = nowSeconds();
        }
        runBatch(batch);
        std::lock_guard<std::mutex> lk(mu_);
        ++batches_done_;
    }
}

void
Server::runBatch(const BatchPtr &batch)
{
    exp::ExperimentOptions eopt;
    eopt.run = batch->spec.run;
    eopt.executor = pool_.get();
    eopt.cache_dir = opt_.cache_dir;
    eopt.retries = opt_.retries;
    eopt.simulate = opt_.simulate;
    if (!opt_.cache_dir.empty()) {
        // Durable per-batch journal named by the batch's content hash:
        // a daemon restarted after kill -9 resumes a resubmitted batch
        // from exactly the points that had completed.
        eopt.resume = true;
        eopt.journal_path =
            opt_.cache_dir + "/journal/serve-" + batch->id + ".jsonl";
    }
    eopt.on_point = [this, batch](const exp::PointResult &p) {
        std::string line;
        std::vector<ClientPtr> subs;
        {
            std::lock_guard<std::mutex> lk(mu_);
            batch->done += 1;
            switch (p.status) {
            case exp::PointStatus::kOk: batch->ok += 1; break;
            case exp::PointStatus::kCached: batch->cached += 1; break;
            case exp::PointStatus::kFailed: batch->failed += 1; break;
            case exp::PointStatus::kSkipped: batch->skipped += 1; break;
            }
            const std::size_t total = batch->spec.points();
            const double elapsed = nowSeconds() - batch->started_at;
            const double eta =
                batch->done ? elapsed /
                                  static_cast<double>(batch->done) *
                                  static_cast<double>(total - batch->done)
                            : -1.0;
            // The PR 6 progress-point schema (obs/progress.h), plus
            // batch_id and the point's run-cache digest.
            line = flatJsonObject([&](obs::JsonWriter &w) {
                w.kv("type", "point");
                w.kv("sweep", batch->spec.name);
                w.kv("batch_id", batch->id);
                w.kv("digest", p.digest);
                w.kv("done", static_cast<std::uint64_t>(batch->done));
                w.kv("total", static_cast<std::uint64_t>(total));
                w.kv("ok", static_cast<std::uint64_t>(batch->ok));
                w.kv("cached", static_cast<std::uint64_t>(batch->cached));
                w.kv("failed", static_cast<std::uint64_t>(batch->failed));
                w.kv("skipped",
                     static_cast<std::uint64_t>(batch->skipped));
                w.kv("elapsed_seconds", elapsed);
                w.kv("eta_seconds", eta);
                w.kv("config", p.config);
                w.kv("workload", p.workload);
                w.kv("status", exp::pointStatusName(p.status));
            });
            subs = batch->subscribers;
        }
        for (const ClientPtr &c : subs)
            c->send(line); // A failed send marks the client dead.
    };

    exp::ExperimentResult result = exp::runExperiment(
        batch->spec.name, batch->spec.configs, batch->spec.workloads,
        std::move(eopt));

    std::string end;
    std::vector<ClientPtr> subs;
    {
        std::lock_guard<std::mutex> lk(mu_);
        batch->result = std::move(result);
        batch->state = Batch::State::kDone;
        end = batchEndLine(*batch);
        subs = std::move(batch->subscribers);
        batch->subscribers.clear();
    }
    for (const ClientPtr &c : subs)
        c->send(end);
}

} // namespace btbsim::serve
