#include "serve/shard_pool.h"

#include <chrono>
#include <memory>
#include <stdexcept>

#include "common/env.h"
#include "exp/run_cache.h"
#include "traceio/chunk_cache.h"

namespace btbsim::serve {

ShardPool::ShardPool(unsigned shards)
{
    unsigned n = shards;
    if (n == 0) {
        n = std::thread::hardware_concurrency();
        if (n == 0)
            n = 4;
    }
    stats_.resize(n);
    threads_.reserve(n);
    for (unsigned i = 0; i < n; ++i)
        threads_.emplace_back([this, i] { shardLoop(i); });
}

ShardPool::~ShardPool()
{
    {
        std::lock_guard<std::mutex> lk(mu_);
        stop_ = true;
    }
    cv_work_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ShardPool::run(const std::function<void(unsigned)> &worker)
{
    // One dispatch at a time: a batch's parallelism is across its
    // points (the worker drains the sweep's queue), not across batches.
    std::lock_guard<std::mutex> serial(run_mu_);
    {
        std::lock_guard<std::mutex> lk(mu_);
        job_ = &worker;
        remaining_ = shards();
        ++generation_;
    }
    cv_work_.notify_all();
    std::unique_lock<std::mutex> lk(mu_);
    cv_done_.wait(lk, [this] { return remaining_ == 0; });
    job_ = nullptr;
}

void
ShardPool::shardLoop(unsigned id)
{
    std::uint64_t seen = 0;
    std::unique_lock<std::mutex> lk(mu_);
    for (;;) {
        cv_work_.wait(lk,
                      [&] { return stop_ || generation_ != seen; });
        if (stop_)
            return;
        seen = generation_;
        const std::function<void(unsigned)> *job = job_;
        lk.unlock();

        const auto t0 = std::chrono::steady_clock::now();
        try {
            (*job)(id);
        } catch (...) {
            // A sweep worker never throws (Experiment isolates point
            // failures); swallow defensively so one shard cannot wedge
            // the pool's completion accounting.
        }
        const double busy =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - t0)
                .count();

        lk.lock();
        stats_[id].jobs += 1;
        stats_[id].busy_seconds += busy;
        if (--remaining_ == 0)
            cv_done_.notify_all();
    }
}

std::vector<ShardPool::ShardStats>
ShardPool::stats() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return stats_;
}

ShardPool *
ShardPool::fromEnv()
{
    static std::mutex mu;
    static std::unique_ptr<ShardPool> pool;
    static bool resolved = false;
    std::lock_guard<std::mutex> lk(mu);
    if (!resolved) {
        resolved = true;
        const std::uint64_t n = env::u64("BTBSIM_SHARDS", 0);
        if (n > 0) {
            pool = std::make_unique<ShardPool>(static_cast<unsigned>(n));
            // Sharded replay of one recording should decode each chunk
            // once per process, not once per shard.
            traceio::SharedChunkCache::setProcessDefault(true);
        }
    }
    return pool.get();
}

ShardPool *
applyEnvPool(exp::ExperimentOptions &opt)
{
    ShardPool *pool = ShardPool::fromEnv();
    if (pool)
        opt.executor = pool;
    return pool;
}

std::vector<SimStats>
runMatrixPooled(const std::vector<CpuConfig> &configs,
                const std::vector<WorkloadSpec> &suite,
                const RunOptions &opt)
{
    // Same contract as sim/runner.h runMatrix: hermetic unless
    // BTBSIM_RUN_CACHE is set, throw listing every failed point.
    exp::ExperimentOptions eopt;
    eopt.run = opt;
    eopt.cache_dir = exp::RunCache::dirFromEnv("");
    eopt.retries =
        static_cast<unsigned>(env::u64("BTBSIM_RETRIES", eopt.retries));
    applyEnvPool(eopt);

    exp::ExperimentResult r = exp::runExperiment("run_matrix", configs,
                                                 suite, std::move(eopt));
    if (!r.allOk()) {
        std::string what = "runMatrixPooled: " +
                           std::to_string(r.summary.failed) +
                           " point(s) failed:";
        for (const exp::PointResult *p : r.failures())
            what += "\n  (" + p->config + ", " + p->workload +
                    "): " + p->error;
        throw std::runtime_error(what);
    }
    return r.stats();
}

} // namespace btbsim::serve
