#include "serve/net.h"

#include <cerrno>
#include <cstring>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#define BTBSIM_HAVE_UNIX_SOCKETS 1
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#else
#define BTBSIM_HAVE_UNIX_SOCKETS 0
#endif

namespace btbsim::serve {

#if BTBSIM_HAVE_UNIX_SOCKETS

namespace {

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

/// Fill @p addr from @p path; throws when the path exceeds sun_path
/// (the 108-byte AF_UNIX limit is easy to hit with deep temp dirs).
void
fillAddr(sockaddr_un &addr, const std::string &path)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        throw std::runtime_error("serve: socket path too long (" +
                                 std::to_string(path.size()) + " >= " +
                                 std::to_string(sizeof(addr.sun_path)) +
                                 "): " + path);
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
}

} // namespace

bool
LineConn::sendLine(const std::string &line)
{
    if (fd_ < 0)
        return false;
    std::string framed = line;
    framed.push_back('\n');
    std::size_t off = 0;
    while (off < framed.size()) {
        const ssize_t n = ::send(fd_, framed.data() + off,
                                 framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        off += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineConn::recvLine(std::string *line)
{
    if (fd_ < 0)
        return false;
    for (;;) {
        const std::size_t nl = rbuf_.find('\n');
        if (nl != std::string::npos) {
            line->assign(rbuf_, 0, nl);
            rbuf_.erase(0, nl + 1);
            return true;
        }
        char buf[4096];
        const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        if (n == 0) {
            // EOF: a final unterminated fragment is not a line.
            close();
            return false;
        }
        rbuf_.append(buf, static_cast<std::size_t>(n));
    }
}

void
LineConn::shutdownBoth()
{
    if (fd_ >= 0)
        ::shutdown(fd_, SHUT_RDWR);
}

void
LineConn::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    rbuf_.clear();
}

void
UnixListener::listen(const std::string &path)
{
    close();
    sockaddr_un addr;
    fillAddr(addr, path);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        throw std::runtime_error("serve: socket(): " +
                                 std::string(std::strerror(errno)));
    // A previous daemon killed with -9 leaves its socket inode behind;
    // binding over it requires the unlink (ECONNREFUSED-probing the old
    // socket is racy and a fresh daemon owns the path by contract).
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        throw std::runtime_error("serve: bind(" + path +
                                 "): " + std::strerror(err));
    }
    if (::listen(fd, 64) != 0) {
        const int err = errno;
        ::close(fd);
        ::unlink(path.c_str());
        throw std::runtime_error("serve: listen(" + path +
                                 "): " + std::strerror(err));
    }
    fd_ = fd;
    path_ = path;
}

LineConn
UnixListener::accept()
{
    for (;;) {
        const int fd = ::accept(fd_, nullptr, nullptr);
        if (fd >= 0)
            return LineConn(fd);
        if (errno == EINTR)
            continue;
        return LineConn();
    }
}

void
UnixListener::close()
{
    if (fd_ >= 0) {
        // shutdown() wakes any thread blocked in accept() before the
        // descriptor goes away.
        ::shutdown(fd_, SHUT_RDWR);
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

LineConn
unixConnect(const std::string &path)
{
    sockaddr_un addr;
    fillAddr(addr, path);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return LineConn();
    if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return LineConn();
    }
    return LineConn(fd);
}

#else // !BTBSIM_HAVE_UNIX_SOCKETS

bool
LineConn::sendLine(const std::string &)
{
    return false;
}

bool
LineConn::recvLine(std::string *)
{
    return false;
}

void
LineConn::shutdownBoth()
{
}

void
LineConn::close()
{
    fd_ = -1;
    rbuf_.clear();
}

void
UnixListener::listen(const std::string &path)
{
    throw std::runtime_error(
        "serve: Unix sockets unavailable on this platform (" + path + ")");
}

LineConn
UnixListener::accept()
{
    return LineConn();
}

void
UnixListener::close()
{
    fd_ = -1;
    path_.clear();
}

LineConn
unixConnect(const std::string &)
{
    return LineConn();
}

#endif // BTBSIM_HAVE_UNIX_SOCKETS

} // namespace btbsim::serve
