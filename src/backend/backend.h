/**
 * @file
 * Out-of-order backend: rename, issue queue, functional units, ROB.
 *
 * Table 1: 352-entry ROB, 128-entry IQ, 128-entry LQ, 72-entry SQ,
 * 16-wide allocate/execute/commit with 11 misc + 3 load + 2 store ports.
 * Memory dependence prediction is oracle (as in ChampSim), so loads never
 * stall on unrelated stores.
 *
 * An ideal mode (Fig. 11a) models a backend limited only by data
 * dependencies inside an 8K-instruction window: unit latencies, unlimited
 * ports and single-cycle retire of the whole window.
 */

#ifndef BTBSIM_BACKEND_BACKEND_H
#define BTBSIM_BACKEND_BACKEND_H

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "memory/memhier.h"
#include "sim/dyn_inst.h"

namespace btbsim {

/** Backend configuration. */
struct BackendConfig
{
    unsigned rob_size = 352;
    unsigned iq_size = 128;
    unsigned lq_size = 128;
    unsigned sq_size = 72;
    unsigned alloc_width = 16;
    unsigned commit_width = 16;
    unsigned issue_width = 16;
    unsigned misc_ports = 11;
    unsigned load_ports = 3;
    unsigned store_ports = 2;
    bool ideal = false; ///< Fig. 11a: 8K window, unit latencies.

    static BackendConfig
    idealBackend()
    {
        BackendConfig c;
        c.ideal = true;
        c.rob_size = 8192;
        c.iq_size = 8192;
        c.lq_size = 8192;
        c.sq_size = 8192;
        c.alloc_width = 8192;
        c.commit_width = 8192;
        c.issue_width = 8192;
        return c;
    }

    bool operator==(const BackendConfig &) const = default;
};

/**
 * The backend pipeline from Allocate to Commit. The Cpu pushes decoded
 * instructions through tryAllocate() and polls for exec-resolved resteers.
 */
class Backend
{
  public:
    Backend(const BackendConfig &cfg, MemHier &mem);

    /** Space for one more instruction this cycle? */
    bool canAllocate() const;

    /** Allocate @p inst into ROB/IQ (call only when canAllocate()). */
    void allocate(DynInst &&inst, Cycle now);

    /** Issue + complete + commit for cycle @p now. */
    void runCycle(Cycle now);

    /**
     * If a resteer-flagged branch finished executing at or before @p now,
     * consume the event. @return the resolution cycle, or 0 when none.
     */
    Cycle takeExecResteer(Cycle now);

    std::uint64_t committed() const { return committed_; }
    bool empty() const { return rob_.empty(); }
    std::uint64_t robOccupancy() const { return rob_.size(); }

    StatSet stats;

  private:
    struct RobEntry
    {
        DynInst inst;
        bool issued = false;
        /// Producing ROB entries of the renamed sources (null = none or
        /// producer outside the ROB). Dereference only after checking the
        /// dep seq against last_committed_seq_: deque references stay
        /// stable until commit pops the producer.
        RobEntry *dep1_src = nullptr;
        RobEntry *dep2_src = nullptr;
        /// Intrusive issue-scan chain threading the un-issued entries in
        /// ROB order; issue unlinks, so the per-cycle scan never walks
        /// already-issued entries.
        RobEntry *next_unissued = nullptr;
        /// Earliest cycle the dependencies can possibly be ready (issued
        /// producers pin their completion cycle; an un-issued producer
        /// cannot complete before now+2). Purely a scan shortcut:
        /// readiness never regresses, so skipping the producer re-check
        /// until this cycle is timing-identical to re-checking every
        /// cycle.
        Cycle stall_until = 0;
    };

    BackendConfig cfg_;
    MemHier *mem_;

    std::deque<RobEntry> rob_;
    /// seq -> complete_cycle for live producers (ideal mode only: the
    /// realistic path resolves producers through RobEntry pointers).
    std::unordered_map<std::uint64_t, Cycle> live_;
    std::uint64_t last_committed_seq_ = 0;
    std::uint64_t committed_ = 0;

    unsigned loads_in_flight_ = 0;
    unsigned stores_in_flight_ = 0;
    unsigned iq_occupancy_ = 0;

    /// Outstanding exec-resolved resteer (at most one; the frontend
    /// stalls). 0 = none; otherwise the branch's completion cycle.
    Cycle pending_resteer_complete_ = 0;
    bool has_pending_resteer_ = false;

    /// Rename: architectural register -> producing seq / ROB entry.
    std::uint64_t last_writer_[64] = {};
    RobEntry *last_writer_entry_[64] = {};

    RobEntry *unissued_head_ = nullptr;
    RobEntry *unissued_tail_ = nullptr;

    /// Proven lower bound on the next cycle any entry could issue; the
    /// issue walk is skipped while now < issue_sleep_until_. Reset to 0
    /// by allocate() (a new entry voids the proof). Purely a scan
    /// shortcut — every bound is derived from fixed completion cycles,
    /// so skipped walks are provable no-ops.
    Cycle issue_sleep_until_ = 0;

    bool depReady(std::uint64_t seq, const RobEntry *src, Cycle now) const;
    unsigned execLatency(const DynInst &d, Cycle now);
};

} // namespace btbsim

#endif // BTBSIM_BACKEND_BACKEND_H
