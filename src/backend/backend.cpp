#include "backend/backend.h"

#include <algorithm>

namespace btbsim {

Backend::Backend(const BackendConfig &cfg, MemHier &mem)
    : cfg_(cfg), mem_(&mem)
{}

bool
Backend::canAllocate() const
{
    return rob_.size() < cfg_.rob_size && iq_occupancy_ < cfg_.iq_size &&
           loads_in_flight_ < cfg_.lq_size &&
           stores_in_flight_ < cfg_.sq_size;
}

void
Backend::allocate(DynInst &&inst, Cycle now)
{
    inst.alloc_cycle = now;

    // Rename: resolve sources to producing sequence numbers.
    inst.dep1 = inst.in.src1 ? last_writer_[inst.in.src1] : 0;
    inst.dep2 = inst.in.src2 ? last_writer_[inst.in.src2] : 0;
    if (inst.in.dst)
        last_writer_[inst.in.dst] = inst.seq;

    if (inst.in.isLoad())
        ++loads_in_flight_;
    if (inst.in.isStore())
        ++stores_in_flight_;
    ++iq_occupancy_;

    if (cfg_.ideal) {
        // Pure-dataflow scheduling: with unit latencies and unlimited
        // ports, completion is computable at allocation because all
        // producers allocated (and thus scheduled) earlier.
        Cycle c = now + 1;
        auto chase = [&](std::uint64_t seq) {
            if (seq == 0 || seq <= last_committed_seq_)
                return;
            auto it = live_.find(seq);
            if (it != live_.end())
                c = std::max(c, it->second + 1);
        };
        chase(inst.dep1);
        chase(inst.dep2);
        inst.issue_cycle = now;
        inst.complete_cycle = c;
        if (inst.resteer == Resteer::kExec) {
            has_pending_resteer_ = true;
            pending_resteer_complete_ = c;
        }
        live_.emplace(inst.seq, c);
        rob_.push_back(RobEntry{std::move(inst), true});
        --iq_occupancy_;
        return;
    }

    live_.emplace(inst.seq, Cycle{0});
    rob_.push_back(RobEntry{std::move(inst), false});
}

bool
Backend::depReady(std::uint64_t seq, Cycle now, Cycle &ready) const
{
    if (seq == 0 || seq <= last_committed_seq_)
        return true;
    auto it = live_.find(seq);
    if (it == live_.end())
        return true; // Producer predates the measured window.
    if (it->second == 0)
        return false; // Producer not yet issued.
    ready = std::max(ready, it->second);
    return it->second <= now;
}

unsigned
Backend::execLatency(const DynInst &d, Cycle now)
{
    if (cfg_.ideal)
        return 1;
    switch (d.in.cls) {
      case InstClass::kAlu:
      case InstClass::kBranch:
        return 1;
      case InstClass::kMul:
        return 3;
      case InstClass::kFp:
        return 3;
      case InstClass::kDiv:
        return 12;
      case InstClass::kStore:
        return 1;
      case InstClass::kLoad: {
        const Cycle done = mem_->load(d.in.pc, d.in.mem_addr, now);
        return static_cast<unsigned>(done > now ? done - now : 1);
      }
    }
    return 1;
}

void
Backend::runCycle(Cycle now)
{
    // ---- Issue ----------------------------------------------------------
    unsigned issued = 0, loads = 0, stores = 0, misc = 0;
    unsigned window_scanned = 0;
    for (RobEntry &e : rob_) {
        if (cfg_.ideal)
            break; // Scheduled at allocation.
        if (issued >= cfg_.issue_width)
            break;
        if (e.issued)
            continue;
        // Only the IQ window of oldest un-issued instructions is eligible.
        if (++window_scanned > cfg_.iq_size)
            break;
        DynInst &d = e.inst;
        if (d.alloc_cycle >= now)
            continue; // Allocated this cycle; earliest issue is next cycle.

        Cycle ready = 0;
        if (!depReady(d.dep1, now, ready) || !depReady(d.dep2, now, ready))
            continue;

        if (!cfg_.ideal) {
            if (d.in.isLoad()) {
                if (loads >= cfg_.load_ports)
                    continue;
            } else if (d.in.isStore()) {
                if (stores >= cfg_.store_ports)
                    continue;
            } else if (misc >= cfg_.misc_ports) {
                continue;
            }
        }

        d.issue_cycle = now;
        d.complete_cycle = now + execLatency(d, now);
        live_[d.seq] = d.complete_cycle;
        e.issued = true;
        --iq_occupancy_;
        ++issued;
        if (d.in.isLoad())
            ++loads;
        else if (d.in.isStore())
            ++stores;
        else
            ++misc;

        if (d.resteer == Resteer::kExec) {
            has_pending_resteer_ = true;
            pending_resteer_complete_ = d.complete_cycle;
        }
    }

    // ---- Commit ---------------------------------------------------------
    unsigned commits = 0;
    while (!rob_.empty() && commits < cfg_.commit_width) {
        RobEntry &head = rob_.front();
        if (!head.issued || head.inst.complete_cycle > now)
            break;
        if (head.inst.in.isStore()) {
            mem_->store(head.inst.in.mem_addr, now);
            --stores_in_flight_;
        }
        if (head.inst.in.isLoad())
            --loads_in_flight_;
        last_committed_seq_ = head.inst.seq;
        live_.erase(head.inst.seq);
        rob_.pop_front();
        ++committed_;
        ++commits;
    }
}

Cycle
Backend::takeExecResteer(Cycle now)
{
    if (has_pending_resteer_ && pending_resteer_complete_ <= now) {
        has_pending_resteer_ = false;
        return pending_resteer_complete_;
    }
    return 0;
}

} // namespace btbsim
