#include "backend/backend.h"

#include <algorithm>

namespace btbsim {

Backend::Backend(const BackendConfig &cfg, MemHier &mem)
    : cfg_(cfg), mem_(&mem)
{}

bool
Backend::canAllocate() const
{
    return rob_.size() < cfg_.rob_size && iq_occupancy_ < cfg_.iq_size &&
           loads_in_flight_ < cfg_.lq_size &&
           stores_in_flight_ < cfg_.sq_size;
}

void
Backend::allocate(DynInst &&inst, Cycle now)
{
    inst.alloc_cycle = now;

    // Rename: resolve sources to producing sequence numbers.
    inst.dep1 = inst.in.src1 ? last_writer_[inst.in.src1] : 0;
    inst.dep2 = inst.in.src2 ? last_writer_[inst.in.src2] : 0;
    if (inst.in.dst)
        last_writer_[inst.in.dst] = inst.seq;

    if (inst.in.isLoad())
        ++loads_in_flight_;
    if (inst.in.isStore())
        ++stores_in_flight_;
    ++iq_occupancy_;

    if (cfg_.ideal) {
        // Pure-dataflow scheduling: with unit latencies and unlimited
        // ports, completion is computable at allocation because all
        // producers allocated (and thus scheduled) earlier.
        Cycle c = now + 1;
        auto chase = [&](std::uint64_t seq) {
            if (seq == 0 || seq <= last_committed_seq_)
                return;
            auto it = live_.find(seq);
            if (it != live_.end())
                c = std::max(c, it->second + 1);
        };
        chase(inst.dep1);
        chase(inst.dep2);
        inst.issue_cycle = now;
        inst.complete_cycle = c;
        if (inst.resteer == Resteer::kExec) {
            has_pending_resteer_ = true;
            pending_resteer_complete_ = c;
        }
        live_.emplace(inst.seq, c);
        rob_.push_back(RobEntry{std::move(inst), true});
        --iq_occupancy_;
        return;
    }

    // Producer entries resolve through stable deque references; capture
    // them before the move below. A stale pointer (producer committed or
    // renamed before this window) is guarded by the seq check in
    // depReady(), never dereferenced.
    RobEntry *s1 = inst.in.src1 ? last_writer_entry_[inst.in.src1] : nullptr;
    RobEntry *s2 = inst.in.src2 ? last_writer_entry_[inst.in.src2] : nullptr;

    rob_.push_back(RobEntry{std::move(inst), false});
    RobEntry &e = rob_.back();
    e.dep1_src = s1;
    e.dep2_src = s2;
    if (e.inst.in.dst)
        last_writer_entry_[e.inst.in.dst] = &e;

    if (unissued_tail_)
        unissued_tail_->next_unissued = &e;
    else
        unissued_head_ = &e;
    unissued_tail_ = &e;

    // A new chain entry voids the issue-stage sleep proof.
    issue_sleep_until_ = 0;
}

bool
Backend::depReady(std::uint64_t seq, const RobEntry *src, Cycle now) const
{
    if (seq == 0 || seq <= last_committed_seq_)
        return true;
    if (!src)
        return true; // Producer predates the measured window.
    if (!src->issued)
        return false;
    return src->inst.complete_cycle <= now;
}

unsigned
Backend::execLatency(const DynInst &d, Cycle now)
{
    if (cfg_.ideal)
        return 1;
    switch (d.in.cls) {
      case InstClass::kAlu:
      case InstClass::kBranch:
        return 1;
      case InstClass::kMul:
        return 3;
      case InstClass::kFp:
        return 3;
      case InstClass::kDiv:
        return 12;
      case InstClass::kStore:
        return 1;
      case InstClass::kLoad: {
        const Cycle done = mem_->load(d.in.pc, d.in.mem_addr, now);
        return static_cast<unsigned>(done > now ? done - now : 1);
      }
    }
    return 1;
}

void
Backend::runCycle(Cycle now)
{
    // ---- Issue ----------------------------------------------------------
    // Walk the un-issued chain (the ROB-order subsequence the old
    // full-ROB scan visited after skipping issued entries); issue unlinks
    // in place, so long-lived issued entries cost nothing per cycle.
    unsigned issued = 0, loads = 0, stores = 0, misc = 0;
    unsigned window_scanned = 0;
    // Whole-stage sleep: when the previous walk proved that no entry can
    // become issuable before issue_sleep_until_ (and nothing was
    // allocated since — allocate() resets the bound), the walk is a
    // provable no-op and is skipped outright.
    if (!cfg_.ideal && issue_sleep_until_ > now)
        goto commit_stage;
    {
    constexpr Cycle kNoWake = ~Cycle{0};
    Cycle min_wake = kNoWake;

    RobEntry *prev = nullptr;
    for (RobEntry *e = cfg_.ideal ? nullptr : unissued_head_; e;) {
        if (issued >= cfg_.issue_width) {
            // Unvisited tail: no bound on it, re-walk next cycle.
            min_wake = now + 1;
            break;
        }
        // Only the IQ window of oldest un-issued instructions is
        // eligible (canAllocate() bounds total un-issued to iq_size, so
        // this break is a safety net rather than a reachable limit).
        if (++window_scanned > cfg_.iq_size) {
            min_wake = now + 1;
            break;
        }
        DynInst &d = e->inst;
        RobEntry *next = e->next_unissued;
        if (d.alloc_cycle >= now) {
            // Allocated this cycle; earliest issue is next cycle.
            min_wake = std::min(min_wake, now + 1);
            prev = e;
            e = next;
            continue;
        }

        if (e->stall_until <= now &&
            (!depReady(d.dep1, e->dep1_src, now) ||
             !depReady(d.dep2, e->dep2_src, now))) {
            // Bound the next possible wake-up. An issued producer has a
            // fixed completion cycle. An un-issued producer sits earlier
            // in the chain (rename order), so it cannot issue at `now`
            // after this visit: it cannot issue before now+1, and with
            // >= 1 cycle latencies its consumer cannot be ready before
            // now+2 (or the producer's own bound + 1, whichever is
            // later).
            auto wake = [&](std::uint64_t seq, const RobEntry *src) {
                if (seq == 0 || seq <= last_committed_seq_ || !src)
                    return Cycle{0}; // This dep is ready; other one binds.
                if (!src->issued)
                    return std::max(now + 2, src->stall_until + 1);
                return src->inst.complete_cycle <= now
                           ? Cycle{0}
                           : src->inst.complete_cycle;
            };
            e->stall_until = std::max(wake(d.dep1, e->dep1_src),
                                      wake(d.dep2, e->dep2_src));
        }

        if (e->stall_until > now) {
            // Known-unready until e->stall_until: skip the producer
            // re-check (and the port logic) entirely.
            min_wake = std::min(min_wake, e->stall_until);
            prev = e;
            e = next;
            continue;
        }

        if (d.in.isLoad()) {
            if (loads >= cfg_.load_ports) {
                // Ready but port-capped: eligible again next cycle.
                min_wake = std::min(min_wake, now + 1);
                prev = e;
                e = next;
                continue;
            }
        } else if (d.in.isStore()) {
            if (stores >= cfg_.store_ports) {
                min_wake = std::min(min_wake, now + 1);
                prev = e;
                e = next;
                continue;
            }
        } else if (misc >= cfg_.misc_ports) {
            min_wake = std::min(min_wake, now + 1);
            prev = e;
            e = next;
            continue;
        }

        d.issue_cycle = now;
        d.complete_cycle = now + execLatency(d, now);
        e->issued = true;
        --iq_occupancy_;
        ++issued;
        if (d.in.isLoad())
            ++loads;
        else if (d.in.isStore())
            ++stores;
        else
            ++misc;

        if (d.resteer == Resteer::kExec) {
            has_pending_resteer_ = true;
            pending_resteer_complete_ = d.complete_cycle;
        }

        if (prev)
            prev->next_unissued = next;
        else
            unissued_head_ = next;
        if (e == unissued_tail_)
            unissued_tail_ = prev;
        e = next;
    }
    // kNoWake (nothing pending at all) sleeps until the next allocation
    // (allocate() clears the bound).
    issue_sleep_until_ = min_wake;
    }

  commit_stage:
    // ---- Commit ---------------------------------------------------------
    unsigned commits = 0;
    while (!rob_.empty() && commits < cfg_.commit_width) {
        RobEntry &head = rob_.front();
        if (!head.issued || head.inst.complete_cycle > now)
            break;
        if (head.inst.in.isStore()) {
            mem_->store(head.inst.in.mem_addr, now);
            --stores_in_flight_;
        }
        if (head.inst.in.isLoad())
            --loads_in_flight_;
        last_committed_seq_ = head.inst.seq;
        if (cfg_.ideal)
            live_.erase(head.inst.seq);
        rob_.pop_front();
        ++committed_;
        ++commits;
    }
}

Cycle
Backend::takeExecResteer(Cycle now)
{
    if (has_pending_resteer_ && pending_resteer_complete_ <= now) {
        has_pending_resteer_ = false;
        return pending_resteer_complete_;
    }
    return 0;
}

} // namespace btbsim
