/**
 * @file
 * Dynamic instruction in flight through the pipeline.
 */

#ifndef BTBSIM_SIM_DYN_INST_H
#define BTBSIM_SIM_DYN_INST_H

#include <cstdint>

#include "common/types.h"
#include "trace/instruction.h"

namespace btbsim {

/** Frontend redirect classes (Fig. 3). */
enum class Resteer : std::uint8_t {
    kNone,
    kDecode, ///< Misfetch: resolved when the branch reaches Decode.
    kExec,   ///< Misprediction: resolved when the branch executes.
};

/** One in-flight instruction with its timing record. */
struct DynInst
{
    Instruction in;
    std::uint64_t seq = 0;

    /// Frontend event this instruction resolves.
    Resteer resteer = Resteer::kNone;
    bool counts_mispredict = false; ///< Branch misprediction (MPKI).
    bool counts_misfetch = false;   ///< BTB misfetch (resolved at Decode).

    /// Producer sequence numbers (0 = no dependency).
    std::uint64_t dep1 = 0;
    std::uint64_t dep2 = 0;

    // Timing (absolute cycles, 0 = not reached).
    Cycle decode_cycle = 0;
    Cycle alloc_cycle = 0;
    Cycle issue_cycle = 0;
    Cycle complete_cycle = 0;
};

} // namespace btbsim

#endif // BTBSIM_SIM_DYN_INST_H
