/**
 * @file
 * Full processor configuration (Table 1 defaults).
 */

#ifndef BTBSIM_SIM_CONFIG_H
#define BTBSIM_SIM_CONFIG_H

#include "backend/backend.h"
#include "bpred/bpred_unit.h"
#include "core/btb_config.h"
#include "memory/memhier.h"

namespace btbsim {

/** Everything needed to instantiate a Cpu. */
struct CpuConfig
{
    BtbConfig btb = BtbConfig::ibtb(16);
    BPredConfig bpred;
    MemConfig mem;
    BackendConfig backend;

    unsigned ftq_entries = 64;
    unsigned decode_queue = 64;
    unsigned alloc_queue = 64;
    unsigned fetch_width = 16;       ///< Instructions delivered per cycle.
    unsigned fetch_lines = 8;        ///< Distinct-interleave lines per cycle.
    unsigned decode_width = 16;
    unsigned alloc_width = 16;

    /** Decode-based BTB prefill (Boomerang-style, Section 7.3): on an
     *  L1I miss, predecode the incoming line and insert its direct
     *  unconditional branches/calls into the BTB. Effective only for
     *  organizations that implement BtbOrg::prefill. */
    bool btb_predecode_fill = false;

    /** Ideal-backend variant of this configuration (Fig. 11a). */
    CpuConfig
    withIdealBackend() const
    {
        CpuConfig c = *this;
        c.backend = BackendConfig::idealBackend();
        return c;
    }

    bool operator==(const CpuConfig &) const = default;
};

} // namespace btbsim

#endif // BTBSIM_SIM_CONFIG_H
