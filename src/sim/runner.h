/**
 * @file
 * Experiment runner: simulate configurations across the workload suite,
 * in parallel, with environment-controlled scale.
 */

#ifndef BTBSIM_SIM_RUNNER_H
#define BTBSIM_SIM_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/sim_stats.h"
#include "trace/suite.h"

namespace btbsim {

/** Run-length options; fromEnv() honours BTBSIM_WARMUP / BTBSIM_MEASURE /
 *  BTBSIM_TRACES / BTBSIM_THREADS for scaling benches up or down. */
struct RunOptions
{
    std::uint64_t warmup = 500'000;
    std::uint64_t measure = 1'000'000;
    std::size_t traces = 6;
    unsigned threads = 0; ///< 0 = hardware concurrency.

    static RunOptions fromEnv();
};

/** Simulate one configuration on one workload. */
SimStats runOne(const CpuConfig &cfg, const WorkloadSpec &spec,
                const RunOptions &opt);

/**
 * Simulate a set of configurations across a set of workloads. Results are
 * ordered by (config index, workload index). Runs are spread across
 * threads; each run is deterministic in isolation. Every worker opens
 * its own TraceSource (generated or .btbt replay — see
 * traceio/replay_env.h), never sharing instances, so results are
 * bit-identical regardless of thread count.
 */
std::vector<SimStats> runMatrix(const std::vector<CpuConfig> &configs,
                                const std::vector<WorkloadSpec> &suite,
                                const RunOptions &opt);

} // namespace btbsim

#endif // BTBSIM_SIM_RUNNER_H
