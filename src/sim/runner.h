/**
 * @file
 * Experiment runner: simulate configurations across the workload suite,
 * in parallel, with environment-controlled scale.
 */

#ifndef BTBSIM_SIM_RUNNER_H
#define BTBSIM_SIM_RUNNER_H

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.h"
#include "sim/sim_stats.h"
#include "trace/suite.h"

namespace btbsim {

/** Run-length options; fromEnv() honours BTBSIM_WARMUP / BTBSIM_MEASURE /
 *  BTBSIM_TRACES / BTBSIM_THREADS for scaling benches up or down. */
struct RunOptions
{
    std::uint64_t warmup = 500'000;
    std::uint64_t measure = 1'000'000;
    std::size_t traces = 6;
    unsigned threads = 0; ///< 0 = hardware concurrency.

    static RunOptions fromEnv();

    bool operator==(const RunOptions &) const = default;
};

/** Simulate one configuration on one workload. */
SimStats runOne(const CpuConfig &cfg, const WorkloadSpec &spec,
                const RunOptions &opt);

/**
 * Simulate a set of configurations across a set of workloads. Results are
 * ordered by (config index, workload index). Runs are spread across
 * threads; each run is deterministic in isolation. Every worker opens
 * its own TraceSource (generated or .btbt replay — see
 * traceio/replay_env.h), never sharing instances, so results are
 * bit-identical regardless of thread count.
 *
 * This is a thin wrapper over the experiment engine (exp/experiment.h),
 * which adds the content-addressed run cache, retries and per-point
 * failure isolation; prefer it for new sweeps. A point that still fails
 * after retries makes runMatrix throw std::runtime_error listing every
 * failed (config, workload) — after the rest of the sweep completed.
 */
std::vector<SimStats> runMatrix(const std::vector<CpuConfig> &configs,
                                const std::vector<WorkloadSpec> &suite,
                                const RunOptions &opt);

} // namespace btbsim

#endif // BTBSIM_SIM_RUNNER_H
