#include "sim/cpu.h"

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "check/checker.h"
#include "obs/span.h"
#include "trace/program.h"

namespace btbsim {

Cpu::Cpu(const CpuConfig &cfg, TraceSource &trace)
    : Cpu(cfg, trace, makeBtb(cfg.btb))
{}

Cpu::Cpu(const CpuConfig &cfg, TraceSource &trace,
         std::unique_ptr<BtbOrg> org)
    : cfg_(cfg), trace_(&trace), mem_(cfg.mem), bpred_(cfg.bpred),
      org_(std::move(org)),
      checked_(check::CheckedBtb::wrapFromEnv(*org_)),
      btb_front_(checked_ ? static_cast<BtbOrg *>(checked_.get())
                          : org_.get()),
      ftq_(cfg.ftq_entries),
      pcgen_(*btb_front_, bpred_, trace, ftq_), backend_(cfg.backend, mem_)
{
    stats_.config = org_->config().name();
    stats_.workload = trace.name();
}

Cpu::~Cpu() = default;

void
Cpu::fetchIssue()
{
    unsigned issues = 0;
    std::deque<FtqEntry> &entries = ftq_.entries();
    // Entries before firstUnissued() are all issued; start past them.
    for (std::size_t i = ftq_.firstUnissued(); i < entries.size(); ++i) {
        FtqEntry &e = entries[i];
        if (issues >= cfg_.fetch_lines)
            break;
        if (e.min_issue_cycle > now_)
            break; // Younger entries cannot be earlier.
        const bool was_miss = !mem_.l1i().contains(e.line);
        e.data_ready = mem_.fetchLine(e.line, now_);
        e.issued = true;
        ftq_.noteIssued();
        ++issues;
        if (cfg_.btb_predecode_fill && was_miss)
            predecodeLine(e.line);
    }
}

void
Cpu::deliver()
{
    unsigned instrs = 0;
    unsigned lines_used = 0;
    unsigned used_interleaves = 0;
    Addr prev_line = 0;
    bool have_prev = false;

    while (!ftq_.empty() && instrs < cfg_.fetch_width &&
           decode_queue_.size() < cfg_.decode_queue) {
        FtqEntry &e = ftq_.front();
        if (!e.issued || e.data_ready > now_)
            break; // In-order delivery.
        // Consecutive entries for the same line share one data-array
        // read: only a *new* line consumes a line slot and must land in
        // a fresh interleave.
        const bool new_line = !have_prev || e.line != prev_line;
        if (new_line) {
            const unsigned il = mem_.icacheInterleave(e.line);
            if (lines_used > 0 && (used_interleaves & (1u << il)))
                break; // Same-interleave conflict this cycle.
            if (lines_used >= cfg_.fetch_lines)
                break;
            used_interleaves |= (1u << il);
            ++lines_used;
            prev_line = e.line;
            have_prev = true;
        }

        bool entry_done = true;
        while (e.next_idx < e.insts.size()) {
            if (instrs >= cfg_.fetch_width ||
                decode_queue_.size() >= cfg_.decode_queue) {
                entry_done = false;
                break;
            }
            decode_queue_.push_back(std::move(e.insts[e.next_idx]));
            ++e.next_idx;
            ++instrs;
        }
        if (!entry_done)
            break;
        ftq_.popFront();
    }
}

void
Cpu::decode()
{
    unsigned n = 0;
    while (!decode_queue_.empty() && n < cfg_.decode_width &&
           alloc_queue_.size() < cfg_.alloc_queue) {
        DynInst d = std::move(decode_queue_.front());
        decode_queue_.pop_front();
        d.decode_cycle = now_;
        if (d.resteer == Resteer::kDecode)
            pcgen_.resteerResolved(now_);
        alloc_queue_.push_back(std::move(d));
        ++n;
    }
}

void
Cpu::allocate()
{
    unsigned n = 0;
    while (!alloc_queue_.empty() && n < cfg_.alloc_width &&
           backend_.canAllocate()) {
        if (alloc_queue_.front().decode_cycle >= now_)
            break; // Decoded this cycle; allocate next cycle.
        DynInst d = std::move(alloc_queue_.front());
        alloc_queue_.pop_front();
        backend_.allocate(std::move(d), now_);
        ++n;
    }
}

void
Cpu::attachTracer(obs::Tracer *tracer)
{
    tracer_ = tracer;
    pcgen_.setTracer(tracer);
    if (checked_)
        checked_->setTracer(tracer);
}

void
Cpu::step()
{
    ++now_;
    if (checked_)
        checked_->setNow(now_);
    if (backend_.takeExecResteer(now_) != 0) {
        pcgen_.resteerResolved(now_);
        if (tracer_)
            tracer_->record(now_, obs::TraceEventType::kBranchResolve, 0);
    }
    backend_.runCycle(now_);
    allocate();
    decode();
    deliver();
    pcgen_.runCycle(now_);
    fetchIssue();
}

void
Cpu::predecodeLine(Addr line)
{
    const Program *prog = trace_->codeImage();
    if (!prog)
        return;
    for (Addr pc = line; pc < line + kLineBytes; pc += kInstBytes) {
        if (pc < prog->code_base ||
            pc >= prog->code_base + prog->footprintBytes())
            continue;
        const StaticInst &si = prog->insts[prog->indexOf(pc)];
        // Only architecturally-taken direct branches have targets that
        // predecode can compute from the instruction bytes.
        if (si.branch != BranchClass::kUncondDirect &&
            si.branch != BranchClass::kDirectCall)
            continue;
        Instruction br;
        br.pc = pc;
        br.cls = InstClass::kBranch;
        br.branch = si.branch;
        br.taken = true;
        br.next_pc = prog->pcOf(si.target);
        // Through the front pointer: the checker's training oracle must
        // observe prefills or it would flag their values as untrained.
        btb_front_->prefill(br);
    }
}

void
Cpu::sampleStructures()
{
    const OccupancySample s = org_->sampleOccupancy();
    occ_accum_.l1_slot_occupancy += s.l1_slot_occupancy;
    occ_accum_.l2_slot_occupancy += s.l2_slot_occupancy;
    occ_accum_.l1_redundancy += s.l1_redundancy;
    occ_accum_.l2_redundancy += s.l2_redundancy;
    occ_samples_ += 1.0;
}

void
Cpu::run(std::uint64_t warmup, std::uint64_t measure)
{
    // ---- warmup ----------------------------------------------------------
    const Cycle cycle_guard_per_inst = 400;
    std::uint64_t guard =
        (warmup + measure) * cycle_guard_per_inst + 1'000'000;
    {
        obs::ObsSpan span("warmup");
        while (backend_.committed() < warmup) {
            step();
            if (now_ > guard) {
                std::fprintf(stderr,
                             "btbsim: deadlock guard hit (%s / %s)\n",
                             stats_.workload.c_str(), stats_.config.c_str());
                std::abort();
            }
        }
    }

    // ---- snapshot --------------------------------------------------------
    const Cycle cycles0 = now_;
    const std::uint64_t insts0 = backend_.committed();
    const PcGenStats pg0 = pcgen_.stats;
    const std::uint64_t i_miss0 = mem_.l1i().demandMisses();

    // ---- measure ---------------------------------------------------------
    {
        obs::ObsSpan span("measure");
        const std::uint64_t sample_period = 1'000'000;
        std::uint64_t next_sample = insts0 + sample_period;
        const std::uint64_t end = insts0 + measure;
        obs::Sampler sampler(sample_interval_);
        ftq_occ_sum_ = 0.0;
        while (backend_.committed() < end) {
            step();
            ftq_occ_sum_ += static_cast<double>(ftq_.size());
            if (backend_.committed() >= next_sample) {
                sampleStructures();
                next_sample += sample_period;
            }
            if (sampler.due(now_ - cycles0))
                sampler.sample(sampleSnapshot(cycles0, insts0, pg0, i_miss0));
            if (now_ > guard) {
                std::fprintf(stderr,
                             "btbsim: deadlock guard hit (%s / %s)\n",
                             stats_.workload.c_str(), stats_.config.c_str());
                std::abort();
            }
        }
        if (occ_samples_ == 0.0)
            sampleStructures();
        stats_.sample_interval = sampler.interval();
        stats_.samples = sampler.take();
    }

    // ---- reduce ----------------------------------------------------------
    obs::ObsSpan reduce_span("reduce");
    const PcGenStats &pg = pcgen_.stats;
    const double insts =
        static_cast<double>(backend_.committed() - insts0);
    const double cycles = static_cast<double>(now_ - cycles0);
    const double ki = insts / 1000.0;

    stats_.instructions = backend_.committed() - insts0;
    stats_.cycles = now_ - cycles0;
    stats_.ipc = insts / cycles;
    stats_.branch_mpki = (pg.mispredicts - pg0.mispredicts) / ki;
    stats_.misfetch_pki = (pg.misfetches - pg0.misfetches) / ki;
    stats_.combined_mpki = stats_.branch_mpki + stats_.misfetch_pki;

    const double conds = static_cast<double>(pg.cond_branches - pg0.cond_branches);
    stats_.cond_mispredict_rate = conds > 0
        ? (pg.cond_mispredicts - pg0.cond_mispredicts) / conds : 0.0;

    const double taken =
        static_cast<double>(pg.taken_branches - pg0.taken_branches);
    stats_.taken_per_ki = taken / ki;
    stats_.l1_btb_hitrate = taken > 0
        ? (pg.taken_l1_hits - pg0.taken_l1_hits) / taken : 0.0;
    stats_.btb_hitrate = taken > 0
        ? ((pg.taken_l1_hits - pg0.taken_l1_hits) +
           (pg.taken_l2_hits - pg0.taken_l2_hits)) / taken
        : 0.0;

    const double accesses = static_cast<double>(pg.accesses - pg0.accesses);
    stats_.fetch_pcs_per_access = accesses > 0
        ? (pg.fetch_pcs - pg0.fetch_pcs) / accesses : 0.0;

    const double branches = static_cast<double>(pg.branches - pg0.branches);
    stats_.avg_dyn_bb_size = branches > 0 ? insts / branches : 0.0;

    stats_.icache_mpki = (mem_.l1i().demandMisses() - i_miss0) / ki;

    if (occ_samples_ > 0) {
        stats_.l1_slot_occupancy = occ_accum_.l1_slot_occupancy / occ_samples_;
        stats_.l2_slot_occupancy = occ_accum_.l2_slot_occupancy / occ_samples_;
        stats_.l1_redundancy = occ_accum_.l1_redundancy / occ_samples_;
        stats_.l2_redundancy = occ_accum_.l2_redundancy / occ_samples_;
    }

    harvestRegistry();
    stats_.counters = registry_.flatten();
}

obs::SampleSnapshot
Cpu::sampleSnapshot(Cycle cycles0, std::uint64_t insts0,
                    const PcGenStats &pg0, std::uint64_t i_miss0) const
{
    const PcGenStats &pg = pcgen_.stats;
    obs::SampleSnapshot s;
    s.cycle = now_ - cycles0;
    s.instructions = backend_.committed() - insts0;
    s.taken_branches = pg.taken_branches - pg0.taken_branches;
    s.taken_l1_hits = pg.taken_l1_hits - pg0.taken_l1_hits;
    s.taken_l2_hits = pg.taken_l2_hits - pg0.taken_l2_hits;
    s.mispredicts = pg.mispredicts - pg0.mispredicts;
    s.misfetches = pg.misfetches - pg0.misfetches;
    s.icache_misses = mem_.l1i().demandMisses() - i_miss0;
    s.ftq_occupancy_sum = ftq_occ_sum_;
    return s;
}

void
Cpu::harvestRegistry()
{
    registry_.clear();

    auto pg = registry_.scope("pcgen");
    pg.counter("accesses") = pcgen_.stats.accesses;
    pg.counter("fetch_pcs") = pcgen_.stats.fetch_pcs;
    pg.counter("branches") = pcgen_.stats.branches;
    pg.counter("taken_branches") = pcgen_.stats.taken_branches;
    pg.counter("taken_l1_hits") = pcgen_.stats.taken_l1_hits;
    pg.counter("taken_l2_hits") = pcgen_.stats.taken_l2_hits;
    pg.counter("cond_branches") = pcgen_.stats.cond_branches;
    pg.counter("cond_mispredicts") = pcgen_.stats.cond_mispredicts;
    pg.counter("mispredicts") = pcgen_.stats.mispredicts;
    pg.counter("misfetches") = pcgen_.stats.misfetches;
    pg.counter("misp_cond") = pcgen_.stats.misp_cond;
    pg.counter("misp_indirect") = pcgen_.stats.misp_indirect;
    pg.counter("misp_return") = pcgen_.stats.misp_return;
    pg.counter("misp_btbmiss") = pcgen_.stats.misp_btbmiss;
    pg.counter("taken_bubbles") = pcgen_.stats.taken_bubbles;

    registry_.scope("btb").importStatSet(org_->stats);

    auto cacheScope = [this](const char *name, const Cache &c) {
        auto s = registry_.scope(name);
        s.counter("demand_accesses") = c.demandAccesses();
        s.counter("demand_misses") = c.demandMisses();
        s.importStatSet(c.stats);
    };
    cacheScope("l1i", mem_.l1i());
    cacheScope("l1d", mem_.l1d());
    cacheScope("l2", mem_.l2());
    cacheScope("llc", mem_.llc());
    registry_.counter("dram.accesses") = mem_.dram().accesses();

    auto be = registry_.scope("backend");
    be.counter("committed") = backend_.committed();
    be.importStatSet(backend_.stats);

    auto ftq = registry_.scope("ftq");
    ftq.counter("capacity") = ftq_.capacity();
    if (stats_.cycles > 0)
        ftq.mean("occupancy").add(
            ftq_occ_sum_ / static_cast<double>(stats_.cycles));

    if (tracer_) {
        auto tr = registry_.scope("trace");
        tr.counter("events") = tracer_->total();
        tr.counter("dropped") = tracer_->dropped();
    }
}

} // namespace btbsim
