/**
 * @file
 * Result aggregation and paper-style table printing for the benches.
 */

#ifndef BTBSIM_SIM_REPORT_H
#define BTBSIM_SIM_REPORT_H

#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "sim/sim_stats.h"

namespace btbsim {

/** A set of (config x workload) results with paper-style reductions. */
class ResultSet
{
  public:
    void add(const SimStats &s) { results_.push_back(s); }
    void add(const std::vector<SimStats> &v);

    const std::vector<SimStats> &all() const { return results_; }

    /** Lookup; nullptr when absent. */
    const SimStats *find(const std::string &config,
                         const std::string &workload) const;

    /** Distinct config names, in insertion order. */
    std::vector<std::string> configs() const;
    /** Distinct workload names, in insertion order. */
    std::vector<std::string> workloads() const;

    /**
     * Per-workload IPC of @p config normalized to @p baseline (only
     * workloads present for both).
     */
    std::vector<double> normalizedIpc(const std::string &config,
                                      const std::string &baseline) const;

    /**
     * Print the whisker-style summary the figures use: one row per config
     * with min / 1st quartile / median / 3rd quartile / max / geomean of
     * IPC normalized to @p baseline.
     */
    void printNormalizedTable(std::ostream &os,
                              const std::string &baseline) const;

    /**
     * Print per-config absolute aggregates: geomean IPC, fetch PCs per
     * BTB access, branch MPKI, misfetch PKI, BTB hit rates, occupancy and
     * redundancy (Fig. 10-style summary).
     */
    void printDetailTable(std::ostream &os) const;

    /** Per-workload rows for a single config. */
    void printPerWorkload(std::ostream &os, const std::string &config) const;

    /**
     * Emit the schema-versioned result JSON (obs/export.h documents the
     * schema). @p bench names the producing bench; @p baseline (may be
     * empty) selects the config used for normalized-IPC aggregates.
     * @p experiment, when non-null, is emitted as a top-level
     * "experiment" object (the engine's exp.* progress/cache metrics);
     * the "runs" array is unaffected, so cached and cold sweeps stay
     * comparable byte for byte. @p profile, when non-null, is emitted as
     * the top-level "profile" object (the whole-process host span
     * aggregate from obs::SpanCollector::profile()).
     */
    void writeJson(std::ostream &os, const std::string &bench,
                   const std::string &baseline,
                   const std::map<std::string, double> *experiment = nullptr,
                   const obs::ProfileBlock *profile = nullptr) const;

    /** One CSV row per (config, workload) run. */
    void writeCsv(std::ostream &os) const;

  private:
    std::vector<SimStats> results_;
};

/** Geomean of absolute IPC for one config across workloads. */
double geomeanIpc(const std::vector<SimStats> &all, const std::string &config);

/** Merge the flattened per-run counters of @p all into one aggregate map
 *  (suite-level totals across the runMatrix results). */
std::map<std::string, double>
aggregateCounters(const std::vector<SimStats> &all);

} // namespace btbsim

#endif // BTBSIM_SIM_REPORT_H
