/**
 * @file
 * Top-level processor model: the decoupled frontend of Fig. 3 feeding the
 * Table 1 backend, driven cycle by cycle.
 */

#ifndef BTBSIM_SIM_CPU_H
#define BTBSIM_SIM_CPU_H

#include <deque>
#include <memory>

#include "backend/backend.h"
#include "bpred/bpred_unit.h"
#include "core/btb_org.h"
#include "frontend/ftq.h"
#include "frontend/pcgen.h"
#include "memory/memhier.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/tracer.h"
#include "sim/config.h"
#include "sim/sim_stats.h"
#include "trace/trace_source.h"

namespace btbsim {

namespace check {
class CheckedBtb;
}

/**
 * The simulated core. Construction wires BP stage (BTB + predictors),
 * FTQ, fetch, decode/allocate queues and the backend; run() executes a
 * warmup phase followed by a measurement phase and fills stats().
 */
class Cpu
{
  public:
    Cpu(const CpuConfig &cfg, TraceSource &trace);

    /**
     * Construct with a user-supplied BTB organization (see
     * examples/custom_btb.cpp). @p org must be non-null; cfg.btb is used
     * only for reporting in that case.
     */
    Cpu(const CpuConfig &cfg, TraceSource &trace,
        std::unique_ptr<BtbOrg> org);

    ~Cpu(); // Out of line: check::CheckedBtb is incomplete here.

    /**
     * Simulate until @p warmup + @p measure instructions commit;
     * statistics cover only the measurement window.
     */
    void run(std::uint64_t warmup, std::uint64_t measure);

    const SimStats &stats() const { return stats_; }

    /** Advance one cycle (exposed for fine-grained tests). */
    void step();

    Cycle cycleCount() const { return now_; }
    std::uint64_t committed() const { return backend_.committed(); }

    BtbOrg &btb() { return *org_; }
    MemHier &mem() { return mem_; }
    const PcGenStats &pcgenStats() const { return pcgen_.stats; }

    /**
     * Attach (or detach with nullptr) a pipeline event tracer. The
     * tracer pointer is propagated to the frontend; when null, every
     * event site reduces to one predictable branch.
     */
    void attachTracer(obs::Tracer *tracer);
    obs::Tracer *tracer() { return tracer_; }

    /** Interval (cycles) of the time-series sampler; 0 disables it.
     *  Defaults to BTBSIM_SAMPLE_INTERVAL / 100k. Takes effect at the
     *  next run(). */
    void setSampleInterval(std::uint64_t cycles)
    {
        sample_interval_ = cycles;
    }

    /** Hierarchical stats harvested from every component at end of run. */
    const obs::StatRegistry &registry() const { return registry_; }

  private:
    CpuConfig cfg_;
    TraceSource *trace_;

    MemHier mem_;
    BPredUnit bpred_;
    std::unique_ptr<BtbOrg> org_;
    /** Differential-checking wrapper, non-null only with BTBSIM_CHECK. */
    std::unique_ptr<check::CheckedBtb> checked_;
    /** What the frontend actually drives: the checker when enabled,
     *  else the organization itself. */
    BtbOrg *btb_front_;
    Ftq ftq_;
    PcGen pcgen_;
    Backend backend_;

    std::deque<DynInst> decode_queue_;
    std::deque<DynInst> alloc_queue_;

    Cycle now_ = 0;
    SimStats stats_;

    // Occupancy sampling.
    double occ_samples_ = 0.0;
    OccupancySample occ_accum_;

    // Observability.
    obs::Tracer *tracer_ = nullptr;
    obs::StatRegistry registry_;
    std::uint64_t sample_interval_ = obs::Sampler::intervalFromEnv();
    double ftq_occ_sum_ = 0.0; ///< Per-cycle FTQ size, measurement only.

    void fetchIssue();
    void predecodeLine(Addr line);
    void deliver();
    void decode();
    void allocate();
    void sampleStructures();
    obs::SampleSnapshot sampleSnapshot(Cycle cycles0, std::uint64_t insts0,
                                       const PcGenStats &pg0,
                                       std::uint64_t i_miss0) const;
    void harvestRegistry();
};

} // namespace btbsim

#endif // BTBSIM_SIM_CPU_H
