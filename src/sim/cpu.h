/**
 * @file
 * Top-level processor model: the decoupled frontend of Fig. 3 feeding the
 * Table 1 backend, driven cycle by cycle.
 */

#ifndef BTBSIM_SIM_CPU_H
#define BTBSIM_SIM_CPU_H

#include <deque>
#include <memory>

#include "backend/backend.h"
#include "bpred/bpred_unit.h"
#include "core/btb_org.h"
#include "frontend/ftq.h"
#include "frontend/pcgen.h"
#include "memory/memhier.h"
#include "sim/config.h"
#include "sim/sim_stats.h"
#include "trace/trace_source.h"

namespace btbsim {

/**
 * The simulated core. Construction wires BP stage (BTB + predictors),
 * FTQ, fetch, decode/allocate queues and the backend; run() executes a
 * warmup phase followed by a measurement phase and fills stats().
 */
class Cpu
{
  public:
    Cpu(const CpuConfig &cfg, TraceSource &trace);

    /**
     * Construct with a user-supplied BTB organization (see
     * examples/custom_btb.cpp). @p org must be non-null; cfg.btb is used
     * only for reporting in that case.
     */
    Cpu(const CpuConfig &cfg, TraceSource &trace,
        std::unique_ptr<BtbOrg> org);

    /**
     * Simulate until @p warmup + @p measure instructions commit;
     * statistics cover only the measurement window.
     */
    void run(std::uint64_t warmup, std::uint64_t measure);

    const SimStats &stats() const { return stats_; }

    /** Advance one cycle (exposed for fine-grained tests). */
    void step();

    Cycle cycleCount() const { return now_; }
    std::uint64_t committed() const { return backend_.committed(); }

    BtbOrg &btb() { return *org_; }
    MemHier &mem() { return mem_; }
    const PcGenStats &pcgenStats() const { return pcgen_.stats; }

  private:
    CpuConfig cfg_;
    TraceSource *trace_;

    MemHier mem_;
    BPredUnit bpred_;
    std::unique_ptr<BtbOrg> org_;
    Ftq ftq_;
    PcGen pcgen_;
    Backend backend_;

    std::deque<DynInst> decode_queue_;
    std::deque<DynInst> alloc_queue_;

    Cycle now_ = 0;
    SimStats stats_;

    // Occupancy sampling.
    double occ_samples_ = 0.0;
    OccupancySample occ_accum_;

    void fetchIssue();
    void predecodeLine(Addr line);
    void deliver();
    void decode();
    void allocate();
    void sampleStructures();
};

} // namespace btbsim

#endif // BTBSIM_SIM_CPU_H
