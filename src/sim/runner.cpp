#include "sim/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <thread>

#include "obs/export.h"
#include "obs/tracer.h"
#include "sim/cpu.h"
#include "traceio/replay_env.h"

namespace btbsim {

namespace {

std::uint64_t
envU64(const char *name, std::uint64_t fallback)
{
    const char *v = std::getenv(name);
    if (!v || !*v)
        return fallback;
    return std::strtoull(v, nullptr, 10);
}

/** Dump a run's trace ring buffer to BTBSIM_TRACE_DIR (default
 *  results/traces) as <config>__<workload>.jsonl. */
void
dumpTrace(const obs::Tracer &tracer, const SimStats &s)
{
    const char *dir_env = std::getenv("BTBSIM_TRACE_DIR");
    const std::filesystem::path dir =
        (dir_env && *dir_env) ? dir_env : "results/traces";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return;
    const std::filesystem::path file =
        dir / (obs::slugify(s.config) + "__" + obs::slugify(s.workload) +
               ".jsonl");
    std::ofstream os(file);
    if (os)
        tracer.dumpJsonl(os);
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    RunOptions o;
    o.warmup = envU64("BTBSIM_WARMUP", o.warmup);
    o.measure = envU64("BTBSIM_MEASURE", o.measure);
    o.traces = static_cast<std::size_t>(envU64("BTBSIM_TRACES", o.traces));
    o.threads = static_cast<unsigned>(envU64("BTBSIM_THREADS", 0));
    return o;
}

SimStats
runOne(const CpuConfig &cfg, const WorkloadSpec &spec, const RunOptions &opt)
{
    // Live-generated workload, or a recorded .btbt replay when
    // BTBSIM_TRACE_DIR holds one. A fresh source per run keeps
    // concurrent runMatrix workers isolated (TraceSource instances are
    // not shareable across threads).
    auto opened = traceio::openWorkloadSource(spec);
    Cpu cpu(cfg, *opened.source);

    std::unique_ptr<obs::Tracer> tracer;
    if (obs::Tracer::enabledFromEnv()) {
        tracer = std::make_unique<obs::Tracer>(obs::Tracer::capacityFromEnv());
        cpu.attachTracer(tracer.get());
    }

    const auto t0 = std::chrono::steady_clock::now();
    cpu.run(opt.warmup, opt.measure);
    const auto t1 = std::chrono::steady_clock::now();

    SimStats s = cpu.stats();
    s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
    const double total_insts =
        static_cast<double>(opt.warmup) + static_cast<double>(s.instructions);
    s.minst_per_host_sec =
        s.host_seconds > 0 ? total_insts / 1e6 / s.host_seconds : 0.0;

    // Raw instruction-delivery throughput of the source, measured by
    // draining it outside the timing model (capped so big runs don't
    // pay twice). Replay should beat generate+interpret here.
    s.source_kind = opened.replay ? "replay" : "generated";
    const std::uint64_t drain =
        std::min<std::uint64_t>(opt.warmup + opt.measure, 2'000'000);
    if (drain > 0) {
        opened.source->reset();
        const auto d0 = std::chrono::steady_clock::now();
        for (std::uint64_t i = 0; i < drain; ++i)
            opened.source->next();
        const auto d1 = std::chrono::steady_clock::now();
        const double secs = std::chrono::duration<double>(d1 - d0).count();
        s.source_minst_per_sec =
            secs > 0 ? static_cast<double>(drain) / 1e6 / secs : 0.0;
    }

    if (tracer)
        dumpTrace(*tracer, s);
    return s;
}

std::vector<SimStats>
runMatrix(const std::vector<CpuConfig> &configs,
          const std::vector<WorkloadSpec> &suite, const RunOptions &opt)
{
    struct Job
    {
        std::size_t cfg;
        std::size_t wl;
    };
    std::vector<Job> jobs;
    for (std::size_t c = 0; c < configs.size(); ++c)
        for (std::size_t w = 0; w < suite.size(); ++w)
            jobs.push_back({c, w});

    std::vector<SimStats> results(jobs.size());
    std::atomic<std::size_t> next{0};

    unsigned n_threads = opt.threads;
    if (n_threads == 0) {
        n_threads = std::thread::hardware_concurrency();
        if (n_threads == 0)
            n_threads = 4;
    }
    n_threads = std::min<unsigned>(n_threads,
                                   static_cast<unsigned>(jobs.size()));

    auto worker = [&]() {
        for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= jobs.size())
                return;
            results[i] = runOne(configs[jobs[i].cfg], suite[jobs[i].wl], opt);
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(n_threads);
    for (unsigned t = 0; t < n_threads; ++t)
        pool.emplace_back(worker);
    for (auto &t : pool)
        t.join();

    return results;
}

} // namespace btbsim
