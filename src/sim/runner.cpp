#include "sim/runner.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>

#include "common/env.h"
#include "exp/experiment.h"
#include "obs/export.h"
#include "obs/span.h"
#include "obs/tracer.h"
#include "sim/cpu.h"
#include "traceio/replay_env.h"

namespace btbsim {

namespace {

/** Dump a run's trace ring buffer to BTBSIM_TRACE_DIR (default
 *  results/traces) as <config>__<workload>.jsonl. */
void
dumpTrace(const obs::Tracer &tracer, const SimStats &s)
{
    const std::filesystem::path dir =
        env::str("BTBSIM_TRACE_DIR", "results/traces");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        return;
    const std::filesystem::path file =
        dir / (obs::slugify(s.config) + "__" + obs::slugify(s.workload) +
               ".jsonl");
    std::ofstream os(file);
    if (os)
        tracer.dumpJsonl(os);
}

} // namespace

RunOptions
RunOptions::fromEnv()
{
    RunOptions o;
    o.warmup = env::u64("BTBSIM_WARMUP", o.warmup);
    o.measure = env::u64("BTBSIM_MEASURE", o.measure);
    o.traces =
        static_cast<std::size_t>(env::u64("BTBSIM_TRACES", o.traces));
    o.threads = static_cast<unsigned>(env::u64("BTBSIM_THREADS", 0));
    return o;
}

SimStats
runOne(const CpuConfig &cfg, const WorkloadSpec &spec, const RunOptions &opt)
{
    // The spans completed on this thread between the two marks become
    // the run's own profile slice (SimStats::span_profile -> the result
    // JSON's host.spans). The "run" span must close before the diff, so
    // the whole body lives in an inner scope.
    obs::SpanCollector &spans = obs::SpanCollector::instance();
    const obs::SpanCollector::ThreadMark span_mark = spans.mark();

    SimStats s;
    {
        obs::ObsSpan run_span("run");

        // Live-generated workload, or a recorded .btbt replay when
        // BTBSIM_TRACE_DIR holds one. A fresh source per run keeps
        // concurrent runMatrix workers isolated (TraceSource instances
        // are not shareable across threads).
        std::unique_ptr<Cpu> cpu;
        traceio::OpenedSource opened;
        std::unique_ptr<obs::Tracer> tracer;
        {
            obs::ObsSpan init_span("init");
            opened = traceio::openWorkloadSource(spec);
            cpu = std::make_unique<Cpu>(cfg, *opened.source);
            if (obs::Tracer::enabledFromEnv()) {
                tracer = std::make_unique<obs::Tracer>(
                    obs::Tracer::capacityFromEnv());
                cpu->attachTracer(tracer.get());
            }
        }

        const auto t0 = std::chrono::steady_clock::now();
        cpu->run(opt.warmup, opt.measure);
        const auto t1 = std::chrono::steady_clock::now();

        s = cpu->stats();
        s.host_seconds = std::chrono::duration<double>(t1 - t0).count();
        const double total_insts = static_cast<double>(opt.warmup) +
                                   static_cast<double>(s.instructions);
        s.minst_per_host_sec =
            s.host_seconds > 0 ? total_insts / 1e6 / s.host_seconds : 0.0;

        // Raw instruction-delivery throughput of the source, measured by
        // draining it outside the timing model (capped so big runs don't
        // pay twice). Replay should beat generate+interpret here.
        s.source_kind = opened.replay ? "replay" : "generated";
        const std::uint64_t drain =
            std::min<std::uint64_t>(opt.warmup + opt.measure, 2'000'000);
        if (drain > 0) {
            obs::ObsSpan drain_span("source_drain");
            opened.source->reset();
            const auto d0 = std::chrono::steady_clock::now();
            for (std::uint64_t i = 0; i < drain; ++i)
                opened.source->next();
            const auto d1 = std::chrono::steady_clock::now();
            const double secs =
                std::chrono::duration<double>(d1 - d0).count();
            s.source_minst_per_sec =
                secs > 0 ? static_cast<double>(drain) / 1e6 / secs : 0.0;
        }

        if (tracer) {
            obs::ObsSpan dump_span("trace_dump");
            dumpTrace(*tracer, s);
        }
    }

    s.span_profile = spans.aggregateSince(span_mark);
    s.host_counters_available = spans.countersAvailable();
    return s;
}

std::vector<SimStats>
runMatrix(const std::vector<CpuConfig> &configs,
          const std::vector<WorkloadSpec> &suite, const RunOptions &opt)
{
    // Thin delegating wrapper over the experiment engine (exp/
    // experiment.h). The run cache stays off unless BTBSIM_RUN_CACHE is
    // explicitly set, keeping direct callers (tests) hermetic; benches
    // get caching by default through bench_common's Experiment use.
    exp::ExperimentOptions eopt;
    eopt.run = opt;
    eopt.cache_dir = exp::RunCache::dirFromEnv("");
    eopt.retries =
        static_cast<unsigned>(env::u64("BTBSIM_RETRIES", eopt.retries));

    exp::ExperimentResult r = exp::runExperiment(
        "run_matrix", configs, suite, std::move(eopt));
    if (!r.allOk()) {
        std::string what = "runMatrix: " +
                           std::to_string(r.summary.failed) +
                           " point(s) failed:";
        for (const exp::PointResult *p : r.failures())
            what += "\n  (" + p->config + ", " + p->workload +
                    "): " + p->error;
        throw std::runtime_error(what);
    }
    return r.stats();
}

} // namespace btbsim
