#include "sim/report.h"

#include <algorithm>
#include <iomanip>
#include <ostream>

#include "common/stats.h"
#include "obs/export.h"
#include "obs/json.h"

namespace btbsim {

void
ResultSet::add(const std::vector<SimStats> &v)
{
    for (const SimStats &s : v)
        results_.push_back(s);
}

const SimStats *
ResultSet::find(const std::string &config, const std::string &workload) const
{
    for (const SimStats &s : results_)
        if (s.config == config && s.workload == workload)
            return &s;
    return nullptr;
}

std::vector<std::string>
ResultSet::configs() const
{
    std::vector<std::string> out;
    for (const SimStats &s : results_)
        if (std::find(out.begin(), out.end(), s.config) == out.end())
            out.push_back(s.config);
    return out;
}

std::vector<std::string>
ResultSet::workloads() const
{
    std::vector<std::string> out;
    for (const SimStats &s : results_)
        if (std::find(out.begin(), out.end(), s.workload) == out.end())
            out.push_back(s.workload);
    return out;
}

std::vector<double>
ResultSet::normalizedIpc(const std::string &config,
                         const std::string &baseline) const
{
    std::vector<double> out;
    for (const std::string &wl : workloads()) {
        const SimStats *c = find(config, wl);
        const SimStats *b = find(baseline, wl);
        if (c && b && b->ipc > 0)
            out.push_back(c->ipc / b->ipc);
    }
    return out;
}

namespace {

double
quantile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    const double pos = q * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

void
ResultSet::printNormalizedTable(std::ostream &os,
                                const std::string &baseline) const
{
    os << std::left << std::setw(28) << "config" << std::right
       << std::setw(8) << "min" << std::setw(8) << "q1" << std::setw(8)
       << "median" << std::setw(8) << "q3" << std::setw(8) << "max"
       << std::setw(9) << "geomean" << "\n";
    os << std::string(77, '-') << "\n";
    os << std::fixed << std::setprecision(3);
    for (const std::string &cfg : configs()) {
        std::vector<double> v = normalizedIpc(cfg, baseline);
        if (v.empty())
            continue;
        const double gm = geomean(v);
        std::sort(v.begin(), v.end());
        os << std::left << std::setw(28) << cfg << std::right
           << std::setw(8) << v.front() << std::setw(8) << quantile(v, 0.25)
           << std::setw(8) << quantile(v, 0.5) << std::setw(8)
           << quantile(v, 0.75) << std::setw(8) << v.back() << std::setw(9)
           << gm << "\n";
    }
}

double
geomeanIpc(const std::vector<SimStats> &all, const std::string &config)
{
    std::vector<double> v;
    for (const SimStats &s : all)
        if (s.config == config)
            v.push_back(s.ipc);
    return geomean(v);
}

void
ResultSet::printDetailTable(std::ostream &os) const
{
    os << std::left << std::setw(28) << "config" << std::right
       << std::setw(8) << "gm-IPC" << std::setw(8) << "PCs/ac"
       << std::setw(8) << "MPKI" << std::setw(8) << "MFPKI"
       << std::setw(8) << "L1hit%" << std::setw(8) << "hit%"
       << std::setw(8) << "occL1" << std::setw(8) << "redL1"
       << std::setw(8) << "Mi/s" << "\n";
    os << std::string(100, '-') << "\n";
    os << std::fixed << std::setprecision(2);
    for (const std::string &cfg : configs()) {
        std::vector<double> pcs, mpki, mfpki, l1hit, hit, occ, red, speed;
        for (const SimStats &s : results_) {
            if (s.config != cfg)
                continue;
            pcs.push_back(s.fetch_pcs_per_access);
            mpki.push_back(s.branch_mpki);
            mfpki.push_back(s.misfetch_pki);
            l1hit.push_back(s.l1_btb_hitrate);
            hit.push_back(s.btb_hitrate);
            occ.push_back(s.l1_slot_occupancy);
            red.push_back(s.l1_redundancy);
            speed.push_back(s.minst_per_host_sec);
        }
        auto mean = [](const std::vector<double> &v) {
            double sum = 0.0;
            for (double x : v)
                sum += x;
            return v.empty() ? 0.0 : sum / static_cast<double>(v.size());
        };
        os << std::left << std::setw(28) << cfg << std::right
           << std::setw(8) << geomeanIpc(results_, cfg) << std::setw(8)
           << mean(pcs) << std::setw(8) << mean(mpki) << std::setw(8)
           << mean(mfpki) << std::setw(8) << mean(l1hit) * 100.0
           << std::setw(8) << mean(hit) * 100.0 << std::setw(8) << mean(occ)
           << std::setw(8) << mean(red) << std::setw(8) << mean(speed)
           << "\n";
    }
}

void
ResultSet::printPerWorkload(std::ostream &os, const std::string &config) const
{
    os << std::left << std::setw(12) << "workload" << std::right
       << std::setw(8) << "IPC" << std::setw(8) << "MPKI" << std::setw(8)
       << "MFPKI" << std::setw(8) << "L1hit%" << std::setw(8) << "I$MPKI"
       << std::setw(8) << "BBsize" << "\n";
    os << std::string(60, '-') << "\n";
    os << std::fixed << std::setprecision(2);
    for (const SimStats &s : results_) {
        if (s.config != config)
            continue;
        os << std::left << std::setw(12) << s.workload << std::right
           << std::setw(8) << s.ipc << std::setw(8) << s.branch_mpki
           << std::setw(8) << s.misfetch_pki << std::setw(8)
           << s.l1_btb_hitrate * 100.0 << std::setw(8) << s.icache_mpki
           << std::setw(8) << s.avg_dyn_bb_size << "\n";
    }
}

void
ResultSet::writeJson(std::ostream &os, const std::string &bench,
                     const std::string &baseline,
                     const std::map<std::string, double> *experiment,
                     const obs::ProfileBlock *profile) const
{
    obs::JsonWriter w(os);
    w.beginObject();
    w.kv("schema_version", obs::kSchemaVersion);
    w.kv("generator", "btbsim");
    w.kv("bench", bench);
    w.kv("baseline", baseline);

    w.key("runs");
    w.beginArray();
    for (const SimStats &s : results_)
        obs::writeSimStatsJson(w, s);
    w.endArray();

    w.key("aggregates");
    w.beginObject();
    for (const std::string &cfg : configs()) {
        w.key(cfg);
        w.beginObject();
        w.kv("geomean_ipc", geomeanIpc(results_, cfg));
        if (!baseline.empty()) {
            const std::vector<double> norm = normalizedIpc(cfg, baseline);
            if (!norm.empty())
                w.kv("normalized_ipc_geomean", geomean(norm));
        }
        w.endObject();
    }
    w.endObject();

    if (experiment) {
        w.key("experiment");
        w.beginObject();
        for (const auto &[name, v] : *experiment)
            w.kv(name, v);
        w.endObject();
    }

    if (profile) {
        w.key("profile");
        obs::writeProfileBlockJson(w, *profile);
    }

    w.endObject();
    os << "\n";
}

void
ResultSet::writeCsv(std::ostream &os) const
{
    obs::writeRunsCsvHeader(os);
    for (const SimStats &s : results_)
        obs::writeRunCsvRow(os, s);
}

std::map<std::string, double>
aggregateCounters(const std::vector<SimStats> &all)
{
    std::map<std::string, double> out;
    for (const SimStats &s : all)
        for (const auto &[name, v] : s.counters)
            out[name] += v;
    return out;
}

} // namespace btbsim
