/**
 * @file
 * Aggregated results of one simulation run — the metrics the paper's
 * figures and tables report.
 */

#ifndef BTBSIM_SIM_SIM_STATS_H
#define BTBSIM_SIM_SIM_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/sampler.h"
#include "obs/span.h"

namespace btbsim {

/** Measurement-window statistics of one (workload, config) run. */
struct SimStats
{
    std::string workload;
    std::string config;

    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    double ipc = 0.0;

    // Branch behaviour (per kilo-instruction).
    double branch_mpki = 0.0;   ///< Exec-resolved mispredictions.
    double misfetch_pki = 0.0;  ///< Decode-resolved misfetches.
    double combined_mpki = 0.0; ///< Sum of the two (Section 6.1).
    double cond_mispredict_rate = 0.0;

    // BTB behaviour.
    double l1_btb_hitrate = 0.0; ///< Taken branches hitting the L1 BTB.
    double btb_hitrate = 0.0;    ///< Taken branches hitting any level.
    double fetch_pcs_per_access = 0.0;
    double taken_per_ki = 0.0;

    // Structure samples (averaged over the run).
    double l1_slot_occupancy = 0.0;
    double l2_slot_occupancy = 0.0;
    double l1_redundancy = 0.0;
    double l2_redundancy = 0.0;

    // Memory.
    double icache_mpki = 0.0;
    double avg_dyn_bb_size = 0.0; ///< Instructions per dynamic branch.

    // Observability (src/obs): within-run time series, the flattened
    // dotted-path stat registry, and host-side profiling of the run.
    std::uint64_t sample_interval = 0; ///< Cycles per sample (0 = none).
    std::vector<obs::IntervalSample> samples;
    std::map<std::string, double> counters; ///< "component.stat" -> value.
    double host_seconds = 0.0;          ///< Wall time of the whole run.
    double minst_per_host_sec = 0.0;    ///< Sim speed (M instr / host s).
    /// Host spans completed on the running thread during this run
    /// (paths like "run/measure"); empty when BTBSIM_SPANS=0.
    obs::SpanProfile span_profile;
    /// Whether span_profile carries real perf-counter columns.
    bool host_counters_available = false;

    /// How the instruction stream was produced: "generated" (synthetic
    /// program interpreted live) or "replay" (recorded .btbt trace).
    std::string source_kind = "generated";
    /// Raw instruction-delivery throughput of the source (M instr /
    /// host s), measured by draining it outside the timing model.
    double source_minst_per_sec = 0.0;
};

} // namespace btbsim

#endif // BTBSIM_SIM_SIM_STATS_H
