/**
 * @file
 * btbsim-stats — inspect and compare btbsim result JSON (schema v1, see
 * obs/export.h).
 *
 *   btbsim-stats show <file.json>
 *       Validate the file and print per-config aggregates.
 *
 *   btbsim-stats diff <old.json> <new.json> [--threshold FRAC]
 *       Match runs by (config, workload), compare per-config geomean IPC
 *       and exit 1 when any config regresses by more than FRAC (default
 *       0.02 = 2%). Used by CI as a regression gate.
 *
 *   btbsim-stats env [--markdown]
 *       Dump every BTBSIM_* knob the simulator honours (common/env.h
 *       facade): name, default, current value, description. --markdown
 *       emits the README env-var table.
 *
 * Exit codes: 0 ok, 1 regression found, 2 usage or parse error.
 */

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "obs/export.h"
#include "obs/json.h"

namespace {

using btbsim::obs::JsonValue;

struct Run
{
    std::string config;
    std::string workload;
    double ipc = 0.0;
    double branch_mpki = 0.0;
    std::size_t sample_points = 0;
};

struct Document
{
    int schema_version = 0;
    std::string bench;
    std::vector<Run> runs;
};

Document
loadDocument(const std::string &path)
{
    std::ifstream is(path);
    if (!is)
        throw std::runtime_error("cannot open " + path);
    std::ostringstream buf;
    buf << is.rdbuf();
    const JsonValue root = btbsim::obs::parseJson(buf.str());

    Document doc;
    doc.schema_version =
        static_cast<int>(root.at("schema_version").asNumber());
    if (doc.schema_version != btbsim::obs::kSchemaVersion)
        throw std::runtime_error(
            path + ": unsupported schema_version " +
            std::to_string(doc.schema_version) + " (tool supports " +
            std::to_string(btbsim::obs::kSchemaVersion) + ")");
    if (const JsonValue *b = root.find("bench"))
        doc.bench = b->isString() ? b->str : "";

    for (const JsonValue &r : root.at("runs").array) {
        Run run;
        run.config = r.at("config").asString();
        run.workload = r.at("workload").asString();
        const JsonValue &stats = r.at("stats");
        run.ipc = stats.at("ipc").asNumber();
        if (const JsonValue *m = stats.find("branch_mpki"))
            run.branch_mpki = m->isNumber() ? m->number : 0.0;
        if (const JsonValue *s = r.find("samples"))
            if (const JsonValue *pts = s->find("points"))
                run.sample_points = pts->array.size();
        doc.runs.push_back(std::move(run));
    }
    return doc;
}

double
geomean(const std::vector<double> &v)
{
    double log_sum = 0.0;
    std::size_t n = 0;
    for (double x : v)
        if (x > 0) {
            log_sum += std::log(x);
            ++n;
        }
    return n ? std::exp(log_sum / static_cast<double>(n)) : 0.0;
}

std::map<std::string, std::vector<double>>
ipcByConfig(const Document &doc)
{
    std::map<std::string, std::vector<double>> out;
    for (const Run &r : doc.runs)
        out[r.config].push_back(r.ipc);
    return out;
}

int
cmdShow(const std::string &path)
{
    const Document doc = loadDocument(path);
    std::printf("%s: schema v%d, bench \"%s\", %zu runs\n", path.c_str(),
                doc.schema_version, doc.bench.c_str(), doc.runs.size());
    std::printf("%-32s %6s %12s %10s\n", "config", "runs", "geomean IPC",
                "samples");
    std::printf("%s\n", std::string(64, '-').c_str());
    std::map<std::string, std::size_t> samples;
    for (const Run &r : doc.runs)
        samples[r.config] += r.sample_points;
    for (const auto &[cfg, ipcs] : ipcByConfig(doc))
        std::printf("%-32s %6zu %12.3f %10zu\n", cfg.c_str(), ipcs.size(),
                    geomean(ipcs), samples[cfg]);
    return 0;
}

int
cmdDiff(const std::string &old_path, const std::string &new_path,
        double threshold)
{
    const Document a = loadDocument(old_path);
    const Document b = loadDocument(new_path);

    std::map<std::pair<std::string, std::string>, double> old_ipc;
    for (const Run &r : a.runs)
        old_ipc[{r.config, r.workload}] = r.ipc;

    // Per-config geomean over the runs present in BOTH files.
    std::map<std::string, std::vector<double>> old_by_cfg, new_by_cfg;
    std::size_t matched = 0;
    for (const Run &r : b.runs) {
        auto it = old_ipc.find({r.config, r.workload});
        if (it == old_ipc.end())
            continue;
        ++matched;
        old_by_cfg[r.config].push_back(it->second);
        new_by_cfg[r.config].push_back(r.ipc);
    }

    if (matched == 0) {
        std::fprintf(stderr,
                     "no (config, workload) pairs in common between %s "
                     "and %s\n",
                     old_path.c_str(), new_path.c_str());
        return 2;
    }

    std::printf("%zu matched runs; regression threshold %.1f%%\n\n", matched,
                threshold * 100.0);
    std::printf("%-32s %10s %10s %9s\n", "config", "old IPC", "new IPC",
                "delta");
    std::printf("%s\n", std::string(64, '-').c_str());

    bool regression = false;
    for (const auto &[cfg, old_v] : old_by_cfg) {
        const double g_old = geomean(old_v);
        const double g_new = geomean(new_by_cfg[cfg]);
        const double delta = g_old > 0 ? (g_new - g_old) / g_old : 0.0;
        const bool bad = delta < -threshold;
        regression = regression || bad;
        std::printf("%-32s %10.3f %10.3f %+8.2f%%%s\n", cfg.c_str(), g_old,
                    g_new, delta * 100.0, bad ? "  <-- REGRESSION" : "");
    }

    if (regression) {
        std::printf("\nIPC regression beyond %.1f%% detected.\n",
                    threshold * 100.0);
        return 1;
    }
    std::printf("\nno IPC regression beyond %.1f%%.\n", threshold * 100.0);
    return 0;
}

int
cmdEnv(bool markdown)
{
    if (markdown) {
        std::printf("| Variable | Default | Description |\n");
        std::printf("| --- | --- | --- |\n");
        for (const btbsim::env::Knob &k : btbsim::env::knobs())
            std::printf("| `%s` | `%s` | %s |\n", k.name,
                        *k.fallback ? k.fallback : "(unset)", k.description);
        return 0;
    }
    std::printf("%-24s %-16s %-16s %s\n", "variable", "default", "current",
                "description");
    std::printf("%s\n", std::string(100, '-').c_str());
    for (const btbsim::env::Knob &k : btbsim::env::knobs()) {
        const std::string cur = btbsim::env::isSet(k.name)
                                    ? btbsim::env::raw(k.name)
                                    : "(unset)";
        std::printf("%-24s %-16s %-16s %s\n", k.name,
                    *k.fallback ? k.fallback : "(unset)", cur.c_str(),
                    k.description);
    }
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: btbsim-stats show <file.json>\n"
        "       btbsim-stats diff <old.json> <new.json> [--threshold F]\n"
        "       btbsim-stats env [--markdown]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        if (argc >= 3 && std::strcmp(argv[1], "show") == 0)
            return cmdShow(argv[2]);
        if (argc >= 2 && std::strcmp(argv[1], "env") == 0)
            return cmdEnv(argc >= 3 &&
                          std::strcmp(argv[2], "--markdown") == 0);
        if (argc >= 4 && std::strcmp(argv[1], "diff") == 0) {
            double threshold = 0.02;
            for (int i = 4; i + 1 < argc; ++i)
                if (std::strcmp(argv[i], "--threshold") == 0)
                    threshold = std::atof(argv[i + 1]);
            return cmdDiff(argv[2], argv[3], threshold);
        }
        usage();
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "btbsim-stats: %s\n", e.what());
        return 2;
    }
}
